// Command paperbench regenerates the tables and figures of the paper's
// evaluation section: the system-parameter table (Table 1), the
// miss-classification and miss-rate tables (Tables 2 and 3, printed as
// "Figure 2/3" in the text), the normalized-execution-time and
// overhead-breakdown figures on the default machine (Figures 4-7) and the
// future machine (Figures 8-9), the §4.3 sensitivity sweeps, and the
// §4.2 mp3d quality-of-solution check.
//
// Usage:
//
//	paperbench [-scale small] [-procs 64] [targets...]
//
// Targets: table1 table2 table3 fig4 fig5 fig6 fig7 fig8 fig9 sweep
// mp3dquality all (default: all); extensions: ablate, scaling, dsm.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lazyrc"
	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	var (
		scaleFlag = flag.String("scale", "small", "input scale: tiny, small, medium, paper")
		procs     = flag.Int("procs", 64, "number of processors")
		quiet     = flag.Bool("q", false, "suppress per-run progress")
		jsonOut   = flag.String("json", "", "also write a machine-readable report to this file")
		seed      = flag.Uint64("seed", 1, "base random seed stamped into every run's configuration; a report plus its seed fully determines a replay")
	)
	flag.Parse()

	scale, err := lazyrc.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]

	e := exp.NewEvaluator(scale, *procs)
	e.Seed = *seed
	var progress func(string)
	if !*quiet {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		e.Progress = progress
	}

	start := time.Now()
	emit := func(name, body string) {
		fmt.Println(body)
	}

	if all || want["table1"] {
		emit("table1", exp.Table1(config.Default(*procs)))
	}
	if all || want["table2"] {
		emit("table2", exp.Table2(e))
	}
	if all || want["table3"] {
		emit("table3", exp.Table3(e))
	}
	if all || want["fig4"] {
		emit("fig4", exp.Fig4(e))
	}
	if all || want["fig5"] {
		emit("fig5", exp.Fig5(e))
	}
	if all || want["fig6"] {
		emit("fig6", exp.Fig6(e))
	}
	if all || want["fig7"] {
		emit("fig7", exp.Fig7(e))
	}
	if all || want["fig8"] {
		emit("fig8", exp.Fig8(e))
	}
	if all || want["fig9"] {
		emit("fig9", exp.Fig9(e))
	}
	if all || want["sweep"] {
		for _, sw := range exp.Sweeps() {
			emit("sweep", exp.RunSweep(scale, *procs, sw, progress))
		}
	}
	if all || want["mp3dquality"] {
		emit("mp3dquality", exp.Mp3dQuality(scale, *procs))
	}
	if want["ablate"] {
		for _, ab := range exp.Ablations() {
			emit("ablate", exp.RunAblation(scale, *procs, ab, progress))
		}
	}
	if want["dsm"] {
		emit("dsm", exp.LazierUnderSoftwareCoherence(scale, *procs, "locusroute", progress))
	}
	if want["scaling"] {
		for _, app := range []string{"mp3d", "blu", "gauss"} {
			emit("scaling", exp.RunScaling(scale, app, exp.ScalingCounts, progress))
		}
	}

	if err := e.VerifyAll(); err != nil {
		log.Fatalf("a run failed verification: %v", err)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := e.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "total wall-clock: %.1fs (scale %s, %d procs)\n",
			time.Since(start).Seconds(), apps.Scale(scale), *procs)
	}
}
