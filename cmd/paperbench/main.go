// Command paperbench regenerates the tables and figures of the paper's
// evaluation section: the system-parameter table (Table 1), the
// miss-classification and miss-rate tables (Tables 2 and 3, printed as
// "Figure 2/3" in the text), the normalized-execution-time and
// overhead-breakdown figures on the default machine (Figures 4-7) and the
// future machine (Figures 8-9), the §4.3 sensitivity sweeps, and the
// §4.2 mp3d quality-of-solution check.
//
// The evaluation matrix executes through internal/runner: simulations
// run concurrently on -j workers, results are deduplicated by content
// fingerprint (figures sharing a cell simulate it once), an optional
// -cache file carries results across invocations (a warm rerun performs
// zero simulations), and -baseline gates the fresh report against a
// committed reference. The rendered output is bit-identical for any -j.
//
// Usage:
//
//	paperbench [-scale small] [-procs 64] [-j N] [-cache results.jsonl]
//	           [-baseline BENCH_baseline.json -tol 0] [targets...]
//
// Targets: table1 table2 table3 fig4 fig5 fig6 fig7 fig8 fig9 tardis
// sweep mp3dquality all (default: all); extensions: ablate, scaling,
// dsm, chaos (the lossy-interconnect soak: every app × protocol under
// message loss and link outages, gated on the end-state equivalence
// oracle). The tardis target compares the timestamp-coherence protocols
// against the invalidation protocols; -protocols narrows the protocol
// set it and the chaos soak cover.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lazyrc"
	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/exp"
	"lazyrc/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	var (
		scaleFlag  = flag.String("scale", "small", "input scale: tiny, small, medium, paper")
		procs      = flag.Int("procs", 64, "number of processors")
		quiet      = flag.Bool("q", false, "suppress per-run progress")
		jsonOut    = flag.String("json", "", "also write a machine-readable report to this file")
		seed       = flag.Uint64("seed", 1, "base random seed stamped into every run's configuration; a report plus its seed fully determines a replay")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count; results are bit-identical for any value")
		cacheFile  = flag.String("cache", "", "content-addressed JSONL result store; fingerprint-identical runs are served from it instead of re-simulating")
		baseline   = flag.String("baseline", "", "regression-gate baseline report (JSON); out-of-tolerance drift exits non-zero")
		tol        = flag.Float64("tol", 0, "gate tolerance on cycle counts and traffic, in percent of the baseline value")
		writeBase  = flag.String("write-baseline", "", "write the canonical (provenance-free) report to this file, for committing as the gate baseline")
		reportOut  = flag.String("report", "", "write a self-contained HTML report of the evaluation to this file")
		critPath   = flag.Bool("critical-path", false, "also print the per-app per-protocol critical-path stall attribution table (runs span-traced simulations outside the result cache)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		remote     = flag.String("remote", "", "submit the evaluation to a running lrcsimd daemon at this base URL (e.g. http://127.0.0.1:7077) instead of simulating locally; matrix targets only, -j and -cache are the daemon's concern")
		protoFlag  = flag.String("protocols", "all", "comma-separated protocol subset for the tardis target and the chaos soak (\"all\" = every registered protocol)")
		perfTrend  = flag.String("perf-trend", "PERF_trend.json", "committed cycles/sec trend file for the -perf-write / -perf-gate pass")
		perfWrite  = flag.Bool("perf-write", false, "measure host throughput for every (app, protocol) cell serially and append the result as a new entry in -perf-trend")
		perfGate   = flag.Bool("perf-gate", false, "measure host throughput and fail on cells slower than the latest -perf-trend entry beyond -perf-tol")
		perfTol    = flag.Float64("perf-tol", 50, "perf gate tolerance on cycles/sec regressions, in percent of the baseline; wall-clock timings wobble with host load, so the default is deliberately generous — tighten it on a quiet, pinned machine")
		perfReport = flag.String("perf-report", "", "write a self-contained HTML performance report (phase breakdown + trend) to this file")
		perfReps   = flag.Int("perf-reps", 3, "executions per cell in the perf pass; the fastest is recorded (best-of-N damps host noise)")
	)
	flag.Parse()

	protoList, err := config.ParseProtocols(*protoFlag)
	if err != nil {
		log.Fatal(err)
	}

	stopProfiles := startProfiles(*cpuprofile, *memprofile)

	scale, err := lazyrc.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	targets := flag.Args()
	perfO := perfOpts{
		trendPath: *perfTrend, write: *perfWrite, gate: *perfGate,
		tolPct: *perfTol, report: *perfReport, reps: *perfReps,
		protos: protoList, quiet: *quiet,
	}
	if len(targets) == 0 {
		if perfO.active() {
			// A bare perf invocation measures throughput only; ask for
			// explicit targets (or "all") to also render the figures.
			targets = nil
		} else {
			targets = []string{"all"}
		}
	}
	if *remote != "" {
		code := runRemote(remoteOpts{
			base: *remote, targets: targets, scale: *scaleFlag,
			procs: *procs, seed: *seed, quiet: *quiet,
			jsonOut: *jsonOut, reportOut: *reportOut,
			baseline: *baseline, tol: *tol,
		})
		stopProfiles()
		os.Exit(code)
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]

	ctx := context.Background()

	// The store is held as the concrete type for Close, but the runner
	// takes the interface: pass untyped nil when no cache was requested so
	// the runner's store==nil fast path applies (a typed-nil *runner.Store
	// inside the interface would not compare equal to nil).
	var store *runner.Store
	var rstore runner.ResultStore
	if *cacheFile != "" {
		store, err = runner.OpenStore(*cacheFile)
		if err != nil {
			log.Fatal(err)
		}
		if n := store.Recovered(); n > 0 && !*quiet {
			fmt.Fprintf(os.Stderr, "cache: skipped %d corrupt line(s) in %s; affected runs will re-simulate\n", n, *cacheFile)
		}
		rstore = store
	}
	rn := runner.New(*workers, rstore)
	if !*quiet {
		rn.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	e := exp.NewEvaluatorWith(scale, *procs, rn)
	e.Seed = *seed

	// The perf pass runs first, before any worker-pool fan-out, so its
	// serial timings are not polluted by concurrent simulations.
	perfCode := 0
	if perfO.active() {
		perfCode = runPerfPass(e, scale, *procs, perfO)
	}

	start := time.Now()
	emit := func(name, body string) {
		fmt.Println(body)
	}

	// Fan the whole requested matrix out to the worker pool before any
	// rendering: rendering then reads memoized cells in table order, so
	// the output is deterministic while the simulations were not. A
	// narrowed -protocols drops only the timestamp-protocol cells — the
	// invalidation-protocol cells are shared with the paper figures and
	// would be simulated anyway.
	protoSet := map[string]bool{}
	for _, p := range protoList {
		protoSet[p] = true
	}
	cells := exp.TargetCells(targets)
	kept := cells[:0]
	for _, c := range cells {
		if (c[2] == "tardis" || c[2] == "tardis2") && !protoSet[c[2]] {
			continue
		}
		kept = append(kept, c)
	}
	e.Prefetch(kept)

	if all || want["table1"] {
		emit("table1", exp.Table1(config.Default(*procs)))
	}
	if all || want["table2"] {
		emit("table2", exp.Table2(e))
	}
	if all || want["table3"] {
		emit("table3", exp.Table3(e))
	}
	if all || want["fig4"] {
		emit("fig4", exp.Fig4(e))
	}
	if all || want["fig5"] {
		emit("fig5", exp.Fig5(e))
	}
	if all || want["fig6"] {
		emit("fig6", exp.Fig6(e))
	}
	if all || want["fig7"] {
		emit("fig7", exp.Fig7(e))
	}
	if all || want["fig8"] {
		emit("fig8", exp.Fig8(e))
	}
	if all || want["fig9"] {
		emit("fig9", exp.Fig9(e))
	}
	if all || want["tardis"] {
		emit("tardis", exp.TardisTable(e, protoList))
	}
	if all || want["sweep"] {
		for _, sw := range exp.Sweeps() {
			emit("sweep", exp.RunSweep(ctx, rn, scale, *procs, sw))
		}
	}
	if all || want["mp3dquality"] {
		emit("mp3dquality", exp.Mp3dQuality(scale, *procs))
	}
	if want["ablate"] {
		for _, ab := range exp.Ablations() {
			emit("ablate", exp.RunAblation(ctx, rn, scale, *procs, ab))
		}
	}
	if want["dsm"] {
		emit("dsm", exp.LazierUnderSoftwareCoherence(ctx, rn, scale, *procs, "locusroute"))
	}
	if want["scaling"] {
		for _, app := range []string{"mp3d", "blu", "gauss"} {
			emit("scaling", exp.RunScaling(ctx, rn, scale, app, exp.ScalingCounts))
		}
	}
	chaosFailed := false
	if want["chaos"] {
		body, err := exp.RunChaos(ctx, rn, scale, *procs, *seed, exp.AppOrder,
			protoList, nil)
		emit("chaos", body)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			chaosFailed = true
		}
	}
	if *critPath {
		emit("critical-path", exp.CriticalPath(scale, *procs, *seed, nil))
	}

	exitCode := 0
	if chaosFailed || perfCode != 0 {
		exitCode = 1
	}
	if err := e.VerifyAll(); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: a run failed verification: %v\n", err)
		exitCode = 1
	}
	report := e.Report()
	if *jsonOut != "" {
		writeReport(*jsonOut, report)
	}
	if *reportOut != "" {
		writeHTMLReport(*reportOut, report)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "HTML report written to %s\n", *reportOut)
		}
	}
	if *writeBase != "" {
		writeReport(*writeBase, report.Stable())
		if !*quiet {
			fmt.Fprintf(os.Stderr, "baseline written to %s (%d runs)\n", *writeBase, len(report.Runs))
		}
	}
	if *baseline != "" {
		base, err := exp.LoadReport(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		if viols := exp.Gate(base, report, *tol); len(viols) > 0 {
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "gate: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "gate: FAILED against %s: %d violation(s) at tolerance %.3f%%\n",
				*baseline, len(viols), *tol)
			exitCode = 1
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "gate: ok against %s (%d runs, tolerance %.3f%%)\n",
				*baseline, len(base.Runs), *tol)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: cache: %v\n", err)
			exitCode = 1
		}
	}
	if !*quiet {
		m := rn.Meta()
		fmt.Fprintf(os.Stderr, "total wall-clock: %.1fs (scale %s, %d procs, %d workers; %d simulated, %d cache hits, %d failed)\n",
			time.Since(start).Seconds(), apps.Scale(scale), *procs, m.Workers,
			m.Simulated, m.CacheHits, m.FailedJobs)
	}
	stopProfiles()
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// writeReport writes a report as indented JSON, fataling on any error
// (paperbench output files are the whole point of the invocation).
func writeReport(path string, r exp.Report) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.WriteReportJSON(f, r); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// writeHTMLReport writes the evaluation as a self-contained HTML page.
func writeHTMLReport(path string, r exp.Report) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.WriteHTML(f, r); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// startProfiles begins CPU profiling and arranges heap profiling; the
// returned stop function flushes both. Kept out of defer chains so the
// explicit os.Exit paths still flush profiles.
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}
}
