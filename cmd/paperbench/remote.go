package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"lazyrc/internal/api"
	"lazyrc/internal/exp"
	"lazyrc/internal/runner"
)

// remoteOpts carries the -remote client-mode parameters.
type remoteOpts struct {
	base    string
	targets []string
	scale   string
	procs   int
	seed    uint64
	quiet   bool

	jsonOut   string
	reportOut string
	baseline  string
	tol       float64
}

// runRemote submits the requested evaluation to a running lrcsimd daemon
// as a sweep spec, follows its SSE event stream to completion, fetches
// the rendered reports, and (when -baseline is set) runs the regression
// gate locally against the fetched report. The daemon owns execution:
// the sweep's cells carry the same fingerprints a local run would, so a
// store warmed locally serves the remote submission and vice versa.
func runRemote(o remoteOpts) int {
	spec := exp.Spec{Targets: o.targets, Scale: o.scale, Procs: o.procs, Seed: o.seed}
	if _, err := spec.Normalize(); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: -remote accepts matrix targets only: %v\n", err)
		return 2
	}
	ctx := context.Background()
	c := &api.Client{Base: o.base}

	st, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: submit: %v\n", err)
		return 1
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "sweep %s: %d cell(s), state %s\n", st.ID[:16], st.Jobs, st.State)
	}

	onEvent := func(ev runner.Event) {
		if o.quiet {
			return
		}
		switch ev.Kind {
		case runner.EventRunning, runner.EventCached, runner.EventDone, runner.EventFailed:
			fmt.Fprintf(os.Stderr, "%-9s %s/%s/%s\n", ev.Kind, ev.App, ev.Scale, ev.Proto)
		}
	}
	if !st.Terminal() {
		if st, err = c.WaitSweep(ctx, st.ID, onEvent); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: wait: %v\n", err)
			return 1
		}
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "sweep %s: %s (%d executed, %d from cache, %d deduped, %d failed)\n",
			st.ID[:16], st.State, st.Executed, st.FromCache, st.Deduped, st.Failed)
	}
	if st.State != api.StateDone {
		fmt.Fprintf(os.Stderr, "paperbench: sweep %s: %s\n", st.State, st.Error)
		return 1
	}
	if st.Error != "" {
		// Done with a verification error: deterministic, reported, nonzero.
		fmt.Fprintf(os.Stderr, "paperbench: a run failed verification: %s\n", st.Error)
	}

	repBytes, err := c.SweepReport(ctx, st.ID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: report: %v\n", err)
		return 1
	}
	if o.jsonOut != "" {
		if err := os.WriteFile(o.jsonOut, repBytes, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			return 1
		}
	}
	if o.reportOut != "" {
		html, err := c.SweepHTML(ctx, st.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: html report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(o.reportOut, html, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			return 1
		}
		if !o.quiet {
			fmt.Fprintf(os.Stderr, "HTML report written to %s\n", o.reportOut)
		}
	}

	code := 0
	if st.Error != "" {
		code = 1
	}
	if o.baseline != "" {
		var rep exp.Report
		if err := json.Unmarshal(repBytes, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: fetched report: %v\n", err)
			return 1
		}
		base, err := exp.LoadReport(o.baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			return 1
		}
		if viols := exp.Gate(base, rep, o.tol); len(viols) > 0 {
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "gate: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "gate: FAILED against %s: %d violation(s) at tolerance %.3f%%\n",
				o.baseline, len(viols), o.tol)
			code = 1
		} else if !o.quiet {
			fmt.Fprintf(os.Stderr, "gate: ok against %s (%d runs, tolerance %.3f%%)\n",
				o.baseline, len(base.Runs), o.tol)
		}
	}
	return code
}
