// The paperbench performance pass: a serial sweep of the (application,
// protocol) matrix that measures host wall-clock throughput per cell,
// maintains the committed PERF_trend.json history, and gates fresh
// measurements against the latest committed entry.
//
// The pass deliberately bypasses the result cache and the worker pool:
// a cache hit carries no wall-clock profile, and concurrent simulations
// contend for cores, so every cell is executed fresh and alone. Nothing
// here touches simulated results — the pass is throughput provenance
// only, which is why the trend file is gated with a generous tolerance
// rather than the -tol 0 used for cycle counts.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"lazyrc/internal/apps"
	"lazyrc/internal/exp"
	"lazyrc/internal/perf"
	"lazyrc/internal/runner"
)

// perfOpts carries the -perf-* flag values.
type perfOpts struct {
	trendPath string  // -perf-trend: committed trend file
	write     bool    // -perf-write: append this pass as a new trend entry
	gate      bool    // -perf-gate: fail on regressions vs the latest entry
	tolPct    float64 // -perf-tol: gate tolerance in percent
	report    string  // -perf-report: HTML report path
	reps      int     // -perf-reps: executions per cell (best-of)
	protos    []string
	quiet     bool
}

func (o perfOpts) active() bool { return o.write || o.gate || o.report != "" }

// runPerfPass measures every (app, protocol) cell serially and applies
// the requested trend-file actions. Returns the process exit code
// contribution (0 or 1).
func runPerfPass(e *exp.Evaluator, scale apps.Scale, procs int, o perfOpts) int {
	trend, err := perf.LoadTrend(o.trendPath, scale.String(), procs)
	if err != nil {
		log.Fatal(err)
	}

	var cells []perf.TrendCell
	var htmlCells []perf.CellPerf
	passStart := time.Now()
	reps := o.reps
	if reps < 1 {
		reps = 1
	}
	for _, app := range exp.AppOrder {
		for _, proto := range o.protos {
			job := e.Job("default", app, proto)
			// Best-of-N: tiny cells finish in milliseconds, where a single
			// scheduler hiccup or GC pause swamps the signal. The fastest
			// of N back-to-back runs is the least-disturbed measurement.
			var snap perf.Snapshot
			for r := 0; r < reps; r++ {
				res := runner.Exec(job)
				if res.Failed() {
					log.Fatalf("perf pass: %s/%s failed: %s", app, proto, res.Failure)
				}
				if res.Perf == nil {
					log.Fatalf("perf pass: %s/%s returned no profile", app, proto)
				}
				if r == 0 || res.Perf.CyclesPerSec > snap.CyclesPerSec {
					snap = *res.Perf
				}
			}
			cells = append(cells, perf.TrendCell{
				App: app, Proto: proto,
				Cycles: snap.Cycles, Events: snap.Events,
				WallNS:       snap.WallNS,
				CyclesPerSec: snap.CyclesPerSec,
				EventsPerSec: snap.EventsPerSec,
				AllocBytes:   snap.AllocBytes,
			})
			htmlCells = append(htmlCells, perf.CellPerf{App: app, Proto: proto, Snap: snap})
			if !o.quiet {
				fmt.Fprintf(os.Stderr, "perf: %-11s %-8s %8.2f Mcycles/s (%.0f ms)\n",
					app, proto, snap.CyclesPerSec/1e6, float64(snap.WallNS)/1e6)
			}
		}
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "perf: %d cells in %.1fs\n", len(cells), time.Since(passStart).Seconds())
	}

	code := 0
	if o.gate {
		base, ok := trend.Latest()
		if !ok {
			fmt.Fprintf(os.Stderr, "perf gate: FAILED: no baseline entry in %s (run -perf-write first)\n", o.trendPath)
			code = 1
		} else if viols := perf.GateTrend(base, cells, o.tolPct); len(viols) > 0 {
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "perf gate: %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "perf gate: FAILED against %s (entry %s): %d regression(s) beyond %.1f%%\n",
				o.trendPath, base.When, len(viols), o.tolPct)
			code = 1
		} else if !o.quiet {
			fmt.Fprintf(os.Stderr, "perf gate: ok against %s (entry %s, %d cells, tolerance %.1f%%)\n",
				o.trendPath, base.When, len(base.Cells), o.tolPct)
		}
	}
	if o.write {
		trend.Entries = append(trend.Entries,
			perf.NewEntry(time.Now().UTC().Format(time.RFC3339), cells))
		if err := perf.SaveTrend(o.trendPath, trend); err != nil {
			log.Fatal(err)
		}
		if !o.quiet {
			fmt.Fprintf(os.Stderr, "perf: trend entry %d (%d cells) written to %s\n",
				len(trend.Entries), len(cells), o.trendPath)
		}
	}
	if o.report != "" {
		f, err := os.Create(o.report)
		if err != nil {
			log.Fatal(err)
		}
		subtitle := fmt.Sprintf("scale %s · %d procs · %s", scale, procs, perf.HostString())
		if err := perf.WriteHTML(f, subtitle, htmlCells, trend); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !o.quiet {
			fmt.Fprintf(os.Stderr, "perf: HTML report written to %s\n", o.report)
		}
	}
	return code
}
