// Command lrccheck model-checks the coherence protocols against the
// litmus corpus: it systematically explores message-delivery
// interleavings (plus delivery-delay choices) of each tiny program,
// compares every observed register outcome against the sequentially
// consistent oracle, and audits protocol invariants at every choice
// point. For data-race-free programs every registered protocol —
// invalidation-based and timestamp-based alike — must produce only
// SC-allowed outcomes; the SC protocol must for racy ones too.
//
// Usage:
//
//	lrccheck                          # full corpus, all protocols
//	lrccheck -smoke                   # reduced budgets (CI tier)
//	lrccheck -proto lrc -test mp-stale -mutate skip-acquire-inval -out /tmp/cx
//
// Violations exit nonzero and, with -out, write one replayable schedule
// per counterexample for `lrcsim -replay`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"lazyrc"
	"lazyrc/internal/config"
	"lazyrc/internal/mc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrccheck: ")
	var (
		protoFlag  = flag.String("proto", "all", "protocol to check ("+strings.Join(lazyrc.Protocols(), ", ")+") or 'all'")
		testFlag   = flag.String("test", "all", "litmus test name or 'all' (see -list)")
		list       = flag.Bool("list", false, "list the litmus corpus and exit")
		menuFlag   = flag.String("menu", "", "comma-separated delivery-delay menu in cycles (default '0,3')")
		planFlag   = flag.String("menu-from-plan", "", "derive the delay menu from a fault-injection plan (internal/faults syntax)")
		maxChoices = flag.Int("max-choices", mc.DefaultMaxChoices, "recorded choice points per run (beyond: first alternative)")
		maxRuns    = flag.Int("max-runs", 2000, "schedule budget per (test, protocol) pair")
		maxStates  = flag.Int("max-states", 100000, "expanded-state budget per (test, protocol) pair")
		mutate     = flag.String("mutate", "", "inject a deliberate protocol bug ("+strings.Join(config.Mutations(), ", ")+") — the checker must catch it")
		smoke      = flag.Bool("smoke", false, "CI tier: reduced budgets (max-runs 150, max-choices 32)")
		noAudit    = flag.Bool("no-audit", false, "skip per-choice-point invariant audits (outcome conformance only)")
		outDir     = flag.String("out", "", "write counterexample schedules (JSON, replayable with 'lrcsim -replay') to this directory")
		verbose    = flag.Bool("v", false, "print per-run outcome histograms")
	)
	flag.Parse()

	if *list {
		for _, t := range mc.Tests() {
			fmt.Printf("%-16s procs=%d drf=%-5t %s\n", t.Name, t.Procs, t.DRF, t.Doc)
		}
		return
	}

	menu := []uint64(nil)
	if *planFlag != "" {
		m, err := mc.MenuFromPlan(*planFlag)
		if err != nil {
			log.Fatal(err)
		}
		menu = m
	}
	if *menuFlag != "" {
		if menu != nil {
			log.Fatal("-menu and -menu-from-plan are mutually exclusive")
		}
		for _, f := range strings.Split(*menuFlag, ",") {
			d, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				log.Fatalf("bad -menu entry %q: %v", f, err)
			}
			menu = append(menu, d)
		}
	}

	protos := lazyrc.Protocols()
	if *protoFlag != "all" {
		protos = strings.Split(*protoFlag, ",")
	}
	tests := mc.Tests()
	if *testFlag != "all" {
		t, err := mc.FindTest(*testFlag)
		if err != nil {
			log.Fatal(err)
		}
		tests = []*mc.Test{t}
	}
	if *smoke {
		*maxRuns = 150
		*maxChoices = 32
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	violations := 0
	for _, proto := range protos {
		for _, t := range tests {
			ec := mc.ExploreConfig{
				RunConfig: mc.RunConfig{
					Proto:      proto,
					Menu:       menu,
					MaxChoices: *maxChoices,
					Mutation:   *mutate,
					Audit:      !*noAudit,
				},
				MaxRuns:   *maxRuns,
				MaxStates: *maxStates,
			}
			rep, err := mc.Explore(t, ec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(rep.Summary())
			if *verbose {
				for o, c := range rep.Outcomes {
					fmt.Printf("    outcome %-24q ×%d\n", o, c)
				}
				fmt.Printf("    SC-allowed: %v\n", rep.Allowed)
			}
			for i, cx := range rep.Counterexamples {
				violations++
				fmt.Printf("    counterexample: %v\n", cx.Reasons[0])
				fmt.Printf("      schedule %v outcome %q\n", cx.Schedule, cx.Outcome)
				if *outDir != "" {
					path := filepath.Join(*outDir, fmt.Sprintf("%s-%s-%d.json", t.Name, proto, i))
					if err := mc.NewSchedule(t, ec, cx, rep.Allowed).Save(path); err != nil {
						log.Fatal(err)
					}
					fmt.Printf("      saved %s (replay with: lrcsim -replay %s)\n", path, path)
				}
			}
		}
	}
	if violations > 0 {
		log.Fatalf("%d counterexample(s) found", violations)
	}
	fmt.Println("all explored schedules conform")
}
