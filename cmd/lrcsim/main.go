// Command lrcsim runs one (application, protocol) pair on the simulated
// multiprocessor and prints its statistics: execution time, the
// cpu/read/write/sync cycle breakdown, miss rate and classification, and
// network traffic.
//
// Usage:
//
//	lrcsim -app mp3d -proto lrc -procs 64 -scale small
//
// With -protocols it runs the same application once per protocol in the
// list ("all" expands to every registered protocol) and prints a
// side-by-side comparison table instead of the single-run report:
//
//	lrcsim -app gauss -protocols lrc,tardis,tardis2
//
// With -replay it instead re-executes a counterexample schedule written
// by lrccheck, verifying the recorded outcome and final machine state
// hash reproduce byte for byte:
//
//	lrcsim -replay counterexample.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"lazyrc"
	"lazyrc/internal/apps"
	"lazyrc/internal/causal"
	"lazyrc/internal/check"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
	"lazyrc/internal/mc"
	"lazyrc/internal/sim"
	"lazyrc/internal/telemetry"
	"lazyrc/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrcsim: ")
	var (
		appName    = flag.String("app", "gauss", "application: "+strings.Join(lazyrc.AppNames(), ", "))
		proto      = flag.String("proto", "lrc", "protocol: "+strings.Join(lazyrc.Protocols(), ", "))
		protosFlag = flag.String("protocols", "", "run -app once per protocol in this comma-separated list (\"all\" = every registered protocol) and print a comparison table; most single-run flags do not apply")
		procs      = flag.Int("procs", 64, "number of processors")
		scale      = flag.String("scale", "small", "input scale: tiny, small, medium, paper")
		future     = flag.Bool("future", false, "use the §4.3 future-machine parameters")
		verify     = flag.Bool("verify", true, "verify the computation against a serial reference")
		traceFile  = flag.String("trace", "", "write a JSON-lines protocol message trace to this file")
		traceMax   = flag.Uint64("trace-max", 1_000_000, "cap on traced events")
		contention = flag.Bool("contention", false, "print the per-resource contention report")
		traffic    = flag.Bool("traffic", false, "print the per-message-kind traffic breakdown")
		seed       = flag.Uint64("seed", 1, "random seed for seed-dependent subsystems (fault injection); the same seed replays the same schedule")
		faultPlan  = flag.String("faults", "", "fault-injection plan for the interconnect, e.g. 'delay=0.05:1:64,dup=0.03:32,reorder=0.02:48' (see internal/faults.ParsePlan)")
		faultSeed  = flag.Uint64("fault-seed", 0, "seed the fault injector independently of -seed (0: derive from -seed)")
		oracle     = flag.Bool("oracle", false, "with -faults: also run the same seed fault-free and require the faulted run to reproduce its end state (completion, and bit-identical final memory for timing-independent apps); exit nonzero on divergence")
		doCheck    = flag.Bool("check", false, "audit protocol invariants during and after the run; exit nonzero on any violation")
		checkEvery = flag.Uint64("check-every", 5000, "cycles between invariant audits under -check")
		watchdog   = flag.Uint64("watchdog", 0, "liveness watchdog probe interval in cycles (0: disabled); a stall aborts the run with a report; pick an interval far above the longest legitimate wait (e.g. 50000)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		replayFile = flag.String("replay", "", "replay a model-checker counterexample schedule (JSON from lrccheck) instead of running an application")
		metrics    = flag.Bool("metrics", false, "collect cycle-domain telemetry and write a JSONL export to -metrics-out")
		metricsOut = flag.String("metrics-out", "metrics.jsonl", "telemetry JSONL output path (with -metrics)")
		metricsInt = flag.Uint64("metrics-interval", 5000, "telemetry sampling interval in simulated cycles")
		reportFile = flag.String("report", "", "write a self-contained HTML run report to this file (implies telemetry collection)")
		validateM  = flag.String("validate-metrics", "", "validate a telemetry JSONL export against the current schema and exit")
		spans      = flag.Bool("spans", false, "trace causal coherence-transaction spans and write a Perfetto/Chrome trace-event JSON to -spans-out")
		spansOut   = flag.String("spans-out", "trace.json", "Perfetto trace JSON output path (with -spans)")
		spansMax   = flag.Int("spans-max", 0, "cap on retained spans (0: default limit)")
		critPath   = flag.Int("critical-path", 0, "print the critical-path stall attribution table and the N longest stall episodes (implies span collection)")
		validateS  = flag.String("validate-spans", "", "validate a Perfetto trace JSON export against the trace-event schema and exit")
		perfFlag   = flag.Bool("perf", false, "profile the simulator's wall-clock time by phase and print the breakdown after the report (passive: simulated results are unchanged)")
		progress   = flag.Int("progress", 0, "print a one-line progress heartbeat to stderr every N wall-clock seconds (0: disabled)")
		progTotal  = flag.Uint64("progress-total", 0, "expected total simulated cycles, for the -progress ETA estimate (0: no ETA)")
	)
	flag.Parse()

	if *validateS != "" {
		data, err := os.ReadFile(*validateS)
		if err != nil {
			log.Fatal(err)
		}
		n, err := causal.ValidateTrace(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid trace-event JSON: %d events\n", *validateS, n)
		return
	}

	if *validateM != "" {
		hdr, err := telemetry.ValidateFile(*validateM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid %s export: %d samples every %d cycles, %d series, %d histograms\n",
			*validateM, hdr.Schema, hdr.Samples, hdr.Interval, hdr.Series, hdr.Hists)
		return
	}

	if *replayFile != "" {
		replay(*replayFile)
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}

	sc, err := lazyrc.ParseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}

	if *protosFlag != "" {
		compareProtocols(*protosFlag, *appName, sc, *procs, *future, *seed, *verify)
		return
	}

	app, err := lazyrc.NewApp(*appName, sc)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lazyrc.DefaultConfig(*procs)
	if *future {
		cfg = lazyrc.FutureConfig(*procs)
	}
	cfg.Seed = *seed
	cfg.FaultSeed = *faultSeed
	cfg.FaultPlan = *faultPlan

	var tr *trace.Tracer
	m, err := lazyrc.NewMachine(cfg, *proto)
	if err != nil {
		log.Fatal(err)
	}
	var auditor *check.Auditor
	if *doCheck {
		if *checkEvery == 0 {
			log.Fatal("-check-every must be positive")
		}
		auditor = check.New(m)
		auditor.Start(*checkEvery)
	}
	if *watchdog > 0 {
		m.EnableWatchdog(*watchdog, func(r sim.StallReport) {
			fmt.Fprintln(os.Stderr, r)
			m.Eng.Stop()
		})
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr = trace.New(f, trace.WithLimit(*traceMax))
		tr.Attach(m)
	}
	if *metrics || *reportFile != "" {
		if *metricsInt == 0 {
			log.Fatal("-metrics-interval must be positive")
		}
		reg := m.EnableMetrics(*metricsInt)
		reg.SetMeta("app", app.Name())
		reg.SetMeta("scale", sc.String())
	}
	if *spans || *critPath > 0 {
		m.EnableSpans(true, *spansMax)
	}
	if *perfFlag {
		// After EnableSpans, so span bookkeeping lands in the causal phase.
		m.EnablePerf()
	}
	if *progress > 0 {
		enableProgress(m, *progress, *progTotal)
	}
	app.Setup(m)
	m.Run(app.Worker)
	if m.Eng.Stopped() {
		log.Fatal("run aborted by the liveness watchdog")
	}
	if *verify {
		if verr := app.Verify(); verr != nil {
			log.Fatalf("verification failed: %v", verr)
		}
	}
	if auditor != nil {
		auditor.Final()
		if cerr := auditor.Err(); cerr != nil {
			for _, v := range auditor.Violations() {
				fmt.Fprintln(os.Stderr, v)
			}
			log.Fatalf("invariant check failed: %v", cerr)
		}
		fmt.Fprintf(os.Stderr, "check: %d epoch audits + final audit, 0 violations\n", auditor.Epochs())
	}
	if s := m.FaultReport(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
	if *oracle {
		if *faultPlan == "" {
			log.Fatal("-oracle requires -faults")
		}
		runOracle(cfg, *proto, *appName, sc, m)
	}
	if tr != nil {
		if terr := tr.Err(); terr != nil {
			log.Fatal(terr)
		}
		if tr.Truncated() {
			fmt.Fprintf(os.Stderr, "warning: trace truncated at %d events (-trace-max); %d further events dropped\n",
				tr.Events(), tr.Dropped())
		}
		fmt.Fprintf(os.Stderr, "traced %d events to %s\n", tr.Events(), *traceFile)
	}
	if *metrics {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Tel.Export(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d samples (%s) to %s\n", m.Tel.Samples(), telemetry.SchemaVersion, *metricsOut)
	}
	if *reportFile != "" {
		f, err := os.Create(*reportFile)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("%s · %s · %d procs", app.Name(), *proto, *procs)
		if err := m.Tel.WriteHTML(f, title); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report: %s\n", *reportFile)
	}
	if m.Causal != nil {
		if d := m.Causal.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "warning: span store truncated: %d spans dropped (-spans-max)\n", d)
		}
		if *spans {
			f, err := os.Create(*spansOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := causal.WritePerfetto(f, m.Causal, machine.MsgKindName); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "spans: %d spans (digest %s) to %s; open in ui.perfetto.dev\n",
				m.Causal.Count(), m.Causal.Digest(), *spansOut)
		}
	}

	printReport(os.Stdout, m, app, sc, *proto, *procs, *contention, *traffic)

	if *perfFlag {
		fmt.Println()
		fmt.Println("wall-clock phase profile (host time, not simulated cycles)")
		fmt.Print(m.Perf.Snapshot().Table())
	}

	if *critPath > 0 {
		a := causal.Analyze(m.Causal)
		fmt.Println()
		fmt.Println("critical-path stall attribution (cycles by protocol cause)")
		a.WriteTable(os.Stdout)
		fmt.Println()
		fmt.Printf("top %d stall episodes\n", *critPath)
		a.WriteTop(os.Stdout, *critPath)
	}
}

// enableProgress schedules a self-rescheduling background engine event
// that prints a one-line heartbeat to stderr whenever at least every
// wall-clock seconds have passed since the last line: current simulated
// cycle, mean simulation speed so far, and — when the caller supplied an
// expected total via -progress-total — a naive ETA. Background events
// never keep the simulation alive or perturb regular-event timing, so
// the heartbeat is passive: results are bit-identical with and without
// it.
func enableProgress(m *lazyrc.Machine, every int, total uint64) {
	const pollCycles = 1 << 16 // wall-clock check cadence in simulated cycles
	interval := time.Duration(every) * time.Second
	start := time.Now()
	last := start
	var tick func()
	tick = func() {
		if now := time.Now(); now.Sub(last) >= interval {
			last = now
			cyc := m.Eng.Now()
			elapsed := now.Sub(start).Seconds()
			rate := float64(cyc) / elapsed
			line := fmt.Sprintf("progress: cycle %d, %.2f Mcycles/s", cyc, rate/1e6)
			if total > cyc && rate > 0 {
				eta := time.Duration(float64(total-cyc) / rate * float64(time.Second))
				line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
			}
			fmt.Fprintln(os.Stderr, line)
		}
		m.Eng.Background(m.Eng.Now()+pollCycles, tick)
	}
	m.Eng.Background(pollCycles, tick)
}

// compareProtocols runs the application once per requested protocol —
// fresh application instance and machine each time — and prints a
// side-by-side table. Execution time is also shown normalized to the
// "sc" run when sequential consistency is in the list (otherwise to the
// first protocol), matching the paper's presentation.
func compareProtocols(spec, appName string, sc lazyrc.Scale, procs int, future bool, seed uint64, verify bool) {
	protos, err := config.ParseProtocols(spec)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		proto              string
		time               uint64
		cpu, rd, wr, sy    uint64
		missRate           float64
		msgs, payloadBytes uint64
	}
	rows := make([]row, 0, len(protos))
	for _, p := range protos {
		app, err := lazyrc.NewApp(appName, sc)
		if err != nil {
			log.Fatal(err)
		}
		cfg := lazyrc.DefaultConfig(procs)
		if future {
			cfg = lazyrc.FutureConfig(procs)
		}
		cfg.Seed = seed
		m, err := lazyrc.RunApp(cfg, p, app)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		if verify {
			if verr := app.Verify(); verr != nil {
				log.Fatalf("%s: verification failed: %v", p, verr)
			}
		}
		r := row{proto: p, time: m.Stats.ExecutionTime(), missRate: m.Stats.MissRate()}
		r.cpu, r.rd, r.wr, r.sy = m.Stats.Aggregate()
		r.msgs, r.payloadBytes = m.Net.Stats()
		rows = append(rows, r)
	}
	base := rows[0].time
	for _, r := range rows {
		if r.proto == "sc" {
			base = r.time
			break
		}
	}
	fmt.Printf("application %s (%s), %d processors\n", appName, sc, procs)
	w := tabwriter.NewWriter(os.Stdout, 0, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "protocol\tcycles\tnorm\tcpu\tread\twrite\tsync\tmiss\tmsgs\tbytes\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%d\t%d\t%d\t%d\t%.2f%%\t%d\t%d\t\n",
			r.proto, r.time, float64(r.time)/float64(base),
			r.cpu, r.rd, r.wr, r.sy, 100*r.missRate, r.msgs, r.payloadBytes)
	}
	w.Flush()
}

// runOracle re-runs the same application, seed, and protocol with fault
// injection off and compares end states: the faulted run must have
// completed like the reference, and — for workloads whose result is
// independent of processor interleaving — produced a bit-identical
// final memory image. A divergence means a fault leaked through the
// reliable transport into application state.
func runOracle(cfg lazyrc.Config, proto, appName string, sc lazyrc.Scale, faulted *lazyrc.Machine) {
	ref, err := lazyrc.NewApp(appName, sc)
	if err != nil {
		log.Fatal(err)
	}
	cfg.FaultPlan = ""
	rm, err := lazyrc.RunApp(cfg, proto, ref)
	if err != nil {
		log.Fatal(err)
	}
	if verr := ref.Verify(); verr != nil {
		log.Fatalf("oracle: fault-free reference failed verification: %v", verr)
	}
	if !rm.Completed() {
		log.Fatal("oracle: fault-free reference did not complete")
	}
	if !faulted.Completed() {
		log.Fatal("oracle: faulted run did not complete; reference did")
	}
	if !apps.TimingDependent(appName) {
		if fd, rd := faulted.MemDigest(), rm.MemDigest(); fd != rd {
			log.Fatalf("oracle: final memory diverged: faulted %s, fault-free %s", fd, rd)
		}
		fmt.Fprintln(os.Stderr, "oracle: end state matches the fault-free run (completion + bit-identical memory)")
		return
	}
	fmt.Fprintf(os.Stderr, "oracle: end state matches the fault-free run (completion; %s folds timing into its result, memory not compared)\n", appName)
}

// replay re-executes a recorded counterexample schedule and reports
// whether it reproduced the recorded run exactly.
func replay(path string) {
	s, err := mc.LoadSchedule(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %s: test %s, protocol %s, %d choices", path, s.Test, s.Proto, len(s.Choices))
	if s.Mutation != "" {
		fmt.Printf(", mutation %s", s.Mutation)
	}
	fmt.Println()
	res, err := mc.Replay(s)
	if err != nil {
		if res != nil {
			fmt.Printf("outcome %q (recorded %q)\n", res.Outcome, s.Outcome)
		}
		log.Fatal(err)
	}
	fmt.Printf("reproduced: outcome %q, final state hash %#x, %d choice points\n",
		res.Outcome, res.FinalHash, res.Choices)
	for _, r := range s.Reasons {
		fmt.Printf("recorded violation: %s\n", r)
	}
	for _, v := range res.Violations {
		fmt.Printf("reproduced violation: %s\n", v)
	}
	if len(s.Allowed) > 0 {
		fmt.Printf("SC-allowed outcomes: %v\n", s.Allowed)
	}
}

func printReport(out io.Writer, m *lazyrc.Machine, app lazyrc.App, sc lazyrc.Scale, proto string, procs int, contention, traffic bool) {
	w := tabwriter.NewWriter(out, 0, 8, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprintf(w, "application\t%s (%s)\n", app.Name(), sc)
	fmt.Fprintf(w, "protocol\t%s\n", proto)
	fmt.Fprintf(w, "processors\t%d\n", procs)
	fmt.Fprintf(w, "execution time\t%d cycles\n", m.Stats.ExecutionTime())
	cpu, rd, wr, sy := m.Stats.Aggregate()
	total := cpu + rd + wr + sy
	fmt.Fprintf(w, "aggregate cycles\t%d\n", total)
	if total > 0 {
		fmt.Fprintf(w, "  cpu\t%d (%.1f%%)\n", cpu, 100*float64(cpu)/float64(total))
		fmt.Fprintf(w, "  read stall\t%d (%.1f%%)\n", rd, 100*float64(rd)/float64(total))
		fmt.Fprintf(w, "  write stall\t%d (%.1f%%)\n", wr, 100*float64(wr)/float64(total))
		fmt.Fprintf(w, "  sync stall\t%d (%.1f%%)\n", sy, 100*float64(sy)/float64(total))
	}
	// Utilization and imbalance are derived from per-processor accounted
	// cycles and finish times. On a run that accounted no cycles (an
	// aborted run, a replay) both derivations are zero-valued noise, so
	// the lines are suppressed rather than printed as 0.0%.
	if total > 0 {
		var minU, maxU, sumU float64
		for i := range m.Stats.Procs {
			u := m.Stats.Procs[i].Utilization()
			if i == 0 || u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
			sumU += u
		}
		if n := len(m.Stats.Procs); n > 0 {
			fmt.Fprintf(w, "cpu utilization\t%.1f%% mean (%.1f%% min, %.1f%% max)\n",
				100*sumU/float64(n), 100*minU, 100*maxU)
		}
	}
	if imb := m.Stats.Imbalance(); imb > 0 {
		fmt.Fprintf(w, "load imbalance\t%.3f (max/mean finish time)\n", imb)
	}
	fmt.Fprintf(w, "miss rate\t%.3f%%\n", 100*m.Stats.MissRate())
	shares := m.Stats.MissShares()
	fmt.Fprintf(w, "  cold/true/false/evict/write\t%.1f%% / %.1f%% / %.1f%% / %.1f%% / %.1f%%\n",
		100*shares[lazyrc.Cold], 100*shares[lazyrc.TrueShare], 100*shares[lazyrc.FalseShare],
		100*shares[lazyrc.Eviction], 100*shares[lazyrc.WriteMiss])
	msgs, bytes := m.Net.Stats()
	fmt.Fprintf(w, "network\t%d messages, %d payload bytes\n", msgs, bytes)
	fmt.Fprintf(w, "shared footprint\t%d bytes\n", m.Footprint())
	if contention {
		w.Flush()
		fmt.Fprintln(out)
		fmt.Fprint(out, m.ContentionReport())
	}
	if traffic {
		w.Flush()
		fmt.Fprintln(out)
		fmt.Fprint(out, m.TrafficReport())
	}
}
