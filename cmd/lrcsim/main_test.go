package main

import (
	"bytes"
	"strings"
	"testing"

	"lazyrc"
)

func tinyRun(t *testing.T, metrics, spans bool) *lazyrc.Machine {
	t.Helper()
	cfg := lazyrc.DefaultConfig(8)
	m, err := lazyrc.NewMachine(cfg, "lrc")
	if err != nil {
		t.Fatal(err)
	}
	if metrics {
		m.EnableMetrics(5000)
	}
	if spans {
		m.EnableSpans(true, 0)
	}
	app, err := lazyrc.NewApp("gauss", lazyrc.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

func report(t *testing.T, m *lazyrc.Machine) string {
	t.Helper()
	app, err := lazyrc.NewApp("gauss", lazyrc.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	printReport(&buf, m, app, lazyrc.ScaleTiny, "lrc", 8, false, false)
	return buf.String()
}

// TestReportSuppressesDerivedLinesWithoutData pins the fix for the
// summary printing zero-valued derived metrics: on a machine that
// accounted no cycles (nothing ran), the cpu-utilization and
// load-imbalance lines are suppressed instead of rendering as 0.0%.
func TestReportSuppressesDerivedLinesWithoutData(t *testing.T) {
	m, err := lazyrc.NewMachine(lazyrc.DefaultConfig(8), "lrc")
	if err != nil {
		t.Fatal(err)
	}
	out := report(t, m)
	for _, banned := range []string{"cpu utilization", "load imbalance"} {
		if strings.Contains(out, banned) {
			t.Errorf("report shows %q with no accounted cycles:\n%s", banned, out)
		}
	}
	if !strings.Contains(out, "execution time") {
		t.Fatalf("report lost its headline lines:\n%s", out)
	}
}

// TestReportIdenticalAcrossInstrumentationMatrix runs the same workload
// under every combination of the -metrics and -spans flags and requires
// the printed summary to be byte-identical: both instruments are
// passive, so no flag combination may change a reported number — and a
// real run always carries the utilization and imbalance lines.
func TestReportIdenticalAcrossInstrumentationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var base string
	for _, c := range []struct{ metrics, spans bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		out := report(t, tinyRun(t, c.metrics, c.spans))
		if base == "" {
			base = out
			for _, want := range []string{"cpu utilization", "load imbalance"} {
				if !strings.Contains(out, want) {
					t.Fatalf("report missing %q after a real run:\n%s", want, out)
				}
			}
			continue
		}
		if out != base {
			t.Errorf("report differs with metrics=%v spans=%v:\n%s\nvs baseline:\n%s",
				c.metrics, c.spans, out, base)
		}
	}
}
