// Command lrcsimd is the simulator as a service: a long-running daemon
// that accepts simulation jobs and paper-evaluation sweeps over
// HTTP/JSON, executes them on a shared worker pool, deduplicates
// identical submissions by content fingerprint, persists every result in
// an indexed segment store (so a re-submitted experiment — even across
// daemon restarts — is served without re-simulation), streams job
// lifecycle events to any number of clients over SSE, and serves
// rendered HTML reports and Perfetto traces live.
//
// Usage:
//
//	lrcsimd [-addr 127.0.0.1:7077] [-store DIR] [-j N] [-grace 30s]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight sweeps drain (bounded by -grace, after which they
// are canceled cooperatively), the event bus closes every streaming
// client, and the store is flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lazyrc/internal/api"
	"lazyrc/internal/obs"
	"lazyrc/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lrcsimd: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "listen address")
		storeDir = flag.String("store", "", "segment-store directory for persistent results (empty: in-memory only)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker count")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown drain budget before in-flight work is canceled")
		version  = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("lrcsimd", obs.ReadBuildInfo().String())
		return
	}
	if err := run(*addr, *storeDir, *workers, *grace); err != nil {
		log.Fatal(err)
	}
}

func run(addr, storeDir string, workers int, grace time.Duration) error {
	// Two log streams, one destination: the legacy line logger keeps the
	// startup/shutdown banner; slog carries the structured request and
	// job-lifecycle records the daemon's observability layer emits.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir)
		if err != nil {
			return err
		}
		if n := st.Recovered(); n > 0 {
			log.Printf("store: dropped %d corrupt line(s) in %s; affected results will re-simulate", n, storeDir)
		}
		log.Printf("store: %s (%d results)", storeDir, st.Len())
	}

	svc := api.NewService(workers, st, logger)
	srv := &http.Server{Handler: api.NewServer(svc)}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on http://%s (%d workers)", ln.Addr(), workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		log.Printf("shutting down (drain budget %s)", grace)
	case err := <-errc:
		if st != nil {
			st.Close()
		}
		return fmt.Errorf("serve: %w", err)
	}

	// Orderly teardown. The service drains first (new submissions get
	// 503, in-flight sweeps finish or are canceled at the grace budget)
	// and its bus closes, which ends every SSE stream — only then can
	// srv.Shutdown see idle connections and return promptly.
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := svc.Close(shutCtx); err != nil {
		log.Printf("drain: %v (in-flight work was canceled)", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return fmt.Errorf("store close: %w", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bye")
	return nil
}
