// Protocolwalk traces the lazy protocol through the weak-state lifecycle
// of §2 of the paper on a 4-node machine: a block is read by everyone,
// written by two processors (weak transition, write notices, home-side
// acknowledgement collection), and finally invalidated at the writers'
// next acquire, reverting toward shared/uncached.
//
// This example peeks beneath the public API (internal/mesh message
// taps and internal/directory state) — it is a teaching tool for the
// protocol, not a template for applications.
package main

import (
	"fmt"
	"log"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
	"lazyrc/internal/mesh"
	"lazyrc/internal/protocol"
)

func main() {
	cfg := config.Default(4)
	cfg.CheckInvariants = true
	m, err := machine.New(cfg, "lrc")
	if err != nil {
		log.Fatal(err)
	}

	a := m.AllocF64(2)
	block := a.At(0) / uint64(cfg.LineSize)
	home := m.Env.HomeOf(block)
	lock := m.NewLock()
	bar := m.NewBarrier(4)

	m.Net.Trace = func(msg mesh.Msg) {
		if msg.Addr != block {
			return
		}
		fmt.Printf("%7d  %d -> %d  %-12v\n", m.Eng.Now(), msg.Src, msg.Dst, protocol.MsgKind(msg.Kind))
	}
	state := func(label string) {
		e := m.Nodes[home].Dir.Peek(block)
		if e == nil {
			fmt.Printf("          [%s] block %d: no directory entry yet\n", label, block)
			return
		}
		fmt.Printf("          [%s] block %d at home %d: %v (%d sharers, %d writers)\n",
			label, block, home, e.State, e.Sharers.Len(), e.Writers.Len())
	}

	fmt.Println("cycle     message                    (block", block, ", home node", home, ")")
	m.Run(func(p *machine.Proc) {
		p.ReadF64(a.At(0)) // every node becomes a sharer
		p.Barrier(bar)
		if p.ID() == 0 {
			state("all read")
		}
		if p.ID() <= 1 {
			p.WriteF64(a.At(p.ID()), 1.0) // two writers: weak transition
		}
		p.Compute(4000) // let notices and acks settle
		p.Barrier(bar)
		if p.ID() == 0 {
			state("two writers")
		}
		p.Acquire(lock) // acquire processes the pending invalidations
		p.Release(lock)
		p.Compute(4000)
		p.Barrier(bar)
		if p.ID() == 0 {
			state("after acquires")
		}
	})
}
