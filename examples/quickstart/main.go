// Quickstart: build a 16-processor machine running the lazy protocol,
// run a lock-protected shared counter plus a barrier-phased vector sum,
// and print the timing statistics the simulator collects.
package main

import (
	"fmt"
	"log"

	"lazyrc"
)

func main() {
	cfg := lazyrc.DefaultConfig(16)
	m, err := lazyrc.NewMachine(cfg, "lrc")
	if err != nil {
		log.Fatal(err)
	}

	const n = 4096
	vec := m.AllocF64(n)
	partial := m.AllocF64(16)
	total := m.AllocF64(1)
	lock := m.NewLock()
	bar := m.NewBarrier(16)

	for i := 0; i < n; i++ {
		vec.Poke(i, float64(i%7))
	}

	m.Run(func(p *lazyrc.Proc) {
		me, np := p.ID(), p.NProcs()
		// Phase 1: each processor sums its contiguous chunk.
		sum := 0.0
		for i := me * n / np; i < (me+1)*n/np; i++ {
			sum += p.ReadF64(vec.At(i))
			p.Compute(1)
		}
		p.WriteF64(partial.At(me), sum)
		p.Barrier(bar)

		// Phase 2: fold the partials into a lock-protected total.
		p.Acquire(lock)
		p.WriteF64(total.At(0), p.ReadF64(total.At(0))+p.ReadF64(partial.At(me)))
		p.Release(lock)
		p.Barrier(bar)
	})

	fmt.Printf("total          = %v (want %v)\n", total.Peek(0), 4096/7*21)
	fmt.Printf("execution time = %d cycles\n", m.Stats.ExecutionTime())
	cpu, rd, wr, sy := m.Stats.Aggregate()
	fmt.Printf("aggregate      = cpu %d, read %d, write %d, sync %d cycles\n", cpu, rd, wr, sy)
	fmt.Printf("miss rate      = %.3f%%\n", 100*m.Stats.MissRate())
	msgs, bytes := m.Net.Stats()
	fmt.Printf("network        = %d messages, %d payload bytes\n", msgs, bytes)
}
