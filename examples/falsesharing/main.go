// Falsesharing demonstrates the paper's headline effect: processors
// writing disjoint words of the same cache line ping-pong the block
// under eager release consistency, while the lazy protocol lets them all
// hold writable copies until their next acquire.
//
// The program runs the same kernel — every processor repeatedly updating
// its own slot of one packed (then one padded) array — under ERC and LRC
// and prints the miss counts and execution times side by side.
package main

import (
	"fmt"
	"log"

	"lazyrc"
)

const (
	procs  = 16
	rounds = 200
)

func run(proto string, padded bool) (execTime, misses uint64) {
	cfg := lazyrc.DefaultConfig(procs)
	m, err := lazyrc.NewMachine(cfg, proto)
	if err != nil {
		log.Fatal(err)
	}
	stride := 1
	if padded {
		stride = cfg.LineSize / 8 // one slot per cache line
	}
	slots := m.AllocF64(procs * stride)
	m.Run(func(p *lazyrc.Proc) {
		slot := slots.At(p.ID() * stride)
		for r := 0; r < rounds; r++ {
			p.WriteF64(slot, float64(r))
			p.Compute(50)
		}
	})
	for i := range m.Stats.Procs {
		misses += m.Stats.Procs[i].TotalMisses()
	}
	return m.Stats.ExecutionTime(), misses
}

func main() {
	fmt.Printf("%d processors, %d rounds of one-word updates each\n\n", procs, rounds)
	fmt.Printf("%-28s %12s %10s\n", "layout / protocol", "exec cycles", "misses")
	for _, padded := range []bool{false, true} {
		layout := "packed (false sharing)"
		if padded {
			layout = "padded (line per slot)"
		}
		for _, proto := range []string{"erc", "lrc"} {
			t, miss := run(proto, padded)
			fmt.Printf("%-28s %12d %10d\n", layout+" / "+proto, t, miss)
		}
	}
	fmt.Println("\nWith the packed layout, ERC invalidates every other writer on")
	fmt.Println("each update; LRC admits all writers concurrently and only")
	fmt.Println("invalidates at acquires. Padding removes the effect entirely.")
}
