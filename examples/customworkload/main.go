// Customworkload shows how to write a new workload against the public
// API and compare protocols on it: a pipelined producer/consumer chain in
// which each processor filters a block of samples and hands it to its
// neighbor through a one-shot flag — release consistency's
// producer/consumer idiom.
package main

import (
	"fmt"
	"log"

	"lazyrc"
)

const (
	procs   = 8
	samples = 512 // per stage
)

func run(proto string) (execTime uint64, checksum float64) {
	m, err := lazyrc.NewMachine(lazyrc.DefaultConfig(procs), proto)
	if err != nil {
		log.Fatal(err)
	}
	// One buffer per pipeline stage; stage p reads buffer p-1 and
	// writes buffer p. ready[p] announces buffer p.
	bufs := make([]lazyrc.F64, procs)
	for i := range bufs {
		bufs[i] = m.AllocF64(samples)
	}
	ready := m.NewFlags(procs)
	for i := 0; i < samples; i++ {
		bufs[0].Poke(i, float64(i%13)+0.5)
	}

	m.Run(func(p *lazyrc.Proc) {
		me := p.ID()
		if me == 0 {
			// Stage 0's input is pre-initialized; just announce it.
			p.SetFlag(ready[0])
			return
		}
		p.WaitFlag(ready[me-1])
		in, out := bufs[me-1], bufs[me]
		// A three-tap smoothing filter over the predecessor's buffer.
		for i := 0; i < samples; i++ {
			prev := p.ReadF64(in.At(max(i-1, 0)))
			cur := p.ReadF64(in.At(i))
			next := p.ReadF64(in.At(min(i+1, samples-1)))
			p.Compute(6)
			p.WriteF64(out.At(i), 0.25*prev+0.5*cur+0.25*next)
		}
		p.SetFlag(ready[me])
	})

	for i := 0; i < samples; i++ {
		checksum += bufs[procs-1].Peek(i)
	}
	return m.Stats.ExecutionTime(), checksum
}

func main() {
	fmt.Printf("%d-stage pipeline over %d samples\n\n", procs, samples)
	var want float64
	for _, proto := range lazyrc.Protocols() {
		t, sum := run(proto)
		if want == 0 {
			want = sum
		}
		status := "ok"
		if sum != want {
			status = "MISMATCH"
		}
		fmt.Printf("%-8s exec = %9d cycles, checksum = %.6f (%s)\n", proto, t, sum, status)
	}
	fmt.Println("\nEvery protocol computes the same result; they differ only in")
	fmt.Println("how long the producer-to-consumer handoffs take.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
