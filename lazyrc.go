// Package lazyrc is a cycle-level simulation study of lazy release
// consistency for hardware-coherent multiprocessors, reproducing
// Kontothanassis, Scott, and Bianchini (Supercomputing '95).
//
// It provides:
//
//   - a deterministic execution-driven multiprocessor simulator — mesh
//     interconnect, finite direct-mapped caches, write buffers,
//     distributed directories, and contended memory modules;
//   - six coherence protocols: sequential consistency (SC), eager
//     release consistency in the style of DASH (ERC), the paper's lazy
//     release consistency (LRC), the lazier variant that defers write
//     notices to release points (LRCExt), and two timestamp-based
//     lease protocols with no invalidation traffic at all (Tardis and
//     its relaxed Tardis 2.0 successor);
//   - the paper's seven SPLASH-suite workloads re-implemented as real,
//     verified computations over the simulated shared address space;
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// # Quick start
//
//	cfg := lazyrc.DefaultConfig(64)
//	m, err := lazyrc.NewMachine(cfg, "lrc")
//	if err != nil { ... }
//	counter := m.AllocI64(1)
//	lock := m.NewLock()
//	m.Run(func(p *lazyrc.Proc) {
//		p.Acquire(lock)
//		p.WriteI64(counter.At(0), p.ReadI64(counter.At(0))+1)
//		p.Release(lock)
//	})
//	fmt.Println(m.Stats.ExecutionTime())
//
// See the examples directory for runnable programs and cmd/paperbench
// for the paper's full evaluation.
package lazyrc

import (
	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/exp"
	"lazyrc/internal/machine"
	"lazyrc/internal/protocol"
	"lazyrc/internal/stats"
)

// Config is the simulated machine's parameter table (Table 1 of the
// paper).
type Config = config.Config

// DefaultConfig returns the paper's Table 1 parameters for n processors.
func DefaultConfig(n int) Config { return config.Default(n) }

// FutureConfig returns the §4.3 future-machine parameters (40-cycle
// memory startup, 4 bytes/cycle bandwidth, 256-byte lines).
func FutureConfig(n int) Config { return config.Future(n) }

// Machine is one simulated multiprocessor.
type Machine = machine.Machine

// Proc is the per-processor handle a workload runs against.
type Proc = machine.Proc

// Addr is a simulated shared-memory address.
type Addr = machine.Addr

// Lock, Barrier, and Flag are the synchronization objects whose acquire
// and release operations carry the consistency-model semantics.
type (
	Lock    = machine.Lock
	Barrier = machine.Barrier
	Flag    = machine.Flag
)

// F64 and I64 are handles to shared arrays.
type (
	F64 = machine.F64
	I64 = machine.I64
)

// ProcStats is one processor's cycle breakdown and miss counts.
type ProcStats = stats.Proc

// MissKind classifies a miss (cold, true, false, eviction, write).
type MissKind = stats.MissKind

// Miss categories, as in Table 2 of the paper.
const (
	Cold       = stats.Cold
	TrueShare  = stats.TrueShare
	FalseShare = stats.FalseShare
	Eviction   = stats.Eviction
	WriteMiss  = stats.WriteMiss
)

// NewMachine builds a machine running the named protocol: "sc", "erc",
// "lrc", "lrc-ext", "tardis", or "tardis2".
func NewMachine(cfg Config, proto string) (*Machine, error) {
	return machine.New(cfg, proto)
}

// Protocols lists the available protocol names in evaluation order.
func Protocols() []string { return protocol.Names() }

// App is one of the paper's workloads.
type App = apps.App

// Scale selects a workload input size (ScaleTiny through ScalePaper).
type Scale = apps.Scale

// Workload input scales.
const (
	ScaleTiny   = apps.Tiny
	ScaleSmall  = apps.Small
	ScaleMedium = apps.Medium
	ScalePaper  = apps.Paper
)

// ParseScale converts "tiny", "small", "medium", or "paper" to a Scale.
func ParseScale(s string) (Scale, error) { return apps.ParseScale(s) }

// NewApp instantiates a workload by name: "gauss", "fft", "blu",
// "barnes-hut", "cholesky", "locusroute", or "mp3d".
func NewApp(name string, scale Scale) (App, error) { return apps.New(name, scale) }

// AppNames lists the available workloads.
func AppNames() []string { return apps.Names() }

// RunApp executes a workload on a fresh machine and verifies its result.
func RunApp(cfg Config, proto string, app App) (*Machine, error) {
	return apps.Run(cfg, proto, app)
}

// Evaluator runs and memoizes the paper's experiment matrix.
type Evaluator = exp.Evaluator

// NewEvaluator returns an evaluator at the given scale and machine size
// (the paper evaluates 64 processors).
func NewEvaluator(scale Scale, procs int) *Evaluator { return exp.NewEvaluator(scale, procs) }
