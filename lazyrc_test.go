package lazyrc_test

import (
	"fmt"
	"testing"

	"lazyrc"
)

// ExampleNewMachine builds a 4-processor lazy-RC machine and runs a
// lock-protected counter on it.
func ExampleNewMachine() {
	m, err := lazyrc.NewMachine(lazyrc.DefaultConfig(4), "lrc")
	if err != nil {
		panic(err)
	}
	counter := m.AllocI64(1)
	lock := m.NewLock()
	m.Run(func(p *lazyrc.Proc) {
		for i := 0; i < 3; i++ {
			p.Acquire(lock)
			p.WriteI64(counter.At(0), p.ReadI64(counter.At(0))+1)
			p.Release(lock)
		}
	})
	fmt.Println("counter:", counter.Peek(0))
	// Output: counter: 12
}

// ExampleRunApp runs one of the paper's workloads and verifies it.
func ExampleRunApp() {
	app, err := lazyrc.NewApp("gauss", lazyrc.ScaleTiny)
	if err != nil {
		panic(err)
	}
	m, err := lazyrc.RunApp(lazyrc.DefaultConfig(8), "lrc", app)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", err == nil, "finished:", m.Stats.ExecutionTime() > 0)
	// Output: verified: true finished: true
}

// ExampleProtocols lists the six protocols under evaluation.
func ExampleProtocols() {
	fmt.Println(lazyrc.Protocols())
	// Output: [sc erc lrc lrc-ext tardis tardis2]
}

func TestAppNamesStable(t *testing.T) {
	names := lazyrc.AppNames()
	if len(names) != 7 {
		t.Fatalf("apps = %v, want the paper's seven", names)
	}
}

func TestFacadeScaleRoundTrip(t *testing.T) {
	for _, s := range []lazyrc.Scale{lazyrc.ScaleTiny, lazyrc.ScaleSmall, lazyrc.ScaleMedium, lazyrc.ScalePaper} {
		got, err := lazyrc.ParseScale(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
}

func TestFacadeConfigs(t *testing.T) {
	d := lazyrc.DefaultConfig(64)
	f := lazyrc.FutureConfig(64)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.LineSize <= d.LineSize || f.MemSetup <= d.MemSetup {
		t.Fatal("future machine must have longer lines and higher latency")
	}
}

func TestEvaluatorThroughFacade(t *testing.T) {
	e := lazyrc.NewEvaluator(lazyrc.ScaleTiny, 4)
	r := e.Get("default", "fft", "lrc")
	if r.VerifyErr != nil {
		t.Fatal(r.VerifyErr)
	}
	if r.ExecTime == 0 || r.MissRate <= 0 {
		t.Fatalf("implausible run: %+v", r)
	}
}

func TestRunAppRejectsBadProtocol(t *testing.T) {
	app, err := lazyrc.NewApp("fft", lazyrc.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazyrc.RunApp(lazyrc.DefaultConfig(4), "mesi", app); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestNewAppRejectsUnknown(t *testing.T) {
	if _, err := lazyrc.NewApp("raytrace", lazyrc.ScaleTiny); err == nil {
		t.Fatal("unknown app accepted")
	}
}
