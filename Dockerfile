# Build and package lrcsimd, the multi-tenant experiment daemon. The
# simulator is pure Go with no cgo and no external dependencies, so the
# runtime stage is a bare distroless image: one static binary plus a
# volume for the persistent result store.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/lrcsimd ./cmd/lrcsimd

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/lrcsimd /usr/local/bin/lrcsimd
# The result store persists simulation results across restarts; mount it
# to keep warm-cache behaviour (and the sweep registry) between runs.
VOLUME /data
EXPOSE 7077
ENTRYPOINT ["/usr/local/bin/lrcsimd", "-addr", ":7077", "-store", "/data"]
