package cache

import (
	"testing"
	"testing/quick"
)

func TestWriteBufferCoalesceAndFill(t *testing.T) {
	w := NewWriteBuffer(2)
	if !w.Empty() || w.Full() {
		t.Fatal("fresh buffer state wrong")
	}
	alloc, ok := w.Put(10, 0)
	if !alloc || !ok {
		t.Fatal("first put should allocate")
	}
	alloc, ok = w.Put(10, 3)
	if alloc || !ok {
		t.Fatal("same-line put should coalesce")
	}
	if e := w.Find(10); e == nil || e.Words != (1|1<<3) {
		t.Fatalf("entry = %+v", e)
	}
	w.Put(11, 0)
	if !w.Full() {
		t.Fatal("buffer should be full at capacity")
	}
	if _, ok := w.Put(12, 0); ok {
		t.Fatal("put into full buffer succeeded")
	}
	// Coalescing still works when full.
	if _, ok := w.Put(11, 5); !ok {
		t.Fatal("coalescing into full buffer failed")
	}
	total, coalesced, stalls := w.Stats()
	if total != 4 || coalesced != 2 || stalls != 1 {
		t.Fatalf("stats total=%d coalesced=%d stalls=%d", total, coalesced, stalls)
	}
}

func TestWriteBufferRetireOrder(t *testing.T) {
	w := NewWriteBuffer(4)
	w.Put(1, 0)
	w.Put(2, 0)
	w.Put(3, 0)
	if w.Oldest().Block != 1 {
		t.Fatal("oldest wrong")
	}
	e := w.Retire(2)
	if e.Block != 2 || w.Len() != 2 {
		t.Fatalf("retire(2) = %+v len=%d", e, w.Len())
	}
	if w.Find(2) != nil {
		t.Fatal("retired entry still present")
	}
}

func TestWriteBufferRetireAbsentPanics(t *testing.T) {
	w := NewWriteBuffer(2)
	defer func() {
		if recover() == nil {
			t.Fatal("retiring absent entry did not panic")
		}
	}()
	w.Retire(99)
}

func TestCoalescingBufferMergeAndCapacity(t *testing.T) {
	b := NewCoalescingBuffer(2)
	if _, drain := b.Put(1, 0); drain {
		t.Fatal("drain from empty buffer")
	}
	if _, drain := b.Put(1, 7); drain {
		t.Fatal("merge caused drain")
	}
	if _, drain := b.Put(2, 0); drain {
		t.Fatal("second entry caused drain")
	}
	// Third distinct block pushes out the oldest (block 1).
	drained, drain := b.Put(3, 1)
	if !drain || drained.Block != 1 || drained.Words != (1|1<<7) {
		t.Fatalf("drained = %+v drain=%v", drained, drain)
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	ins, merges, capd := b.Stats()
	if ins != 3 || merges != 1 || capd != 1 {
		t.Fatalf("stats ins=%d merges=%d capd=%d", ins, merges, capd)
	}
}

func TestCoalescingBufferRemoveAndDrainAll(t *testing.T) {
	b := NewCoalescingBuffer(4)
	b.Put(1, 0)
	b.Put(2, 0)
	b.Put(3, 0)
	e, present := b.Remove(2)
	if !present || e.Block != 2 {
		t.Fatalf("remove(2) = %+v %v", e, present)
	}
	if _, present := b.Remove(2); present {
		t.Fatal("double remove found entry")
	}
	all := b.DrainAll()
	if len(all) != 2 || all[0].Block != 1 || all[1].Block != 3 {
		t.Fatalf("drainAll = %+v", all)
	}
	if !b.Empty() {
		t.Fatal("buffer not empty after DrainAll")
	}
}

func TestCBEntryDirtyBytes(t *testing.T) {
	e := CBEntry{Words: 1 | 1<<3 | 1<<15}
	if got := e.DirtyBytes(8); got != 24 {
		t.Fatalf("DirtyBytes = %d, want 24", got)
	}
	if got := (CBEntry{}).DirtyBytes(8); got != 0 {
		t.Fatalf("empty DirtyBytes = %d, want 0", got)
	}
}

func TestCoalescingBufferNeverExceedsCapProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		b := NewCoalescingBuffer(4)
		for _, blk := range blocks {
			b.Put(uint64(blk%16), int(blk%8))
			if b.Len() > b.Cap() {
				return false
			}
		}
		// Word masks for a block must be the union of its writes since
		// the last time it drained — at minimum, non-zero.
		for _, e := range b.DrainAll() {
			if e.Words == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBufferNeverExceedsCapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		w := NewWriteBuffer(4)
		for _, o := range ops {
			block := uint64(o % 32)
			if _, ok := w.Put(block, int(o%8)); !ok {
				// Full: retire the oldest to make room, as a protocol would.
				w.Retire(w.Oldest().Block)
				if _, ok := w.Put(block, int(o%8)); !ok {
					return false
				}
			}
			if w.Len() > w.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingBufferHas(t *testing.T) {
	b := NewCoalescingBuffer(2)
	if b.Has(5) {
		t.Fatal("empty buffer has entry")
	}
	b.Put(5, 0)
	if !b.Has(5) || b.Has(6) {
		t.Fatal("Has wrong")
	}
}
