package cache

import "lazyrc/internal/telemetry"

// CoalescingBuffer is the fully associative coalescing buffer the lazy
// protocols place after their write-through caches (16 entries in the
// paper's configuration, after Jouppi). It merges word-granularity
// write-throughs to the same block so that data traffic stays comparable
// to a write-back cache while preserving the simple design and low
// release-synchronization cost of write-through.
//
// Entries drain to the block's home memory: on capacity pressure (oldest
// first), when the block leaves the cache, and en masse at release
// operations. The protocol layer performs the drains and tracks their
// acknowledgements; the buffer tracks contents and FIFO age.
type CoalescingBuffer struct {
	cap     int
	entries []CBEntry

	merges    uint64 // writes absorbed into an existing entry
	inserts   uint64 // new entries created
	capDrains uint64 // entries pushed out by capacity pressure

	// Telemetry (nil clock = disabled): entries are stamped with their
	// allocation cycle so every drain path can observe residency.
	clock func() uint64
	resid *telemetry.Histogram
}

// CBEntry is the pending write-through state for one block.
type CBEntry struct {
	Block uint64
	Words uint64 // mask of words to merge into memory

	born uint64 // allocation cycle (telemetry only; excluded from snapshots)
}

// DirtyBytes returns the payload size of draining this entry, given the
// word size in bytes.
func (e CBEntry) DirtyBytes(wordSize int) int {
	n := 0
	for m := e.Words; m != 0; m &= m - 1 {
		n++
	}
	return n * wordSize
}

// NewCoalescingBuffer returns a buffer with the given capacity.
func NewCoalescingBuffer(capacity int) *CoalescingBuffer {
	if capacity < 1 {
		panic("cache: coalescing buffer needs capacity >= 1")
	}
	return &CoalescingBuffer{cap: capacity}
}

// EnableTelemetry stamps entries with their allocation cycle (via clock)
// and observes each entry's buffer residency into resid when it drains —
// by capacity pressure, targeted removal, or a release-point flush.
func (b *CoalescingBuffer) EnableTelemetry(clock func() uint64, resid *telemetry.Histogram) {
	b.clock = clock
	b.resid = resid
}

// observeDrain records one draining entry's residency.
func (b *CoalescingBuffer) observeDrain(e CBEntry) {
	if b.clock != nil {
		b.resid.Observe(b.clock() - e.born)
	}
}

// Cap returns the entry capacity.
func (b *CoalescingBuffer) Cap() int { return b.cap }

// Len returns the number of occupied entries.
func (b *CoalescingBuffer) Len() int { return len(b.entries) }

// Empty reports whether the buffer has drained.
func (b *CoalescingBuffer) Empty() bool { return len(b.entries) == 0 }

// Put merges a write to word of block. If the buffer is full and block
// has no entry, the oldest entry is evicted and returned for draining
// (drain=true). The new write is always accepted.
func (b *CoalescingBuffer) Put(block uint64, word int) (drained CBEntry, drain bool) {
	for i := range b.entries {
		if b.entries[i].Block == block {
			b.entries[i].Words |= 1 << uint(word)
			b.merges++
			return CBEntry{}, false
		}
	}
	if len(b.entries) >= b.cap {
		drained = b.entries[0]
		b.entries = b.entries[1:]
		b.capDrains++
		drain = true
		b.observeDrain(drained)
	}
	e := CBEntry{Block: block, Words: 1 << uint(word)}
	if b.clock != nil {
		e.born = b.clock()
	}
	b.entries = append(b.entries, e)
	b.inserts++
	return drained, drain
}

// Visit calls fn for every entry in FIFO order — canonical iteration for
// state snapshots.
func (b *CoalescingBuffer) Visit(fn func(CBEntry)) {
	for _, e := range b.entries {
		fn(e)
	}
}

// Has reports whether block has a pending entry.
func (b *CoalescingBuffer) Has(block uint64) bool {
	for i := range b.entries {
		if b.entries[i].Block == block {
			return true
		}
	}
	return false
}

// Remove extracts the entry for block if present (e.g., the block is
// being invalidated or evicted and its pending update must be pushed to
// memory first).
func (b *CoalescingBuffer) Remove(block uint64) (e CBEntry, present bool) {
	for i := range b.entries {
		if b.entries[i].Block == block {
			e = b.entries[i]
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			b.observeDrain(e)
			return e, true
		}
	}
	return CBEntry{}, false
}

// DrainAll removes and returns every entry in FIFO order — the release-
// point flush.
func (b *CoalescingBuffer) DrainAll() []CBEntry {
	out := b.entries
	b.entries = nil
	for _, e := range out {
		b.observeDrain(e)
	}
	return out
}

// Stats returns inserts, merges, and capacity drains.
func (b *CoalescingBuffer) Stats() (inserts, merges, capDrains uint64) {
	return b.inserts, b.merges, b.capDrains
}
