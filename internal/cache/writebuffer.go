package cache

import "lazyrc/internal/telemetry"

// WriteBuffer is the small CPU-side write buffer used by the relaxed
// protocols (4 entries in the paper's configuration). Reads bypass it;
// writes to the same cache line coalesce into one entry; the processor
// stalls when it is full and at release points until it drains.
//
// Each entry represents a pending store awaiting permission to be
// performed in the cache (data return for a miss, ownership or
// write-notice acknowledgement depending on the protocol). The protocol
// retires entries; the buffer only tracks membership and order.
type WriteBuffer struct {
	cap     int
	entries []WBEntry

	stalls    uint64 // times the CPU found the buffer full
	coalesced uint64 // stores merged into an existing entry
	total     uint64 // stores presented

	// Telemetry (nil clock = disabled): entries are stamped with their
	// allocation cycle so retirement can observe residency — the drain
	// latency a store waits in the buffer before being performed.
	clock func() uint64
	resid *telemetry.Histogram
}

// WBEntry is one pending line's worth of buffered stores.
type WBEntry struct {
	Block uint64
	Words uint64 // mask of words written while buffered

	born uint64 // allocation cycle (telemetry only; excluded from snapshots)
}

// NewWriteBuffer returns a buffer with the given entry capacity.
func NewWriteBuffer(capacity int) *WriteBuffer {
	if capacity < 1 {
		panic("cache: write buffer needs capacity >= 1")
	}
	return &WriteBuffer{cap: capacity}
}

// EnableTelemetry stamps entries with their allocation cycle (via clock)
// and observes each entry's buffer residency into resid when it retires.
func (w *WriteBuffer) EnableTelemetry(clock func() uint64, resid *telemetry.Histogram) {
	w.clock = clock
	w.resid = resid
}

// Cap returns the entry capacity.
func (w *WriteBuffer) Cap() int { return w.cap }

// Len returns the number of occupied entries.
func (w *WriteBuffer) Len() int { return len(w.entries) }

// Full reports whether a store to a new line would stall.
func (w *WriteBuffer) Full() bool { return len(w.entries) >= w.cap }

// Empty reports whether the buffer has drained.
func (w *WriteBuffer) Empty() bool { return len(w.entries) == 0 }

// Find returns the entry for block, or nil.
func (w *WriteBuffer) Find(block uint64) *WBEntry {
	for i := range w.entries {
		if w.entries[i].Block == block {
			return &w.entries[i]
		}
	}
	return nil
}

// Put records a store to word of block. It reports whether the store
// coalesced into an existing entry (ok=true, allocated=false), allocated
// a new entry (ok=true, allocated=true), or found the buffer full
// (ok=false) — in which case the processor must stall and retry.
func (w *WriteBuffer) Put(block uint64, word int) (allocated, ok bool) {
	w.total++
	if e := w.Find(block); e != nil {
		e.Words |= 1 << uint(word)
		w.coalesced++
		return false, true
	}
	if w.Full() {
		w.stalls++
		w.total--
		return false, false
	}
	e := WBEntry{Block: block, Words: 1 << uint(word)}
	if w.clock != nil {
		e.born = w.clock()
	}
	w.entries = append(w.entries, e)
	return true, true
}

// Retire removes the entry for block, returning it. Retiring an absent
// block panics: protocols must retire exactly what they queued.
func (w *WriteBuffer) Retire(block uint64) WBEntry {
	for i := range w.entries {
		if w.entries[i].Block == block {
			e := w.entries[i]
			w.entries = append(w.entries[:i], w.entries[i+1:]...)
			if w.clock != nil {
				w.resid.Observe(w.clock() - e.born)
			}
			return e
		}
	}
	panic("cache: retiring absent write-buffer entry")
}

// Visit calls fn for every entry in FIFO order — canonical iteration for
// state snapshots.
func (w *WriteBuffer) Visit(fn func(WBEntry)) {
	for _, e := range w.entries {
		fn(e)
	}
}

// Oldest returns the oldest entry, or nil if empty.
func (w *WriteBuffer) Oldest() *WBEntry {
	if len(w.entries) == 0 {
		return nil
	}
	return &w.entries[0]
}

// Stats returns stores presented, stores coalesced, and full stalls.
func (w *WriteBuffer) Stats() (total, coalesced, stalls uint64) {
	return w.total, w.coalesced, w.stalls
}
