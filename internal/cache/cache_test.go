package cache

import (
	"testing"
	"testing/quick"
)

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "INV" || ReadOnly.String() != "RO" || ReadWrite.String() != "RW" {
		t.Fatal("state mnemonics wrong")
	}
}

func TestDirectMappedHitMissEvict(t *testing.T) {
	c := New(4) // blocks b and b+4 conflict
	if c.Lookup(1) != nil {
		t.Fatal("hit in empty cache")
	}
	if _, ev := c.Fill(1, ReadOnly); ev {
		t.Fatal("eviction filling empty frame")
	}
	if l := c.Lookup(1); l == nil || l.State != ReadOnly {
		t.Fatal("miss after fill")
	}
	// Conflicting block evicts.
	victim, ev := c.Fill(5, ReadWrite)
	if !ev || victim.Block != 1 {
		t.Fatalf("fill(5) victim = %+v ev=%v, want block 1", victim, ev)
	}
	if c.Lookup(1) != nil {
		t.Fatal("evicted block still present")
	}
	// Non-conflicting block coexists.
	if _, ev := c.Fill(2, ReadOnly); ev {
		t.Fatal("unexpected eviction")
	}
	if c.Lookup(5) == nil || c.Lookup(2) == nil {
		t.Fatal("resident blocks missing")
	}
	fills, evs, _ := c.Stats()
	if fills != 3 || evs != 1 {
		t.Fatalf("stats fills=%d evs=%d, want 3,1", fills, evs)
	}
}

func TestUpgradeInPlace(t *testing.T) {
	c := New(4)
	c.Fill(3, ReadOnly)
	victim, ev := c.Fill(3, ReadWrite)
	if ev {
		t.Fatalf("upgrade evicted %+v", victim)
	}
	if l := c.Lookup(3); l == nil || l.State != ReadWrite {
		t.Fatal("upgrade lost the line")
	}
	fills, _, _ := c.Stats()
	if fills != 1 {
		t.Fatalf("upgrade counted as fill: %d", fills)
	}
}

func TestInvalidateAndDirtyBits(t *testing.T) {
	c := New(8)
	c.Fill(9, ReadWrite)
	c.MarkDirty(9, 0)
	c.MarkDirty(9, 15)
	old, present := c.Invalidate(9)
	if !present || old.Dirty != (1|1<<15) {
		t.Fatalf("invalidate = %+v %v", old, present)
	}
	if _, present := c.Invalidate(9); present {
		t.Fatal("second invalidate found the block")
	}
	if c.Lookup(9) != nil {
		t.Fatal("block present after invalidate")
	}
}

func TestMarkDirtyOnReadOnlyPanics(t *testing.T) {
	c := New(4)
	c.Fill(1, ReadOnly)
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty on RO line did not panic")
		}
	}()
	c.MarkDirty(1, 0)
}

func TestVisitValid(t *testing.T) {
	c := New(16)
	for b := uint64(0); b < 5; b++ {
		c.Fill(b, ReadOnly)
	}
	n := 0
	c.VisitValid(func(l *Line) { n++ })
	if n != 5 {
		t.Fatalf("visited %d lines, want 5", n)
	}
}

func TestCacheConsistencyProperty(t *testing.T) {
	// Property: after any sequence of fills and invalidates, Lookup(b)
	// succeeds iff b was the last block filled into its frame and not
	// invalidated since.
	type op struct {
		Block uint8
		Inv   bool
	}
	f := func(ops []op) bool {
		const frames = 8
		c := New(frames)
		shadow := map[uint64]uint64{} // frame -> resident block (+1)
		for _, o := range ops {
			b := uint64(o.Block)
			fr := b % frames
			if o.Inv {
				c.Invalidate(b)
				if shadow[fr] == b+1 {
					delete(shadow, fr)
				}
			} else {
				c.Fill(b, ReadOnly)
				shadow[fr] = b + 1
			}
		}
		for b := uint64(0); b < 256; b++ {
			want := shadow[b%frames] == b+1
			if (c.Lookup(b) != nil) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesAndDowngrade(t *testing.T) {
	c := New(8)
	if c.Lines() != 8 {
		t.Fatalf("Lines = %d", c.Lines())
	}
	c.Fill(3, ReadWrite)
	c.MarkDirty(3, 2)
	c.Downgrade(3)
	if l := c.Lookup(3); l == nil || l.State != ReadOnly || l.Dirty != 0 {
		t.Fatalf("after downgrade: %+v", l)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("downgrading absent block did not panic")
		}
	}()
	c.Downgrade(99)
}

func TestUpgradeAbsentPanics(t *testing.T) {
	c := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("upgrading absent block did not panic")
		}
	}()
	c.Upgrade(7)
}
