// Package cache models the per-processor memory-side data structures of
// the simulated nodes: a direct-mapped data cache with per-word dirty
// bits, the small CPU-side write buffer used by the relaxed-consistency
// protocols, and the coalescing write-through buffer that the lazy
// protocols place between the cache and the memory system (§2 of the
// paper, after Jouppi's coalescing buffer).
//
// These are pure state containers: all timing decisions (what a miss
// costs, when a buffer drains) belong to the protocol layer.
package cache

import "fmt"

// LineState is the state of a line in a local cache. This is the minor,
// per-copy state of the paper — invalid, read-only, or read-write — not
// the global directory state.
type LineState uint8

const (
	// Invalid marks a line with no valid copy.
	Invalid LineState = iota
	// ReadOnly marks a clean copy that may be read but not written.
	ReadOnly
	// ReadWrite marks a copy the local processor is writing.
	ReadWrite
)

// String returns a short mnemonic for the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "INV"
	case ReadOnly:
		return "RO"
	case ReadWrite:
		return "RW"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Line is one cache frame. Block is the global block number (address /
// line size); Dirty has one bit per word written locally since the line
// was filled (meaningful for write-back caches and for coalescing).
type Line struct {
	Block uint64
	State LineState
	Dirty uint64
}

// Cache is a direct-mapped cache over fixed-size blocks. Addresses are
// managed in units of blocks; address-to-block translation lives with the
// caller, which knows the line size.
type Cache struct {
	nLines uint64
	lines  []Line

	fills, evictions, invalidations uint64
}

// New returns a direct-mapped cache with nLines frames.
func New(nLines int) *Cache {
	if nLines < 1 {
		panic("cache: need at least one line")
	}
	c := &Cache{nLines: uint64(nLines), lines: make([]Line, nLines)}
	for i := range c.lines {
		c.lines[i].State = Invalid
	}
	return c
}

// Lines returns the number of frames.
func (c *Cache) Lines() int { return len(c.lines) }

func (c *Cache) frame(block uint64) *Line { return &c.lines[block%c.nLines] }

// Lookup returns the frame holding block, or nil on a miss (including
// when the frame holds a different block).
func (c *Cache) Lookup(block uint64) *Line {
	l := c.frame(block)
	if l.State != Invalid && l.Block == block {
		return l
	}
	return nil
}

// Fill installs block with the given state, returning the victim line
// (valid only if evicted is true — a conflict/capacity eviction of a
// different block). Filling over the same block updates state in place.
func (c *Cache) Fill(block uint64, st LineState) (victim Line, evicted bool) {
	if st == Invalid {
		panic("cache: filling with Invalid state")
	}
	l := c.frame(block)
	if l.State != Invalid && l.Block != block {
		victim, evicted = *l, true
		c.evictions++
	}
	if l.State == Invalid || l.Block != block {
		c.fills++
		l.Dirty = 0
	}
	l.Block = block
	l.State = st
	return victim, evicted
}

// Invalidate drops block from the cache, returning the line contents as
// they were (for write-back of dirty words) and whether it was present.
func (c *Cache) Invalidate(block uint64) (old Line, present bool) {
	l := c.frame(block)
	if l.State == Invalid || l.Block != block {
		return Line{}, false
	}
	old = *l
	l.State = Invalid
	l.Dirty = 0
	c.invalidations++
	return old, true
}

// Upgrade promotes a present read-only line to read-write in place
// (write permission arrived or, in the lazy protocols, was taken
// locally). Upgrading an absent or invalid block panics.
func (c *Cache) Upgrade(block uint64) {
	l := c.Lookup(block)
	if l == nil {
		panic(fmt.Sprintf("cache: upgrading absent block %d", block))
	}
	l.State = ReadWrite
}

// Downgrade demotes a present line to read-only, clearing its dirty bits
// (the owner supplied the data to a reader and kept a clean copy).
// Downgrading an absent block panics.
func (c *Cache) Downgrade(block uint64) {
	l := c.Lookup(block)
	if l == nil {
		panic(fmt.Sprintf("cache: downgrading absent block %d", block))
	}
	l.State = ReadOnly
	l.Dirty = 0
}

// MarkDirty sets the dirty bit for word in block; the block must be
// present in state ReadWrite.
func (c *Cache) MarkDirty(block uint64, word int) {
	l := c.Lookup(block)
	if l == nil || l.State != ReadWrite {
		panic(fmt.Sprintf("cache: MarkDirty on absent or non-RW block %d", block))
	}
	l.Dirty |= 1 << uint(word)
}

// Stats returns cumulative fills, conflict evictions, and invalidations.
func (c *Cache) Stats() (fills, evictions, invalidations uint64) {
	return c.fills, c.evictions, c.invalidations
}

// VisitValid calls fn for every valid line. Used by release-time flushes
// and by invariant checks.
func (c *Cache) VisitValid(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}
