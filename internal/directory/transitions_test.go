package directory

import "testing"

// Table-driven coverage of the directory state machine: every transition
// the protocols perform is expressed as the set mutations they make plus
// a Recompute, and checked against the expected resulting state and the
// entry's structural invariants. The entry-time rules (what makes a block
// Shared vs Dirty vs Weak) come straight from §2 of the paper; removals
// follow its reversion rule: no writers → Shared, no sharers → Uncached.

func TestDirectoryTransitionTable(t *testing.T) {
	type sets struct{ sharers, writers, notified []int }
	cases := []struct {
		name   string
		start  State
		init   sets
		mutate func(e *Entry)
		want   State
		// wantNotified is the surviving notified set (nil = must be empty).
		wantNotified []int
	}{
		{
			name:   "uncached+first-reader→shared",
			start:  Uncached,
			mutate: func(e *Entry) { e.Sharers.Add(1) },
			want:   Shared,
		},
		{
			name:  "uncached+first-writer→dirty",
			start: Uncached,
			mutate: func(e *Entry) {
				e.Sharers.Add(2)
				e.Writers.Add(2)
			},
			want: Dirty,
		},
		{
			name:   "shared+second-reader→shared",
			start:  Shared,
			init:   sets{sharers: []int{1}},
			mutate: func(e *Entry) { e.Sharers.Add(3) },
			want:   Shared,
		},
		{
			name:   "shared+sole-sharer-writes→dirty",
			start:  Shared,
			init:   sets{sharers: []int{1}},
			mutate: func(e *Entry) { e.Writers.Add(1) },
			want:   Dirty,
		},
		{
			name:   "shared+writer-joins→weak",
			start:  Shared,
			init:   sets{sharers: []int{1, 2}},
			mutate: func(e *Entry) { e.Writers.Add(1) },
			want:   Weak,
		},
		{
			name:   "shared+last-sharer-evicted→uncached",
			start:  Shared,
			init:   sets{sharers: []int{2}},
			mutate: func(e *Entry) { e.Sharers.Remove(2) },
			want:   Uncached,
		},
		{
			name:   "dirty+reader-joins→weak",
			start:  Dirty,
			init:   sets{sharers: []int{1}, writers: []int{1}},
			mutate: func(e *Entry) { e.Sharers.Add(2) },
			want:   Weak,
		},
		{
			name:  "dirty+writer-evicted→uncached",
			start: Dirty,
			init:  sets{sharers: []int{1}, writers: []int{1}},
			mutate: func(e *Entry) {
				e.Sharers.Remove(1)
				e.Writers.Remove(1)
			},
			want: Uncached,
		},
		{
			name:  "weak+nonwriter-invalidated→dirty",
			start: Weak,
			init:  sets{sharers: []int{1, 2}, writers: []int{1}, notified: []int{2}},
			mutate: func(e *Entry) {
				e.Sharers.Remove(2)
				e.Notified.Remove(2)
			},
			want: Dirty,
		},
		{
			name:   "weak+writer-downgrades→shared",
			start:  Weak,
			init:   sets{sharers: []int{1, 2}, writers: []int{1}, notified: []int{2}},
			mutate: func(e *Entry) { e.Writers.Remove(1) },
			want:   Shared,
		},
		{
			// The LRC-ext eviction flush: evicting a written block removes
			// the (silently upgraded) writer entirely; the posted deferred
			// notice had registered it, and the eviction deregisters it. A
			// remaining reader keeps the block alive as Shared.
			name:  "weak+written-block-evicted→shared",
			start: Weak,
			init:  sets{sharers: []int{0, 1}, writers: []int{0}, notified: []int{1}},
			mutate: func(e *Entry) {
				e.Sharers.Remove(0)
				e.Writers.Remove(0)
				e.Notified.Remove(0)
			},
			want: Shared,
		},
		{
			name:  "weak+one-of-two-writers-leaves→weak",
			start: Weak,
			init:  sets{sharers: []int{1, 2, 3}, writers: []int{1, 2}, notified: []int{3}},
			mutate: func(e *Entry) {
				e.Sharers.Remove(1)
				e.Writers.Remove(1)
			},
			want:         Weak,
			wantNotified: []int{3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(8, true)
			e := d.Entry(0)
			for _, id := range tc.init.sharers {
				e.Sharers.Add(id)
			}
			for _, id := range tc.init.writers {
				e.Writers.Add(id)
			}
			for _, id := range tc.init.notified {
				e.Notified.Add(id)
			}
			e.State = tc.start
			if err := e.Validate(); err != nil {
				t.Fatalf("initial state invalid: %v", err)
			}
			tc.mutate(e)
			if got := e.Recompute(); got != tc.want {
				t.Fatalf("%v --(%s)--> %v, want %v", tc.start, tc.name, got, tc.want)
			}
			d.Check(0, e) // panics on invariant violation
			if len(tc.wantNotified) == 0 && tc.want != Weak && e.Notified.Len() != 0 {
				t.Fatalf("notified bits survived leaving WEAK: %d set", e.Notified.Len())
			}
			for _, id := range tc.wantNotified {
				if !e.Notified.Has(id) {
					t.Fatalf("notified bit for %d lost across a WEAK-preserving transition", id)
				}
			}
		})
	}
}

// TestDirectoryLifecycleWalk drives one entry through the full lifecycle
// Uncached → Shared → Weak → Dirty → Shared → Uncached with Check after
// every step, the way a home node does across a block's lifetime.
func TestDirectoryLifecycleWalk(t *testing.T) {
	d := New(4, true)
	e := d.Entry(3)
	step := func(want State, f func()) {
		t.Helper()
		f()
		if got := e.Recompute(); got != want {
			t.Fatalf("recompute = %v, want %v", got, want)
		}
		d.Check(3, e)
	}
	step(Shared, func() { e.Sharers.Add(0) })
	step(Shared, func() { e.Sharers.Add(1) })
	step(Weak, func() { e.Writers.Add(0); e.Notified.Add(1) })
	step(Dirty, func() { e.Sharers.Remove(1); e.Notified.Remove(1) })
	step(Shared, func() { e.Writers.Remove(0) })
	step(Uncached, func() { e.Sharers.Remove(0) })
	if e.Notified.Len() != 0 {
		t.Fatal("notified bits survived the full lifecycle")
	}
}
