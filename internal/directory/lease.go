package directory

import (
	"fmt"
	"sort"
)

// This file holds the home-side state of the timestamp protocols
// (tardis, tardis2). Where the invalidation protocols track *who* has a
// copy (sharer sets, fanned-out write notices), timestamp coherence
// tracks *until when* copies are readable: a per-block write timestamp
// and read-lease end, plus at most one exclusive owner. There is no
// sharer list at all — readers are never recorded, and their copies
// expire locally by timestamp comparison instead of by message. The
// lease table therefore lives beside, not inside, the entry map: a
// block under timestamp coherence has a Lease and no Entry.

// NoOwner is the Lease.Owner value meaning no node holds the block
// exclusively.
const NoOwner = -1

// Lease is one block's home-side timestamp record.
type Lease struct {
	// Wts is the write timestamp of the block's current version: the
	// logical time at which the last write (grant) to the block is
	// ordered.
	Wts uint64
	// Rts is the end of the block's read lease: any copy handed out may
	// be read at program timestamps up to and including Rts. Invariant:
	// Wts <= Rts.
	Rts uint64
	// Owner is the node holding the block exclusively (its copy
	// supersedes home memory), or NoOwner. While an owner exists the
	// home must recall the block before serving any other request.
	Owner int
}

// Lease returns the lease record for block, creating a zero lease with
// no owner on first touch.
func (d *Directory) Lease(block uint64) *Lease {
	l := d.leases[block]
	if l == nil {
		l = &Lease{Owner: NoOwner}
		if d.leases == nil {
			d.leases = make(map[uint64]*Lease)
		}
		d.leases[block] = l
	}
	return l
}

// PeekLease returns the lease record for block without creating it.
func (d *Directory) PeekLease(block uint64) *Lease { return d.leases[block] }

// LeaseCount returns the number of blocks with lease records.
func (d *Directory) LeaseCount() int { return len(d.leases) }

// VisitLeases iterates all lease records in unspecified order. Use only
// for diagnostics and end-of-run sweeps, never for simulated behaviour.
func (d *Directory) VisitLeases(fn func(block uint64, l *Lease)) {
	for b, l := range d.leases {
		fn(b, l)
	}
}

// CheckLease verifies l's invariants if checking is enabled, panicking
// with a description on violation. The timestamp protocols call it
// after each home-side transition.
func (d *Directory) CheckLease(block uint64, l *Lease) {
	if !d.check {
		return
	}
	if err := d.ValidateLease(l); err != nil {
		panic(fmt.Sprintf("directory: block %d: %v", block, err))
	}
}

// ValidateLease checks a lease's structural invariants.
func (d *Directory) ValidateLease(l *Lease) error {
	if l.Wts > l.Rts {
		return fmt.Errorf("lease wts %d > rts %d", l.Wts, l.Rts)
	}
	if l.Owner != NoOwner && (l.Owner < 0 || l.Owner >= d.nprocs) {
		return fmt.Errorf("lease owner %d out of range [0,%d)", l.Owner, d.nprocs)
	}
	return nil
}

// AppendLeaseSnapshot appends a canonical byte encoding of the lease
// table to b — records in ascending block order — mirroring
// AppendSnapshot for the entry map. Nodes running invalidation
// protocols have an empty table and contribute only the zero count.
func (d *Directory) AppendLeaseSnapshot(b []byte) []byte {
	blocks := make([]uint64, 0, len(d.leases))
	for blk := range d.leases {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	put := func(v uint64) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	put(uint64(len(blocks)))
	for _, blk := range blocks {
		l := d.leases[blk]
		put(blk)
		put(l.Wts)
		put(l.Rts)
		put(uint64(int64(l.Owner)))
	}
	return b
}
