// Package directory implements the distributed directory state of the
// simulated machine. The directory entry for a block lives at the block's
// home node and records the block's global state — Uncached, Shared,
// Dirty, or Weak — together with the set of processors caching it, which
// of them are writing it, and which have been notified that the block has
// entered the weak state (§2 of the paper). Two counters (sharers,
// writers) are kept implicitly by the set representation.
//
// The package stores state and enforces invariants; the legal transitions
// belong to the protocol implementations, which differ between eager and
// lazy release consistency (the eager protocols never use Weak).
package directory

import (
	"fmt"
	"sort"

	"lazyrc/internal/perf"
)

// State is the global state of a coherence block.
type State uint8

const (
	// Uncached: no processor has a copy. Initial state of every block.
	Uncached State = iota
	// Shared: one or more processors cache the block; none writes it.
	Shared
	// Dirty: exactly one processor caches the block and is writing it.
	Dirty
	// Weak: two or more processors cache the block and at least one is
	// writing it (lazy protocols only).
	Weak
)

// String returns the state mnemonic.
func (s State) String() string {
	switch s {
	case Uncached:
		return "UNCACHED"
	case Shared:
		return "SHARED"
	case Dirty:
		return "DIRTY"
	case Weak:
		return "WEAK"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Entry is one block's directory record.
type Entry struct {
	State State
	// Sharers is the set of processors holding a copy.
	Sharers ProcSet
	// Writers ⊆ Sharers is the set of processors writing the block
	// (the per-pointer "writing" bit of the paper).
	Writers ProcSet
	// Notified ⊆ Sharers is the set of processors that have been sent a
	// write notice for the current weak episode (the per-pointer
	// "notified" bit).
	Notified ProcSet

	// PendingAcks counts outstanding write-notice acknowledgements the
	// home is collecting for this block; WaitingWriters are the
	// processors to acknowledge once collection completes.
	PendingAcks    int
	WaitingWriters []int
}

// Directory is the home-node side table for the blocks homed at one node.
// Entries are created on first touch.
type Directory struct {
	nprocs  int
	entries map[uint64]*Entry
	// leases is the timestamp protocols' home-side table (see lease.go);
	// empty under the invalidation protocols.
	leases map[uint64]*Lease

	// check enables invariant verification after mutations.
	check bool

	// prof, when non-nil, charges entry lookups/creation to the perf
	// directory phase. Passive.
	prof *perf.Profiler
}

// New returns an empty directory for a machine with nprocs processors.
func New(nprocs int, check bool) *Directory {
	return &Directory{nprocs: nprocs, entries: make(map[uint64]*Entry), check: check}
}

// SetProfiler attaches (or, with nil, detaches) a wall-clock phase
// profiler charging directory work to the directory phase.
func (d *Directory) SetProfiler(p *perf.Profiler) { d.prof = p }

// Entry returns the record for block, creating an Uncached entry on first
// touch.
func (d *Directory) Entry(block uint64) *Entry {
	prev := d.prof.Enter(perf.PhaseDirectory)
	defer d.prof.Exit(prev)
	e := d.entries[block]
	if e == nil {
		e = &Entry{
			Sharers:  NewProcSet(d.nprocs),
			Writers:  NewProcSet(d.nprocs),
			Notified: NewProcSet(d.nprocs),
		}
		d.entries[block] = e
	}
	return e
}

// Peek returns the record for block without creating it.
func (d *Directory) Peek(block uint64) *Entry { return d.entries[block] }

// Len returns the number of blocks with directory records.
func (d *Directory) Len() int { return len(d.entries) }

// StateCounts returns how many recorded blocks sit in each state, indexed
// by State. Counting is order-independent, so the result is deterministic
// despite map iteration.
func (d *Directory) StateCounts() [4]int {
	var counts [4]int
	for _, e := range d.entries {
		counts[e.State]++
	}
	return counts
}

// Check verifies e's invariants if checking is enabled, panicking with a
// description on violation. Protocols call it after each transition.
func (d *Directory) Check(block uint64, e *Entry) {
	if !d.check {
		return
	}
	if err := e.Validate(); err != nil {
		panic(fmt.Sprintf("directory: block %d: %v", block, err))
	}
}

// Validate checks the entry's structural invariants.
func (e *Entry) Validate() error {
	ns, nw := e.Sharers.Len(), e.Writers.Len()
	if !e.Writers.SubsetOf(&e.Sharers) {
		return fmt.Errorf("writers not a subset of sharers (state %v)", e.State)
	}
	if !e.Notified.SubsetOf(&e.Sharers) {
		return fmt.Errorf("notified not a subset of sharers (state %v)", e.State)
	}
	switch e.State {
	case Uncached:
		if ns != 0 || nw != 0 {
			return fmt.Errorf("UNCACHED with %d sharers %d writers", ns, nw)
		}
	case Shared:
		if ns < 1 || nw != 0 {
			return fmt.Errorf("SHARED with %d sharers %d writers", ns, nw)
		}
	case Dirty:
		if ns != 1 || nw != 1 {
			return fmt.Errorf("DIRTY with %d sharers %d writers", ns, nw)
		}
	case Weak:
		if ns < 2 || nw < 1 {
			return fmt.Errorf("WEAK with %d sharers %d writers", ns, nw)
		}
	}
	if e.PendingAcks < 0 {
		return fmt.Errorf("negative pending acks %d", e.PendingAcks)
	}
	return nil
}

// Recompute derives the correct state from the sharer/writer sets after a
// removal (acquire-time invalidation or eviction) and clears stale
// notified bits when the block leaves Weak. It returns the new state.
// This implements the paper's rule: "If a block no longer has any
// processors writing it, it reverts to the shared state; if it has no
// processors sharing it at all, it reverts to the uncached state."
func (e *Entry) Recompute() State {
	ns, nw := e.Sharers.Len(), e.Writers.Len()
	switch {
	case ns == 0:
		e.State = Uncached
	case nw == 0:
		e.State = Shared
	case ns == 1:
		e.State = Dirty
	default:
		e.State = Weak
	}
	if e.State != Weak {
		e.Notified.Clear()
	}
	return e.State
}

// Visit iterates all entries in unspecified order. Use only for
// diagnostics and end-of-run invariant sweeps, never for simulated
// behaviour (ordering nondeterminism).
func (d *Directory) Visit(fn func(block uint64, e *Entry)) {
	for b, e := range d.entries {
		fn(b, e)
	}
}

// AppendSnapshot appends a canonical byte encoding of the directory's
// state to b — entries in ascending block order, each with its state,
// sharer/writer/notified sets, pending-ack count, and waiting writers.
// Two directories in the same logical state produce identical bytes, so
// the encoding is usable for visited-state hashing.
func (d *Directory) AppendSnapshot(b []byte) []byte {
	blocks := make([]uint64, 0, len(d.entries))
	for blk := range d.entries {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	put := func(v uint64) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	put(uint64(len(blocks)))
	for _, blk := range blocks {
		e := d.entries[blk]
		put(blk)
		b = append(b, byte(e.State))
		for _, s := range []*ProcSet{&e.Sharers, &e.Writers, &e.Notified} {
			put(uint64(s.Len()))
			s.Visit(func(id int) { put(uint64(id)) })
		}
		put(uint64(e.PendingAcks))
		put(uint64(len(e.WaitingWriters)))
		for _, w := range e.WaitingWriters {
			put(uint64(w))
		}
	}
	return b
}
