package directory

import "testing"

// Table-driven coverage of the home-side lease state machine the
// timestamp protocols (tardis, tardis2) drive: each transition is
// expressed as the exact mutation the protocol performs on the Lease
// record, then checked against the expected (Wts, Rts, Owner) triple and
// the lease's structural invariants. The rules mirror the protocol
// layer: a read grant extends rts to max(rts, pts+leaseLen, wts); a
// write grant creates a version at ts = max(pts, rts+1) and takes
// ownership; an owner's returned copy (yield or eviction write-back)
// clears ownership and adopts the owner's wts as the latest version.
func TestLeaseTransitionTable(t *testing.T) {
	const leaseLen = 8

	// extend is the read/renewal grant: rts' = max(rts, pts+leaseLen, wts).
	extend := func(l *Lease, pts uint64) {
		want := pts + leaseLen
		if want < l.Wts {
			want = l.Wts
		}
		if want > l.Rts {
			l.Rts = want
		}
	}
	// grant is the write grant: ts = max(pts, rts+1), owner = src.
	grant := func(l *Lease, pts uint64, src int) {
		ts := pts
		if l.Rts+1 > ts {
			ts = l.Rts + 1
		}
		l.Wts, l.Rts, l.Owner = ts, ts, src
	}
	// adopt is the owner's copy coming home (yield or write-back): clear
	// ownership if the sender still owns, supersede wts if newer.
	adopt := func(l *Lease, src int, wts uint64) {
		if l.Owner == src {
			l.Owner = NoOwner
		}
		if wts > l.Wts {
			l.Wts = wts
			if l.Rts < l.Wts {
				l.Rts = l.Wts
			}
		}
	}

	cases := []struct {
		name    string
		start   Lease
		mutate  func(l *Lease)
		wantWts uint64
		wantRts uint64
		wantOwn int
	}{
		{
			name:    "first-read→fresh-lease",
			start:   Lease{Owner: NoOwner},
			mutate:  func(l *Lease) { extend(l, 0) },
			wantWts: 0, wantRts: leaseLen, wantOwn: NoOwner,
		},
		{
			name:    "read-at-advanced-clock→lease-covers-clock",
			start:   Lease{Wts: 5, Rts: 12, Owner: NoOwner},
			mutate:  func(l *Lease) { extend(l, 20) },
			wantWts: 5, wantRts: 28, wantOwn: NoOwner,
		},
		{
			name:    "renewal-behind-current-end→no-op",
			start:   Lease{Wts: 5, Rts: 40, Owner: NoOwner},
			mutate:  func(l *Lease) { extend(l, 3) },
			wantWts: 5, wantRts: 40, wantOwn: NoOwner,
		},
		{
			name: "read-never-shrinks-below-wts",
			// A version written at 30 with rts pinned to it: a reader at a
			// tiny clock still gets a lease ending at the version time.
			start:   Lease{Wts: 30, Rts: 30, Owner: NoOwner},
			mutate:  func(l *Lease) { extend(l, 1) },
			wantWts: 30, wantRts: 30, wantOwn: NoOwner,
		},
		{
			name:    "write-grant-orders-after-leases",
			start:   Lease{Wts: 5, Rts: 12, Owner: NoOwner},
			mutate:  func(l *Lease) { grant(l, 2, 3) },
			wantWts: 13, wantRts: 13, wantOwn: 3,
		},
		{
			name:    "write-grant-at-advanced-clock",
			start:   Lease{Wts: 5, Rts: 12, Owner: NoOwner},
			mutate:  func(l *Lease) { grant(l, 50, 1) },
			wantWts: 50, wantRts: 50, wantOwn: 1,
		},
		{
			name:    "yield-clears-owner-and-adopts-version",
			start:   Lease{Wts: 13, Rts: 13, Owner: 3},
			mutate:  func(l *Lease) { adopt(l, 3, 17) },
			wantWts: 17, wantRts: 17, wantOwn: NoOwner,
		},
		{
			name: "stale-writeback-from-past-owner-keeps-owner",
			// Node 3's eviction write-back raced with node 1's grant: 1 owns
			// now, 3's data merges but neither ownership nor the newer
			// version record moves.
			start:   Lease{Wts: 20, Rts: 20, Owner: 1},
			mutate:  func(l *Lease) { adopt(l, 3, 13) },
			wantWts: 20, wantRts: 20, wantOwn: 1,
		},
		{
			name:    "reread-after-yield→lease-past-version",
			start:   Lease{Wts: 17, Rts: 17, Owner: NoOwner},
			mutate:  func(l *Lease) { extend(l, 17) },
			wantWts: 17, wantRts: 17 + leaseLen, wantOwn: NoOwner,
		},
		{
			name:    "owner-to-owner-regrant",
			start:   Lease{Wts: 13, Rts: 13, Owner: 3},
			mutate:  func(l *Lease) { adopt(l, 3, 13); grant(l, 13, 3) },
			wantWts: 14, wantRts: 14, wantOwn: 3,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(4, true)
			l := d.Lease(7)
			*l = tc.start
			tc.mutate(l)
			d.CheckLease(7, l)
			if l.Wts != tc.wantWts || l.Rts != tc.wantRts || l.Owner != tc.wantOwn {
				t.Fatalf("lease = {wts:%d rts:%d owner:%d}, want {wts:%d rts:%d owner:%d}",
					l.Wts, l.Rts, l.Owner, tc.wantWts, tc.wantRts, tc.wantOwn)
			}
		})
	}
}

// TestLeaseValidate covers the structural invariants CheckLease enforces
// after every home-side transition.
func TestLeaseValidate(t *testing.T) {
	d := New(4, true)
	if err := d.ValidateLease(&Lease{Wts: 3, Rts: 3, Owner: NoOwner}); err != nil {
		t.Fatalf("valid lease rejected: %v", err)
	}
	if err := d.ValidateLease(&Lease{Wts: 5, Rts: 4, Owner: NoOwner}); err == nil {
		t.Fatal("wts > rts accepted")
	}
	if err := d.ValidateLease(&Lease{Wts: 1, Rts: 2, Owner: 4}); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
	if err := d.ValidateLease(&Lease{Owner: -2}); err == nil {
		t.Fatal("negative non-NoOwner owner accepted")
	}
}

// TestLeaseTableLifecycle exercises the table plumbing: creation on
// first touch, peek without creation, counting, and the canonical
// snapshot being order-insensitive.
func TestLeaseTableLifecycle(t *testing.T) {
	d := New(2, true)
	if d.PeekLease(9) != nil {
		t.Fatal("peek created a lease")
	}
	if d.LeaseCount() != 0 {
		t.Fatal("fresh directory has leases")
	}
	a := d.Lease(9)
	if a.Owner != NoOwner || a.Wts != 0 || a.Rts != 0 {
		t.Fatalf("first touch lease = %+v", a)
	}
	if d.Lease(9) != a {
		t.Fatal("second touch created a new record")
	}
	d.Lease(3).Wts = 1
	d.Lease(3).Rts = 2
	if d.LeaseCount() != 2 {
		t.Fatalf("lease count = %d, want 2", d.LeaseCount())
	}

	// The snapshot is canonical: two directories with the same records
	// touched in different orders encode identically.
	e := New(2, true)
	e.Lease(3).Wts = 1
	e.Lease(3).Rts = 2
	e.Lease(9)
	if string(d.AppendLeaseSnapshot(nil)) != string(e.AppendLeaseSnapshot(nil)) {
		t.Fatal("lease snapshot depends on touch order")
	}
}
