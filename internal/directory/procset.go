package directory

import "math/bits"

// ProcSet is a set of processor ids with deterministic (ascending)
// iteration order, implemented as a bitmap. Deterministic order matters:
// the order in which a home node dispatches write notices to sharers is
// part of the simulated schedule, and Go map iteration would randomize it.
type ProcSet struct {
	words []uint64
}

// NewProcSet returns an empty set sized for ids in [0, n).
func NewProcSet(n int) ProcSet {
	return ProcSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts id.
func (s *ProcSet) Add(id int) { s.words[id/64] |= 1 << uint(id%64) }

// Remove deletes id.
func (s *ProcSet) Remove(id int) { s.words[id/64] &^= 1 << uint(id%64) }

// Has reports membership.
func (s *ProcSet) Has(id int) bool { return s.words[id/64]&(1<<uint(id%64)) != 0 }

// Len returns the number of members.
func (s *ProcSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set.
func (s *ProcSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Visit calls fn for each member in ascending order.
func (s *ProcSet) Visit(fn func(id int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(i*64 + b)
			w &= w - 1
		}
	}
}

// Only returns the single member of a singleton set; it panics otherwise.
func (s *ProcSet) Only() int {
	if s.Len() != 1 {
		panic("directory: Only on non-singleton set")
	}
	for i, w := range s.words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	panic("unreachable")
}

// SubsetOf reports whether every member of s is in t.
func (s *ProcSet) SubsetOf(t *ProcSet) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}
