package directory

import (
	"testing"
	"testing/quick"
)

func TestProcSetBasics(t *testing.T) {
	s := NewProcSet(130)
	for _, id := range []int{0, 63, 64, 129} {
		if s.Has(id) {
			t.Fatalf("fresh set has %d", id)
		}
		s.Add(id)
		if !s.Has(id) {
			t.Fatalf("added %d not present", id)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	var got []int
	s.Visit(func(id int) { got = append(got, id) })
	want := []int{0, 63, 64, 129}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit order = %v, want %v", got, want)
		}
	}
	s.Remove(63)
	if s.Has(63) || s.Len() != 3 {
		t.Fatal("remove failed")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestProcSetOnly(t *testing.T) {
	s := NewProcSet(64)
	s.Add(37)
	if s.Only() != 37 {
		t.Fatalf("Only = %d, want 37", s.Only())
	}
	s.Add(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Only on 2-element set did not panic")
		}
	}()
	s.Only()
}

func TestProcSetSubset(t *testing.T) {
	a, b := NewProcSet(64), NewProcSet(64)
	a.Add(1)
	a.Add(5)
	b.Add(1)
	b.Add(5)
	b.Add(9)
	if !a.SubsetOf(&b) {
		t.Fatal("a ⊆ b should hold")
	}
	if b.SubsetOf(&a) {
		t.Fatal("b ⊆ a should not hold")
	}
}

func TestProcSetMatchesMapProperty(t *testing.T) {
	f := func(ops []int16) bool {
		s := NewProcSet(128)
		ref := map[int]bool{}
		for _, o := range ops {
			id := int(o) & 127
			if o < 0 {
				s.Remove(id)
				delete(ref, id)
			} else {
				s.Add(id)
				ref[id] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for id := 0; id < 128; id++ {
			if s.Has(id) != ref[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryEntryCreationAndPeek(t *testing.T) {
	d := New(64, true)
	if d.Peek(7) != nil {
		t.Fatal("peek created an entry")
	}
	e := d.Entry(7)
	if e.State != Uncached || d.Len() != 1 {
		t.Fatalf("fresh entry = %+v", e)
	}
	if d.Entry(7) != e {
		t.Fatal("second Entry returned different record")
	}
}

func TestEntryValidate(t *testing.T) {
	mk := func() *Entry {
		return &Entry{
			Sharers:  NewProcSet(8),
			Writers:  NewProcSet(8),
			Notified: NewProcSet(8),
		}
	}
	// Legal states.
	e := mk()
	if err := e.Validate(); err != nil {
		t.Errorf("uncached: %v", err)
	}
	e.Sharers.Add(1)
	e.State = Shared
	if err := e.Validate(); err != nil {
		t.Errorf("shared: %v", err)
	}
	e.Writers.Add(1)
	e.State = Dirty
	if err := e.Validate(); err != nil {
		t.Errorf("dirty: %v", err)
	}
	e.Sharers.Add(2)
	e.State = Weak
	if err := e.Validate(); err != nil {
		t.Errorf("weak: %v", err)
	}
	// Illegal states.
	bad := mk()
	bad.State = Dirty // no sharers
	if bad.Validate() == nil {
		t.Error("dirty with no sharers validated")
	}
	bad2 := mk()
	bad2.Writers.Add(3) // writer not a sharer
	bad2.Sharers.Add(4)
	bad2.State = Shared
	if bad2.Validate() == nil {
		t.Error("writer outside sharers validated")
	}
	bad3 := mk()
	bad3.Sharers.Add(1)
	bad3.Sharers.Add(2)
	bad3.Writers.Add(1)
	bad3.State = Dirty // should be Weak
	if bad3.Validate() == nil {
		t.Error("two sharers with writer in DIRTY validated")
	}
}

func TestRecompute(t *testing.T) {
	e := &Entry{
		Sharers:  NewProcSet(8),
		Writers:  NewProcSet(8),
		Notified: NewProcSet(8),
	}
	// Weak with 2 sharers, 1 writer → removing the non-writer gives Dirty.
	e.Sharers.Add(1)
	e.Sharers.Add(2)
	e.Writers.Add(1)
	e.Notified.Add(2)
	e.State = Weak
	e.Sharers.Remove(2)
	e.Notified.Remove(2)
	if st := e.Recompute(); st != Dirty {
		t.Fatalf("recompute = %v, want DIRTY", st)
	}
	// Removing the writer's write status → Shared.
	e.Writers.Remove(1)
	if st := e.Recompute(); st != Shared {
		t.Fatalf("recompute = %v, want SHARED", st)
	}
	// Removing the last sharer → Uncached.
	e.Sharers.Remove(1)
	if st := e.Recompute(); st != Uncached {
		t.Fatalf("recompute = %v, want UNCACHED", st)
	}
}

func TestRecomputeClearsNotifiedOutsideWeak(t *testing.T) {
	e := &Entry{
		Sharers:  NewProcSet(8),
		Writers:  NewProcSet(8),
		Notified: NewProcSet(8),
	}
	e.Sharers.Add(1)
	e.Sharers.Add(2)
	e.Sharers.Add(3)
	e.Writers.Add(1)
	e.Notified.Add(2)
	e.Notified.Add(3)
	e.State = Weak
	e.Writers.Remove(1) // writer invalidated its copy's write status
	e.Sharers.Remove(1)
	if st := e.Recompute(); st != Shared {
		t.Fatalf("recompute = %v, want SHARED", st)
	}
	if e.Notified.Len() != 0 {
		t.Fatal("notified bits survived leaving WEAK")
	}
}

func TestRecomputePropertyNeverInvalid(t *testing.T) {
	// Property: after arbitrary add/remove sequences + Recompute, the
	// entry always validates.
	type op struct {
		ID     uint8
		Remove bool
		Write  bool
	}
	f := func(ops []op) bool {
		e := &Entry{
			Sharers:  NewProcSet(16),
			Writers:  NewProcSet(16),
			Notified: NewProcSet(16),
		}
		for _, o := range ops {
			id := int(o.ID) % 16
			if o.Remove {
				e.Sharers.Remove(id)
				e.Writers.Remove(id)
				e.Notified.Remove(id)
			} else {
				e.Sharers.Add(id)
				if o.Write {
					e.Writers.Add(id)
				}
			}
			e.Recompute()
			if e.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryCheckPanicsOnViolation(t *testing.T) {
	d := New(8, true)
	e := d.Entry(1)
	e.State = Dirty // never populated sharers: invalid
	defer func() {
		if recover() == nil {
			t.Fatal("Check did not panic on invalid entry")
		}
	}()
	d.Check(1, e)
}

func TestDirectoryCheckDisabled(t *testing.T) {
	d := New(8, false)
	e := d.Entry(1)
	e.State = Dirty
	d.Check(1, e) // must not panic
}

func TestStateString(t *testing.T) {
	if Uncached.String() != "UNCACHED" || Weak.String() != "WEAK" {
		t.Fatal("state mnemonics wrong")
	}
}

func TestDirectoryVisit(t *testing.T) {
	d := New(4, false)
	d.Entry(1)
	d.Entry(9)
	seen := map[uint64]bool{}
	d.Visit(func(b uint64, e *Entry) { seen[b] = true })
	if len(seen) != 2 || !seen[1] || !seen[9] {
		t.Fatalf("visited %v", seen)
	}
}
