package api

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lazyrc/internal/exp"
	"lazyrc/internal/obs"
	"lazyrc/internal/runner"
)

// tinySpec is the test sweep: fig4 over two applications at tiny scale
// on a 4-processor machine — 6 unique cells (sc, erc, lrc × 2 apps).
func tinySpec() exp.Spec {
	return exp.Spec{Targets: []string{"fig4"}, Apps: []string{"gauss", "fft"}, Scale: "tiny", Procs: 4, Seed: 1}
}

// eventLog drains a bus subscription in the background until the bus
// closes, accumulating every event.
type eventLog struct {
	mu  sync.Mutex
	evs []runner.Event
	fin chan struct{}
}

func watchEvents(svc *Service) *eventLog {
	l := &eventLog{fin: make(chan struct{})}
	sub := svc.Subscribe(1 << 16)
	go func() {
		defer close(l.fin)
		for ev := range sub.C() {
			l.mu.Lock()
			l.evs = append(l.evs, ev)
			l.mu.Unlock()
		}
	}()
	return l
}

// events returns the log after the bus has closed.
func (l *eventLog) events() []runner.Event {
	<-l.fin
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]runner.Event(nil), l.evs...)
}

// TestSweepSingleflight is the concurrency acceptance test: N goroutines
// submitting the identical sweep through the HTTP API share one sweep
// record, and the bus stream shows exactly one execution per unique cell
// fingerprint — the layered singleflight (sweep identity at the service,
// job fingerprint at the runner) held under contention.
func TestSweepSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	svc := NewService(4, nil, nil)
	log := watchEvents(svc)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTPClient: ts.Client()}
	ctx := context.Background()

	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitSweep(ctx, tinySpec())
			ids[i], errs[i] = st.ID, err
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got sweep %s, want %s", i, ids[i], ids[0])
		}
	}

	st, err := c.WaitSweep(ctx, ids[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("sweep finished %s (%s), want done", st.State, st.Error)
	}
	if st.Jobs != 6 || st.Completed != 6 || st.Executed != 6 || st.FromCache != 0 || st.Failed != 0 {
		t.Fatalf("sweep counters: %+v", st)
	}

	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	running := map[string]int{}
	for _, ev := range log.events() {
		if ev.Kind == runner.EventRunning {
			running[ev.FP]++
		}
	}
	if len(running) != 6 {
		t.Fatalf("executions touched %d fingerprints, want 6", len(running))
	}
	for fp, n := range running {
		if n != 1 {
			t.Fatalf("fingerprint %s executed %d times, want exactly 1", fp, n)
		}
	}
	if m := svc.Runner().Meta(); m.Simulated != 6 {
		t.Fatalf("runner simulated %d jobs, want 6: %+v", m.Simulated, m)
	}
}

// TestSweepCancellation: a canceled sweep reaches the canceled terminal
// state promptly and the daemon survives it.
func TestSweepCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	svc := NewService(1, nil, nil)
	defer svc.Close(context.Background())

	// Every app on fig4 at tiny scale: enough cells that one worker
	// cannot finish before the cancel lands.
	spec := exp.Spec{Targets: []string{"fig4"}, Scale: "tiny", Procs: 4, Seed: 1}
	st, created, err := svc.SubmitSweep(context.Background(), spec)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if err := svc.CancelSweep(st.ID); err != nil {
		t.Fatal(err)
	}
	done, err := svc.SweepDone(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("canceled sweep did not terminate")
	}
	st, err = svc.Sweep(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled && st.State != StateDone {
		t.Fatalf("canceled sweep state %s (%s)", st.State, st.Error)
	}
	// Near-certain with one worker and 21 cells, but a very fast machine
	// could legitimately finish first; only the prompt-termination part
	// is unconditional.
	if st.State == StateDone {
		t.Log("sweep completed before the cancel landed (acceptable race)")
	}
}

// TestSubmitRejectsBadSpecs: validation failures surface as errors, not
// sweeps.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	svc := NewService(1, nil, nil)
	defer svc.Close(context.Background())
	if _, _, err := svc.SubmitSweep(context.Background(), exp.Spec{Targets: []string{"fig99"}}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, _, err := svc.SubmitJob(context.Background(), JobRequest{App: "doom", Proto: "lrc"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	// Protocol names are validated at simulation time; a bad one must
	// fail the job rather than wedge it.
	st, _, err := svc.SubmitJob(context.Background(), JobRequest{App: "gauss", Scale: "tiny", Proto: "warp", Procs: 4})
	if err != nil {
		return // rejected up front: also fine
	}
	donec, derr := svc.JobDone(st.FP)
	if derr != nil {
		t.Fatal(derr)
	}
	<-donec
	st, _ = svc.Job(st.FP)
	if st.State != StateFailed {
		t.Fatalf("bad protocol job state %s, want failed", st.State)
	}
}

// TestDrainRefusesNewWork: after Drain begins, submissions are rejected
// with ErrDraining (the HTTP layer maps it to 503), and the probe split
// holds: /readyz answers 503 from the drain on while /healthz stays 200
// until the process dies.
func TestDrainRefusesNewWork(t *testing.T) {
	svc := NewService(1, nil, nil)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTPClient: ts.Client()}

	// Before the drain both probes answer.
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Readyz(context.Background()); err != nil {
		t.Fatalf("readyz before drain: %v", err)
	}

	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.SubmitSweep(context.Background(), tinySpec()); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	_, err := c.SubmitSweep(context.Background(), tinySpec())
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("drained daemon answered %v, want 503", err)
	}
	// Readiness drops with the drain; liveness does not.
	if err := c.Readyz(context.Background()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("readyz after drain: %v, want 503", err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz must stay 200 through the drain: %v", err)
	}
}

// TestRequestIDThreading: the submitting request's X-Request-Id is
// echoed on the response, stamped into the HTTP access line, and
// carried by the sweep's lifecycle lines — one grep follows the request
// from ingress to the sweep's terminal state.
func TestRequestIDThreading(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var buf syncLogBuffer
	svc := NewService(4, nil, slog.New(slog.NewTextHandler(&buf, nil)))
	defer svc.Close(context.Background())
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	body, _ := json.Marshal(tinySpec())
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "trace-me-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("response echoed request ID %q, want trace-me-42", got)
	}

	done, err := svc.SweepDone(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done

	logs := buf.String()
	for _, want := range []string{
		`msg=http`, `request_id=trace-me-42`,
		`msg="sweep submitted"`, `msg="sweep finished"`,
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("log output missing %q:\n%s", want, logs)
		}
	}
	// Every lifecycle line for this sweep carries the submitting ID.
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "sweep submitted") || strings.Contains(line, "sweep finished") {
			if !strings.Contains(line, "request_id=trace-me-42") {
				t.Fatalf("lifecycle line lost the request ID: %s", line)
			}
		}
	}
}

// syncLogBuffer is a mutex-guarded bytes.Buffer for concurrent slog use.
type syncLogBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncLogBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLogBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
