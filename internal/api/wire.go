// Package api is the lrcsimd experiment service: a long-running daemon
// that accepts simulation jobs and evaluation sweeps over HTTP/JSON,
// executes them on the shared runner pool (deduplicated by content
// fingerprint, served from the persistent segment store when possible),
// streams job lifecycle events to any number of clients over SSE, and
// serves rendered reports and Perfetto traces live.
//
// The package splits into the wire types (this file), the Service (the
// daemon's state machine: sweep registry, submission singleflight, event
// fanout, graceful drain), the HTTP server bound to it, and a typed
// client used by paperbench -remote and the end-to-end tests.
package api

import (
	"lazyrc/internal/bus"
	"lazyrc/internal/exp"
	"lazyrc/internal/runner"
	"lazyrc/internal/store"
)

// Sweep and job states. Lifecycle: queued → running → one of the
// terminal states. A sweep is "failed" when any of its jobs crashed,
// "canceled" when its submission context died first, "done" otherwise
// (including runs with verification errors, which are deterministic
// results, not failures — they surface per-run in the report).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// SweepStatus is the wire form of one submitted sweep.
type SweepStatus struct {
	// ID is the sweep's content identity (exp.Spec.ID): identical specs
	// submitted concurrently or repeatedly share one record.
	ID string `json:"id"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Spec is the normalized spec the sweep executes.
	Spec exp.Spec `json:"spec"`
	// Jobs is the number of unique simulation cells the sweep expands to.
	Jobs int `json:"jobs"`
	// Completed counts cells that have reached a terminal state.
	Completed int `json:"completed"`
	// Executed counts fresh simulations observed on this sweep's cells
	// while it ran; FromCache counts cells served from the persistent
	// store; Deduped counts cells resolved by an identical in-process
	// job (another sweep's, or a repeat submission's); Failed counts
	// crashed cells. A warm resubmission after a daemon restart shows
	// Executed == 0 and FromCache == Jobs.
	Executed  int `json:"executed"`
	FromCache int `json:"from_cache"`
	Deduped   int `json:"deduped"`
	Failed    int `json:"failed"`
	// Error carries the failure summary of a failed sweep.
	Error string `json:"error,omitempty"`
	// WallMS, SimCycles, and CyclesPerSec describe how fast the sweep
	// ran, stamped when it reaches a terminal state: wall-clock duration,
	// total simulated cycles across fresh executions (cache hits and
	// dedups contribute none), and their ratio. Host-dependent
	// provenance — never part of any result or fingerprint.
	WallMS       int64   `json:"wall_ms,omitempty"`
	SimCycles    uint64  `json:"sim_cycles,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Terminal reports whether the sweep has finished (in any way).
func (s SweepStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// JobRequest is the wire form of one directly submitted simulation job.
// The machine configuration travels as a preset name plus the scale-
// derived cache size, exactly the materialization the sweep path uses —
// so a directly submitted job and the same cell inside a sweep share one
// fingerprint and therefore one cached result.
type JobRequest struct {
	App string `json:"app"`
	// Scale is the input scale name; empty means small.
	Scale string `json:"scale,omitempty"`
	Proto string `json:"proto"`
	// Preset is the machine preset name (config.Presets); empty means
	// default.
	Preset string `json:"preset,omitempty"`
	// Procs is the machine size; zero means 64.
	Procs int    `json:"procs,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

// JobStatus is the wire form of one submitted job.
type JobStatus struct {
	// FP is the job's content fingerprint — its identity everywhere:
	// the dedup key, the store key, and the URL path element.
	FP    string `json:"fp"`
	State string `json:"state"`
	App   string `json:"app"`
	Scale string `json:"scale"`
	Proto string `json:"proto"`
	// Cached marks a result served from the persistent store.
	Cached bool `json:"cached,omitempty"`
	// Result is the full measurement record, present once terminal
	// (absent on failed/canceled jobs, whose Error explains why).
	Result *runner.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Terminal reports whether the job has finished.
func (s JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// StatsResponse is the daemon's observability snapshot.
type StatsResponse struct {
	Runner runner.Meta  `json:"runner"`
	Bus    bus.Stats    `json:"bus"`
	Store  *store.Stats `json:"store,omitempty"`
	Sweeps int          `json:"sweeps"`
	Jobs   int          `json:"jobs"`
}
