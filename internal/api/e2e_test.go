package api

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"lazyrc/internal/causal"
	"lazyrc/internal/obs"
	"lazyrc/internal/runner"
	"lazyrc/internal/store"
)

// daemon is one test incarnation of the service stack: store, service,
// HTTP server, client.
type daemon struct {
	st  *store.Store
	svc *Service
	ts  *httptest.Server
	c   *Client
}

func startDaemon(t *testing.T, dir string, workers int) *daemon {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(workers, st, nil)
	ts := httptest.NewServer(NewServer(svc))
	hc := ts.Client()
	return &daemon{st: st, svc: svc, ts: ts, c: &Client{Base: ts.URL, HTTPClient: hc}}
}

// scrapeMetrics fetches /metrics through the typed client and parses it
// with the strict exposition parser — every scrape in the e2e test is
// also a format-validity check.
func scrapeMetrics(t *testing.T, ctx context.Context, d *daemon) map[string]*obs.ParsedFamily {
	t.Helper()
	raw, err := d.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, raw)
	}
	return fams
}

// jobsCounter reads one kind's value from lrcsimd_jobs_total.
func jobsCounter(fams map[string]*obs.ParsedFamily, kind string) float64 {
	f, ok := fams["lrcsimd_jobs_total"]
	if !ok {
		return -1
	}
	for _, sm := range f.Samples {
		if sm.Label("kind") == kind {
			return sm.Value
		}
	}
	return -1
}

// stop tears the incarnation down in daemon order: drain the service,
// close the bus, close the HTTP server, close the store.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.svc.Close(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	d.ts.CloseClientConnections()
	d.ts.Close()
	if err := d.st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
}

// TestEndToEnd is the PR's acceptance test: submit a sweep over HTTP,
// follow its SSE stream to completion, fetch the report; submit the
// identical sweep again and require zero new executions with
// byte-identical report bytes; then restart the daemon on the same store
// directory and require the resubmitted sweep to be served entirely from
// the persistent store — fingerprints stable across the restart — again
// byte-identical. Finally the whole stack must shut down without leaking
// goroutines.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ctx := context.Background()
	dir := t.TempDir()

	// Let the runtime settle, then baseline the goroutine count.
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	d1 := startDaemon(t, dir, 4)
	if err := d1.c.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	// --- Cold submission: everything simulates. ---
	spec := tinySpec()
	st, err := d1.c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	sweepID := st.ID
	if spec.ID() != sweepID {
		t.Fatalf("server sweep ID %s != client-computed spec ID %s", sweepID, spec.ID())
	}

	var beats, running int
	st, err = d1.c.WaitSweep(ctx, sweepID, func(ev runner.Event) {
		switch ev.Kind {
		case runner.EventHeartbeat:
			beats++
		case runner.EventRunning:
			running++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Error != "" {
		t.Fatalf("cold sweep: %+v", st)
	}
	if st.Jobs != 6 || st.Executed != 6 || st.FromCache != 0 {
		t.Fatalf("cold counters: %+v", st)
	}
	if running == 0 {
		t.Error("SSE stream delivered no running events")
	}

	rep1, err := d1.c.SweepReport(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	html1, err := d1.c.SweepHTML(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(html1, []byte("<html")) && !bytes.Contains(html1, []byte("<!DOCTYPE")) {
		t.Fatal("HTML report does not look like HTML")
	}

	// --- Warm resubmission, same daemon: the sweep record itself is the
	// singleflight — no new work, identical bytes. ---
	st2, err := d1.c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != sweepID || st2.State != StateDone {
		t.Fatalf("resubmission: %+v", st2)
	}
	if m := d1.svc.Runner().Meta(); m.Simulated != 6 {
		t.Fatalf("resubmission simulated: %+v", m)
	}
	rep2, err := d1.c.SweepReport(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("same-daemon resubmission served different report bytes")
	}

	// --- Direct job submission shares the store with sweep cells. ---
	jreq := JobRequest{App: "gauss", Scale: "tiny", Proto: "lrc", Procs: 4, Seed: 1}
	js, err := d1.c.SubmitJob(ctx, jreq)
	if err != nil {
		t.Fatal(err)
	}
	js, err = d1.c.WaitJob(ctx, js.FP)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != StateDone || js.Result == nil {
		t.Fatalf("job: %+v", js)
	}
	if !js.Result.Cached && !js.Cached {
		// The sweep already simulated this exact cell; the job must have
		// been resolved without a fresh run (memo or store).
		if m := d1.svc.Runner().Meta(); m.Simulated != 6 {
			t.Fatalf("direct job re-simulated a sweep cell: %+v", m)
		}
	}
	jobFP := js.FP

	// --- Live Perfetto trace export for a known job. ---
	trace, err := d1.c.JobTrace(ctx, jobFP)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := causal.ValidateTrace(trace); err != nil || n == 0 {
		t.Fatalf("trace invalid (%d events): %v", n, err)
	}

	stats, err := d1.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil || stats.Store.Entries != 6 {
		t.Fatalf("store stats after cold run: %+v", stats.Store)
	}

	// --- Observability: the exposition parses, covers every subsystem,
	// and its lifecycle counters agree with the cold run. ---
	fams := scrapeMetrics(t, ctx, d1)
	for _, name := range []string{
		"lrcsimd_build_info",
		"lrcsimd_http_requests_total",
		"lrcsimd_http_request_duration_seconds",
		"lrcsimd_jobs_total",
		"lrcsimd_pool_workers",
		"lrcsimd_bus_published_total",
		"lrcsimd_store_entries",
	} {
		if _, ok := fams[name]; !ok {
			t.Fatalf("exposition missing family %s", name)
		}
	}
	if got := jobsCounter(fams, "executed"); got != 6 {
		t.Fatalf("cold exposition executed=%v, want 6", got)
	}
	if got := jobsCounter(fams, "cache_hit"); got != 0 {
		t.Fatalf("cold exposition cache_hit=%v, want 0", got)
	}

	// --- Every response carries X-Request-Id; a supplied ID is echoed. ---
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d1.ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "e2e-probe-1")
	resp, err := d1.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "e2e-probe-1" {
		t.Fatalf("supplied request ID echoed as %q", got)
	}
	resp, err = d1.ts.Client().Get(d1.ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("response without a supplied ID carries no generated X-Request-Id")
	}

	d1.stop(t)

	// --- Restart on the same store directory: the resubmitted sweep is
	// served entirely from persistence, fingerprints stable. ---
	d2 := startDaemon(t, dir, 2)
	if err := d2.c.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	// The persisted sweep registry resurrects the sweep with no client
	// resubmission: the restarted daemon re-ran it from the store at
	// boot, so it is already listed — and must finish as a pure cache
	// replay with the identical report bytes.
	if _, err := d2.c.Sweep(ctx, sweepID); err != nil {
		t.Fatalf("sweep not restored from persisted registry: %v", err)
	}
	if all, err := d2.c.Sweeps(ctx); err != nil || len(all) != 1 || all[0].ID != sweepID {
		t.Fatalf("restored sweep list: %v, %v", all, err)
	}

	st3, err := d2.c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != sweepID {
		t.Fatalf("sweep identity drifted across restart: %s != %s", st3.ID, sweepID)
	}
	st3, err = d2.c.WaitSweep(ctx, sweepID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateDone || st3.Executed != 0 || st3.FromCache != 6 {
		t.Fatalf("warm restart counters: %+v", st3)
	}
	if m := d2.svc.Runner().Meta(); m.Simulated != 0 || m.CacheHits != 6 {
		t.Fatalf("warm restart runner: %+v", m)
	}
	rep3, err := d2.c.SweepReport(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep3) {
		t.Fatalf("report bytes drifted across restart:\n%s\n---\n%s", rep1, rep3)
	}

	// The direct job's result survives as a store lookup with the same
	// fingerprint, even though this daemon never ran it.
	js2, err := d2.c.Job(ctx, jobFP)
	if err != nil {
		t.Fatal(err)
	}
	if js2.State != StateDone || !js2.Cached || js2.Result == nil {
		t.Fatalf("restarted job lookup: %+v", js2)
	}
	if js2.Result.Fingerprint != jobFP {
		t.Fatal("job fingerprint drifted across restart")
	}

	// --- Warm-restart exposition: the boot replay is pure cache — zero
	// executions, every cell a store hit. ---
	fams2 := scrapeMetrics(t, ctx, d2)
	if got := jobsCounter(fams2, "executed"); got != 0 {
		t.Fatalf("warm exposition executed=%v, want 0", got)
	}
	if got := jobsCounter(fams2, "cache_hit"); got < 6 {
		t.Fatalf("warm exposition cache_hit=%v, want >= 6", got)
	}

	d2.stop(t)

	// --- Zero leaked goroutines. ---
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
