package api

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"lazyrc/internal/causal"
	"lazyrc/internal/runner"
	"lazyrc/internal/store"
)

// daemon is one test incarnation of the service stack: store, service,
// HTTP server, client.
type daemon struct {
	st  *store.Store
	svc *Service
	ts  *httptest.Server
	c   *Client
}

func startDaemon(t *testing.T, dir string, workers int) *daemon {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(workers, st)
	ts := httptest.NewServer(NewServer(svc))
	hc := ts.Client()
	return &daemon{st: st, svc: svc, ts: ts, c: &Client{Base: ts.URL, HTTPClient: hc}}
}

// stop tears the incarnation down in daemon order: drain the service,
// close the bus, close the HTTP server, close the store.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.svc.Close(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	d.ts.CloseClientConnections()
	d.ts.Close()
	if err := d.st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
}

// TestEndToEnd is the PR's acceptance test: submit a sweep over HTTP,
// follow its SSE stream to completion, fetch the report; submit the
// identical sweep again and require zero new executions with
// byte-identical report bytes; then restart the daemon on the same store
// directory and require the resubmitted sweep to be served entirely from
// the persistent store — fingerprints stable across the restart — again
// byte-identical. Finally the whole stack must shut down without leaking
// goroutines.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ctx := context.Background()
	dir := t.TempDir()

	// Let the runtime settle, then baseline the goroutine count.
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	d1 := startDaemon(t, dir, 4)
	if err := d1.c.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	// --- Cold submission: everything simulates. ---
	spec := tinySpec()
	st, err := d1.c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	sweepID := st.ID
	if spec.ID() != sweepID {
		t.Fatalf("server sweep ID %s != client-computed spec ID %s", sweepID, spec.ID())
	}

	var beats, running int
	st, err = d1.c.WaitSweep(ctx, sweepID, func(ev runner.Event) {
		switch ev.Kind {
		case runner.EventHeartbeat:
			beats++
		case runner.EventRunning:
			running++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Error != "" {
		t.Fatalf("cold sweep: %+v", st)
	}
	if st.Jobs != 6 || st.Executed != 6 || st.FromCache != 0 {
		t.Fatalf("cold counters: %+v", st)
	}
	if running == 0 {
		t.Error("SSE stream delivered no running events")
	}

	rep1, err := d1.c.SweepReport(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	html1, err := d1.c.SweepHTML(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(html1, []byte("<html")) && !bytes.Contains(html1, []byte("<!DOCTYPE")) {
		t.Fatal("HTML report does not look like HTML")
	}

	// --- Warm resubmission, same daemon: the sweep record itself is the
	// singleflight — no new work, identical bytes. ---
	st2, err := d1.c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != sweepID || st2.State != StateDone {
		t.Fatalf("resubmission: %+v", st2)
	}
	if m := d1.svc.Runner().Meta(); m.Simulated != 6 {
		t.Fatalf("resubmission simulated: %+v", m)
	}
	rep2, err := d1.c.SweepReport(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("same-daemon resubmission served different report bytes")
	}

	// --- Direct job submission shares the store with sweep cells. ---
	jreq := JobRequest{App: "gauss", Scale: "tiny", Proto: "lrc", Procs: 4, Seed: 1}
	js, err := d1.c.SubmitJob(ctx, jreq)
	if err != nil {
		t.Fatal(err)
	}
	js, err = d1.c.WaitJob(ctx, js.FP)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != StateDone || js.Result == nil {
		t.Fatalf("job: %+v", js)
	}
	if !js.Result.Cached && !js.Cached {
		// The sweep already simulated this exact cell; the job must have
		// been resolved without a fresh run (memo or store).
		if m := d1.svc.Runner().Meta(); m.Simulated != 6 {
			t.Fatalf("direct job re-simulated a sweep cell: %+v", m)
		}
	}
	jobFP := js.FP

	// --- Live Perfetto trace export for a known job. ---
	trace, err := d1.c.JobTrace(ctx, jobFP)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := causal.ValidateTrace(trace); err != nil || n == 0 {
		t.Fatalf("trace invalid (%d events): %v", n, err)
	}

	stats, err := d1.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil || stats.Store.Entries != 6 {
		t.Fatalf("store stats after cold run: %+v", stats.Store)
	}

	d1.stop(t)

	// --- Restart on the same store directory: the resubmitted sweep is
	// served entirely from persistence, fingerprints stable. ---
	d2 := startDaemon(t, dir, 2)
	if err := d2.c.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	// The persisted sweep registry resurrects the sweep with no client
	// resubmission: the restarted daemon re-ran it from the store at
	// boot, so it is already listed — and must finish as a pure cache
	// replay with the identical report bytes.
	if _, err := d2.c.Sweep(ctx, sweepID); err != nil {
		t.Fatalf("sweep not restored from persisted registry: %v", err)
	}
	if all, err := d2.c.Sweeps(ctx); err != nil || len(all) != 1 || all[0].ID != sweepID {
		t.Fatalf("restored sweep list: %v, %v", all, err)
	}

	st3, err := d2.c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != sweepID {
		t.Fatalf("sweep identity drifted across restart: %s != %s", st3.ID, sweepID)
	}
	st3, err = d2.c.WaitSweep(ctx, sweepID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateDone || st3.Executed != 0 || st3.FromCache != 6 {
		t.Fatalf("warm restart counters: %+v", st3)
	}
	if m := d2.svc.Runner().Meta(); m.Simulated != 0 || m.CacheHits != 6 {
		t.Fatalf("warm restart runner: %+v", m)
	}
	rep3, err := d2.c.SweepReport(ctx, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep3) {
		t.Fatalf("report bytes drifted across restart:\n%s\n---\n%s", rep1, rep3)
	}

	// The direct job's result survives as a store lookup with the same
	// fingerprint, even though this daemon never ran it.
	js2, err := d2.c.Job(ctx, jobFP)
	if err != nil {
		t.Fatal(err)
	}
	if js2.State != StateDone || !js2.Cached || js2.Result == nil {
		t.Fatalf("restarted job lookup: %+v", js2)
	}
	if js2.Result.Fingerprint != jobFP {
		t.Fatal("job fingerprint drifted across restart")
	}

	d2.stop(t)

	// --- Zero leaked goroutines. ---
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
