package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"lazyrc/internal/causal"
	"lazyrc/internal/exp"
	"lazyrc/internal/machine"
	"lazyrc/internal/runner"
)

// NewServer binds the service to an HTTP mux. The surface:
//
//	GET    /healthz                     liveness probe (200 until the process dies)
//	GET    /readyz                      readiness probe (503 once draining)
//	GET    /metrics                     Prometheus text exposition
//	GET    /ops                         live operational dashboard (HTML)
//	GET    /debug/pprof/...             runtime profiling
//	GET    /api/v1/stats                runner/store/bus counters
//	POST   /api/v1/compact              store compaction pass
//	POST   /api/v1/sweeps               submit an exp.Spec    → SweepStatus
//	GET    /api/v1/sweeps               list sweeps
//	GET    /api/v1/sweeps/{id}          one sweep's status
//	DELETE /api/v1/sweeps/{id}          cancel a sweep
//	GET    /api/v1/sweeps/{id}/events   SSE: the sweep's job events + final status
//	GET    /api/v1/sweeps/{id}/report.json  stable report (finished sweeps)
//	GET    /api/v1/sweeps/{id}/report.html  HTML report (finished sweeps)
//	POST   /api/v1/jobs                 submit a JobRequest   → JobStatus
//	GET    /api/v1/jobs                 list jobs
//	GET    /api/v1/jobs/{fp}            one job's status (or a store lookup)
//	DELETE /api/v1/jobs/{fp}            cancel a job
//	GET    /api/v1/jobs/{fp}/trace      Perfetto trace (re-runs the job traced)
//	GET    /api/v1/events               SSE: the global job event firehose
//
// Submissions are deduplicated by content identity, so the API is safe
// to retry: re-POSTing a spec returns the existing record (200) instead
// of creating a duplicate (201).
//
// Every response carries an X-Request-Id header (echoed from the
// request or generated), every request produces one structured log
// line, and every route reports into the service's metrics registry.
func NewServer(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	// Liveness and readiness are deliberately split: /healthz answers 200
	// for as long as the process can serve at all, while /readyz flips to
	// 503 the moment Drain begins, so load balancers pull the daemon out
	// of rotation before the listener closes.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.Handle("GET /metrics", s.Registry().Handler())
	mux.HandleFunc("GET /ops", func(w http.ResponseWriter, r *http.Request) {
		serveOps(s, w)
	})

	// pprof must be registered on this mux explicitly: the daemon serves
	// its own mux, not http.DefaultServeMux, so the package's init-time
	// registrations never apply.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("GET /api/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("POST /api/v1/compact", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Compact()
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /api/v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec exp.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, fmt.Errorf("api: bad sweep spec: %w", err))
			return
		}
		st, created, err := s.SubmitSweep(r.Context(), spec)
		if err != nil {
			httpError(w, err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /api/v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Sweeps())
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /api/v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CancelSweep(r.PathValue("id")); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveSweepEvents(s, w, r)
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}/report.json", func(w http.ResponseWriter, r *http.Request) {
		b, err := s.SweepReport(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})

	mux.HandleFunc("GET /api/v1/sweeps/{id}/report.html", func(w http.ResponseWriter, r *http.Request) {
		b, err := s.SweepHTML(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(b)
	})

	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, fmt.Errorf("api: bad job request: %w", err))
			return
		}
		st, created, err := s.SubmitJob(r.Context(), req)
		if err != nil {
			httpError(w, err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /api/v1/jobs/{fp}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("fp"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /api/v1/jobs/{fp}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CancelJob(r.PathValue("fp")); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /api/v1/jobs/{fp}/trace", func(w http.ResponseWriter, r *http.Request) {
		serveTrace(s, w, r)
	})

	mux.HandleFunc("GET /api/v1/events", func(w http.ResponseWriter, r *http.Request) {
		serveFirehose(s, w, r)
	})

	// The middleware labels each request with the mux's route pattern
	// ("GET /api/v1/sweeps/{id}"), not the raw path, so metric
	// cardinality stays bounded no matter what clients request.
	route := func(r *http.Request) string {
		if _, pattern := mux.Handler(r); pattern != "" {
			return pattern
		}
		return "unrouted"
	}
	return s.HTTPMetrics().Middleware(mux, route, s.Logger())
}

// serveFirehose streams every job lifecycle event as SSE until the
// client disconnects or the daemon shuts its bus down.
func serveFirehose(s *Service, w http.ResponseWriter, r *http.Request) {
	fl, ok := sseStart(w)
	if !ok {
		return
	}
	sub := s.Subscribe(sseBuffer)
	defer sub.Close()
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if err := sseEvent(w, fl, "job", ev); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// serveSweepEvents streams one sweep's job events (filtered from the
// firehose by the sweep's cell fingerprints) and finishes with a "sweep"
// event carrying the terminal status. A subscriber arriving after the
// sweep finished receives just the terminal event.
func serveSweepEvents(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fps, err := s.sweepFPs(id)
	if err != nil {
		httpError(w, err)
		return
	}
	done, _ := s.SweepDone(id)
	fl, ok := sseStart(w)
	if !ok {
		return
	}
	// Subscribe before the first status read: events between the
	// snapshot and the subscription would otherwise be lost.
	sub := s.Subscribe(sseBuffer)
	defer sub.Close()

	st, err := s.Sweep(id)
	if err != nil {
		return
	}
	if err := sseEvent(w, fl, "status", st); err != nil {
		return
	}
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if !fps[ev.FP] {
				continue
			}
			if err := sseEvent(w, fl, "job", ev); err != nil {
				return
			}
		case <-done:
			// Drain what the bus already delivered, then finish with the
			// terminal status.
			for {
				select {
				case ev, ok := <-sub.C():
					if ok && fps[ev.FP] {
						sseEvent(w, fl, "job", ev)
						continue
					}
				default:
				}
				break
			}
			if st, err := s.Sweep(id); err == nil {
				sseEvent(w, fl, "sweep", st)
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

// serveTrace re-runs a known job with span retention enabled and writes
// the Perfetto trace. Tracing is passive (results stay bit-identical),
// but retaining spans costs memory, so traces are produced on demand
// rather than stored.
func serveTrace(s *Service, w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	job, err := s.jobFor(fp)
	if err != nil {
		httpError(w, err)
		return
	}
	m, rerr := runner.ExecTraced(job)
	if rerr != nil {
		httpError(w, fmt.Errorf("api: trace run failed: %w", rerr))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", fp[:min(16, len(fp))]+".perfetto.json"))
	if err := causal.WritePerfetto(w, m.Causal, machine.MsgKindName); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

const sseBuffer = 1024

// sseStart switches the response into SSE mode.
func sseStart(w http.ResponseWriter) (http.Flusher, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "api: streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return fl, true
}

// sseEvent writes one named SSE event with a JSON payload.
func sseEvent(w http.ResponseWriter, fl http.Flusher, name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// writeJSON writes an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError maps service errors onto status codes.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}
