package api

import (
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"

	"lazyrc/internal/obs"
	"lazyrc/internal/telemetry"
)

// serveOps renders the live operational dashboard: a self-contained,
// auto-refreshing HTML page built from the same registry snapshot
// /metrics exposes, plus the sweep registry. It reuses the telemetry
// report shell (CSS, cards, tables) so the ops page and the simulation
// reports read as one product; the data underneath is strictly the
// wall-clock plane.
func serveOps(s *Service, w http.ResponseWriter) {
	snap := indexSnapshot(s.Registry().Snapshot())

	doc := telemetry.NewHTMLDoc("lrcsimd ops",
		"live daemon state · reloads every 5 s · scrape /metrics for history")
	doc.SetRefresh(5)

	// Service card: identity and the liveness/readiness story at a glance.
	ready := "ready"
	if s.Draining() {
		ready = "DRAINING (readyz → 503)"
	}
	doc.Section("Service", telemetry.MetaTable([][2]string{
		{"build", s.Build().String()},
		{"uptime", time.Since(s.start).Truncate(time.Second).String()},
		{"workers", fmt.Sprintf("%d", s.rn.Pool().Workers)},
		{"readiness", ready},
	}))

	doc.Section("HTTP", opsHTTPTable(snap))
	doc.Section("Pool & jobs", opsPoolTable(s, snap))
	doc.Section("Event bus", opsBusTable(s))
	if s.st != nil {
		doc.Section("Store", opsStoreTable(s))
	}
	doc.Section("Recent sweeps", opsSweepsTable(s))

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	doc.Render(w)
}

// indexSnapshot keys a registry snapshot by family name.
func indexSnapshot(fams []obs.Family) map[string]obs.Family {
	m := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		m[f.Name] = f
	}
	return m
}

// labelValue returns the value of the named label in a sample.
func labelValue(sm obs.Sample, name string) string {
	for _, l := range sm.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// opsHTTPTable renders the per-route traffic table: request counts by
// status class, in-flight, and latency quantiles from the wall-clock
// histograms.
func opsHTTPTable(snap map[string]obs.Family) string {
	type row struct {
		total, err4, err5   float64
		inflight            float64
		mean, p50, p95, p99 float64 // milliseconds
	}
	rows := map[string]*row{}
	get := func(route string) *row {
		r, ok := rows[route]
		if !ok {
			r = &row{}
			rows[route] = r
		}
		return r
	}
	var order []string
	for _, sm := range snap["lrcsimd_http_requests_total"].Samples {
		route := labelValue(sm, "route")
		if _, seen := rows[route]; !seen {
			order = append(order, route)
		}
		r := get(route)
		r.total += sm.Value
		switch labelValue(sm, "code") {
		case "4xx":
			r.err4 += sm.Value
		case "5xx":
			r.err5 += sm.Value
		}
	}
	for _, sm := range snap["lrcsimd_http_in_flight_requests"].Samples {
		get(labelValue(sm, "route")).inflight = sm.Value
	}
	for _, sm := range snap["lrcsimd_http_request_duration_seconds"].Samples {
		r := get(labelValue(sm, "route"))
		if sm.Count > 0 {
			r.mean = sm.Sum / float64(sm.Count) * 1000
		}
		r.p50 = obs.Quantile(sm.Buckets, 0.50) * 1000
		r.p95 = obs.Quantile(sm.Buckets, 0.95) * 1000
		r.p99 = obs.Quantile(sm.Buckets, 0.99) * 1000
	}
	if len(order) == 0 {
		return `<p class="meta">no requests yet</p>`
	}
	var b strings.Builder
	b.WriteString("<table><tr><th>route</th><th>requests</th><th>4xx</th><th>5xx</th><th>in flight</th><th>mean ms</th><th>p50</th><th>p95</th><th>p99</th></tr>\n")
	for _, route := range order {
		r := rows[route]
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td></tr>\n",
			html.EscapeString(route), r.total, r.err4, r.err5, r.inflight,
			r.mean, r.p50, r.p95, r.p99)
	}
	b.WriteString("</table>\n")
	return b.String()
}

// opsPoolTable renders worker-pool occupancy and the job lifecycle
// counters folded from the runner's event stream.
func opsPoolTable(s *Service, snap map[string]obs.Family) string {
	pool := s.rn.Pool()
	kinds := map[string]float64{}
	for _, sm := range snap["lrcsimd_jobs_total"].Samples {
		kinds[labelValue(sm, "kind")] = sm.Value
	}
	// Live simulation speed: the per-(app, proto) heartbeat gauges summed
	// over currently running jobs (terminal jobs zero their gauge).
	var speed float64
	for _, sm := range snap["lrcsimd_sim_cycles_per_second"].Samples {
		speed += sm.Value
	}
	return telemetry.MetaTable([][2]string{
		{"running / workers", fmt.Sprintf("%d / %d", pool.Running, pool.Workers)},
		{"queued", fmt.Sprintf("%d", pool.Queued)},
		{"live sim speed", fmt.Sprintf("%.2f Mcycles/s", speed/1e6)},
		{"executed (fresh simulations)", fmt.Sprintf("%.0f", kinds["executed"])},
		{"cache hits (persistent store)", fmt.Sprintf("%.0f", kinds["cache_hit"])},
		{"deduped (in-process)", fmt.Sprintf("%.0f", kinds["deduped"])},
		{"done / failed / canceled", fmt.Sprintf("%.0f / %.0f / %.0f", kinds["done"], kinds["failed"], kinds["canceled"])},
	})
}

// opsBusTable renders the event bus: aggregate counters plus the
// per-subscriber attribution (who is slow, who is losing events).
func opsBusTable(s *Service) string {
	st := s.b.Stats()
	var b strings.Builder
	b.WriteString(telemetry.MetaTable([][2]string{
		{"subscribers", fmt.Sprintf("%d", st.Subscribers)},
		{"published", fmt.Sprintf("%d", st.Published)},
		{"delivered", fmt.Sprintf("%d", st.Delivered)},
		{"dropped", fmt.Sprintf("%d", st.Dropped)},
	}))
	if len(st.Subs) > 0 {
		b.WriteString("<table><tr><th>subscriber</th><th>buffered</th><th>cap</th><th>delivered</th><th>dropped</th></tr>\n")
		for _, sub := range st.Subs {
			fmt.Fprintf(&b, "<tr><td>#%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
				sub.ID, sub.Buffered, sub.Cap, sub.Delivered, sub.Dropped)
		}
		b.WriteString("</table>\n")
	}
	return b.String()
}

// opsStoreTable renders the persistent store's health, including the
// dead-byte ratio a compaction pass would reclaim.
func opsStoreTable(s *Service) string {
	st := s.st.Stats()
	return telemetry.MetaTable([][2]string{
		{"segments / entries", fmt.Sprintf("%d / %d", st.Segments, st.Entries)},
		{"live bytes", fmt.Sprintf("%d", st.LiveBytes)},
		{"dead bytes", fmt.Sprintf("%d (%.0f%% of file)", st.DeadBytes(), st.DeadRatio()*100)},
		{"appends / lookups / misses", fmt.Sprintf("%d / %d / %d", st.Appends, st.Lookups, st.Misses)},
		{"compactions", fmt.Sprintf("%d", st.Compactions)},
		{"corrupt lines dropped", fmt.Sprintf("%d", st.DroppedLines)},
	})
}

// opsSweepsTable renders the most recent sweeps, newest first.
func opsSweepsTable(s *Service) string {
	sweeps := s.Sweeps()
	if len(sweeps) == 0 {
		return `<p class="meta">no sweeps submitted</p>`
	}
	const maxRows = 10
	var b strings.Builder
	b.WriteString("<table><tr><th>sweep</th><th>state</th><th>cells</th><th>completed</th><th>executed</th><th>cached</th><th>deduped</th><th>failed</th><th>wall</th><th>speed</th></tr>\n")
	shown := 0
	for i := len(sweeps) - 1; i >= 0 && shown < maxRows; i-- {
		sw := sweeps[i]
		id := sw.ID
		if len(id) > 16 {
			id = id[:16]
		}
		wall, speed := "—", "—"
		if sw.Terminal() {
			wall = (time.Duration(sw.WallMS) * time.Millisecond).String()
			if sw.CyclesPerSec > 0 {
				speed = fmt.Sprintf("%.2f Mcyc/s", sw.CyclesPerSec/1e6)
			}
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(id), html.EscapeString(sw.State),
			sw.Jobs, sw.Completed, sw.Executed, sw.FromCache, sw.Deduped, sw.Failed,
			wall, speed)
		shown++
	}
	b.WriteString("</table>\n")
	if len(sweeps) > maxRows {
		fmt.Fprintf(&b, `<p class="meta">%d older sweeps not shown</p>`+"\n", len(sweeps)-maxRows)
	}
	return b.String()
}
