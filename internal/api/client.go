package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"lazyrc/internal/exp"
	"lazyrc/internal/obs"
	"lazyrc/internal/runner"
)

// Client is a typed client for the lrcsimd HTTP API.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:7077".
	Base string
	// HTTPClient overrides http.DefaultClient when non-nil. Streaming
	// endpoints need a client without a global timeout.
	HTTPClient *http.Client
}

func (c *Client) hc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues one JSON request; out, when non-nil, receives the decoded
// response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("api: %s %s: %s: %s%s", method, path, resp.Status,
			strings.TrimSpace(string(msg)), requestIDSuffix(resp))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// requestIDSuffix renders the response's X-Request-Id for error
// messages, so a client-side failure names the exact server-side log
// lines to grep.
func requestIDSuffix(resp *http.Response) string {
	if id := resp.Header.Get(obs.RequestIDHeader); id != "" {
		return " (request_id " + id + ")"
	}
	return ""
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz probes the daemon's readiness endpoint: an error means the
// daemon is absent, starting, or draining — stop routing work to it.
func (c *Client) Readyz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Metrics fetches the daemon's Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, "/metrics")
}

// WaitHealthy polls the liveness endpoint until the daemon answers or
// ctx expires — the startup handshake for tests and scripts.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		if err := c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("api: daemon at %s never became healthy: %w", c.Base, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// SubmitSweep submits a sweep spec (idempotent: an identical spec
// returns the existing record).
func (c *Client) SubmitSweep(ctx context.Context, spec exp.Spec) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/sweeps", spec, &st)
	return st, err
}

// Sweep fetches one sweep's status.
func (c *Client) Sweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Sweeps lists all sweeps.
func (c *Client) Sweeps(ctx context.Context) ([]SweepStatus, error) {
	var out []SweepStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/sweeps", nil, &out)
	return out, err
}

// CancelSweep cancels a sweep.
func (c *Client) CancelSweep(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/sweeps/"+id, nil, nil)
}

// SweepReport fetches a finished sweep's stable report JSON.
func (c *Client) SweepReport(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/sweeps/"+id+"/report.json")
}

// SweepHTML fetches a finished sweep's HTML report.
func (c *Client) SweepHTML(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/sweeps/"+id+"/report.html")
}

// JobTrace fetches a job's Perfetto trace (the daemon re-runs the job
// with span retention).
func (c *Client) JobTrace(ctx context.Context, fp string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/jobs/"+fp+"/trace")
}

func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("api: GET %s: %s: %s%s", path, resp.Status,
			strings.TrimSpace(string(msg)), requestIDSuffix(resp))
	}
	return io.ReadAll(resp.Body)
}

// SubmitJob submits one job (idempotent on the job's fingerprint).
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &st)
	return st, err
}

// Job fetches one job's status by fingerprint.
func (c *Client) Job(ctx context.Context, fp string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+fp, nil, &st)
	return st, err
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var st StatsResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &st)
	return st, err
}

// WaitJob polls a job until it reaches a terminal state.
func (c *Client) WaitJob(ctx context.Context, fp string) (JobStatus, error) {
	for {
		st, err := c.Job(ctx, fp)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// WaitSweep follows a sweep's SSE stream until the terminal "sweep"
// event arrives, forwarding each job event to onEvent (which may be
// nil). It returns the sweep's terminal status.
func (c *Client) WaitSweep(ctx context.Context, id string, onEvent func(runner.Event)) (SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/api/v1/sweeps/"+id+"/events"), nil)
	if err != nil {
		return SweepStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc().Do(req)
	if err != nil {
		return SweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return SweepStatus{}, fmt.Errorf("api: sweep events: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	var final *SweepStatus
	err = readSSE(resp.Body, func(name string, data []byte) error {
		switch name {
		case "job":
			if onEvent != nil {
				var ev runner.Event
				if err := json.Unmarshal(data, &ev); err == nil {
					onEvent(ev)
				}
			}
		case "sweep":
			var st SweepStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return err
			}
			final = &st
		}
		return nil
	})
	if final != nil {
		return *final, nil
	}
	if err == nil {
		// Stream ended without a terminal event (daemon shut its bus
		// down mid-sweep); fall back to one status read.
		return c.Sweep(ctx, id)
	}
	return SweepStatus{}, err
}

// readSSE parses a Server-Sent-Events stream, invoking handle once per
// event with the event name and the concatenated data payload. Returns
// nil at a clean end of stream, or handle's first error.
func readSSE(r io.Reader, handle func(name string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	name := ""
	var data []byte
	flush := func() error {
		if len(data) == 0 && name == "" {
			return nil
		}
		err := handle(name, data)
		name, data = "", nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}
