package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"lazyrc/internal/apps"
	"lazyrc/internal/bus"
	"lazyrc/internal/config"
	"lazyrc/internal/exp"
	"lazyrc/internal/obs"
	"lazyrc/internal/runner"
	"lazyrc/internal/store"
)

// ErrDraining is returned by submissions after shutdown has begun.
var ErrDraining = errors.New("api: daemon is draining")

// ErrNotFound is returned for unknown sweep or job identities.
var ErrNotFound = errors.New("api: not found")

// Service is the daemon's core: it owns the runner pool, the persistent
// result store, and the event bus, and it tracks every submitted sweep
// and job. HTTP handlers and tests talk to it directly; it has no
// transport dependencies of its own.
type Service struct {
	rn *runner.Runner
	st *store.Store // nil when running without persistence
	b  *bus.Bus[runner.Event]

	// Observability plane (wall-clock, never the simulated clock): the
	// metrics registry every endpoint and subsystem reports into, the
	// structured logger, and the per-route HTTP metric families the
	// server middleware feeds.
	reg   *obs.Registry
	log   *slog.Logger
	httpm *obs.HTTPMetrics
	build obs.BuildInfo
	start time.Time

	jobEvents  *obs.CounterVec // runner lifecycle events by kind
	heartbeats *obs.Counter
	simSpeed   *obs.GaugeVec // live cycles/sec of running jobs by (app, proto)

	runCtx context.Context // parent of every submission's context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	draining bool
	sweeps   map[string]*sweepState
	order    []string // sweep IDs in first-submission order
	jobs     map[string]*jobState
	jobOrder []string // job fingerprints in first-submission order
	// rates tracks per-fingerprint heartbeat progress of running jobs,
	// feeding the lrcsimd_sim_cycles_per_second gauge. Wall-clock
	// observability only.
	rates map[string]*jobRate
}

// jobRate is one running job's last observed heartbeat, for the live
// throughput gauge: cycles/sec between consecutive heartbeats.
type jobRate struct {
	app, proto string
	lastCycle  uint64
	lastAt     time.Time
}

// sweepState is one sweep's record. status is mutated under Service.mu;
// done closes exactly once when the sweep reaches a terminal state, after
// which reportJSON/reportHTML are immutable.
type sweepState struct {
	status SweepStatus
	// reqID is the submitting request's ID, stamped into every
	// lifecycle log line so one grep follows the request end to end.
	reqID string
	// fps is the sweep's cell identity set; doneFPs the subset that has
	// reached a terminal state. Counter attribution stops at the first
	// terminal event per fingerprint, so the evaluator's post-sweep memo
	// reads (which re-submit every cell and resolve as dedup) do not
	// double-count.
	fps     map[string]bool
	doneFPs map[string]bool
	cancel  context.CancelFunc
	done    chan struct{}
	// startedAt is stamped when the sweep leaves queued, for the
	// terminal status's wall-clock duration.
	startedAt time.Time

	reportJSON []byte // stable report, indented JSON
	reportHTML []byte // self-contained HTML rendering
}

// jobState is one directly submitted job's record.
type jobState struct {
	job    runner.Job
	reqID  string
	status JobStatus
	cancel context.CancelFunc
	done   chan struct{}
}

// NewService builds a service executing on a pool of the given size,
// persisting through st (nil disables persistence) and logging through
// logger (nil discards). The bus, runner, and job registry start empty;
// the sweep registry is reloaded from the store's persisted sidecar,
// resurrecting every sweep a previous daemon incarnation accepted — the
// re-runs resolve from the result store, so a warm boot restores
// finished reports without simulating. Close tears everything down.
func NewService(workers int, st *store.Store, logger *slog.Logger) *Service {
	var rstore runner.ResultStore
	if st != nil {
		rstore = st
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		rn:     runner.New(workers, rstore),
		st:     st,
		b:      bus.New[runner.Event](),
		reg:    obs.NewRegistry(),
		log:    logger,
		start:  time.Now(),
		runCtx: ctx,
		cancel: cancel,
		sweeps: make(map[string]*sweepState),
		jobs:   make(map[string]*jobState),
		rates:  make(map[string]*jobRate),
	}
	s.registerMetrics()
	s.rn.Emit = s.onEvent
	if st != nil {
		// Resurrection submissions carry a synthetic request ID so their
		// lifecycle log lines are distinguishable from client traffic.
		bootCtx := obs.WithRequestID(context.Background(), "boot")
		for _, raw := range st.Sweeps() {
			var spec exp.Spec
			if err := json.Unmarshal(raw, &spec); err != nil {
				continue // schema drift: skip, the registry rewrites on next submit
			}
			s.SubmitSweep(bootCtx, spec) // a spec that no longer validates is dropped
		}
	}
	return s
}

// registerMetrics builds the daemon's metric inventory: runner
// lifecycle counters (folded from the Emit stream), and func-backed
// gauges bridging the pool/bus/store Stats snapshots into the
// exposition. Wall-clock plane only — nothing here observes simulated
// time.
func (s *Service) registerMetrics() {
	s.build = obs.RegisterBuildInfo(s.reg, "lrcsimd")
	s.httpm = obs.NewHTTPMetrics(s.reg, "lrcsimd")

	s.jobEvents = s.reg.CounterVec("lrcsimd_jobs_total",
		"Job lifecycle events by kind: executed (fresh simulations), "+
			"cache_hit (served from the persistent store), deduped (resolved "+
			"by an identical in-flight or finished job), done, failed "+
			"(panics and construction errors), canceled, queued.",
		"kind")
	// Pre-create every kind at zero: a warm daemon's executed=0 is a
	// statement the exposition must make, not an absent series.
	for _, kind := range []string{"queued", "executed", "cache_hit", "deduped", "done", "failed", "canceled"} {
		s.jobEvents.With(kind)
	}
	s.heartbeats = s.reg.Counter("lrcsimd_job_heartbeats_total",
		"Progress heartbeats received from running simulations.")
	s.simSpeed = s.reg.GaugeVec("lrcsimd_sim_cycles_per_second",
		"Live simulation speed of running jobs (simulated cycles per "+
			"wall-clock second, measured between consecutive heartbeats; "+
			"0 when no job with the label pair is running).",
		"app", "proto")

	s.reg.GaugeFunc("lrcsimd_pool_workers", "Simulation worker pool size.",
		func() float64 { return float64(s.rn.Pool().Workers) })
	s.reg.GaugeFunc("lrcsimd_pool_running", "Jobs holding a worker slot right now.",
		func() float64 { return float64(s.rn.Pool().Running) })
	s.reg.GaugeFunc("lrcsimd_pool_queued", "Submissions in flight without a worker slot (queued or deduplicating).",
		func() float64 { return float64(s.rn.Pool().Queued) })

	s.reg.GaugeFunc("lrcsimd_bus_subscribers", "Attached event-bus subscribers (SSE streams).",
		func() float64 { return float64(s.b.Stats().Subscribers) })
	s.reg.CounterFunc("lrcsimd_bus_published_total", "Events published to the bus.",
		func() float64 { return float64(s.b.Stats().Published) })
	s.reg.CounterFunc("lrcsimd_bus_dropped_total", "Per-subscriber deliveries lost to full buffers.",
		func() float64 { return float64(s.b.Stats().Dropped) })

	s.reg.GaugeFunc("lrcsimd_sweeps", "Sweeps registered (all states).",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.sweeps)) })
	s.reg.GaugeFunc("lrcsimd_submitted_jobs", "Directly submitted jobs registered (all states).",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.jobs)) })
	s.reg.GaugeFunc("lrcsimd_uptime_seconds", "Seconds since the service was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })

	if s.st == nil {
		return
	}
	s.reg.GaugeFunc("lrcsimd_store_segments", "On-disk segment files.",
		func() float64 { return float64(s.st.Stats().Segments) })
	s.reg.GaugeFunc("lrcsimd_store_entries", "Live fingerprints in the store index.",
		func() float64 { return float64(s.st.Stats().Entries) })
	s.reg.GaugeFunc("lrcsimd_store_live_bytes", "Bytes of latest-line-per-fingerprint payload.",
		func() float64 { return float64(s.st.Stats().LiveBytes) })
	s.reg.GaugeFunc("lrcsimd_store_dead_bytes", "Bytes a compaction would reclaim.",
		func() float64 { return float64(s.st.Stats().DeadBytes()) })
	s.reg.CounterFunc("lrcsimd_store_appends_total", "Results appended to the store.",
		func() float64 { return float64(s.st.Stats().Appends) })
	s.reg.CounterFunc("lrcsimd_store_lookups_total", "Index lookups served.",
		func() float64 { return float64(s.st.Stats().Lookups) })
	s.reg.CounterFunc("lrcsimd_store_misses_total", "Index lookups that found nothing.",
		func() float64 { return float64(s.st.Stats().Misses) })
	s.reg.CounterFunc("lrcsimd_store_compactions_total", "Compaction passes run.",
		func() float64 { return float64(s.st.Stats().Compactions) })
	s.reg.CounterFunc("lrcsimd_store_corrupt_lines_total", "Corrupt lines dropped while loading.",
		func() float64 { return float64(s.st.Stats().DroppedLines) })
}

// Runner exposes the shared pool (tests inspect its Meta).
func (s *Service) Runner() *runner.Runner { return s.rn }

// Registry exposes the metrics registry (the /metrics and /ops
// endpoints render from it).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Logger exposes the structured logger the HTTP middleware shares.
func (s *Service) Logger() *slog.Logger { return s.log }

// HTTPMetrics exposes the per-route HTTP families for the server
// middleware. Registered once in NewService so binding multiple servers
// to one service cannot double-register.
func (s *Service) HTTPMetrics() *obs.HTTPMetrics { return s.httpm }

// Build exposes the binary's build identity.
func (s *Service) Build() obs.BuildInfo { return s.build }

// Draining reports whether shutdown has begun — the readiness signal:
// /readyz turns 503 the moment this turns true, while /healthz stays
// 200 until the process exits.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Subscribe attaches an event-stream subscriber to the daemon's bus.
func (s *Service) Subscribe(buffer int) *bus.Sub[runner.Event] {
	return s.b.Subscribe(buffer)
}

// onEvent is the runner's Emit hook: every job lifecycle event is fanned
// out to bus subscribers, folded into the metrics registry, and folded
// into the counters of every live sweep whose cell set contains the
// event's fingerprint.
func (s *Service) onEvent(ev runner.Event) {
	s.b.Publish(ev)
	switch ev.Kind {
	case runner.EventQueued:
		s.jobEvents.With("queued").Inc()
	case runner.EventRunning:
		s.jobEvents.With("executed").Inc()
	case runner.EventCached:
		s.jobEvents.With("cache_hit").Inc()
	case runner.EventDedup:
		s.jobEvents.With("deduped").Inc()
	case runner.EventDone:
		s.jobEvents.With("done").Inc()
	case runner.EventFailed:
		s.jobEvents.With("failed").Inc()
	case runner.EventCanceled:
		s.jobEvents.With("canceled").Inc()
	case runner.EventHeartbeat:
		s.heartbeats.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trackRate(ev)
	for _, id := range s.order {
		sw := s.sweeps[id]
		if sw.status.Terminal() || !sw.fps[ev.FP] || sw.doneFPs[ev.FP] {
			continue
		}
		switch ev.Kind {
		case runner.EventRunning:
			sw.status.Executed++
		case runner.EventCached:
			sw.status.FromCache++
			sw.doneFPs[ev.FP] = true
		case runner.EventDedup:
			sw.status.Deduped++
			sw.doneFPs[ev.FP] = true
		case runner.EventDone:
			sw.doneFPs[ev.FP] = true
		case runner.EventFailed:
			sw.status.Failed++
			sw.doneFPs[ev.FP] = true
		case runner.EventCanceled:
			sw.doneFPs[ev.FP] = true
		}
		sw.status.Completed = len(sw.doneFPs)
		if ev.Kind == runner.EventDone {
			sw.status.SimCycles += ev.Cycle
		}
	}
}

// trackRate folds one lifecycle event into the live throughput gauge.
// Caller holds s.mu. Running starts tracking the fingerprint, each
// heartbeat sets the (app, proto) gauge to the speed since the previous
// one, and any terminal event zeroes the gauge and forgets the entry.
func (s *Service) trackRate(ev runner.Event) {
	switch ev.Kind {
	case runner.EventRunning:
		s.rates[ev.FP] = &jobRate{app: ev.App, proto: ev.Proto, lastAt: time.Now()}
	case runner.EventHeartbeat:
		jr, ok := s.rates[ev.FP]
		if !ok {
			return
		}
		now := time.Now()
		if dt := now.Sub(jr.lastAt).Seconds(); dt > 0 && ev.Cycle > jr.lastCycle {
			s.simSpeed.With(ev.App, ev.Proto).Set(float64(ev.Cycle-jr.lastCycle) / dt)
		}
		jr.lastCycle = ev.Cycle
		jr.lastAt = now
	case runner.EventDone, runner.EventFailed, runner.EventCanceled:
		if _, ok := s.rates[ev.FP]; ok {
			delete(s.rates, ev.FP)
			s.simSpeed.With(ev.App, ev.Proto).Set(0)
		}
	}
}

// SubmitSweep registers a sweep for execution and returns its status.
// Submission is singleflight on the sweep's content identity: concurrent
// or repeated submissions of the same normalized spec share one record
// (and the cells themselves are further deduplicated per fingerprint by
// the runner, so even distinct overlapping sweeps simulate a shared cell
// once). The bool reports whether this call created the sweep. ctx
// carries the submitting request's ID (obs.RequestID), which is stamped
// into every lifecycle log line; it does NOT bound the sweep's
// execution — the sweep outlives the request.
func (s *Service) SubmitSweep(submitCtx context.Context, spec exp.Spec) (SweepStatus, bool, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return SweepStatus{}, false, err
	}
	jobs, err := norm.Jobs()
	if err != nil {
		return SweepStatus{}, false, err
	}
	id := norm.ID()
	reqID := obs.RequestID(submitCtx)

	s.mu.Lock()
	if sw, ok := s.sweeps[id]; ok {
		st := sw.status
		s.mu.Unlock()
		return st, false, nil
	}
	if s.draining {
		s.mu.Unlock()
		return SweepStatus{}, false, ErrDraining
	}
	ctx, cancel := context.WithCancel(s.runCtx)
	sw := &sweepState{
		status: SweepStatus{
			ID:    id,
			State: StateQueued,
			Spec:  norm,
			Jobs:  len(jobs),
		},
		reqID:   reqID,
		fps:     make(map[string]bool, len(jobs)),
		doneFPs: make(map[string]bool, len(jobs)),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	for _, j := range jobs {
		sw.fps[j.Fingerprint()] = true
	}
	s.sweeps[id] = sw
	s.order = append(s.order, id)
	st := sw.status
	s.wg.Add(1)
	s.mu.Unlock()

	s.log.Info("sweep submitted", "sweep", id, "jobs", len(jobs), "request_id", reqID)
	s.persistSweeps()
	go s.runSweep(ctx, sw, norm)
	return st, true, nil
}

// persistSweeps rewrites the store's sweep registry sidecar from the
// current submission order. Best-effort: persistence failing must not
// fail the submission that triggered it (the sweep still runs; only
// restart recovery is degraded).
func (s *Service) persistSweeps() {
	if s.st == nil {
		return
	}
	s.mu.Lock()
	specs := make([]json.RawMessage, 0, len(s.order))
	for _, id := range s.order {
		if b, err := json.Marshal(s.sweeps[id].status.Spec); err == nil {
			specs = append(specs, b)
		}
	}
	s.mu.Unlock()
	_ = s.st.SaveSweeps(specs)
}

// runSweep executes one sweep to a terminal state.
func (s *Service) runSweep(ctx context.Context, sw *sweepState, spec exp.Spec) {
	defer s.wg.Done()
	defer close(sw.done)

	s.mu.Lock()
	sw.status.State = StateRunning
	sw.startedAt = time.Now()
	s.mu.Unlock()

	fail := func(err error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		sw.status.State = StateFailed
		sw.status.Error = err.Error()
	}

	e, err := spec.Evaluator()
	if err != nil {
		fail(err)
		return
	}
	e.R = s.rn
	e.Ctx = ctx

	// Fan the whole matrix out to the pool, then read every cell into the
	// evaluator's memo (in-process dedup makes the reads free) so the
	// report renders from a complete, deterministic cell set.
	cells := spec.Cells()
	e.Prefetch(cells)
	for _, c := range cells {
		e.Get(c[0], c[1], c[2])
	}

	var firstFail error
	canceled := ctx.Err() != nil
	for _, r := range e.Runs() {
		if r.VerifyErr != nil && firstFail == nil {
			firstFail = fmt.Errorf("%s/%s/%s: %w", r.Config, r.App, r.Proto, r.VerifyErr)
		}
	}

	// Render both report forms now, while the evaluator is hot: clients
	// fetch bytes, never recompute. The stable form drops the runner's
	// volatile provenance, so a warm re-submission (or a re-submission
	// after a daemon restart over the same store) serves bit-identical
	// bytes.
	var jsonBuf, htmlBuf bytes.Buffer
	rep := e.Report().Stable()
	jsonErr := exp.WriteReportJSON(&jsonBuf, rep)
	htmlErr := exp.WriteHTML(&htmlBuf, rep)

	s.mu.Lock()
	sw.reportJSON = jsonBuf.Bytes()
	sw.reportHTML = htmlBuf.Bytes()
	wall := time.Since(sw.startedAt)
	sw.status.WallMS = wall.Milliseconds()
	if secs := wall.Seconds(); secs > 0 {
		sw.status.CyclesPerSec = float64(sw.status.SimCycles) / secs
	}
	switch {
	case canceled:
		sw.status.State = StateCanceled
		sw.status.Error = "canceled: " + context.Cause(ctx).Error()
	case sw.status.Failed > 0 && firstFail != nil:
		sw.status.State = StateFailed
		sw.status.Error = firstFail.Error()
	case jsonErr != nil || htmlErr != nil:
		sw.status.State = StateFailed
		sw.status.Error = errors.Join(jsonErr, htmlErr).Error()
	default:
		sw.status.State = StateDone
		if firstFail != nil {
			// Deterministic verification failures are results, not crashes:
			// the sweep is done, the error is advisory.
			sw.status.Error = firstFail.Error()
		}
	}
	st := sw.status
	s.mu.Unlock()

	s.log.Info("sweep finished",
		"sweep", st.ID, "state", string(st.State),
		"executed", st.Executed, "from_cache", st.FromCache,
		"deduped", st.Deduped, "failed", st.Failed,
		"request_id", sw.reqID)
}

// Sweep returns a sweep's current status.
func (s *Service) Sweep(id string) (SweepStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return SweepStatus{}, ErrNotFound
	}
	return sw.status, nil
}

// Sweeps lists all sweeps in first-submission order.
func (s *Service) Sweeps() []SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SweepStatus, len(s.order))
	for i, id := range s.order {
		out[i] = s.sweeps[id].status
	}
	return out
}

// CancelSweep cancels a sweep's submission context. In-flight
// simulations stop cooperatively; already-terminal sweeps are unchanged.
func (s *Service) CancelSweep(id string) error {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	sw.cancel()
	return nil
}

// SweepDone returns a channel closed when the sweep reaches a terminal
// state.
func (s *Service) SweepDone(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sw.done, nil
}

// sweepFPs snapshots a sweep's cell identity set (for SSE filtering).
func (s *Service) sweepFPs(id string) (map[string]bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, ErrNotFound
	}
	fps := make(map[string]bool, len(sw.fps))
	for fp := range sw.fps {
		fps[fp] = true
	}
	return fps, nil
}

// SweepReport returns the finished sweep's stable report JSON.
func (s *Service) SweepReport(id string) ([]byte, error) {
	return s.sweepBytes(id, func(sw *sweepState) []byte { return sw.reportJSON })
}

// SweepHTML returns the finished sweep's HTML report.
func (s *Service) SweepHTML(id string) ([]byte, error) {
	return s.sweepBytes(id, func(sw *sweepState) []byte { return sw.reportHTML })
}

func (s *Service) sweepBytes(id string, pick func(*sweepState) []byte) ([]byte, error) {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	select {
	case <-sw.done:
	default:
		return nil, fmt.Errorf("api: sweep %s has not finished", id)
	}
	b := pick(sw)
	if len(b) == 0 {
		return nil, fmt.Errorf("api: sweep %s produced no report", id)
	}
	return b, nil
}

// materializeJob turns a wire job request into a runner job, using the
// exact configuration path sweep cells use so fingerprints coincide.
func materializeJob(req JobRequest) (runner.Job, error) {
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "small"
	}
	scale, err := apps.ParseScale(scaleName)
	if err != nil {
		return runner.Job{}, err
	}
	if _, err := apps.New(req.App, scale); err != nil {
		return runner.Job{}, err
	}
	procs := req.Procs
	if procs == 0 {
		procs = 64
	}
	cfg, err := config.Preset(req.Preset, procs)
	if err != nil {
		return runner.Job{}, err
	}
	cfg.CacheSize = exp.CacheForScale(scale)
	cfg.Seed = req.Seed
	if err := cfg.Validate(); err != nil {
		return runner.Job{}, err
	}
	return runner.Job{App: req.App, Scale: scale, Proto: req.Proto, Cfg: cfg}, nil
}

// SubmitJob registers one job for execution and returns its status.
// Like sweeps, submission is singleflight on the job's fingerprint. The
// bool reports whether this call created the job. submitCtx carries the
// submitting request's ID for lifecycle log lines; it does not bound
// execution.
func (s *Service) SubmitJob(submitCtx context.Context, req JobRequest) (JobStatus, bool, error) {
	job, err := materializeJob(req)
	if err != nil {
		return JobStatus{}, false, err
	}
	fp := job.Fingerprint()
	reqID := obs.RequestID(submitCtx)

	s.mu.Lock()
	if js, ok := s.jobs[fp]; ok {
		st := js.status
		s.mu.Unlock()
		return st, false, nil
	}
	if s.draining {
		s.mu.Unlock()
		return JobStatus{}, false, ErrDraining
	}
	ctx, cancel := context.WithCancel(s.runCtx)
	js := &jobState{
		job:   job,
		reqID: reqID,
		status: JobStatus{
			FP:    fp,
			State: StateQueued,
			App:   job.App,
			Scale: job.Scale.String(),
			Proto: job.Proto,
		},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.jobs[fp] = js
	s.jobOrder = append(s.jobOrder, fp)
	st := js.status
	s.wg.Add(1)
	s.mu.Unlock()

	s.log.Info("job submitted", "fp", fp, "app", job.App, "proto", job.Proto, "request_id", reqID)
	go func() {
		defer s.wg.Done()
		defer close(js.done)
		s.mu.Lock()
		js.status.State = StateRunning
		s.mu.Unlock()
		res := s.rn.Do(ctx, job)
		s.mu.Lock()
		switch {
		case res.Canceled:
			js.status.State = StateCanceled
			js.status.Error = res.Failure
		case res.Failed():
			js.status.State = StateFailed
			js.status.Error = res.Failure
		default:
			js.status.State = StateDone
			js.status.Cached = res.Cached
			js.status.Result = res
		}
		state := js.status.State
		s.mu.Unlock()
		s.log.Info("job finished",
			"fp", fp, "state", string(state), "cached", res.Cached,
			"request_id", reqID)
	}()
	return st, true, nil
}

// Job returns a job's current status.
func (s *Service) Job(fp string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[fp]
	if !ok {
		// A job never submitted through this daemon may still live in the
		// persistent store (written by paperbench or a prior daemon);
		// serve it as done/cached.
		if s.st != nil {
			if res, ok := s.st.Get(fp); ok {
				return JobStatus{
					FP: fp, State: StateDone, App: res.App,
					Scale: res.Scale, Proto: res.Proto,
					Cached: true, Result: res,
				}, nil
			}
		}
		return JobStatus{}, ErrNotFound
	}
	return js.status, nil
}

// Jobs lists all directly submitted jobs in first-submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.jobOrder))
	for i, fp := range s.jobOrder {
		out[i] = s.jobs[fp].status
	}
	return out
}

// CancelJob cancels a directly submitted job.
func (s *Service) CancelJob(fp string) error {
	s.mu.Lock()
	js, ok := s.jobs[fp]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	js.cancel()
	return nil
}

// JobDone returns a channel closed when the job reaches a terminal state.
func (s *Service) JobDone(fp string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[fp]
	if !ok {
		return nil, ErrNotFound
	}
	return js.done, nil
}

// jobFor returns the runner job of a known fingerprint (for trace
// re-execution).
func (s *Service) jobFor(fp string) (runner.Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if js, ok := s.jobs[fp]; ok {
		return js.job, nil
	}
	// A sweep cell: reconstruct the job from any sweep containing it.
	for _, id := range s.order {
		sw := s.sweeps[id]
		if !sw.fps[fp] {
			continue
		}
		jobs, err := sw.status.Spec.Jobs()
		if err != nil {
			continue
		}
		for _, j := range jobs {
			if j.Fingerprint() == fp {
				return j, nil
			}
		}
	}
	return runner.Job{}, ErrNotFound
}

// Stats snapshots the daemon's counters.
func (s *Service) Stats() StatsResponse {
	resp := StatsResponse{
		Runner: s.rn.Meta(),
		Bus:    s.b.Stats(),
	}
	if s.st != nil {
		st := s.st.Stats()
		resp.Store = &st
	}
	s.mu.Lock()
	resp.Sweeps = len(s.sweeps)
	resp.Jobs = len(s.jobs)
	s.mu.Unlock()
	return resp
}

// Compact runs a store compaction pass (an error without persistence).
func (s *Service) Compact() (store.Stats, error) {
	if s.st == nil {
		return store.Stats{}, errors.New("api: no persistent store configured")
	}
	return s.st.Compact()
}

// Drain stops accepting new submissions and waits for in-flight sweeps
// and jobs to finish. If ctx expires first, everything still running is
// canceled (cooperatively, on the simulated clock) and Drain waits for
// the abandoned work to unwind before returning ctx's error.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if !alreadyDraining {
		// From this instant /readyz answers 503 while /healthz stays 200:
		// load balancers stop routing before the listener goes away.
		s.log.Info("drain started")
	}

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel()
		<-finished
	}
	return err
}

// Close drains (bounded by ctx) and then shuts the event bus down,
// releasing every SSE subscriber. The store is the caller's to close —
// the service does not own its lifetime.
func (s *Service) Close(ctx context.Context) error {
	err := s.Drain(ctx)
	s.cancel()
	s.b.Close()
	return err
}
