package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
)

var _ runner.ResultStore = (*Store)(nil)

func fakeResult(fp string, cycles uint64) *runner.Result {
	return &runner.Result{
		Fingerprint: fp,
		App:         "gauss",
		Scale:       "tiny",
		Proto:       "lrc",
		ExecCycles:  cycles,
		Completed:   true,
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := fakeResult("fp-1", 1234)
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get("fp-1")
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Segments != 1 || st.DroppedLines != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRefusesFailedResults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := &runner.Result{Fingerprint: "abc", Failure: "panic: boom"}
	if err := s.Put(bad); err == nil {
		t.Fatal("failed result was stored")
	}
	if _, ok := s.Get("abc"); ok {
		t.Fatal("failed result retrievable")
	}
}

func TestLatestPutWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fakeResult("fp-1", 1))
	s.Put(fakeResult("fp-1", 2))
	if got, _ := s.Get("fp-1"); got.ExecCycles != 2 {
		t.Fatalf("got cycles %d, want 2", got.ExecCycles)
	}
	st := s.Stats()
	if st.Entries != 1 || st.LiveBytes >= st.TotalBytes {
		t.Fatalf("superseded line not accounted dead: %+v", st)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Get("fp-1"); got == nil || got.ExecCycles != 2 {
		t.Fatal("newest-wins lost across reopen")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(fakeResult(fmt.Sprintf("fp-%02d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("no rotation at tiny threshold: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if got, ok := s.Get(fmt.Sprintf("fp-%02d", i)); !ok || got.ExecCycles != uint64(i) {
			t.Fatalf("entry %d unreadable after rotation", i)
		}
	}
	s.Close()
	s2, err := Open(dir, WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("reopened entries = %d, want 20", s2.Len())
	}
}

// TestGarbageRecoveryAndCompaction is the corrupt-line discipline end to
// end: a store damaged four ways — binary garbage, wrong-shape JSON, a
// fingerprint-less record, and a torn tail — keeps serving every intact
// entry, reports exactly how many lines it dropped, and compaction
// round-trips the survivors into a single clean segment.
func TestGarbageRecoveryAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*runner.Result{}
	for i := 0; i < 8; i++ {
		fp := fmt.Sprintf("fp-%02d", i)
		want[fp] = fakeResult(fp, uint64(100+i))
		if err := s.Put(want[fp]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Inject garbage into the newest segment: three corrupt complete
	// lines plus a torn tail.
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, segName(ids[len(ids)-1]))
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\x00\x01 not json at all\n")
	f.WriteString("{\"weird\":true}\n")     // parses but has no fingerprint
	f.WriteString("[1,2,3]\n")              // wrong JSON shape
	f.WriteString("{\"fp\":\"torn-entry\"") // torn tail, no newline
	f.Close()

	s2, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Recovered(); got != 4 {
		t.Fatalf("dropped lines = %d, want 4", got)
	}
	if st := s2.Stats(); st.DroppedLines != 4 || st.Entries != 8 {
		t.Fatalf("stats after damage: %+v", st)
	}
	for fp, w := range want {
		got, ok := s2.Get(fp)
		if !ok || !reflect.DeepEqual(got, w) {
			t.Fatalf("entry %s not served after recovery", fp)
		}
	}
	// The sealed torn tail must not fuse with a fresh append.
	extra := fakeResult("fp-extra", 999)
	if err := s2.Put(extra); err != nil {
		t.Fatal(err)
	}

	// Pre-compaction snapshot: the dead-byte accounting a background
	// compaction trigger would key on, plus the per-handle traffic
	// counters (8 hits so far on this handle, 1 append, no misses).
	pre := s2.Stats()
	if pre.DeadBytes() <= 0 || pre.DeadRatio() <= 0 || pre.DeadRatio() >= 1 {
		t.Fatalf("damaged store shows no dead bytes: %+v", pre)
	}
	if pre.Appends != 1 || pre.Lookups != 8 || pre.Misses != 0 {
		t.Fatalf("pre-compaction traffic counters: %+v", pre)
	}

	st, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 1 || st.Entries != 9 || st.LiveBytes != st.TotalBytes || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	if st.DeadBytes() != 0 || st.DeadRatio() != 0 {
		t.Fatalf("compaction left dead bytes: %+v", st)
	}
	for fp, w := range want {
		got, ok := s2.Get(fp)
		if !ok || !reflect.DeepEqual(got, w) {
			t.Fatalf("entry %s lost by compaction", fp)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen once more: the compacted store is clean (nothing dropped)
	// and byte-stable.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Recovered(); got != 0 {
		t.Fatalf("compacted store dropped %d lines on reload", got)
	}
	if s3.Len() != 9 {
		t.Fatalf("compacted entries = %d, want 9", s3.Len())
	}
	got, _ := s3.Get("fp-extra")
	if !reflect.DeepEqual(got, extra) {
		t.Fatal("post-seal append lost")
	}
}

// TestServesRunnerResultsByteIdentically drives the store through the
// runner exactly as the daemon does and requires a warm reopen to serve
// byte-identical results with zero simulations.
func TestServesRunnerResultsByteIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cfg := config.Default(4)
	cfg.CacheSize = 2 << 10
	cfg.Seed = 1
	jobs := []runner.Job{
		{App: "gauss", Scale: apps.Tiny, Proto: "sc", Cfg: cfg},
		{App: "gauss", Scale: apps.Tiny, Proto: "lrc", Cfg: cfg},
		{App: "fft", Scale: apps.Tiny, Proto: "erc", Cfg: cfg},
	}

	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := runner.New(4, cold)
	first := r1.DoAll(context.Background(), jobs)
	if m := r1.Meta(); m.Simulated != 3 || m.CacheHits != 0 {
		t.Fatalf("cold meta: %+v", m)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	r2 := runner.New(4, warm)
	second := r2.DoAll(context.Background(), jobs)
	if m := r2.Meta(); m.Simulated != 0 || m.CacheHits != 3 {
		t.Fatalf("warm meta: %+v", m)
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Fatalf("job %d not marked cached", i)
		}
		a, _ := json.Marshal(first[i])
		b, _ := json.Marshal(second[i])
		if string(a) != string(b) {
			t.Fatalf("job %d: stored result differs:\n%s\n%s", i, a, b)
		}
		if first[i].Fingerprint != jobs[i].Fingerprint() {
			t.Fatalf("job %d: fingerprint drifted", i)
		}
	}
}

func TestOpenIgnoresAbandonedCompactionTemp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 || s.Recovered() != 0 {
		t.Fatalf("temp file leaked into the store: %+v", s.Stats())
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatal("abandoned temp file not removed")
	}
	names, _ := os.ReadDir(dir)
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", n.Name())
		}
	}
}

func TestSweepRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sweeps(); len(got) != 0 {
		t.Fatalf("fresh store has sweeps: %v", got)
	}
	specs := []json.RawMessage{
		json.RawMessage(`{"apps":["gauss"],"scale":"tiny"}`),
		json.RawMessage(`{"targets":["table2"],"procs":8}`),
	}
	if err := s.SaveSweeps(specs); err != nil {
		t.Fatal(err)
	}
	// A save replaces, not appends: drop the second entry and re-save.
	if err := s.SaveSweeps(specs[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Sweeps()
	if len(got) != 1 || !reflect.DeepEqual(got[0], specs[0]) {
		t.Fatalf("reloaded registry %s, want %s", got, specs[:1])
	}
	names, _ := os.ReadDir(dir)
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", n.Name())
		}
	}
}

func TestSweepRegistryCorruptSidecarDropped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, sweepsName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Sweeps(); got != nil {
		t.Fatalf("corrupt sidecar yielded sweeps: %v", got)
	}
	if s.Recovered() == 0 {
		t.Fatal("corrupt sidecar not counted as recovered garbage")
	}
}
