package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The sweep registry sidecar: the daemon's list of submitted sweep
// specs, serialized so a restarted daemon can resurrect (and re-run,
// from the result store) every sweep it was ever asked for. The store
// treats the specs as opaque JSON documents — their schema belongs to
// the API layer.
const (
	sweepsName = "sweeps.json"
	sweepsTmp  = "sweeps.json.tmp"
)

// SaveSweeps atomically replaces the sweep registry sidecar with the
// given spec documents, preserving order. The write is tmp + fsync +
// rename, so a crash leaves either the old registry or the new one,
// never a torn file.
func (s *Store) SaveSweeps(specs []json.RawMessage) error {
	if specs == nil {
		specs = []json.RawMessage{}
	}
	data, err := json.Marshal(specs)
	if err != nil {
		return fmt.Errorf("store: encoding sweep registry: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	tmp := filepath.Join(s.dir, sweepsTmp)
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", sweepsTmp, err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing sweep registry: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing sweep registry: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing sweep registry: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, sweepsName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing sweep registry: %w", err)
	}
	return nil
}

// Sweeps loads the saved sweep registry. A missing sidecar is an empty
// registry; a corrupt one is dropped (counted like a corrupt result
// line) rather than fatal, matching the store's recovery discipline.
func (s *Store) Sweeps() []json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(s.dir, sweepsName))
	if err != nil {
		return nil
	}
	var specs []json.RawMessage
	if err := json.Unmarshal(data, &specs); err != nil {
		s.dropped++
		return nil
	}
	return specs
}
