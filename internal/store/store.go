// Package store is the daemon's persistent result database: an indexed,
// append-only segment store keyed by job fingerprint, replacing the flat
// JSONL cache file for long-running service use.
//
// Layout: a directory of numbered segment files (000001.seg, ...), each
// a sequence of JSON lines in the same encoding as the runner's flat
// cache — one runner.Result per line. Writes append to the newest
// segment and roll to a fresh one past a size threshold, so no file
// grows without bound. An in-memory index maps fingerprint → (segment,
// offset, length); reads are a single pread, and the store never holds
// result payloads in memory.
//
// Recovery follows the runner cache's corrupt-line discipline: a line
// that fails to parse — a torn write, a manual edit, a truncated tail —
// is skipped and counted, never fatal. A torn tail on the newest segment
// is additionally sealed with a newline so later appends cannot fuse
// with the wreckage. When the same fingerprint appears more than once
// (a re-put, or a crash between append and compaction), the latest line
// wins.
//
// Compaction rewrites every live entry into one fresh segment and
// deletes the rest. It is crash-safe by ordering: the compacted segment
// is built in a temp file, fsynced, and renamed into place as the
// *newest* segment before any old segment is removed — a crash at any
// point leaves either the old segments, or both (where newest-wins makes
// the duplicates harmless).
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"lazyrc/internal/runner"
)

// DefaultSegmentBytes is the roll-over threshold for the active segment.
const DefaultSegmentBytes = 8 << 20

// tmpName is the in-progress compaction file, ignored (and removed) on
// open.
const tmpName = "compact.tmp"

// loc addresses one result line inside a segment.
type loc struct {
	seg int
	off int64
	n   int
}

// Store is the segment store. Safe for concurrent use within one
// process; the on-disk format assumes a single writing process (the
// daemon), unlike the flat JSONL cache which tolerates concurrent
// appenders.
type Store struct {
	dir    string
	maxSeg int64

	mu          sync.Mutex
	idx         map[string]loc
	segs        map[int]*os.File
	activeID    int
	activeSize  int64
	liveBytes   int64
	totalBytes  int64
	dropped     int
	compactions int
	appends     uint64
	lookups     uint64
	misses      uint64
	writeErr    error
	closed      bool
}

// Option configures Open.
type Option func(*Store)

// WithSegmentBytes sets the active-segment roll-over threshold.
func WithSegmentBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.maxSeg = n
		}
	}
}

// Open loads (or creates) the store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:    dir,
		maxSeg: DefaultSegmentBytes,
		idx:    make(map[string]loc),
		segs:   make(map[int]*os.File),
	}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	os.Remove(filepath.Join(dir, tmpName)) // abandoned compaction, if any

	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		ids = []int{1}
	}
	for i, id := range ids {
		last := i == len(ids)-1
		if err := s.openSegment(id, last); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	s.activeID = ids[len(ids)-1]
	return s, nil
}

// segmentIDs lists the numbered segments in dir, ascending.
func segmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "%d.seg", &id); n == 1 && e.Name() == segName(id) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

func segName(id int) string { return fmt.Sprintf("%06d.seg", id) }

func (s *Store) segPath(id int) string { return filepath.Join(s.dir, segName(id)) }

// openSegment opens one segment (read-write for the newest, read-only
// otherwise), scans it into the index, and seals a torn tail on the
// newest.
func (s *Store) openSegment(id int, active bool) error {
	flags := os.O_RDONLY
	if active {
		flags = os.O_RDWR | os.O_CREATE
	}
	f, err := os.OpenFile(s.segPath(id), flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", segName(id), err)
	}
	size, torn, err := s.scanSegment(f, id)
	if err != nil {
		f.Close()
		return err
	}
	if torn {
		if active {
			// Seal the torn tail so the next append starts a fresh
			// line instead of fusing with the wreckage.
			if _, err := f.WriteAt([]byte("\n"), size); err != nil {
				f.Close()
				return fmt.Errorf("store: sealing torn tail of %s: %w", segName(id), err)
			}
			size++
		}
		s.dropped++
	}
	s.segs[id] = f
	s.totalBytes += size
	if active {
		s.activeSize = size
	}
	return nil
}

// scanSegment indexes every parseable line of a segment, returning the
// byte size of complete lines and whether a torn (newline-less) tail
// follows them.
func (s *Store) scanSegment(f *os.File, id int) (size int64, torn bool, err error) {
	data, err := os.ReadFile(f.Name())
	if err != nil {
		return 0, false, fmt.Errorf("store: scanning %s: %w", f.Name(), err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		nl := int64(-1)
		for i := off; i < int64(len(data)); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return off, true, nil // torn tail: bytes past off are incomplete
		}
		line := data[off:nl]
		if len(line) > 0 {
			var r runner.Result
			if uerr := json.Unmarshal(line, &r); uerr != nil || r.Fingerprint == "" {
				s.dropped++
			} else {
				s.index(r.Fingerprint, loc{seg: id, off: off, n: len(line)})
			}
		}
		off = nl + 1
	}
	return off, false, nil
}

// index records a fingerprint's latest location, maintaining the
// live-byte account.
func (s *Store) index(fp string, l loc) {
	if old, ok := s.idx[fp]; ok {
		s.liveBytes -= int64(old.n)
	}
	s.idx[fp] = l
	s.liveBytes += int64(l.n)
}

// Get returns the stored result for a fingerprint. Each call unmarshals
// a private copy from disk, so callers may annotate it freely.
func (s *Store) Get(fp string) (*runner.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	line, ok := s.readLocked(fp)
	if !ok {
		s.misses++
		return nil, false
	}
	var r runner.Result
	if err := json.Unmarshal(line, &r); err != nil {
		s.misses++
		return nil, false
	}
	return &r, true
}

// readLocked fetches the raw line for a fingerprint. Caller holds mu.
func (s *Store) readLocked(fp string) ([]byte, bool) {
	l, ok := s.idx[fp]
	if !ok {
		return nil, false
	}
	f, ok := s.segs[l.seg]
	if !ok {
		return nil, false
	}
	buf := make([]byte, l.n)
	if _, err := f.ReadAt(buf, l.off); err != nil {
		return nil, false
	}
	return buf, true
}

// Put appends a result, rolling to a new segment past the size
// threshold. Failed (crashed) results are refused — caching them would
// make the crash permanent instead of retryable.
func (s *Store) Put(r *runner.Result) error {
	if r.Failed() {
		return fmt.Errorf("store: refusing to cache failed job %s", r.Fingerprint)
	}
	if r.Fingerprint == "" {
		return fmt.Errorf("store: result has no fingerprint")
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: encoding result: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.activeSize > 0 && s.activeSize+int64(len(line))+1 > s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	f := s.segs[s.activeID]
	off := s.activeSize
	if _, err := f.WriteAt(append(line, '\n'), off); err != nil {
		s.writeErr = err
		return fmt.Errorf("store: appending to %s: %w", segName(s.activeID), err)
	}
	s.activeSize += int64(len(line)) + 1
	s.totalBytes += int64(len(line)) + 1
	s.appends++
	s.index(r.Fingerprint, loc{seg: s.activeID, off: off, n: len(line)})
	return nil
}

// rotateLocked opens the next numbered segment as the active one.
func (s *Store) rotateLocked() error {
	id := s.activeID + 1
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotating to %s: %w", segName(id), err)
	}
	s.segs[id] = f
	s.activeID = id
	s.activeSize = 0
	return nil
}

// Compact rewrites every live entry into one fresh segment and removes
// the old ones, reclaiming dead bytes (superseded duplicates, skipped
// garbage). Returns the post-compaction stats.
func (s *Store) Compact() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Stats{}, fmt.Errorf("store: closed")
	}
	tmpPath := filepath.Join(s.dir, tmpName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return Stats{}, fmt.Errorf("store: creating %s: %w", tmpName, err)
	}
	newID := s.activeID + 1
	newIdx := make(map[string]loc, len(s.idx))
	fps := make([]string, 0, len(s.idx))
	for fp := range s.idx {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	var off int64
	for _, fp := range fps {
		line, ok := s.readLocked(fp)
		if !ok {
			continue // unreadable entry: drop it from the compacted store
		}
		if _, err := tmp.WriteAt(append(line, '\n'), off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return Stats{}, fmt.Errorf("store: writing compacted segment: %w", err)
		}
		newIdx[fp] = loc{seg: newID, off: off, n: len(line)}
		off += int64(len(line)) + 1
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return Stats{}, fmt.Errorf("store: syncing compacted segment: %w", err)
	}
	if err := os.Rename(tmpPath, s.segPath(newID)); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return Stats{}, fmt.Errorf("store: installing compacted segment: %w", err)
	}
	// The compacted segment is durably in place; everything older is now
	// redundant (newest-wins would shadow it anyway).
	oldIDs := make([]int, 0, len(s.segs))
	for id := range s.segs {
		oldIDs = append(oldIDs, id)
	}
	for _, id := range oldIDs {
		s.segs[id].Close()
		delete(s.segs, id)
		os.Remove(s.segPath(id))
	}
	s.segs[newID] = tmp
	s.idx = newIdx
	s.activeID = newID
	s.activeSize = off
	s.totalBytes = off
	s.liveBytes = off
	s.compactions++
	return s.statsLocked(), nil
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Recovered reports how many corrupt lines were dropped at load,
// satisfying runner.ResultStore (the runner surfaces it as
// Meta.CacheRecovered).
func (s *Store) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Stats is a snapshot of the store's shape and health.
type Stats struct {
	Dir string `json:"dir"`
	// Segments is the number of on-disk segment files.
	Segments int `json:"segments"`
	// Entries is the number of live fingerprints.
	Entries int `json:"entries"`
	// LiveBytes is the payload of the latest line per fingerprint;
	// TotalBytes is everything on disk. The difference is what a
	// compaction would reclaim (superseded lines, skipped garbage).
	LiveBytes  int64 `json:"live_bytes"`
	TotalBytes int64 `json:"total_bytes"`
	// DroppedLines counts corrupt lines skipped while loading — the
	// recovery counter the flat cache kept privately, surfaced.
	DroppedLines int `json:"dropped_lines"`
	// Compactions counts Compact calls on this handle.
	Compactions int `json:"compactions"`
	// Appends counts successful Put calls on this handle; Lookups and
	// Misses count Get calls and the subset that found nothing. All
	// three are per-handle (in-memory), like Compactions.
	Appends uint64 `json:"appends"`
	Lookups uint64 `json:"lookups"`
	Misses  uint64 `json:"misses"`
}

// DeadBytes is the compaction-trigger input: bytes a compaction pass
// would reclaim (superseded duplicates, skipped garbage).
func (st Stats) DeadBytes() int64 { return st.TotalBytes - st.LiveBytes }

// DeadRatio is DeadBytes as a fraction of everything on disk (0 when
// the store is empty) — the signal an age/size GC policy keys on.
func (st Stats) DeadRatio() float64 {
	if st.TotalBytes == 0 {
		return 0
	}
	return float64(st.DeadBytes()) / float64(st.TotalBytes)
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() Stats {
	return Stats{
		Dir:          s.dir,
		Segments:     len(s.segs),
		Entries:      len(s.idx),
		LiveBytes:    s.liveBytes,
		TotalBytes:   s.totalBytes,
		DroppedLines: s.dropped,
		Compactions:  s.compactions,
		Appends:      s.appends,
		Lookups:      s.lookups,
		Misses:       s.misses,
	}
}

// Close releases every segment handle, reporting any earlier write
// error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.closeAll()
	if s.writeErr != nil {
		return s.writeErr
	}
	return err
}

func (s *Store) closeAll() error {
	var first error
	for id, f := range s.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.segs, id)
	}
	return first
}
