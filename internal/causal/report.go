package causal

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTable renders the attribution as a cause × stall-class table: for
// every protocol cause, the stalled cycles charged to it in each stats
// class, with shares of the total stall time. This is the
// transaction-granularity mirror of the paper's cycle-breakdown figures:
// instead of "X% of time was read stall" it answers "X% of stall time
// was spent queued behind the directory".
func (a *Attribution) WriteTable(w io.Writer) {
	total := a.Total()
	tw := tabwriter.NewWriter(w, 0, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "cause\tread\twrite\tsync\ttotal\tshare\t\n")
	for c := Cause(0); c < NumCauses; c++ {
		ct := a.CauseTotal(c)
		if ct == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(ct) / float64(total)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f%%\t\n",
			c, a.ByCause[StallRead][c], a.ByCause[StallWrite][c],
			a.ByCause[StallSync][c], ct, share)
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t\t\n",
		a.ClassTotal(StallRead), a.ClassTotal(StallWrite),
		a.ClassTotal(StallSync), total)
	tw.Flush()
}

// WriteTop renders the n longest stall episodes, one per line: begin
// cycle, stalled processor, duration and stall class, the park reason,
// the dominant block on the chain, and the attributed cause chain.
// This makes protocol pathologies findable from the terminal without
// opening the exported trace in Perfetto.
func (a *Attribution) WriteTop(w io.Writer, n int) {
	top := a.TopN(n)
	tw := tabwriter.NewWriter(w, 0, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "cycle\tproc\tcycles\tclass\twhy\tblock\tcause chain\n")
	for _, ep := range top {
		s := ep.Span
		fmt.Fprintf(tw, "%d\tP%d\t%d\t%s\t%s\t%s\t%s\n",
			s.Begin, s.Node, ep.Dur(), s.Class, s.Why,
			dominantBlock(ep), ep.Chain(4))
	}
	tw.Flush()
}

// dominantBlock returns the block of the episode's longest attributed
// segment that carries one ("-" when no covering span named a block).
func dominantBlock(ep *Episode) string {
	var best uint64
	var block uint64
	found := false
	for _, seg := range ep.Segments {
		if seg.Block != 0 && seg.Dur() > best {
			best, block, found = seg.Dur(), seg.Block, true
		}
	}
	if !found {
		return "-"
	}
	return fmt.Sprintf("%#x", block)
}
