// Package causal stitches the simulator's coherence and synchronization
// activity into causally-linked span trees: every coherence transaction
// (read/write miss → directory lookup → write-notice fan-out → acks →
// completion) and every synchronization episode becomes a tree of
// cycle-stamped spans keyed by a transaction ID that is threaded through
// mesh messages and engine event chains. On top of the span store sit a
// critical-path analyzer (critpath.go) that attributes every stalled CPU
// cycle to a protocol cause, and a Chrome trace-event / Perfetto exporter
// (perfetto.go) so a run can be opened in ui.perfetto.dev.
//
// Like the telemetry registry, tracing is strictly passive: it observes
// cycle stamps the timing model already computed and never schedules
// events or changes an Acquire, so a traced run is bit-identical to an
// untraced one. A nil *Tracer is a valid no-op receiver for every hook —
// the disabled path is a single nil check with zero allocations.
package causal

import (
	"fmt"
	"sort"

	"lazyrc/internal/perf"
)

// Kind classifies one span.
type Kind uint8

const (
	// KindTxn is a coherence-transaction root span at the requesting
	// node: opened at transaction creation (the miss), closed when the
	// transaction is globally performed.
	KindTxn Kind = iota
	// KindSync is a synchronization-episode root span: a lock acquire or
	// release, a barrier wait, a flag set/wait, or a fence.
	KindSync
	// KindStall is a CPU stall episode: the interval a processor context
	// spent parked, classified by the stats bucket it was charged to.
	KindStall
	// KindNet is one message's network flight from send to delivery,
	// including NIC port queueing at both ends.
	KindNet
	// KindDir is a home-side directory access at the protocol processor
	// (queueing recorded separately in Wait).
	KindDir
	// KindMem is a memory-module access at the home.
	KindMem
	// KindBus is the local bus streaming of a cache fill.
	KindBus
	// KindFanout is the home's write-notice or invalidation dispatch
	// occupancy (the per-sharer protocol-processor cost).
	KindFanout
	// KindNotice is remote protocol-processor work triggered by a peer: a
	// write notice, an eager invalidation, an owner forward, or
	// acquire-time invalidation processing.
	KindNotice
	// KindAck is home-side acknowledgement collection work (one
	// protocol-processor occupancy per arriving ack).
	KindAck
	// KindRetx is a reliable-transport retransmission wait: the interval
	// from a (lost) send attempt to the timeout that resent it. Wait
	// carries the attempt number (backoff depth).
	KindRetx

	numKinds
)

var kindNames = [...]string{
	"txn", "sync", "stall", "net", "dir", "mem", "bus", "fanout", "notice", "ack", "retx",
}

// String returns the span-kind mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// StallClass mirrors the stats cycle-breakdown bucket a stall episode was
// charged to.
type StallClass uint8

const (
	// StallRead is a read-miss stall (stats.Proc.ReadStall).
	StallRead StallClass = iota
	// StallWrite is a write-path stall (stats.Proc.WriteStall).
	StallWrite
	// StallSync is a synchronization stall (stats.Proc.SyncStall).
	StallSync

	// NumStallClasses is the number of stall classes.
	NumStallClasses
)

// String returns the class name as used in the stats breakdown.
func (c StallClass) String() string {
	switch c {
	case StallRead:
		return "read"
	case StallWrite:
		return "write"
	case StallSync:
		return "sync"
	}
	return fmt.Sprintf("StallClass(%d)", uint8(c))
}

// Span is one cycle-stamped interval of protocol work. Root spans
// (KindTxn, KindSync) define a transaction ID; every other span carries
// the TID of the transaction whose causal chain it belongs to.
type Span struct {
	// ID is the span's unique id (1-based; 0 is the nil span).
	ID uint64
	// TID is the transaction this span belongs to (the root span's own
	// TID for roots; 0 when work ran outside any transaction context).
	TID uint64
	// Cause, on stall spans, is the TID of the transaction whose
	// completion woke the processor — the causal edge the critical-path
	// analyzer walks backward through.
	Cause uint64
	// Kind classifies the span.
	Kind Kind
	// Class, on stall spans, is the stats bucket the cycles were charged
	// to.
	Class StallClass
	// Node is the node the span's work happened at.
	Node int32
	// Peer is the other endpoint where one exists: the destination of a
	// net span, the notice target of a fanout. -1 when not applicable.
	Peer int32
	// MsgKind is the protocol message kind of a net span (-1 otherwise).
	MsgKind int32
	// Block is the coherence block concerned (0 when not applicable).
	Block uint64
	// Obj is the synchronization object id (sync spans).
	Obj uint64
	// Begin and End are the span's cycle stamps; End >= Begin always.
	Begin, End uint64
	// Wait is the pre-service queueing portion at the span's start: PP or
	// memory occupancy wait for service spans, sender-side NIC port
	// queueing for net spans.
	Wait uint64
	// Wait2 is the post-service queueing portion at the span's end:
	// receiver-side NIC port queueing for net spans (0 otherwise).
	Wait2 uint64
	// Why labels stall spans with the park reason and root spans with the
	// operation ("read", "write", "lock-acquire", ...).
	Why string
}

// Dur returns the span's length in cycles.
func (s *Span) Dur() uint64 { return s.End - s.Begin }

// Tracer is the span store plus the causal-context machinery. It
// implements sim.TaskTracer (Capture/Restore), so attaching it to the
// engine threads the current transaction ID through every scheduled
// event chain — a home-side continuation, and the reply it sends, inherit
// the TID of the request that triggered them without any hand-threading.
//
// All methods are safe on a nil receiver (no-ops), so instrumentation
// sites cost one nil check when tracing is disabled.
type Tracer struct {
	cur     uint64 // current causal context (transaction id)
	nextTID uint64
	nextSID uint64

	retain bool
	limit  int
	spans  []Span
	open   map[uint64]int // open span id -> index in spans (retain mode)

	// Digest-only mode keeps open spans aside instead of retaining the
	// full store.
	pending map[uint64]*Span

	hash    uint64 // running FNV-1a over closed spans, in close order
	closed  uint64 // spans closed (folded into the digest)
	dropped uint64 // spans not recorded because the retention cap was hit

	// rootIDs maps an open transaction's TID to its root span id so
	// EndTxn/EndSync can close by TID. O(open transactions).
	rootIDs map[uint64]uint64

	// prof, when non-nil, charges span bookkeeping wall time to the
	// causal perf phase. Capture/Restore are NOT bracketed: they run on
	// every event and a timestamp read there would cost more than the
	// work measured.
	prof *perf.Profiler
}

// DefaultLimit caps retained spans; beyond it new spans are counted as
// dropped (the digest still folds them, so determinism survives
// truncation).
const DefaultLimit = 8 << 20

// New returns a tracer that retains the full span store (for export and
// critical-path analysis), capped at limit spans (<=0: DefaultLimit).
func New(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Tracer{
		retain:  true,
		limit:   limit,
		open:    make(map[uint64]int),
		pending: make(map[uint64]*Span),
		hash:    fnvOffset,
	}
}

// NewDigest returns a tracer in digest-only mode: spans are folded into a
// running fingerprint at close time and discarded, so memory stays
// bounded by the number of concurrently open spans. Used by the
// experiment runner, which wants the determinism fingerprint but not the
// store.
func NewDigest() *Tracer {
	return &Tracer{
		pending: make(map[uint64]*Span),
		hash:    fnvOffset,
	}
}

// Enabled reports whether the tracer is non-nil (for callers holding an
// interface or wanting a readable guard).
func (t *Tracer) Enabled() bool { return t != nil }

// SetProfiler attaches (or, with nil, detaches) a wall-clock phase
// profiler charging span bookkeeping to the causal phase.
func (t *Tracer) SetProfiler(p *perf.Profiler) {
	if t == nil {
		return
	}
	t.prof = p
}

// ---- Causal context (sim.TaskTracer) --------------------------------------

// Capture returns the current causal context for an event being
// scheduled.
func (t *Tracer) Capture() uint64 {
	if t == nil {
		return 0
	}
	return t.cur
}

// Restore swaps ctx in as the current causal context and returns the
// previous one. The engine brackets every event execution with a
// Restore(captured) / Restore(previous) pair.
func (t *Tracer) Restore(ctx uint64) uint64 {
	if t == nil {
		return 0
	}
	prev := t.cur
	t.cur = ctx
	return prev
}

// Current returns the TID of the transaction context in scope (0 when
// none) — the value the mesh stamps onto outgoing messages.
func (t *Tracer) Current() uint64 {
	if t == nil {
		return 0
	}
	return t.cur
}

// ---- Span recording --------------------------------------------------------

// beginOpen allocates an open span and returns its id. When the
// retention cap is hit the span spills to the pending map: it is not
// retained for export, but still closes into the digest so truncation
// never changes the determinism fingerprint.
func (t *Tracer) beginOpen(s Span) uint64 {
	prev := t.prof.Enter(perf.PhaseCausal)
	defer t.prof.Exit(prev)
	t.nextSID++
	s.ID = t.nextSID
	if t.retain && len(t.spans) < t.limit {
		t.spans = append(t.spans, s)
		t.open[s.ID] = len(t.spans) - 1
		return s.ID
	}
	if t.retain {
		t.dropped++
	}
	cp := s
	t.pending[s.ID] = &cp
	return s.ID
}

// endOpen closes an open span at cycle end and folds it into the digest.
func (t *Tracer) endOpen(id, end uint64) *Span {
	if id == 0 {
		return nil
	}
	prev := t.prof.Enter(perf.PhaseCausal)
	defer t.prof.Exit(prev)
	if idx, ok := t.open[id]; ok {
		delete(t.open, id)
		sp := &t.spans[idx]
		sp.End = end
		t.fold(sp)
		return sp
	}
	sp, ok := t.pending[id]
	if !ok {
		return nil
	}
	delete(t.pending, id)
	sp.End = end
	t.fold(sp)
	return sp
}

// record stores one already-complete span (begin and end both known at
// record time, e.g. a network flight whose delivery the mesh resolved
// eagerly).
func (t *Tracer) record(s Span) {
	prev := t.prof.Enter(perf.PhaseCausal)
	defer t.prof.Exit(prev)
	t.nextSID++
	s.ID = t.nextSID
	t.fold(&s)
	if t.retain {
		if len(t.spans) >= t.limit {
			t.dropped++
			return
		}
		t.spans = append(t.spans, s)
	}
}

// BeginTxn opens a coherence-transaction root span at node for block and
// makes the new TID the current causal context (the request message sent
// next, and the whole event chain it triggers, inherit it). It returns
// the TID.
func (t *Tracer) BeginTxn(node int, block uint64, now uint64) uint64 {
	if t == nil {
		return 0
	}
	t.nextTID++
	tid := t.nextTID
	t.cur = tid
	sid := t.beginOpen(Span{
		TID: tid, Kind: KindTxn, Node: int32(node), Peer: -1, MsgKind: -1,
		Block: block, Begin: now, End: now, Why: "txn",
	})
	t.noteRoot(tid, sid)
	return tid
}

// EndTxn closes a transaction's root span.
func (t *Tracer) EndTxn(tid, now uint64) {
	if t == nil || tid == 0 {
		return
	}
	t.endOpen(t.rootSpan(tid), now)
}

// BeginSync opens a synchronization-episode root span (op names the
// operation: "lock-acquire", "lock-release", "barrier", "flag-set",
// "flag-wait", "fence") and makes its TID current.
func (t *Tracer) BeginSync(node int, obj uint64, op string, now uint64) uint64 {
	if t == nil {
		return 0
	}
	t.nextTID++
	tid := t.nextTID
	t.cur = tid
	sid := t.beginOpen(Span{
		TID: tid, Kind: KindSync, Node: int32(node), Peer: -1, MsgKind: -1,
		Obj: obj, Begin: now, End: now, Why: op,
	})
	t.noteRoot(tid, sid)
	return tid
}

// EndSync closes a synchronization episode's root span.
func (t *Tracer) EndSync(tid, now uint64) {
	if t == nil || tid == 0 {
		return
	}
	t.endOpen(t.rootSpan(tid), now)
}

func (t *Tracer) noteRoot(tid, sid uint64) {
	if t.rootIDs == nil {
		t.rootIDs = make(map[uint64]uint64)
	}
	t.rootIDs[tid] = sid
}

func (t *Tracer) rootSpan(tid uint64) uint64 {
	sid := t.rootIDs[tid]
	delete(t.rootIDs, tid)
	return sid
}

// BeginStall opens a CPU stall-episode span at node. tid is the
// transaction the processor is stalled on when known (0 otherwise); the
// waker's TID is captured at EndStall from the causal context the wake
// event carried. Returns the span id to pass to EndStall.
func (t *Tracer) BeginStall(node int, tid uint64, class StallClass, why string, now uint64) uint64 {
	if t == nil {
		return 0
	}
	return t.beginOpen(Span{
		TID: tid, Kind: KindStall, Class: class, Node: int32(node),
		Peer: -1, MsgKind: -1, Begin: now, End: now, Why: why,
	})
}

// EndStall closes a stall episode, recording the current causal context
// (the transaction whose completion event woke the processor) as the
// episode's cause. Zero-length episodes are discarded: no cycles were
// charged, so they carry no attribution weight.
func (t *Tracer) EndStall(sid, now uint64) {
	if t == nil || sid == 0 {
		return
	}
	if idx, ok := t.open[sid]; ok && t.spans[idx].Begin == now {
		// Drop the zero-length episode entirely: no cycles were charged.
		delete(t.open, sid)
		if last := len(t.spans) - 1; idx == last {
			t.spans = t.spans[:last]
		} else {
			t.spans[idx].ID = 0 // tombstone; skipped by readers
		}
		return
	}
	if sp, ok := t.pending[sid]; ok && sp.Begin == now {
		delete(t.pending, sid)
		return
	}
	if sp := t.endOpen(sid, now); sp != nil {
		sp.Cause = t.cur
	}
}

// Net records one message's network flight: src→dst, protocol message
// kind, begin (send) and end (delivery) cycles, and the NIC port
// queueing at the sending (outWait) and receiving (inWait) ends. tid is
// the causal context stamped on the message at send time.
func (t *Tracer) Net(tid uint64, src, dst, msgKind int, block uint64, begin, end, outWait, inWait uint64) {
	if t == nil {
		return
	}
	t.record(Span{
		TID: tid, Kind: KindNet, Node: int32(src), Peer: int32(dst),
		MsgKind: int32(msgKind), Block: block, Begin: begin, End: end,
		Wait: outWait, Wait2: inWait,
	})
}

// Retransmit records one reliable-transport retransmission wait: the
// message from src to dst was sent (or resent) at lastSend, presumed
// lost, and resent at now — the attempt-th retransmission. tid is the
// causal context stamped on the message, so the lost time lands on the
// transaction that was waiting for it and the critical-path analyzer can
// attribute loss-induced stalls (CauseRetx).
func (t *Tracer) Retransmit(tid uint64, src, dst, msgKind int, block uint64, lastSend, now uint64, attempt int) {
	if t == nil {
		return
	}
	t.record(Span{
		TID: tid, Kind: KindRetx, Node: int32(src), Peer: int32(dst),
		MsgKind: int32(msgKind), Block: block, Begin: lastSend, End: now,
		Wait: uint64(attempt), Why: "retx",
	})
}

// OpenStall describes one currently-open stall span — what a processor is
// parked on right now, for watchdog reports.
type OpenStall struct {
	Node  int
	TID   uint64
	Class StallClass
	Why   string
	Begin uint64
}

// OpenStalls returns the currently-open stall episodes, ordered by begin
// cycle then node (deterministic). Works in both retain and digest-only
// modes.
func (t *Tracer) OpenStalls() []OpenStall {
	if t == nil {
		return nil
	}
	var out []OpenStall
	add := func(s *Span) {
		if s.Kind == KindStall {
			out = append(out, OpenStall{
				Node: int(s.Node), TID: s.TID, Class: s.Class, Why: s.Why, Begin: s.Begin,
			})
		}
	}
	for _, idx := range t.open {
		add(&t.spans[idx])
	}
	for _, sp := range t.pending {
		add(sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Service records one home- or remote-side hardware service interval —
// directory access, memory access, bus fill, notice fan-out, notice or
// ack processing. reqAt is when the work was requested, start/end the
// actual occupancy window (start-reqAt is the queueing delay). The span
// is attributed to the current causal context.
func (t *Tracer) Service(kind Kind, node int, block uint64, reqAt, start, end uint64) {
	if t == nil {
		return
	}
	t.record(Span{
		TID: t.cur, Kind: kind, Node: int32(node), Peer: -1, MsgKind: -1,
		Block: block, Begin: reqAt, End: end, Wait: start - reqAt,
	})
}

// ServiceTarget is Service with an explicit peer node (notice fan-out
// target, forwarded-request owner).
func (t *Tracer) ServiceTarget(kind Kind, node, peer int, block uint64, reqAt, start, end uint64) {
	if t == nil {
		return
	}
	t.record(Span{
		TID: t.cur, Kind: kind, Node: int32(node), Peer: int32(peer), MsgKind: -1,
		Block: block, Begin: reqAt, End: end, Wait: start - reqAt,
	})
}

// ---- Store accessors -------------------------------------------------------

// Spans returns the retained span store in record order. Entries with
// ID == 0 are discarded zero-length stalls and must be skipped. Nil in
// digest-only mode.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Count returns the number of spans folded into the digest (recorded
// complete plus closed), the canonical span count of a run.
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.closed
}

// OpenCount returns the number of spans opened but not yet closed.
func (t *Tracer) OpenCount() int {
	if t == nil {
		return 0
	}
	if t.retain {
		return len(t.open)
	}
	return len(t.pending)
}

// Dropped returns the spans discarded because the retention cap was hit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// MaxTID returns the highest transaction id issued.
func (t *Tracer) MaxTID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextTID
}

// Digest returns the run's span-stream fingerprint: an FNV-1a fold of
// every span's content in close order plus the total count, rendered as
// "<count>-<hash>". The simulation is single-threaded and deterministic,
// so the digest is identical across repeated runs, worker counts, and
// machines — and is compared by the experiment regression gate.
func (t *Tracer) Digest() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%d-%016x", t.closed, t.hash)
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func (t *Tracer) fold(s *Span) {
	t.closed++
	h := t.hash
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(s.TID)
	mix(s.Cause)
	mix(uint64(s.Kind)<<16 | uint64(s.Class)<<8)
	mix(uint64(uint32(s.Node)))
	mix(uint64(uint32(s.Peer)))
	mix(uint64(uint32(s.MsgKind)))
	mix(s.Block)
	mix(s.Obj)
	mix(s.Begin)
	mix(s.End)
	mix(s.Wait)
	mix(s.Wait2)
	for _, c := range []byte(s.Why) {
		h ^= uint64(c)
		h *= fnvPrime
	}
	t.hash = h
}

// byTID returns retained spans grouped by TID (tombstones skipped),
// with each group in record order.
func (t *Tracer) byTID() map[uint64][]*Span {
	m := make(map[uint64][]*Span)
	for i := range t.spans {
		s := &t.spans[i]
		if s.ID == 0 {
			continue
		}
		m[s.TID] = append(m[s.TID], s)
	}
	return m
}

// Roots returns the retained root spans (transactions and sync
// episodes) sorted by begin cycle.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for i := range t.spans {
		s := &t.spans[i]
		if s.ID != 0 && (s.Kind == KindTxn || s.Kind == KindSync) {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Begin < out[j].Begin })
	return out
}
