package causal

import (
	"fmt"
	"sort"
	"strings"
)

// Cause is the protocol-level reason a stalled cycle is attributed to.
// The analyzer walks each stall episode backwards through the span DAG of
// the transaction it was stalled on and assigns every cycle of the
// episode to exactly one cause, so per-cause totals sum to the machine's
// stall-cycle total exactly.
type Cause uint8

const (
	// CauseBus: the local bus was streaming the fill into the cache.
	CauseBus Cause = iota
	// CauseMem: the home memory module was servicing the access.
	CauseMem
	// CauseDirService: the home protocol processor was actively working
	// on this transaction (directory lookup/update).
	CauseDirService
	// CauseFanout: the home protocol processor was dispatching write
	// notices or invalidations for this transaction.
	CauseFanout
	// CauseNoticeProc: a remote protocol processor was applying a write
	// notice / invalidation / forwarded request on this chain.
	CauseNoticeProc
	// CauseAck: the home was collecting acknowledgements.
	CauseAck
	// CauseDirQueue: the transaction sat in a protocol-processor or
	// memory queue behind other transactions (directory occupancy).
	CauseDirQueue
	// CauseNet: a message on the chain was in wire flight between nodes.
	CauseNet
	// CauseNetPort: a message on the chain was queued at a NIC port
	// (port contention).
	CauseNetPort
	// CauseRetx: a message on the chain was lost and the transport was
	// waiting out a retransmission timeout — the loss-induced stall time
	// the chaos harness wants attributed.
	CauseRetx
	// CauseWBDrain: the processor was waiting for its own write buffer to
	// drain (release semantics or a full coalescing buffer) with no
	// single covering transaction.
	CauseWBDrain
	// CauseSerialization: a synchronization stall not covered by protocol
	// work — waiting for another processor to release a lock, reach a
	// barrier, or set a flag.
	CauseSerialization
	// CauseOther: stalled cycles no recorded span covers.
	CauseOther

	// NumCauses is the number of attribution causes.
	NumCauses
)

var causeNames = [...]string{
	"bus", "mem", "dir-service", "fanout", "notice-proc", "ack",
	"dir-queue", "net", "net-port", "retx-wait", "wb-drain", "serialization", "other",
}

// String returns the cause mnemonic used in attribution tables.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// Segment is one attributed slice of a stall episode.
type Segment struct {
	Begin, End uint64
	Cause      Cause
	// Node is where the covering work happened (-1 for uncovered slices).
	Node int32
	// Block is the covering span's block (0 when none).
	Block uint64
}

// Dur returns the segment length in cycles.
func (s Segment) Dur() uint64 { return s.End - s.Begin }

// Episode is one analyzed stall with its cycle attribution.
type Episode struct {
	// Span is the stall span itself.
	Span *Span
	// Segments partition [Span.Begin, Span.End) in cycle order.
	Segments []Segment
}

// Dur returns the episode length in cycles.
func (e *Episode) Dur() uint64 { return e.Span.Dur() }

// Chain renders the episode's attributed cause chain, longest slices
// first, e.g. "dir-queue:412 net:220 mem:96".
func (e *Episode) Chain(max int) string {
	agg := make(map[Cause]uint64)
	for _, s := range e.Segments {
		agg[s.Cause] += s.Dur()
	}
	type cc struct {
		c Cause
		n uint64
	}
	var parts []cc
	for c, n := range agg {
		parts = append(parts, cc{c, n})
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].n != parts[j].n {
			return parts[i].n > parts[j].n
		}
		return parts[i].c < parts[j].c
	})
	if max > 0 && len(parts) > max {
		parts = parts[:max]
	}
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", p.c, p.n)
	}
	return b.String()
}

// Attribution is the whole-run critical-path breakdown.
type Attribution struct {
	// ByCause[class][cause] is the stalled cycles of that stats class
	// attributed to that cause.
	ByCause [NumStallClasses][NumCauses]uint64
	// Episodes lists every stall episode with its segment attribution,
	// in record order.
	Episodes []Episode
}

// Total returns all attributed cycles; by construction it equals the sum
// of every stall episode's length, which the instrumentation guarantees
// equals the stats stall-cycle aggregate.
func (a *Attribution) Total() uint64 {
	var n uint64
	for _, row := range a.ByCause {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// ClassTotal returns the attributed cycles of one stall class.
func (a *Attribution) ClassTotal(class StallClass) uint64 {
	var n uint64
	for _, v := range a.ByCause[class] {
		n += v
	}
	return n
}

// CauseTotal returns the attributed cycles of one cause across classes.
func (a *Attribution) CauseTotal(cause Cause) uint64 {
	var n uint64
	for class := StallClass(0); class < NumStallClasses; class++ {
		n += a.ByCause[class][cause]
	}
	return n
}

// TopN returns the n longest stall episodes, longest first (ties broken
// by begin cycle, then record order, for determinism).
func (a *Attribution) TopN(n int) []*Episode {
	idx := make([]int, len(a.Episodes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		ex, ey := &a.Episodes[idx[x]], &a.Episodes[idx[y]]
		if ex.Dur() != ey.Dur() {
			return ex.Dur() > ey.Dur()
		}
		return ex.Span.Begin < ey.Span.Begin
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]*Episode, n)
	for i := 0; i < n; i++ {
		out[i] = &a.Episodes[idx[i]]
	}
	return out
}

// candidate is a clipped covering interval competing for stall cycles.
type candidate struct {
	begin, end uint64
	cause      Cause
	prio       int // lower wins
	order      int // record order, tie-break
	node       int32
	block      uint64
}

// causePrio ranks causes when several spans cover the same stalled
// cycle: actual service work beats queueing beats wire time, so the
// attribution names the resource that was *doing* something (or that the
// transaction was queued behind) rather than double-counting overlap.
var causePrio = [NumCauses]int{
	CauseBus:        0,
	CauseMem:        1,
	CauseDirService: 2,
	CauseFanout:     3,
	CauseNoticeProc: 4,
	CauseAck:        5,
	CauseDirQueue:   6,
	CauseNet:        7,
	CauseNetPort:    8,
	// A retransmission wait is pure lost time: any real work or queueing
	// overlapping it should win the cycle, so it ranks below everything
	// that names an active resource.
	CauseRetx: 9,
	// Fallback causes never appear as candidates.
	CauseWBDrain:       90,
	CauseSerialization: 91,
	CauseOther:         92,
}

// spanCandidates converts one protocol-work span into attribution
// candidates, splitting queueing from service where the span records it.
func spanCandidates(s *Span, out []candidate, order int) []candidate {
	add := func(b, e uint64, c Cause) []candidate {
		if e <= b {
			return out
		}
		return append(out, candidate{
			begin: b, end: e, cause: c, prio: causePrio[c], order: order,
			node: s.Node, block: s.Block,
		})
	}
	switch s.Kind {
	case KindBus:
		out = add(s.Begin, s.End, CauseBus)
	case KindMem:
		out = add(s.Begin, s.Begin+s.Wait, CauseDirQueue)
		out = add(s.Begin+s.Wait, s.End, CauseMem)
	case KindDir:
		out = add(s.Begin, s.Begin+s.Wait, CauseDirQueue)
		out = add(s.Begin+s.Wait, s.End, CauseDirService)
	case KindFanout:
		out = add(s.Begin, s.Begin+s.Wait, CauseDirQueue)
		out = add(s.Begin+s.Wait, s.End, CauseFanout)
	case KindNotice:
		out = add(s.Begin, s.Begin+s.Wait, CauseDirQueue)
		out = add(s.Begin+s.Wait, s.End, CauseNoticeProc)
	case KindAck:
		out = add(s.Begin, s.Begin+s.Wait, CauseDirQueue)
		out = add(s.Begin+s.Wait, s.End, CauseAck)
	case KindNet:
		out = add(s.Begin, s.Begin+s.Wait, CauseNetPort)
		out = add(s.Begin+s.Wait, s.End-s.Wait2, CauseNet)
		out = add(s.End-s.Wait2, s.End, CauseNetPort)
	case KindRetx:
		out = add(s.Begin, s.End, CauseRetx)
	}
	return out
}

// fallbackCause picks the bucket for stalled cycles no span covers.
func fallbackCause(stall *Span) Cause {
	switch {
	case strings.Contains(stall.Why, "drain") || strings.Contains(stall.Why, "write buffer"):
		return CauseWBDrain
	case stall.Class == StallSync:
		return CauseSerialization
	}
	return CauseOther
}

// Analyze attributes every stalled cycle recorded by a retaining tracer.
// For each stall episode it collects the spans of the transaction the
// processor was stalled on (the episode's own TID and the causal TID the
// wake event carried), clips them to the stall window, and partitions the
// window into segments, each charged to the highest-priority covering
// cause; uncovered cycles fall back to wb-drain / serialization / other.
func Analyze(t *Tracer) *Attribution {
	a := &Attribution{}
	if t == nil || !t.retain {
		return a
	}
	byTID := t.byTID()
	for i := range t.spans {
		s := &t.spans[i]
		if s.ID == 0 || s.Kind != KindStall || s.End <= s.Begin {
			continue
		}
		ep := analyzeEpisode(s, byTID)
		for _, seg := range ep.Segments {
			a.ByCause[s.Class][seg.Cause] += seg.Dur()
		}
		a.Episodes = append(a.Episodes, ep)
	}
	return a
}

// analyzeEpisode partitions one stall window among its covering spans.
func analyzeEpisode(stall *Span, byTID map[uint64][]*Span) Episode {
	var cands []candidate
	order := 0
	collect := func(tid uint64) {
		if tid == 0 {
			return
		}
		for _, s := range byTID[tid] {
			if s.Kind == KindStall || s.Kind == KindTxn || s.Kind == KindSync {
				continue
			}
			if s.End <= stall.Begin || s.Begin >= stall.End {
				continue
			}
			cands = spanCandidates(s, cands, order)
			order++
		}
	}
	collect(stall.TID)
	if stall.Cause != stall.TID {
		collect(stall.Cause)
	}

	fb := fallbackCause(stall)
	ep := Episode{Span: stall}

	// Boundary sweep: clip candidates to the window, gather cut points,
	// and pick the best-priority covering candidate per elementary slice.
	cuts := map[uint64]struct{}{stall.Begin: {}, stall.End: {}}
	for i := range cands {
		c := &cands[i]
		if c.begin < stall.Begin {
			c.begin = stall.Begin
		}
		if c.end > stall.End {
			c.end = stall.End
		}
		if c.begin < c.end {
			cuts[c.begin] = struct{}{}
			cuts[c.end] = struct{}{}
		}
	}
	pts := make([]uint64, 0, len(cuts))
	for p := range cuts {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })

	push := func(seg Segment) {
		n := len(ep.Segments)
		if n > 0 {
			last := &ep.Segments[n-1]
			if last.End == seg.Begin && last.Cause == seg.Cause &&
				last.Node == seg.Node && last.Block == seg.Block {
				last.End = seg.End
				return
			}
		}
		ep.Segments = append(ep.Segments, seg)
	}
	for i := 0; i+1 < len(pts); i++ {
		lo, hi := pts[i], pts[i+1]
		best := -1
		for j := range cands {
			c := &cands[j]
			if c.begin <= lo && c.end >= hi {
				if best < 0 || c.prio < cands[best].prio ||
					(c.prio == cands[best].prio && c.order < cands[best].order) {
					best = j
				}
			}
		}
		if best >= 0 {
			c := &cands[best]
			push(Segment{Begin: lo, End: hi, Cause: c.cause, Node: c.node, Block: c.block})
		} else {
			push(Segment{Begin: lo, End: hi, Cause: fb, Node: -1})
		}
	}
	return ep
}
