package causal

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tid := tr.BeginTxn(0, 1, 10); tid != 0 {
		t.Fatalf("nil BeginTxn returned %d", tid)
	}
	tr.EndTxn(0, 20)
	if sid := tr.BeginStall(0, 0, StallRead, "x", 10); sid != 0 {
		t.Fatalf("nil BeginStall returned %d", sid)
	}
	tr.EndStall(0, 20)
	tr.Net(0, 0, 1, 0, 0, 0, 1, 0, 0)
	tr.Service(KindDir, 0, 0, 0, 0, 1)
	if tr.Spans() != nil || tr.Count() != 0 || tr.OpenCount() != 0 || tr.Digest() != "" {
		t.Fatal("nil tracer leaks state")
	}
}

func TestTxnLifecycleAndContext(t *testing.T) {
	tr := New(0)
	tid := tr.BeginTxn(3, 0x40, 100)
	if tid == 0 {
		t.Fatal("no TID issued")
	}
	if tr.Current() != tid {
		t.Fatalf("BeginTxn did not set the causal context: %d", tr.Current())
	}
	// Simulate an engine event boundary: capture at schedule, restore
	// around execution.
	ctx := tr.Capture()
	prev := tr.Restore(0)
	if tr.Current() != 0 || prev != tid {
		t.Fatal("Restore mishandled context")
	}
	tr.Restore(ctx)
	if tr.Current() != tid {
		t.Fatal("context not restored")
	}

	tr.Service(KindDir, 1, 0x40, 110, 112, 120)
	tr.EndTxn(tid, 200)
	if tr.OpenCount() != 0 {
		t.Fatalf("%d spans still open", tr.OpenCount())
	}
	var root, dir *Span
	for i := range tr.spans {
		s := &tr.spans[i]
		switch s.Kind {
		case KindTxn:
			root = s
		case KindDir:
			dir = s
		}
	}
	if root == nil || root.Begin != 100 || root.End != 200 || root.TID != tid {
		t.Fatalf("bad root span: %+v", root)
	}
	if dir == nil || dir.TID != tid || dir.Wait != 2 || dir.Begin != 110 || dir.End != 120 {
		t.Fatalf("bad dir span: %+v", dir)
	}
}

func TestZeroLengthStallDiscarded(t *testing.T) {
	tr := New(0)
	sid := tr.BeginStall(0, 1, StallRead, "read fill", 50)
	tr.EndStall(sid, 50) // zero length
	for _, s := range tr.Spans() {
		if s.ID != 0 {
			t.Fatalf("zero-length stall retained: %+v", s)
		}
	}
	if tr.OpenCount() != 0 {
		t.Fatal("discarded stall left open")
	}
	// A real stall records its cause from the current context.
	tr.Restore(77)
	sid = tr.BeginStall(0, 1, StallWrite, "write conflict", 60)
	tr.EndStall(sid, 90)
	var st *Span
	for i := range tr.spans {
		if tr.spans[i].Kind == KindStall && tr.spans[i].ID != 0 {
			st = &tr.spans[i]
		}
	}
	if st == nil || st.Cause != 77 || st.Dur() != 30 {
		t.Fatalf("bad stall span: %+v", st)
	}
}

func TestDigestMatchesAcrossModes(t *testing.T) {
	drive := func(tr *Tracer) {
		tid := tr.BeginTxn(0, 0x80, 10)
		tr.Net(tid, 0, 2, 3, 0x80, 12, 30, 1, 2)
		tr.Service(KindMem, 2, 0x80, 30, 31, 55)
		sid := tr.BeginStall(0, tid, StallRead, "read fill", 10)
		tr.EndStall(sid, 60)
		tr.EndTxn(tid, 60)
	}
	full, digest := New(0), NewDigest()
	drive(full)
	drive(digest)
	if full.Digest() != digest.Digest() {
		t.Fatalf("digest differs across modes: %q vs %q", full.Digest(), digest.Digest())
	}
	if digest.Spans() != nil {
		t.Fatal("digest-only tracer retained spans")
	}
	if full.Count() != digest.Count() || full.Count() == 0 {
		t.Fatalf("counts differ: %d vs %d", full.Count(), digest.Count())
	}

	// Any field perturbation must change the digest.
	other := New(0)
	tid := other.BeginTxn(0, 0x80, 10)
	other.Net(tid, 0, 2, 3, 0x80, 12, 31, 1, 2) // end 30 -> 31
	other.Service(KindMem, 2, 0x80, 30, 31, 55)
	sid := other.BeginStall(0, tid, StallRead, "read fill", 10)
	other.EndStall(sid, 60)
	other.EndTxn(tid, 60)
	if other.Digest() == full.Digest() {
		t.Fatal("digest insensitive to span content")
	}
}

func TestRetentionCapSpillsWithoutDigestDrift(t *testing.T) {
	drive := func(tr *Tracer) {
		for i := 0; i < 10; i++ {
			tid := tr.BeginTxn(i%4, uint64(i)<<6, uint64(10*i))
			tr.Service(KindDir, 1, uint64(i)<<6, uint64(10*i), uint64(10*i+1), uint64(10*i+4))
			tr.EndTxn(tid, uint64(10*i+9))
		}
	}
	full, capped := New(0), New(5)
	drive(full)
	drive(capped)
	if capped.Dropped() == 0 {
		t.Fatal("cap not exercised")
	}
	if got := len(capped.Spans()); got > 5 {
		t.Fatalf("cap exceeded: %d spans retained", got)
	}
	if capped.Digest() != full.Digest() {
		t.Fatalf("truncation changed the digest: %q vs %q", capped.Digest(), full.Digest())
	}
	if capped.OpenCount() != 0 {
		t.Fatal("spilled spans never closed")
	}
}

func TestAnalyzeCoverage(t *testing.T) {
	tr := New(0)
	// A read-miss transaction: txn root, net request, dir service with
	// queueing, memory, net reply — stall covers it all plus slack.
	tid := tr.BeginTxn(0, 0x100, 100)
	sid := tr.BeginStall(0, tid, StallRead, "read fill", 100)
	tr.Net(tid, 0, 3, 1, 0x100, 100, 120, 4, 2)       // port 100-104, wire 104-118, port 118-120
	tr.Service(KindDir, 3, 0x100, 120, 130, 140)      // queue 120-130, service 130-140
	tr.Service(KindMem, 3, 0x100, 140, 140, 180)      // pure service
	tr.Net(tid, 3, 0, 2, 0x100, 180, 200, 0, 0)       // wire only
	tr.EndStall(sid, 210)                             // 10 uncovered cycles at the tail
	tr.EndTxn(tid, 210)

	a := Analyze(tr)
	if got, want := a.Total(), uint64(110); got != want {
		t.Fatalf("attributed %d cycles, stall was %d", got, want)
	}
	if len(a.Episodes) != 1 {
		t.Fatalf("%d episodes", len(a.Episodes))
	}
	check := func(c Cause, want uint64) {
		t.Helper()
		if got := a.ByCause[StallRead][c]; got != want {
			t.Errorf("%s: attributed %d, want %d", c, got, want)
		}
	}
	check(CauseNetPort, 6)    // 4 out + 2 in on the request
	check(CauseNet, 34)       // 14 request wire + 20 reply wire
	check(CauseDirQueue, 10)  // 120-130
	check(CauseDirService, 10)
	check(CauseMem, 40)
	check(CauseOther, 10) // uncovered tail

	// Episode segments partition the window.
	ep := &a.Episodes[0]
	at := ep.Span.Begin
	for _, seg := range ep.Segments {
		if seg.Begin != at {
			t.Fatalf("gap at %d", at)
		}
		at = seg.End
	}
	if at != ep.Span.End {
		t.Fatalf("segments end at %d, want %d", at, ep.Span.End)
	}
	if chain := ep.Chain(3); !strings.HasPrefix(chain, "mem:40") {
		t.Fatalf("chain should lead with mem: %q", chain)
	}
}

func TestAnalyzeCauseChain(t *testing.T) {
	tr := New(0)
	// Releaser's sync episode does fan-out work; acquirer stalls on the
	// lock. The wake event runs under the releaser's context, so the stall
	// records it as Cause, and the analyzer pulls the releaser's spans in.
	rel := tr.BeginSync(1, 7, "lock-release", 100)
	acq := tr.BeginSync(0, 7, "lock-acquire", 100)
	sid := tr.BeginStall(0, acq, StallSync, "lock wait", 100)
	tr.Restore(rel)
	tr.Service(KindFanout, 1, 0, 120, 120, 160) // releaser's notice posting
	tr.EndSync(rel, 160)
	// The grant delivery wakes the acquirer still under rel's context.
	tr.EndStall(sid, 180)
	tr.Restore(acq)
	tr.EndSync(acq, 180)

	a := Analyze(tr)
	if got := a.ByCause[StallSync][CauseFanout]; got != 40 {
		t.Fatalf("fanout on the causal chain attributed %d, want 40", got)
	}
	if got := a.ByCause[StallSync][CauseSerialization]; got != 40 {
		t.Fatalf("uncovered sync wait attributed %d to serialization, want 40", got)
	}
}

func TestFallbackWBDrain(t *testing.T) {
	tr := New(0)
	sid := tr.BeginStall(2, 0, StallSync, "release drain", 10)
	tr.EndStall(sid, 50)
	sid = tr.BeginStall(2, 0, StallWrite, "write buffer slot", 60)
	tr.EndStall(sid, 70)
	a := Analyze(tr)
	if got := a.CauseTotal(CauseWBDrain); got != 50 {
		t.Fatalf("wb-drain attributed %d, want 50", got)
	}
}

func TestTopNOrdering(t *testing.T) {
	tr := New(0)
	mk := func(begin, end uint64) {
		sid := tr.BeginStall(0, 0, StallRead, "read fill", begin)
		tr.EndStall(sid, end)
	}
	mk(10, 30)  // 20
	mk(50, 100) // 50
	mk(200, 220) // 20, later begin
	a := Analyze(tr)
	top := a.TopN(2)
	if len(top) != 2 || top[0].Dur() != 50 || top[1].Span.Begin != 10 {
		t.Fatalf("bad TopN ordering: %+v", top)
	}
	if got := len(a.TopN(99)); got != 3 {
		t.Fatalf("TopN over-length returned %d", got)
	}
}

func TestPerfettoRoundTrip(t *testing.T) {
	tr := New(0)
	tid := tr.BeginTxn(0, 0x40, 10)
	tr.Net(tid, 0, 1, 2, 0x40, 12, 30, 1, 1)
	tr.Service(KindDir, 1, 0x40, 30, 32, 40)
	sid := tr.BeginStall(0, tid, StallRead, "read fill", 10)
	tr.EndStall(sid, 60)
	tr.EndTxn(tid, 60)
	st := tr.BeginSync(0, 3, "barrier", 70)
	tr.EndSync(st, 90)

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr, func(k int) string { return "MsgKind" }); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace fails validation: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	out := buf.String()
	for _, want := range []string{`"ph":"X"`, `"ph":"b"`, `"ph":"e"`, `"ph":"s"`, `"ph":"f"`, "node0", "node1", "stall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

func TestValidateTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		`{}`,
		`{"traceEvents": [{"ph":"X","pid":0,"tid":0,"ts":1,"dur":2}]}`,      // no name
		`{"traceEvents": [{"name":"x","ph":"Q","pid":0,"tid":0,"ts":1}]}`,   // bad phase
		`{"traceEvents": [{"name":"x","ph":"b","pid":0,"tid":0,"ts":1}]}`,   // async without id
		`not json`,
	}
	for _, c := range cases {
		if _, err := ValidateTrace([]byte(c)); err == nil {
			t.Errorf("accepted invalid trace: %s", c)
		}
	}
}
