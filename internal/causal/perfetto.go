package causal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto export: the retained span store rendered as Chrome
// trace-event JSON (the legacy format ui.perfetto.dev and
// chrome://tracing both load). Layout:
//
//   - one process per node (pid = node index) with four thread tracks:
//     cpu (stall slices), pp (directory / fan-out / ack / remote-notice
//     occupancy), bus (fill streaming), mem (memory-module occupancy).
//     Occupancy slices draw only the service window — queueing is in
//     args — so FIFO resources render as clean non-overlapping slices.
//   - transactions and sync episodes are async events (ph b/e, id =
//     TID), which trace viewers place on per-id tracks, because a
//     processor can have several write transactions in flight at once.
//   - every message is an async net event plus a flow-event pair
//     (ph s at the send on the source node, ph f at the delivery on the
//     destination) so cross-node causality draws as arrows.
//
// Timestamps are simulated cycles written as microseconds; absolute
// wall-time is meaningless in a simulator, so 1 cycle renders as 1 us.

// traceEvent is one JSON trace event. Fields follow the Chrome
// trace-event format spec.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   uint64                 `json:"ts"`
	Dur  *uint64                `json:"dur,omitempty"`
	Pid  int64                  `json:"pid"`
	Tid  int64                  `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Thread-track ids within each node's process.
const (
	laneCPU = 0
	lanePP  = 1
	laneBus = 2
	laneMem = 3
)

var laneNames = map[int64]string{
	laneCPU: "cpu",
	lanePP:  "pp",
	laneBus: "bus",
	laneMem: "mem",
}

// WritePerfetto renders the tracer's retained spans as trace-event JSON.
// msgKindName labels net spans with the protocol message mnemonic (nil:
// numeric kinds). Only retaining tracers can export; a digest-only or
// nil tracer writes an empty trace.
func WritePerfetto(w io.Writer, t *Tracer, msgKindName func(int) string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		raw, _ := json.Marshal(ev)
		bw.Write(raw)
	}

	if t != nil {
		seenLane := make(map[[2]int64]bool)
		meta := func(pid, tid int64) {
			key := [2]int64{pid, tid}
			if seenLane[key] {
				return
			}
			seenLane[key] = true
			if !seenLane[[2]int64{pid, -1}] {
				seenLane[[2]int64{pid, -1}] = true
				emit(traceEvent{
					Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
					Args: map[string]interface{}{"name": fmt.Sprintf("node%d", pid)},
				})
			}
			emit(traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]interface{}{
					"name": laneNames[tid],
				},
			})
			emit(traceEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]interface{}{"sort_index": tid},
			})
		}

		kindLabel := func(k int) string {
			if msgKindName != nil {
				return msgKindName(k)
			}
			return fmt.Sprintf("msg%d", k)
		}

		for i := range t.spans {
			s := &t.spans[i]
			if s.ID == 0 {
				continue
			}
			pid := int64(s.Node)
			switch s.Kind {
			case KindTxn, KindSync:
				meta(pid, laneCPU)
				name := fmt.Sprintf("%s %s", s.Kind, s.Why)
				args := map[string]interface{}{"tid": s.TID}
				if s.Kind == KindTxn {
					args["block"] = fmt.Sprintf("%#x", s.Block)
				} else {
					args["obj"] = s.Obj
				}
				id := fmt.Sprintf("t%d", s.TID)
				emit(traceEvent{Name: name, Cat: "txn", Ph: "b", Ts: s.Begin,
					Pid: pid, Tid: laneCPU, ID: id, Args: args})
				emit(traceEvent{Name: name, Cat: "txn", Ph: "e", Ts: s.End,
					Pid: pid, Tid: laneCPU, ID: id})

			case KindStall:
				meta(pid, laneCPU)
				dur := s.Dur()
				emit(traceEvent{
					Name: fmt.Sprintf("stall(%s) %s", s.Class, s.Why),
					Cat:  "stall", Ph: "X", Ts: s.Begin, Dur: &dur,
					Pid: pid, Tid: laneCPU,
					Args: map[string]interface{}{"tid": s.TID, "cause": s.Cause},
				})

			case KindNet:
				// Async flight on the source node plus a flow pair for
				// the cross-node arrow.
				meta(pid, laneCPU)
				meta(int64(s.Peer), laneCPU)
				name := kindLabel(int(s.MsgKind))
				id := fmt.Sprintf("n%d", s.ID)
				args := map[string]interface{}{
					"tid": s.TID, "dst": s.Peer,
					"out_wait": s.Wait, "in_wait": s.Wait2,
				}
				if s.Block != 0 {
					args["block"] = fmt.Sprintf("%#x", s.Block)
				}
				emit(traceEvent{Name: name, Cat: "net", Ph: "b", Ts: s.Begin,
					Pid: pid, Tid: laneCPU, ID: id, Args: args})
				emit(traceEvent{Name: name, Cat: "net", Ph: "e", Ts: s.End,
					Pid: pid, Tid: laneCPU, ID: id})
				emit(traceEvent{Name: name, Cat: "flow", Ph: "s", Ts: s.Begin,
					Pid: pid, Tid: laneCPU, ID: id})
				emit(traceEvent{Name: name, Cat: "flow", Ph: "f", BP: "e",
					Ts: s.End, Pid: int64(s.Peer), Tid: laneCPU, ID: id})

			case KindRetx:
				// Retransmission wait: the whole window is lost time (Wait
				// carries the attempt number, not queueing).
				meta(pid, laneCPU)
				dur := s.Dur()
				args := map[string]interface{}{
					"tid": s.TID, "dst": s.Peer, "attempt": s.Wait,
				}
				if s.Block != 0 {
					args["block"] = fmt.Sprintf("%#x", s.Block)
				}
				emit(traceEvent{
					Name: fmt.Sprintf("retx %s", kindLabel(int(s.MsgKind))),
					Cat:  "retx", Ph: "X", Ts: s.Begin, Dur: &dur,
					Pid: pid, Tid: laneCPU, Args: args,
				})

			default:
				// Service occupancy: draw the service window only.
				lane := int64(lanePP)
				switch s.Kind {
				case KindBus:
					lane = laneBus
				case KindMem:
					lane = laneMem
				}
				meta(pid, lane)
				start := s.Begin + s.Wait
				if start > s.End {
					start = s.End
				}
				dur := s.End - start
				args := map[string]interface{}{"tid": s.TID, "wait": s.Wait}
				if s.Block != 0 {
					args["block"] = fmt.Sprintf("%#x", s.Block)
				}
				if s.Peer >= 0 {
					args["peer"] = s.Peer
				}
				emit(traceEvent{
					Name: s.Kind.String(), Cat: "svc", Ph: "X",
					Ts: start, Dur: &dur, Pid: pid, Tid: lane, Args: args,
				})
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateTrace checks data against a minimal trace-event schema: a JSON
// object whose traceEvents member is an array of events, each carrying a
// known phase, a name, numeric pid/tid, a non-negative ts on timed
// phases, a non-negative dur on complete events, and an id on
// async/flow events. It returns the event count on success.
func ValidateTrace(data []byte) (int, error) {
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return 0, fmt.Errorf("trace is not a JSON object: %w", err)
	}
	if top.TraceEvents == nil {
		return 0, fmt.Errorf("trace has no traceEvents array")
	}
	for i, raw := range top.TraceEvents {
		var ev struct {
			Name *string  `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *float64 `json:"pid"`
			Tid  *float64 `json:"tid"`
			ID   string   `json:"id"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("event %d: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return 0, fmt.Errorf("event %d (%s): missing pid/tid", i, *ev.Name)
		}
		switch ev.Ph {
		case "M":
			// Metadata: no timestamp required.
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return 0, fmt.Errorf("event %d (%s): complete event needs ts >= 0", i, *ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return 0, fmt.Errorf("event %d (%s): complete event needs dur >= 0", i, *ev.Name)
			}
		case "b", "e", "s", "f":
			if ev.Ts == nil || *ev.Ts < 0 {
				return 0, fmt.Errorf("event %d (%s): %s event needs ts >= 0", i, *ev.Name, ev.Ph)
			}
			if ev.ID == "" {
				return 0, fmt.Errorf("event %d (%s): %s event needs an id", i, *ev.Name, ev.Ph)
			}
		default:
			return 0, fmt.Errorf("event %d (%s): unknown phase %q", i, *ev.Name, ev.Ph)
		}
	}
	return len(top.TraceEvents), nil
}
