// Package bus is the daemon's in-process pub-sub fabric: a single
// publisher stream fanned out to any number of subscribers, each behind
// its own bounded buffer. Publishing never blocks — a subscriber that
// cannot keep up (a stalled SSE client, a dead TCP peer) loses events,
// not the publisher's time, and every loss is counted against that
// subscriber so operators can see who is slow.
//
// The runner's job lifecycle events flow through a Bus[runner.Event] in
// lrcsimd; the type is generic because the bus logic is independent of
// the payload.
package bus

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Bus fans values out to subscribers. Safe for concurrent use by any
// number of publishers and subscribers. The zero value is not usable;
// call New.
type Bus[T any] struct {
	mu        sync.Mutex
	subs      map[*Sub[T]]struct{}
	closed    bool
	published uint64
	delivered uint64
	dropped   uint64
	nextID    uint64
}

// New returns an empty bus.
func New[T any]() *Bus[T] {
	return &Bus[T]{subs: make(map[*Sub[T]]struct{})}
}

// Subscribe registers a new subscriber with the given buffer capacity
// (minimum 1). Events published after Subscribe returns are delivered in
// publication order until the subscriber's buffer is full; overflow is
// dropped and counted. The caller must drain C() and call Close when
// done, or the buffer fills and the subscriber goes deaf.
func (b *Bus[T]) Subscribe(buffer int) *Sub[T] {
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub[T]{b: b, ch: make(chan T, buffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	s.id = b.nextID
	if b.closed {
		// A subscription to a closed bus yields an already-closed
		// channel: ranges terminate immediately instead of hanging.
		close(s.ch)
		s.closed = true
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Publish delivers v to every current subscriber without blocking.
// Subscribers whose buffers are full miss this event and have their drop
// counter incremented. Publishing to a closed bus is a no-op.
func (b *Bus[T]) Publish(v T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.published++
	for s := range b.subs {
		select {
		case s.ch <- v:
			atomic.AddUint64(&s.delivered, 1)
			b.delivered++
		default:
			atomic.AddUint64(&s.dropped, 1)
			b.dropped++
		}
	}
}

// Close shuts the bus down: all subscriber channels are closed (after
// any buffered events drain to their readers) and future Publish and
// Subscribe calls become no-ops.
func (b *Bus[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.closed = true
		close(s.ch)
	}
	b.subs = make(map[*Sub[T]]struct{})
}

// SubStats is one attached subscriber's fanout health. A subscriber's
// identity is its subscription ordinal (stable for the life of the
// bus); Buffered is how many events sit in its channel awaiting the
// reader right now, and Delivered+Dropped is every event published
// while it was attached.
type SubStats struct {
	ID        uint64 `json:"id"`
	Buffered  int    `json:"buffered"`
	Cap       int    `json:"cap"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// Stats is a snapshot of the bus's fanout health.
type Stats struct {
	// Subscribers is the number of currently attached subscribers.
	Subscribers int `json:"subscribers"`
	// Published counts Publish calls since New.
	Published uint64 `json:"published"`
	// Delivered counts successful per-subscriber deliveries; Dropped
	// counts deliveries lost to full subscriber buffers. Both sum over
	// all subscribers, including departed ones.
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	// Subs describes each currently attached subscriber, in
	// subscription order — the per-subscriber view that identifies
	// *which* client is too slow, not just that one is.
	Subs []SubStats `json:"subs,omitempty"`
}

// Stats snapshots the bus counters, including the per-subscriber view.
func (b *Bus[T]) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		Subscribers: len(b.subs),
		Published:   b.published,
		Delivered:   b.delivered,
		Dropped:     b.dropped,
	}
	for s := range b.subs {
		st.Subs = append(st.Subs, SubStats{
			ID:        s.id,
			Buffered:  len(s.ch),
			Cap:       cap(s.ch),
			Delivered: atomic.LoadUint64(&s.delivered),
			Dropped:   atomic.LoadUint64(&s.dropped),
		})
	}
	sort.Slice(st.Subs, func(i, j int) bool { return st.Subs[i].ID < st.Subs[j].ID })
	return st
}

// Sub is one subscription: a bounded buffered view of the publication
// stream.
type Sub[T any] struct {
	b         *Bus[T]
	ch        chan T
	id        uint64
	delivered uint64
	dropped   uint64
	closed    bool
}

// C is the subscription's delivery channel. It is closed when either the
// subscriber or the bus closes.
func (s *Sub[T]) C() <-chan T { return s.ch }

// Dropped reports how many events this subscriber has missed to a full
// buffer.
func (s *Sub[T]) Dropped() uint64 { return atomic.LoadUint64(&s.dropped) }

// Close detaches the subscriber and closes its channel. Idempotent, and
// safe to race with Bus.Close.
func (s *Sub[T]) Close() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.b.subs, s)
	close(s.ch)
}
