package bus

import (
	"sync"
	"testing"
)

func TestFanoutDeliversInOrder(t *testing.T) {
	b := New[int]()
	a, c := b.Subscribe(16), b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	b.Close()
	for _, sub := range []*Sub[int]{a, c} {
		i := 0
		for v := range sub.C() {
			if v != i {
				t.Fatalf("got %d at position %d", v, i)
			}
			i++
		}
		if i != 10 {
			t.Fatalf("subscriber received %d of 10 events", i)
		}
	}
	if st := b.Stats(); st.Published != 10 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSlowSubscriberDropsAreCounted(t *testing.T) {
	b := New[int]()
	slow := b.Subscribe(2)
	fast := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	if got := slow.Dropped(); got != 8 {
		t.Fatalf("slow subscriber dropped %d, want 8", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", got)
	}
	if st := b.Stats(); st.Dropped != 8 || st.Delivered != 12 {
		t.Fatalf("bus-wide counters %+v", st)
	}
	// The per-subscriber snapshot attributes the loss: the slow
	// subscriber shows nonzero drops and a full buffer, the fast one
	// shows zero drops with everything delivered.
	st := b.Stats()
	if len(st.Subs) != 2 {
		t.Fatalf("subscriber snapshot has %d entries, want 2", len(st.Subs))
	}
	slowSt, fastSt := st.Subs[0], st.Subs[1]
	if slowSt.Dropped != 8 || slowSt.Delivered != 2 || slowSt.Buffered != 2 || slowSt.Cap != 2 {
		t.Fatalf("slow subscriber stats %+v", slowSt)
	}
	if fastSt.Dropped != 0 || fastSt.Delivered != 10 || fastSt.Buffered != 10 {
		t.Fatalf("fast subscriber stats %+v", fastSt)
	}
	// The slow subscriber keeps the oldest events that fit, not a
	// corrupted stream: it sees 0, 1 and then the close.
	b.Close()
	var got []int
	for v := range slow.C() {
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("slow subscriber saw %v", got)
	}
}

func TestSubscriberCloseDetaches(t *testing.T) {
	b := New[int]()
	s := b.Subscribe(4)
	s.Close()
	s.Close() // idempotent
	b.Publish(1)
	if _, ok := <-s.C(); ok {
		t.Fatal("closed subscriber received an event")
	}
	if st := b.Stats(); st.Subscribers != 0 || st.Dropped != 0 {
		t.Fatalf("stats after detach: %+v", st)
	}
}

func TestSubscribeAfterCloseYieldsClosedChannel(t *testing.T) {
	b := New[int]()
	b.Close()
	b.Close() // idempotent
	s := b.Subscribe(4)
	if _, ok := <-s.C(); ok {
		t.Fatal("subscription to closed bus delivered an event")
	}
	b.Publish(1) // no-op, must not panic
	s.Close()    // idempotent with the bus close
}

// TestConcurrentPublishSubscribe exercises the locking under -race:
// publishers, subscribers attaching/detaching, and a closing bus.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New[int]()
	var pubs, subs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 200; i++ {
				b.Publish(i)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		subs.Add(1)
		go func(detachEarly bool) {
			defer subs.Done()
			sub := b.Subscribe(8)
			n := 0
			for range sub.C() {
				if n++; detachEarly && n == 10 {
					break
				}
			}
			sub.Close()
		}(s%2 == 0)
	}
	pubs.Wait()
	b.Close()
	subs.Wait()
}
