package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1106 {
		t.Fatalf("sum = %d, want 1106", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-1106.0/6) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram("empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// All samples identical: every quantile must report exactly that value
	// (the clamp to [min,max] guarantees it despite bucket width).
	h := NewHistogram("one")
	for i := 0; i < 100; i++ {
		h.Observe(37)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 37 {
			t.Fatalf("Quantile(%v) = %v, want 37", q, got)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram("spread")
	for v := uint64(1); v <= 1024; v++ {
		h.Observe(v)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// p50 of 1..1024 lives in bucket [512, 1023]; a log₂ histogram can't be
	// precise, but it must land in a plausible band.
	if p50 < 256 || p50 > 768 {
		t.Fatalf("p50 = %v, expected within [256, 768]", p50)
	}
	if p99 < 900 || p99 > 1024 {
		t.Fatalf("p99 = %v, expected within [900, 1024]", p99)
	}
}

func TestHistogramMerge(t *testing.T) {
	// Merge must equal a single histogram fed both streams.
	a, b, both := NewHistogram("a"), NewHistogram("b"), NewHistogram("both")
	for v := uint64(1); v <= 500; v++ {
		a.Observe(v)
		both.Observe(v)
	}
	for v := uint64(400); v <= 2000; v += 3 {
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merged summary differs: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Count(), a.Sum(), a.Min(), a.Max(), both.Count(), both.Sum(), both.Min(), both.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if ga, gb := a.Quantile(q), both.Quantile(q); ga != gb {
			t.Fatalf("Quantile(%v): merged %v vs direct %v", q, ga, gb)
		}
	}
	if a.counts != both.counts {
		t.Fatal("merged buckets differ from direct buckets")
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a := NewHistogram("a")
	a.Observe(7)
	a.Merge(NewHistogram("empty")) // no-op
	if a.Count() != 1 || a.Min() != 7 || a.Max() != 7 {
		t.Fatalf("merge with empty changed state: %d/%d/%d", a.Count(), a.Min(), a.Max())
	}
	empty := NewHistogram("e2")
	empty.Merge(a)
	if empty.Count() != 1 || empty.Min() != 7 || empty.Max() != 7 {
		t.Fatalf("empty.Merge(a) = %d/%d/%d, want 1/7/7", empty.Count(), empty.Min(), empty.Max())
	}
	a.Merge(nil) // must not panic
	var nilH *Histogram
	nilH.Merge(a) // must not panic
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	var (
		h *Histogram
		s *Series
		r *Registry
	)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42)
		s.Set(1)
		s.Add(2)
		r.Sample(100)
		r.Histogram("x").Observe(1)
		r.Series("y", Delta).Add(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}

func TestSeriesLevelVsDelta(t *testing.T) {
	r := NewRegistry(10)
	lvl := r.Series("depth", Level)
	del := r.Series("msgs", Delta)

	lvl.Set(3)
	del.Add(5)
	r.Sample(10)
	lvl.Set(7)
	del.Add(2)
	r.Sample(20)
	r.Sample(20) // duplicate timestamp: ignored
	lvl.Set(1)
	r.Sample(30)

	if got := r.Samples(); got != 3 {
		t.Fatalf("samples = %d, want 3", got)
	}
	wantLvl := []float64{3, 7, 1}
	wantDel := []float64{5, 2, 0}
	for i := range wantLvl {
		if lvl.Points()[i] != wantLvl[i] {
			t.Fatalf("level pts = %v, want %v", lvl.Points(), wantLvl)
		}
		if del.Points()[i] != wantDel[i] {
			t.Fatalf("delta pts = %v, want %v", del.Points(), wantDel)
		}
	}
}

func TestRegistryOnSample(t *testing.T) {
	r := NewRegistry(5)
	g := r.Series("gauge", Level)
	v := 0.0
	r.OnSample(func() { g.Set(v) })
	v = 11
	r.Sample(5)
	v = 22
	r.Sample(10)
	pts := g.Points()
	if len(pts) != 2 || pts[0] != 11 || pts[1] != 22 {
		t.Fatalf("gauge pts = %v, want [11 22]", pts)
	}
}

func TestSeriesModeFirstRegistrationWins(t *testing.T) {
	r := NewRegistry(1)
	a := r.Series("x", Delta)
	b := r.Series("x", Level)
	if a != b {
		t.Fatal("same name returned distinct series")
	}
	if b.Mode() != Delta {
		t.Fatalf("mode = %v, want Delta", b.Mode())
	}
}

func buildRegistry() *Registry {
	r := NewRegistry(100)
	r.SetMeta("app", "gauss")
	r.SetMeta("seed", "1")
	s := r.Series("stall.cpu", Delta)
	q := r.Series("wb.depth.000", Level)
	h := r.Histogram("net.lat.RdReq")
	for i := 1; i <= 5; i++ {
		s.Add(float64(i * 10))
		q.Set(float64(i % 3))
		h.Observe(uint64(i * 7))
		r.Sample(uint64(i * 100))
	}
	return r
}

func TestExportDigestDeterministic(t *testing.T) {
	d1 := buildRegistry().Digest()
	d2 := buildRegistry().Digest()
	if d1 == "" || d1 != d2 {
		t.Fatalf("digest not deterministic: %q vs %q", d1, d2)
	}
	// Registration order must not matter: build with names registered in a
	// different order.
	r := NewRegistry(100)
	r.SetMeta("seed", "1")
	r.SetMeta("app", "gauss")
	h := r.Histogram("net.lat.RdReq")
	q := r.Series("wb.depth.000", Level)
	s := r.Series("stall.cpu", Delta)
	for i := 1; i <= 5; i++ {
		s.Add(float64(i * 10))
		q.Set(float64(i % 3))
		h.Observe(uint64(i * 7))
		r.Sample(uint64(i * 100))
	}
	if d3 := r.Digest(); d3 != d1 {
		t.Fatalf("digest depends on registration order: %q vs %q", d3, d1)
	}
	// And data changes must change it.
	r2 := buildRegistry()
	r2.Histogram("net.lat.RdReq").Observe(9999)
	if r2.Digest() == d1 {
		t.Fatal("digest unchanged after extra observation")
	}
}

func TestExportValidateRoundtrip(t *testing.T) {
	r := buildRegistry()
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	hdr, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if hdr.Schema != SchemaVersion || hdr.Samples != 5 || hdr.Series != 2 || hdr.Hists != 1 {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Meta["app"] != "gauss" {
		t.Fatalf("meta = %v", hdr.Meta)
	}

	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Export(&buf2); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export → load → export is not byte-identical")
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong schema": `{"schema":"other-v9","interval":1,"samples":0,"series":0,"hists":0}` + "\n" + `{"kind":"times","cycles":[]}` + "\n",
		"no times":     `{"schema":"` + SchemaVersion + `","interval":1,"samples":0,"series":0,"hists":0}` + "\n",
		"series count mismatch": `{"schema":"` + SchemaVersion + `","interval":1,"samples":0,"series":2,"hists":0}` + "\n" +
			`{"kind":"times","cycles":[]}` + "\n",
		"point count mismatch": `{"schema":"` + SchemaVersion + `","interval":1,"samples":2,"series":1,"hists":0}` + "\n" +
			`{"kind":"times","cycles":[1,2]}` + "\n" +
			`{"kind":"series","name":"x","mode":"level","points":[1]}` + "\n",
		"non-increasing times": `{"schema":"` + SchemaVersion + `","interval":1,"samples":2,"series":0,"hists":0}` + "\n" +
			`{"kind":"times","cycles":[5,5]}` + "\n",
		"bucket sum mismatch": `{"schema":"` + SchemaVersion + `","interval":1,"samples":0,"series":0,"hists":1}` + "\n" +
			`{"kind":"times","cycles":[]}` + "\n" +
			`{"kind":"hist","name":"h","count":3,"sum":1,"min":1,"max":1,"buckets":[[1,1]],"p50":1,"p90":1,"p99":1}` + "\n",
	}
	for name, in := range cases {
		if _, err := Validate(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validate accepted bad input", name)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	r := buildRegistry()
	// Add the series the report sections look for.
	for i, name := range []string{"stall.read", "stall.write", "stall.sync", "net.out_busy.000", "net.out_busy.001"} {
		s := r.Series(name, Delta)
		// Backfill points so lengths align with the 5 samples.
		for j := 0; j < 5; j++ {
			s.pts = append(s.pts, float64(i+j))
		}
	}
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf, "test run"); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "test run", "Cycle breakdown", "Link utilization",
		"Latency quantiles", "net.lat.RdReq", "prefers-color-scheme: dark",
		"Data table", "<svg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Self-contained: no external references.
	for _, banned := range []string{"http://", "https://", "<script", "src="} {
		if strings.Contains(out, banned) {
			t.Errorf("report contains external reference %q", banned)
		}
	}
	// Deterministic render.
	var buf2 bytes.Buffer
	if err := r.WriteHTML(&buf2, "test run"); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("HTML render not deterministic")
	}
}

func BenchmarkObserveEnabled(b *testing.B) {
	h := NewHistogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
