package telemetry

import "sort"

// Mode selects how a Series turns its instantaneous value into points.
type Mode uint8

const (
	// Level records the value itself at each sample — queue depths,
	// directory state counts, stalled-processor counts.
	Level Mode = iota
	// Delta records the increase since the previous sample — the right
	// mode for cumulative sources (stall-cycle totals, busy cycles,
	// message counts), turning them into per-interval rates.
	Delta
)

// String returns the mode mnemonic used in the JSONL export.
func (m Mode) String() string {
	if m == Delta {
		return "delta"
	}
	return "level"
}

// Series is one named time series. Sampler callbacks Set (or Add) its
// current value; the registry appends one point per sampling tick. A nil
// *Series discards updates, so sources need no enabled-check of their
// own.
type Series struct {
	name string
	mode Mode
	cur  float64
	prev float64
	pts  []float64
}

// Name returns the series name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Mode returns the series' sampling mode.
func (s *Series) Mode() Mode {
	if s == nil {
		return Level
	}
	return s.mode
}

// Set replaces the series' current value. Free on a nil receiver.
func (s *Series) Set(v float64) {
	if s == nil {
		return
	}
	s.cur = v
}

// Add accumulates into the series' current value. Free on a nil receiver.
func (s *Series) Add(v float64) {
	if s == nil {
		return
	}
	s.cur += v
}

// Points returns the sampled points (one per registry tick).
func (s *Series) Points() []float64 {
	if s == nil {
		return nil
	}
	return s.pts
}

// sample appends the tick's point according to the series mode.
func (s *Series) sample() {
	switch s.mode {
	case Delta:
		s.pts = append(s.pts, s.cur-s.prev)
		s.prev = s.cur
	default:
		s.pts = append(s.pts, s.cur)
	}
}

// Registry owns a run's instruments: named series sampled into aligned
// time series on every tick, and named histograms fed continuously by
// instrumented sources. A nil *Registry hands out nil instruments, so a
// source wired to a disabled registry costs only nil checks.
//
// The registry itself never schedules anything: the owner (the machine)
// drives Sample from simulation-engine events, which is what makes the
// series cycle-domain and deterministic.
type Registry struct {
	interval uint64
	meta     map[string]string

	times    []uint64
	series   []*Series
	byName   map[string]*Series
	hists    []*Histogram
	histBy   map[string]*Histogram
	samplers []func()
}

// NewRegistry returns an empty registry sampling every interval cycles
// (the interval is recorded in the export header; the owner enforces it).
func NewRegistry(interval uint64) *Registry {
	return &Registry{
		interval: interval,
		meta:     map[string]string{},
		byName:   map[string]*Series{},
		histBy:   map[string]*Histogram{},
	}
}

// Interval returns the sampling interval in simulated cycles.
func (r *Registry) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// SetMeta records a run-metadata key (application, protocol, seed...)
// for the export header. Safe on a nil registry.
func (r *Registry) SetMeta(k, v string) {
	if r == nil {
		return
	}
	r.meta[k] = v
}

// Meta returns the value recorded for key ("" when absent).
func (r *Registry) Meta(k string) string {
	if r == nil {
		return ""
	}
	return r.meta[k]
}

// Series returns (creating on first use) the named series. Returns nil —
// a working no-op instrument — on a nil registry. Registering the same
// name twice returns the same series; the mode of the first registration
// wins.
func (r *Registry) Series(name string, mode Mode) *Series {
	if r == nil {
		return nil
	}
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := &Series{name: name, mode: mode}
	r.byName[name] = s
	r.series = append(r.series, s)
	return s
}

// Histogram returns (creating on first use) the named histogram. Returns
// nil — a working no-op instrument — on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histBy[name]; ok {
		return h
	}
	h := NewHistogram(name)
	r.histBy[name] = h
	r.hists = append(r.hists, h)
	return h
}

// OnSample registers a callback run at the start of every sampling tick,
// before series points are recorded — the place to Set gauges from
// simulation state. Safe on a nil registry.
func (r *Registry) OnSample(fn func()) {
	if r == nil {
		return
	}
	r.samplers = append(r.samplers, fn)
}

// Sample records one tick at simulated time now: sampler callbacks run,
// then every series appends its point. A repeated Sample at the same
// timestamp is ignored, so the owner can safely take a closing sample at
// end of run even when the run ended exactly on a tick.
func (r *Registry) Sample(now uint64) {
	if r == nil {
		return
	}
	if n := len(r.times); n > 0 && r.times[n-1] == now {
		return
	}
	for _, fn := range r.samplers {
		fn()
	}
	r.times = append(r.times, now)
	for _, s := range r.series {
		s.sample()
	}
}

// Samples returns the number of ticks recorded.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	return len(r.times)
}

// Times returns the simulated timestamp of every tick.
func (r *Registry) Times() []uint64 {
	if r == nil {
		return nil
	}
	return r.times
}

// SeriesByName returns the named series, or nil.
func (r *Registry) SeriesByName(name string) *Series {
	if r == nil {
		return nil
	}
	return r.byName[name]
}

// HistogramByName returns the named histogram, or nil.
func (r *Registry) HistogramByName(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.histBy[name]
}

// sortedSeries returns the series sorted by name — the canonical export
// order, independent of registration order.
func (r *Registry) sortedSeries() []*Series {
	out := append([]*Series(nil), r.series...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedHists returns the histograms sorted by name.
func (r *Registry) sortedHists() []*Histogram {
	out := append([]*Histogram(nil), r.hists...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// VisitSeries calls fn for every series in canonical (name) order.
func (r *Registry) VisitSeries(fn func(*Series)) {
	if r == nil {
		return
	}
	for _, s := range r.sortedSeries() {
		fn(s)
	}
}

// VisitHistograms calls fn for every histogram in canonical (name) order.
func (r *Registry) VisitHistograms(fn func(*Histogram)) {
	if r == nil {
		return
	}
	for _, h := range r.sortedHists() {
		fn(h)
	}
}
