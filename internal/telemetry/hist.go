// Package telemetry is the simulator's cycle-domain metrics layer: a
// near-zero-overhead-when-disabled registry of counters, gauges, and
// log-bucketed latency histograms, sampled on a simulated-cycle interval
// into per-node and per-resource time series.
//
// Design constraints, in order:
//
//  1. Disabled must cost (almost) nothing. Every instrument is nil-safe:
//     a nil *Histogram or *Series absorbs observations as a no-op with
//     zero allocations, so instrumented hot paths carry only a nil check.
//  2. Sampling is driven by the simulation engine, never the wall clock,
//     so a run's time series is a pure function of the run — byte-
//     identical across worker counts, machines, and reruns at a fixed
//     seed. The export is canonical (sorted, versioned) and carries a
//     SHA-256 digest the regression gate can compare.
//  3. Collection is strictly passive: instruments only read simulation
//     state; enabling metrics never changes a single simulated cycle.
package telemetry

import (
	"fmt"
	"math/bits"
)

// HistBuckets is the number of log₂ buckets a histogram carries: bucket 0
// holds exact zeros and bucket i (i ≥ 1) holds values in [2^(i-1), 2^i).
// 65 buckets cover the full uint64 range.
const HistBuckets = 65

// Histogram is a log₂-bucketed histogram of uint64 samples (cycle
// latencies, queue depths). Buckets are mergeable across histograms, and
// quantiles are estimated by linear interpolation inside the covering
// bucket, clamped to the observed min/max. The zero value is ready to
// use; a nil *Histogram discards observations.
type Histogram struct {
	name     string
	counts   [HistBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// NewHistogram returns a named, empty histogram.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registered name ("" for an anonymous one).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one sample. Safe (and free) on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)]++
	h.count += 1
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds other's samples into h. Either receiver or argument may be
// nil (a no-op). Quantiles of the merged histogram are exactly what a
// single histogram fed both streams would report — buckets, count, sum,
// min, and max all combine losslessly.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<i - 1
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// samples: it locates the bucket containing the q·count-th sample and
// interpolates linearly within the bucket's bounds, clamped to the
// observed min/max so small histograms stay tight. An empty histogram
// reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == HistBuckets-1 {
			lo, hi := bucketBounds(i)
			pos := 0.0
			if c > 0 {
				pos = (rank - cum) / float64(c)
			}
			v := float64(lo) + pos*float64(hi-lo)
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		cum = next
	}
	return float64(h.max)
}

// Buckets returns the non-empty buckets as (index, count) pairs in
// ascending index order — the sparse form used by the JSONL export.
func (h *Histogram) Buckets() [][2]uint64 {
	if h == nil {
		return nil
	}
	var out [][2]uint64
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, [2]uint64{uint64(i), c})
		}
	}
	return out
}

// setBucket restores one sparse bucket (used by the JSONL reader).
func (h *Histogram) setBucket(i uint64, c uint64) error {
	if i >= HistBuckets {
		return fmt.Errorf("telemetry: bucket index %d out of range", i)
	}
	h.counts[i] = c
	return nil
}
