package telemetry

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// This file renders self-contained single-file HTML reports: all data is
// inlined as SVG + tables, no scripts, no external assets. Charts follow
// the house dataviz rules — categorical hues in fixed slot order, 2px
// lines, hairline grids, a sequential single-hue ramp for magnitude,
// text in text tokens (never series colors), light/dark via CSS custom
// properties, an SVG <title> hover layer, and a <details> table view for
// every chart so no value is gated behind color perception.

// Categorical palette, fixed slot order (light, dark).
var seriesColors = [8][2]string{
	{"#2a78d6", "#3987e5"}, // 1 blue
	{"#eb6834", "#d95926"}, // 2 orange
	{"#1baf7a", "#199e70"}, // 3 aqua
	{"#eda100", "#c98500"}, // 4 yellow
	{"#e87ba4", "#d55181"}, // 5 magenta
	{"#008300", "#008300"}, // 6 green
	{"#4a3aa7", "#9085e9"}, // 7 violet
	{"#e34948", "#e66767"}, // 8 red
}

const reportCSS = `
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; font-weight: 600; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.viz-root .card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin: 0 0 16px;
  max-width: 960px;
}
.viz-root .legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 8px 0 0; font-size: 12px; color: var(--text-secondary); }
.viz-root .legend .key { display: inline-flex; align-items: center; gap: 6px; }
.viz-root .legend .swatch { width: 12px; height: 12px; border-radius: 3px; display: inline-block; }
.viz-root svg text { font-family: inherit; }
.viz-root details { margin-top: 8px; font-size: 12px; }
.viz-root details summary { color: var(--text-muted); cursor: pointer; }
.viz-root table { border-collapse: collapse; margin-top: 8px; font-size: 12px; }
.viz-root th, .viz-root td { padding: 3px 10px; text-align: right; font-variant-numeric: tabular-nums; }
.viz-root th { color: var(--text-secondary); font-weight: 600; border-bottom: 1px solid var(--grid); }
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
.viz-root .meta { font-size: 12px; color: var(--text-secondary); }
.viz-root .meta td { text-align: left; }
`

// HTMLDoc accumulates report sections and writes one self-contained page.
type HTMLDoc struct {
	title    string
	subtitle string
	refresh  int
	body     strings.Builder
}

// NewHTMLDoc starts a report page with the given title and subtitle.
func NewHTMLDoc(title, subtitle string) *HTMLDoc {
	return &HTMLDoc{title: title, subtitle: subtitle}
}

// Section appends a heading followed by pre-rendered card content.
func (d *HTMLDoc) Section(heading, inner string) {
	if heading != "" {
		fmt.Fprintf(&d.body, "<h2>%s</h2>\n", html.EscapeString(heading))
	}
	d.body.WriteString(`<div class="card">` + "\n" + inner + "\n</div>\n")
}

// Raw appends pre-rendered HTML outside a card.
func (d *HTMLDoc) Raw(inner string) { d.body.WriteString(inner) }

// SetRefresh makes the page reload itself every n seconds (n <= 0
// disables) — used by live dashboards; static reports leave it off.
func (d *HTMLDoc) SetRefresh(n int) { d.refresh = n }

// Render writes the complete page.
func (d *HTMLDoc) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	if d.refresh > 0 {
		fmt.Fprintf(&b, "<meta http-equiv=\"refresh\" content=\"%d\">\n", d.refresh)
	}
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(d.title))
	b.WriteString("<style>" + reportCSS + "</style>\n</head>\n<body class=\"viz-root\">\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(d.title))
	if d.subtitle != "" {
		fmt.Fprintf(&b, "<p class=\"sub\">%s</p>\n", html.EscapeString(d.subtitle))
	}
	b.WriteString(d.body.String())
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ChartSeries is one named series handed to a chart renderer, bound to a
// categorical palette slot (0-based, fixed order — never cycled).
type ChartSeries struct {
	Label  string
	Slot   int
	Points []float64
}

func slotVar(slot int) string {
	if slot < 0 || slot >= len(seriesColors) {
		slot = 0
	}
	return fmt.Sprintf("var(--s%d)", slot+1)
}

// fmtNum renders a value compactly for labels and tables.
func fmtNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case math.Abs(v) >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// niceCeil rounds up to a clean axis maximum (1/2/5 × 10^k).
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if m*mag >= v {
			return m * mag
		}
	}
	return 10 * mag
}

const (
	chartW  = 900.0
	chartH  = 220.0
	padL    = 56.0
	padR    = 12.0
	padT    = 10.0
	padB    = 26.0
	plotW   = chartW - padL - padR
	plotH   = chartH - padT - padB
	gridN   = 4 // horizontal gridlines
	xTicksN = 6
)

func xScale(i, n int) float64 {
	if n <= 1 {
		return padL
	}
	return padL + plotW*float64(i)/float64(n-1)
}

func yScale(v, ymax float64) float64 {
	if ymax <= 0 {
		ymax = 1
	}
	y := padT + plotH*(1-v/ymax)
	if y < padT {
		y = padT
	}
	if y > padT+plotH {
		y = padT + plotH
	}
	return y
}

// chartFrame renders gridlines, the baseline, and y/x tick labels.
func chartFrame(b *strings.Builder, times []uint64, ymax float64, yUnit string) {
	for g := 0; g <= gridN; g++ {
		v := ymax * float64(g) / float64(gridN)
		y := yScale(v, ymax)
		if g > 0 { // baseline drawn separately
			fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--grid)" stroke-width="1"/>`+"\n",
				padL, y, padL+plotW, y)
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-muted)" text-anchor="end">%s</text>`+"\n",
			padL-6, y+4, fmtNum(v))
	}
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--baseline)" stroke-width="1"/>`+"\n",
		padL, padT+plotH, padL+plotW, padT+plotH)
	n := len(times)
	if n > 0 {
		step := (n - 1) / (xTicksN - 1)
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			x := xScale(i, n)
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-muted)" text-anchor="middle">%s</text>`+"\n",
				x, padT+plotH+16, fmtNum(float64(times[i])))
		}
	}
	if yUnit != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-muted)">%s</text>`+"\n",
			padL, padT-1, html.EscapeString(yUnit))
	}
}

// legendHTML renders the legend row (always present for ≥2 series).
func legendHTML(series []ChartSeries) string {
	if len(series) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteString(`<div class="legend">`)
	for _, s := range series {
		fmt.Fprintf(&b, `<span class="key"><span class="swatch" style="background:%s"></span>%s</span>`,
			slotVar(s.Slot), html.EscapeString(s.Label))
	}
	b.WriteString("</div>\n")
	return b.String()
}

// tableHTML renders the <details> data-table view backing a chart.
func tableHTML(times []uint64, series []ChartSeries) string {
	var b strings.Builder
	b.WriteString("<details><summary>Data table</summary><table><tr><th>cycle</th>")
	for _, s := range series {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(s.Label))
	}
	b.WriteString("</tr>\n")
	for i, t := range times {
		fmt.Fprintf(&b, "<tr><td>%d</td>", t)
		for _, s := range series {
			v := 0.0
			if i < len(s.Points) {
				v = s.Points[i]
			}
			fmt.Fprintf(&b, "<td>%s</td>", fmtNum(v))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table></details>\n")
	return b.String()
}

// LineChart renders a multi-series line chart (2px lines, hover titles on
// ≥8px invisible hit targets, legend, table view) as a card-ready fragment.
func LineChart(times []uint64, series []ChartSeries, yUnit string) string {
	ymax := 0.0
	for _, s := range series {
		for _, v := range s.Points {
			if v > ymax {
				ymax = v
			}
		}
	}
	ymax = niceCeil(ymax)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img">`+"\n", chartW, chartH)
	chartFrame(&b, times, ymax, yUnit)
	n := len(times)
	for _, s := range series {
		var path strings.Builder
		for i, v := range s.Points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xScale(i, n), yScale(v, ymax))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`+"\n",
			strings.TrimSpace(path.String()), slotVar(s.Slot))
	}
	// Hover layer: one invisible circle per point with a <title> tooltip.
	for _, s := range series {
		for i, v := range s.Points {
			if i >= n {
				break
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="transparent"><title>%s @ %d: %s</title></circle>`+"\n",
				xScale(i, n), yScale(v, ymax), html.EscapeString(s.Label), times[i], fmtNum(v))
		}
	}
	b.WriteString("</svg>\n")
	b.WriteString(legendHTML(series))
	b.WriteString(tableHTML(times, series))
	return b.String()
}

// StackedAreaChart renders series stacked bottom-up in slot order: fills
// at 35% opacity separated by their own 2px boundary lines in the full
// series hue, hover titles carrying the per-series value, legend, table.
func StackedAreaChart(times []uint64, series []ChartSeries, yUnit string) string {
	n := len(times)
	totals := make([]float64, n)
	for _, s := range series {
		for i := 0; i < n && i < len(s.Points); i++ {
			totals[i] += s.Points[i]
		}
	}
	ymax := 0.0
	for _, t := range totals {
		if t > ymax {
			ymax = t
		}
	}
	ymax = niceCeil(ymax)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img">`+"\n", chartW, chartH)
	chartFrame(&b, times, ymax, yUnit)
	base := make([]float64, n)
	for _, s := range series {
		top := make([]float64, n)
		for i := 0; i < n; i++ {
			v := 0.0
			if i < len(s.Points) {
				v = s.Points[i]
			}
			top[i] = base[i] + v
		}
		// Fill: wash between base and top.
		var path strings.Builder
		for i := 0; i < n; i++ {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xScale(i, n), yScale(top[i], ymax))
		}
		for i := n - 1; i >= 0; i-- {
			fmt.Fprintf(&path, "L%.1f %.1f ", xScale(i, n), yScale(base[i], ymax))
		}
		fmt.Fprintf(&b, `<path d="%sZ" fill="%s" fill-opacity="0.35" stroke="none"/>`+"\n",
			strings.TrimSpace(path.String()), slotVar(s.Slot))
		// Boundary line in the full hue.
		var line strings.Builder
		for i := 0; i < n; i++ {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&line, "%s%.1f %.1f ", cmd, xScale(i, n), yScale(top[i], ymax))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.TrimSpace(line.String()), slotVar(s.Slot))
		// Hover layer on the boundary.
		for i := 0; i < n; i++ {
			v := 0.0
			if i < len(s.Points) {
				v = s.Points[i]
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="transparent"><title>%s @ %d: %s</title></circle>`+"\n",
				xScale(i, n), yScale(top[i], ymax), html.EscapeString(s.Label), times[i], fmtNum(v))
		}
		base = top
	}
	b.WriteString("</svg>\n")
	b.WriteString(legendHTML(series))
	b.WriteString(tableHTML(times, series))
	return b.String()
}

// Heatmap renders a row×column matrix with a sequential single-hue ramp:
// cell magnitude maps to the fill-opacity of the slot-1 blue, so light
// and dark mode each get a valid ramp from their own surface. Cells carry
// hover titles; a table view backs the chart.
func Heatmap(rowLabels []string, colTimes []uint64, values [][]float64, unit string) string {
	rows := len(rowLabels)
	cols := len(colTimes)
	if rows == 0 || cols == 0 {
		return `<p class="meta">no data</p>`
	}
	vmax := 0.0
	for _, row := range values {
		for _, v := range row {
			if v > vmax {
				vmax = v
			}
		}
	}
	if vmax == 0 {
		vmax = 1
	}
	labelW := 64.0
	cellH := 16.0
	gap := 2.0
	w := chartW
	gridW := w - labelW - padR
	h := float64(rows)*(cellH+gap) + padT + padB
	cw := gridW / float64(cols)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img">`+"\n", w, h)
	for r := 0; r < rows; r++ {
		y := padT + float64(r)*(cellH+gap)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-secondary)" text-anchor="end">%s</text>`+"\n",
			labelW-6, y+cellH-4, html.EscapeString(rowLabels[r]))
		for c := 0; c < cols; c++ {
			v := 0.0
			if r < len(values) && c < len(values[r]) {
				v = values[r][c]
			}
			op := 0.06 + 0.94*(v/vmax)
			if v == 0 {
				op = 0.04
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" rx="2" fill="var(--s1)" fill-opacity="%.3f"><title>%s @ %d: %s%s</title></rect>`+"\n",
				labelW+float64(c)*cw, y, cw-gap, cellH, op,
				html.EscapeString(rowLabels[r]), colTimes[c], fmtNum(v), unit)
		}
	}
	// X ticks under the grid.
	step := (cols - 1) / (xTicksN - 1)
	if step < 1 {
		step = 1
	}
	for c := 0; c < cols; c += step {
		x := labelW + (float64(c)+0.5)*cw
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-muted)" text-anchor="middle">%s</text>`+"\n",
			x, h-8, fmtNum(float64(colTimes[c])))
	}
	b.WriteString("</svg>\n")
	// Table view.
	b.WriteString("<details><summary>Data table</summary><table><tr><th></th>")
	for c := 0; c < cols; c += step {
		fmt.Fprintf(&b, "<th>%d</th>", colTimes[c])
	}
	b.WriteString("</tr>\n")
	for r := 0; r < rows; r++ {
		fmt.Fprintf(&b, "<tr><td>%s</td>", html.EscapeString(rowLabels[r]))
		for c := 0; c < cols; c += step {
			v := 0.0
			if r < len(values) && c < len(values[r]) {
				v = values[r][c]
			}
			fmt.Fprintf(&b, "<td>%s</td>", fmtNum(v))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table></details>\n")
	return b.String()
}

// QuantileTable renders the latency-histogram summary table.
func QuantileTable(hists []*Histogram) string {
	var b strings.Builder
	b.WriteString("<table><tr><th>histogram</th><th>count</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>\n")
	for _, h := range hists {
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>\n",
			html.EscapeString(h.Name()), h.Count(), fmtNum(h.Mean()),
			fmtNum(h.Quantile(0.50)), fmtNum(h.Quantile(0.90)), fmtNum(h.Quantile(0.99)), h.Max())
	}
	b.WriteString("</table>\n")
	return b.String()
}

// MetaTable renders the run-metadata key/value table in sorted key order.
func MetaTable(pairs [][2]string) string {
	var b strings.Builder
	b.WriteString(`<table class="meta">`)
	for _, kv := range pairs {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(kv[0]), html.EscapeString(kv[1]))
	}
	b.WriteString("</table>\n")
	return b.String()
}

// seriesMatching collects the registry series whose name starts with
// prefix, in canonical order, returning the suffixes as labels.
func (r *Registry) seriesMatching(prefix string) (labels []string, rows [][]float64) {
	r.VisitSeries(func(s *Series) {
		if strings.HasPrefix(s.Name(), prefix) {
			labels = append(labels, strings.TrimPrefix(s.Name(), prefix))
			rows = append(rows, s.Points())
		}
	})
	return labels, rows
}

// chartSeriesFor builds ChartSeries from named registry series, assigning
// palette slots in the order given. Series absent from the registry are
// skipped (their slot is skipped with them: color follows the entity).
func (r *Registry) chartSeriesFor(names []string, labels []string) []ChartSeries {
	var out []ChartSeries
	for i, name := range names {
		s := r.SeriesByName(name)
		if s == nil {
			continue
		}
		out = append(out, ChartSeries{Label: labels[i], Slot: i, Points: s.Points()})
	}
	return out
}

// WriteHTML renders the registry as a self-contained run report: run
// metadata, the interval cycle-breakdown stack, network traffic, link
// utilization heatmaps, protocol/buffer occupancy, directory state mix,
// and the latency quantile table.
func (r *Registry) WriteHTML(w io.Writer, title string) error {
	if r == nil {
		return fmt.Errorf("telemetry: rendering a nil registry")
	}
	sub := fmt.Sprintf("%d samples every %d cycles · schema %s", r.Samples(), r.Interval(), SchemaVersion)
	doc := NewHTMLDoc(title, sub)
	times := r.Times()

	var meta [][2]string
	for _, k := range sortedKeys(r.meta) {
		meta = append(meta, [2]string{k, r.meta[k]})
	}
	if len(meta) > 0 {
		doc.Section("Run", MetaTable(meta))
	}

	// Cycle breakdown: the four stall categories as an interval stack.
	breakdown := r.chartSeriesFor(
		[]string{"stall.cpu", "stall.read", "stall.write", "stall.sync"},
		[]string{"busy", "read stall", "write stall", "sync stall"})
	if len(breakdown) > 0 {
		doc.Section("Cycle breakdown per interval", StackedAreaChart(times, breakdown, "cycles"))
	}

	traffic := r.chartSeriesFor(
		[]string{"net.msgs", "net.bytes"},
		[]string{"messages", "bytes"})
	if len(traffic) > 0 {
		doc.Section("Network traffic per interval", LineChart(times, traffic, "per interval"))
	}

	if labels, rows := r.seriesMatching("net.out_busy."); len(labels) > 0 {
		doc.Section("Link utilization: output-port busy cycles per interval", Heatmap(labels, times, rows, " cyc"))
	}
	if labels, rows := r.seriesMatching("net.backlog."); len(labels) > 0 {
		doc.Section("NIC backlog (committed cycles at sample)", Heatmap(labels, times, rows, " cyc"))
	}
	if labels, rows := r.seriesMatching("wb.depth."); len(labels) > 0 {
		doc.Section("Write-buffer depth per node", Heatmap(labels, times, rows, " entries"))
	}
	if labels, rows := r.seriesMatching("cb.depth."); len(labels) > 0 {
		doc.Section("Coalescing-buffer depth per node", Heatmap(labels, times, rows, " entries"))
	}

	proto := r.chartSeriesFor(
		[]string{"proto.pending_notices", "proto.acquire_waiters"},
		[]string{"pending notices", "acquire waiters"})
	if len(proto) > 0 {
		doc.Section("Protocol occupancy at sample", LineChart(times, proto, "count"))
	}

	dir := r.chartSeriesFor(
		[]string{"dir.uncached", "dir.shared", "dir.dirty", "dir.weak"},
		[]string{"uncached", "shared", "dirty", "weak"})
	if len(dir) > 0 {
		doc.Section("Directory state mix at sample", StackedAreaChart(times, dir, "blocks"))
	}

	var hists []*Histogram
	r.VisitHistograms(func(h *Histogram) { hists = append(hists, h) })
	if len(hists) > 0 {
		doc.Section("Latency quantiles (cycles)", QuantileTable(hists))
	}

	return doc.Render(w)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
