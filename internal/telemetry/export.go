package telemetry

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion identifies the JSONL export format. Bump it whenever the
// line shapes, the series naming convention, or the digest definition
// changes: consumers (the CI validator, the regression gate) refuse
// mismatched versions instead of misreading them.
const SchemaVersion = "lazyrc-metrics-v1"

// Header is the first line of every export.
type Header struct {
	Schema   string            `json:"schema"`
	Interval uint64            `json:"interval"`
	Samples  int               `json:"samples"`
	Series   int               `json:"series"`
	Hists    int               `json:"hists"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// timesLine is the tick-timestamp line (exactly one per export).
type timesLine struct {
	Kind   string   `json:"kind"`
	Cycles []uint64 `json:"cycles"`
}

// seriesLine is one time series.
type seriesLine struct {
	Kind   string    `json:"kind"`
	Name   string    `json:"name"`
	Mode   string    `json:"mode"`
	Points []float64 `json:"points"`
}

// histLine is one histogram with its sparse log₂ buckets and
// pre-computed quantiles.
type histLine struct {
	Kind    string      `json:"kind"`
	Name    string      `json:"name"`
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Min     uint64      `json:"min"`
	Max     uint64      `json:"max"`
	Buckets [][2]uint64 `json:"buckets,omitempty"`
	P50     float64     `json:"p50"`
	P90     float64     `json:"p90"`
	P99     float64     `json:"p99"`
}

// Export writes the registry as versioned JSONL: a header line, one
// times line, one line per series (sorted by name), one line per
// histogram (sorted by name). The byte stream is canonical — a pure
// function of the collected data — so its SHA-256 is a meaningful
// shape fingerprint.
func (r *Registry) Export(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("telemetry: exporting a nil registry")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := Header{
		Schema:   SchemaVersion,
		Interval: r.interval,
		Samples:  len(r.times),
		Series:   len(r.series),
		Hists:    len(r.hists),
		Meta:     r.meta,
	}
	if len(hdr.Meta) == 0 {
		hdr.Meta = nil
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("telemetry: encoding header: %w", err)
	}
	times := r.times
	if times == nil {
		times = []uint64{}
	}
	if err := enc.Encode(timesLine{Kind: "times", Cycles: times}); err != nil {
		return fmt.Errorf("telemetry: encoding times: %w", err)
	}
	for _, s := range r.sortedSeries() {
		pts := s.pts
		if pts == nil {
			pts = []float64{}
		}
		line := seriesLine{Kind: "series", Name: s.name, Mode: s.mode.String(), Points: pts}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("telemetry: encoding series %q: %w", s.name, err)
		}
	}
	for _, h := range r.sortedHists() {
		line := histLine{
			Kind: "hist", Name: h.name,
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			Buckets: h.Buckets(),
			P50:     h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("telemetry: encoding histogram %q: %w", h.name, err)
		}
	}
	return bw.Flush()
}

// Digest returns the hex SHA-256 of the canonical export — the shape
// fingerprint attached to runner results. Two runs with identical time
// series and histograms digest identically; any drift in when cycles
// were spent or where traffic flowed changes it, even when end-of-run
// totals happen to agree.
func (r *Registry) Digest() string {
	if r == nil {
		return ""
	}
	h := sha256.New()
	// Export to a hash never fails: every value is a plain scalar.
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		panic("telemetry: digest export failed: " + err.Error())
	}
	h.Write(buf.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}

// Validate reads a JSONL export and checks it against the schema: the
// header must carry the current SchemaVersion and accurate counts, the
// times line must be present with one timestamp per sample in strictly
// increasing order, every series must carry exactly one point per
// sample, and every histogram's bucket counts must sum to its count.
// It returns the parsed header on success.
func Validate(rd io.Reader) (Header, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	if !sc.Scan() {
		return Header{}, fmt.Errorf("telemetry: empty export")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Header{}, fmt.Errorf("telemetry: parsing header: %w", err)
	}
	if hdr.Schema != SchemaVersion {
		return hdr, fmt.Errorf("telemetry: schema %q, want %q", hdr.Schema, SchemaVersion)
	}
	var (
		nSeries, nHists int
		sawTimes        bool
	)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return hdr, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		switch probe.Kind {
		case "times":
			if sawTimes {
				return hdr, fmt.Errorf("telemetry: line %d: duplicate times line", lineNo)
			}
			sawTimes = true
			var tl timesLine
			if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
				return hdr, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			if len(tl.Cycles) != hdr.Samples {
				return hdr, fmt.Errorf("telemetry: line %d: %d timestamps, header says %d samples",
					lineNo, len(tl.Cycles), hdr.Samples)
			}
			for i := 1; i < len(tl.Cycles); i++ {
				if tl.Cycles[i] <= tl.Cycles[i-1] {
					return hdr, fmt.Errorf("telemetry: line %d: timestamps not strictly increasing at index %d", lineNo, i)
				}
			}
		case "series":
			nSeries++
			var sl seriesLine
			if err := json.Unmarshal(sc.Bytes(), &sl); err != nil {
				return hdr, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			if sl.Mode != "level" && sl.Mode != "delta" {
				return hdr, fmt.Errorf("telemetry: line %d: series %q has unknown mode %q", lineNo, sl.Name, sl.Mode)
			}
			if len(sl.Points) != hdr.Samples {
				return hdr, fmt.Errorf("telemetry: line %d: series %q has %d points, header says %d samples",
					lineNo, sl.Name, len(sl.Points), hdr.Samples)
			}
		case "hist":
			nHists++
			var hl histLine
			if err := json.Unmarshal(sc.Bytes(), &hl); err != nil {
				return hdr, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			var sum uint64
			for _, b := range hl.Buckets {
				if b[0] >= HistBuckets {
					return hdr, fmt.Errorf("telemetry: line %d: histogram %q bucket index %d out of range",
						lineNo, hl.Name, b[0])
				}
				sum += b[1]
			}
			if sum != hl.Count {
				return hdr, fmt.Errorf("telemetry: line %d: histogram %q buckets sum to %d, count is %d",
					lineNo, hl.Name, sum, hl.Count)
			}
		default:
			return hdr, fmt.Errorf("telemetry: line %d: unknown kind %q", lineNo, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return hdr, fmt.Errorf("telemetry: reading export: %w", err)
	}
	if !sawTimes {
		return hdr, fmt.Errorf("telemetry: export has no times line")
	}
	if nSeries != hdr.Series {
		return hdr, fmt.Errorf("telemetry: %d series lines, header says %d", nSeries, hdr.Series)
	}
	if nHists != hdr.Hists {
		return hdr, fmt.Errorf("telemetry: %d histogram lines, header says %d", nHists, hdr.Hists)
	}
	return hdr, nil
}

// ValidateFile validates the JSONL export at path.
func ValidateFile(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return Validate(f)
}

// Load reads a JSONL export back into a registry — the report renderer
// and offline tooling work from files the same way they work from a live
// registry. The export is validated structurally while loading.
func Load(rd io.Reader) (*Registry, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("telemetry: empty export")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("telemetry: parsing header: %w", err)
	}
	if hdr.Schema != SchemaVersion {
		return nil, fmt.Errorf("telemetry: schema %q, want %q", hdr.Schema, SchemaVersion)
	}
	reg := NewRegistry(hdr.Interval)
	for k, v := range hdr.Meta {
		reg.SetMeta(k, v)
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		switch probe.Kind {
		case "times":
			var tl timesLine
			if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			reg.times = tl.Cycles
		case "series":
			var sl seriesLine
			if err := json.Unmarshal(sc.Bytes(), &sl); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			mode := Level
			if sl.Mode == "delta" {
				mode = Delta
			}
			s := reg.Series(sl.Name, mode)
			s.pts = sl.Points
		case "hist":
			var hl histLine
			if err := json.Unmarshal(sc.Bytes(), &hl); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			h := reg.Histogram(hl.Name)
			h.count, h.sum, h.min, h.max = hl.Count, hl.Sum, hl.Min, hl.Max
			for _, b := range hl.Buckets {
				if err := h.setBucket(b[0], b[1]); err != nil {
					return nil, fmt.Errorf("telemetry: line %d: histogram %q: %w", lineNo, hl.Name, err)
				}
			}
		default:
			return nil, fmt.Errorf("telemetry: line %d: unknown kind %q", lineNo, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading export: %w", err)
	}
	return reg, nil
}
