package runner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lazyrc/internal/perf"
)

// ResultStore is the persistence contract the runner reuses results
// through: the flat JSONL Store in this package and the segment store in
// internal/store both satisfy it. Implementations must be safe for
// concurrent use.
type ResultStore interface {
	// Get returns the stored result for a fingerprint. The returned
	// result must be private to the caller (annotating it must not
	// mutate the store).
	Get(fp string) (*Result, bool)
	// Put records a completed result. Implementations must refuse
	// failed results — caching a crash would make it permanent.
	Put(r *Result) error
	// Recovered reports how many corrupt entries the store dropped
	// while loading (surfaced in the runner's execution record).
	Recovered() int
}

// Runner executes jobs on a bounded worker pool, deduplicating by
// fingerprint (two figures sharing a matrix point simulate it once, even
// when requested concurrently) and reusing results from an optional
// content-addressed store.
type Runner struct {
	// Progress, when non-nil, receives one line per job event (cache
	// hit, simulation start, failure). Calls may come from concurrent
	// workers; each call carries one complete line.
	Progress func(string)

	// Emit, when non-nil, receives every job lifecycle event (see
	// EventKind for the state machine). Set before the first Do; calls
	// may come from concurrent workers. The lrcsimd daemon points this
	// at its pub-sub bus.
	Emit func(Event)

	// HeartbeatEvery is the simulated-cycle cadence of progress
	// heartbeats from running jobs, delivered as EventHeartbeat through
	// Emit. Zero selects DefaultHeartbeatEvery. Heartbeats (and the
	// cancellation poll that shares their timer) are background engine
	// events and do not perturb the simulation: results are bit-identical
	// with and without them.
	HeartbeatEvery uint64

	workers int
	store   ResultStore
	sem     chan struct{}
	start   time.Time

	mu       sync.Mutex
	done     map[string]*Result
	inflight map[string]chan struct{}
	meta     Meta
	eventSeq uint64
	pending  int // Do calls in progress (queued, waiting, or running)
}

// Meta is the runner's execution record, attached to reports. Simulated,
// CacheHits, CacheMisses, and FailedJobs are deterministic for a given
// job set and cache state; Workers and WallMS are volatile provenance
// (how the results were obtained, not what they are) and are the only
// fields that may differ between a -j 1 and a -j 8 run. Canceled counts
// submissions abandoned by context cancellation — inherently volatile
// (it depends on when the cancel landed) and therefore, like the wall
// clock, excluded from Stable.
type Meta struct {
	Workers        int   `json:"workers"`
	WallMS         int64 `json:"wall_ms"`
	Simulated      int   `json:"simulated"`
	CacheHits      int   `json:"cache_hits"`
	CacheMisses    int   `json:"cache_misses"`
	FailedJobs     int   `json:"failed_jobs"`
	Canceled       int   `json:"canceled,omitempty"`
	CacheRecovered int   `json:"cache_recovered,omitempty"`

	// Perf aggregates the wall-clock phase profiles of every fresh
	// execution (cache hits contribute nothing — they did no simulated
	// work). Volatile provenance like WallMS, so zeroed in Stable.
	Perf *perf.Snapshot `json:"perf,omitempty"`
}

// Stable returns a copy with the volatile fields zeroed — the form used
// when byte-comparing reports across worker counts or machines.
func (m Meta) Stable() Meta {
	m.Workers = 0
	m.WallMS = 0
	m.Canceled = 0
	m.Perf = nil
	return m
}

// New returns a runner with the given concurrency (minimum 1) and an
// optional result store (nil disables caching). Pass an untyped nil for
// "no store": a typed nil pointer inside a non-nil interface would be
// dereferenced.
func New(workers int, store ResultStore) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{
		workers:  workers,
		store:    store,
		sem:      make(chan struct{}, workers),
		start:    time.Now(),
		done:     make(map[string]*Result),
		inflight: make(map[string]chan struct{}),
	}
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// PoolStats is a point-in-time view of the pool's wall-clock occupancy
// — observability provenance, never part of a result. Queued counts
// submissions that have entered Do but hold no worker slot yet
// (store lookups, dedup waiters, and jobs waiting for a slot).
type PoolStats struct {
	Workers int `json:"workers"`
	Running int `json:"running"`
	Queued  int `json:"queued"`
}

// Pool snapshots the pool occupancy.
func (r *Runner) Pool() PoolStats {
	r.mu.Lock()
	pending := r.pending
	r.mu.Unlock()
	running := len(r.sem)
	queued := pending - running
	if queued < 0 {
		queued = 0
	}
	return PoolStats{Workers: r.workers, Running: running, Queued: queued}
}

// Do executes one job, blocking until its result is available. Results
// are resolved in order: in-process memo, then in-flight duplicate, then
// the store, then a worker slot. Safe for concurrent use.
//
// Cancelling ctx abandons the submission promptly: a queued job returns
// a Canceled result without executing, and a job already simulating is
// stopped cooperatively (the engine halts at the next cancellation
// poll). Canceled results are never memoized or stored, so a later
// submission of the same fingerprint re-executes the job.
func (r *Runner) Do(ctx context.Context, job Job) *Result {
	fp := job.Fingerprint()
	r.account(func(*Meta) { r.pending++ })
	defer r.account(func(*Meta) { r.pending-- })
	r.emit(EventQueued, fp, job, 0, 0, "")
	attached := false
	for {
		if err := ctx.Err(); err != nil {
			res := canceledResult(fp, job, err)
			r.emit(EventCanceled, fp, job, 0, 0, res.Failure)
			r.account(func(m *Meta) { m.Canceled++ })
			return res
		}
		r.mu.Lock()
		if res, ok := r.done[fp]; ok {
			r.mu.Unlock()
			r.emit(EventDedup, fp, job, 0, 0, "")
			return res
		}
		wait, ok := r.inflight[fp]
		if !ok {
			r.inflight[fp] = make(chan struct{})
			r.mu.Unlock()
			break
		}
		r.mu.Unlock()
		if !attached {
			attached = true
			r.emit(EventDedup, fp, job, 0, 0, "")
		}
		select {
		case <-wait:
		case <-ctx.Done():
			// Keep looping: the top of the loop converts the
			// cancellation into a Canceled result.
		}
	}

	res := r.lead(ctx, fp, job)

	r.mu.Lock()
	if !res.Canceled {
		r.done[fp] = res
	}
	wait := r.inflight[fp]
	delete(r.inflight, fp)
	r.mu.Unlock()
	close(wait)
	return res
}

// lead resolves a fingerprint this goroutine owns: store lookup, then a
// worker slot and a simulation. The caller resolves the in-flight
// channel afterwards.
func (r *Runner) lead(ctx context.Context, fp string, job Job) *Result {
	if r.store != nil {
		lookStart := time.Now()
		if cached, ok := r.store.Get(fp); ok {
			cached.Cached = true
			r.note(fmt.Sprintf("cached  %s", job))
			r.emit(EventCached, fp, job, cached.ExecCycles, time.Since(lookStart).Nanoseconds(), "")
			r.account(func(m *Meta) { m.CacheHits++ })
			return cached
		}
		r.account(func(m *Meta) { m.CacheMisses++ })
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		res := canceledResult(fp, job, ctx.Err())
		r.emit(EventCanceled, fp, job, 0, 0, res.Failure)
		r.account(func(m *Meta) { m.Canceled++ })
		return res
	}
	r.note(fmt.Sprintf("running %s", job))
	r.emit(EventRunning, fp, job, 0, 0, "")
	hk := hooks{
		ctx:   ctx,
		every: r.HeartbeatEvery,
		beat:  func(cycle uint64) { r.emit(EventHeartbeat, fp, job, cycle, 0, "") },
	}
	if r.Emit == nil {
		hk.beat = nil
	}
	execStart := time.Now()
	res := execWith(job, hk)
	execNS := time.Since(execStart).Nanoseconds()
	<-r.sem
	r.account(func(m *Meta) { m.Simulated++ })
	switch {
	case res.Canceled:
		r.note(fmt.Sprintf("canceled %s", job))
		r.emit(EventCanceled, fp, job, 0, execNS, res.Failure)
		r.account(func(m *Meta) { m.Canceled++ })
	case res.Failed():
		r.note(fmt.Sprintf("FAILED  %s: %s", job, res.Failure))
		r.emit(EventFailed, fp, job, 0, execNS, res.Failure)
		r.account(func(m *Meta) { m.FailedJobs++ })
	default:
		if r.store != nil {
			if err := r.store.Put(res); err != nil {
				r.note(fmt.Sprintf("cache write failed: %v", err))
			}
		}
		if res.Perf != nil {
			snap := *res.Perf
			r.account(func(m *Meta) {
				if m.Perf == nil {
					m.Perf = &perf.Snapshot{}
				}
				m.Perf.Add(snap)
			})
		}
		r.emit(EventDone, fp, job, res.ExecCycles, execNS, "")
	}
	return res
}

// DoAll runs a batch of jobs concurrently (bounded by the pool size) and
// returns their results in the order given, so rendering from a DoAll
// slice is deterministic regardless of completion order. On context
// cancellation it still returns a full slice promptly — unstarted jobs
// come back as Canceled results.
func (r *Runner) DoAll(ctx context.Context, jobs []Job) []*Result {
	out := make([]*Result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			out[i] = r.Do(ctx, j)
		}(i, j)
	}
	wg.Wait()
	return out
}

// Meta snapshots the execution record.
func (r *Runner) Meta() Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.meta
	m.Workers = r.workers
	m.WallMS = time.Since(r.start).Milliseconds()
	if r.store != nil {
		m.CacheRecovered = r.store.Recovered()
	}
	return m
}

func (r *Runner) account(f func(*Meta)) {
	r.mu.Lock()
	f(&r.meta)
	r.mu.Unlock()
}

func (r *Runner) note(line string) {
	if r.Progress == nil {
		return
	}
	r.mu.Lock()
	p := r.Progress
	r.mu.Unlock()
	if p != nil {
		p(line)
	}
}
