package runner

import (
	"fmt"
	"sync"
	"time"
)

// Runner executes jobs on a bounded worker pool, deduplicating by
// fingerprint (two figures sharing a matrix point simulate it once, even
// when requested concurrently) and reusing results from an optional
// content-addressed store.
type Runner struct {
	// Progress, when non-nil, receives one line per job event (cache
	// hit, simulation start, failure). Calls may come from concurrent
	// workers; each call carries one complete line.
	Progress func(string)

	workers int
	store   *Store
	sem     chan struct{}
	start   time.Time

	mu       sync.Mutex
	done     map[string]*Result
	inflight map[string]chan struct{}
	meta     Meta
}

// Meta is the runner's execution record, attached to reports. Simulated,
// CacheHits, CacheMisses, and FailedJobs are deterministic for a given
// job set and cache state; Workers and WallMS are volatile provenance
// (how the results were obtained, not what they are) and are the only
// fields that may differ between a -j 1 and a -j 8 run.
type Meta struct {
	Workers        int   `json:"workers"`
	WallMS         int64 `json:"wall_ms"`
	Simulated      int   `json:"simulated"`
	CacheHits      int   `json:"cache_hits"`
	CacheMisses    int   `json:"cache_misses"`
	FailedJobs     int   `json:"failed_jobs"`
	CacheRecovered int   `json:"cache_recovered,omitempty"`
}

// Stable returns a copy with the volatile fields zeroed — the form used
// when byte-comparing reports across worker counts or machines.
func (m Meta) Stable() Meta {
	m.Workers = 0
	m.WallMS = 0
	return m
}

// New returns a runner with the given concurrency (minimum 1) and an
// optional result store (nil disables caching).
func New(workers int, store *Store) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{
		workers:  workers,
		store:    store,
		sem:      make(chan struct{}, workers),
		start:    time.Now(),
		done:     make(map[string]*Result),
		inflight: make(map[string]chan struct{}),
	}
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// Do executes one job, blocking until its result is available. Results
// are resolved in order: in-process memo, then in-flight duplicate, then
// the store, then a worker slot. Safe for concurrent use.
func (r *Runner) Do(job Job) *Result {
	fp := job.Fingerprint()
	for {
		r.mu.Lock()
		if res, ok := r.done[fp]; ok {
			r.mu.Unlock()
			return res
		}
		wait, ok := r.inflight[fp]
		if !ok {
			r.inflight[fp] = make(chan struct{})
			r.mu.Unlock()
			break
		}
		r.mu.Unlock()
		<-wait
	}

	var res *Result
	if r.store != nil {
		if cached, ok := r.store.Get(fp); ok {
			cached.Cached = true
			res = cached
			r.note(fmt.Sprintf("cached  %s", job))
			r.account(func(m *Meta) { m.CacheHits++ })
		}
	}
	if res == nil {
		if r.store != nil {
			r.account(func(m *Meta) { m.CacheMisses++ })
		}
		r.sem <- struct{}{}
		r.note(fmt.Sprintf("running %s", job))
		res = Exec(job)
		<-r.sem
		r.account(func(m *Meta) { m.Simulated++ })
		if res.Failed() {
			r.note(fmt.Sprintf("FAILED  %s: %s", job, res.Failure))
			r.account(func(m *Meta) { m.FailedJobs++ })
		} else if r.store != nil {
			if err := r.store.Put(res); err != nil {
				r.note(fmt.Sprintf("cache write failed: %v", err))
			}
		}
	}

	r.mu.Lock()
	r.done[fp] = res
	wait := r.inflight[fp]
	delete(r.inflight, fp)
	r.mu.Unlock()
	close(wait)
	return res
}

// DoAll runs a batch of jobs concurrently (bounded by the pool size) and
// returns their results in the order given, so rendering from a DoAll
// slice is deterministic regardless of completion order.
func (r *Runner) DoAll(jobs []Job) []*Result {
	out := make([]*Result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			out[i] = r.Do(j)
		}(i, j)
	}
	wg.Wait()
	return out
}

// Meta snapshots the execution record.
func (r *Runner) Meta() Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.meta
	m.Workers = r.workers
	m.WallMS = time.Since(r.start).Milliseconds()
	if r.store != nil {
		m.CacheRecovered = r.store.Recovered()
	}
	return m
}

func (r *Runner) account(f func(*Meta)) {
	r.mu.Lock()
	f(&r.meta)
	r.mu.Unlock()
}

func (r *Runner) note(line string) {
	if r.Progress == nil {
		return
	}
	r.mu.Lock()
	p := r.Progress
	r.mu.Unlock()
	if p != nil {
		p(line)
	}
}
