package runner

// Job lifecycle events. The runner is the single source of truth for job
// state: every transition a job makes — submitted, deduplicated against
// an identical in-flight or finished job, served from the store, started
// on a worker, progressed (a cycle-count heartbeat from the running
// simulation), and finished — is announced through the Emit hook. The
// lrcsimd daemon routes these onto its pub-sub bus; the batch CLIs leave
// Emit nil and pay nothing.

// EventKind names one job lifecycle transition.
type EventKind string

// The job lifecycle state machine:
//
//	queued ──┬─(identical job already done or in flight)──► dedup
//	         ├─(result found in the store)────────────────► cached
//	         └─(worker slot acquired)─────────────────────► running
//	running ──(heartbeat every HeartbeatEvery cycles)─────► running
//	running ──┬────────────────────────────────────────────► done
//	          ├─(panic / construction error)───────────────► failed
//	          └─(submission context canceled)──────────────► canceled
//
// dedup, cached, done, failed, and canceled are terminal for the
// submission (a deduplicated submission resolves to whatever its leader
// produced).
const (
	EventQueued    EventKind = "queued"
	EventDedup     EventKind = "dedup"
	EventCached    EventKind = "cached"
	EventRunning   EventKind = "running"
	EventHeartbeat EventKind = "heartbeat"
	EventDone      EventKind = "done"
	EventFailed    EventKind = "failed"
	EventCanceled  EventKind = "canceled"
)

// Event is one job lifecycle announcement. Seq is a runner-global,
// strictly increasing sequence number assigned at emission, so consumers
// can order events from concurrent workers.
type Event struct {
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`
	// FP is the job's content fingerprint — the stable identity every
	// consumer keys on.
	FP string `json:"fp"`
	// App, Scale, Proto, and Procs identify the job for human consumers
	// (the label Job.String renders from).
	App   string `json:"app"`
	Scale string `json:"scale"`
	Proto string `json:"proto"`
	Procs int    `json:"procs"`
	// Cycle carries simulated progress: the current simulation cycle on a
	// heartbeat, the final execution time on done.
	Cycle uint64 `json:"cycle,omitempty"`
	// WallNS carries the wall-clock duration of the resolution on the
	// terminal events that have one: store lookup time on cached,
	// execution time on done/failed. Provenance — it differs per host
	// and run, so nothing deterministic may consume it.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Err carries the failure text on failed and canceled events.
	Err string `json:"err,omitempty"`
}

// emit publishes one lifecycle event through the Emit hook, assigning
// the sequence number. Safe to call from concurrent workers; a nil hook
// makes it free. wallNS stamps the event's resolution duration (0 for
// events without one).
func (r *Runner) emit(kind EventKind, fp string, j Job, cycle uint64, wallNS int64, errText string) {
	emit := r.Emit
	if emit == nil {
		return
	}
	r.mu.Lock()
	r.eventSeq++
	seq := r.eventSeq
	r.mu.Unlock()
	emit(Event{
		Seq:    seq,
		Kind:   kind,
		FP:     fp,
		App:    j.App,
		Scale:  j.Scale.String(),
		Proto:  j.Proto,
		Procs:  j.Cfg.Procs,
		Cycle:  cycle,
		WallNS: wallNS,
		Err:    errText,
	})
}
