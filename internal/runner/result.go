package runner

import (
	"context"
	"errors"
	"fmt"

	"lazyrc/internal/apps"
	"lazyrc/internal/check"
	"lazyrc/internal/machine"
	"lazyrc/internal/perf"
	"lazyrc/internal/sim"
	"lazyrc/internal/stats"
)

// Result is one job's measurements. It is the unit stored in the
// content-addressed cache, so every field that downstream consumers read
// must round-trip exactly through JSON: integers are exact by
// construction, and Go's float64 encoding is shortest-form and
// re-parses bit-identically, so a cache-served result renders the same
// report bytes as a freshly simulated one.
type Result struct {
	Fingerprint string `json:"fp"`
	App         string `json:"app"`
	Scale       string `json:"scale"`
	Proto       string `json:"proto"`

	ExecCycles  uint64 `json:"exec_cycles"`
	CPUCycles   uint64 `json:"cpu_cycles"`
	ReadCycles  uint64 `json:"read_cycles"`
	WriteCycles uint64 `json:"write_cycles"`
	SyncCycles  uint64 `json:"sync_cycles"`

	MissRate   float64                     `json:"miss_rate"`
	MissShares [stats.NumMissKinds]float64 `json:"miss_shares"`

	Msgs  uint64 `json:"network_msgs"`
	Bytes uint64 `json:"network_bytes"`

	// MetricsDigest is the SHA-256 of the run's canonical telemetry
	// export (fixed sampling interval; see metricsInterval). Telemetry is
	// cycle-domain and engine-driven, so the digest is identical across
	// worker counts and machines — the regression gate compares it to
	// catch shape drift that end-of-run totals would miss.
	MetricsDigest string `json:"metrics_digest,omitempty"`

	// Spans counts the causal spans the run's coherence and
	// synchronization activity produced; SpanDigest is their stream
	// fingerprint (causal.Tracer.Digest, "<count>-<hash>"). Spans are
	// recorded in digest-only mode — the runner wants the determinism
	// fingerprint, not the store — and, like the metrics digest, the
	// value is identical across worker counts and machines, so the
	// regression gate compares it to catch protocol-behaviour drift
	// that leaves end-of-run totals untouched.
	Spans      uint64 `json:"spans,omitempty"`
	SpanDigest string `json:"span_digest,omitempty"`

	// MemDigest is the SHA-256 of the machine's final shared-memory image
	// and Completed reports whether every processor finished. Together
	// they are the end-state half of the chaos oracle: a faulted run must
	// reproduce the fault-free same-seed run's digest and completion
	// exactly, or the reliable transport leaked a loss into application
	// state.
	MemDigest string `json:"mem_digest,omitempty"`
	Completed bool   `json:"completed"`

	// CheckErr records a protocol-invariant violation (epoch or
	// quiescence audit) or a liveness-watchdog trip. Guards run only for
	// faulted jobs (Cfg.FaultPlan != ""); fault-free jobs leave it empty.
	CheckErr string `json:"check_err,omitempty"`

	// Transport counters, nonzero only under fault injection: messages
	// the injector faulted, losses the transport retransmitted around,
	// and duplicate or stale arrivals the receivers suppressed.
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	Retransmits    uint64 `json:"retransmits,omitempty"`
	DupSuppressed  uint64 `json:"dup_suppressed,omitempty"`

	// VerifyErr records a deterministic numerical-verification failure.
	// Such results are still cacheable: the same job always fails the
	// same way.
	VerifyErr string `json:"verify_err,omitempty"`

	// Failure records an execution failure — a panic inside the
	// simulation or an error constructing the machine or application.
	// Failed results are never cached, so a rerun retries the job.
	Failure string `json:"-"`

	// Cached marks a result served from the store rather than simulated.
	// Provenance only; never serialized, never rendered.
	Cached bool `json:"-"`

	// Canceled marks a submission abandoned by context cancellation —
	// either before it started or stopped mid-simulation. Canceled
	// results are never memoized or stored; a later submission of the
	// same job re-executes it. Provenance only, like Cached.
	Canceled bool `json:"-"`

	// Perf is the execution's wall-clock phase profile. Provenance only,
	// like Cached: it varies by host and load, so it is never serialized
	// into the store (cache-served results carry none), never part of
	// the fingerprint, and never rendered into stable reports.
	Perf *perf.Snapshot `json:"-"`
}

// Failed reports whether the job crashed (as opposed to completing,
// possibly with a verification error).
func (r *Result) Failed() bool { return r.Failure != "" }

// Err folds both failure modes into one error: nil for a clean run, the
// failure for a crashed job, the verification error otherwise.
func (r *Result) Err() error {
	switch {
	case r.Failure != "":
		return errors.New(r.Failure)
	case r.VerifyErr != "":
		return errors.New(r.VerifyErr)
	}
	return nil
}

// simulate executes one job and fills in its measurements. It is a
// package variable so tests can substitute a crashing body to exercise
// panic capture.
// metricsInterval is the fixed telemetry sampling interval for runner
// jobs. Part of the result contract: changing it changes every metrics
// digest, so bump fingerprintVersion with it.
const metricsInterval = 4096

// Guard cadences for faulted jobs: invariant audits every checkEpoch
// cycles, and a liveness watchdog that stops a run making no progress for
// watchdogQuiet cycles (a lost message the transport failed to recover
// would otherwise hang the sweep).
const (
	checkEpoch    = 10000
	watchdogQuiet = 200000
)

// cancelPollEvery is the simulated-cycle cadence at which a hooked run
// checks its submission context; DefaultHeartbeatEvery is the default
// cadence of progress heartbeats. Both fire as background engine events
// (observers that mutate nothing), so a hooked run is bit-identical to
// an unhooked one — pinned by TestHookedExecIsByteIdentical.
const (
	cancelPollEvery       = 4096
	DefaultHeartbeatEvery = 1 << 18
)

// hooks carries the runner's per-execution instrumentation into the
// simulation: a cancellation context polled on the simulated clock and a
// heartbeat callback reporting the current cycle. The zero value (used
// by plain Exec) installs nothing.
type hooks struct {
	ctx   context.Context
	beat  func(cycle uint64)
	every uint64 // heartbeat cadence in cycles; 0 = DefaultHeartbeatEvery
}

// active reports whether the hooks need the in-run poller at all.
func (h hooks) active() bool {
	return (h.ctx != nil && h.ctx.Done() != nil) || h.beat != nil
}

// canceled reports whether the submission context is dead.
func (h hooks) canceled() bool {
	return h.ctx != nil && h.ctx.Err() != nil
}

// install attaches the poll/heartbeat background prober to a built
// machine. It reschedules itself every cancelPollEvery cycles; when the
// context dies it stops the engine instead of rescheduling, and every
// `every` cycles it reports the current cycle through beat.
func (h hooks) install(m *machine.Machine) {
	every := h.every
	if every == 0 {
		every = DefaultHeartbeatEvery
	}
	var nextBeat uint64 = every
	var tick func()
	tick = func() {
		if h.canceled() {
			m.Eng.Stop()
			return
		}
		now := m.Eng.Now()
		if h.beat != nil && now >= nextBeat {
			h.beat(now)
			for nextBeat <= now {
				nextBeat += every
			}
		}
		m.Eng.Background(now+cancelPollEvery, tick)
	}
	m.Eng.Background(m.Eng.Now()+cancelPollEvery, tick)
}

// canceledResult is the record returned for a submission abandoned
// before (or while) executing.
func canceledResult(fp string, j Job, cause error) *Result {
	msg := "canceled"
	if cause != nil {
		msg = "canceled: " + cause.Error()
	}
	return &Result{
		Fingerprint: fp,
		App:         j.App,
		Scale:       j.Scale.String(),
		Proto:       j.Proto,
		Failure:     msg,
		Canceled:    true,
	}
}

var simulate = func(j Job, res *Result, hk hooks) error {
	app, err := apps.New(j.App, j.Scale)
	if err != nil {
		return err
	}
	if err := j.Cfg.Validate(); err != nil {
		return err
	}
	// Faulted jobs run guarded: a protocol-invariant auditor audits every
	// epoch and at quiescence, and a watchdog converts a transport-level
	// hang into a recorded failure instead of a stuck worker. Fault-free
	// jobs take the exact unguarded path (both guards are background-only,
	// but keeping them off preserves the pre-chaos runner byte for byte).
	var aud *check.Auditor
	var stalled string
	preRun := func(m *machine.Machine) {
		aud = check.New(m)
		aud.Start(checkEpoch)
		m.EnableWatchdog(watchdogQuiet, func(r sim.StallReport) {
			if stalled == "" {
				stalled = r.String()
			}
			m.Eng.Stop()
		})
	}
	if j.Cfg.FaultPlan == "" {
		preRun = nil
	}
	if hk.active() {
		guard := preRun
		preRun = func(m *machine.Machine) {
			if guard != nil {
				guard(m)
			}
			hk.install(m)
		}
	}
	// Every runner execution is profiled: perf accounting is passive
	// (pinned by TestPerfIsPassive) and costs two MemStats reads plus
	// nanosecond-scale phase switches, while the snapshot feeds the
	// runner's throughput meta, the live daemon gauges, and paperbench's
	// trend/gate machinery. EnablePerf runs first so the profiler exists
	// before any guard machinery schedules events.
	{
		inner := preRun
		preRun = func(m *machine.Machine) {
			m.EnablePerf()
			if inner != nil {
				inner(m)
			}
		}
	}
	m, reg, verr := apps.RunTracedWith(j.Cfg, j.Proto, app, metricsInterval, preRun)
	if m == nil {
		// No machine means construction failed (unknown protocol, bad
		// config): an execution failure, not a deterministic
		// verification result.
		return verr
	}
	if verr != nil {
		res.VerifyErr = verr.Error()
	}
	if m != nil {
		cpu, rd, wr, sy := m.Stats.Aggregate()
		res.ExecCycles = m.Stats.ExecutionTime()
		res.CPUCycles, res.ReadCycles, res.WriteCycles, res.SyncCycles = cpu, rd, wr, sy
		res.MissRate = m.Stats.MissRate()
		res.MissShares = m.Stats.MissShares()
		res.Msgs, res.Bytes = m.Net.Stats()
		res.MetricsDigest = reg.Digest()
		res.Spans = m.Causal.Count()
		res.SpanDigest = m.Causal.Digest()
		res.MemDigest = m.MemDigest()
		res.Completed = m.Completed()
		if m.Perf != nil {
			snap := m.Perf.Snapshot()
			res.Perf = &snap
		}
		reord, delay, dup, drop := m.Net.FaultStats()
		retx, _, outage, brown, _, _ := m.Net.TransportStats()
		res.FaultsInjected = reord + delay + dup + drop + outage + brown
		res.Retransmits = retx
		res.DupSuppressed = m.DuplicatesIgnored()
		if aud != nil {
			aud.Final()
			switch {
			case stalled != "":
				res.CheckErr = "watchdog: " + stalled
			case aud.Err() != nil:
				res.CheckErr = aud.Err().Error()
			default:
				if qerr := m.CheckQuiescent(); qerr != nil {
					res.CheckErr = qerr.Error()
				}
			}
		}
	}
	return nil
}

// Exec runs one job synchronously. A panic anywhere inside the
// simulation is captured into the result's Failure field — one crashing
// run yields a failed-job record, not a dead sweep.
func Exec(j Job) *Result { return execWith(j, hooks{}) }

// ExecTraced re-runs a job with full causal-span retention and returns
// the finished machine, for on-demand trace export (the lrcsimd trace
// endpoint). Tracing is passive — the simulated schedule is bit-identical
// to an untraced run — but retained spans cost memory, so this path is
// separate from the cached result pipeline. A panic is returned as an
// error, not propagated.
func ExecTraced(j Job) (m *machine.Machine, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	app, aerr := apps.New(j.App, j.Scale)
	if aerr != nil {
		return nil, aerr
	}
	if verr := j.Cfg.Validate(); verr != nil {
		return nil, verr
	}
	m, _, _ = apps.RunTracedWith(j.Cfg, j.Proto, app, metricsInterval,
		func(m *machine.Machine) { m.EnableSpans(true, 0) })
	if m == nil {
		return nil, errors.New("runner: trace run produced no machine")
	}
	return m, nil
}

// execWith is Exec with the runner's per-execution hooks: a cancellation
// context polled on the simulated clock and a heartbeat callback. A run
// stopped by cancellation is marked Canceled (unless it had already
// completed — a cancel that races a clean finish keeps the result).
func execWith(j Job, hk hooks) *Result {
	res := &Result{
		Fingerprint: j.Fingerprint(),
		App:         j.App,
		Scale:       j.Scale.String(),
		Proto:       j.Proto,
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Failure = fmt.Sprintf("panic: %v", p)
			}
		}()
		if err := simulate(j, res, hk); err != nil {
			res.Failure = err.Error()
		}
	}()
	if hk.canceled() && !res.Completed {
		res.Canceled = true
		res.Failure = "canceled: " + hk.ctx.Err().Error()
		res.VerifyErr, res.CheckErr = "", ""
	}
	return res
}
