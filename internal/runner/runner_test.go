package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
)

func tinyJob(app, proto string) Job {
	cfg := config.Default(4)
	cfg.CacheSize = 2 << 10
	cfg.Seed = 1
	return Job{App: app, Scale: apps.Tiny, Proto: proto, Cfg: cfg}
}

func TestFingerprintIsContentAddressed(t *testing.T) {
	a, b := tinyJob("gauss", "lrc"), tinyJob("gauss", "lrc")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical jobs fingerprint differently")
	}
	mutations := []func(*Job){
		func(j *Job) { j.App = "fft" },
		func(j *Job) { j.Proto = "erc" },
		func(j *Job) { j.Scale = apps.Small },
		func(j *Job) { j.Cfg.DirCostLRC++ },
		func(j *Job) { j.Cfg.Seed++ },
		func(j *Job) { j.Cfg.FaultPlan = "dup=0.01:8" },
	}
	seen := map[string]bool{a.Fingerprint(): true}
	for i, mut := range mutations {
		j := tinyJob("gauss", "lrc")
		mut(&j)
		fp := j.Fingerprint()
		if seen[fp] {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
		seen[fp] = true
	}
}

func TestExecCapturesErrors(t *testing.T) {
	res := Exec(tinyJob("no-such-app", "lrc"))
	if !res.Failed() || res.Err() == nil {
		t.Fatalf("unknown app should fail: %+v", res)
	}
	bad := tinyJob("gauss", "lrc")
	bad.Cfg.CacheSize = 7 // fails Validate
	if res := Exec(bad); !res.Failed() {
		t.Fatal("invalid config should fail")
	}
}

func TestExecCapturesPanics(t *testing.T) {
	orig := simulate
	defer func() { simulate = orig }()
	simulate = func(j Job, res *Result, hk hooks) error { panic("simulated crash") }

	res := Exec(tinyJob("gauss", "lrc"))
	if !res.Failed() || !strings.Contains(res.Failure, "simulated crash") {
		t.Fatalf("panic not captured: %+v", res)
	}
	// A crashing job must not take down a concurrent batch: the other
	// results come back failed (this stub crashes everything) rather
	// than the batch dying.
	r := New(4, nil)
	results := r.DoAll(context.Background(), []Job{tinyJob("gauss", "lrc"), tinyJob("fft", "lrc")})
	for _, res := range results {
		if res == nil || !res.Failed() {
			t.Fatalf("batch result not a failure record: %+v", res)
		}
	}
	if m := r.Meta(); m.FailedJobs != 2 {
		t.Fatalf("failed jobs = %d, want 2", m.FailedJobs)
	}
}

func TestRunnerDeduplicatesByFingerprint(t *testing.T) {
	r := New(4, nil)
	job := tinyJob("gauss", "sc")
	jobs := []Job{job, job, job, tinyJob("fft", "sc")}
	results := r.DoAll(context.Background(), jobs)
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatal("duplicate jobs produced distinct result objects")
	}
	if m := r.Meta(); m.Simulated != 2 {
		t.Fatalf("simulated = %d, want 2 (deduplication failed)", m.Simulated)
	}
	// The memo serves later Do calls without re-simulation.
	if got := r.Do(context.Background(), job); got != results[0] {
		t.Fatal("memoized result not reused")
	}
	if m := r.Meta(); m.Simulated != 2 {
		t.Fatal("memoized Do re-simulated")
	}
}

func TestRunnerConcurrencyBound(t *testing.T) {
	orig := simulate
	defer func() { simulate = orig }()
	var mu sync.Mutex
	active, peak := 0, 0
	gate := make(chan struct{})
	simulate = func(j Job, res *Result, hk hooks) error {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		<-gate
		mu.Lock()
		active--
		mu.Unlock()
		return nil
	}

	r := New(2, nil)
	jobs := make([]Job, 6)
	for i := range jobs {
		j := tinyJob("gauss", "sc")
		j.Cfg.Seed = uint64(i + 1) // distinct fingerprints
		jobs[i] = j
	}
	done := make(chan []*Result)
	go func() { done <- r.DoAll(context.Background(), jobs) }()
	close(gate)
	<-done
	if peak > 2 {
		t.Fatalf("observed %d concurrent simulations, pool size 2", peak)
	}
}

// TestResultsIdenticalAcrossWorkerCounts runs the same small batch
// serially and with 8 workers and requires byte-identical serialized
// results — the foundation of the paperbench -j guarantee.
func TestResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jobs := []Job{
		tinyJob("gauss", "sc"), tinyJob("gauss", "erc"),
		tinyJob("gauss", "lrc"), tinyJob("fft", "lrc"),
		tinyJob("mp3d", "lrc"), tinyJob("mp3d", "erc"),
	}
	marshal := func(results []*Result) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := marshal(New(1, nil).DoAll(context.Background(), jobs))
	parallel := marshal(New(8, nil).DoAll(context.Background(), jobs))
	if !bytes.Equal(serial, parallel) {
		t.Fatal("results differ between 1 and 8 workers")
	}
}

// TestMetricsDigestIdenticalAcrossWorkerCounts pins the telemetry half
// of the -j guarantee explicitly: every result carries a metrics digest,
// and the digest of each run — a fingerprint of its whole cycle-domain
// shape, not just end-of-run totals — is identical whether the batch ran
// serially or on 8 workers.
func TestMetricsDigestIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jobs := []Job{
		tinyJob("gauss", "sc"), tinyJob("gauss", "lrc"),
		tinyJob("fft", "lrc"), tinyJob("mp3d", "erc"),
	}
	serial := New(1, nil).DoAll(context.Background(), jobs)
	parallel := New(8, nil).DoAll(context.Background(), jobs)
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if s.MetricsDigest == "" {
			t.Fatalf("%s/%s: no metrics digest attached", s.App, s.Proto)
		}
		if s.MetricsDigest != p.MetricsDigest {
			t.Fatalf("%s/%s: digest differs between -j1 and -j8: %s vs %s",
				s.App, s.Proto, s.MetricsDigest, p.MetricsDigest)
		}
	}
}

// TestSpanDigestIdenticalAcrossWorkerCounts pins the causal-tracing half
// of the -j guarantee: every result carries a span-stream digest — a
// fingerprint of every coherence transaction, stall episode, and message
// flight the run produced — identical between a serial and an 8-worker
// batch, and stable across repeated seeded runs of the same job.
func TestSpanDigestIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jobs := []Job{
		tinyJob("gauss", "sc"), tinyJob("gauss", "lrc"),
		tinyJob("fft", "lrc"), tinyJob("mp3d", "erc"),
	}
	serial := New(1, nil).DoAll(context.Background(), jobs)
	parallel := New(8, nil).DoAll(context.Background(), jobs)
	rerun := New(1, nil).DoAll(context.Background(), jobs)
	for i := range jobs {
		s, p, r := serial[i], parallel[i], rerun[i]
		if s.SpanDigest == "" || s.Spans == 0 {
			t.Fatalf("%s/%s: no span digest attached (%d spans, %q)",
				s.App, s.Proto, s.Spans, s.SpanDigest)
		}
		if s.SpanDigest != p.SpanDigest {
			t.Fatalf("%s/%s: span digest differs between -j1 and -j8: %s vs %s",
				s.App, s.Proto, s.SpanDigest, p.SpanDigest)
		}
		if s.SpanDigest != r.SpanDigest {
			t.Fatalf("%s/%s: span digest differs across repeated seeded runs: %s vs %s",
				s.App, s.Proto, s.SpanDigest, r.SpanDigest)
		}
	}
}

// TestDoCanceledBeforeStart: a dead context abandons the submission
// without simulating, and the abandonment is not memoized — a later live
// submission of the same job executes it.
func TestDoCanceledBeforeStart(t *testing.T) {
	r := New(2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := r.Do(ctx, tinyJob("gauss", "sc"))
	if !res.Canceled || !res.Failed() {
		t.Fatalf("pre-canceled Do returned %+v", res)
	}
	if m := r.Meta(); m.Simulated != 0 || m.Canceled != 1 {
		t.Fatalf("meta after canceled Do: %+v", m)
	}
	if res := r.Do(context.Background(), tinyJob("gauss", "sc")); res.Canceled || res.Failed() {
		t.Fatalf("live resubmission did not execute: %+v", res)
	}
	if m := r.Meta(); m.Simulated != 1 {
		t.Fatalf("resubmission meta: %+v", m)
	}
}

// TestDoAllReturnsPromptlyOnCancel: with in-flight jobs blocked on the
// submission context, cancelling it drains the whole batch — running
// jobs come back Canceled, queued jobs never start.
func TestDoAllReturnsPromptlyOnCancel(t *testing.T) {
	orig := simulate
	defer func() { simulate = orig }()
	started := make(chan struct{}, 16)
	simulate = func(j Job, res *Result, hk hooks) error {
		started <- struct{}{}
		<-hk.ctx.Done() // cooperative: block until canceled
		return nil
	}

	r := New(2, nil)
	jobs := make([]Job, 5)
	for i := range jobs {
		j := tinyJob("gauss", "sc")
		j.Cfg.Seed = uint64(i + 1)
		jobs[i] = j
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []*Result)
	go func() { done <- r.DoAll(ctx, jobs) }()
	<-started
	<-started // both workers occupied
	cancel()
	select {
	case results := <-done:
		for i, res := range results {
			if !res.Canceled {
				t.Fatalf("job %d not canceled: %+v", i, res)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DoAll did not return after cancellation")
	}
	if m := r.Meta(); m.Canceled != 5 {
		t.Fatalf("canceled = %d, want 5", m.Canceled)
	}
}

// TestCancellationStopsRealSimulation cancels mid-flight and requires
// the engine-level poll to stop the run. Timing-tolerant: if the job
// finishes before the cancel lands, the completed result is kept — that
// is the documented race resolution — and the test skips.
func TestCancellationStopsRealSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	job := Job{App: "gauss", Scale: apps.Small, Proto: "lrc", Cfg: config.Default(16)}
	job.Cfg.CacheSize = 8 << 10
	job.Cfg.Seed = 1
	r := New(1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Result)
	go func() { done <- r.Do(ctx, job) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Completed {
			t.Skip("job completed before the cancel landed")
		}
		if !res.Canceled {
			t.Fatalf("incomplete run not marked canceled: %+v", res)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled simulation did not stop")
	}
}

// TestHookedExecIsByteIdentical pins that the daemon's in-run
// instrumentation (cancellation poll + heartbeat prober) is invisible to
// the simulation: a hooked execution serializes bit-identically to a
// plain one, while actually delivering ascending heartbeats.
func TestHookedExecIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	job := tinyJob("gauss", "lrc")
	plain := Exec(job)
	if plain.Failed() {
		t.Fatalf("plain run failed: %s", plain.Failure)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var beats []uint64
	hooked := execWith(job, hooks{
		ctx:   ctx,
		every: 8192,
		beat:  func(c uint64) { beats = append(beats, c) },
	})
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(hooked)
	if !bytes.Equal(a, b) {
		t.Fatalf("hooked run differs from plain run:\n%s\n%s", a, b)
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats delivered")
	}
	for i := 1; i < len(beats); i++ {
		if beats[i] <= beats[i-1] {
			t.Fatalf("heartbeat cycles not ascending: %v", beats)
		}
	}
}
