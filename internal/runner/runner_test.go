package runner

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
)

func tinyJob(app, proto string) Job {
	cfg := config.Default(4)
	cfg.CacheSize = 2 << 10
	cfg.Seed = 1
	return Job{App: app, Scale: apps.Tiny, Proto: proto, Cfg: cfg}
}

func TestFingerprintIsContentAddressed(t *testing.T) {
	a, b := tinyJob("gauss", "lrc"), tinyJob("gauss", "lrc")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical jobs fingerprint differently")
	}
	mutations := []func(*Job){
		func(j *Job) { j.App = "fft" },
		func(j *Job) { j.Proto = "erc" },
		func(j *Job) { j.Scale = apps.Small },
		func(j *Job) { j.Cfg.DirCostLRC++ },
		func(j *Job) { j.Cfg.Seed++ },
		func(j *Job) { j.Cfg.FaultPlan = "dup=0.01:8" },
	}
	seen := map[string]bool{a.Fingerprint(): true}
	for i, mut := range mutations {
		j := tinyJob("gauss", "lrc")
		mut(&j)
		fp := j.Fingerprint()
		if seen[fp] {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
		seen[fp] = true
	}
}

func TestExecCapturesErrors(t *testing.T) {
	res := Exec(tinyJob("no-such-app", "lrc"))
	if !res.Failed() || res.Err() == nil {
		t.Fatalf("unknown app should fail: %+v", res)
	}
	bad := tinyJob("gauss", "lrc")
	bad.Cfg.CacheSize = 7 // fails Validate
	if res := Exec(bad); !res.Failed() {
		t.Fatal("invalid config should fail")
	}
}

func TestExecCapturesPanics(t *testing.T) {
	orig := simulate
	defer func() { simulate = orig }()
	simulate = func(j Job, res *Result) error { panic("simulated crash") }

	res := Exec(tinyJob("gauss", "lrc"))
	if !res.Failed() || !strings.Contains(res.Failure, "simulated crash") {
		t.Fatalf("panic not captured: %+v", res)
	}
	// A crashing job must not take down a concurrent batch: the other
	// results come back failed (this stub crashes everything) rather
	// than the batch dying.
	r := New(4, nil)
	results := r.DoAll([]Job{tinyJob("gauss", "lrc"), tinyJob("fft", "lrc")})
	for _, res := range results {
		if res == nil || !res.Failed() {
			t.Fatalf("batch result not a failure record: %+v", res)
		}
	}
	if m := r.Meta(); m.FailedJobs != 2 {
		t.Fatalf("failed jobs = %d, want 2", m.FailedJobs)
	}
}

func TestRunnerDeduplicatesByFingerprint(t *testing.T) {
	r := New(4, nil)
	job := tinyJob("gauss", "sc")
	jobs := []Job{job, job, job, tinyJob("fft", "sc")}
	results := r.DoAll(jobs)
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatal("duplicate jobs produced distinct result objects")
	}
	if m := r.Meta(); m.Simulated != 2 {
		t.Fatalf("simulated = %d, want 2 (deduplication failed)", m.Simulated)
	}
	// The memo serves later Do calls without re-simulation.
	if got := r.Do(job); got != results[0] {
		t.Fatal("memoized result not reused")
	}
	if m := r.Meta(); m.Simulated != 2 {
		t.Fatal("memoized Do re-simulated")
	}
}

func TestRunnerConcurrencyBound(t *testing.T) {
	orig := simulate
	defer func() { simulate = orig }()
	var mu sync.Mutex
	active, peak := 0, 0
	gate := make(chan struct{})
	simulate = func(j Job, res *Result) error {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		<-gate
		mu.Lock()
		active--
		mu.Unlock()
		return nil
	}

	r := New(2, nil)
	jobs := make([]Job, 6)
	for i := range jobs {
		j := tinyJob("gauss", "sc")
		j.Cfg.Seed = uint64(i + 1) // distinct fingerprints
		jobs[i] = j
	}
	done := make(chan []*Result)
	go func() { done <- r.DoAll(jobs) }()
	close(gate)
	<-done
	if peak > 2 {
		t.Fatalf("observed %d concurrent simulations, pool size 2", peak)
	}
}

// TestResultsIdenticalAcrossWorkerCounts runs the same small batch
// serially and with 8 workers and requires byte-identical serialized
// results — the foundation of the paperbench -j guarantee.
func TestResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jobs := []Job{
		tinyJob("gauss", "sc"), tinyJob("gauss", "erc"),
		tinyJob("gauss", "lrc"), tinyJob("fft", "lrc"),
		tinyJob("mp3d", "lrc"), tinyJob("mp3d", "erc"),
	}
	marshal := func(results []*Result) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := marshal(New(1, nil).DoAll(jobs))
	parallel := marshal(New(8, nil).DoAll(jobs))
	if !bytes.Equal(serial, parallel) {
		t.Fatal("results differ between 1 and 8 workers")
	}
}

// TestMetricsDigestIdenticalAcrossWorkerCounts pins the telemetry half
// of the -j guarantee explicitly: every result carries a metrics digest,
// and the digest of each run — a fingerprint of its whole cycle-domain
// shape, not just end-of-run totals — is identical whether the batch ran
// serially or on 8 workers.
func TestMetricsDigestIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jobs := []Job{
		tinyJob("gauss", "sc"), tinyJob("gauss", "lrc"),
		tinyJob("fft", "lrc"), tinyJob("mp3d", "erc"),
	}
	serial := New(1, nil).DoAll(jobs)
	parallel := New(8, nil).DoAll(jobs)
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if s.MetricsDigest == "" {
			t.Fatalf("%s/%s: no metrics digest attached", s.App, s.Proto)
		}
		if s.MetricsDigest != p.MetricsDigest {
			t.Fatalf("%s/%s: digest differs between -j1 and -j8: %s vs %s",
				s.App, s.Proto, s.MetricsDigest, p.MetricsDigest)
		}
	}
}

// TestSpanDigestIdenticalAcrossWorkerCounts pins the causal-tracing half
// of the -j guarantee: every result carries a span-stream digest — a
// fingerprint of every coherence transaction, stall episode, and message
// flight the run produced — identical between a serial and an 8-worker
// batch, and stable across repeated seeded runs of the same job.
func TestSpanDigestIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	jobs := []Job{
		tinyJob("gauss", "sc"), tinyJob("gauss", "lrc"),
		tinyJob("fft", "lrc"), tinyJob("mp3d", "erc"),
	}
	serial := New(1, nil).DoAll(jobs)
	parallel := New(8, nil).DoAll(jobs)
	rerun := New(1, nil).DoAll(jobs)
	for i := range jobs {
		s, p, r := serial[i], parallel[i], rerun[i]
		if s.SpanDigest == "" || s.Spans == 0 {
			t.Fatalf("%s/%s: no span digest attached (%d spans, %q)",
				s.App, s.Proto, s.Spans, s.SpanDigest)
		}
		if s.SpanDigest != p.SpanDigest {
			t.Fatalf("%s/%s: span digest differs between -j1 and -j8: %s vs %s",
				s.App, s.Proto, s.SpanDigest, p.SpanDigest)
		}
		if s.SpanDigest != r.SpanDigest {
			t.Fatalf("%s/%s: span digest differs across repeated seeded runs: %s vs %s",
				s.App, s.Proto, s.SpanDigest, r.SpanDigest)
		}
	}
}
