package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	res := Exec(tinyJob("gauss", "sc"))
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Failure)
	}
	if err := s.Put(res); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(res.Fingerprint)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	want := *res
	want.Perf = nil // json:"-" provenance, never persisted
	if !reflect.DeepEqual(got, &want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, &want)
	}
}

func TestStoreRefusesFailedResults(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := &Result{Fingerprint: "abc", Failure: "panic: boom"}
	if err := s.Put(bad); err == nil {
		t.Fatal("failed result was cached")
	}
	if _, ok := s.Get("abc"); ok {
		t.Fatal("failed result retrievable")
	}
}

// TestStoreCorruptLineRecovery damages a cache file three ways — a torn
// binary line, a JSON line of the wrong shape, and a truncated tail —
// and requires the store to keep serving every intact entry while
// counting the skipped ones.
func TestStoreCorruptLineRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	resA := Exec(tinyJob("gauss", "sc"))
	resB := Exec(tinyJob("fft", "sc"))
	if err := s.Put(resA); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(resB); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Torn write between the two entries, a fingerprint-less JSON line,
	// and a truncated copy of a valid entry at the tail.
	mangled := lines[0] + "\x00\x01 not json\n" + `{"other":"shape"}` + "\n" +
		lines[1] + lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("intact entries = %d, want 2", s2.Len())
	}
	if s2.Recovered() != 3 {
		t.Fatalf("recovered = %d, want 3", s2.Recovered())
	}
	for _, fresh := range []*Result{resA, resB} {
		want := *fresh
		want.Perf = nil // json:"-" provenance, never persisted
		got, ok := s2.Get(want.Fingerprint)
		if !ok || !reflect.DeepEqual(got, &want) {
			t.Fatalf("entry %s not served after recovery", want.Fingerprint)
		}
	}
}

// TestWarmCacheSkipsAllSimulation is the cache contract end to end: a
// second runner over the same store simulates nothing and returns
// byte-identical results.
func TestWarmCacheSkipsAllSimulation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	jobs := []Job{tinyJob("gauss", "sc"), tinyJob("gauss", "lrc"), tinyJob("fft", "erc")}

	cold, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(4, cold)
	first := r1.DoAll(context.Background(), jobs)
	if m := r1.Meta(); m.Simulated != 3 || m.CacheHits != 0 || m.CacheMisses != 3 {
		t.Fatalf("cold meta: %+v", m)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	r2 := New(4, warm)
	second := r2.DoAll(context.Background(), jobs)
	if m := r2.Meta(); m.Simulated != 0 || m.CacheHits != 3 || m.CacheMisses != 0 {
		t.Fatalf("warm meta: %+v", m)
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Fatalf("job %d not marked cached", i)
		}
		a, err := json.Marshal(first[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(second[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("job %d: cached result differs:\n%s\n%s", i, a, b)
		}
	}
}
