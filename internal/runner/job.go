// Package runner is the experiment execution engine: it turns the
// evaluation's (application × protocol × configuration) matrix into
// fingerprinted jobs, executes them on a bounded worker pool with per-job
// panic capture, reuses results through a content-addressed JSONL store,
// and gates fresh reports against a committed baseline.
//
// Every job is a pure function of its spec — the simulator is
// deterministic and shares no mutable global state — so results are safe
// to compute concurrently, deduplicate by fingerprint, and replay from a
// cache: a report produced with 8 workers is bit-identical to one
// produced with 1, and a warm cache turns a full paperbench sweep into
// pure lookups.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
)

// fingerprintVersion is folded into every fingerprint. Bump it when the
// meaning of a job changes without its spec changing (simulator semantics,
// result schema) to invalidate stale caches wholesale.
// v2: results grew the telemetry metrics digest; cached v1 results lack
// it and must be recomputed.
// v3: results grew the causal span count and digest; cached v2 results
// lack them and must be recomputed.
// v4: results grew the end-state fields (memory digest, completion,
// invariant-check outcome) and transport counters; cached v3 results
// lack them and must be recomputed.
const fingerprintVersion = "lazyrc-job-v4"

// Job is one simulation to run: an application at a scale, a protocol,
// and a fully materialized machine configuration. Two jobs with the same
// fingerprint produce the same Result bit for bit.
type Job struct {
	App   string        `json:"app"`
	Scale apps.Scale    `json:"scale"`
	Proto string        `json:"proto"`
	Cfg   config.Config `json:"cfg"`
}

// Fingerprint returns the job's content hash: a hex SHA-256 over a
// canonical encoding of every field that determines the run's outcome
// (application, scale, protocol, and the entire configuration, including
// Seed and the fault-injection plan). Adding a config field changes the
// encoding and therefore retires all previously cached results — the
// conservative direction for a result cache.
func (j Job) Fingerprint() string {
	cfg, err := json.Marshal(j.Cfg)
	if err != nil {
		// config.Config is a plain struct of scalars; Marshal cannot fail.
		panic("runner: encoding config: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	h.Write([]byte{0})
	h.Write([]byte(j.App))
	h.Write([]byte{0})
	h.Write([]byte(j.Scale.String()))
	h.Write([]byte{0})
	h.Write([]byte(j.Proto))
	h.Write([]byte{0})
	h.Write(cfg)
	return hex.EncodeToString(h.Sum(nil))
}

// String labels the job for progress lines.
func (j Job) String() string {
	return fmt.Sprintf("%s/%s (%s, %d procs)", j.App, j.Proto, j.Scale, j.Cfg.Procs)
}
