package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store is a content-addressed result cache: one JSON line per result,
// keyed by job fingerprint. The format is append-only — concurrent
// paperbench invocations may interleave whole lines but never corrupt
// each other's — and self-healing: lines that fail to parse (a torn
// write, a manual edit, a truncated tail) are skipped and counted, and
// the jobs they would have served are simply re-simulated and
// re-appended.
type Store struct {
	path string

	mu        sync.Mutex
	mem       map[string]*Result
	f         *os.File
	recovered int // unparseable lines skipped at load
	writeErr  error
}

// OpenStore loads (or creates) the cache at path. Corrupt lines are
// skipped, not fatal: a damaged cache degrades to partial reuse.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, mem: make(map[string]*Result)}
	if data, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(data)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var r Result
			if err := json.Unmarshal(line, &r); err != nil || r.Fingerprint == "" {
				s.recovered++
				continue
			}
			s.mem[r.Fingerprint] = &r
		}
		cerr := data.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("runner: reading cache %s: %w", path, err)
		}
		if cerr != nil {
			return nil, fmt.Errorf("runner: closing cache %s: %w", path, cerr)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runner: opening cache %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening cache %s for append: %w", path, err)
	}
	s.f = f
	return s, nil
}

// Get returns the cached result for a fingerprint, if present. The
// returned result is a copy so callers may annotate it (Cached) without
// mutating the store.
func (s *Store) Get(fp string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.mem[fp]
	if !ok {
		return nil, false
	}
	cp := *r
	return &cp, true
}

// Put records a result in memory and appends it to the file. Failed
// (crashed) results are refused — caching them would make the crash
// permanent instead of retryable.
func (s *Store) Put(r *Result) error {
	if r.Failed() {
		return fmt.Errorf("runner: refusing to cache failed job %s", r.Fingerprint)
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: encoding result: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *r
	// Perf is json:"-" provenance: the persisted line drops it, so the
	// in-memory copy must too, or a warm hit and a cold hit would differ.
	cp.Perf = nil
	s.mem[r.Fingerprint] = &cp
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		s.writeErr = err
		return fmt.Errorf("runner: appending to cache %s: %w", s.path, err)
	}
	return nil
}

// Len reports the number of loaded entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Recovered reports how many unparseable lines the load skipped.
func (s *Store) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Close releases the append handle, reporting any write error seen.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.f.Close()
	if s.writeErr != nil {
		return s.writeErr
	}
	return err
}
