package check

import (
	"bytes"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// TestFaultInjectionAcceptance is the chaos-harness acceptance run: under
// a seeded delay+duplication fault plan, every protocol must complete
// gauss and fft at 16 processors with zero invariant violations and a
// final shared memory bit-identical to a fault-free sequentially
// consistent golden run.
func TestFaultInjectionAcceptance(t *testing.T) {
	const plan = "delay=0.05:1:64,dup=0.03:32,reorder=0.02:48"
	newApp := map[string]func() apps.App{
		"gauss": func() apps.App { return apps.NewGauss(apps.Tiny) },
		"fft":   func() apps.App { return apps.NewFFT(apps.Tiny) },
	}
	for name, mk := range newApp {
		t.Run(name, func(t *testing.T) {
			// Fault-free SC golden run.
			golden := runOne(t, mk(), config.Default(16), "sc", false)

			for _, proto := range protocols {
				t.Run(proto, func(t *testing.T) {
					cfg := config.Default(16)
					cfg.Seed = 1
					cfg.FaultPlan = plan
					final := runOne(t, mk(), cfg, proto, true)
					if !bytes.Equal(final, golden) {
						t.Fatalf("%s/%s final memory differs from fault-free SC golden", name, proto)
					}
				})
			}
		})
	}
}

// runOne runs app on a fresh machine under proto, auditing throughout,
// and returns the final shared-memory image.
func runOne(t *testing.T, app apps.App, cfg config.Config, proto string, expectFaults bool) []byte {
	t.Helper()
	m, err := machine.New(cfg, proto)
	if err != nil {
		t.Fatal(err)
	}
	app.Setup(m)
	a := New(m)
	a.Start(2000)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		t.Fatalf("%s under faults: %v", proto, err)
	}
	a.Final()
	if err := a.Err(); err != nil {
		t.Fatalf("invariant violations under %s:\n%v", proto, err)
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if expectFaults {
		reordered, delayed, duped, dropped := m.Net.FaultStats()
		if delayed == 0 || duped == 0 {
			t.Fatalf("fault plan did not engage: %d reordered, %d delayed, %d duped, %d dropped",
				reordered, delayed, duped, dropped)
		}
		var ignored uint64
		for _, n := range m.Nodes {
			ignored += n.DuplicatesIgnored()
		}
		if ignored == 0 {
			t.Fatal("duplicates were injected but none were deduplicated at delivery")
		}
		t.Logf("%s: %s, %d duplicate deliveries ignored", proto, m.Net.FaultSummary(), ignored)
	}
	return m.SnapshotData()
}
