// Package check implements a runtime protocol-invariant auditor for the
// simulated machine. It cross-checks the distributed state the protocols
// maintain — home-node directory entries against the actual contents of
// every processor cache and the set of outstanding transactions — both
// periodically during a run (epoch audits) and strictly at quiescence.
//
// Mid-run, distributed state legitimately disagrees while a transaction is
// in flight (a fill streaming on a bus, an acknowledgement crossing the
// mesh), so epoch audits skip blocks that are busy anywhere: any node with
// an outstanding transaction for the block, a home with transfer or grant
// machinery open, or pending acknowledgements. What remains must agree
// exactly; a violation means protocol state has been corrupted — by a bug
// or by an injected fault the protocols failed to absorb.
//
// The auditor observes but never mutates simulation state, and its epochs
// run as background events, so enabling it does not change the simulated
// schedule and cannot keep a finished simulation alive.
package check

import (
	"fmt"
	"sort"

	"lazyrc/internal/cache"
	"lazyrc/internal/directory"
	"lazyrc/internal/machine"
	"lazyrc/internal/protocol"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Time is the simulated time of the audit that caught it.
	Time uint64
	// Node is the home node whose directory the violation concerns.
	Node int
	// Block is the coherence block, or NoBlock for machine-level checks.
	Block uint64
	// Invariant names the broken invariant (stable, kebab-case).
	Invariant string
	// Detail is the human-readable specifics.
	Detail string
	// Final marks a quiescence-audit violation.
	Final bool
}

// NoBlock marks a violation not tied to a single coherence block.
const NoBlock = ^uint64(0)

// String renders the violation.
func (v Violation) String() string {
	where := fmt.Sprintf("node %d", v.Node)
	if v.Block != NoBlock {
		where += fmt.Sprintf(" block %d", v.Block)
	}
	kind := "epoch"
	if v.Final {
		kind = "final"
	}
	return fmt.Sprintf("check: t=%d %s audit: %s: invariant %q: %s", v.Time, kind, where, v.Invariant, v.Detail)
}

// Auditor audits one machine. Create with New, optionally Start periodic
// epoch audits before the run, and call Final after it.
type Auditor struct {
	m    *machine.Machine
	lazy bool

	// MaxViolations bounds how many violations are recorded (the first
	// one is almost always the informative one; the rest are usually its
	// fallout). Default 16.
	MaxViolations int

	// OnViolation, when non-nil, observes each recorded violation as it
	// is found — e.g. to stop the simulation on the first one.
	OnViolation func(Violation)

	violations []Violation
	epochs     uint64
}

// New returns an auditor for m.
func New(m *machine.Machine) *Auditor {
	return &Auditor{m: m, lazy: m.Nodes[0].Proto.Lazy(), MaxViolations: 16}
}

// Start schedules an epoch audit every `every` cycles for the rest of the
// run. Audits are background events: they never keep the simulation
// alive. Call before Machine.Run.
func (a *Auditor) Start(every uint64) {
	if every == 0 {
		panic("check: audit interval must be positive")
	}
	eng := a.m.Eng
	var tick func()
	tick = func() {
		a.Epoch()
		if !eng.Stopped() {
			eng.Background(eng.Now()+every, tick)
		}
	}
	eng.Background(eng.Now()+every, tick)
}

// Epochs returns the number of epoch audits performed.
func (a *Auditor) Epochs() uint64 { return a.epochs }

// Violations returns the recorded violations in detection order.
func (a *Auditor) Violations() []Violation { return a.violations }

// Err returns the first recorded violation as an error, or nil.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("%s (%d violation(s) total)", a.violations[0], len(a.violations))
}

func (a *Auditor) record(v Violation) {
	if len(a.violations) >= a.MaxViolations {
		return
	}
	a.violations = append(a.violations, v)
	if a.OnViolation != nil {
		a.OnViolation(v)
	}
}

// blockBusy reports whether any part of the machine has an open
// transaction on block, making mid-run disagreement legitimate.
func (a *Auditor) blockBusy(block uint64, home *protocol.Node) bool {
	if home.HomeBusy(block) {
		return true
	}
	for _, n := range a.m.Nodes {
		if n.HasTxn(block) {
			return true
		}
	}
	return false
}

// Epoch performs one mid-run audit: every quiescent block's directory
// entry must validate structurally and agree with the caches.
func (a *Auditor) Epoch() {
	a.epochs++
	now := a.m.Eng.Now()
	for _, home := range a.m.Nodes {
		for _, block := range sortedBlocks(home.Dir) {
			e := home.Dir.Peek(block)
			if a.blockBusy(block, home) {
				continue
			}
			a.checkEntry(now, home.ID, block, e, false)
		}
	}
}

// Final performs the strict quiescence audit after Machine.Run: exact
// directory/cache agreement, no residual transactions, buffered writes,
// or pending acknowledgements anywhere.
func (a *Auditor) Final() {
	now := a.m.Eng.Now()
	for _, home := range a.m.Nodes {
		for _, block := range sortedBlocks(home.Dir) {
			a.checkEntry(now, home.ID, block, home.Dir.Peek(block), true)
		}
	}
	for _, n := range a.m.Nodes {
		if c := n.OutstandingCount(); c != 0 {
			a.record(Violation{Time: now, Node: n.ID, Block: NoBlock, Final: true,
				Invariant: "no-residual-txns",
				Detail:    fmt.Sprintf("%d coherence transaction(s) still outstanding at quiescence", c)})
		}
		if c := n.WTPendingCount(); c != 0 {
			a.record(Violation{Time: now, Node: n.ID, Block: NoBlock, Final: true,
				Invariant: "no-residual-writes",
				Detail:    fmt.Sprintf("%d write-through/write-back ack(s) still pending at quiescence", c)})
		}
		if !n.WB.Empty() {
			a.record(Violation{Time: now, Node: n.ID, Block: NoBlock, Final: true,
				Invariant: "write-buffer-empty",
				Detail:    fmt.Sprintf("write buffer holds %d entries at quiescence", n.WB.Len())})
		}
		if !n.CB.Empty() {
			a.record(Violation{Time: now, Node: n.ID, Block: NoBlock, Final: true,
				Invariant: "coalescing-buffer-empty",
				Detail:    fmt.Sprintf("coalescing buffer holds %d entries at quiescence", n.CB.Len())})
		}
	}
}

// checkEntry audits one directory entry against the machine's caches.
func (a *Auditor) checkEntry(now uint64, homeID int, block uint64, e *directory.Entry, final bool) {
	v := func(invariant, detail string) {
		a.record(Violation{Time: now, Node: homeID, Block: block, Invariant: invariant, Detail: detail, Final: final})
	}
	if err := e.Validate(); err != nil {
		v("directory-structure", err.Error())
	}
	if e.PendingAcks > a.m.Cfg.Procs {
		v("pending-acks-bound", fmt.Sprintf("%d pending acks exceeds %d processors", e.PendingAcks, a.m.Cfg.Procs))
	}
	if final && e.PendingAcks != 0 {
		v("no-pending-acks", fmt.Sprintf("%d ack(s) still being collected at quiescence", e.PendingAcks))
	}
	rw := 0
	for _, n := range a.m.Nodes {
		line := n.Cache.Lookup(block)
		if line == nil {
			if final && e.Sharers.Has(n.ID) {
				v("sharer-holds-copy", fmt.Sprintf("node %d is in the sharer set but caches no copy", n.ID))
			}
			if final && e.Writers.Has(n.ID) {
				v("writer-holds-copy", fmt.Sprintf("node %d is in the writer set but caches no copy", n.ID))
			}
			continue
		}
		// A cached copy the home does not know about can never be
		// invalidated — the one-sided inclusion that must hold even
		// mid-run on quiescent blocks.
		if !e.Sharers.Has(n.ID) {
			v("cached-copy-tracked", fmt.Sprintf("node %d caches the block (%v) but is not in the sharer set", n.ID, line.State))
		}
		if line.State == cache.ReadWrite {
			rw++
			if !a.lazy && !e.Writers.Has(n.ID) {
				v("writable-copy-marked", fmt.Sprintf("node %d holds a writable copy but is not in the writer set", n.ID))
			}
		}
	}
	if !a.lazy && rw > 1 {
		v("single-writer", fmt.Sprintf("%d writable copies of the block exist under an eager protocol", rw))
	}
}

func sortedBlocks(d *directory.Directory) []uint64 {
	blocks := make([]uint64, 0, d.Len())
	d.Visit(func(b uint64, _ *directory.Entry) { blocks = append(blocks, b) })
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	return blocks
}
