package check

import (
	"strings"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

var protocols = config.ProtocolNames()

// TestCleanRunHasNoViolations audits a full workload under every protocol,
// both with periodic epoch audits and the strict quiescence audit: a
// correct protocol on a reliable fabric must produce zero violations.
func TestCleanRunHasNoViolations(t *testing.T) {
	for _, proto := range protocols {
		t.Run(proto, func(t *testing.T) {
			cfg := config.Default(8)
			m, err := machine.New(cfg, proto)
			if err != nil {
				t.Fatal(err)
			}
			app := apps.NewGauss(apps.Tiny)
			app.Setup(m)
			a := New(m)
			a.Start(2000)
			m.Run(app.Worker)
			if err := app.Verify(); err != nil {
				t.Fatal(err)
			}
			a.Final()
			if a.Epochs() == 0 {
				t.Fatal("no epoch audits ran")
			}
			if err := a.Err(); err != nil {
				t.Fatalf("violations on a clean run:\n%v", err)
			}
			t.Logf("%s: %d epoch audits, 0 violations", proto, a.Epochs())
		})
	}
}

// TestCatchesCorruptedDirectory corrupts one directory entry and verifies
// the auditor reports it, naming the invariant, home node, and block.
func TestCatchesCorruptedDirectory(t *testing.T) {
	cfg := config.Default(8)
	m, err := machine.New(cfg, "lrc")
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewGauss(apps.Tiny)
	app.Setup(m)
	m.Run(app.Worker)

	// Find a home with a directory entry and plant a writer that is not a
	// sharer — the classic corrupted-pointer failure.
	var homeID int
	var block uint64
	found := false
	for _, n := range m.Nodes {
		for _, b := range sortedBlocks(n.Dir) {
			e := n.Dir.Peek(b)
			for p := 0; p < cfg.Procs && !found; p++ {
				if !e.Sharers.Has(p) {
					e.Writers.Add(p)
					homeID, block, found = n.ID, b, true
				}
			}
			if found {
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no corruptible directory entry found")
	}

	a := New(m)
	a.Final()
	if len(a.Violations()) == 0 {
		t.Fatal("auditor missed the corrupted directory entry")
	}
	v := a.Violations()[0]
	if v.Node != homeID || v.Block != block {
		t.Fatalf("violation names node %d block %d, corrupted node %d block %d", v.Node, v.Block, homeID, block)
	}
	if v.Invariant != "directory-structure" {
		t.Fatalf("violation invariant %q, want directory-structure", v.Invariant)
	}
	if !strings.Contains(v.String(), "writers not a subset of sharers") {
		t.Fatalf("violation lacks the structural detail: %s", v)
	}
}

// TestEpochCatchesMidRunCorruption corrupts an entry while the simulation
// is still running and verifies a periodic epoch audit flags it.
func TestEpochCatchesMidRunCorruption(t *testing.T) {
	cfg := config.Default(8)
	m, err := machine.New(cfg, "sc")
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewGauss(apps.Tiny)
	app.Setup(m)
	a := New(m)
	a.Start(500)
	m.Eng.At(5000, func() {
		// Invent a sharer set for a block nobody asked for: state
		// UNCACHED with a nonempty sharer set violates structure, and no
		// transaction is open on the block, so no busy gate hides it.
		e := m.Nodes[0].Dir.Entry(1 << 40)
		e.Sharers.Add(3)
	})
	m.Run(app.Worker)
	if len(a.Violations()) == 0 {
		t.Fatal("epoch audits missed mid-run corruption")
	}
	v := a.Violations()[0]
	if v.Final {
		t.Fatal("violation should come from an epoch audit, not the final audit")
	}
	if v.Node != 0 || v.Block != 1<<40 || v.Invariant != "directory-structure" {
		t.Fatalf("unexpected violation: %s", v)
	}
}
