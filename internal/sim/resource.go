package sim

// Resource models a FIFO-serialized hardware unit (a NIC port, a memory
// module, a bus, a protocol processor) by tracking the time at which it
// next becomes free. Acquire returns the interval during which the caller
// occupies the unit; queueing delay is max(0, freeAt - request time).
//
// Because the whole simulation is single-threaded and deterministic,
// occupancy can be resolved eagerly at request time: the caller schedules
// its continuation at the returned end time.
type Resource struct {
	name   string
	freeAt Time

	// Busy accumulates total occupied cycles, Waited total queueing
	// delay imposed on requesters, and Uses the request count. They are
	// exported through accessor methods for contention reporting.
	busy   uint64
	waited uint64
	uses   uint64
}

// NewResource returns a named resource that is free at time zero.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for dur cycles starting no earlier than
// at. It returns the actual [start, end) occupancy interval.
func (r *Resource) Acquire(at Time, dur uint64) (start, end Time) {
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.waited += start - at
	r.uses++
	return start, end
}

// AcquireWindow reserves the resource for dur cycles for an operation
// whose natural completion time is naturalEnd (i.e., the operation would
// occupy [naturalEnd-dur, naturalEnd) if uncontended). It returns the
// actual end time, which equals naturalEnd when there is no contention.
// This models a message streaming into a receiver NIC: the tail arrives at
// naturalEnd unless an earlier message still occupies the port.
func (r *Resource) AcquireWindow(naturalEnd Time, dur uint64) (end Time) {
	start := Time(0)
	if naturalEnd > dur {
		start = naturalEnd - dur
	}
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	if end > naturalEnd {
		r.waited += end - naturalEnd
	}
	r.uses++
	return end
}

// FreeAt returns the time at which the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Busy returns total occupied cycles.
func (r *Resource) Busy() uint64 { return r.busy }

// Waited returns total queueing delay imposed on requesters.
func (r *Resource) Waited() uint64 { return r.waited }

// Uses returns the number of Acquire/AcquireWindow calls.
func (r *Resource) Uses() uint64 { return r.uses }
