package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: scheduling order
	e.At(20, func() { got = append(got, 3) })
	e.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("final time = %d, want 20", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEventsNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(1, func() {
		trace = append(trace, e.Now())
		e.After(3, func() { trace = append(trace, e.Now()) })
		e.After(1, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if fmt.Sprint(trace) != "[1 2 4]" {
		t.Fatalf("trace = %v, want [1 2 4]", trace)
	}
}

func TestHeapOrderingProperty(t *testing.T) {
	// Property: events fire in nondecreasing time order, and events at
	// equal times fire in scheduling order.
	f := func(times []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		for i, ti := range times {
			at, idx := Time(ti), i
			e.At(at, func() { fired = append(fired, rec{at, idx}) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].idx < fired[j].idx
		}) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1].at == fired[i].at && fired[i-1].idx > fired[i].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var n int
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { n++ })
	}
	e.RunUntil(50)
	if n != 5 {
		t.Fatalf("events run = %d, want 5", n)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if n != 10 {
		t.Fatalf("events run = %d, want 10", n)
	}
}

func TestContextSleepInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	mk := func(name string, period uint64, reps int) {
		e.Spawn(name, func(c *Context) {
			for i := 0; i < reps; i++ {
				c.Sleep(period)
				trace = append(trace, fmt.Sprintf("%s@%d", name, c.Now()))
			}
		})
	}
	mk("a", 10, 3)
	mk("b", 15, 2)
	e.Run()
	// At time 30 both wake; b scheduled its wake first (at time 15 vs
	// a's at time 20), so b fires first — scheduling order breaks ties.
	want := "a@10 b@15 a@20 b@30 a@30"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine()
	var c1 *Context
	var waited uint64
	c1 = e.Spawn("sleeper", func(c *Context) {
		waited = c.Park("the bell")
	})
	e.At(42, func() { c1.Wake() })
	e.Run()
	if waited != 42 {
		t.Fatalf("park duration = %d, want 42", waited)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck-proc", func(c *Context) {
		c.Park("a wake that never comes")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked run did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "stuck-proc") || !strings.Contains(msg, "a wake that never comes") {
			t.Fatalf("deadlock report missing context info: %q", msg)
		}
	}()
	e.Run()
}

func TestGate(t *testing.T) {
	e := NewEngine()
	var g Gate
	var order []string
	g.Subscribe(func() { order = append(order, "sub1") })
	c := e.Spawn("waiter", func(c *Context) {
		g.Wait(c, "gate")
		order = append(order, fmt.Sprintf("ctx@%d", c.Now()))
	})
	_ = c
	e.At(7, func() { g.Open() })
	e.Run()
	if !g.IsOpen() {
		t.Fatal("gate not open after Open")
	}
	if strings.Join(order, ",") != "sub1,ctx@7" {
		t.Fatalf("order = %v", order)
	}
	// Waiting on an open gate returns immediately.
	if d := g.Wait(nil, ""); d != 0 {
		t.Fatalf("wait on open gate = %d, want 0", d)
	}
	// Subscribing to an open gate runs immediately.
	ran := false
	g.Subscribe(func() { ran = true })
	if !ran {
		t.Fatal("subscribe on open gate did not run")
	}
}

func TestGateDoubleOpenPanics(t *testing.T) {
	var g Gate
	g.Open()
	defer func() {
		if recover() == nil {
			t.Fatal("double open did not panic")
		}
	}()
	g.Open()
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	opened := false
	c.Gate().Subscribe(func() { opened = true })
	c.Done()
	c.Done()
	if opened {
		t.Fatal("gate opened early")
	}
	c.Done()
	if !opened {
		t.Fatal("gate not opened at zero")
	}
}

func TestCounterSettleWithNoWork(t *testing.T) {
	var c Counter
	c.Settle()
	if !c.Gate().IsOpen() {
		t.Fatal("settle with no work should open gate")
	}
}

func TestCounterDoneBelowZeroPanics(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatal("Done below zero did not panic")
		}
	}()
	c.Done()
}

func TestResourceFIFO(t *testing.T) {
	r := NewResource("mem")
	s, e := r.Acquire(100, 10)
	if s != 100 || e != 110 {
		t.Fatalf("first acquire = [%d,%d), want [100,110)", s, e)
	}
	s, e = r.Acquire(105, 10) // contended: queued behind first
	if s != 110 || e != 120 {
		t.Fatalf("second acquire = [%d,%d), want [110,120)", s, e)
	}
	s, e = r.Acquire(300, 5) // idle gap: starts immediately
	if s != 300 || e != 305 {
		t.Fatalf("third acquire = [%d,%d), want [300,305)", s, e)
	}
	if r.Busy() != 25 || r.Waited() != 5 || r.Uses() != 3 {
		t.Fatalf("stats busy=%d waited=%d uses=%d", r.Busy(), r.Waited(), r.Uses())
	}
}

func TestResourceWindow(t *testing.T) {
	r := NewResource("nic")
	// Uncontended: completes exactly at natural end.
	if end := r.AcquireWindow(100, 20); end != 100 {
		t.Fatalf("uncontended window end = %d, want 100", end)
	}
	// Contended: the port is busy until 100, so a message naturally
	// ending at 90 slips to 120.
	if end := r.AcquireWindow(90, 20); end != 120 {
		t.Fatalf("contended window end = %d, want 120", end)
	}
}

func TestResourceMonotonicProperty(t *testing.T) {
	// Property: under any request sequence, occupancy intervals never
	// overlap and never precede their request times.
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		r := NewResource("x")
		lastEnd := Time(0)
		for _, q := range reqs {
			s, e := r.Acquire(Time(q.At), uint64(q.Dur)+1)
			if s < Time(q.At) || s < lastEnd || e != s+uint64(q.Dur)+1 {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	// The same randomized workload must produce the identical schedule
	// twice.
	run := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var trace strings.Builder
		res := NewResource("shared")
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("p%d", i)
			jitter := uint64(rng.Intn(20))
			e.Spawn(name, func(c *Context) {
				for k := 0; k < 5; k++ {
					c.Sleep(jitter + 1)
					_, end := res.Acquire(c.Now(), 7)
					c.Sleep(end - c.Now())
					fmt.Fprintf(&trace, "%s@%d;", name, c.Now())
				}
			})
		}
		e.Run()
		return trace.String()
	}
	if a, b := run(1), run(1); a != b {
		t.Fatalf("nondeterministic schedule:\n%s\n%s", a, b)
	}
}

func TestContextAccessors(t *testing.T) {
	e := NewEngine()
	var c *Context
	c = e.Spawn("acc", func(ctx *Context) {
		if ctx.Name() != "acc" || ctx.Engine() != e {
			t.Error("context accessors wrong")
		}
		ctx.Sleep(5)
	})
	e.Run()
	if !c.Done() || c.Parked() {
		t.Fatal("final context state wrong")
	}
	if e.Events() == 0 {
		t.Fatal("no events counted")
	}
}

func TestWakeAt(t *testing.T) {
	e := NewEngine()
	var woke Time
	c := e.Spawn("sleeper", func(ctx *Context) {
		ctx.Park("scheduled wake")
		woke = ctx.Now()
	})
	e.At(10, func() { c.WakeAt(25) })
	e.Run()
	if woke != 25 {
		t.Fatalf("woke at %d, want 25", woke)
	}
}

func TestResourceAccessors(t *testing.T) {
	r := NewResource("mem0")
	if r.Name() != "mem0" {
		t.Fatal("name wrong")
	}
	r.Acquire(5, 10)
	if r.FreeAt() != 15 {
		t.Fatalf("FreeAt = %d", r.FreeAt())
	}
}

func TestCounterPending(t *testing.T) {
	var c Counter
	c.Add(2)
	if c.Pending() != 2 {
		t.Fatalf("pending = %d", c.Pending())
	}
}
