package sim

import (
	"strings"
	"testing"
)

// TestWatchdogDetectsLockCycle builds the classic two-context deadlock —
// each waiting for a lock the other holds — while unrelated timer events
// keep the queue busy for a million cycles. The end-of-run deadlock panic
// would only fire after that queue drains; the watchdog must name both
// wedged contexts and their wait reasons within a few probe intervals.
func TestWatchdogDetectsLockCycle(t *testing.T) {
	e := NewEngine()

	e.Spawn("cpu0", func(c *Context) {
		c.Sleep(50)
		c.Park("lock A (held by cpu1)")
	})
	e.Spawn("cpu1", func(c *Context) {
		c.Sleep(60)
		c.Park("lock B (held by cpu0)")
	})

	// Background traffic: retries, timers — events that would postpone
	// the queue-drain deadlock detector for a very long time.
	const horizon = 1_000_000
	var tick func()
	tick = func() {
		if e.Now() < horizon {
			e.After(100, tick)
		}
	}
	e.After(100, tick)

	var report *StallReport
	e.Watchdog(1000, func(r StallReport) {
		report = &r
		e.Stop()
	})
	e.Run()

	if report == nil {
		t.Fatal("watchdog never fired on a wedged simulation")
	}
	if report.Time >= horizon/10 {
		t.Fatalf("stall detected at time %d — not 'long before' the %d-cycle event horizon", report.Time, horizon)
	}
	if len(report.Contexts) != 2 {
		t.Fatalf("report has %d contexts, want 2: %s", len(report.Contexts), report)
	}
	for i, want := range []struct{ name, reason string }{
		{"cpu0", "lock A (held by cpu1)"},
		{"cpu1", "lock B (held by cpu0)"},
	} {
		c := report.Contexts[i]
		if c.Name != want.name || !c.Parked || c.WaitReason != want.reason {
			t.Fatalf("context %d = %+v, want parked %q waiting for %q", i, c, want.name, want.reason)
		}
	}
	if s := report.String(); !strings.Contains(s, "cpu0: waiting for lock A") {
		t.Fatalf("rendered report lacks wait reasons:\n%s", s)
	}
	if !e.Stopped() {
		t.Fatal("Stop from the stall handler did not take effect")
	}
}

// TestWatchdogQuietOnProgress verifies a healthy simulation never trips
// the watchdog, and that the watchdog's self-rescheduling probes do not
// keep the engine alive after all contexts finish.
func TestWatchdogQuietOnProgress(t *testing.T) {
	e := NewEngine()
	e.Spawn("worker", func(c *Context) {
		for i := 0; i < 100; i++ {
			c.Sleep(500)
		}
	})
	e.Watchdog(1000, func(r StallReport) {
		t.Fatalf("watchdog fired on a progressing simulation:\n%s", r)
	})
	e.Run()
	if e.Now() != 50_000 {
		t.Fatalf("run ended at %d, want 50000", e.Now())
	}
}

// TestWatchdogRefiresPerEpisode verifies one report per stall episode:
// a second stall after progress resumes is reported again, but a
// continuing stall is not re-reported every probe.
func TestWatchdogRefiresPerEpisode(t *testing.T) {
	e := NewEngine()
	var ctx *Context
	e.Spawn("cpu", func(c *Context) {
		ctx = c
		c.Park("phase 1")
		c.Park("phase 2")
	})
	// Keep events flowing for the whole test.
	var tick func()
	tick = func() {
		if e.Now() < 20_000 {
			e.After(50, tick)
		}
	}
	e.After(50, tick)
	// Resume the context mid-test so it stalls twice, and once more at
	// the end so it finishes.
	e.At(10_000, func() { ctx.Wake() })
	e.At(18_000, func() { ctx.Wake() })

	var fires int
	e.Watchdog(500, func(r StallReport) { fires++ })
	e.Run()
	if fires != 2 {
		t.Fatalf("watchdog fired %d times, want exactly 2 (one per stall episode)", fires)
	}
}
