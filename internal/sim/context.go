package sim

import "fmt"

// Context is a coroutine-style simulated processor context. Its body runs
// on its own goroutine but is strictly interleaved with the engine: at any
// instant either the engine (and its event handlers) or exactly one
// context is executing.
//
// A context interacts with simulated time through Sleep and Park/Wake.
// Park must only be called after the caller has arranged — directly or
// through an event handler — for Wake to be invoked later; the engine
// detects the alternative (all events drained, contexts still parked) and
// panics with a deadlock report.
type Context struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
	parked bool

	// progress counts resumptions; the watchdog reads it to tell a
	// context that is advancing from one that is wedged.
	progress uint64
}

// Spawn creates a context executing fn, scheduled to start at the current
// simulated time. The name appears in deadlock reports.
func (e *Engine) Spawn(name string, fn func(*Context)) *Context {
	c := &Context{eng: e, name: name, resume: make(chan struct{})}
	e.contexts = append(e.contexts, c)
	go func() {
		<-c.resume // wait for first transfer
		fn(c)
		c.done = true
		e.yield <- struct{}{}
	}()
	e.At(e.now, func() { c.transfer() })
	return c
}

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Engine returns the engine this context belongs to.
func (c *Context) Engine() *Engine { return c.eng }

// Now returns the current simulated time. Valid only while the context is
// running.
func (c *Context) Now() Time { return c.eng.now }

// transfer hands control from the engine goroutine to the context and
// blocks until the context yields back. It must run on the engine
// goroutine (i.e., from an event handler).
func (c *Context) transfer() {
	if c.done {
		panic(fmt.Sprintf("sim: resuming finished context %q", c.name))
	}
	c.progress++
	c.resume <- struct{}{}
	<-c.eng.yield
}

// block yields control to the engine and waits to be resumed. It must run
// on the context's goroutine.
func (c *Context) block() {
	c.eng.yield <- struct{}{}
	<-c.resume
}

// Sleep advances the context by d cycles of simulated time, letting other
// activity proceed in between.
func (c *Context) Sleep(d uint64) {
	c.eng.After(d, func() { c.transfer() })
	c.block()
}

// Park suspends the context until some event handler calls Wake. The why
// string describes what is being waited for; it appears in deadlock
// reports. Park returns the time spent parked.
func (c *Context) Park(why string) uint64 {
	start := c.eng.now
	c.parked = true
	c.eng.parked[c] = why
	c.block()
	return c.eng.now - start
}

// Wake schedules the parked context to resume at the current simulated
// time. It must be called from an event handler (engine goroutine), never
// from another context's body, and panics if the context is not parked.
func (c *Context) Wake() {
	if !c.parked {
		panic(fmt.Sprintf("sim: waking context %q which is not parked", c.name))
	}
	c.parked = false
	delete(c.eng.parked, c)
	c.eng.At(c.eng.now, func() { c.transfer() })
}

// WakeAt schedules the parked context to resume at absolute time t >= now.
func (c *Context) WakeAt(t Time) {
	if !c.parked {
		panic(fmt.Sprintf("sim: waking context %q which is not parked", c.name))
	}
	c.parked = false
	delete(c.eng.parked, c)
	c.eng.At(t, func() { c.transfer() })
}

// Parked reports whether the context is currently parked.
func (c *Context) Parked() bool { return c.parked }

// Progress returns the context's resumption count — the watchdog's
// forward-progress measure.
func (c *Context) Progress() uint64 { return c.progress }

// Done reports whether the context body has returned.
func (c *Context) Done() bool { return c.done }
