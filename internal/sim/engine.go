// Package sim provides a deterministic discrete-event simulation engine
// with coroutine-style processor contexts and FIFO occupancy resources.
//
// The engine and all event handlers run on a single goroutine; processor
// contexts are goroutines that execute strictly one at a time, handing
// control back to the engine whenever they block on simulated time. Events
// with equal timestamps fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so a given program produces an
// identical cycle-accurate schedule on every run.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"lazyrc/internal/perf"
)

// Time is simulated time in processor cycles.
type Time = uint64

// Chooser resolves scheduling nondeterminism at an enumerated choice
// point with n >= 2 alternatives, returning an index in [0, n). The
// engine consults it whenever several events are enabled at the same
// simulated instant, instead of committing to scheduling (heap) order;
// the mesh consults it to pick per-message delivery delays. A model
// checker implements Chooser to explore the space of legal schedules and
// to replay a recorded one; with no chooser attached the engine's
// deterministic seq-order tie-break applies unchanged.
type Chooser interface {
	Choose(n int) int
}

type event struct {
	at  Time
	seq uint64
	fn  func()
	bg  bool // background events do not keep the simulation alive
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event     { return h[0] }
func (h *eventHeap) popMin() event  { return heap.Pop(h).(event) }
func (h *eventHeap) pushEv(e event) { heap.Push(h, e) }
func (h eventHeap) emptied() bool   { return len(h) == 0 }

// Engine is a deterministic discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	yield chan struct{} // contexts signal here when handing control back

	contexts []*Context
	parked   map[*Context]string // parked context -> wait reason

	nEvents uint64 // total events executed, for diagnostics
	nbg     int    // background events currently in the queue
	stopped bool   // set by Stop; Run returns early

	chooser Chooser // nil: deterministic seq-order tie-break
	tied    []event // scratch for same-instant choice enumeration

	tracer TaskTracer // nil: no causal-context propagation

	prof *perf.Profiler // nil: no wall-clock phase accounting
}

// TaskTracer threads a causal context (a transaction id) through event
// chains. When one is attached, every callback scheduled via At/After/
// Background captures the context current at scheduling time and runs
// with it restored — so a home-side continuation, and any message it
// sends, inherit the transaction identity of the request that scheduled
// it without the protocol code threading ids by hand. The tracer is
// purely observational: it must not schedule events or touch simulated
// state, so attaching one leaves the cycle-accurate schedule unchanged.
type TaskTracer interface {
	// Capture returns the context current at scheduling time.
	Capture() uint64
	// Restore installs ctx and returns the previously current context.
	Restore(ctx uint64) uint64
}

// SetTaskTracer attaches (or, with nil, detaches) a causal-context
// tracer. Attach before Run.
func (e *Engine) SetTaskTracer(t TaskTracer) { e.tracer = t }

// SetProfiler attaches (or, with nil, detaches) a wall-clock phase
// profiler. The run loop charges each event's execution to the dispatch
// phase (background phase for background events); instrumented
// subsystems narrow the attribution from inside the event. Purely
// observational — the simulated schedule is unchanged.
func (e *Engine) SetProfiler(p *perf.Profiler) { e.prof = p }

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		parked: map[*Context]string{},
		events: make(eventHeap, 0, 1024),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvents }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.events.pushEv(event{at: t, seq: e.seq, fn: e.wrap(fn)})
}

// wrap closes fn over the causal context current at scheduling time so
// the callback (and everything it schedules in turn) runs under it. The
// previous context is restored afterwards, which keeps nesting correct
// when an event hands control to a coroutine that itself runs nested
// events before yielding back.
func (e *Engine) wrap(fn func()) func() {
	if e.tracer == nil {
		return fn
	}
	ctx := e.tracer.Capture()
	return func() {
		prev := e.tracer.Restore(ctx)
		fn()
		e.tracer.Restore(prev)
	}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) { e.At(e.now+d, fn) }

// Background schedules fn at absolute time t as a background event.
// Background events — watchdog probes, invariant-checker epochs — do not
// keep the simulation alive: Run returns (and discards them) once only
// background events remain, so a periodic observer may reschedule itself
// unconditionally without preventing termination.
func (e *Engine) Background(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling background event at %d before now %d", t, e.now))
	}
	e.seq++
	e.nbg++
	e.events.pushEv(event{at: t, seq: e.seq, fn: e.wrap(fn), bg: true})
}

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.events) }

// SetChooser attaches (or, with nil, detaches) a scheduling chooser.
// With a chooser attached, whenever two or more events are enabled at
// the same simulated instant the engine enumerates them (in scheduling
// order) and lets the chooser pick which fires next, rather than
// committing to seq order. Attach before Run; the schedule is a pure
// function of the chooser's answers, so replaying the same answers
// reproduces the run exactly.
func (e *Engine) SetChooser(c Chooser) { e.chooser = c }

// popNext removes and returns the next event to execute. With no chooser
// (or a single enabled event) this is the deterministic heap minimum;
// with a chooser and several events tied at the minimum timestamp, the
// tied set is enumerated as a choice point.
func (e *Engine) popNext() event {
	ev := e.events.popMin()
	if e.chooser == nil || e.events.emptied() || e.events.peek().at != ev.at {
		return ev
	}
	e.tied = append(e.tied[:0], ev)
	for !e.events.emptied() && e.events.peek().at == ev.at {
		e.tied = append(e.tied, e.events.popMin())
	}
	pick := e.chooser.Choose(len(e.tied))
	if pick < 0 || pick >= len(e.tied) {
		panic(fmt.Sprintf("sim: chooser picked %d of %d alternatives", pick, len(e.tied)))
	}
	chosen := e.tied[pick]
	for i, t := range e.tied {
		if i != pick {
			e.events.pushEv(t) // seq is preserved: unchosen events keep their order
		}
	}
	return chosen
}

// Stop makes Run return before the next event, without treating still-
// parked contexts as a deadlock. A watchdog's stall handler calls it to
// abort a wedged simulation after dumping its report.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue drains and every context has
// finished. If the queue drains while contexts are still parked, the
// simulation is deadlocked and Run panics with a per-context report.
func (e *Engine) Run() {
	for !e.events.emptied() && e.nbg < len(e.events) {
		if e.stopped {
			return
		}
		ev := e.popNext()
		if ev.bg {
			e.nbg--
		}
		e.now = ev.at
		e.nEvents++
		e.exec(ev)
	}
	if e.stopped {
		return
	}
	if len(e.parked) > 0 {
		panic(e.deadlockReport())
	}
	for _, c := range e.contexts {
		if !c.done {
			panic(fmt.Sprintf("sim: context %q neither finished nor parked at end of run", c.name))
		}
	}
}

// RunUntil executes events with timestamps <= t, then stops.
// It does not treat remaining parked contexts as a deadlock.
func (e *Engine) RunUntil(t Time) {
	for !e.events.emptied() && e.events.peek().at <= t {
		if e.stopped {
			return
		}
		ev := e.popNext()
		if ev.bg {
			e.nbg--
		}
		e.now = ev.at
		e.nEvents++
		e.exec(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// exec runs one event, charging its wall time to the profiler's default
// phase for its kind when a profiler is attached.
func (e *Engine) exec(ev event) {
	if e.prof == nil {
		ev.fn()
		return
	}
	ph := perf.PhaseDispatch
	if ev.bg {
		ph = perf.PhaseBackground
	}
	prev := e.prof.Enter(ph)
	ev.fn()
	e.prof.Exit(prev)
}

func (e *Engine) deadlockReport() string {
	type row struct{ name, why string }
	rows := make([]row, 0, len(e.parked))
	for c, why := range e.parked {
		rows = append(rows, row{c.name, why})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	s := fmt.Sprintf("sim: deadlock at time %d: %d context(s) parked with no pending events:", e.now, len(rows))
	for _, r := range rows {
		s += fmt.Sprintf("\n  %s: waiting for %s", r.name, r.why)
	}
	return s
}
