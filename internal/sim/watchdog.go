package sim

import (
	"fmt"
	"sort"
)

// ContextStatus is one context's entry in a stall report.
type ContextStatus struct {
	Name       string
	Parked     bool
	WaitReason string // what the context is waiting for, if parked
	Progress   uint64 // resume count — unchanged across probes means no forward progress
}

// StallReport describes a simulation that has stopped making forward
// progress while events are still flowing — a livelock or lost wakeup the
// end-of-run deadlock panic would only surface after every queued event
// (timers, retries, probes) drained, possibly millions of cycles later.
type StallReport struct {
	// Time is the simulated time of the probe that detected the stall;
	// Interval is the watchdog period, so no context progressed in
	// (Time-Interval, Time].
	Time     Time
	Interval uint64
	// Events is the total event count at detection.
	Events uint64
	// Contexts lists every unfinished context, sorted by name.
	Contexts []ContextStatus
	// Retransmits lists the oldest in-flight reliable-transport
	// retransmit entries (messages the fabric is failing to deliver),
	// filled in by the machine layer when fault injection is active.
	Retransmits []string
	// StallCauses describes the causal critical-path state of the stalled
	// contexts — the open stall spans and, where a pending retransmission
	// belongs to the same transaction, the loss it is blocked on. Filled
	// in by the machine layer when causal tracing is active.
	StallCauses []string
	// Notes carries machine-level diagnostics (in-flight transactions,
	// NIC queue depths) appended by higher layers.
	Notes []string
}

// String renders the report for logs.
func (r StallReport) String() string {
	s := fmt.Sprintf("sim: stall at time %d (no context progress in %d cycles, %d events executed): %d context(s):",
		r.Time, r.Interval, r.Events, len(r.Contexts))
	for _, c := range r.Contexts {
		if c.Parked {
			s += fmt.Sprintf("\n  %s: waiting for %s (progress %d)", c.Name, c.WaitReason, c.Progress)
		} else {
			s += fmt.Sprintf("\n  %s: runnable (progress %d)", c.Name, c.Progress)
		}
	}
	for _, line := range r.StallCauses {
		s += "\n  " + line
	}
	for _, line := range r.Retransmits {
		s += "\n  " + line
	}
	for _, n := range r.Notes {
		s += "\n  " + n
	}
	return s
}

type watchdog struct {
	eng      *Engine
	interval uint64
	onStall  func(StallReport)
	last     map[*Context]uint64
	primed   bool // last has a full snapshot to compare against
	fired    bool // stall already reported; reset when progress resumes
}

// Watchdog installs a liveness watchdog: every interval cycles it probes
// per-context progress counters, and if an entire interval passes with
// every unfinished context parked and none progressing it calls onStall
// with a structured report. The handler may call Stop to abort the run.
// Probes are background events, so the watchdog never keeps an otherwise
// finished simulation alive. The stall is reported once per episode; if
// progress resumes and stalls again, onStall fires again.
//
// The detection is a heuristic: a context parked on a legitimately slow
// operation (a contended fill, a long barrier wait) has made no progress
// either, so the interval must comfortably exceed the longest wait the
// workload can legitimately produce — thousands of cycles at minimum,
// tens of thousands for heavily synchronized workloads. Too small an
// interval reports ordinary memory latency as a stall.
func (e *Engine) Watchdog(interval uint64, onStall func(StallReport)) {
	if interval == 0 {
		panic("sim: watchdog interval must be positive")
	}
	w := &watchdog{eng: e, interval: interval, onStall: onStall, last: map[*Context]uint64{}}
	e.Background(e.now+interval, w.probe)
}

func (w *watchdog) probe() {
	e := w.eng
	live, allParked, progressed := 0, true, false
	for _, c := range e.contexts {
		if c.done {
			continue
		}
		live++
		if !c.parked {
			allParked = false
		}
		if w.last[c] != c.progress {
			progressed = true
		}
	}
	if w.primed && live > 0 && allParked && !progressed {
		if !w.fired {
			w.fired = true
			w.onStall(w.report())
		}
	} else {
		w.fired = false
	}
	for _, c := range e.contexts {
		w.last[c] = c.progress
	}
	w.primed = true
	if !e.stopped {
		e.Background(e.now+w.interval, w.probe)
	}
}

func (w *watchdog) report() StallReport {
	e := w.eng
	r := StallReport{Time: e.now, Interval: w.interval, Events: e.nEvents}
	for _, c := range e.contexts {
		if c.done {
			continue
		}
		r.Contexts = append(r.Contexts, ContextStatus{
			Name:       c.name,
			Parked:     c.parked,
			WaitReason: e.parked[c],
			Progress:   c.progress,
		})
	}
	sort.Slice(r.Contexts, func(i, j int) bool { return r.Contexts[i].Name < r.Contexts[j].Name })
	return r
}
