package sim

// Gate is a one-shot completion latch for protocol transactions: event
// handlers open it once, and any number of contexts or callbacks observe
// the opening. It is the simulation-time analogue of closing a channel.
//
// A Gate may be waited on by at most one parked context at a time (a
// processor stalls on its own outstanding transaction) but may carry any
// number of callback subscribers (merged requests on the same cache
// block).
type Gate struct {
	open    bool
	waiter  *Context
	actions []func()
}

// Open fires the gate at the current simulated time: the parked waiter, if
// any, is woken and all subscribed callbacks run immediately (in
// subscription order). Opening an already-open gate panics; transactions
// complete exactly once.
func (g *Gate) Open() {
	if g.open {
		panic("sim: gate opened twice")
	}
	g.open = true
	if g.waiter != nil {
		w := g.waiter
		g.waiter = nil
		w.Wake()
	}
	for _, fn := range g.actions {
		fn()
	}
	g.actions = nil
}

// IsOpen reports whether the gate has fired.
func (g *Gate) IsOpen() bool { return g.open }

// Wait parks the context until the gate opens; it returns immediately if
// the gate is already open. It returns the cycles spent parked.
func (g *Gate) Wait(c *Context, why string) uint64 {
	if g.open {
		return 0
	}
	if g.waiter != nil {
		panic("sim: gate already has a parked waiter")
	}
	g.waiter = c
	return c.Park(why)
}

// Subscribe registers fn to run when the gate opens (immediately if it is
// already open). Callbacks run on the engine goroutine.
func (g *Gate) Subscribe(fn func()) {
	if g.open {
		fn()
		return
	}
	g.actions = append(g.actions, fn)
}

// Counter is a countdown latch: it opens an underlying gate when Add'ed
// work reaches zero. Used for ack collection (invalidations, write
// notices, write-through drains).
type Counter struct {
	n    int
	gate Gate
}

// Add increases outstanding work by d (d may be negative via Done only).
func (c *Counter) Add(d int) {
	if d < 0 {
		panic("sim: Counter.Add with negative delta; use Done")
	}
	if c.gate.open {
		panic("sim: Counter.Add after completion")
	}
	c.n += d
}

// Done retires one unit of work, opening the gate when none remain.
// Calling Done more times than Add panics.
func (c *Counter) Done() {
	c.n--
	if c.n < 0 {
		panic("sim: Counter.Done below zero")
	}
	if c.n == 0 {
		c.gate.Open()
	}
}

// Pending returns the outstanding count.
func (c *Counter) Pending() int { return c.n }

// Gate returns the underlying completion gate. Note that a Counter whose
// count never rose above zero has not opened its gate; call Settle to
// open it if nothing is outstanding.
func (c *Counter) Gate() *Gate { return &c.gate }

// Settle opens the gate immediately if no work is outstanding and the
// gate has not already fired. It is a convenience for "wait for all acks,
// of which there may be none".
func (c *Counter) Settle() {
	if c.n == 0 && !c.gate.open {
		c.gate.Open()
	}
}
