package sim

import "testing"

// BenchmarkEventHeapPushPop measures the scheduler's core data
// structure: one push and one pop against a primed heap, the operation
// pair every simulated event pays.
//
//	go test ./internal/sim -bench EventHeap -benchmem
func BenchmarkEventHeapPushPop(b *testing.B) {
	var h eventHeap
	nop := func() {}
	// Prime with a realistic standing population so the sift depth is
	// representative (an idle heap would make both operations trivial).
	for i := 0; i < 1024; i++ {
		h.pushEv(event{at: Time(i*2654435761) % 1_000_000, seq: uint64(i), fn: nop})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.pushEv(event{at: Time(i*40503) % 1_000_000, seq: uint64(1024 + i), fn: nop})
		h.popMin()
	}
}

// BenchmarkEngineDispatch measures the full engine round trip per event:
// schedule through the public API, then dispatch in Run — heap traffic
// plus the run loop's bookkeeping (event counter, cancellation poll,
// profiler branch).
func BenchmarkEngineDispatch(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	nop := func() {}
	b.ResetTimer()
	const batch = 1024
	for done := 0; done < b.N; done += batch {
		n := batch
		if rem := b.N - done; rem < n {
			n = rem
		}
		base := e.Now()
		for i := 0; i < n; i++ {
			e.At(base+Time(i), nop)
		}
		e.Run()
	}
}
