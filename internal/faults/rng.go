package faults

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64)
// used by the fault injector. Unlike math/rand it is trivially seedable,
// splittable, and guaranteed stable across Go releases, so a fault
// schedule replays bit-identically from its seed forever.
type RNG struct {
	state uint64
}

// golden is the SplitMix64 increment (the golden ratio in fixed point).
const golden = 0x9e3779b97f4a7c15

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// uncorrelated streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("faults: Uint64n(0)")
	}
	// Modulo bias is irrelevant at fault-injection granularity and keeping
	// the draw to exactly one Uint64 makes stream consumption predictable.
	return r.Uint64() % n
}

// Split derives an independent child stream. The parent advances by one
// draw; the child's sequence shares no state with the parent's subsequent
// output. Use one split per subsystem (e.g. the mesh injector, a future
// randomized sweep) so adding a consumer never perturbs the others.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ golden}
}
