// Package faults provides deterministic, seed-replayable fault injection
// for the simulated interconnect. A Plan describes, per message kind, the
// probability and magnitude of injected extra delay (in-flight jitter),
// duplication, reordering, and loss, plus scheduled link-outage windows
// and per-node receive brownouts; an Injector draws from a seeded
// SplitMix64 stream to turn the per-message rules into concrete Fault
// decisions.
//
// Loss is only survivable when an end-to-end retry exists. The mesh's
// reliable-delivery transport (mesh/transport.go) retries every message
// kind, so a plan attached through it may drop anything; validating a
// plan in an environment without such a transport (retryable == nil)
// still rejects drops.
//
// Determinism: the injector consumes its random stream in Decide-call
// order, and Decide is called from the (single-threaded, deterministic)
// simulation engine, so a given (seed, plan, workload) triple produces an
// identical fault schedule — and therefore an identical simulation — on
// every run. With no injector attached the simulation is bit-identical to
// a build without this package.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// kindNamer and kindParser map protocol message kinds to and from their
// mnemonics in plan text and error messages. The protocol package
// registers them at init; the indirection keeps this package free of a
// protocol dependency (protocol imports mesh imports faults).
var (
	kindNamer  func(int) string
	kindParser func(string) (int, bool)
)

// RegisterKindNames installs the message-kind naming functions: name
// renders a kind for error messages and Plan.String, parse resolves a
// mnemonic in plan text back to its kind. Either may be nil to leave the
// raw-integer behaviour.
func RegisterKindNames(name func(int) string, parse func(string) (int, bool)) {
	kindNamer, kindParser = name, parse
}

// KindName renders a message kind with the registered namer, falling back
// to the raw integer.
func KindName(k int) string {
	if kindNamer != nil {
		return kindNamer(k)
	}
	return strconv.Itoa(k)
}

// kindLabel renders a message kind for error messages: "WriteReq(2)" when
// a namer is registered, "2" otherwise.
func kindLabel(k int) string {
	if kindNamer != nil {
		return fmt.Sprintf("%s(%d)", kindNamer(k), k)
	}
	return strconv.Itoa(k)
}

// Rule gives the injection probabilities and magnitudes for one message
// kind (or for all kinds, as Plan.Default). All probabilities are in
// [0, 1]; all magnitudes are in simulated cycles.
type Rule struct {
	// DelayProb is the chance of adding in-flight latency jitter, drawn
	// uniformly from [DelayMin, DelayMax]. Jitter shifts a message's
	// arrival but cannot reorder messages bound for the same destination.
	DelayProb          float64
	DelayMin, DelayMax uint64

	// DupProb is the chance the message is delivered twice; the duplicate
	// re-enters the network up to DupDelayMax cycles after the original.
	// Receivers deduplicate by delivery sequence number, so duplication
	// perturbs timing and resource occupancy without double-applying
	// protocol actions.
	DupProb     float64
	DupDelayMax uint64

	// ReorderProb is the chance the message is held for up to ReorderMax
	// cycles before entering the network, letting later messages overtake
	// it. Per-(src,dst) FIFO order is still preserved — the mesh never
	// reorders two messages between the same pair of nodes, matching the
	// ordering guarantee of dimension-ordered routing that the protocols
	// are entitled to assume.
	ReorderProb float64
	ReorderMax  uint64

	// DropProb is the chance the message is silently discarded. Dropping
	// requires an end-to-end retry; the mesh's reliable-delivery
	// transport provides one for every kind, so any plan it validates may
	// drop anything. Validating with retryable == nil (no transport)
	// rejects drops.
	DropProb float64
}

// Zero reports whether the rule injects nothing.
func (r Rule) Zero() bool {
	return r.DelayProb == 0 && r.DupProb == 0 && r.ReorderProb == 0 && r.DropProb == 0
}

func (r Rule) validate() error {
	for _, p := range []float64{r.DelayProb, r.DupProb, r.ReorderProb, r.DropProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: probability %v outside [0,1]", p)
		}
	}
	if r.DelayProb > 0 && r.DelayMax < r.DelayMin {
		return fmt.Errorf("faults: delay window [%d,%d] is empty", r.DelayMin, r.DelayMax)
	}
	return nil
}

// Outage is a scheduled link failure: the undirected mesh link between
// adjacent nodes A and B is down for [From, From+Len) simulated cycles.
// Every message whose XY route crosses the link during the window is
// lost on the wire (and recovered by the transport's retransmission).
type Outage struct {
	A, B      int
	From, Len uint64
}

// Covers reports whether the outage is in effect at simulated time now.
func (o Outage) Covers(now uint64) bool {
	return now >= o.From && now < o.From+o.Len
}

// String renders the outage in plan-clause form.
func (o Outage) String() string {
	return fmt.Sprintf("down=%d-%d:%d:%d", o.A, o.B, o.From, o.Len)
}

// Brownout is a scheduled receive failure: node Node drops every message
// arriving during [From, From+Len) simulated cycles — the NIC is alive
// enough to sink the bits but nothing reaches the protocol. Lost
// messages are recovered by the transport's retransmission.
type Brownout struct {
	Node      int
	From, Len uint64
}

// Covers reports whether the brownout is in effect at simulated time now.
func (b Brownout) Covers(now uint64) bool {
	return now >= b.From && now < b.From+b.Len
}

// String renders the brownout in plan-clause form.
func (b Brownout) String() string {
	return fmt.Sprintf("brown=%d:%d:%d", b.Node, b.From, b.Len)
}

// Plan is a complete fault-injection schedule description: a default rule,
// per-message-kind overrides, scheduled link outages and node brownouts,
// and an optional active window in simulated time.
type Plan struct {
	Default Rule
	ByKind  map[int]Rule

	// Outages and Brownouts are scheduled deterministic failures,
	// independent of the probabilistic rules and of the From/Until
	// window (each carries its own window).
	Outages   []Outage
	Brownouts []Brownout

	// From and Until bound the window of simulated time in which the
	// probabilistic rules inject; Until == 0 means unbounded.
	From, Until uint64
}

// Empty reports whether the plan injects nothing anywhere.
func (p Plan) Empty() bool {
	if !p.Default.Zero() || len(p.Outages) > 0 || len(p.Brownouts) > 0 {
		return false
	}
	for _, r := range p.ByKind {
		if !r.Zero() {
			return false
		}
	}
	return true
}

// RuleFor returns the rule applying to the given message kind.
func (p Plan) RuleFor(kind int) Rule {
	if r, ok := p.ByKind[kind]; ok {
		return r
	}
	return p.Default
}

// Active reports whether the plan's probabilistic rules inject at
// simulated time now.
func (p Plan) Active(now uint64) bool {
	return now >= p.From && (p.Until == 0 || now < p.Until)
}

// LinkDown reports whether the undirected link between adjacent nodes a
// and b is inside an outage window at simulated time now.
func (p Plan) LinkDown(a, b int, now uint64) bool {
	for _, o := range p.Outages {
		if ((o.A == a && o.B == b) || (o.A == b && o.B == a)) && o.Covers(now) {
			return true
		}
	}
	return false
}

// NodeBrowned reports whether node is inside a receive-brownout window at
// simulated time now.
func (p Plan) NodeBrowned(node int, now uint64) bool {
	for _, b := range p.Brownouts {
		if b.Node == node && b.Covers(now) {
			return true
		}
	}
	return false
}

// Validate checks probabilities, windows, and outage schedules, and —
// given the set of retryable message kinds — rejects drop rules, outages,
// and brownouts in environments where no end-to-end retry could recover
// the loss (retryable == nil). The mesh validates with every kind
// retryable: its transport retries everything.
func (p Plan) Validate(retryable func(kind int) bool) error {
	if err := p.Default.validate(); err != nil {
		return err
	}
	if p.Default.DropProb > 0 && retryable == nil {
		return fmt.Errorf("faults: default rule drops messages but no end-to-end retry exists")
	}
	kinds := make([]int, 0, len(p.ByKind))
	for k := range p.ByKind {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		r := p.ByKind[k]
		if err := r.validate(); err != nil {
			return fmt.Errorf("faults: kind %s: %w", kindLabel(k), err)
		}
		if r.DropProb > 0 && (retryable == nil || !retryable(k)) {
			return fmt.Errorf("faults: kind %s has drop probability %v but no retry exists for it", kindLabel(k), r.DropProb)
		}
	}
	for _, o := range p.Outages {
		if o.A < 0 || o.B < 0 || o.A == o.B {
			return fmt.Errorf("faults: outage %s does not name two distinct nodes", o)
		}
		if o.Len == 0 {
			return fmt.Errorf("faults: outage %s has a zero-length window", o)
		}
		if retryable == nil {
			return fmt.Errorf("faults: outage %s loses messages but no end-to-end retry exists", o)
		}
	}
	for _, b := range p.Brownouts {
		if b.Node < 0 {
			return fmt.Errorf("faults: brownout %s names a negative node", b)
		}
		if b.Len == 0 {
			return fmt.Errorf("faults: brownout %s has a zero-length window", b)
		}
		if retryable == nil {
			return fmt.Errorf("faults: brownout %s loses messages but no end-to-end retry exists", b)
		}
	}
	return nil
}

// fmtProb renders a probability in the shortest form that re-parses to
// the identical float64.
func fmtProb(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// appendRule renders one rule's settings as plan items.
func appendRule(items []string, r Rule) []string {
	if r.DelayProb > 0 {
		items = append(items, fmt.Sprintf("delay=%s:%d:%d", fmtProb(r.DelayProb), r.DelayMin, r.DelayMax))
	}
	if r.DupProb > 0 {
		items = append(items, fmt.Sprintf("dup=%s:%d", fmtProb(r.DupProb), r.DupDelayMax))
	}
	if r.ReorderProb > 0 {
		items = append(items, fmt.Sprintf("reorder=%s:%d", fmtProb(r.ReorderProb), r.ReorderMax))
	}
	if r.DropProb > 0 {
		items = append(items, fmt.Sprintf("drop=%s", fmtProb(r.DropProb)))
	}
	return items
}

// String renders the plan in the textual format ParsePlan accepts, so
// ParsePlan(p.String()) reproduces p (kind overrides sorted by kind;
// entirely zero overrides are omitted, as are zero magnitudes attached to
// zero probabilities). Kind prefixes use registered mnemonics when
// available, raw integers otherwise — ParsePlan accepts both.
func (p Plan) String() string {
	var items []string
	items = appendRule(items, p.Default)
	if p.From != 0 || p.Until != 0 {
		items = append(items, fmt.Sprintf("window=%d:%d", p.From, p.Until))
	}
	for _, o := range p.Outages {
		items = append(items, o.String())
	}
	for _, b := range p.Brownouts {
		items = append(items, b.String())
	}
	clauses := []string{strings.Join(items, ",")}
	if clauses[0] == "" {
		clauses = clauses[:0]
	}
	kinds := make([]int, 0, len(p.ByKind))
	for k := range p.ByKind {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		r := p.ByKind[k]
		if r.Zero() {
			continue
		}
		prefix := strconv.Itoa(k)
		if kindNamer != nil {
			prefix = kindNamer(k)
		}
		clauses = append(clauses, prefix+":"+strings.Join(appendRule(nil, r), ","))
	}
	return strings.Join(clauses, ";")
}

// ParsePlan parses the textual plan format used by the FaultPlan
// configuration knob and the -faults command-line flag.
//
// A plan is a semicolon-separated list of clauses. The first clause
// without a "KIND:" prefix is the default rule; a clause prefixed with a
// message kind — its mnemonic (see protocol.MsgName) or raw integer —
// overrides the default for that kind. Each clause is a comma-separated
// list of settings:
//
//	delay=P[:MIN:MAX]   extra in-flight latency with probability P,
//	                    uniform in [MIN,MAX] cycles (default 1:64)
//	dup=P[:MAX]         duplicate delivery with probability P, the copy
//	                    re-sent within MAX cycles (default 32)
//	reorder=P[:MAX]     hold before sending with probability P, up to MAX
//	                    cycles (default 64); per-(src,dst) FIFO preserved
//	drop=P              drop with probability P (the mesh transport
//	                    retransmits until delivered)
//	window=FROM:UNTIL   inject only within [FROM,UNTIL) simulated cycles
//	                    (top level; UNTIL=0 means unbounded)
//	down=A-B:FROM:LEN   the mesh link between adjacent nodes A and B is
//	                    down for [FROM,FROM+LEN) cycles (top level;
//	                    repeatable)
//	brown=NODE:FROM:LEN node NODE drops everything it receives during
//	                    [FROM,FROM+LEN) cycles (top level; repeatable)
//
// Example: "drop=0.1,delay=0.05:1:64;down=0-1:20000:5000" drops a tenth
// of all traffic, jitters some of the rest, and takes the 0–1 link down
// for 5000 cycles.
func ParsePlan(s string) (Plan, error) {
	p := Plan{ByKind: map[int]Rule{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	seenDefault := false
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return Plan{}, fmt.Errorf("faults: empty clause (stray %q?)", ";")
		}
		kind := -1
		if i := strings.Index(clause, ":"); i > 0 && !strings.Contains(clause[:i], "=") {
			prefix := strings.TrimSpace(clause[:i])
			if k, err := strconv.Atoi(prefix); err == nil {
				kind = k
				clause = clause[i+1:]
			} else if kindParser != nil {
				k, ok := kindParser(prefix)
				if !ok {
					return Plan{}, fmt.Errorf("faults: unknown message kind %q", prefix)
				}
				kind = k
				clause = clause[i+1:]
			} else {
				return Plan{}, fmt.Errorf("faults: unknown message kind %q (no kind names registered)", prefix)
			}
		}
		var r Rule
		ruleItems := false // clause carries delay/dup/reorder/drop settings
		for _, item := range strings.Split(clause, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				return Plan{}, fmt.Errorf("faults: empty setting in clause %q", clause)
			}
			key, val, ok := strings.Cut(item, "=")
			if !ok {
				return Plan{}, fmt.Errorf("faults: malformed setting %q (want key=value)", item)
			}
			args := strings.Split(val, ":")
			prob := func() (float64, error) {
				f, err := strconv.ParseFloat(args[0], 64)
				if err != nil || f < 0 || f > 1 {
					return 0, fmt.Errorf("faults: %s probability %q not in [0,1]", key, args[0])
				}
				return f, nil
			}
			cyc := func(i int, def uint64) (uint64, error) {
				if i >= len(args) {
					return def, nil
				}
				n, err := strconv.ParseUint(args[i], 10, 64)
				if err != nil {
					return 0, fmt.Errorf("faults: %s cycle count %q: %v", key, args[i], err)
				}
				return n, nil
			}
			var err error
			switch key {
			case "delay", "dup", "reorder", "drop":
				ruleItems = true
			}
			switch key {
			case "delay":
				if r.DelayProb, err = prob(); err != nil {
					return Plan{}, err
				}
				if r.DelayMin, err = cyc(1, 1); err != nil {
					return Plan{}, err
				}
				if r.DelayMax, err = cyc(2, maxU64(64, r.DelayMin)); err != nil {
					return Plan{}, err
				}
			case "dup":
				if r.DupProb, err = prob(); err != nil {
					return Plan{}, err
				}
				if r.DupDelayMax, err = cyc(1, 32); err != nil {
					return Plan{}, err
				}
			case "reorder":
				if r.ReorderProb, err = prob(); err != nil {
					return Plan{}, err
				}
				if r.ReorderMax, err = cyc(1, 64); err != nil {
					return Plan{}, err
				}
			case "drop":
				if r.DropProb, err = prob(); err != nil {
					return Plan{}, err
				}
			case "window":
				if kind >= 0 {
					return Plan{}, fmt.Errorf("faults: window applies to the whole plan, not kind %s", kindLabel(kind))
				}
				if len(args) != 2 {
					return Plan{}, fmt.Errorf("faults: window wants FROM:UNTIL, got %q", val)
				}
				if p.From, err = cyc(0, 0); err != nil {
					return Plan{}, err
				}
				if p.Until, err = cyc(1, 0); err != nil {
					return Plan{}, err
				}
			case "down":
				if kind >= 0 {
					return Plan{}, fmt.Errorf("faults: down applies to the whole plan, not kind %s", kindLabel(kind))
				}
				if len(args) != 3 {
					return Plan{}, fmt.Errorf("faults: down wants A-B:FROM:LEN, got %q", val)
				}
				a, b, ok := strings.Cut(args[0], "-")
				if !ok {
					return Plan{}, fmt.Errorf("faults: down link %q wants A-B", args[0])
				}
				var o Outage
				if o.A, err = strconv.Atoi(a); err != nil {
					return Plan{}, fmt.Errorf("faults: down link node %q: %v", a, err)
				}
				if o.B, err = strconv.Atoi(b); err != nil {
					return Plan{}, fmt.Errorf("faults: down link node %q: %v", b, err)
				}
				if o.From, err = cyc(1, 0); err != nil {
					return Plan{}, err
				}
				if o.Len, err = cyc(2, 0); err != nil {
					return Plan{}, err
				}
				p.Outages = append(p.Outages, o)
			case "brown":
				if kind >= 0 {
					return Plan{}, fmt.Errorf("faults: brown applies to the whole plan, not kind %s", kindLabel(kind))
				}
				if len(args) != 3 {
					return Plan{}, fmt.Errorf("faults: brown wants NODE:FROM:LEN, got %q", val)
				}
				var br Brownout
				if br.Node, err = strconv.Atoi(args[0]); err != nil {
					return Plan{}, fmt.Errorf("faults: brown node %q: %v", args[0], err)
				}
				if br.From, err = cyc(1, 0); err != nil {
					return Plan{}, err
				}
				if br.Len, err = cyc(2, 0); err != nil {
					return Plan{}, err
				}
				p.Brownouts = append(p.Brownouts, br)
			default:
				return Plan{}, fmt.Errorf("faults: unknown setting %q (want delay, dup, reorder, drop, window, down, or brown)", key)
			}
		}
		switch {
		case kind >= 0:
			if _, dup := p.ByKind[kind]; dup {
				return Plan{}, fmt.Errorf("faults: duplicate clause for kind %s", kindLabel(kind))
			}
			p.ByKind[kind] = r
		case ruleItems:
			if seenDefault {
				return Plan{}, fmt.Errorf("faults: more than one default clause")
			}
			seenDefault = true
			p.Default = r
		}
	}
	if err := p.Default.validate(); err != nil {
		return Plan{}, err
	}
	for _, k := range sortedKinds(p.ByKind) {
		if err := p.ByKind[k].validate(); err != nil {
			return Plan{}, fmt.Errorf("faults: kind %s: %w", kindLabel(k), err)
		}
	}
	return p, nil
}

func sortedKinds(m map[int]Rule) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Fault is one concrete injection decision for one message.
type Fault struct {
	// PreDelay holds the message back before it enters the network
	// (reordering); ExtraLat is added to its in-flight latency (jitter).
	PreDelay, ExtraLat uint64
	// Duplicate requests a second delivery, re-entering the network
	// DupDelay cycles after the original.
	Duplicate bool
	DupDelay  uint64
	// Drop discards the message; the transport's retransmission timer
	// recovers it.
	Drop bool
}

// Injector turns a Plan into per-message Fault decisions from a seeded
// deterministic stream.
type Injector struct {
	rng  *RNG
	plan Plan
	seed uint64

	decided, faulted uint64
}

// NewInjector returns an injector for the plan whose schedule is a pure
// function of seed.
func NewInjector(seed uint64, plan Plan) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{rng: NewRNG(seed), plan: plan, seed: seed}
}

// Seed returns the seed the injector was built with — printed in failure
// reports so a failing schedule can be replayed.
func (in *Injector) Seed() uint64 { return in.seed }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Validate checks the plan against the set of retryable message kinds.
func (in *Injector) Validate(retryable func(kind int) bool) error {
	return in.plan.Validate(retryable)
}

// Decide draws the fault decision for one message. It must be called in
// deterministic (engine) order; the decision stream is a pure function of
// the injector's seed and the call sequence.
func (in *Injector) Decide(kind, src, dst, size int, now uint64) Fault {
	var f Fault
	if !in.plan.Active(now) {
		return f
	}
	r := in.plan.RuleFor(kind)
	if r.Zero() {
		return f
	}
	in.decided++
	if r.DropProb > 0 && in.rng.Float64() < r.DropProb {
		f.Drop = true
		in.faulted++
		return f
	}
	if r.ReorderProb > 0 && in.rng.Float64() < r.ReorderProb {
		f.PreDelay = 1 + in.rng.Uint64n(maxU64(r.ReorderMax, 1))
	}
	if r.DelayProb > 0 && in.rng.Float64() < r.DelayProb {
		f.ExtraLat = r.DelayMin + in.rng.Uint64n(r.DelayMax-r.DelayMin+1)
	}
	if r.DupProb > 0 && in.rng.Float64() < r.DupProb {
		f.Duplicate = true
		f.DupDelay = 1 + in.rng.Uint64n(maxU64(r.DupDelayMax, 1))
	}
	if f.PreDelay > 0 || f.ExtraLat > 0 || f.Duplicate {
		in.faulted++
	}
	return f
}

// Stats returns how many messages were considered and how many received at
// least one fault.
func (in *Injector) Stats() (decided, faulted uint64) { return in.decided, in.faulted }
