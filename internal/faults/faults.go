// Package faults provides deterministic, seed-replayable fault injection
// for the simulated interconnect. A Plan describes, per message kind, the
// probability and magnitude of injected extra delay (in-flight jitter),
// duplication, and reordering, plus a drop mode that is only legal for
// message kinds with an end-to-end retry; an Injector draws from a seeded
// SplitMix64 stream to turn the plan into concrete Fault decisions.
//
// Determinism: the injector consumes its random stream in Decide-call
// order, and Decide is called from the (single-threaded, deterministic)
// simulation engine, so a given (seed, plan, workload) triple produces an
// identical fault schedule — and therefore an identical simulation — on
// every run. With no injector attached the simulation is bit-identical to
// a build without this package.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Rule gives the injection probabilities and magnitudes for one message
// kind (or for all kinds, as Plan.Default). All probabilities are in
// [0, 1]; all magnitudes are in simulated cycles.
type Rule struct {
	// DelayProb is the chance of adding in-flight latency jitter, drawn
	// uniformly from [DelayMin, DelayMax]. Jitter shifts a message's
	// arrival but cannot reorder messages bound for the same destination.
	DelayProb          float64
	DelayMin, DelayMax uint64

	// DupProb is the chance the message is delivered twice; the duplicate
	// re-enters the network up to DupDelayMax cycles after the original.
	// Receivers deduplicate by transaction id, so duplication perturbs
	// timing and resource occupancy without double-applying protocol
	// actions.
	DupProb     float64
	DupDelayMax uint64

	// ReorderProb is the chance the message is held for up to ReorderMax
	// cycles before entering the network, letting later messages overtake
	// it. Per-(src,dst) FIFO order is still preserved — the mesh never
	// reorders two messages between the same pair of nodes, matching the
	// ordering guarantee of dimension-ordered routing that the protocols
	// are entitled to assume.
	ReorderProb float64
	ReorderMax  uint64

	// DropProb is the chance the message is silently discarded. Dropping
	// is only legal for message kinds registered as retryable with the
	// network (there are none in the base protocols, which — like the
	// hardware they model — assume a reliable fabric); attaching a plan
	// that drops a non-retryable kind is a configuration error.
	DropProb float64
}

// Zero reports whether the rule injects nothing.
func (r Rule) Zero() bool {
	return r.DelayProb == 0 && r.DupProb == 0 && r.ReorderProb == 0 && r.DropProb == 0
}

func (r Rule) validate() error {
	for _, p := range []float64{r.DelayProb, r.DupProb, r.ReorderProb, r.DropProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: probability %v outside [0,1]", p)
		}
	}
	if r.DelayProb > 0 && r.DelayMax < r.DelayMin {
		return fmt.Errorf("faults: delay window [%d,%d] is empty", r.DelayMin, r.DelayMax)
	}
	return nil
}

// Plan is a complete fault-injection schedule description: a default rule,
// per-message-kind overrides, and an optional active window in simulated
// time.
type Plan struct {
	Default Rule
	ByKind  map[int]Rule

	// From and Until bound the window of simulated time in which faults
	// are injected; Until == 0 means unbounded.
	From, Until uint64
}

// Empty reports whether the plan injects nothing anywhere.
func (p Plan) Empty() bool {
	if !p.Default.Zero() {
		return false
	}
	for _, r := range p.ByKind {
		if !r.Zero() {
			return false
		}
	}
	return true
}

// RuleFor returns the rule applying to the given message kind.
func (p Plan) RuleFor(kind int) Rule {
	if r, ok := p.ByKind[kind]; ok {
		return r
	}
	return p.Default
}

// Active reports whether the plan injects at simulated time now.
func (p Plan) Active(now uint64) bool {
	return now >= p.From && (p.Until == 0 || now < p.Until)
}

// Validate checks probabilities and windows, and — given the set of
// retryable message kinds — rejects drop rules on kinds whose loss the
// protocols cannot recover from.
func (p Plan) Validate(retryable func(kind int) bool) error {
	if err := p.Default.validate(); err != nil {
		return err
	}
	if p.Default.DropProb > 0 {
		return fmt.Errorf("faults: default rule drops messages; drops must name a retryable kind explicitly")
	}
	kinds := make([]int, 0, len(p.ByKind))
	for k := range p.ByKind {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		r := p.ByKind[k]
		if err := r.validate(); err != nil {
			return fmt.Errorf("faults: kind %d: %w", k, err)
		}
		if r.DropProb > 0 && (retryable == nil || !retryable(k)) {
			return fmt.Errorf("faults: kind %d has drop probability %v but no retry exists for it", k, r.DropProb)
		}
	}
	return nil
}

// ParsePlan parses the textual plan format used by the FaultPlan
// configuration knob and the -faults command-line flag.
//
// A plan is a semicolon-separated list of clauses. The first clause
// without a "KIND:" prefix is the default rule; a clause prefixed with an
// integer message kind (see protocol.MsgKind) overrides the default for
// that kind. Each clause is a comma-separated list of settings:
//
//	delay=P[:MIN:MAX]   extra in-flight latency with probability P,
//	                    uniform in [MIN,MAX] cycles (default 1:64)
//	dup=P[:MAX]         duplicate delivery with probability P, the copy
//	                    re-sent within MAX cycles (default 32)
//	reorder=P[:MAX]     hold before sending with probability P, up to MAX
//	                    cycles (default 64); per-(src,dst) FIFO preserved
//	drop=P              drop with probability P (retryable kinds only)
//	window=FROM:UNTIL   inject only within [FROM,UNTIL) simulated cycles
//	                    (top level; UNTIL=0 means unbounded)
//
// Example: "delay=0.1:1:64,dup=0.05:32;7:delay=0.5:1:16" adds jitter and
// duplication to all traffic and heavier jitter to message kind 7.
func ParsePlan(s string) (Plan, error) {
	p := Plan{ByKind: map[int]Rule{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	seenDefault := false
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind := -1
		if i := strings.Index(clause, ":"); i > 0 {
			if k, err := strconv.Atoi(strings.TrimSpace(clause[:i])); err == nil {
				kind = k
				clause = clause[i+1:]
			}
		}
		var r Rule
		for _, item := range strings.Split(clause, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			key, val, ok := strings.Cut(item, "=")
			if !ok {
				return Plan{}, fmt.Errorf("faults: malformed setting %q (want key=value)", item)
			}
			args := strings.Split(val, ":")
			prob := func() (float64, error) {
				f, err := strconv.ParseFloat(args[0], 64)
				if err != nil || f < 0 || f > 1 {
					return 0, fmt.Errorf("faults: %s probability %q not in [0,1]", key, args[0])
				}
				return f, nil
			}
			cyc := func(i int, def uint64) (uint64, error) {
				if i >= len(args) {
					return def, nil
				}
				n, err := strconv.ParseUint(args[i], 10, 64)
				if err != nil {
					return 0, fmt.Errorf("faults: %s cycle count %q: %v", key, args[i], err)
				}
				return n, nil
			}
			var err error
			switch key {
			case "delay":
				if r.DelayProb, err = prob(); err != nil {
					return Plan{}, err
				}
				if r.DelayMin, err = cyc(1, 1); err != nil {
					return Plan{}, err
				}
				if r.DelayMax, err = cyc(2, maxU64(64, r.DelayMin)); err != nil {
					return Plan{}, err
				}
			case "dup":
				if r.DupProb, err = prob(); err != nil {
					return Plan{}, err
				}
				if r.DupDelayMax, err = cyc(1, 32); err != nil {
					return Plan{}, err
				}
			case "reorder":
				if r.ReorderProb, err = prob(); err != nil {
					return Plan{}, err
				}
				if r.ReorderMax, err = cyc(1, 64); err != nil {
					return Plan{}, err
				}
			case "drop":
				if r.DropProb, err = prob(); err != nil {
					return Plan{}, err
				}
			case "window":
				if kind >= 0 {
					return Plan{}, fmt.Errorf("faults: window applies to the whole plan, not kind %d", kind)
				}
				if len(args) != 2 {
					return Plan{}, fmt.Errorf("faults: window wants FROM:UNTIL, got %q", val)
				}
				if p.From, err = cyc(0, 0); err != nil {
					return Plan{}, err
				}
				if p.Until, err = cyc(1, 0); err != nil {
					return Plan{}, err
				}
			default:
				return Plan{}, fmt.Errorf("faults: unknown setting %q (want delay, dup, reorder, drop, or window)", key)
			}
		}
		if kind >= 0 {
			p.ByKind[kind] = r
		} else {
			if seenDefault {
				return Plan{}, fmt.Errorf("faults: more than one default clause")
			}
			seenDefault = true
			p.Default = r
		}
	}
	if err := p.Default.validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Fault is one concrete injection decision for one message.
type Fault struct {
	// PreDelay holds the message back before it enters the network
	// (reordering); ExtraLat is added to its in-flight latency (jitter).
	PreDelay, ExtraLat uint64
	// Duplicate requests a second delivery, re-entering the network
	// DupDelay cycles after the original.
	Duplicate bool
	DupDelay  uint64
	// Drop discards the message (retryable kinds only).
	Drop bool
}

// Injector turns a Plan into per-message Fault decisions from a seeded
// deterministic stream.
type Injector struct {
	rng  *RNG
	plan Plan
	seed uint64

	decided, faulted uint64
}

// NewInjector returns an injector for the plan whose schedule is a pure
// function of seed.
func NewInjector(seed uint64, plan Plan) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{rng: NewRNG(seed), plan: plan, seed: seed}
}

// Seed returns the seed the injector was built with — printed in failure
// reports so a failing schedule can be replayed.
func (in *Injector) Seed() uint64 { return in.seed }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Validate checks the plan against the set of retryable message kinds.
func (in *Injector) Validate(retryable func(kind int) bool) error {
	return in.plan.Validate(retryable)
}

// Decide draws the fault decision for one message. It must be called in
// deterministic (engine) order; the decision stream is a pure function of
// the injector's seed and the call sequence.
func (in *Injector) Decide(kind, src, dst, size int, now uint64) Fault {
	var f Fault
	if !in.plan.Active(now) {
		return f
	}
	r := in.plan.RuleFor(kind)
	if r.Zero() {
		return f
	}
	in.decided++
	if r.DropProb > 0 && in.rng.Float64() < r.DropProb {
		f.Drop = true
		in.faulted++
		return f
	}
	if r.ReorderProb > 0 && in.rng.Float64() < r.ReorderProb {
		f.PreDelay = 1 + in.rng.Uint64n(maxU64(r.ReorderMax, 1))
	}
	if r.DelayProb > 0 && in.rng.Float64() < r.DelayProb {
		f.ExtraLat = r.DelayMin + in.rng.Uint64n(r.DelayMax-r.DelayMin+1)
	}
	if r.DupProb > 0 && in.rng.Float64() < r.DupProb {
		f.Duplicate = true
		f.DupDelay = 1 + in.rng.Uint64n(maxU64(r.DupDelayMax, 1))
	}
	if f.PreDelay > 0 || f.ExtraLat > 0 || f.Duplicate {
		in.faulted++
	}
	return f
}

// Stats returns how many messages were considered and how many received at
// least one fault.
func (in *Injector) Stats() (decided, faulted uint64) { return in.decided, in.faulted }
