package faults

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestRNGDeterminismAndSplit(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	// A split stream must be deterministic too, and unrelated to its
	// parent's continuation.
	c := NewRNG(7)
	for i := 0; i < 1000; i++ {
		c.Uint64()
	}
	s1, s2 := c.Split(), NewRNG(7)
	for i := 0; i < 1000; i++ {
		s2.Uint64()
	}
	s3 := s2.Split()
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s3.Uint64() {
			t.Fatalf("equivalent splits diverged at draw %d", i)
		}
	}
}

func TestRNGStreamIsStable(t *testing.T) {
	// Pin the first draws of seed 1: the whole chaos harness's
	// replayability rests on this stream never changing across Go
	// versions or refactors.
	r := NewRNG(1)
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
		0x71c18690ee42c90b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
	f := NewRNG(123).Float64()
	if f < 0 || f >= 1 {
		t.Fatalf("Float64 = %v outside [0,1)", f)
	}
	if NewRNG(5).Uint64n(1) != 0 {
		t.Fatal("Uint64n(1) must be 0")
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("delay=0.1:2:64,dup=0.05:32,reorder=0.02:48,window=100:5000;7:delay=0.5:1:16;9:drop=0.25")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Default
	if d.DelayProb != 0.1 || d.DelayMin != 2 || d.DelayMax != 64 {
		t.Fatalf("delay rule = %+v", d)
	}
	if d.DupProb != 0.05 || d.DupDelayMax != 32 {
		t.Fatalf("dup rule = %+v", d)
	}
	if d.ReorderProb != 0.02 || d.ReorderMax != 48 {
		t.Fatalf("reorder rule = %+v", d)
	}
	if p.From != 100 || p.Until != 5000 {
		t.Fatalf("window = [%d,%d)", p.From, p.Until)
	}
	if r := p.RuleFor(7); r.DelayProb != 0.5 || r.DelayMax != 16 {
		t.Fatalf("kind-7 override = %+v", r)
	}
	if r := p.RuleFor(9); r.DropProb != 0.25 {
		t.Fatalf("kind-9 override = %+v", r)
	}
	if r := p.RuleFor(3); r != d {
		t.Fatalf("unlisted kind does not fall back to default: %+v", r)
	}
	if !p.Active(100) || p.Active(99) || p.Active(5000) {
		t.Fatal("window activity wrong at its boundaries")
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("delay=0.1;dup=0.2") // second default clause
	if err == nil {
		t.Fatal("two default clauses accepted")
	}
	p, err = ParsePlan("delay=0.1,dup=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Default.DelayMin != 1 || p.Default.DelayMax != 64 || p.Default.DupDelayMax != 32 {
		t.Fatalf("defaulted magnitudes = %+v", p.Default)
	}
	if p, err = ParsePlan(""); err != nil || !p.Empty() {
		t.Fatalf("empty plan: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"delay=1.5", "delay", "frob=0.1", "delay=0.1:9:3", "7:window=1:2", "dup=x",
		"drop=0.1;;delay=0.2", "drop=-0.1", "drop=0.1,", "window=1",
		"down=0:100:50", "down=0-1:100", "down=a-1:100:50", "down=0-b:100:50",
		"7:down=0-1:100:50", "brown=2:100", "brown=x:100:50", "3:brown=2:100:50",
		"7:drop=0.1;7:dup=0.2", "NoSuchKind:drop=0.1",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestParsePlanSchedules(t *testing.T) {
	p, err := ParsePlan("drop=0.1;down=0-1:20000:5000;down=4-5:100:10;brown=2:40000:3000")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Outages) != 2 || len(p.Brownouts) != 1 {
		t.Fatalf("schedules = %d outages, %d brownouts", len(p.Outages), len(p.Brownouts))
	}
	if !p.LinkDown(0, 1, 20000) || !p.LinkDown(1, 0, 24999) || p.LinkDown(0, 1, 25000) || p.LinkDown(0, 2, 20000) {
		t.Fatal("LinkDown wrong at window boundaries")
	}
	if !p.NodeBrowned(2, 40000) || p.NodeBrowned(2, 43000) || p.NodeBrowned(3, 40000) {
		t.Fatal("NodeBrowned wrong at window boundaries")
	}
	// Scheduled losses are independent of the probabilistic window.
	p, err = ParsePlan("window=100:200,down=0-1:500:50")
	if err != nil {
		t.Fatal(err)
	}
	if p.Active(500) || !p.LinkDown(0, 1, 500) {
		t.Fatal("outage must cover times outside the probabilistic window")
	}
}

// TestPlanStringRoundTrip: ParsePlan(p.String()) must reproduce p for a
// corpus of plans drawn over every clause type — String is how plans are
// recorded in reports and replayed, so a lossy rendering silently
// changes the experiment on replay.
func TestPlanStringRoundTrip(t *testing.T) {
	corpus := []string{
		"",
		"drop=0.1",
		"delay=0.1:2:64,dup=0.05:32,reorder=0.02:48,window=100:5000;7:delay=0.5:1:16;9:drop=0.25",
		"drop=0.1;down=0-1:20000:5000;brown=2:40000:3000",
		"drop=0.02,delay=0.125:1:7;down=3-7:1:2;down=0-1:9:9;brown=0:5:5;brown=15:1:100",
		"dup=0.333;2:reorder=0.75:9",
	}
	// A seeded generator widens the corpus beyond the hand-picked cases.
	rng := NewRNG(42)
	for i := 0; i < 200; i++ {
		var items []string
		items = append(items, "drop="+fmtProb(float64(rng.Uint64n(1000))/1000))
		if rng.Uint64n(2) == 0 {
			lo := 1 + rng.Uint64n(50)
			items = append(items, fmt.Sprintf("delay=%s:%d:%d", fmtProb(float64(rng.Uint64n(999)+1)/1000), lo, lo+rng.Uint64n(100)))
		}
		if rng.Uint64n(2) == 0 {
			items = append(items, fmt.Sprintf("window=%d:%d", rng.Uint64n(100), 1000+rng.Uint64n(1000)))
		}
		s := strings.Join(items, ",")
		if rng.Uint64n(2) == 0 {
			s += fmt.Sprintf(";down=%d-%d:%d:%d", rng.Uint64n(8), 8+rng.Uint64n(8), rng.Uint64n(10000), 1+rng.Uint64n(10000))
		}
		if rng.Uint64n(2) == 0 {
			s += fmt.Sprintf(";%d:dup=%s", 1+rng.Uint64n(12), fmtProb(float64(rng.Uint64n(999)+1)/1000))
		}
		corpus = append(corpus, s)
	}
	for _, src := range corpus {
		p, err := ParsePlan(src)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", src, err)
		}
		rendered := p.String()
		q, err := ParsePlan(rendered)
		if err != nil {
			t.Fatalf("ParsePlan(%q) (rendered from %q): %v", rendered, src, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the plan:\n source  %q\n render  %q\n before  %+v\n after   %+v", src, rendered, p, q)
		}
		if again := q.String(); again != rendered {
			t.Fatalf("String not a fixed point: %q then %q", rendered, again)
		}
	}
}

// TestKindNameRegistration: registered mnemonics parse in plan text and
// render in errors and String; unregistering restores raw integers.
func TestKindNameRegistration(t *testing.T) {
	names := map[int]string{2: "WriteReq", 5: "Inval"}
	RegisterKindNames(
		func(k int) string {
			if n, ok := names[k]; ok {
				return n
			}
			return fmt.Sprintf("kind%d", k)
		},
		func(s string) (int, bool) {
			for k, n := range names {
				if n == s {
					return k, true
				}
			}
			return 0, false
		},
	)
	defer RegisterKindNames(nil, nil)
	p, err := ParsePlan("WriteReq:drop=0.5;Inval:dup=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.ByKind[2].DropProb != 0.5 || p.ByKind[5].DupProb != 0.25 {
		t.Fatalf("mnemonic clauses misassigned: %+v", p.ByKind)
	}
	if s := p.String(); s != "WriteReq:drop=0.5;Inval:dup=0.25:32" {
		t.Fatalf("String with names = %q", s)
	}
	if q, err := ParsePlan(p.String()); err != nil || !reflect.DeepEqual(p, q) {
		t.Fatalf("named plan does not round-trip: %+v vs %+v (%v)", p, q, err)
	}
	if _, err := ParsePlan("ReadReq:drop=0.1"); err == nil {
		t.Fatal("unregistered mnemonic accepted")
	}
	// Validation errors name the kind.
	if err := p.Validate(nil); err == nil || !strings.Contains(err.Error(), "WriteReq(2)") {
		t.Fatalf("validation error lacks the kind mnemonic: %v", err)
	}
}

func TestValidateRejectsUnprotectedDrops(t *testing.T) {
	p, err := ParsePlan("3:drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(nil); err == nil {
		t.Fatal("drop with no end-to-end retry accepted")
	}
	if err := p.Validate(func(k int) bool { return k == 3 }); err != nil {
		t.Fatalf("drop on a retryable kind rejected: %v", err)
	}
	if err := p.Validate(func(k int) bool { return k == 4 }); err == nil {
		t.Fatal("drop on a non-retryable kind accepted")
	}
	// A dropping default rule is legal under universal retry (the mesh
	// transport) and illegal without one.
	p, err = ParsePlan("drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(func(int) bool { return true }); err != nil {
		t.Fatalf("dropping default rejected despite universal retry: %v", err)
	}
	if err := p.Validate(nil); err == nil {
		t.Fatal("dropping default accepted with no retry at all")
	}
	// Scheduled losses need a retry too.
	for _, s := range []string{"down=0-1:100:50", "brown=3:100:50"} {
		p, err := ParsePlan(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(nil); err == nil {
			t.Fatalf("%q accepted with no retry", s)
		}
		if err := p.Validate(func(int) bool { return true }); err != nil {
			t.Fatalf("%q rejected despite retry: %v", s, err)
		}
	}
}

func TestDecideIsSeedDeterministic(t *testing.T) {
	plan, err := ParsePlan("delay=0.3:1:64,dup=0.2:32,reorder=0.1:48")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(11, plan), NewInjector(11, plan)
	faulted := 0
	for i := 0; i < 5000; i++ {
		fa := a.Decide(i%8, 0, 1, 0, uint64(i))
		fb := b.Decide(i%8, 0, 1, 0, uint64(i))
		if fa != fb {
			t.Fatalf("same-seed injectors diverged at decision %d: %+v vs %+v", i, fa, fb)
		}
		if fa.PreDelay > 0 || fa.ExtraLat > 0 || fa.Duplicate {
			faulted++
		}
		if fa.ExtraLat > 64 || (fa.ExtraLat > 0 && fa.ExtraLat < 1) {
			t.Fatalf("delay %d outside [1,64]", fa.ExtraLat)
		}
		if fa.PreDelay > 48 {
			t.Fatalf("reorder hold %d outside [0,48]", fa.PreDelay)
		}
	}
	if faulted == 0 {
		t.Fatal("no faults drawn in 5000 decisions at these probabilities")
	}
	decided, nf := a.Stats()
	if decided != 5000 || nf != uint64(faulted) {
		t.Fatalf("stats = %d/%d, counted %d/5000", nf, decided, faulted)
	}
	c := NewInjector(12, plan)
	diverged := false
	for i := 0; i < 5000 && !diverged; i++ {
		if c.Decide(i%8, 0, 1, 0, uint64(i)) != a.Decide(i%8, 0, 1, 0, uint64(i)) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestDecideRespectsWindow(t *testing.T) {
	plan, err := ParsePlan("dup=1,window=100:200")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(1, plan)
	if f := in.Decide(0, 0, 1, 0, 50); f.Duplicate {
		t.Fatal("fault injected before the window opens")
	}
	if f := in.Decide(0, 0, 1, 0, 150); !f.Duplicate {
		t.Fatal("no fault inside the window at probability 1")
	}
	if f := in.Decide(0, 0, 1, 0, 200); f.Duplicate {
		t.Fatal("fault injected after the window closes")
	}
}
