package faults

import (
	"testing"
)

func TestRNGDeterminismAndSplit(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	// A split stream must be deterministic too, and unrelated to its
	// parent's continuation.
	c := NewRNG(7)
	for i := 0; i < 1000; i++ {
		c.Uint64()
	}
	s1, s2 := c.Split(), NewRNG(7)
	for i := 0; i < 1000; i++ {
		s2.Uint64()
	}
	s3 := s2.Split()
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s3.Uint64() {
			t.Fatalf("equivalent splits diverged at draw %d", i)
		}
	}
}

func TestRNGStreamIsStable(t *testing.T) {
	// Pin the first draws of seed 1: the whole chaos harness's
	// replayability rests on this stream never changing across Go
	// versions or refactors.
	r := NewRNG(1)
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
		0x71c18690ee42c90b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
	f := NewRNG(123).Float64()
	if f < 0 || f >= 1 {
		t.Fatalf("Float64 = %v outside [0,1)", f)
	}
	if NewRNG(5).Uint64n(1) != 0 {
		t.Fatal("Uint64n(1) must be 0")
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("delay=0.1:2:64,dup=0.05:32,reorder=0.02:48,window=100:5000;7:delay=0.5:1:16;9:drop=0.25")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Default
	if d.DelayProb != 0.1 || d.DelayMin != 2 || d.DelayMax != 64 {
		t.Fatalf("delay rule = %+v", d)
	}
	if d.DupProb != 0.05 || d.DupDelayMax != 32 {
		t.Fatalf("dup rule = %+v", d)
	}
	if d.ReorderProb != 0.02 || d.ReorderMax != 48 {
		t.Fatalf("reorder rule = %+v", d)
	}
	if p.From != 100 || p.Until != 5000 {
		t.Fatalf("window = [%d,%d)", p.From, p.Until)
	}
	if r := p.RuleFor(7); r.DelayProb != 0.5 || r.DelayMax != 16 {
		t.Fatalf("kind-7 override = %+v", r)
	}
	if r := p.RuleFor(9); r.DropProb != 0.25 {
		t.Fatalf("kind-9 override = %+v", r)
	}
	if r := p.RuleFor(3); r != d {
		t.Fatalf("unlisted kind does not fall back to default: %+v", r)
	}
	if !p.Active(100) || p.Active(99) || p.Active(5000) {
		t.Fatal("window activity wrong at its boundaries")
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("delay=0.1;dup=0.2") // second default clause
	if err == nil {
		t.Fatal("two default clauses accepted")
	}
	p, err = ParsePlan("delay=0.1,dup=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Default.DelayMin != 1 || p.Default.DelayMax != 64 || p.Default.DupDelayMax != 32 {
		t.Fatalf("defaulted magnitudes = %+v", p.Default)
	}
	if p, err = ParsePlan(""); err != nil || !p.Empty() {
		t.Fatalf("empty plan: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"delay=1.5", "delay", "frob=0.1", "delay=0.1:9:3", "7:window=1:2", "dup=x",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestValidateRejectsUnprotectedDrops(t *testing.T) {
	p, err := ParsePlan("3:drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(nil); err == nil {
		t.Fatal("drop with no retryable kinds accepted")
	}
	if err := p.Validate(func(k int) bool { return k == 3 }); err != nil {
		t.Fatalf("drop on a retryable kind rejected: %v", err)
	}
	if _, err := ParsePlan("drop=0.5"); err == nil {
		// Parse succeeds; Validate must reject a dropping default.
		p, _ := ParsePlan("drop=0.5")
		if err := p.Validate(func(int) bool { return true }); err == nil {
			t.Fatal("dropping default clause accepted")
		}
	}
}

func TestDecideIsSeedDeterministic(t *testing.T) {
	plan, err := ParsePlan("delay=0.3:1:64,dup=0.2:32,reorder=0.1:48")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(11, plan), NewInjector(11, plan)
	faulted := 0
	for i := 0; i < 5000; i++ {
		fa := a.Decide(i%8, 0, 1, 0, uint64(i))
		fb := b.Decide(i%8, 0, 1, 0, uint64(i))
		if fa != fb {
			t.Fatalf("same-seed injectors diverged at decision %d: %+v vs %+v", i, fa, fb)
		}
		if fa.PreDelay > 0 || fa.ExtraLat > 0 || fa.Duplicate {
			faulted++
		}
		if fa.ExtraLat > 64 || (fa.ExtraLat > 0 && fa.ExtraLat < 1) {
			t.Fatalf("delay %d outside [1,64]", fa.ExtraLat)
		}
		if fa.PreDelay > 48 {
			t.Fatalf("reorder hold %d outside [0,48]", fa.PreDelay)
		}
	}
	if faulted == 0 {
		t.Fatal("no faults drawn in 5000 decisions at these probabilities")
	}
	decided, nf := a.Stats()
	if decided != 5000 || nf != uint64(faulted) {
		t.Fatalf("stats = %d/%d, counted %d/5000", nf, decided, faulted)
	}
	c := NewInjector(12, plan)
	diverged := false
	for i := 0; i < 5000 && !diverged; i++ {
		if c.Decide(i%8, 0, 1, 0, uint64(i)) != a.Decide(i%8, 0, 1, 0, uint64(i)) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestDecideRespectsWindow(t *testing.T) {
	plan, err := ParsePlan("dup=1,window=100:200")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(1, plan)
	if f := in.Decide(0, 0, 1, 0, 50); f.Duplicate {
		t.Fatal("fault injected before the window opens")
	}
	if f := in.Decide(0, 0, 1, 0, 150); !f.Duplicate {
		t.Fatal("no fault inside the window at probability 1")
	}
	if f := in.Decide(0, 0, 1, 0, 200); f.Duplicate {
		t.Fatal("fault injected after the window closes")
	}
}
