package perf

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"

	"lazyrc/internal/telemetry"
)

// CellPerf is one matrix cell's profile handed to the HTML report.
type CellPerf struct {
	App   string
	Proto string
	Snap  Snapshot
}

// WriteHTML renders the perf report: a throughput table over the
// measured cells, a phase-time stack across the matrix (where does the
// wall clock go, cell by cell), and the cycles/sec trend over committed
// entries. It reuses the telemetry report shell so perf pages read as
// part of the same product, but every number here is wall-clock
// provenance, never simulated-state identity.
func WriteHTML(w io.Writer, subtitle string, cells []CellPerf, trend *Trend) error {
	doc := telemetry.NewHTMLDoc("simulator performance", subtitle)

	if len(cells) > 0 {
		doc.Section("Throughput by cell", cellTable(cells))
		doc.Section("Wall-clock phase breakdown by cell", phaseStack(cells))
	}
	if trend != nil && len(trend.Entries) > 0 {
		doc.Section(
			fmt.Sprintf("Cycles/sec trend (%d committed entries, scale %s, %d procs)",
				len(trend.Entries), trend.Scale, trend.Procs),
			trendChart(trend))
	}
	return doc.Render(w)
}

// cellTable renders the per-(app,proto) throughput and allocator table.
func cellTable(cells []CellPerf) string {
	var b strings.Builder
	b.WriteString("<table><tr><th>app</th><th>proto</th><th>cycles</th><th>events</th><th>wall</th><th>Mcycles/s</th><th>Mevents/s</th><th>alloc MB</th><th>gc</th></tr>\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%.2f</td><td>%.2f</td><td>%.1f</td><td>%d</td></tr>\n",
			html.EscapeString(c.App), html.EscapeString(c.Proto),
			c.Snap.Cycles, c.Snap.Events,
			time.Duration(c.Snap.WallNS).Truncate(time.Millisecond).String(),
			c.Snap.CyclesPerSec/1e6, c.Snap.EventsPerSec/1e6,
			float64(c.Snap.AllocBytes)/1e6, c.Snap.GCCycles)
	}
	b.WriteString("</table>\n")
	return b.String()
}

// phaseStack renders phase milliseconds stacked per cell, x = cell
// index in the order measured, one series per phase in taxonomy order.
func phaseStack(cells []CellPerf) string {
	times := make([]uint64, len(cells))
	var labels []string
	for i, c := range cells {
		times[i] = uint64(i)
		labels = append(labels, c.App+"/"+c.Proto)
	}
	var series []telemetry.ChartSeries
	for ph := Phase(0); ph < NumPhases; ph++ {
		pts := make([]float64, len(cells))
		any := false
		for i, c := range cells {
			ns := c.Snap.Phases[ph.String()]
			pts[i] = float64(ns) / 1e6 // ms
			if ns != 0 {
				any = true
			}
		}
		if any {
			series = append(series, telemetry.ChartSeries{Label: ph.String(), Slot: int(ph), Points: pts})
		}
	}
	var b strings.Builder
	b.WriteString(telemetry.StackedAreaChart(times, series, "ms"))
	// The x-axis is a cell index; spell out the mapping underneath.
	b.WriteString(`<p class="meta">x-axis: cell index — `)
	for i, l := range labels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d=%s", i, html.EscapeString(l))
	}
	b.WriteString("</p>\n")
	return b.String()
}

// trendChart renders one line per protocol: the mean cycles/sec over
// that protocol's cells, per committed trend entry (x = entry index).
func trendChart(trend *Trend) string {
	times := make([]uint64, len(trend.Entries))
	for i := range trend.Entries {
		times[i] = uint64(i)
	}
	// Stable protocol order: first appearance across entries.
	var protos []string
	seen := map[string]bool{}
	for _, e := range trend.Entries {
		for _, c := range e.Cells {
			if !seen[c.Proto] {
				seen[c.Proto] = true
				protos = append(protos, c.Proto)
			}
		}
	}
	var series []telemetry.ChartSeries
	for slot, proto := range protos {
		pts := make([]float64, len(trend.Entries))
		for i, e := range trend.Entries {
			var sum float64
			var n int
			for _, c := range e.Cells {
				if c.Proto == proto {
					sum += c.CyclesPerSec
					n++
				}
			}
			if n > 0 {
				pts[i] = sum / float64(n) / 1e6 // Mcycles/s
			}
		}
		series = append(series, telemetry.ChartSeries{Label: proto, Slot: slot, Points: pts})
	}
	var b strings.Builder
	b.WriteString(telemetry.LineChart(times, series, "Mcycles/s (mean over apps)"))
	b.WriteString("<table><tr><th>entry</th><th>when</th><th>host</th><th>go</th></tr>\n")
	for i, e := range trend.Entries {
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			i, html.EscapeString(e.When), html.EscapeString(e.Host), html.EscapeString(e.GoVersion))
	}
	b.WriteString("</table>\n")
	return b.String()
}
