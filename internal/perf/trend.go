package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// trendVersion stamps the on-disk schema so a future layout change can
// migrate or reject old files explicitly.
const trendVersion = "lazyrc-perf-trend-v1"

// Trend is the committed cycles/sec history: one file per (scale,
// procs) pinning, entries appended per machine+commit snapshot. Unlike
// BENCH_baseline.json it records speed, not correctness, so its gate is
// tolerance-banded and regression-only (faster is always fine).
type Trend struct {
	Version string       `json:"version"`
	Scale   string       `json:"scale"`
	Procs   int          `json:"procs"`
	Entries []TrendEntry `json:"entries"`
}

// TrendEntry is one recorded matrix timing: every (app, protocol) cell
// measured back-to-back on one host.
type TrendEntry struct {
	When      string      `json:"when"` // RFC3339, stamped by the caller
	GoVersion string      `json:"go_version"`
	Host      string      `json:"host"` // GOOS/GOARCH, ncpu
	Cells     []TrendCell `json:"cells"`
}

// TrendCell is one (app, protocol) timing measurement.
type TrendCell struct {
	App          string  `json:"app"`
	Proto        string  `json:"proto"`
	Cycles       uint64  `json:"cycles"`
	Events       uint64  `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocBytes   uint64  `json:"alloc_bytes"`
}

// HostString describes the measuring host the way trend entries record it.
func HostString() string {
	return fmt.Sprintf("%s/%s ncpu=%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// NewEntry stamps a fresh entry for this host. when is an RFC3339
// timestamp supplied by the caller (kept out of this package so tests
// stay deterministic).
func NewEntry(when string, cells []TrendCell) TrendEntry {
	sorted := append([]TrendCell(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].App != sorted[j].App {
			return sorted[i].App < sorted[j].App
		}
		return sorted[i].Proto < sorted[j].Proto
	})
	return TrendEntry{
		When:      when,
		GoVersion: runtime.Version(),
		Host:      HostString(),
		Cells:     sorted,
	}
}

// LoadTrend reads a trend file; a missing file yields an empty trend
// shaped for (scale, procs) so the first -perf-write bootstraps it.
func LoadTrend(path, scale string, procs int) (*Trend, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trend{Version: trendVersion, Scale: scale, Procs: procs}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trend
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("perf trend %s: %w", path, err)
	}
	if t.Version != trendVersion {
		return nil, fmt.Errorf("perf trend %s: version %q, want %q", path, t.Version, trendVersion)
	}
	if t.Scale != scale || t.Procs != procs {
		return nil, fmt.Errorf("perf trend %s: pinned to scale %s / %d procs, requested %s / %d (one trend file per matrix pinning)",
			path, t.Scale, t.Procs, scale, procs)
	}
	return &t, nil
}

// SaveTrend writes the trend file, pretty-printed for reviewable diffs.
func SaveTrend(path string, t *Trend) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Latest returns the newest entry, or false when the trend is empty.
func (t *Trend) Latest() (TrendEntry, bool) {
	if len(t.Entries) == 0 {
		return TrendEntry{}, false
	}
	return t.Entries[len(t.Entries)-1], true
}

// GateTrend compares fresh cell timings against a baseline entry and
// returns one violation string per regressed cell. Only slowdowns fail:
// a fresh cycles/sec below baseline*(1 - tolPct/100) regresses, and a
// baseline cell missing from the fresh set is a violation (the matrix
// shrank). Fresh cells without a baseline counterpart pass free — new
// apps/protocols join the trend on the next -perf-write.
func GateTrend(base TrendEntry, fresh []TrendCell, tolPct float64) []string {
	got := make(map[string]TrendCell, len(fresh))
	for _, c := range fresh {
		got[c.App+"/"+c.Proto] = c
	}
	var violations []string
	for _, b := range base.Cells {
		key := b.App + "/" + b.Proto
		f, ok := got[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: no fresh measurement (baseline %.0f cycles/s)", key, b.CyclesPerSec))
			continue
		}
		if b.CyclesPerSec <= 0 {
			continue
		}
		floor := b.CyclesPerSec * (1 - tolPct/100)
		if f.CyclesPerSec < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f cycles/s vs baseline %.0f (-%.1f%%, tolerance %.1f%%)",
				key, f.CyclesPerSec, b.CyclesPerSec,
				100*(1-f.CyclesPerSec/b.CyclesPerSec), tolPct))
		}
	}
	return violations
}
