// Package perf is the simulator's wall-clock observability plane: a
// phase profiler and throughput accountant measuring how real time is
// spent producing simulated time. It is the strict complement of
// internal/telemetry — telemetry samples the simulated clock and is part
// of a run's result identity, perf samples the host's monotonic clock
// and is pure provenance (excluded from fingerprints, digests, and
// committed baselines, and different on every machine and every rerun).
//
// The profiler follows the same passivity bar as telemetry and causal
// tracing: every hook is a nil-receiver no-op, enabling it schedules no
// events and mutates no simulated state, so a profiled run is
// bit-identical to an unprofiled one (pinned by TestPerfIsPassive).
//
// Attribution model: the profiler keeps one current phase; subsystems
// switch it at their choke points (mesh send/delivery, protocol message
// dispatch, directory lookups, memory/bus modeling, the telemetry
// sampling tick, causal span recording) and restore the previous phase
// on exit. Wall time no subsystem claims — the event heap, coroutine
// switches, application compute — accrues to the engine's default phase
// (dispatch for regular events, background for watchdog/observer
// events).
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Phase names one wall-clock cost center of the simulation loop.
type Phase uint8

// The phase taxonomy. PhaseDispatch is the engine's default charge —
// event-heap maintenance, coroutine handoff, and application compute
// not claimed by a deeper subsystem; PhaseBackground is the same
// default for background (observer) events.
const (
	PhaseDispatch Phase = iota
	PhaseMesh
	PhaseProtocol
	PhaseDirectory
	PhaseMemBus
	PhaseTelemetry
	PhaseCausal
	PhaseBackground
	NumPhases
)

var phaseNames = [NumPhases]string{
	"dispatch", "mesh", "protocol", "directory",
	"membus", "telemetry", "causal", "background",
}

// String returns the phase's stable name (used as JSON keys in
// snapshots, so renames are schema changes).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// PhaseNames returns the taxonomy in enum order.
func PhaseNames() []string { return append([]string(nil), phaseNames[:]...) }

// Profiler accumulates monotonic wall-clock time per phase. All methods
// are safe on a nil receiver (free no-ops), so instrumented subsystems
// call them unconditionally. A Profiler is single-threaded, like the
// engine loop it observes.
type Profiler struct {
	base    time.Time
	lastNS  int64
	cur     Phase
	phaseNS [NumPhases]int64

	startAllocs uint64
	startBytes  uint64
	startPause  uint64
	startGC     uint32

	snap  Snapshot
	ended bool
}

// New returns an idle profiler. Call Begin immediately before the run
// loop and End immediately after.
func New() *Profiler { return &Profiler{} }

// Begin starts the clock and records the allocator baseline.
func (p *Profiler) Begin() {
	if p == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.startAllocs = ms.Mallocs
	p.startBytes = ms.TotalAlloc
	p.startPause = ms.PauseTotalNs
	p.startGC = ms.NumGC
	p.base = time.Now()
	p.lastNS = 0
	p.cur = PhaseDispatch
}

// Enter charges the elapsed interval to the current phase, switches to
// ph, and returns the previous phase so the caller can restore it with
// Exit. Nil-safe and allocation-free.
func (p *Profiler) Enter(ph Phase) Phase {
	if p == nil {
		return PhaseDispatch
	}
	now := int64(time.Since(p.base))
	p.phaseNS[p.cur] += now - p.lastNS
	p.lastNS = now
	prev := p.cur
	p.cur = ph
	return prev
}

// Exit restores the phase a matching Enter returned.
func (p *Profiler) Exit(prev Phase) {
	if p == nil {
		return
	}
	now := int64(time.Since(p.base))
	p.phaseNS[p.cur] += now - p.lastNS
	p.lastNS = now
	p.cur = prev
}

// End stops the clock, folds the final interval, and fixes the snapshot.
// cycles and events are the run's final simulated cycle and executed
// event count (the throughput denominators come from them).
func (p *Profiler) End(cycles, events uint64) {
	if p == nil || p.ended {
		return
	}
	p.Enter(PhaseDispatch) // flush the open interval
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s := Snapshot{
		WallNS:     p.lastNS,
		Cycles:     cycles,
		Events:     events,
		Allocs:     ms.Mallocs - p.startAllocs,
		AllocBytes: ms.TotalAlloc - p.startBytes,
		GCPauseNS:  ms.PauseTotalNs - p.startPause,
		GCCycles:   uint64(ms.NumGC - p.startGC),
		Phases:     make(map[string]int64, NumPhases),
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if p.phaseNS[ph] != 0 {
			s.Phases[ph.String()] = p.phaseNS[ph]
		}
	}
	if s.WallNS > 0 {
		sec := float64(s.WallNS) / 1e9
		s.CyclesPerSec = float64(cycles) / sec
		s.EventsPerSec = float64(events) / sec
	}
	p.snap = s
	p.ended = true
}

// Snapshot returns the profile fixed by End (the zero Snapshot before
// End, or on a nil profiler).
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	return p.snap
}

// Snapshot is one run's (or one aggregation's) wall-clock profile. It is
// provenance, never identity: results embed it under `json:"-"`, reports
// under omitempty fields that Stable() strips, and it never feeds a
// fingerprint or digest.
type Snapshot struct {
	WallNS int64  `json:"wall_ns"`
	Cycles uint64 `json:"cycles"`
	Events uint64 `json:"events"`

	CyclesPerSec float64 `json:"cycles_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Phases maps phase name -> accumulated nanoseconds (zero phases
	// omitted). Keys are the Phase.String() names.
	Phases map[string]int64 `json:"phase_ns,omitempty"`

	// Allocator deltas over the run: heap objects, heap bytes, total GC
	// stop-the-world pause time, and completed GC cycles.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	GCPauseNS  uint64 `json:"gc_pause_ns"`
	GCCycles   uint64 `json:"gc_cycles"`
}

// Zero reports whether the snapshot carries no measurement.
func (s Snapshot) Zero() bool { return s.WallNS == 0 && s.Cycles == 0 && s.Events == 0 }

// Add folds another run's profile into s (used by the runner's Meta to
// aggregate over a sweep's fresh executions). Throughput is recomputed
// from the summed totals.
func (s *Snapshot) Add(o Snapshot) {
	s.WallNS += o.WallNS
	s.Cycles += o.Cycles
	s.Events += o.Events
	s.Allocs += o.Allocs
	s.AllocBytes += o.AllocBytes
	s.GCPauseNS += o.GCPauseNS
	s.GCCycles += o.GCCycles
	if len(o.Phases) > 0 && s.Phases == nil {
		s.Phases = make(map[string]int64, len(o.Phases))
	}
	for k, v := range o.Phases {
		s.Phases[k] += v
	}
	if s.WallNS > 0 {
		sec := float64(s.WallNS) / 1e9
		s.CyclesPerSec = float64(s.Cycles) / sec
		s.EventsPerSec = float64(s.Events) / sec
	}
}

// PhaseRow is one line of the rendered phase table.
type PhaseRow struct {
	Name string
	NS   int64
	Pct  float64
}

// PhaseTable returns the phase breakdown in taxonomy order, percentages
// of the measured wall time, zero phases omitted.
func (s Snapshot) PhaseTable() []PhaseRow {
	rows := make([]PhaseRow, 0, len(s.Phases))
	for ph := Phase(0); ph < NumPhases; ph++ {
		ns, ok := s.Phases[ph.String()]
		if !ok {
			continue
		}
		r := PhaseRow{Name: ph.String(), NS: ns}
		if s.WallNS > 0 {
			r.Pct = 100 * float64(ns) / float64(s.WallNS)
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].NS > rows[j].NS })
	return rows
}

// Table renders the profile as an aligned text block: throughput
// headline, phase breakdown, allocator deltas.
func (s Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall time            %s\n", time.Duration(s.WallNS))
	fmt.Fprintf(&b, "simulated cycles     %d (%.2f Mcycles/s)\n", s.Cycles, s.CyclesPerSec/1e6)
	fmt.Fprintf(&b, "engine events        %d (%.2f Mevents/s)\n", s.Events, s.EventsPerSec/1e6)
	for _, r := range s.PhaseTable() {
		fmt.Fprintf(&b, "  phase %-12s %14s  %5.1f%%\n", r.Name, time.Duration(r.NS).String(), r.Pct)
	}
	fmt.Fprintf(&b, "heap allocations     %d objects, %d bytes\n", s.Allocs, s.AllocBytes)
	fmt.Fprintf(&b, "gc                   %d cycle(s), %s total pause\n", s.GCCycles, time.Duration(s.GCPauseNS))
	return b.String()
}
