package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

// The nil profiler is the disabled path: every hook must be a free no-op.
func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	p.Begin()
	prev := p.Enter(PhaseMesh)
	if prev != PhaseDispatch {
		t.Fatalf("nil Enter returned %v, want dispatch", prev)
	}
	p.Exit(prev)
	p.End(100, 200)
	if s := p.Snapshot(); !s.Zero() {
		t.Fatalf("nil profiler produced a non-zero snapshot: %+v", s)
	}
}

func TestNilProfilerZeroAlloc(t *testing.T) {
	var p *Profiler
	allocs := testing.AllocsPerRun(1000, func() {
		prev := p.Enter(PhaseProtocol)
		p.Exit(prev)
	})
	if allocs != 0 {
		t.Fatalf("nil Enter/Exit allocates %.1f objects per run, want 0", allocs)
	}
}

func TestEnabledProfilerZeroAllocHotPath(t *testing.T) {
	p := New()
	p.Begin()
	allocs := testing.AllocsPerRun(1000, func() {
		prev := p.Enter(PhaseProtocol)
		p.Exit(prev)
	})
	if allocs != 0 {
		t.Fatalf("enabled Enter/Exit allocates %.1f objects per run, want 0", allocs)
	}
}

// Every nanosecond measured must land in exactly one phase: the phase
// breakdown sums to the wall time regardless of nesting pattern.
func TestPhaseAccountingSumsToWall(t *testing.T) {
	p := New()
	p.Begin()
	for i := 0; i < 100; i++ {
		a := p.Enter(PhaseMesh)
		b := p.Enter(PhaseProtocol) // nested switch
		c := p.Enter(PhaseDirectory)
		p.Exit(c)
		p.Exit(b)
		p.Exit(a)
	}
	bg := p.Enter(PhaseBackground)
	p.Exit(bg)
	p.End(1000, 500)

	s := p.Snapshot()
	var sum int64
	for _, ns := range s.Phases {
		sum += ns
	}
	if sum != s.WallNS {
		t.Fatalf("phase sum %d != wall %d", sum, s.WallNS)
	}
	if s.Cycles != 1000 || s.Events != 500 {
		t.Fatalf("throughput denominators not recorded: %+v", s)
	}
	if s.WallNS > 0 && s.CyclesPerSec <= 0 {
		t.Fatalf("cycles/sec not computed: %+v", s)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	p := New()
	p.Begin()
	p.End(10, 20)
	first := p.Snapshot()
	p.End(999, 999) // must not re-measure
	if second := p.Snapshot(); second.Cycles != first.Cycles || second.WallNS != first.WallNS {
		t.Fatalf("second End re-measured: %+v vs %+v", second, first)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{WallNS: 1e9, Cycles: 100, Events: 10,
		Phases: map[string]int64{"mesh": 5e8}, Allocs: 7, AllocBytes: 70, GCCycles: 1}
	b := Snapshot{WallNS: 1e9, Cycles: 300, Events: 30,
		Phases: map[string]int64{"mesh": 1e8, "protocol": 2e8}, Allocs: 3, AllocBytes: 30}
	a.Add(b)
	if a.WallNS != 2e9 || a.Cycles != 400 || a.Events != 40 {
		t.Fatalf("totals wrong: %+v", a)
	}
	if a.CyclesPerSec != 200 {
		t.Fatalf("cycles/sec not recomputed from totals: %v", a.CyclesPerSec)
	}
	if a.Phases["mesh"] != 6e8 || a.Phases["protocol"] != 2e8 {
		t.Fatalf("phase merge wrong: %v", a.Phases)
	}
	if a.Allocs != 10 || a.AllocBytes != 100 || a.GCCycles != 1 {
		t.Fatalf("allocator merge wrong: %+v", a)
	}
}

func TestTableRendersAllPhases(t *testing.T) {
	s := Snapshot{WallNS: 2e9, Cycles: 1e6, Events: 5e5, CyclesPerSec: 5e5,
		Phases: map[string]int64{"dispatch": 1e9, "mesh": 5e8, "membus": 5e8}}
	out := s.Table()
	for _, want := range []string{"dispatch", "mesh", "membus", "simulated cycles", "gc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTrendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")

	// Missing file bootstraps an empty trend for the pinning.
	tr, err := LoadTrend(path, "tiny", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 0 || tr.Scale != "tiny" || tr.Procs != 64 {
		t.Fatalf("bootstrap trend wrong: %+v", tr)
	}

	cells := []TrendCell{
		{App: "gauss", Proto: "lrc", Cycles: 1000, WallNS: 1e6, CyclesPerSec: 1e9},
		{App: "fft", Proto: "sc", Cycles: 2000, WallNS: 2e6, CyclesPerSec: 1e9},
	}
	tr.Entries = append(tr.Entries, NewEntry("2026-08-08T00:00:00Z", cells))
	if err := SaveTrend(path, tr); err != nil {
		t.Fatal(err)
	}

	back, err := LoadTrend(path, "tiny", 64)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := back.Latest()
	if !ok || len(e.Cells) != 2 {
		t.Fatalf("round trip lost cells: %+v", back)
	}
	// NewEntry sorts cells (app, proto) for stable committed diffs.
	if e.Cells[0].App != "fft" || e.Cells[1].App != "gauss" {
		t.Fatalf("cells not sorted: %+v", e.Cells)
	}
}

func TestGateTrend(t *testing.T) {
	base := NewEntry("2026-08-08T00:00:00Z", []TrendCell{
		{App: "gauss", Proto: "lrc", CyclesPerSec: 1000},
		{App: "fft", Proto: "sc", CyclesPerSec: 2000},
	})

	// Within tolerance and faster both pass.
	ok := []TrendCell{
		{App: "gauss", Proto: "lrc", CyclesPerSec: 910}, // -9% < 10%
		{App: "fft", Proto: "sc", CyclesPerSec: 9000},   // faster is always fine
	}
	if v := GateTrend(base, ok, 10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	// Beyond tolerance fails, missing cell fails, extra cell passes free.
	bad := []TrendCell{
		{App: "gauss", Proto: "lrc", CyclesPerSec: 500}, // -50%
		{App: "blu", Proto: "erc", CyclesPerSec: 1},     // not in baseline
	}
	v := GateTrend(base, bad, 10)
	if len(v) != 2 {
		t.Fatalf("want 2 violations (regression + missing), got %v", v)
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "gauss/lrc") || !strings.Contains(joined, "fft/sc") {
		t.Fatalf("violations missing expected cells: %v", v)
	}

	// Zero tolerance: any slowdown fails.
	if v := GateTrend(base, []TrendCell{
		{App: "gauss", Proto: "lrc", CyclesPerSec: 999.9},
		{App: "fft", Proto: "sc", CyclesPerSec: 2000},
	}, 0); len(v) != 1 {
		t.Fatalf("zero tolerance should flag any slowdown, got %v", v)
	}
}

func TestLoadTrendRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")
	if err := SaveTrend(path, &Trend{Version: "bogus-v9", Scale: "tiny", Procs: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrend(path, "tiny", 64); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestWriteHTML(t *testing.T) {
	cells := []CellPerf{
		{App: "gauss", Proto: "lrc", Snap: Snapshot{WallNS: 1e9, Cycles: 1e6, CyclesPerSec: 1e6,
			Phases: map[string]int64{"dispatch": 6e8, "mesh": 4e8}}},
		{App: "fft", Proto: "sc", Snap: Snapshot{WallNS: 2e9, Cycles: 2e6, CyclesPerSec: 1e6,
			Phases: map[string]int64{"dispatch": 1e9, "protocol": 1e9}}},
	}
	trend := &Trend{Version: trendVersion, Scale: "tiny", Procs: 64,
		Entries: []TrendEntry{NewEntry("2026-08-08T00:00:00Z", []TrendCell{
			{App: "gauss", Proto: "lrc", CyclesPerSec: 1e6},
		})}}
	var b strings.Builder
	if err := WriteHTML(&b, "test", cells, trend); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<html", "gauss", "Throughput by cell", "phase breakdown", "trend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
