package mc

import (
	"path/filepath"
	"reflect"
	"testing"

	"lazyrc/internal/config"
)

func TestSCOracle(t *testing.T) {
	cases := map[string][]string{
		"mp-flag":        {"p1=1"},
		"mp-stale":       {"p1=0,1"},
		"fs-multiwriter": {"p0=1;p1=1"},
	}
	for name, want := range cases {
		tc, err := FindTest(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SCOutcomes(tc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Allowed, want) {
			t.Errorf("%s: allowed = %v, want %v", name, res.Allowed, want)
		}
	}
}

func TestSCOracleStoreBuffering(t *testing.T) {
	tc, err := FindTest("sb-racy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCOutcomes(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Racy {
		t.Error("sb-racy not detected as racy")
	}
	// SC forbids both loads reading 0; the other three combinations occur.
	if res.AllowedOutcome("p0=0;p1=0") {
		t.Errorf("SC oracle allows p0=0;p1=0 for store buffering: %v", res.Allowed)
	}
	if len(res.Allowed) != 3 {
		t.Errorf("sb-racy allowed = %v, want 3 outcomes", res.Allowed)
	}
}

func TestSCOracleIRIW(t *testing.T) {
	tc, err := FindTest("iriw-lock")
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCOutcomes(tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Racy {
		t.Error("iriw-lock detected as racy")
	}
	// The readers must not observe the two writes in opposite orders.
	if res.AllowedOutcome("p2=1,0;p3=1,0") {
		t.Errorf("SC oracle allows contradictory write orders: %v", res.Allowed)
	}
}

func TestOracleValidatesDRFLabels(t *testing.T) {
	for _, tc := range Tests() {
		if _, err := SCOutcomes(tc); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

// allProtos is the full registry menu — sc, erc, lrc, lrc-ext, tardis,
// tardis2 — so the conformance corpus covers every registered protocol.
var allProtos = config.ProtocolNames()

func exploreBudget(proto string) ExploreConfig {
	ec := DefaultExplore(proto)
	ec.MaxRuns = 400
	return ec
}

// TestConformanceCorpus is the headline acceptance check: every protocol,
// explored over every litmus test, produces only allowed outcomes and no
// invariant violations.
func TestConformanceCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration corpus skipped in -short")
	}
	for _, proto := range allProtos {
		for _, tc := range Tests() {
			rep, err := Explore(tc, exploreBudget(proto))
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, tc.Name, err)
			}
			if rep.Violating() {
				cx := rep.Counterexamples[0]
				t.Errorf("%s/%s: violation %v (schedule %v, outcome %q)",
					proto, tc.Name, cx.Reasons, cx.Schedule, cx.Outcome)
			}
			if rep.Runs < 2 {
				t.Errorf("%s/%s: explorer found no nondeterminism (%d run)", proto, tc.Name, rep.Runs)
			}
		}
	}
}

// TestMutationCaught verifies the checker's own teeth: a protocol that
// skips acquire-time invalidation processing must be caught, and the
// minimized counterexample must replay deterministically.
func TestMutationCaught(t *testing.T) {
	tc, err := FindTest("mp-stale")
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{"lrc", "lrc-ext"} {
		ec := exploreBudget(proto)
		ec.Mutation = "skip-acquire-inval"
		rep, err := Explore(tc, ec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Violating() {
			t.Fatalf("%s: mutation skip-acquire-inval not caught", proto)
		}
		cx := rep.Counterexamples[0]
		sched := NewSchedule(tc, ec, cx, rep.Allowed)

		path := filepath.Join(t.TempDir(), "cx.json")
		if err := sched.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSchedule(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(loaded)
		if err != nil {
			t.Fatalf("%s: counterexample does not replay: %v", proto, err)
		}
		if res.Outcome != cx.Outcome || res.FinalHash != cx.FinalHash {
			t.Fatalf("%s: replay mismatch: outcome %q hash %#x, want %q %#x",
				proto, res.Outcome, res.FinalHash, cx.Outcome, cx.FinalHash)
		}
	}
}

// TestLeaseMutationCaught: a timestamp protocol that never checks lease
// expiry (and never sweeps at acquires) serves stale copies forever; the
// checker must catch it on mp-stale within a bounded budget, and the
// minimized counterexample must replay deterministically.
func TestLeaseMutationCaught(t *testing.T) {
	tc, err := FindTest("mp-stale")
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{"tardis", "tardis2"} {
		ec := exploreBudget(proto)
		ec.Mutation = "skip-lease-renewal"
		rep, err := Explore(tc, ec)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Violating() {
			t.Fatalf("%s: mutation skip-lease-renewal not caught", proto)
		}
		cx := rep.Counterexamples[0]
		sched := NewSchedule(tc, ec, cx, rep.Allowed)

		path := filepath.Join(t.TempDir(), "cx.json")
		if err := sched.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSchedule(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(loaded)
		if err != nil {
			t.Fatalf("%s: counterexample does not replay: %v", proto, err)
		}
		if res.Outcome != cx.Outcome || res.FinalHash != cx.FinalHash {
			t.Fatalf("%s: replay mismatch: outcome %q hash %#x, want %q %#x",
				proto, res.Outcome, res.FinalHash, cx.Outcome, cx.FinalHash)
		}
	}
}

// TestLeaseMutationIsTimestampOnly: the invalidation protocols have no
// leases to skip, so the timestamp-only mutation must be a no-op for
// them (guards against the mutation knob perturbing shared code).
func TestLeaseMutationIsTimestampOnly(t *testing.T) {
	tc, err := FindTest("mp-stale")
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{"sc", "lrc"} {
		ec := exploreBudget(proto)
		ec.Mutation = "skip-lease-renewal"
		ec.MaxRuns = 100
		rep, err := Explore(tc, ec)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violating() {
			t.Errorf("%s violated under a timestamp-only mutation: %v", proto, rep.Counterexamples[0].Reasons)
		}
	}
}

// TestCleanProtocolUnderMutationOracleOnly: the eager protocols process
// invalidations at the home, so the lazy-only mutation must be a no-op
// for them (guards against the mutation knob perturbing shared code).
func TestMutationIsLazyOnly(t *testing.T) {
	tc, err := FindTest("mp-stale")
	if err != nil {
		t.Fatal(err)
	}
	ec := exploreBudget("sc")
	ec.Mutation = "skip-acquire-inval"
	ec.MaxRuns = 100
	rep, err := Explore(tc, ec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating() {
		t.Errorf("sc violated under a lazy-only mutation: %v", rep.Counterexamples[0].Reasons)
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	tc, err := FindTest("fs-multiwriter")
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Proto: "lrc", Audit: true}
	prefix := []int{1, 0, 1, 1}
	a, err := RunOnce(tc, rc, prefix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce(tc, rc, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.FinalHash != b.FinalHash || a.Choices != b.Choices {
		t.Fatalf("identical schedules diverged: (%q,%#x,%d) vs (%q,%#x,%d)",
			a.Outcome, a.FinalHash, a.Choices, b.Outcome, b.FinalHash, b.Choices)
	}
	if !reflect.DeepEqual(a.Taken, b.Taken) || !reflect.DeepEqual(a.Hashes, b.Hashes) {
		t.Fatal("recorded choice points diverged between identical schedules")
	}
}

func TestMenuFromPlan(t *testing.T) {
	menu, err := MenuFromPlan("delay=0.05:1:7,reorder=0.03:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 4, 7}
	if !reflect.DeepEqual(menu, want) {
		t.Fatalf("menu = %v, want %v", menu, want)
	}
}

func TestTrackerSemantics(t *testing.T) {
	tr := NewTracker(2)
	if v := tr.Read(0, 5, 1); v != 0 {
		t.Fatalf("fresh read = %d, want 0", v)
	}
	tr.StageWrite(0, 5, 1, 42)
	if v := tr.Read(0, 5, 1); v != 42 {
		t.Fatalf("store-to-load forwarding failed: %d", v)
	}
	if v := tr.Read(1, 5, 1); v != 0 {
		t.Fatalf("staged store leaked to another node: %d", v)
	}
	tr.Commit(0, 5, 1)
	if v := tr.Read(0, 5, 1); v != 42 {
		t.Fatalf("committed value lost: %d", v)
	}
	// Home merge then a fill at node 1 picks up the merged line.
	tr.MergeHome(5, []uint64{7, 42}, 0b10)
	tr.Fill(1, 5, tr.HomeLine(5))
	if v := tr.Read(1, 5, 1); v != 42 {
		t.Fatalf("fill after merge = %d, want 42", v)
	}
	if v := tr.Read(1, 5, 0); v != 0 {
		t.Fatalf("unmasked word merged: %d", v)
	}
}
