package mc

// The simulator normally decouples timing from data: every shared datum
// lives in one backing store, so workloads compute real results while the
// protocols only model timing. That is exactly wrong for a model checker
// — litmus outcomes are *about* which values each processor's reads can
// observe. The tracker restores per-copy data semantics: it implements
// protocol.DataMemory, shadowing home memory and every node's cached copy
// at word granularity, with values moved only by the protocol's own fill,
// commit, and home-merge events (each carrying value snapshots on the
// messages themselves, so a value arrives exactly when its message does).
//
// A staged write models the window between a CPU store issuing and the
// protocol committing it to the local copy: reads by the same processor
// forward from the stage (processors always see their own stores), and
// the commit moves the staged value into the copy.

type copyKey struct {
	node  int
	block uint64
}

type stageKey struct {
	node  int
	block uint64
	word  int
}

// Tracker shadows data values for a single machine. It is not safe for
// concurrent use (the simulator is single-threaded).
type Tracker struct {
	words  int // words per line
	home   map[uint64][]uint64
	copies map[copyKey][]uint64
	staged map[stageKey]uint64
}

// NewTracker returns a tracker for a machine with the given words-per-line.
func NewTracker(wordsPerLine int) *Tracker {
	return &Tracker{
		words:  wordsPerLine,
		home:   make(map[uint64][]uint64),
		copies: make(map[copyKey][]uint64),
		staged: make(map[stageKey]uint64),
	}
}

func (t *Tracker) homeLine(block uint64) []uint64 {
	l := t.home[block]
	if l == nil {
		l = make([]uint64, t.words)
		t.home[block] = l
	}
	return l
}

// StageWrite records a CPU store before it is played through the timing
// model. The litmus harness calls it immediately before Proc.WriteI64.
func (t *Tracker) StageWrite(node int, block uint64, word int, val uint64) {
	t.staged[stageKey{node, block, word}] = val
}

// Read returns the value a load by node observes: its own staged store if
// one is in flight, else its cached copy, else home memory.
func (t *Tracker) Read(node int, block uint64, word int) uint64 {
	if v, ok := t.staged[stageKey{node, block, word}]; ok {
		return v
	}
	if c, ok := t.copies[copyKey{node, block}]; ok {
		return c[word]
	}
	return t.homeLine(block)[word]
}

// HomeLine implements protocol.DataMemory.
func (t *Tracker) HomeLine(block uint64) []uint64 {
	return append([]uint64(nil), t.homeLine(block)...)
}

// CopyLine implements protocol.DataMemory.
func (t *Tracker) CopyLine(node int, block uint64) []uint64 {
	if c, ok := t.copies[copyKey{node, block}]; ok {
		return append([]uint64(nil), c...)
	}
	return append([]uint64(nil), t.homeLine(block)...)
}

// Fill implements protocol.DataMemory: a data reply installs vals as
// node's copy of block.
func (t *Tracker) Fill(node int, block uint64, vals []uint64) {
	c := make([]uint64, t.words)
	copy(c, vals)
	t.copies[copyKey{node, block}] = c
}

// Commit implements protocol.DataMemory: the protocol applies node's
// buffered store to word of its cached copy.
func (t *Tracker) Commit(node int, block uint64, word int) {
	k := stageKey{node, block, word}
	v, ok := t.staged[k]
	if !ok {
		return // re-commit after the stage already landed; value is in place
	}
	ck := copyKey{node, block}
	c := t.copies[ck]
	if c == nil {
		c = append([]uint64(nil), t.homeLine(block)...)
		t.copies[ck] = c
	}
	c[word] = v
	delete(t.staged, k)
}

// MergeHome implements protocol.DataMemory: a write-through or write-back
// arriving at the home merges the masked words into home memory.
func (t *Tracker) MergeHome(block uint64, vals []uint64, mask uint64) {
	h := t.homeLine(block)
	for w := 0; w < t.words && w < len(vals); w++ {
		if mask&(1<<uint(w)) != 0 {
			h[w] = vals[w]
		}
	}
}
