package mc

import "fmt"

// This file defines the litmus-test language and the corpus. A litmus
// test is a tiny program — 2–4 processors, a handful of shared variables
// packed onto 1–2 cache lines — whose every read records a register. The
// checker explores message-delivery interleavings of the program under a
// protocol and compares the observed register outcomes against the set a
// sequentially consistent machine allows (computed by the enumerator in
// scref.go). For data-race-free programs, release consistency promises
// exactly the SC outcomes, so any extra outcome is a protocol bug.

// OpKind is one litmus operation.
type OpKind int

const (
	// OpRead loads a shared variable into the next register.
	OpRead OpKind = iota
	// OpWrite stores an immediate to a shared variable.
	OpWrite
	// OpAcquire acquires lock Obj.
	OpAcquire
	// OpRelease releases lock Obj.
	OpRelease
	// OpSetFlag sets one-shot flag Obj (release semantics).
	OpSetFlag
	// OpWaitFlag blocks until flag Obj is set (acquire semantics).
	OpWaitFlag
)

// Op is one instruction of a litmus program.
type Op struct {
	Kind OpKind
	Var  int    // variable index (OpRead/OpWrite)
	Val  uint64 // immediate (OpWrite)
	Obj  int    // lock or flag index (sync ops)
}

// Var is one shared variable: a (line, word) slot. Distinct variables on
// the same line exercise false sharing.
type Var struct {
	Name string
	Line int
	Word int
}

// Test is one litmus program.
type Test struct {
	Name string
	Doc  string
	// Procs is the processor count (2–4).
	Procs int
	Vars  []Var
	Locks int
	Flags int
	// Code[p] is processor p's program.
	Code [][]Op
	// DRF declares the program data-race-free. Validated against the SC
	// enumerator's race detector; DRF programs must produce only
	// SC-allowed outcomes under every protocol, racy programs only under
	// the SC protocol.
	DRF bool
}

func r(v int) Op           { return Op{Kind: OpRead, Var: v} }
func w(v int, x uint64) Op { return Op{Kind: OpWrite, Var: v, Val: x} }
func acq(l int) Op         { return Op{Kind: OpAcquire, Obj: l} }
func rel(l int) Op         { return Op{Kind: OpRelease, Obj: l} }
func setf(f int) Op        { return Op{Kind: OpSetFlag, Obj: f} }
func waitf(f int) Op       { return Op{Kind: OpWaitFlag, Obj: f} }

// Tests returns the litmus corpus. The slice and its tests are shared;
// callers must not mutate them.
func Tests() []*Test {
	return corpus
}

// FindTest returns the named test, or an error listing the known names.
func FindTest(name string) (*Test, error) {
	names := make([]string, 0, len(corpus))
	for _, t := range corpus {
		if t.Name == name {
			return t, nil
		}
		names = append(names, t.Name)
	}
	return nil, fmt.Errorf("mc: unknown litmus test %q (known: %v)", name, names)
}

var corpus = []*Test{
	{
		Name:  "mp-flag",
		Doc:   "message passing: producer writes x then sets a flag; consumer waits and must read the new x",
		Procs: 2,
		Vars:  []Var{{Name: "x", Line: 0, Word: 0}},
		Flags: 1,
		Code: [][]Op{
			{w(0, 1), setf(0)},
			{waitf(0), r(0)},
		},
		DRF: true,
	},
	{
		Name: "mp-stale",
		Doc: "stale-copy message passing: the consumer caches x before the producer " +
			"writes it, so the consumer's acquire must apply the queued write notice " +
			"— the schedule-independent detector for skipped acquire invalidations",
		Procs: 2,
		Vars:  []Var{{Name: "x", Line: 0, Word: 0}},
		Flags: 2,
		Code: [][]Op{
			// P0 waits until P1 provably caches x, then writes and publishes.
			{waitf(1), w(0, 1), setf(0)},
			// P1 caches x=0, announces it, then acquires and re-reads.
			{r(0), setf(1), waitf(0), r(0)},
		},
		DRF: true,
	},
	{
		Name:  "sb-lock",
		Doc:   "store buffering with each variable under its own lock (data-race-free)",
		Procs: 2,
		Vars:  []Var{{Name: "x", Line: 0, Word: 0}, {Name: "y", Line: 1, Word: 0}},
		Locks: 2,
		Code: [][]Op{
			{acq(0), w(0, 1), rel(0), acq(1), r(1), rel(1)},
			{acq(1), w(1, 1), rel(1), acq(0), r(0), rel(0)},
		},
		DRF: true,
	},
	{
		Name: "sb-racy",
		Doc: "classic store buffering with no synchronization: racy, so the lazy " +
			"protocols owe it nothing beyond invariants; the SC protocol must still " +
			"forbid the r0=0,r1=0 outcome... which buffered writes would produce",
		Procs: 2,
		Vars:  []Var{{Name: "x", Line: 0, Word: 0}, {Name: "y", Line: 1, Word: 0}},
		Code: [][]Op{
			{w(0, 1), r(1)},
			{w(1, 1), r(0)},
		},
		DRF: false,
	},
	{
		Name: "iriw-lock",
		Doc: "independent reads of independent writes, every access under the " +
			"variable's lock: the two readers must not disagree on the write order",
		Procs: 4,
		Vars:  []Var{{Name: "x", Line: 0, Word: 0}, {Name: "y", Line: 1, Word: 0}},
		Locks: 2,
		Code: [][]Op{
			{acq(0), w(0, 1), rel(0)},
			{acq(1), w(1, 1), rel(1)},
			{acq(0), r(0), rel(0), acq(1), r(1), rel(1)},
			{acq(1), r(1), rel(1), acq(0), r(0), rel(0)},
		},
		DRF: true,
	},
	{
		Name: "fs-multiwriter",
		Doc: "false-sharing multi-writer: both processors write distinct words of " +
			"the same line concurrently (the lazy protocols' weak state), then " +
			"exchange flags and must each read the other's word",
		Procs: 2,
		Vars:  []Var{{Name: "a", Line: 0, Word: 0}, {Name: "b", Line: 0, Word: 1}},
		Flags: 2,
		Code: [][]Op{
			{w(0, 1), setf(0), waitf(1), r(1)},
			{w(1, 1), setf(1), waitf(0), r(0)},
		},
		DRF: true,
	},
	{
		Name: "lock-handoff",
		Doc: "lock-protected handoff: values must follow the lock through " +
			"successive critical sections in either acquisition order",
		Procs: 2,
		Vars:  []Var{{Name: "x", Line: 0, Word: 0}},
		Locks: 1,
		Code: [][]Op{
			{acq(0), w(0, 1), rel(0), acq(0), r(0), rel(0)},
			{acq(0), r(0), w(0, 2), rel(0)},
		},
		DRF: true,
	},
}
