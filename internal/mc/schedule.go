package mc

import (
	"encoding/json"
	"fmt"
	"os"
)

// A Schedule is a self-contained, replayable record of one checked run —
// everything needed to rebuild the identical machine and feed it the
// identical choice answers. lrccheck writes one per counterexample and
// `lrcsim -replay` re-executes it, verifying the outcome and final state
// hash match byte for byte.

// ScheduleVersion is bumped whenever the machine construction or choice
// semantics change incompatibly.
const ScheduleVersion = 1

// Schedule is the serialized form of a (usually violating) run.
type Schedule struct {
	Version    int      `json:"version"`
	Test       string   `json:"test"`
	Proto      string   `json:"proto"`
	Menu       []uint64 `json:"menu"`
	MaxChoices int      `json:"max_choices"`
	Mutation   string   `json:"mutation,omitempty"`
	Choices    []int    `json:"choices"`

	// Recorded results, verified on replay.
	Outcome   string   `json:"outcome"`
	FinalHash uint64   `json:"final_hash"`
	Reasons   []string `json:"reasons,omitempty"`
	Allowed   []string `json:"allowed,omitempty"`
}

// NewSchedule packages a counterexample for persistence.
func NewSchedule(t *Test, ec ExploreConfig, cx Counterexample, allowed []string) *Schedule {
	menu := ec.Menu
	if len(menu) == 0 {
		menu = DefaultMenu()
	}
	max := ec.MaxChoices
	if max <= 0 {
		max = DefaultMaxChoices
	}
	return &Schedule{
		Version:    ScheduleVersion,
		Test:       t.Name,
		Proto:      ec.Proto,
		Menu:       menu,
		MaxChoices: max,
		Mutation:   ec.Mutation,
		Choices:    cx.Schedule,
		Outcome:    cx.Outcome,
		FinalHash:  cx.FinalHash,
		Reasons:    cx.Reasons,
		Allowed:    allowed,
	}
}

// Save writes the schedule as JSON.
func (s *Schedule) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSchedule reads a schedule written by Save.
func LoadSchedule(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("mc: %s: %w", path, err)
	}
	if s.Version != ScheduleVersion {
		return nil, fmt.Errorf("mc: %s: schedule version %d, this build replays version %d",
			path, s.Version, ScheduleVersion)
	}
	return &s, nil
}

// Replay re-executes a schedule and verifies it reproduces the recorded
// run exactly: same register outcome, same final machine state hash. The
// run's own violations (invariants, deadlock) are re-detected live; a
// determinism mismatch is returned as an error.
func Replay(s *Schedule) (*RunResult, error) {
	t, err := FindTest(s.Test)
	if err != nil {
		return nil, err
	}
	rc := RunConfig{
		Proto:      s.Proto,
		Menu:       s.Menu,
		MaxChoices: s.MaxChoices,
		Mutation:   s.Mutation,
		Audit:      true,
	}
	res, err := RunOnce(t, rc, s.Choices)
	if err != nil {
		return nil, err
	}
	if res.Outcome != s.Outcome {
		return res, fmt.Errorf("mc: replay diverged: outcome %q, schedule recorded %q",
			res.Outcome, s.Outcome)
	}
	if s.FinalHash != 0 && res.FinalHash != s.FinalHash {
		return res, fmt.Errorf("mc: replay diverged: final state hash %#x, schedule recorded %#x",
			res.FinalHash, s.FinalHash)
	}
	return res, nil
}
