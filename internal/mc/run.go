package mc

import (
	"fmt"
	"sort"

	"lazyrc/internal/check"
	"lazyrc/internal/config"
	"lazyrc/internal/faults"
	"lazyrc/internal/machine"
)

// This file executes one litmus program on the real simulated machine
// under one schedule. A schedule is the sequence of answers to the
// nondeterministic choices the simulator asks about — which tied event
// fires first, which delivery delay a message takes — so replaying the
// same choice list reproduces the run byte for byte. The recorder also
// notes each choice point's arity and machine state hash, which is all
// the explorer needs to enumerate sibling schedules and prune revisits.

// RunConfig parameterizes a single checked run.
type RunConfig struct {
	// Proto is the protocol name: "sc", "erc", "lrc", "lrc-ext",
	// "tardis", or "tardis2".
	Proto string
	// Menu is the set of per-message delivery delays (cycles) the
	// explorer may choose among. Empty means DefaultMenu.
	Menu []uint64
	// MaxChoices bounds recorded choice points; beyond it every choice
	// defaults to 0 (first tied event, first menu delay).
	MaxChoices int
	// Mutation names a deliberate protocol bug to inject (config.Mutations).
	Mutation string
	// Audit runs the protocol-invariant auditor at every scheduler choice
	// point and at quiescence.
	Audit bool
}

// DefaultMenu is the delivery-delay menu used when RunConfig.Menu is
// empty: deliver on time, or hold the message a few cycles — enough to
// reorder it behind later traffic on other channels (per-channel FIFO is
// preserved by the mesh regardless).
func DefaultMenu() []uint64 { return []uint64{0, 3} }

// DefaultMaxChoices is the default recorded-choice bound.
const DefaultMaxChoices = 64

// MenuFromPlan derives a delivery-delay menu from a fault-injection plan
// (faults.ParsePlan syntax), so the checker explores the same delay and
// reorder magnitudes the chaos harness injects randomly.
func MenuFromPlan(s string) ([]uint64, error) {
	p, err := faults.ParsePlan(s)
	if err != nil {
		return nil, err
	}
	set := map[uint64]bool{0: true}
	add := func(r faults.Rule) {
		if r.DelayProb > 0 {
			set[r.DelayMin] = true
			set[r.DelayMax] = true
		}
		if r.ReorderProb > 0 && r.ReorderMax > 0 {
			set[r.ReorderMax] = true
		}
		if r.DupProb > 0 && r.DupDelayMax > 0 {
			set[r.DupDelayMax] = true
		}
	}
	add(p.Default)
	for _, r := range p.ByKind {
		add(r)
	}
	menu := make([]uint64, 0, len(set))
	for d := range set {
		menu = append(menu, d)
	}
	sort.Slice(menu, func(i, j int) bool { return menu[i] < menu[j] })
	return menu, nil
}

// RunResult is the outcome of one schedule.
type RunResult struct {
	// Outcome is the canonical register outcome (formatOutcome).
	Outcome string
	// Taken, Arity, and Hashes describe the recorded choice points: the
	// answer given, the number of alternatives, and the machine state
	// hash at the moment of the choice.
	Taken  []int
	Arity  []int
	Hashes []uint64
	// Choices counts every choice point encountered, including those past
	// MaxChoices.
	Choices int
	// Violations lists everything that went wrong: invariant breaches,
	// deadlock, panics. Memory-model conformance is judged by the caller
	// against the SC oracle.
	Violations []string
	// FinalHash fingerprints the quiesced machine, for replay verification.
	FinalHash uint64
}

// recorder implements sim.Chooser for both choice sources. The engine
// consults it between events (where running the invariant auditor is
// safe); the mesh consults it mid-handler through meshFacet, which skips
// the audit.
type recorder struct {
	m      *machine.Machine
	aud    *check.Auditor
	prefix []int
	max    int

	taken  []int
	arity  []int
	hashes []uint64
	total  int
}

func (r *recorder) Choose(n int) int {
	if r.aud != nil {
		r.aud.Epoch()
	}
	return r.choose(n)
}

func (r *recorder) choose(n int) int {
	idx := r.total
	r.total++
	if idx >= r.max {
		return 0
	}
	pick := 0
	if idx < len(r.prefix) {
		pick = r.prefix[idx]
		if pick < 0 || pick >= n {
			// A minimized or hand-edited schedule may point past this
			// run's arity; clamp and record what actually happened.
			pick = 0
		}
	}
	r.taken = append(r.taken, pick)
	r.arity = append(r.arity, n)
	r.hashes = append(r.hashes, r.m.StateHash())
	return pick
}

type meshFacet struct{ r *recorder }

func (f meshFacet) Choose(n int) int { return f.r.choose(n) }

// litmusConfig builds the tiny machine the litmus corpus runs on: 2-word
// cache lines so two variables can false-share, one line per page so
// homes interleave per line, an 8-line cache, and single-cycle run-ahead
// so every memory reference meets the global event loop.
func litmusConfig(t *Test, rc RunConfig) config.Config {
	return config.Config{
		Procs:           t.Procs,
		LineSize:        2 * config.WordSize,
		CacheSize:       8 * 2 * config.WordSize,
		PageSize:        2 * config.WordSize,
		MemSetup:        1,
		MemBW:           8,
		BusBW:           8,
		NetBW:           8,
		SwitchLat:       1,
		WireLat:         0,
		NoticeCost:      1,
		DirCostLRC:      2,
		DirCostERC:      1,
		WBEntries:       4,
		CBEntries:       4,
		Quantum:         1,
		LeaseLen:        8,
		TSDeltaBits:     20,
		CheckInvariants: true,
		Mutation:        rc.Mutation,
	}
}

func varAddr(cfg config.Config, v Var) uint64 {
	return uint64(v.Line)*uint64(cfg.LineSize) + uint64(v.Word)*config.WordSize
}

// RunOnce executes t once under prefix (choices past the prefix default
// to 0) and reports what happened.
func RunOnce(t *Test, rc RunConfig, prefix []int) (*RunResult, error) {
	if err := validateTest(t); err != nil {
		return nil, err
	}
	cfg := litmusConfig(t, rc)
	m, err := machine.New(cfg, rc.Proto)
	if err != nil {
		return nil, err
	}
	tracker := NewTracker(cfg.WordsPerLine())
	m.Env.Mem = tracker

	menu := rc.Menu
	if len(menu) == 0 {
		menu = DefaultMenu()
	}
	max := rc.MaxChoices
	if max <= 0 {
		max = DefaultMaxChoices
	}
	rec := &recorder{m: m, prefix: prefix, max: max}
	if rc.Audit {
		rec.aud = check.New(m)
	}
	m.Eng.SetChooser(rec)
	if err := m.Net.SetExplorer(meshFacet{rec}, menu); err != nil {
		return nil, err
	}

	maxLine := 0
	for _, v := range t.Vars {
		if v.Line > maxLine {
			maxLine = v.Line
		}
	}
	m.Alloc((maxLine+1)*cfg.LineSize, true)
	locks := make([]*machine.Lock, t.Locks)
	for i := range locks {
		locks[i] = m.NewLock()
	}
	flags := m.NewFlags(t.Flags)

	res := &RunResult{}
	regs := make([][]uint64, t.Procs)
	done := make([]bool, t.Procs)

	ranToCompletion := func() bool {
		defer func() {
			if r := recover(); r != nil {
				res.Violations = append(res.Violations, fmt.Sprintf("panic: %v", r))
			}
		}()
		m.Run(func(p *machine.Proc) {
			id := p.ID()
			for _, op := range t.Code[id] {
				switch op.Kind {
				case OpRead:
					v := t.Vars[op.Var]
					p.ReadI64(varAddr(cfg, v))
					regs[id] = append(regs[id], tracker.Read(id, uint64(v.Line), v.Word))
				case OpWrite:
					v := t.Vars[op.Var]
					tracker.StageWrite(id, uint64(v.Line), v.Word, op.Val)
					p.WriteI64(varAddr(cfg, v), int64(op.Val))
				case OpAcquire:
					p.Acquire(locks[op.Obj])
				case OpRelease:
					p.Release(locks[op.Obj])
				case OpSetFlag:
					p.SetFlag(flags[op.Obj])
				case OpWaitFlag:
					p.WaitFlag(flags[op.Obj])
				}
			}
			done[id] = true
		})
		return true
	}()

	if ranToCompletion {
		for id, d := range done {
			if !d {
				res.Violations = append(res.Violations,
					fmt.Sprintf("deadlock: processor %d never finished its program", id))
			}
		}
		if rec.aud != nil && len(res.Violations) == 0 {
			rec.aud.Final()
			for _, v := range rec.aud.Violations() {
				res.Violations = append(res.Violations, v.String())
			}
		}
		if err := m.CheckQuiescent(); err != nil && len(res.Violations) == 0 {
			res.Violations = append(res.Violations, fmt.Sprintf("quiescence: %v", err))
		}
	}

	res.Outcome = formatOutcome(regs)
	res.Taken = rec.taken
	res.Arity = rec.arity
	res.Hashes = rec.hashes
	res.Choices = rec.total
	res.FinalHash = m.StateHash()
	return res, nil
}
