package mc

import (
	"fmt"
	"sort"

	"lazyrc/internal/config"
)

// This file is the model checker proper: a stateless-search DFS over
// schedules. Each run records its choice points (arity + state hash);
// the explorer then queues sibling schedules — the same prefix with one
// alternative answer — for every choice point whose machine state it has
// not expanded before. Hashing states at choice points gives the search
// its pruning: two schedules reaching the same protocol state offer the
// same futures, so only the first is expanded (coverage-conservative:
// the hash folds in every cache, buffer, directory, and in-flight
// message, but a collision could in principle hide a state).

// ExploreConfig bounds one exploration.
type ExploreConfig struct {
	RunConfig
	// MaxRuns bounds the number of schedules executed.
	MaxRuns int
	// MaxStates bounds the expanded-state set.
	MaxStates int
	// MinimizeBudget bounds the extra runs spent shrinking each
	// counterexample (0 means DefaultMinimizeBudget).
	MinimizeBudget int
}

// DefaultExplore returns the default budgets for proto.
func DefaultExplore(proto string) ExploreConfig {
	return ExploreConfig{
		RunConfig: RunConfig{Proto: proto, MaxChoices: DefaultMaxChoices, Audit: true},
		MaxRuns:   2000,
		MaxStates: 100000,
	}
}

// DefaultMinimizeBudget is the default counterexample-shrinking budget.
const DefaultMinimizeBudget = 200

// Counterexample is one violating schedule, minimized.
type Counterexample struct {
	// Schedule is the (minimized) choice prefix that reproduces the
	// violation; choices beyond it default to 0.
	Schedule []int
	// Outcome is the register outcome of the violating run.
	Outcome string
	// Reasons describes the violation(s): "outcome ... not SC-allowed",
	// invariant breaches, deadlock, or panics.
	Reasons []string
	// FinalHash fingerprints the violating run's final state, so a replay
	// can prove it reproduced the identical execution.
	FinalHash uint64
}

// Report is the result of exploring one (test, protocol) pair.
type Report struct {
	Test  string
	Proto string
	// Mutation echoes the injected bug, if any.
	Mutation string
	// Runs is the number of schedules executed (excluding minimization).
	Runs int
	// States is the number of distinct choice-point states expanded.
	States int
	// Outcomes counts runs per observed register outcome.
	Outcomes map[string]int
	// Allowed is the SC oracle's outcome set.
	Allowed []string
	// Racy is the SC oracle's race verdict (== !Test.DRF, validated).
	Racy bool
	// OutcomeChecked reports whether outcomes were judged against the
	// oracle (true unless the test is racy and the protocol is relaxed,
	// where release consistency owes nothing).
	OutcomeChecked bool
	// Counterexamples holds one minimized schedule per distinct violation
	// reason (capped).
	Counterexamples []Counterexample
	// Truncated is set if a budget stopped the search before the
	// frontier emptied.
	Truncated bool
}

// Violating reports whether the exploration found any violation.
func (r *Report) Violating() bool { return len(r.Counterexamples) > 0 }

// Summary renders a one-line result.
func (r *Report) Summary() string {
	verdict := "ok"
	if r.Violating() {
		verdict = fmt.Sprintf("VIOLATION (%d counterexample(s))", len(r.Counterexamples))
	} else if r.Truncated {
		verdict = "ok (budget-truncated)"
	}
	return fmt.Sprintf("%-16s %-8s runs=%-5d states=%-6d outcomes=%-2d %s",
		r.Test, r.Proto, r.Runs, r.States, len(r.Outcomes), verdict)
}

const maxCounterexamples = 4

// judge appends conformance violations (beyond the run's own) given the
// oracle.
func judge(res *RunResult, oracle *SCResult, checkOutcome bool) []string {
	reasons := append([]string(nil), res.Violations...)
	if checkOutcome && !oracle.AllowedOutcome(res.Outcome) {
		reasons = append(reasons, fmt.Sprintf(
			"outcome %q is not sequentially-consistent-allowed %v", res.Outcome, oracle.Allowed))
	}
	return reasons
}

// Explore model-checks t under ec and returns the report. An error means
// the checker itself could not run (bad test, bad config) — protocol
// violations are reported in the Report, not as errors.
func Explore(t *Test, ec ExploreConfig) (*Report, error) {
	oracle, err := SCOutcomes(t)
	if err != nil {
		return nil, err
	}
	// Relaxed protocols promise SC outcomes only for data-race-free
	// programs; racy litmus tests still run (invariants, deadlock) but
	// their outcomes are merely recorded. The SC-strict protocols (sc,
	// tardis) owe SC semantics to every program.
	checkOutcome := t.DRF || config.ProtocolSCStrict(ec.Proto)
	if ec.MaxRuns <= 0 {
		ec.MaxRuns = 2000
	}
	if ec.MaxStates <= 0 {
		ec.MaxStates = 100000
	}
	rep := &Report{
		Test: t.Name, Proto: ec.Proto, Mutation: ec.Mutation,
		Outcomes: map[string]int{}, Allowed: oracle.Allowed, Racy: oracle.Racy,
		OutcomeChecked: checkOutcome,
	}

	frontier := [][]int{{}}
	expanded := map[uint64]bool{}
	seenReasons := map[string]bool{}

	for len(frontier) > 0 {
		if rep.Runs >= ec.MaxRuns {
			rep.Truncated = true
			break
		}
		prefix := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		res, err := RunOnce(t, ec.RunConfig, prefix)
		if err != nil {
			return nil, err
		}
		rep.Runs++
		rep.Outcomes[res.Outcome]++

		if reasons := judge(res, oracle, checkOutcome); len(reasons) > 0 {
			key := reasons[0]
			if !seenReasons[key] && len(rep.Counterexamples) < maxCounterexamples {
				seenReasons[key] = true
				cx := minimize(t, ec, oracle, checkOutcome, res.Taken)
				rep.Counterexamples = append(rep.Counterexamples, cx)
			}
		}

		// Queue sibling schedules at every unexpanded choice point this
		// run passed through.
		for i := len(prefix); i < len(res.Arity); i++ {
			h := res.Hashes[i]
			if expanded[h] {
				continue
			}
			if len(expanded) >= ec.MaxStates {
				rep.Truncated = true
				break
			}
			expanded[h] = true
			for alt := 1; alt < res.Arity[i]; alt++ {
				branch := make([]int, i+1)
				copy(branch, res.Taken[:i])
				branch[i] = alt
				frontier = append(frontier, branch)
			}
		}
	}
	rep.States = len(expanded)
	sortOutcomeless(rep)
	return rep, nil
}

func sortOutcomeless(r *Report) {
	sort.Slice(r.Counterexamples, func(i, j int) bool {
		return len(r.Counterexamples[i].Schedule) < len(r.Counterexamples[j].Schedule)
	})
}

// minimize shrinks a violating schedule: first the shortest prefix that
// still violates (everything beyond a prefix defaults to 0), then each
// remaining nonzero choice is individually zeroed if the violation
// survives. The result replays deterministically by construction — it is
// re-executed, not edited.
func minimize(t *Test, ec ExploreConfig, oracle *SCResult, checkOutcome bool, taken []int) Counterexample {
	budget := ec.MinimizeBudget
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	run := func(prefix []int) (*RunResult, []string) {
		if budget <= 0 {
			return nil, nil
		}
		budget--
		res, err := RunOnce(t, ec.RunConfig, prefix)
		if err != nil {
			return nil, nil
		}
		return res, judge(res, oracle, checkOutcome)
	}

	best := append([]int(nil), taken...)
	bestRes, bestReasons := run(best)
	if len(bestReasons) == 0 {
		// The full recorded schedule must reproduce; if not (budget
		// exhausted at entry), fall back to reporting it unminimized.
		return Counterexample{Schedule: best, Outcome: "", Reasons: []string{"unreproduced violation"}}
	}

	// Trim trailing zeros first (they are the default anyway), then search
	// for the shortest violating prefix.
	for len(best) > 0 && best[len(best)-1] == 0 {
		best = best[:len(best)-1]
	}
	lo := 0
	for lo < len(best) {
		if res, reasons := run(best[:lo]); len(reasons) > 0 {
			best = append([]int(nil), best[:lo]...)
			bestRes, bestReasons = res, reasons
			break
		}
		lo++
	}

	// Zero out individual choices where the violation survives.
	for i := 0; i < len(best); i++ {
		if best[i] == 0 {
			continue
		}
		trial := append([]int(nil), best...)
		trial[i] = 0
		if res, reasons := run(trial); len(reasons) > 0 {
			best = trial
			bestRes, bestReasons = res, reasons
		}
	}
	for len(best) > 0 && best[len(best)-1] == 0 {
		best = best[:len(best)-1]
	}
	// Re-run the final schedule so Outcome/FinalHash/Reasons all describe
	// exactly the schedule we report.
	if res, reasons := run(best); len(reasons) > 0 {
		bestRes, bestReasons = res, reasons
	}
	return Counterexample{
		Schedule:  best,
		Outcome:   bestRes.Outcome,
		Reasons:   bestReasons,
		FinalHash: bestRes.FinalHash,
	}
}
