package mc

import (
	"fmt"
	"sort"
	"strings"
)

// This file computes the litmus oracle: the exact set of register
// outcomes a sequentially consistent machine allows, by enumerating every
// interleaving of the program's operations (memoized on machine state).
// Alongside, a vector-clock race detector runs over each interleaving;
// a program is data-race-free iff no SC execution exhibits concurrent
// conflicting accesses to the same word (the adve/hill definition, which
// is decidable for these finite programs). The enumerator validates each
// Test's declared DRF flag, so a mislabeled test cannot silently weaken
// the conformance check.

// scState is the complete SC machine state during enumeration.
type scState struct {
	t     *Test
	pc    []int
	mem   []uint64 // per-variable value
	locks []int    // -1 free, else owner
	flags []bool
	regs  [][]uint64

	// happens-before machinery for race detection
	procVC [][]uint32
	lockVC [][]uint32
	flagVC [][]uint32
	// accesses[v] records every access to variable v with the accessor's
	// vector clock at access time.
	accesses [][]scAccess
}

type scAccess struct {
	proc  int
	write bool
	vc    []uint32
}

func newSCState(t *Test) *scState {
	s := &scState{
		t:        t,
		pc:       make([]int, t.Procs),
		mem:      make([]uint64, len(t.Vars)),
		locks:    make([]int, t.Locks),
		flags:    make([]bool, t.Flags),
		regs:     make([][]uint64, t.Procs),
		procVC:   make([][]uint32, t.Procs),
		lockVC:   make([][]uint32, t.Locks),
		flagVC:   make([][]uint32, t.Flags),
		accesses: make([][]scAccess, len(t.Vars)),
	}
	for i := range s.locks {
		s.locks[i] = -1
	}
	for i := range s.procVC {
		s.procVC[i] = make([]uint32, t.Procs)
	}
	for i := range s.lockVC {
		s.lockVC[i] = make([]uint32, t.Procs)
	}
	for i := range s.flagVC {
		s.flagVC[i] = make([]uint32, t.Procs)
	}
	return s
}

func (s *scState) clone() *scState {
	c := &scState{t: s.t}
	c.pc = append([]int(nil), s.pc...)
	c.mem = append([]uint64(nil), s.mem...)
	c.locks = append([]int(nil), s.locks...)
	c.flags = append([]bool(nil), s.flags...)
	c.regs = make([][]uint64, len(s.regs))
	for i := range s.regs {
		c.regs[i] = append([]uint64(nil), s.regs[i]...)
	}
	cloneVCs := func(vcs [][]uint32) [][]uint32 {
		out := make([][]uint32, len(vcs))
		for i := range vcs {
			out[i] = append([]uint32(nil), vcs[i]...)
		}
		return out
	}
	c.procVC = cloneVCs(s.procVC)
	c.lockVC = cloneVCs(s.lockVC)
	c.flagVC = cloneVCs(s.flagVC)
	c.accesses = make([][]scAccess, len(s.accesses))
	for i := range s.accesses {
		c.accesses[i] = append([]scAccess(nil), s.accesses[i]...)
	}
	return c
}

// key serializes everything that can influence the remaining execution
// (including recorded registers and the happens-before state, so the race
// verdict stays exact under memoization).
func (s *scState) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%v|%v|%v", s.pc, s.mem, s.locks, s.flags, s.regs)
	fmt.Fprintf(&b, "|%v|%v|%v", s.procVC, s.lockVC, s.flagVC)
	for v := range s.accesses {
		for _, a := range s.accesses[v] {
			fmt.Fprintf(&b, "|%d,%d,%t,%v", v, a.proc, a.write, a.vc)
		}
	}
	return b.String()
}

func joinVC(dst, src []uint32) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// enabled reports whether proc p's next op can execute.
func (s *scState) enabled(p int) bool {
	if s.pc[p] >= len(s.t.Code[p]) {
		return false
	}
	op := s.t.Code[p][s.pc[p]]
	switch op.Kind {
	case OpAcquire:
		return s.locks[op.Obj] == -1
	case OpWaitFlag:
		return s.flags[op.Obj]
	}
	return true
}

// step executes proc p's next op in place, returning whether it raced
// with an earlier access.
func (s *scState) step(p int) (raced bool) {
	op := s.t.Code[p][s.pc[p]]
	s.pc[p]++
	switch op.Kind {
	case OpAcquire:
		s.locks[op.Obj] = p
		joinVC(s.procVC[p], s.lockVC[op.Obj])
	case OpRelease:
		s.locks[op.Obj] = -1
		joinVC(s.lockVC[op.Obj], s.procVC[p])
	case OpSetFlag:
		s.flags[op.Obj] = true
		joinVC(s.flagVC[op.Obj], s.procVC[p])
	case OpWaitFlag:
		joinVC(s.procVC[p], s.flagVC[op.Obj])
	case OpRead, OpWrite:
		write := op.Kind == OpWrite
		for _, prev := range s.accesses[op.Var] {
			if prev.proc == p || (!prev.write && !write) {
				continue
			}
			// prev happens-before this access iff prev's post-access clock
			// (vc[prev.proc]+1) has propagated to p through synchronization;
			// conflicting accesses with neither ordered are a race.
			if s.procVC[p][prev.proc] < prev.vc[prev.proc]+1 {
				raced = true
			}
		}
		s.accesses[op.Var] = append(s.accesses[op.Var],
			scAccess{proc: p, write: write, vc: append([]uint32(nil), s.procVC[p]...)})
		if write {
			s.mem[op.Var] = op.Val
		} else {
			s.regs[p] = append(s.regs[p], s.mem[op.Var])
		}
		s.procVC[p][p]++
	}
	return raced
}

func (s *scState) done() bool {
	for p := range s.pc {
		if s.pc[p] < len(s.t.Code[p]) {
			return false
		}
	}
	return true
}

// SCResult is the oracle for one litmus test.
type SCResult struct {
	// Allowed is the sorted set of outcomes (formatOutcome strings) some
	// SC interleaving produces.
	Allowed []string
	// Racy reports whether any SC interleaving contains a data race.
	Racy bool
	// States is the number of distinct machine states visited.
	States int
}

// AllowedOutcome reports whether outcome is in the allowed set.
func (r *SCResult) AllowedOutcome(outcome string) bool {
	for _, a := range r.Allowed {
		if a == outcome {
			return true
		}
	}
	return false
}

// scStateCap bounds the enumeration; the corpus stays far below it, and
// exceeding it means a test is too large to serve as an oracle.
const scStateCap = 2_000_000

// SCOutcomes enumerates every sequentially consistent execution of t.
func SCOutcomes(t *Test) (*SCResult, error) {
	if err := validateTest(t); err != nil {
		return nil, err
	}
	res := &SCResult{}
	outcomes := map[string]bool{}
	visited := map[string]bool{}
	var dfs func(s *scState) error
	dfs = func(s *scState) error {
		k := s.key()
		if visited[k] {
			return nil
		}
		if len(visited) >= scStateCap {
			return fmt.Errorf("mc: SC enumeration of %q exceeded %d states", t.Name, scStateCap)
		}
		visited[k] = true
		if s.done() {
			outcomes[formatOutcome(s.regs)] = true
			return nil
		}
		any := false
		for p := 0; p < s.t.Procs; p++ {
			if !s.enabled(p) {
				continue
			}
			any = true
			next := s.clone()
			if next.step(p) {
				res.Racy = true
			}
			if err := dfs(next); err != nil {
				return err
			}
		}
		if !any {
			return fmt.Errorf("mc: litmus test %q deadlocks under SC (pc=%v)", t.Name, s.pc)
		}
		return nil
	}
	if err := dfs(newSCState(t)); err != nil {
		return nil, err
	}
	for o := range outcomes {
		res.Allowed = append(res.Allowed, o)
	}
	sort.Strings(res.Allowed)
	res.States = len(visited)
	if res.Racy == t.DRF {
		return nil, fmt.Errorf("mc: litmus test %q declares DRF=%t but SC enumeration found racy=%t",
			t.Name, t.DRF, res.Racy)
	}
	return res, nil
}

// formatOutcome canonically renders the register values each processor's
// reads observed, e.g. "p0=1;p1=0,1" (processors with no reads omitted).
func formatOutcome(regs [][]uint64) string {
	var b strings.Builder
	for p, rs := range regs {
		if len(rs) == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "p%d=", p)
		for i, v := range rs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return b.String()
}

// validateTest checks structural sanity of a litmus test.
func validateTest(t *Test) error {
	if t.Procs < 2 || t.Procs > 4 {
		return fmt.Errorf("mc: test %q: Procs %d out of range [2,4]", t.Name, t.Procs)
	}
	if len(t.Code) != t.Procs {
		return fmt.Errorf("mc: test %q: %d programs for %d procs", t.Name, len(t.Code), t.Procs)
	}
	lineWords := map[[2]int]string{}
	for _, v := range t.Vars {
		k := [2]int{v.Line, v.Word}
		if prev, dup := lineWords[k]; dup {
			return fmt.Errorf("mc: test %q: vars %q and %q share line %d word %d",
				t.Name, prev, v.Name, v.Line, v.Word)
		}
		lineWords[k] = v.Name
	}
	for p, code := range t.Code {
		for i, op := range code {
			switch op.Kind {
			case OpRead, OpWrite:
				if op.Var < 0 || op.Var >= len(t.Vars) {
					return fmt.Errorf("mc: test %q: p%d op %d: var %d out of range", t.Name, p, i, op.Var)
				}
			case OpAcquire, OpRelease:
				if op.Obj < 0 || op.Obj >= t.Locks {
					return fmt.Errorf("mc: test %q: p%d op %d: lock %d out of range", t.Name, p, i, op.Obj)
				}
			case OpSetFlag, OpWaitFlag:
				if op.Obj < 0 || op.Obj >= t.Flags {
					return fmt.Errorf("mc: test %q: p%d op %d: flag %d out of range", t.Name, p, i, op.Obj)
				}
			default:
				return fmt.Errorf("mc: test %q: p%d op %d: unknown kind %d", t.Name, p, i, op.Kind)
			}
		}
	}
	return nil
}
