package exp

import (
	"context"
	"fmt"
	"strings"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
)

// Ablations exercise the design choices §2 of the paper argues for,
// beyond the lazy/lazier split that Figures 6-7 already cover:
//
//   - the 16-entry coalescing write-through buffer (vs. smaller/larger);
//   - the 4-entry CPU write buffer of the relaxed protocols;
//   - the claim that the lazy protocol's higher directory access cost
//     "does not affect performance" because it hides behind memory;
//   - the overlap of acquire-time invalidation with lock latency.
type Ablation struct {
	Name  string
	Proto string
	App   string
	// Points are the settings swept; Mut applies one to a config.
	Points []int
	Mut    func(*config.Config, int)
	Label  func(int) string
	// Metric extracts the reported quantity from a run.
	Metric func(*Run) float64
	Unit   string
}

// LazierUnderSoftwareCoherence reproduces the paper's DSM-vs-hardware
// contrast directly: it reports the lazy-ext/lazy execution-time ratio
// with hardware protocol processors (background notices) and with
// software coherence (notices stall the processor). The paper's claim —
// "this represents a qualitative shift from the DSM world, where lazier
// protocols always yield performance improvements" — predicts the ratio
// crosses from >1 (lazier loses) toward ≤1 (lazier wins) when the
// overlap is taken away.
func LazierUnderSoftwareCoherence(ctx context.Context, rn *runner.Runner, scale apps.Scale, procs int, appName string) string {
	var jobs []runner.Job
	for _, software := range []bool{false, true} {
		for _, proto := range []string{"lrc", "lrc-ext"} {
			cfg := config.Default(procs)
			cfg.CacheSize = CacheForScale(scale)
			cfg.SoftwareCoherence = software
			jobs = append(jobs, runner.Job{App: appName, Scale: scale, Proto: proto, Cfg: cfg})
		}
	}
	results := rn.DoAll(ctx, jobs)

	var b strings.Builder
	fmt.Fprintf(&b, "DSM contrast: %s, %d procs (lazy-ext time / lazy time)\n", appName, procs)
	for i, software := range []bool{false, true} {
		lrc, ext := results[2*i], results[2*i+1]
		mode := "hardware protocol processor"
		if software {
			mode = "software coherence (no overlap)"
		}
		if err := firstErr(lrc, ext); err != nil {
			fmt.Fprintf(&b, "  %-34s failed: %v\n", mode, err)
			continue
		}
		fmt.Fprintf(&b, "  %-34s %.3f\n", mode, float64(ext.ExecCycles)/float64(lrc.ExecCycles))
	}
	return b.String()
}

// firstErr returns the first failure or verification error in a result
// group — sweep renderers print it in place of the affected cell.
func firstErr(results ...*runner.Result) error {
	for _, r := range results {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Ablations returns the ablation suite.
func Ablations() []Ablation {
	execTime := func(r *Run) float64 { return float64(r.ExecTime) }
	return []Ablation{
		{
			Name:   "coalescing buffer depth (lazy write-through traffic control)",
			Proto:  "lrc",
			App:    "blu",
			Points: []int{1, 4, 16, 64},
			Mut:    func(c *config.Config, v int) { c.CBEntries = v },
			Label:  func(v int) string { return fmt.Sprintf("%d entries", v) },
			Metric: execTime,
			Unit:   "cycles",
		},
		{
			Name:   "write buffer depth (eager write latency masking)",
			Proto:  "erc",
			App:    "fft",
			Points: []int{1, 2, 4, 8},
			Mut:    func(c *config.Config, v int) { c.WBEntries = v },
			Label:  func(v int) string { return fmt.Sprintf("%d entries", v) },
			Metric: execTime,
			Unit:   "cycles",
		},
		{
			Name:   "lazy directory access cost (claim: hidden behind memory)",
			Proto:  "lrc",
			App:    "gauss",
			Points: []int{15, 25, 50, 100},
			Mut:    func(c *config.Config, v int) { c.DirCostLRC = uint64(v) },
			Label:  func(v int) string { return fmt.Sprintf("%d cycles", v) },
			Metric: execTime,
			Unit:   "cycles",
		},
		{
			Name:   "page placement (0 = interleaved, 1 = first touch)",
			Proto:  "lrc",
			App:    "mp3d",
			Points: []int{0, 1},
			Mut:    func(c *config.Config, v int) { c.FirstTouch = v == 1 },
			Label: func(v int) string {
				if v == 0 {
					return "interleaved"
				}
				return "first touch"
			},
			Metric: execTime,
			Unit:   "cycles",
		},
		{
			Name:   "acquire-time invalidation overlap (0 = overlapped, 1 = serialized)",
			Proto:  "lrc",
			App:    "cholesky",
			Points: []int{0, 1},
			Mut:    func(c *config.Config, v int) { c.NoAcquireOverlap = v == 1 },
			Label: func(v int) string {
				if v == 0 {
					return "overlapped"
				}
				return "after grant"
			},
			Metric: execTime,
			Unit:   "cycles",
		},
	}
}

// RunAblation executes one ablation sweep — all points concurrently on
// the runner's pool — and renders it.
func RunAblation(ctx context.Context, rn *runner.Runner, scale apps.Scale, procs int, ab Ablation) string {
	jobs := make([]runner.Job, len(ab.Points))
	for i, v := range ab.Points {
		cfg := config.Default(procs)
		cfg.CacheSize = CacheForScale(scale)
		ab.Mut(&cfg, v)
		jobs[i] = runner.Job{App: ab.App, Scale: scale, Proto: ab.Proto, Cfg: cfg}
	}
	results := rn.DoAll(ctx, jobs)

	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", ab.Name)
	fmt.Fprintf(&b, "  %s under %s, %d procs, %s inputs\n", ab.App, ab.Proto, procs, scale)
	base := -1.0
	for i, v := range ab.Points {
		res := results[i]
		if err := res.Err(); err != nil {
			fmt.Fprintf(&b, "  %-14s failed: %v\n", ab.Label(v), err)
			continue
		}
		val := ab.Metric(runFromResult(res, "ablation"))
		rel := ""
		if base < 0 {
			base = val
		} else if base > 0 {
			rel = fmt.Sprintf("  (%+.1f%%)", 100*(val/base-1))
		}
		fmt.Fprintf(&b, "  %-14s %14.0f %s%s\n", ab.Label(v), val, ab.Unit, rel)
	}
	return b.String()
}
