package exp

// targetProtos maps each matrix-backed paperbench target to the machine
// configuration and protocol set its rendering reads. The normalized-time
// figures divide by the SC run, so "sc" is part of their read set even
// when it is not a plotted bar.
var targetProtos = map[string]struct {
	cfg    string
	protos []string
}{
	"table2": {"default", []string{"erc"}},
	"table3": {"default", []string{"erc", "lrc", "lrc-ext"}},
	"fig4":   {"default", []string{"sc", "erc", "lrc"}},
	"fig5":   {"default", []string{"sc", "erc", "lrc"}},
	"fig6":   {"default", []string{"sc", "lrc", "lrc-ext"}},
	"fig7":   {"default", []string{"sc", "lrc", "lrc-ext"}},
	"fig8":   {"future", []string{"sc", "erc", "lrc", "lrc-ext"}},
	"fig9":   {"future", []string{"sc", "erc", "lrc", "lrc-ext"}},
	"tardis": {"default", []string{"sc", "erc", "lrc", "lrc-ext", "tardis", "tardis2"}},
}

// matrixTargets is the planning order — a stable order keeps the job
// submission sequence (and therefore progress output under -j 1)
// deterministic.
var matrixTargets = []string{
	"table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"tardis",
}

// TargetCells expands the requested paperbench targets ("all" or any of
// table2..fig9; non-matrix targets such as sweeps are ignored) into the
// deduplicated list of (config, app, protocol) cells their rendering
// consumes, in a deterministic order suitable for Evaluator.Prefetch.
func TargetCells(targets []string) [][3]string {
	return TargetCellsFor(targets, AppOrder)
}

// TargetCellsFor is TargetCells restricted to a subset of applications —
// the expansion used by submitted sweep specs, which may scope the matrix
// to a few apps. An empty app list means the full AppOrder.
func TargetCellsFor(targets, appNames []string) [][3]string {
	if len(appNames) == 0 {
		appNames = AppOrder
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	seen := map[[3]string]bool{}
	var cells [][3]string
	for _, t := range matrixTargets {
		if !all && !want[t] {
			continue
		}
		spec := targetProtos[t]
		for _, app := range appNames {
			for _, proto := range spec.protos {
				cell := [3]string{spec.cfg, app, proto}
				if !seen[cell] {
					seen[cell] = true
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells
}

// MatrixTargets returns the matrix-backed target names in planning order
// (the submittable universe for sweep specs, excluding "all").
func MatrixTargets() []string {
	out := make([]string, len(matrixTargets))
	copy(out, matrixTargets)
	return out
}
