package exp

import (
	"context"
	"fmt"
	"strings"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
)

// Sweep reproduces the §4.3 sensitivity experiments in which memory
// latency, bandwidth, and cache line size vary: for each point it reports
// the lazy protocol's execution time relative to eager release
// consistency. The paper's findings: higher latency and bandwidth shrink
// (but do not close) the gap; longer lines widen it by inducing more
// false sharing.
type Sweep struct {
	Name   string
	Mut    func(*config.Config, int)
	Points []int
	Label  func(int) string
}

// Sweeps returns the three §4.3 parameter sweeps.
func Sweeps() []Sweep {
	return []Sweep{
		{
			Name:   "memory startup latency",
			Mut:    func(c *config.Config, v int) { c.MemSetup = uint64(v) },
			Points: []int{10, 20, 40, 80},
			Label:  func(v int) string { return fmt.Sprintf("%d cycles", v) },
		},
		{
			Name: "memory/network bandwidth",
			Mut: func(c *config.Config, v int) {
				c.MemBW, c.NetBW, c.BusBW = v, v, v
			},
			Points: []int{1, 2, 4},
			Label:  func(v int) string { return fmt.Sprintf("%d bytes/cycle", v) },
		},
		{
			Name:   "cache line size",
			Mut:    func(c *config.Config, v int) { c.LineSize = v },
			Points: []int{64, 128, 256},
			Label:  func(v int) string { return fmt.Sprintf("%d bytes", v) },
		},
	}
}

// SweepApps are the workloads the sensitivity study runs (the three whose
// behaviour §4.3 discusses: one false-sharing-bound, one migratory, one
// with no false sharing).
var SweepApps = []string{"mp3d", "locusroute", "gauss"}

// RunSweep renders one sweep: the lazy/eager execution-time ratio per
// application per point. All (app × point × protocol) runs are submitted
// to the runner as one batch, so they execute concurrently on its worker
// pool — and any point shared with another figure or a previous process
// (via the runner's store) is never simulated twice.
func RunSweep(ctx context.Context, rn *runner.Runner, scale apps.Scale, procs int, sw Sweep) string {
	// Plan the batch: two protocols per (app, point) cell, app-major, so
	// cell (ai, pi) lands at results[(ai*len(Points)+pi)*2] (eager) and
	// the slot after it (lazy).
	var jobs []runner.Job
	for _, appName := range SweepApps {
		for _, v := range sw.Points {
			cfg := config.Default(procs)
			sw.Mut(&cfg, v)
			jobs = append(jobs,
				runner.Job{App: appName, Scale: scale, Proto: "erc", Cfg: cfg},
				runner.Job{App: appName, Scale: scale, Proto: "lrc", Cfg: cfg})
		}
	}
	results := rn.DoAll(ctx, jobs)

	var b strings.Builder
	fmt.Fprintf(&b, "Sensitivity: %s (lazy execution time / eager execution time)\n", sw.Name)
	fmt.Fprintf(&b, "  %-12s", "Application")
	for _, v := range sw.Points {
		fmt.Fprintf(&b, " %14s", sw.Label(v))
	}
	fmt.Fprintln(&b)
	for ai, appName := range SweepApps {
		fmt.Fprintf(&b, "  %-12s", appName)
		for pi := range sw.Points {
			base := (ai*len(sw.Points) + pi) * 2
			eager, lazy := results[base], results[base+1]
			if eager.Failed() || lazy.Failed() || eager.ExecCycles == 0 {
				fmt.Fprintf(&b, " %14s", "failed")
				continue
			}
			fmt.Fprintf(&b, " %14.3f", float64(lazy.ExecCycles)/float64(eager.ExecCycles))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Mp3dQuality reproduces the §4.2 quality-of-solution experiment: the
// cumulative per-axis velocity vector of mp3d run with immediate
// visibility (the SC execution) versus with stale, lazily propagated cell
// densities. The paper found the Y and Z components within 0.1% and X
// within 6.7%. It runs its two specially constructed app instances
// directly rather than through the runner: the StaleReads mutation is
// not part of a Job spec, and caching a mutated run under the plain
// mp3d fingerprint would poison the cache.
func Mp3dQuality(scale apps.Scale, procs int) string {
	cfg := config.Default(procs)

	run := func(stale bool) (sx, sy float64) {
		app := apps.NewMp3d(scale)
		app.StaleReads = stale
		if _, err := apps.Run(cfg, "sc", app); err != nil {
			panic(fmt.Sprintf("mp3d quality run: %v", err))
		}
		return app.VelocitySums()
	}
	fx, fy := run(false) // fresh: sequentially consistent data propagation
	lx, ly := run(true)  // stale: lazy-protocol-like propagation

	rel := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		d := (b - a) / a
		if d < 0 {
			d = -d
		}
		return 100 * d
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mp3d quality of solution (cumulative velocity vector after %s run)\n", scale)
	fmt.Fprintf(&b, "  axis   immediate        stale (lazy)     divergence\n")
	fmt.Fprintf(&b, "  X    %12.5f    %12.5f    %8.2f%%\n", fx, lx, rel(fx, lx))
	fmt.Fprintf(&b, "  Y    %12.5f    %12.5f    %8.2f%%\n", fy, ly, rel(fy, ly))
	return b.String()
}
