package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
)

func tinyEvaluator() *Evaluator { return NewEvaluator(apps.Tiny, 8) }

func TestEvaluatorMemoizes(t *testing.T) {
	e := tinyEvaluator()
	r1 := e.Get("default", "gauss", "sc")
	r2 := e.Get("default", "gauss", "sc")
	if r1 != r2 {
		t.Fatal("identical cell re-ran instead of memoizing")
	}
	if r1.ExecTime == 0 {
		t.Fatal("zero execution time")
	}
	if len(e.Runs()) != 1 {
		t.Fatalf("runs = %d, want 1", len(e.Runs()))
	}
	if err := e.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedBaselineIsOne(t *testing.T) {
	e := tinyEvaluator()
	if got := e.Normalized("default", "fft", "sc"); got != 1.0 {
		t.Fatalf("sc normalized to itself = %v, want 1", got)
	}
	lrc := e.Normalized("default", "fft", "lrc")
	if lrc <= 0 || lrc > 1.5 {
		t.Fatalf("lrc normalized time = %v, implausible", lrc)
	}
}

func TestOverheadSharesSumNearTotal(t *testing.T) {
	e := tinyEvaluator()
	cpu, rd, wr, sy := e.OverheadShares("default", "gauss", "sc")
	total := cpu + rd + wr + sy
	// SC's own shares must sum to exactly 1 (they are its total).
	if total < 0.999 || total > 1.001 {
		t.Fatalf("sc shares sum to %v, want 1.0", total)
	}
}

func TestCacheForScale(t *testing.T) {
	if CacheForScale(apps.Paper) != 128<<10 {
		t.Fatal("paper scale must use the Table 1 cache")
	}
	if CacheForScale(apps.Tiny) >= CacheForScale(apps.Small) ||
		CacheForScale(apps.Small) >= CacheForScale(apps.Medium) {
		t.Fatal("cache sizes must grow with scale")
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(config.Default(64))
	for _, want := range []string{"128 bytes", "128 Kbytes", "20 cycles", "25 cycles", "15 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTableAndFigureRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 8-proc tiny matrix")
	}
	e := tinyEvaluator()
	out := Table2(e) + Table3(e) + Fig4(e) + Fig5(e) + Fig6(e) + Fig7(e)
	for _, app := range AppOrder {
		if !strings.Contains(out, app) {
			t.Errorf("rendered tables missing %s", app)
		}
	}
	if err := e.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepsAreWellFormed(t *testing.T) {
	sweeps := Sweeps()
	if len(sweeps) != 3 {
		t.Fatalf("sweeps = %d, want 3 (latency, bandwidth, line size)", len(sweeps))
	}
	for _, sw := range sweeps {
		if len(sw.Points) < 2 {
			t.Errorf("%s: fewer than 2 points", sw.Name)
		}
		for _, v := range sw.Points {
			cfg := config.Default(4)
			sw.Mut(&cfg, v)
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s point %d produces invalid config: %v", sw.Name, v, err)
			}
			if sw.Label(v) == "" {
				t.Errorf("%s point %d has empty label", sw.Name, v)
			}
		}
	}
}

func TestAblationsAreWellFormed(t *testing.T) {
	for _, ab := range Ablations() {
		for _, v := range ab.Points {
			cfg := config.Default(4)
			ab.Mut(&cfg, v)
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s point %d produces invalid config: %v", ab.Name, v, err)
			}
		}
	}
}

func TestRunAblationExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var ab Ablation
	for _, a := range Ablations() {
		if strings.Contains(a.Name, "acquire-time") { // two cheap points
			ab = a
		}
	}
	out := RunAblation(context.Background(), runner.New(2, nil), apps.Tiny, 4, ab)
	if !strings.Contains(out, "overlapped") || !strings.Contains(out, "after grant") {
		t.Fatalf("ablation output malformed:\n%s", out)
	}
}

func TestMp3dQualityReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	out := Mp3dQuality(apps.Tiny, 4)
	if !strings.Contains(out, "X") || !strings.Contains(out, "divergence") {
		t.Fatalf("quality report malformed:\n%s", out)
	}
}

func TestFutureFiguresAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	e := NewEvaluator(apps.Tiny, 4)
	// Restrict to one app to keep the future matrix cheap: render the
	// future figures through the shared helpers directly.
	outT := figTime(e, "future", "future time", []string{"erc", "lrc"})
	outO := figOverhead(e, "future", "future overhead", []string{"lrc"})
	if !strings.Contains(outT, "mp3d") || !strings.Contains(outO, "mp3d") {
		t.Fatal("future renders incomplete")
	}
	var buf strings.Builder
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.Procs != 4 || len(rep.Runs) == 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, r := range rep.Runs {
		if !r.Verified {
			t.Fatalf("unverified run in report: %+v", r)
		}
		if r.Protocol == "sc" && r.Normalized != 1.0 {
			t.Fatalf("sc normalized = %v", r.Normalized)
		}
	}
	if !strings.Contains(buf.String(), "\"miss_rate_pct\"") {
		t.Fatal("JSON missing miss rate field")
	}
}

func TestRunSweepExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sw := Sweep{
		Name:   "line size (test)",
		Mut:    func(c *config.Config, v int) { c.LineSize = v },
		Points: []int{64, 128},
		Label:  func(v int) string { return "x" },
	}
	out := RunSweep(context.Background(), runner.New(4, nil), apps.Tiny, 4, sw)
	if !strings.Contains(out, "mp3d") || !strings.Contains(out, "gauss") {
		t.Fatalf("sweep output malformed:\n%s", out)
	}
}

func TestBarRendering(t *testing.T) {
	if got := len(bar(0.5, 1.0, 10)); got != 10 {
		t.Fatalf("bar width = %d", got)
	}
	if b := bar(2.0, 1.0, 10); strings.Contains(b, " ") {
		t.Fatalf("overflow bar should be full: %q", b)
	}
	if b := bar(0, 0, 4); len(b) != 4 {
		t.Fatalf("zero-max bar: %q", b)
	}
}

func TestRunScalingExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	out := RunScaling(context.Background(), runner.New(2, nil), apps.Tiny, "fft", []int{2, 4})
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "fft") {
		t.Fatalf("scaling output malformed:\n%s", out)
	}
}

func TestLazierUnderSoftwareCoherence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	out := LazierUnderSoftwareCoherence(context.Background(), runner.New(4, nil), apps.Tiny, 8, "locusroute")
	if !strings.Contains(out, "hardware protocol processor") ||
		!strings.Contains(out, "software coherence") {
		t.Fatalf("DSM contrast output malformed:\n%s", out)
	}
}

func TestTargetCells(t *testing.T) {
	all := TargetCells([]string{"all"})
	if len(all) == 0 {
		t.Fatal("no cells for 'all'")
	}
	seen := map[[3]string]bool{}
	for _, c := range all {
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
	}
	// Full matrix: 7 apps × (6 protocols on default + 4 on future).
	if want := len(AppOrder) * 10; len(all) != want {
		t.Fatalf("all target cells = %d, want %d", len(all), want)
	}
	// fig4 needs the SC baseline even though it only plots erc and lrc.
	fig4 := TargetCells([]string{"fig4"})
	var hasSC bool
	for _, c := range fig4 {
		if c[2] == "sc" {
			hasSC = true
		}
	}
	if !hasSC {
		t.Fatal("fig4 cells omit the sc normalization baseline")
	}
	if got := TargetCells([]string{"sweep", "mp3dquality"}); len(got) != 0 {
		t.Fatalf("non-matrix targets expanded to %d cells, want 0", len(got))
	}
}

// reportBytes renders a report for byte comparison across worker counts:
// runner provenance (worker count, wall time) is dropped, every result
// field is kept.
func reportBytes(t *testing.T, e *Evaluator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, e.Report().Stable()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSerialDeterminism is the runner's core contract: a report
// produced on 8 workers is byte-identical to one produced serially, and
// so is every rendered table and figure.
func TestParallelSerialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the tiny matrix twice")
	}
	targets := []string{"table2", "table3", "fig4", "fig6", "fig8"}
	render := func(e *Evaluator) string {
		return Table2(e) + Table3(e) + Fig4(e) + Fig6(e) + Fig8(e)
	}

	serial := NewEvaluatorWith(apps.Tiny, 4, runner.New(1, nil))
	serial.Prefetch(TargetCells(targets))
	serialOut := render(serial)

	parallel := NewEvaluatorWith(apps.Tiny, 4, runner.New(8, nil))
	parallel.Prefetch(TargetCells(targets))
	parallelOut := render(parallel)

	if serialOut != parallelOut {
		t.Fatal("rendered tables differ between -j 1 and -j 8")
	}
	if !bytes.Equal(reportBytes(t, serial), reportBytes(t, parallel)) {
		t.Fatal("JSON reports differ between -j 1 and -j 8")
	}
	if m := parallel.R.Meta(); m.Simulated != len(TargetCells(targets)) {
		t.Fatalf("parallel runner simulated %d jobs, want %d (dedup broken?)",
			m.Simulated, len(TargetCells(targets)))
	}
}

// TestEvaluatorSharedStore drives two evaluators through one store: the
// second must simulate nothing and produce the identical report.
func TestEvaluatorSharedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	path := t.TempDir() + "/results.jsonl"
	cells := TargetCells([]string{"table3"})

	cold, err := runner.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEvaluatorWith(apps.Tiny, 4, runner.New(4, cold))
	e1.Prefetch(cells)
	rep1 := reportBytes(t, e1)
	if m := e1.R.Meta(); m.Simulated == 0 || m.CacheHits != 0 {
		t.Fatalf("cold run meta: %+v", m)
	}

	warm, err := runner.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEvaluatorWith(apps.Tiny, 4, runner.New(4, warm))
	e2.Prefetch(cells)
	rep2 := reportBytes(t, e2)
	if m := e2.R.Meta(); m.Simulated != 0 || m.CacheHits != len(cells) {
		t.Fatalf("warm run simulated %d (want 0), hits %d (want %d)",
			m.Simulated, m.CacheHits, len(cells))
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("cache-served report differs from the simulated one")
	}
}
