package exp

import (
	"context"
	"fmt"
	"strings"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
)

// ChaosPlan names one fault-injection schedule for the chaos soak.
type ChaosPlan struct {
	Name string
	Plan string
}

// DefaultChaosPlans is the standard soak ladder: light loss, heavy loss,
// and heavy loss compounded with a link outage and a receiver brownout.
// Every plan drops messages, so each exercises the end-to-end
// timeout/retransmit transport rather than merely perturbing timing.
var DefaultChaosPlans = []ChaosPlan{
	{"drop2", "drop=0.02"},
	{"drop10", "drop=0.1"},
	{"storm", "drop=0.1;down=0-1:20000:5000;brown=2:40000:3000"},
}

// RunChaos is the lossy-interconnect survival matrix: each (application ×
// protocol) cell runs once fault-free and once per fault plan, all at the
// same seed, and the faulted run must reproduce the fault-free run's end
// state — every processor finished, numerical verification passed, and
// the protocol-invariant auditor and liveness watchdog (attached by the
// runner to every faulted job) found nothing. For timing-independent
// workloads (see apps.TimingDependent) the oracle additionally demands a
// bit-identical final memory image; the lock-structured workloads fold
// acquisition order into their (still verified) results, so bit-equality
// is not a property faults can break. Any divergence means a loss leaked
// through the reliable transport into application state.
//
// The returned error is non-nil when any cell failed its oracle, so
// callers (paperbench, CI) can turn a survived soak into an exit code.
func RunChaos(ctx context.Context, rn *runner.Runner, scale apps.Scale, procs int, seed uint64, appNames, protos []string, plans []ChaosPlan) (string, error) {
	if len(plans) == 0 {
		plans = DefaultChaosPlans
	}
	base := config.Default(procs)
	base.CacheSize = CacheForScale(scale)
	base.Seed = seed

	// One reference job plus len(plans) faulted jobs per cell, submitted
	// in one batch so the pool interleaves them freely; rendering reads
	// the order back deterministically.
	stride := 1 + len(plans)
	jobs := make([]runner.Job, 0, len(appNames)*len(protos)*stride)
	for _, app := range appNames {
		for _, proto := range protos {
			jobs = append(jobs, runner.Job{App: app, Scale: scale, Proto: proto, Cfg: base})
			for _, p := range plans {
				cfg := base
				cfg.FaultPlan = p.Plan
				jobs = append(jobs, runner.Job{App: app, Scale: scale, Proto: proto, Cfg: cfg})
			}
		}
	}
	results := rn.DoAll(ctx, jobs)

	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak: %s inputs, %d procs, seed %d\n", scale, procs, seed)
	fmt.Fprintf(&b, "oracle: completion + verification + invariant checks clean; bit-identical\n")
	fmt.Fprintf(&b, "final memory vs the fault-free run for timing-independent apps\n")
	for _, p := range plans {
		fmt.Fprintf(&b, "  plan %-8s %s\n", p.Name, p.Plan)
	}
	fmt.Fprintf(&b, "  %-12s %-8s", "app", "proto")
	for _, p := range plans {
		fmt.Fprintf(&b, " %-24s", p.Name)
	}
	b.WriteString("\n")

	var failures []string
	i := 0
	for _, app := range appNames {
		for _, proto := range protos {
			ref := results[i]
			faulted := results[i+1 : i+stride]
			i += stride
			fmt.Fprintf(&b, "  %-12s %-8s", app, proto)
			for k, fr := range faulted {
				verdict := chaosVerdict(ref, fr, !apps.TimingDependent(app))
				if strings.HasPrefix(verdict, "FAIL") {
					failures = append(failures, fmt.Sprintf("%s/%s/%s: %s", app, proto, plans[k].Name, verdict))
				}
				fmt.Fprintf(&b, " %-24s", verdict)
			}
			b.WriteString("\n")
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(&b, "FAILED: %d cell(s) diverged\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
		return b.String(), fmt.Errorf("exp: chaos soak: %d cell(s) failed the end-state oracle (first: %s)", len(failures), failures[0])
	}
	fmt.Fprintf(&b, "all %d faulted runs matched their fault-free end state\n", len(appNames)*len(protos)*len(plans))
	return b.String(), nil
}

// chaosVerdict applies the end-state equivalence oracle to one faulted
// run against its fault-free reference. exact additionally demands a
// bit-identical final memory image — sound only for workloads whose
// result is independent of processor interleaving.
func chaosVerdict(ref, faulted *runner.Result, exact bool) string {
	switch {
	case ref.Failed():
		return "FAIL ref: " + ref.Failure
	case ref.VerifyErr != "":
		return "FAIL ref: " + ref.VerifyErr
	case !ref.Completed:
		return "FAIL ref incomplete"
	case faulted.Failed():
		return "FAIL " + faulted.Failure
	case faulted.CheckErr != "":
		return "FAIL check: " + faulted.CheckErr
	case faulted.VerifyErr != "":
		return "FAIL verify: " + faulted.VerifyErr
	case !faulted.Completed:
		return "FAIL incomplete"
	case exact && faulted.MemDigest != ref.MemDigest:
		return "FAIL memory diverged"
	}
	return fmt.Sprintf("ok (%d faulted, %d retx)", faulted.FaultsInjected, faulted.Retransmits)
}
