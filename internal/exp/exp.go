// Package exp drives the paper's evaluation: it runs the (application ×
// protocol × machine-configuration) matrix, memoizing runs shared between
// tables and figures, and renders each table and figure of the paper as
// text. Absolute cycle counts differ from the 1994 testbed, but the
// comparisons the paper makes — who wins, by what factor, where the
// breakdown shifts — are reproduced in shape.
package exp

import (
	"context"
	"fmt"
	"sort"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
	"lazyrc/internal/stats"
)

// AppOrder lists the applications in the paper's table order.
var AppOrder = []string{"barnes-hut", "blu", "cholesky", "fft", "gauss", "locusroute", "mp3d"}

// Run captures one (application, protocol, configuration) execution.
type Run struct {
	App, Proto, Config string

	ExecTime               uint64
	CPU, Read, Write, Sync uint64 // aggregate cycles across processors
	MissRate               float64
	MissShares             [stats.NumMissKinds]float64
	Msgs, Bytes            uint64
	MetricsDigest          string
	Spans                  uint64
	SpanDigest             string
	VerifyErr              error
}

// Evaluator runs and memoizes experiments at one scale and machine size.
// Execution is delegated to a runner.Runner, which deduplicates cells
// shared between tables and figures, executes batches on a worker pool,
// and (when given a store) reuses results across processes.
type Evaluator struct {
	Scale apps.Scale
	Procs int
	// Progress, when non-nil, receives a line per fresh run. It is
	// forwarded to the runner the evaluator creates; when the evaluator
	// is built with NewEvaluatorWith, set Progress on the runner instead.
	Progress func(string)
	// Seed is stamped into every run's configuration so seed-dependent
	// subsystems (fault injection) replay identically across evaluations.
	Seed uint64
	// R executes the evaluator's jobs. Nil means a serial runner with no
	// store is created on first use.
	R *runner.Runner
	// Ctx, when non-nil, bounds every job this evaluator submits: the
	// lrcsimd daemon sets it to the sweep's submission context so a
	// cancelled sweep stops simulating promptly. Nil means Background.
	Ctx context.Context

	runs map[string]*Run
}

// NewEvaluator returns an evaluator for the given scale and machine size
// (the paper evaluates 64 processors). Runs execute serially; use
// NewEvaluatorWith to share a worker pool and result cache.
func NewEvaluator(scale apps.Scale, procs int) *Evaluator {
	return NewEvaluatorWith(scale, procs, nil)
}

// NewEvaluatorWith returns an evaluator that executes through the given
// runner (nil behaves like NewEvaluator).
func NewEvaluatorWith(scale apps.Scale, procs int, r *runner.Runner) *Evaluator {
	return &Evaluator{Scale: scale, Procs: procs, R: r, runs: make(map[string]*Run)}
}

// engine returns the evaluator's runner, creating a serial one on first
// use so the zero configuration keeps its historical behaviour.
func (e *Evaluator) engine() *runner.Runner {
	if e.R == nil {
		e.R = runner.New(1, nil)
		e.R.Progress = e.Progress
	}
	return e.R
}

// ctx returns the evaluator's submission context.
func (e *Evaluator) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// configFor materializes a named machine configuration. The cache size
// scales with the input scale, following the paper's own methodology
// (§3): inputs were shrunk to keep simulation tractable and caches were
// shrunk with them "in order to capture the effect of capacity and
// conflict misses" — with full-size caches the data fits and the eviction
// column of Table 2 (62.9% for barnes-hut!) vanishes.
func (e *Evaluator) configFor(name string) config.Config {
	c, err := config.Preset(name, e.Procs)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	c.CacheSize = CacheForScale(e.Scale)
	c.Seed = e.Seed
	return c
}

// CacheForScale returns the per-processor cache size used at each input
// scale, preserving the paper's footprint-to-cache ratio.
func CacheForScale(s apps.Scale) int {
	switch s {
	case apps.Tiny:
		return 2 << 10
	case apps.Small:
		return 8 << 10
	case apps.Medium:
		return 32 << 10
	default:
		return 128 << 10 // the paper's configuration
	}
}

// Job materializes the runner job for one experiment cell.
func (e *Evaluator) Job(cfgName, appName, proto string) runner.Job {
	return runner.Job{App: appName, Scale: e.Scale, Proto: proto, Cfg: e.configFor(cfgName)}
}

// Get runs (or recalls) one experiment cell. The runner deduplicates by
// content fingerprint, so a cell already simulated by Prefetch — or by a
// previous process sharing the result store — is served without
// re-simulation. A crashed run surfaces as a Run whose VerifyErr carries
// the failure, not as a panic of the whole evaluation.
func (e *Evaluator) Get(cfgName, appName, proto string) *Run {
	key := cfgName + "/" + appName + "/" + proto
	if r, ok := e.runs[key]; ok {
		return r
	}
	res := e.engine().Do(e.ctx(), e.Job(cfgName, appName, proto))
	r := runFromResult(res, cfgName)
	e.runs[key] = r
	return r
}

// runFromResult converts a runner result into the evaluator's Run form.
func runFromResult(res *runner.Result, cfgName string) *Run {
	r := &Run{
		App: res.App, Proto: res.Proto, Config: cfgName,
		ExecTime: res.ExecCycles,
		CPU:      res.CPUCycles, Read: res.ReadCycles,
		Write: res.WriteCycles, Sync: res.SyncCycles,
		MissRate:   res.MissRate,
		MissShares: res.MissShares,
		Msgs:       res.Msgs, Bytes: res.Bytes,
		MetricsDigest: res.MetricsDigest,
		Spans:         res.Spans,
		SpanDigest:    res.SpanDigest,
	}
	if err := res.Err(); err != nil {
		r.VerifyErr = err
	}
	return r
}

// Prefetch simulates the given (config, app, protocol) cells through the
// runner's worker pool. Rendering afterwards reads every cell from the
// in-process memo, so table and figure order stays deterministic while
// the simulations themselves ran concurrently.
func (e *Evaluator) Prefetch(cells [][3]string) {
	jobs := make([]runner.Job, len(cells))
	for i, c := range cells {
		jobs[i] = e.Job(c[0], c[1], c[2])
	}
	e.engine().DoAll(e.ctx(), jobs)
}

// Runs returns all memoized runs, sorted by key (for reports).
func (e *Evaluator) Runs() []*Run {
	keys := make([]string, 0, len(e.runs))
	for k := range e.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Run, len(keys))
	for i, k := range keys {
		out[i] = e.runs[k]
	}
	return out
}

// Normalized returns the run's execution time normalized to the
// sequentially consistent run of the same application and configuration
// — the unit line of the paper's figures.
func (e *Evaluator) Normalized(cfgName, appName, proto string) float64 {
	sc := e.Get(cfgName, appName, "sc")
	r := e.Get(cfgName, appName, proto)
	if sc.ExecTime == 0 {
		return 0
	}
	return float64(r.ExecTime) / float64(sc.ExecTime)
}

// OverheadShares returns the run's aggregate cpu/read/write/sync cycles
// as fractions of the SC run's total aggregate cycles (the presentation
// of Figures 5, 7 and 9).
func (e *Evaluator) OverheadShares(cfgName, appName, proto string) (cpu, read, write, sync float64) {
	sc := e.Get(cfgName, appName, "sc")
	total := float64(sc.CPU + sc.Read + sc.Write + sc.Sync)
	if total == 0 {
		return
	}
	r := e.Get(cfgName, appName, proto)
	return float64(r.CPU) / total, float64(r.Read) / total,
		float64(r.Write) / total, float64(r.Sync) / total
}

// VerifyAll re-checks that every memoized run verified; the first failure
// is returned.
func (e *Evaluator) VerifyAll() error {
	for _, r := range e.Runs() {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s/%s/%s: %w", r.Config, r.App, r.Proto, r.VerifyErr)
		}
	}
	return nil
}
