// Package exp drives the paper's evaluation: it runs the (application ×
// protocol × machine-configuration) matrix, memoizing runs shared between
// tables and figures, and renders each table and figure of the paper as
// text. Absolute cycle counts differ from the 1994 testbed, but the
// comparisons the paper makes — who wins, by what factor, where the
// breakdown shifts — are reproduced in shape.
package exp

import (
	"fmt"
	"sort"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/stats"
)

// AppOrder lists the applications in the paper's table order.
var AppOrder = []string{"barnes-hut", "blu", "cholesky", "fft", "gauss", "locusroute", "mp3d"}

// Run captures one (application, protocol, configuration) execution.
type Run struct {
	App, Proto, Config string

	ExecTime               uint64
	CPU, Read, Write, Sync uint64 // aggregate cycles across processors
	MissRate               float64
	MissShares             [stats.NumMissKinds]float64
	Msgs, Bytes            uint64
	VerifyErr              error
}

// Evaluator runs and memoizes experiments at one scale and machine size.
type Evaluator struct {
	Scale apps.Scale
	Procs int
	// Progress, when non-nil, receives a line per fresh run.
	Progress func(string)
	// Seed is stamped into every run's configuration so seed-dependent
	// subsystems (fault injection) replay identically across evaluations.
	Seed uint64

	runs map[string]*Run
}

// NewEvaluator returns an evaluator for the given scale and machine size
// (the paper evaluates 64 processors).
func NewEvaluator(scale apps.Scale, procs int) *Evaluator {
	return &Evaluator{Scale: scale, Procs: procs, runs: make(map[string]*Run)}
}

// configFor materializes a named machine configuration. The cache size
// scales with the input scale, following the paper's own methodology
// (§3): inputs were shrunk to keep simulation tractable and caches were
// shrunk with them "in order to capture the effect of capacity and
// conflict misses" — with full-size caches the data fits and the eviction
// column of Table 2 (62.9% for barnes-hut!) vanishes.
func (e *Evaluator) configFor(name string) config.Config {
	var c config.Config
	switch name {
	case "default":
		c = config.Default(e.Procs)
	case "future":
		c = config.Future(e.Procs)
	default:
		panic(fmt.Sprintf("exp: unknown config %q", name))
	}
	c.CacheSize = CacheForScale(e.Scale)
	c.Seed = e.Seed
	return c
}

// CacheForScale returns the per-processor cache size used at each input
// scale, preserving the paper's footprint-to-cache ratio.
func CacheForScale(s apps.Scale) int {
	switch s {
	case apps.Tiny:
		return 2 << 10
	case apps.Small:
		return 8 << 10
	case apps.Medium:
		return 32 << 10
	default:
		return 128 << 10 // the paper's configuration
	}
}

// Get runs (or recalls) one experiment cell.
func (e *Evaluator) Get(cfgName, appName, proto string) *Run {
	key := cfgName + "/" + appName + "/" + proto
	if r, ok := e.runs[key]; ok {
		return r
	}
	if e.Progress != nil {
		e.Progress(fmt.Sprintf("running %-10s %-7s (%s, %s, %d procs)", appName, proto, cfgName, e.Scale, e.Procs))
	}
	app, err := apps.New(appName, e.Scale)
	if err != nil {
		panic(err)
	}
	m, verr := apps.Run(e.configFor(cfgName), proto, app)
	r := &Run{App: appName, Proto: proto, Config: cfgName, VerifyErr: verr}
	if m != nil {
		cpu, rd, wr, sy := m.Stats.Aggregate()
		r.ExecTime = m.Stats.ExecutionTime()
		r.CPU, r.Read, r.Write, r.Sync = cpu, rd, wr, sy
		r.MissRate = m.Stats.MissRate()
		r.MissShares = m.Stats.MissShares()
		r.Msgs, r.Bytes = m.Net.Stats()
	}
	e.runs[key] = r
	return r
}

// Runs returns all memoized runs, sorted by key (for reports).
func (e *Evaluator) Runs() []*Run {
	keys := make([]string, 0, len(e.runs))
	for k := range e.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Run, len(keys))
	for i, k := range keys {
		out[i] = e.runs[k]
	}
	return out
}

// Normalized returns the run's execution time normalized to the
// sequentially consistent run of the same application and configuration
// — the unit line of the paper's figures.
func (e *Evaluator) Normalized(cfgName, appName, proto string) float64 {
	sc := e.Get(cfgName, appName, "sc")
	r := e.Get(cfgName, appName, proto)
	if sc.ExecTime == 0 {
		return 0
	}
	return float64(r.ExecTime) / float64(sc.ExecTime)
}

// OverheadShares returns the run's aggregate cpu/read/write/sync cycles
// as fractions of the SC run's total aggregate cycles (the presentation
// of Figures 5, 7 and 9).
func (e *Evaluator) OverheadShares(cfgName, appName, proto string) (cpu, read, write, sync float64) {
	sc := e.Get(cfgName, appName, "sc")
	total := float64(sc.CPU + sc.Read + sc.Write + sc.Sync)
	if total == 0 {
		return
	}
	r := e.Get(cfgName, appName, proto)
	return float64(r.CPU) / total, float64(r.Read) / total,
		float64(r.Write) / total, float64(r.Sync) / total
}

// VerifyAll re-checks that every memoized run verified; the first failure
// is returned.
func (e *Evaluator) VerifyAll() error {
	for _, r := range e.Runs() {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s/%s/%s: %w", r.Config, r.App, r.Proto, r.VerifyErr)
		}
	}
	return nil
}
