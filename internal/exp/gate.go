package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Gate diffs a fresh report against a committed baseline and returns one
// violation string per out-of-tolerance difference (empty means the gate
// passes). The semantics:
//
//   - the evaluation point (scale, processor count) and the run set must
//     match exactly — a disappeared or newly appeared cell is drift, not
//     noise;
//   - cycle counts (execution time, the cpu/read/write/sync breakdown)
//     and network traffic may move by at most tolPct percent of the
//     baseline value (a zero baseline value must stay zero);
//   - the miss classification is structural, not a performance number:
//     any changed miss-rate or miss-share tally fails regardless of
//     tolerance, as does a run that no longer verifies.
//
// The simulator is deterministic, so on an unchanged tree even
// tolPct = 0 passes; any failure is a real behavioural change.
func Gate(baseline, fresh Report, tolPct float64) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if baseline.Scale != fresh.Scale || baseline.Procs != fresh.Procs {
		fail("evaluation point changed: baseline %s/%d procs, fresh %s/%d procs",
			baseline.Scale, baseline.Procs, fresh.Scale, fresh.Procs)
		return v
	}

	key := func(r ReportRun) string { return r.Config + "/" + r.App + "/" + r.Protocol }
	freshBy := map[string]ReportRun{}
	for _, r := range fresh.Runs {
		freshBy[key(r)] = r
	}
	baseBy := map[string]ReportRun{}
	for _, r := range baseline.Runs {
		baseBy[key(r)] = r
	}
	var extra []string
	for k := range freshBy {
		if _, ok := baseBy[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		fail("%s: run present in fresh report but not in baseline (regenerate the baseline?)", k)
	}

	for _, base := range baseline.Runs {
		k := key(base)
		run, ok := freshBy[k]
		if !ok {
			fail("%s: run missing from fresh report", k)
			continue
		}
		cycles := func(name string, b, f uint64) {
			if outOfTolerance(b, f, tolPct) {
				fail("%s: %s %d -> %d (%+.3f%%, tolerance %.3f%%)",
					k, name, b, f, pctDelta(b, f), tolPct)
			}
		}
		cycles("exec_cycles", base.ExecCycles, run.ExecCycles)
		cycles("cpu_cycles", base.CPUCycles, run.CPUCycles)
		cycles("read_cycles", base.ReadCycles, run.ReadCycles)
		cycles("write_cycles", base.WriteCycles, run.WriteCycles)
		cycles("sync_cycles", base.SyncCycles, run.SyncCycles)
		cycles("network_msgs", base.NetworkMsgs, run.NetworkMsgs)
		cycles("network_bytes", base.NetworkBytes, run.NetworkBytes)

		if run.MissRatePct != base.MissRatePct {
			fail("%s: miss rate changed: %.6f%% -> %.6f%%", k, base.MissRatePct, run.MissRatePct)
		}
		shareKinds := make([]string, 0, len(base.MissShares))
		for kind := range base.MissShares {
			shareKinds = append(shareKinds, kind)
		}
		sort.Strings(shareKinds)
		for _, kind := range shareKinds {
			if run.MissShares[kind] != base.MissShares[kind] {
				fail("%s: %s miss share changed: %.6f%% -> %.6f%%",
					k, kind, base.MissShares[kind], run.MissShares[kind])
			}
		}
		// The telemetry digest fingerprints the run's whole cycle-domain
		// shape — when cycles were spent, where traffic flowed — so it
		// catches compensating drifts that leave end-of-run totals inside
		// tolerance. Compared only when both sides carry one, so
		// pre-telemetry baselines still gate on the scalar fields.
		if base.MetricsDigest != "" && run.MetricsDigest != "" &&
			base.MetricsDigest != run.MetricsDigest {
			fail("%s: metrics digest changed: %s -> %s (telemetry shape drift)",
				k, short(base.MetricsDigest), short(run.MetricsDigest))
		}
		// The span digest fingerprints the run's causal event stream —
		// every coherence transaction, stall episode, and message flight
		// with its cycle stamps — so it catches protocol-behaviour drift
		// that neither the scalar totals nor the sampled telemetry see.
		// Same both-sides rule as the metrics digest.
		if base.SpanDigest != "" && run.SpanDigest != "" &&
			base.SpanDigest != run.SpanDigest {
			fail("%s: span digest changed: %s -> %s (causal event-stream drift)",
				k, short(base.SpanDigest), short(run.SpanDigest))
		}
		if base.Verified && !run.Verified {
			fail("%s: run no longer verifies: %s", k, run.Error)
		}
	}
	return v
}

// short abbreviates a hex digest for violation messages.
func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// outOfTolerance reports whether f deviates from b by more than tolPct
// percent of b. A zero baseline admits only zero.
func outOfTolerance(b, f uint64, tolPct float64) bool {
	if b == f {
		return false
	}
	if b == 0 {
		return true
	}
	return pctAbsDelta(b, f) > tolPct
}

func pctAbsDelta(b, f uint64) float64 {
	d := pctDelta(b, f)
	if d < 0 {
		return -d
	}
	return d
}

func pctDelta(b, f uint64) float64 {
	return 100 * (float64(f) - float64(b)) / float64(b)
}

// LoadReport reads a Report from a JSON file (a paperbench -json output
// or a committed baseline).
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("exp: reading report %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("exp: parsing report %s: %w", path, err)
	}
	return r, nil
}
