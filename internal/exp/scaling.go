package exp

import (
	"fmt"
	"strings"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
)

// RunScaling reports how the lazy protocol's advantage moves with the
// machine size — an extension beyond the paper's fixed 64-processor
// evaluation. For each processor count it runs the application under
// eager and lazy release consistency and prints the execution times and
// their ratio. More processors mean more sharers per weak block (larger
// notice fan-out) but also more concurrency for the eager protocol's
// transfers to serialize.
func RunScaling(scale apps.Scale, appName string, counts []int, progress func(string)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: %s, %s inputs (execution cycles; ratio = lazy/eager)\n", appName, scale)
	fmt.Fprintf(&b, "  %6s %14s %14s %8s\n", "procs", "eager", "lazy", "ratio")
	for _, np := range counts {
		times := map[string]uint64{}
		for _, proto := range []string{"erc", "lrc"} {
			if progress != nil {
				progress(fmt.Sprintf("running %-10s %-4s (%d procs)", appName, proto, np))
			}
			cfg := config.Default(np)
			cfg.CacheSize = CacheForScale(scale)
			app, err := apps.New(appName, scale)
			if err != nil {
				panic(err)
			}
			m, verr := apps.Run(cfg, proto, app)
			if verr != nil {
				panic(fmt.Sprintf("exp: scaling run failed verification: %v", verr))
			}
			times[proto] = m.Stats.ExecutionTime()
		}
		ratio := 0.0
		if times["erc"] > 0 {
			ratio = float64(times["lrc"]) / float64(times["erc"])
		}
		fmt.Fprintf(&b, "  %6d %14d %14d %8.3f\n", np, times["erc"], times["lrc"], ratio)
	}
	return b.String()
}

// ScalingCounts are the machine sizes the scaling experiment sweeps.
var ScalingCounts = []int{4, 16, 64}
