package exp

import (
	"context"
	"fmt"
	"strings"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/runner"
)

// RunScaling reports how the lazy protocol's advantage moves with the
// machine size — an extension beyond the paper's fixed 64-processor
// evaluation. For each processor count it runs the application under
// eager and lazy release consistency (all sizes concurrently, through
// the runner) and prints the execution times and their ratio. More
// processors mean more sharers per weak block (larger notice fan-out)
// but also more concurrency for the eager protocol's transfers to
// serialize.
func RunScaling(ctx context.Context, rn *runner.Runner, scale apps.Scale, appName string, counts []int) string {
	jobs := make([]runner.Job, 0, 2*len(counts))
	for _, np := range counts {
		cfg := config.Default(np)
		cfg.CacheSize = CacheForScale(scale)
		jobs = append(jobs,
			runner.Job{App: appName, Scale: scale, Proto: "erc", Cfg: cfg},
			runner.Job{App: appName, Scale: scale, Proto: "lrc", Cfg: cfg})
	}
	results := rn.DoAll(ctx, jobs)

	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: %s, %s inputs (execution cycles; ratio = lazy/eager)\n", appName, scale)
	fmt.Fprintf(&b, "  %6s %14s %14s %8s\n", "procs", "eager", "lazy", "ratio")
	for i, np := range counts {
		eager, lazy := results[2*i], results[2*i+1]
		if err := firstErr(eager, lazy); err != nil {
			fmt.Fprintf(&b, "  %6d failed: %v\n", np, err)
			continue
		}
		ratio := 0.0
		if eager.ExecCycles > 0 {
			ratio = float64(lazy.ExecCycles) / float64(eager.ExecCycles)
		}
		fmt.Fprintf(&b, "  %6d %14d %14d %8.3f\n", np, eager.ExecCycles, lazy.ExecCycles, ratio)
	}
	return b.String()
}

// ScalingCounts are the machine sizes the scaling experiment sweeps.
var ScalingCounts = []int{4, 16, 64}
