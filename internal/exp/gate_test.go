package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateReport(execCycles uint64, falseSharePct float64) Report {
	return Report{
		Scale: "tiny",
		Procs: 8,
		Runs: []ReportRun{{
			Config: "default", App: "gauss", Protocol: "lrc",
			ExecCycles: execCycles,
			CPUCycles:  execCycles / 2, ReadCycles: execCycles / 4,
			WriteCycles: execCycles / 8, SyncCycles: execCycles / 8,
			MissRatePct: 1.25,
			MissShares: map[string]float64{
				"cold": 50, "true": 25, "false": falseSharePct, "eviction": 25 - falseSharePct,
			},
			NetworkMsgs: 1000, NetworkBytes: 64000,
			Verified: true,
		}},
	}
}

// TestGateToleranceBoundary pins the gate's boundary semantics: a delta
// of exactly tol percent passes, one hair over fails.
func TestGateToleranceBoundary(t *testing.T) {
	base := gateReport(1000, 0)

	atBoundary := gateReport(1050, 0) // +5.0% exactly
	atBoundary.Runs[0].CPUCycles = base.Runs[0].CPUCycles
	atBoundary.Runs[0].ReadCycles = base.Runs[0].ReadCycles
	atBoundary.Runs[0].WriteCycles = base.Runs[0].WriteCycles
	atBoundary.Runs[0].SyncCycles = base.Runs[0].SyncCycles
	if v := Gate(base, atBoundary, 5); len(v) != 0 {
		t.Fatalf("delta exactly at tolerance failed the gate: %v", v)
	}

	overBoundary := atBoundary
	overBoundary.Runs[0].ExecCycles = 1051 // +5.1%
	if v := Gate(base, overBoundary, 5); len(v) != 1 ||
		!strings.Contains(v[0], "exec_cycles") {
		t.Fatalf("delta over tolerance passed the gate: %v", v)
	}

	// Shrinkage out of tolerance is drift too (a perf win still needs a
	// baseline regeneration to become the new reference).
	under := gateReport(949, 0)
	if v := Gate(base, under, 5); len(v) == 0 {
		t.Fatal("-5.1% passed the gate")
	}

	// tol 0 is exact equality.
	if v := Gate(base, gateReport(1000, 0), 0); len(v) != 0 {
		t.Fatalf("identical report failed tol 0: %v", v)
	}
	if v := Gate(base, gateReport(1001, 0), 0); len(v) == 0 {
		t.Fatal("one-cycle drift passed tol 0")
	}
}

func TestGateMissClassificationIgnoresTolerance(t *testing.T) {
	base := gateReport(1000, 10)
	shifted := gateReport(1000, 11) // same cycles, one tally moved
	v := Gate(base, shifted, 100)   // generous cycle tolerance
	if len(v) == 0 {
		t.Fatal("changed miss classification passed the gate")
	}
	for _, s := range v {
		if !strings.Contains(s, "miss share") {
			t.Fatalf("unexpected violation: %s", s)
		}
	}
}

func TestGateRunSetMustMatch(t *testing.T) {
	base := gateReport(1000, 0)
	missing := gateReport(1000, 0)
	missing.Runs = nil
	if v := Gate(base, missing, 0); len(v) == 0 {
		t.Fatal("missing run passed the gate")
	}
	extra := gateReport(1000, 0)
	extra.Runs = append(extra.Runs, ReportRun{Config: "default", App: "fft", Protocol: "sc"})
	if v := Gate(base, extra, 0); len(v) == 0 {
		t.Fatal("extra run passed the gate")
	}
	point := gateReport(1000, 0)
	point.Procs = 16
	if v := Gate(base, point, 0); len(v) == 0 {
		t.Fatal("changed machine size passed the gate")
	}
}

func TestGateVerificationRegression(t *testing.T) {
	base := gateReport(1000, 0)
	broken := gateReport(1000, 0)
	broken.Runs[0].Verified = false
	broken.Runs[0].Error = "gauss: cell mismatch"
	if v := Gate(base, broken, 0); len(v) == 0 {
		t.Fatal("verification regression passed the gate")
	}
}

func TestGateZeroBaselineAdmitsOnlyZero(t *testing.T) {
	base := gateReport(1000, 0)
	base.Runs[0].SyncCycles = 0
	fresh := gateReport(1000, 0)
	fresh.Runs[0].SyncCycles = 1
	if v := Gate(base, fresh, 50); len(v) == 0 {
		t.Fatal("0 -> 1 cycles passed a percentage tolerance")
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	rep := gateReport(1234, 5)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReportJSON(f, rep.Stable()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := Gate(rep, got, 0); len(v) != 0 {
		t.Fatalf("report changed across the JSON round trip: %v", v)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing baseline did not error")
	}
}
