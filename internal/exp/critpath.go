package exp

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"lazyrc/internal/apps"
	"lazyrc/internal/causal"
	"lazyrc/internal/machine"
)

// CriticalPath renders the per-protocol per-app stall attribution table
// for `paperbench -critical-path`: for every (application, protocol)
// cell it runs a span-traced simulation, attributes every stalled cycle
// to its protocol cause with the critical-path analyzer, and prints the
// cause shares of total stall time. This is the transaction-granularity
// mirror of the paper's Figure 5/7 overhead breakdowns — instead of
// "write stall grew" it shows *which* protocol resource the cycles
// queued behind.
//
// Runs here retain the full span store, so they execute directly rather
// than through the runner's digest-only result cache.
func CriticalPath(scale apps.Scale, procs int, seed uint64, appNames []string) string {
	if len(appNames) == 0 {
		appNames = AppOrder
	}
	e := NewEvaluator(scale, procs)
	e.Seed = seed
	cfg := e.configFor("default")

	var b strings.Builder
	fmt.Fprintf(&b, "critical-path stall attribution (%s, %d procs; %% of each run's stall cycles)\n", scale, procs)
	tw := tabwriter.NewWriter(&b, 0, 8, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "app\tproto\tstall\t")
	for c := causal.Cause(0); c < causal.NumCauses; c++ {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	for _, appName := range appNames {
		for _, proto := range protoOrder {
			app, err := apps.New(appName, scale)
			if err != nil {
				panic(fmt.Sprintf("critical-path: %v", err))
			}
			m, err := machine.New(cfg, proto)
			if err != nil {
				panic(fmt.Sprintf("critical-path: %v", err))
			}
			m.EnableSpans(true, 0)
			app.Setup(m)
			m.Run(app.Worker)
			if err := app.Verify(); err != nil {
				panic(fmt.Sprintf("critical-path: %s/%s failed verification: %v", appName, proto, err))
			}
			a := causal.Analyze(m.Causal)
			total := a.Total()
			fmt.Fprintf(tw, "%s\t%s\t%d\t", appName, proto, total)
			for c := causal.Cause(0); c < causal.NumCauses; c++ {
				if total == 0 {
					fmt.Fprintf(tw, "-\t")
					continue
				}
				fmt.Fprintf(tw, "%.1f\t", 100*float64(a.CauseTotal(c))/float64(total))
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	return b.String()
}
