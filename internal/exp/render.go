package exp

import (
	"fmt"
	"strings"

	"lazyrc/internal/config"
	"lazyrc/internal/stats"
)

// Table1 renders the system-constant table (Table 1 of the paper) for a
// configuration.
func Table1(c config.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: system parameters (%d processors)\n", c.Procs)
	rows := []struct {
		name  string
		value string
	}{
		{"Cache line size", fmt.Sprintf("%d bytes", c.LineSize)},
		{"Cache size", fmt.Sprintf("%d Kbytes direct-mapped", c.CacheSize>>10)},
		{"Memory setup time", fmt.Sprintf("%d cycles", c.MemSetup)},
		{"Memory bandwidth", fmt.Sprintf("%d bytes/cycle", c.MemBW)},
		{"Bus bandwidth", fmt.Sprintf("%d bytes/cycle", c.BusBW)},
		{"Network bandwidth", fmt.Sprintf("%d bytes/cycle (bidirectional)", c.NetBW)},
		{"Switch node latency", fmt.Sprintf("%d cycles", c.SwitchLat)},
		{"Wire latency", fmt.Sprintf("%d cycles", c.WireLat)},
		{"Write notice processing", fmt.Sprintf("%d cycles", c.NoticeCost)},
		{"LRC directory access cost", fmt.Sprintf("%d cycles", c.DirCostLRC)},
		{"ERC directory access cost", fmt.Sprintf("%d cycles", c.DirCostERC)},
		{"Write buffer entries", fmt.Sprintf("%d", c.WBEntries)},
		{"Coalescing buffer entries", fmt.Sprintf("%d", c.CBEntries)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %s\n", r.name, r.value)
	}
	return b.String()
}

// Table2 renders the classification of misses under eager release
// consistency (the paper's "Figure 2" table).
func Table2(e *Evaluator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: classification of misses under eager release consistency (%%)\n")
	fmt.Fprintf(&b, "  %-12s %8s %8s %8s %9s %8s\n", "Application", "Cold", "True", "False", "Eviction", "Write")
	for _, app := range AppOrder {
		r := e.Get("default", app, "erc")
		s := r.MissShares
		fmt.Fprintf(&b, "  %-12s %7.1f%% %7.1f%% %7.1f%% %8.1f%% %7.1f%%\n", app,
			100*s[stats.Cold], 100*s[stats.TrueShare], 100*s[stats.FalseShare],
			100*s[stats.Eviction], 100*s[stats.WriteMiss])
	}
	return b.String()
}

// Table3 renders the miss rates under the three relaxed implementations
// (the paper's "Figure 3" table).
func Table3(e *Evaluator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: miss rates under eager, lazy, and lazy-ext release consistency\n")
	fmt.Fprintf(&b, "  %-12s %8s %8s %9s\n", "Application", "Eager", "Lazy", "Lazy-ext")
	for _, app := range AppOrder {
		fmt.Fprintf(&b, "  %-12s %7.2f%% %7.2f%% %8.2f%%\n", app,
			100*e.Get("default", app, "erc").MissRate,
			100*e.Get("default", app, "lrc").MissRate,
			100*e.Get("default", app, "lrc-ext").MissRate)
	}
	return b.String()
}

// bar renders v as an ASCII bar against a full-scale max, with a tick at
// the sequentially consistent baseline (1.0).
func bar(v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	fill := int(v / max * float64(width))
	if fill > width {
		fill = width
	}
	tick := int(1.0 / max * float64(width))
	out := make([]byte, width)
	for i := range out {
		switch {
		case i < fill:
			out[i] = '='
		case i == tick:
			out[i] = '|'
		default:
			out[i] = ' '
		}
	}
	return string(out)
}

// figTime renders a normalized-execution-time figure for a protocol set,
// as numbers plus bars (the paper presents these as bar charts; the '|'
// tick marks the sequentially consistent baseline).
func figTime(e *Evaluator, cfgName, title string, protos []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n(execution time normalized to sequential consistency = 1.00)\n", title)
	const scaleMax = 1.25
	for _, app := range AppOrder {
		for i, p := range protos {
			label := ""
			if i == 0 {
				label = app
			}
			v := e.Normalized(cfgName, app, p)
			fmt.Fprintf(&b, "  %-12s %-8s %6.3f  %s\n", label, p, v, bar(v, scaleMax, 40))
		}
	}
	return b.String()
}

// figOverhead renders an overhead-breakdown figure for a protocol set.
func figOverhead(e *Evaluator, cfgName, title string, protos []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n(aggregate cycles as %% of the sequentially consistent total)\n", title)
	fmt.Fprintf(&b, "  %-12s %-8s %8s %8s %8s %8s %8s\n",
		"Application", "Protocol", "CPU", "Read", "Write", "Sync", "Total")
	for _, app := range AppOrder {
		for _, p := range protos {
			cpu, rd, wr, sy := e.OverheadShares(cfgName, app, p)
			fmt.Fprintf(&b, "  %-12s %-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				app, p, 100*cpu, 100*rd, 100*wr, 100*sy, 100*(cpu+rd+wr+sy))
		}
	}
	return b.String()
}

// Fig4 renders Figure 4: lazy vs. eager release consistency on the
// default machine.
func Fig4(e *Evaluator) string {
	return figTime(e, "default",
		"Figure 4: normalized execution time, lazy vs. eager release consistency",
		[]string{"erc", "lrc"})
}

// Fig5 renders Figure 5: the overhead breakdown for lazy, eager, and SC.
func Fig5(e *Evaluator) string {
	return figOverhead(e, "default",
		"Figure 5: overhead analysis for lazy-release, eager-release, and sequential consistency",
		[]string{"lrc", "erc", "sc"})
}

// Fig6 renders Figure 6: the basic lazy protocol vs. its lazier variant.
func Fig6(e *Evaluator) string {
	return figTime(e, "default",
		"Figure 6: normalized execution time, lazy vs. lazy-extended consistency",
		[]string{"lrc", "lrc-ext"})
}

// Fig7 renders Figure 7: the overhead breakdown for the two lazy
// variants against SC.
func Fig7(e *Evaluator) string {
	return figOverhead(e, "default",
		"Figure 7: overhead analysis for lazy, lazy-extended, and sequential consistency",
		[]string{"lrc", "lrc-ext", "sc"})
}

// Fig8 renders Figure 8: performance trends on the future machine
// (40-cycle memory startup, 4 bytes/cycle bandwidth, 256-byte lines).
func Fig8(e *Evaluator) string {
	return figTime(e, "future",
		"Figure 8: performance trends for lazy, lazier, and eager release consistency (future machine)",
		[]string{"erc", "lrc", "lrc-ext"})
}

// Fig9 renders Figure 9: the future machine's overhead breakdown for the
// paper's four protocols.
func Fig9(e *Evaluator) string {
	return figOverhead(e, "future",
		"Figure 9: performance trends, overhead analysis (future machine)",
		[]string{"lrc", "lrc-ext", "erc", "sc"})
}

// TardisTable renders the timestamp-coherence comparison (extension
// beyond the paper): every requested protocol on the default machine,
// with normalized time, miss rate, and total interconnect traffic. The
// traffic columns are the point — the timestamp protocols replace
// invalidation and write-notice fan-out with leases that expire locally,
// so their message counts isolate what coherence enforcement itself
// costs on the wire.
func TardisTable(e *Evaluator, protos []string) string {
	if len(protos) == 0 {
		protos = targetProtos["tardis"].protos
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Timestamp coherence: invalidation vs. lease protocols (default machine)\n")
	fmt.Fprintf(&b, "  %-12s %-8s %10s %9s %12s %14s\n",
		"Application", "Protocol", "Normalized", "MissRate", "Messages", "Bytes")
	for _, app := range AppOrder {
		for i, p := range protos {
			label := ""
			if i == 0 {
				label = app
			}
			r := e.Get("default", app, p)
			fmt.Fprintf(&b, "  %-12s %-8s %10.3f %8.2f%% %12d %14d\n",
				label, p, e.Normalized("default", app, p), 100*r.MissRate, r.Msgs, r.Bytes)
		}
	}
	return b.String()
}
