package exp

import (
	"strings"
	"testing"

	"lazyrc/internal/apps"
)

func TestSpecNormalizeAndID(t *testing.T) {
	a := Spec{Targets: []string{"fig4", "fig4", "table2"}, Apps: []string{"fft", "gauss"}, Scale: "tiny", Procs: 4, Seed: 1}
	b := Spec{Targets: []string{"table2", "fig4"}, Apps: []string{"gauss", "fft", "fft"}, Scale: "tiny", Procs: 4, Seed: 1}
	if a.ID() != b.ID() {
		t.Fatalf("order/duplication changed the sweep identity:\n%s\n%s", a.ID(), b.ID())
	}
	if a.ID() == (Spec{Scale: "tiny", Procs: 4, Seed: 1}).ID() {
		t.Fatal("restricted and unrestricted sweeps share an identity")
	}

	n, err := (Spec{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Scale != "small" || n.Procs != 64 || len(n.Targets) != 1 || n.Targets[0] != "all" || n.Apps != nil {
		t.Fatalf("zero spec normalized to %+v", n)
	}

	// Naming every application is canonically the same as naming none.
	full := Spec{Apps: append([]string(nil), AppOrder...)}
	if full.ID() != (Spec{}).ID() {
		t.Fatal("full app list and empty app list normalize differently")
	}
}

func TestSpecRejectsUnknownNames(t *testing.T) {
	if _, err := (Spec{Targets: []string{"fig99"}}).Normalize(); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown target accepted: %v", err)
	}
	if _, err := (Spec{Apps: []string{"doom"}}).Normalize(); err == nil || !strings.Contains(err.Error(), "doom") {
		t.Fatalf("unknown app accepted: %v", err)
	}
	if _, err := (Spec{Scale: "galactic"}).Normalize(); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestSpecJobsMatchPaperbenchFingerprints(t *testing.T) {
	// A submitted sweep must produce the same job fingerprints as a local
	// paperbench evaluation of the same shape — that equality is what lets
	// the service serve a paperbench-warmed store (and vice versa).
	spec := Spec{Targets: []string{"fig4"}, Apps: []string{"gauss", "fft"}, Scale: "tiny", Procs: 4, Seed: 7}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(apps.Tiny, 4)
	e.Seed = 7
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cells := TargetCellsFor(n.Targets, n.Apps)
	if len(jobs) != len(cells) || len(jobs) == 0 {
		t.Fatalf("jobs = %d, cells = %d", len(jobs), len(cells))
	}
	for i, c := range cells {
		want := e.Job(c[0], c[1], c[2]).Fingerprint()
		if got := jobs[i].Fingerprint(); got != want {
			t.Fatalf("cell %v: spec fingerprint %s != evaluator fingerprint %s", c, got, want)
		}
	}
}

func TestTargetCellsForSubsetsApps(t *testing.T) {
	all := TargetCellsFor([]string{"fig4"}, nil)
	sub := TargetCellsFor([]string{"fig4"}, []string{"gauss"})
	if len(sub) >= len(all) || len(sub) == 0 {
		t.Fatalf("subset sizes: sub=%d all=%d", len(sub), len(all))
	}
	for _, c := range sub {
		if c[1] != "gauss" {
			t.Fatalf("leaked app %q into restricted expansion", c[1])
		}
	}
}
