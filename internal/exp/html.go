package exp

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"lazyrc/internal/telemetry"
)

// This file renders the evaluation as a self-contained HTML report
// (paperbench -report): normalized execution time as grouped columns,
// the cycle-breakdown stack per protocol, and the full measurements
// table with telemetry digests. It reuses the telemetry package's doc
// builder, so styling (palette slots, light/dark, chrome tokens) is
// defined in exactly one place.

// protoOrder fixes both the column order and the categorical palette
// slot of each protocol — color follows the protocol, never its rank.
var protoOrder = []string{"sc", "erc", "lrc", "lrc-ext", "tardis", "tardis2"}

func protoSlot(proto string) int {
	for i, p := range protoOrder {
		if p == proto {
			return i
		}
	}
	return len(protoOrder)
}

// breakdownLabels names the four cycle categories in stack order.
var breakdownLabels = [4]string{"busy", "read stall", "write stall", "sync stall"}

func fmtVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// columnGroup is one x-axis group (an application) with one value per
// column (a protocol): either a plain value or a 4-segment stack.
type columnGroup struct {
	label  string
	stacks [][]float64 // per column: 1 segment (plain) or 4 (breakdown)
	protos []string
}

// groupedColumns renders grouped (optionally stacked) columns: ≤24px
// columns with a 4px-rounded data end and square baseline, 2px surface
// gaps between stacked segments, hairline gridlines, hover titles, and a
// backing data table.
func groupedColumns(groups []columnGroup, segLabels []string, yUnit string) string {
	const (
		w      = 900.0
		h      = 260.0
		padL   = 48.0
		padR   = 12.0
		padT   = 12.0
		padB   = 30.0
		colMax = 24.0
	)
	plotW, plotH := w-padL-padR, h-padT-padB
	ymax := 0.0
	for _, g := range groups {
		for _, st := range g.stacks {
			sum := 0.0
			for _, v := range st {
				sum += v
			}
			if sum > ymax {
				ymax = sum
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	// Clean axis max.
	step := ymax / 4
	yTop := ymax * 1.05
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img">`+"\n", w, h)
	for g := 0; g <= 4; g++ {
		v := step * float64(g)
		y := padT + plotH*(1-v/yTop)
		if g > 0 {
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--grid)" stroke-width="1"/>`+"\n",
				padL, y, padL+plotW, y)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-muted)" text-anchor="end">%s</text>`+"\n",
			padL-6, y+4, fmtVal(v))
	}
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--baseline)" stroke-width="1"/>`+"\n",
		padL, padT+plotH, padL+plotW, padT+plotH)
	if yUnit != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-muted)">%s</text>`+"\n",
			padL, padT-2, html.EscapeString(yUnit))
	}

	groupW := plotW / float64(len(groups))
	for gi, g := range groups {
		ncol := len(g.stacks)
		colW := colMax
		if avail := (groupW - 8) / float64(ncol); avail < colW {
			colW = avail
		}
		x0 := padL + float64(gi)*groupW + (groupW-colW*float64(ncol))/2
		for ci, st := range g.stacks {
			x := x0 + float64(ci)*colW
			yBase := padT + plotH
			total := 0.0
			for _, v := range st {
				total += v
			}
			cum := 0.0
			for si, v := range st {
				if v <= 0 {
					continue
				}
				segH := plotH * v / yTop
				yTopSeg := yBase - plotH*(cum+v)/yTop
				slot := si + 1
				if len(st) == 1 {
					slot = protoSlot(g.protos[ci]) + 1
				}
				// Only the stack's top edge gets the 4px rounded data end;
				// interior segments stay square with a 2px surface gap.
				isTop := cum+v >= total-1e-12
				gapH := segH
				if !isTop && gapH > 2 {
					gapH -= 2
				}
				label := g.label
				segName := g.protos[ci]
				if len(st) > 1 {
					segName = g.protos[ci] + " " + segLabels[si]
				}
				if isTop && gapH > 4 {
					r := 4.0
					cw := colW - 2
					fmt.Fprintf(&b, `<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" fill="var(--s%d)"><title>%s · %s: %s</title></path>`+"\n",
						x, yTopSeg+gapH, x, yTopSeg+r, x, yTopSeg, x+r, yTopSeg,
						x+cw-r, yTopSeg, x+cw, yTopSeg, x+cw, yTopSeg+r, x+cw, yTopSeg+gapH,
						slot, html.EscapeString(label), html.EscapeString(segName), fmtVal(v))
				} else {
					fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="var(--s%d)"><title>%s · %s: %s</title></rect>`+"\n",
						x, yTopSeg, colW-2, gapH, slot,
						html.EscapeString(label), html.EscapeString(segName), fmtVal(v))
				}
				cum += v
			}
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="var(--text-secondary)" text-anchor="middle">%s</text>`+"\n",
			padL+float64(gi)*groupW+groupW/2, h-10, html.EscapeString(g.label))
	}
	b.WriteString("</svg>\n")

	// Legend: protocols for plain columns, categories for stacks.
	b.WriteString(`<div class="legend">`)
	if len(segLabels) > 1 {
		for i, l := range segLabels {
			fmt.Fprintf(&b, `<span class="key"><span class="swatch" style="background:var(--s%d)"></span>%s</span>`,
				i+1, html.EscapeString(l))
		}
	} else {
		for _, p := range protoOrder {
			fmt.Fprintf(&b, `<span class="key"><span class="swatch" style="background:var(--s%d)"></span>%s</span>`,
				protoSlot(p)+1, html.EscapeString(p))
		}
	}
	b.WriteString("</div>\n")

	// Data table.
	b.WriteString("<details><summary>Data table</summary><table><tr><th>app</th>")
	if len(segLabels) > 1 {
		b.WriteString("<th>protocol</th>")
		for _, l := range segLabels {
			fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(l))
		}
		b.WriteString("</tr>\n")
		for _, g := range groups {
			for ci, st := range g.stacks {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td>", html.EscapeString(g.label), html.EscapeString(g.protos[ci]))
				for _, v := range st {
					fmt.Fprintf(&b, "<td>%s</td>", fmtVal(v))
				}
				b.WriteString("</tr>\n")
			}
		}
	} else {
		for _, p := range protoOrder {
			fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(p))
		}
		b.WriteString("</tr>\n")
		for _, g := range groups {
			fmt.Fprintf(&b, "<tr><td>%s</td>", html.EscapeString(g.label))
			for _, p := range protoOrder {
				cell := "–"
				for ci, gp := range g.protos {
					if gp == p {
						cell = fmtVal(g.stacks[ci][0])
					}
				}
				fmt.Fprintf(&b, "<td>%s</td>", cell)
			}
			b.WriteString("</tr>\n")
		}
	}
	b.WriteString("</table></details>\n")
	return b.String()
}

// WriteHTML renders the evaluation report as a self-contained HTML page.
func WriteHTML(w io.Writer, rep Report) error {
	sub := fmt.Sprintf("scale %s · %d processors · %d runs", rep.Scale, rep.Procs, len(rep.Runs))
	doc := telemetry.NewHTMLDoc("Lazy release consistency · evaluation report", sub)

	// Index default-config runs by app and protocol.
	type cell = ReportRun
	byApp := map[string]map[string]cell{}
	var appNames []string
	for _, r := range rep.Runs {
		if r.Config != "default" {
			continue
		}
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]cell{}
			appNames = append(appNames, r.App)
		}
		byApp[r.App][r.Protocol] = r
	}
	sort.Strings(appNames)

	// Normalized execution time (Figure 4's shape): one column per
	// protocol per app, normalized to the app's SC run.
	var normGroups, stackGroups []columnGroup
	for _, app := range appNames {
		cells := byApp[app]
		sc, hasSC := cells["sc"]
		ng := columnGroup{label: app}
		sg := columnGroup{label: app}
		for _, p := range protoOrder {
			r, ok := cells[p]
			if !ok {
				continue
			}
			norm := 0.0
			if hasSC && sc.ExecCycles > 0 {
				norm = float64(r.ExecCycles) / float64(sc.ExecCycles)
			}
			ng.stacks = append(ng.stacks, []float64{norm})
			ng.protos = append(ng.protos, p)
			scTotal := float64(sc.CPUCycles + sc.ReadCycles + sc.WriteCycles + sc.SyncCycles)
			if !hasSC || scTotal == 0 {
				continue
			}
			sg.stacks = append(sg.stacks, []float64{
				float64(r.CPUCycles) / scTotal,
				float64(r.ReadCycles) / scTotal,
				float64(r.WriteCycles) / scTotal,
				float64(r.SyncCycles) / scTotal,
			})
			sg.protos = append(sg.protos, p)
		}
		if len(ng.stacks) > 0 {
			normGroups = append(normGroups, ng)
		}
		if len(sg.stacks) > 0 {
			stackGroups = append(stackGroups, sg)
		}
	}
	if len(normGroups) > 0 {
		doc.Section("Normalized execution time (SC = 1)",
			groupedColumns(normGroups, []string{"normalized time"}, "× SC"))
	}
	if len(stackGroups) > 0 {
		doc.Section("Aggregate cycle breakdown, normalized to SC total",
			groupedColumns(stackGroups, breakdownLabels[:], "share of SC cycles"))
	}

	// Full measurements table, every config.
	var b strings.Builder
	b.WriteString("<table><tr><th>config</th><th>app</th><th>protocol</th><th>exec cycles</th><th>msgs</th><th>bytes</th><th>miss %</th><th>verified</th><th>metrics digest</th></tr>\n")
	for _, r := range rep.Runs {
		ok := "yes"
		if !r.Verified {
			ok = "NO"
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.3f</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(r.Config), html.EscapeString(r.App), html.EscapeString(r.Protocol),
			r.ExecCycles, r.NetworkMsgs, r.NetworkBytes, r.MissRatePct, ok, html.EscapeString(short(r.MetricsDigest)))
	}
	b.WriteString("</table>\n")
	doc.Section("All runs", b.String())

	return doc.Render(w)
}
