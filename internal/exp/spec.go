package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"lazyrc/internal/apps"
	"lazyrc/internal/runner"
)

// Spec is a serializable description of one evaluation sweep — the unit a
// client submits to the lrcsimd experiment service. It names what to run
// (matrix targets and applications) and the machine envelope (scale,
// processor count, seed); the service expands it into runner jobs via the
// same TargetCellsFor/Evaluator path paperbench uses, so a submitted
// sweep and a local paperbench invocation of the same shape produce the
// same job fingerprints and therefore share the result store.
type Spec struct {
	// Targets are matrix-backed paperbench targets (table2..fig9, or
	// "all"). Empty means "all".
	Targets []string `json:"targets,omitempty"`
	// Apps restricts the matrix to these applications. Empty means the
	// paper's full application set.
	Apps []string `json:"apps,omitempty"`
	// Scale is the input scale name (tiny, small, medium, paper). Empty
	// means small, matching paperbench's default.
	Scale string `json:"scale,omitempty"`
	// Procs is the simulated machine size. Zero means 64, the paper's.
	Procs int `json:"procs,omitempty"`
	// Seed is the base random seed stamped into every run.
	Seed uint64 `json:"seed,omitempty"`
}

// Normalize validates the spec and returns its canonical form: defaults
// filled in, targets and apps sorted and deduplicated, "all" collapsed.
// Two specs that expand to the same evaluation normalize identically, so
// Normalize().ID() is a stable sweep identity.
func (s Spec) Normalize() (Spec, error) {
	n := Spec{Scale: s.Scale, Procs: s.Procs, Seed: s.Seed}
	if n.Scale == "" {
		n.Scale = "small"
	}
	if _, err := apps.ParseScale(n.Scale); err != nil {
		return Spec{}, err
	}
	if n.Procs == 0 {
		n.Procs = 64
	}
	if n.Procs < 0 {
		return Spec{}, fmt.Errorf("exp: negative proc count %d", n.Procs)
	}

	known := map[string]bool{"all": true}
	for _, t := range matrixTargets {
		known[t] = true
	}
	all := len(s.Targets) == 0
	for _, t := range s.Targets {
		if !known[t] {
			return Spec{}, fmt.Errorf("exp: unknown sweep target %q (want all or one of %v)", t, matrixTargets)
		}
		if t == "all" {
			all = true
		}
	}
	if all {
		n.Targets = []string{"all"}
	} else {
		n.Targets = dedupSorted(s.Targets)
	}

	knownApp := map[string]bool{}
	for _, a := range apps.Names() {
		knownApp[a] = true
	}
	for _, a := range s.Apps {
		if !knownApp[a] {
			return Spec{}, fmt.Errorf("exp: unknown application %q (want one of %v)", a, apps.Names())
		}
	}
	n.Apps = dedupSorted(s.Apps)
	if len(n.Apps) == len(AppOrder) {
		n.Apps = nil // the full set is canonically "unrestricted"
	}
	return n, nil
}

func dedupSorted(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// ID is the sweep's content identity: the hex SHA-256 of the normalized
// spec's canonical JSON. Stable across field ordering, duplication, and
// daemon restarts; it is the key under which the service deduplicates
// concurrently submitted identical sweeps.
func (s Spec) ID() string {
	n, err := s.Normalize()
	if err != nil {
		n = s // an invalid spec still hashes deterministically
	}
	b, _ := json.Marshal(n)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Cells expands the normalized spec into its (config, app, protocol)
// cells. Call on a normalized spec; an invalid spec yields no cells.
func (s Spec) Cells() [][3]string {
	n, err := s.Normalize()
	if err != nil {
		return nil
	}
	return TargetCellsFor(n.Targets, n.Apps)
}

// Jobs materializes the runner jobs of every cell, in cell order. The
// fingerprints of these jobs are the sweep's result identity: they match
// a paperbench run at the same scale/procs/seed exactly.
func (s Spec) Jobs() ([]runner.Job, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	e, err := n.Evaluator()
	if err != nil {
		return nil, err
	}
	cells := TargetCellsFor(n.Targets, n.Apps)
	jobs := make([]runner.Job, len(cells))
	for i, c := range cells {
		jobs[i] = e.Job(c[0], c[1], c[2])
	}
	return jobs, nil
}

// Evaluator builds an evaluator for the spec (no runner attached; set R
// and Ctx before use).
func (s Spec) Evaluator() (*Evaluator, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	sc, err := apps.ParseScale(n.Scale)
	if err != nil {
		return nil, err
	}
	e := NewEvaluator(sc, n.Procs)
	e.Seed = n.Seed
	return e, nil
}
