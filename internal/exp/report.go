package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"lazyrc/internal/stats"
)

// Report is the machine-readable form of an evaluation: every memoized
// run with its full measurements, keyed for downstream tooling (plotting,
// regression tracking). Rendered by `paperbench -json`.
type Report struct {
	// Scale and Procs identify the evaluation point.
	Scale string `json:"scale"`
	Procs int    `json:"procs"`
	// Runs are all (config, app, protocol) cells executed.
	Runs []ReportRun `json:"runs"`
}

// ReportRun is one run's measurements.
type ReportRun struct {
	Config   string `json:"config"`
	App      string `json:"app"`
	Protocol string `json:"protocol"`

	ExecCycles uint64 `json:"exec_cycles"`
	// Normalized is execution time relative to the SC run of the same
	// app and config (present when that run was also executed).
	Normalized float64 `json:"normalized,omitempty"`

	CPUCycles   uint64 `json:"cpu_cycles"`
	ReadCycles  uint64 `json:"read_cycles"`
	WriteCycles uint64 `json:"write_cycles"`
	SyncCycles  uint64 `json:"sync_cycles"`

	MissRatePct float64            `json:"miss_rate_pct"`
	MissShares  map[string]float64 `json:"miss_shares_pct"`

	NetworkMsgs  uint64 `json:"network_msgs"`
	NetworkBytes uint64 `json:"network_bytes"`

	Verified bool   `json:"verified"`
	Error    string `json:"error,omitempty"`
}

// Report assembles the machine-readable report from all memoized runs.
func (e *Evaluator) Report() Report {
	rep := Report{Scale: e.Scale.String(), Procs: e.Procs}
	for _, r := range e.Runs() {
		rr := ReportRun{
			Config:     r.Config,
			App:        r.App,
			Protocol:   r.Proto,
			ExecCycles: r.ExecTime,
			CPUCycles:  r.CPU, ReadCycles: r.Read,
			WriteCycles: r.Write, SyncCycles: r.Sync,
			MissRatePct:  100 * r.MissRate,
			NetworkMsgs:  r.Msgs,
			NetworkBytes: r.Bytes,
			Verified:     r.VerifyErr == nil,
			MissShares:   map[string]float64{},
		}
		if r.VerifyErr != nil {
			rr.Error = r.VerifyErr.Error()
		}
		for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
			rr.MissShares[k.String()] = 100 * r.MissShares[k]
		}
		// Attach the normalized time when the SC baseline is memoized
		// (without forcing new runs).
		scKey := r.Config + "/" + r.App + "/sc"
		if sc, ok := e.runs[scKey]; ok && sc.ExecTime > 0 {
			rr.Normalized = float64(r.ExecTime) / float64(sc.ExecTime)
		}
		rep.Runs = append(rep.Runs, rr)
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (e *Evaluator) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e.Report()); err != nil {
		return fmt.Errorf("exp: encoding report: %w", err)
	}
	return nil
}
