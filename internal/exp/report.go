package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"lazyrc/internal/runner"
	"lazyrc/internal/stats"
)

// Report is the machine-readable form of an evaluation: every memoized
// run with its full measurements, keyed for downstream tooling (plotting,
// regression tracking). Rendered by `paperbench -json`, committed (in
// Stable form) as the regression-gate baseline.
type Report struct {
	// Scale and Procs identify the evaluation point.
	Scale string `json:"scale"`
	Procs int    `json:"procs"`
	// Runner records how the evaluation executed: worker count, wall
	// time, cache hits and misses, failed jobs. Within it only Workers
	// and WallMS are volatile — every other field, like Runs itself, is
	// bit-identical between a -j 1 and a -j 8 evaluation.
	Runner *runner.Meta `json:"runner,omitempty"`
	// Runs are all (config, app, protocol) cells executed.
	Runs []ReportRun `json:"runs"`
}

// Stable returns a copy suitable for byte comparison across worker
// counts and reruns: runner provenance is dropped, results are kept.
func (r Report) Stable() Report {
	r.Runner = nil
	return r
}

// ReportRun is one run's measurements.
type ReportRun struct {
	Config   string `json:"config"`
	App      string `json:"app"`
	Protocol string `json:"protocol"`

	ExecCycles uint64 `json:"exec_cycles"`
	// Normalized is execution time relative to the SC run of the same
	// app and config (present when that run was also executed).
	Normalized float64 `json:"normalized,omitempty"`

	CPUCycles   uint64 `json:"cpu_cycles"`
	ReadCycles  uint64 `json:"read_cycles"`
	WriteCycles uint64 `json:"write_cycles"`
	SyncCycles  uint64 `json:"sync_cycles"`

	MissRatePct float64            `json:"miss_rate_pct"`
	MissShares  map[string]float64 `json:"miss_shares_pct"`

	NetworkMsgs  uint64 `json:"network_msgs"`
	NetworkBytes uint64 `json:"network_bytes"`

	// MetricsDigest fingerprints the run's cycle-domain telemetry shape
	// (see runner.Result.MetricsDigest). Empty in pre-telemetry baselines.
	MetricsDigest string `json:"metrics_digest,omitempty"`

	// Spans and SpanDigest carry the run's causal span count and stream
	// fingerprint (see runner.Result.SpanDigest). Empty in pre-tracing
	// baselines.
	Spans      uint64 `json:"spans,omitempty"`
	SpanDigest string `json:"span_digest,omitempty"`

	Verified bool   `json:"verified"`
	Error    string `json:"error,omitempty"`
}

// Report assembles the machine-readable report from all memoized runs,
// stamped with the runner's execution record.
func (e *Evaluator) Report() Report {
	rep := Report{Scale: e.Scale.String(), Procs: e.Procs}
	if e.R != nil {
		meta := e.R.Meta()
		rep.Runner = &meta
	}
	for _, r := range e.Runs() {
		rr := ReportRun{
			Config:     r.Config,
			App:        r.App,
			Protocol:   r.Proto,
			ExecCycles: r.ExecTime,
			CPUCycles:  r.CPU, ReadCycles: r.Read,
			WriteCycles: r.Write, SyncCycles: r.Sync,
			MissRatePct:  100 * r.MissRate,
			NetworkMsgs:  r.Msgs,
			NetworkBytes: r.Bytes,
			MetricsDigest: r.MetricsDigest,
			Spans:         r.Spans,
			SpanDigest:    r.SpanDigest,
			Verified:     r.VerifyErr == nil,
			MissShares:   map[string]float64{},
		}
		if r.VerifyErr != nil {
			rr.Error = r.VerifyErr.Error()
		}
		for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
			rr.MissShares[k.String()] = 100 * r.MissShares[k]
		}
		// Attach the normalized time when the SC baseline is memoized
		// (without forcing new runs).
		scKey := r.Config + "/" + r.App + "/sc"
		if sc, ok := e.runs[scKey]; ok && sc.ExecTime > 0 {
			rr.Normalized = float64(r.ExecTime) / float64(sc.ExecTime)
		}
		rep.Runs = append(rep.Runs, rr)
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (e *Evaluator) WriteJSON(w io.Writer) error {
	return WriteReportJSON(w, e.Report())
}

// WriteReportJSON writes any report as indented JSON — the one encoding
// used for -json output and committed baselines, so the two are
// byte-comparable.
func WriteReportJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("exp: encoding report: %w", err)
	}
	return nil
}
