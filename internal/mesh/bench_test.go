package mesh_test

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/mesh"
	"lazyrc/internal/sim"
)

// BenchmarkMeshSendDeliver measures one message's full path — Send,
// dimension-ordered routing with port occupancy, and handler delivery —
// on a 4×4 mesh with no-op handlers. Each iteration drains the engine,
// so the figure is the per-message cost including the scheduled events.
//
//	go test ./internal/mesh -bench Mesh -benchmem
func BenchmarkMeshSendDeliver(b *testing.B) {
	const nodes = 16
	eng := sim.NewEngine()
	net := mesh.New(eng, config.Default(nodes))
	for id := 0; id < nodes; id++ {
		net.Handle(id, func(mesh.Msg) {})
	}
	if err := net.Finalize(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(mesh.Msg{Src: i % nodes, Dst: (i*5 + 1) % nodes, Kind: 0, Size: 16})
		eng.Run()
	}
}

// BenchmarkMeshSendLocal isolates the same-node fast path (no wire, no
// routing — just the local delivery event).
func BenchmarkMeshSendLocal(b *testing.B) {
	const nodes = 16
	eng := sim.NewEngine()
	net := mesh.New(eng, config.Default(nodes))
	for id := 0; id < nodes; id++ {
		net.Handle(id, func(mesh.Msg) {})
	}
	if err := net.Finalize(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % nodes
		net.Send(mesh.Msg{Src: id, Dst: id, Kind: 0, Size: 16})
		eng.Run()
	}
}
