package mesh

import (
	"testing"
	"testing/quick"

	"lazyrc/internal/config"
	"lazyrc/internal/sim"
)

func net64(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	n := New(eng, config.Default(64))
	return eng, n
}

func TestHopsXYRouting(t *testing.T) {
	_, n := net64(t)
	if w, h := n.Dims(); w != 8 || h != 8 {
		t.Fatalf("dims = %d×%d, want 8×8", w, h)
	}
	cases := []struct {
		a, b int
		want uint64
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 8, 1}, {0, 9, 2}, {0, 63, 14}, {7, 56, 14},
	}
	for _, tc := range cases {
		if got := n.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHopsSymmetryProperty(t *testing.T) {
	_, n := net64(t)
	f := func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		return n.Hops(x, y) == n.Hops(y, x) && n.Hops(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperWorkedExampleLatencies(t *testing.T) {
	// §3 of the paper: at 10 hops, a control request costs
	// (2+1)*10 = 30 cycles and a 128-byte data reply (2+1)*10 + 128/2 = 94.
	eng, n := net64(t)
	src, dst := 0, 59 // (0,0) -> (3,7): 10 hops
	if got := n.Hops(src, dst); got != 10 {
		t.Fatalf("picked nodes %d hops apart, want 10", got)
	}
	var controlAt, dataAt sim.Time
	n.Handle(dst, func(m Msg) {
		if m.Size == 0 {
			controlAt = eng.Now()
		} else {
			dataAt = eng.Now()
		}
	})
	n.Handle(src, func(Msg) {})
	eng.At(0, func() {
		n.Send(Msg{Src: src, Dst: dst, Size: 0})
	})
	eng.At(1000, func() {
		n.Send(Msg{Src: src, Dst: dst, Size: 128})
	})
	eng.Run()
	if controlAt != 30 {
		t.Errorf("control message latency = %d, want 30", controlAt)
	}
	if dataAt != 1000+94 {
		t.Errorf("data message delivered at %d, want %d", dataAt, 1000+94)
	}
}

func TestLocalDeliveryIsImmediate(t *testing.T) {
	eng, n := net64(t)
	var at sim.Time
	n.Handle(5, func(m Msg) { at = eng.Now() })
	eng.At(100, func() { n.Send(Msg{Src: 5, Dst: 5, Size: 128}) })
	eng.Run()
	if at != 100 {
		t.Fatalf("local delivery at %d, want 100", at)
	}
}

func TestSenderPortContention(t *testing.T) {
	// Two back-to-back data messages from the same node serialize on the
	// output port: the second leaves 64 cycles after the first.
	eng, n := net64(t)
	var arrivals []sim.Time
	n.Handle(1, func(m Msg) { arrivals = append(arrivals, eng.Now()) })
	n.Handle(0, func(Msg) {})
	eng.At(0, func() {
		n.Send(Msg{Src: 0, Dst: 1, Size: 128})
		n.Send(Msg{Src: 0, Dst: 1, Size: 128})
	})
	eng.Run()
	// 1 hop = 3 cycles; first arrives at 3+64 = 67, second send starts
	// at 64 so arrives at 64+3+64 = 131.
	if len(arrivals) != 2 || arrivals[0] != 67 || arrivals[1] != 131 {
		t.Fatalf("arrivals = %v, want [67 131]", arrivals)
	}
}

func TestReceiverPortContention(t *testing.T) {
	// Two simultaneous data messages from different neighbors to one node
	// collide at the receiver's input port; the second is delayed by the
	// streaming time of the first.
	eng, n := net64(t)
	var arrivals []sim.Time
	n.Handle(1, func(m Msg) { arrivals = append(arrivals, eng.Now()) })
	n.Handle(0, func(Msg) {})
	n.Handle(2, func(Msg) {})
	eng.At(0, func() {
		n.Send(Msg{Src: 0, Dst: 1, Size: 128})
		n.Send(Msg{Src: 2, Dst: 1, Size: 128})
	})
	eng.Run()
	if len(arrivals) != 2 || arrivals[0] != 67 || arrivals[1] != 67+64 {
		t.Fatalf("arrivals = %v, want [67 131]", arrivals)
	}
	if n.PortWaited(1) == 0 {
		t.Error("receiver port contention not recorded")
	}
}

func TestDoubleHandlerPanics(t *testing.T) {
	_, n := net64(t)
	n.Handle(0, func(Msg) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Handle did not panic")
		}
	}()
	n.Handle(0, func(Msg) {})
}

func TestStatsAccumulate(t *testing.T) {
	eng, n := net64(t)
	n.Handle(1, func(Msg) {})
	n.Handle(0, func(Msg) {})
	eng.At(0, func() {
		n.Send(Msg{Src: 0, Dst: 1, Size: 128})
		n.Send(Msg{Src: 0, Dst: 1, Size: 0})
	})
	eng.Run()
	msgs, bytes := n.Stats()
	if msgs != 2 || bytes != 128 {
		t.Fatalf("stats = %d msgs %d bytes, want 2/128", msgs, bytes)
	}
}

func TestTransferCycles(t *testing.T) {
	_, n := net64(t)
	for _, tc := range []struct {
		size int
		want uint64
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {128, 64}} {
		if got := n.TransferCycles(tc.size); got != tc.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}
