package mesh

import (
	"fmt"
	"sort"

	"lazyrc/internal/faults"
	"lazyrc/internal/sim"
)

// Reliable-delivery transport. Hardware meshes are lossless, so the
// zero-fault machine never pays for any of this: the transport exists
// only while a fault injector is attached, and with none the send path is
// byte-identical to the reliable fabric. With an injector, every
// cross-node message is stamped with a per-(src,dst) sequence number and
// tracked in a pending ledger until its delivery event fires; a
// per-message timeout timer retransmits the original message (through the
// injector again — a retransmission is as droppable as a first attempt)
// with seeded-deterministic exponential backoff plus jitter. The ack is
// implicit and free: the simulator is omniscient, so the delivery event
// itself settles the ledger entry, modeling the paper's assumption that
// acknowledgments ride the fabric for free — "timers cancel on reply; no
// ack traffic when nothing is lost".
//
// Loss breaks the mesh's per-(src,dst) FIFO guarantee at the wire level
// (a retransmission lands after messages sent later), so exactly-once
// in-order delivery is restored at the receiver: protocol nodes run
// arrivals through a Sequencer, which suppresses duplicates and late
// originals and parks early arrivals until the gap fills.

const (
	// retrySlack pads the ideal flight time to cover port queueing,
	// injected jitter, and reorder holds before a timeout is declared.
	retrySlack = 1024
	// retryMaxWait caps the exponential backoff so a long link outage is
	// probed at a bounded period rather than backed off past its end.
	retryMaxWait = 1 << 16
	// retryMaxAttempts bounds retransmissions per message; exceeding it
	// panics — the fault plan starves a message beyond the retry budget
	// (an outage longer than ~attempts x retryMaxWait cycles).
	retryMaxAttempts = 32
	// retrySeedSalt derives the transport's jitter stream from the
	// injector seed; an independent stream keeps backoff jitter from
	// perturbing the injector's fault schedule.
	retrySeedSalt = 0x9e3779b97f4a7c15
)

// pendKey identifies one tracked message: its (src,dst) channel and its
// sequence number on that channel. Sequence numbers are never reused, so
// a stale timer whose entry has been settled finds nothing.
type pendKey struct {
	pair int
	seq  uint64
}

type pendEntry struct {
	m         Msg
	attempt   int // retransmissions so far
	firstSend sim.Time
	lastSend  sim.Time
}

// transport is the sender-side reliable-delivery state, attached to the
// Network iff a fault injector is.
type transport struct {
	net     *Network
	rng     *faults.RNG
	plan    faults.Plan
	seq     []uint64 // per (src*nprocs+dst) channel, last assigned sequence
	pending map[pendKey]*pendEntry

	retransmits uint64 // retransmissions sent
	recovered   uint64 // messages delivered after >=1 retransmission
	outageDrops uint64 // losses to link-outage windows
	brownDrops  uint64 // losses to receive brownouts
	maxDepth    uint64 // deepest backoff attempt that still delivered
}

func newTransport(n *Network, inj *faults.Injector) *transport {
	return &transport{
		net:     n,
		rng:     faults.NewRNG(inj.Seed() ^ retrySeedSalt),
		plan:    inj.Plan(),
		seq:     make([]uint64, n.nprocs*n.nprocs),
		pending: make(map[pendKey]*pendEntry),
	}
}

// track enters a freshly stamped message into the pending ledger and arms
// its first timeout timer.
func (tr *transport) track(m Msg) {
	k := pendKey{m.Src*tr.net.nprocs + m.Dst, m.Seq}
	now := tr.net.eng.Now()
	e := &pendEntry{m: m, firstSend: now, lastSend: now}
	tr.pending[k] = e
	tr.arm(k, e)
}

// timeout returns the retransmission wait for the given attempt: the
// ideal flight time plus slack, doubled per attempt up to a cap, plus
// deterministic jitter so synchronized losses don't retransmit in
// lockstep.
func (tr *transport) timeout(m Msg, attempt int) uint64 {
	base := tr.net.hopLat*tr.net.Hops(m.Src, m.Dst) + tr.net.TransferCycles(m.Size) + retrySlack
	wait := base
	for i := 0; i < attempt && wait < retryMaxWait; i++ {
		wait <<= 1
	}
	if wait > retryMaxWait {
		wait = retryMaxWait
	}
	return wait + tr.rng.Uint64n(base/4+1)
}

// arm schedules the timeout timer for the entry's current attempt. The
// timer is a regular (non-background) event: a lost message must keep the
// simulation alive until its retransmission lands. A timer whose entry
// has been settled — or already re-armed by a newer attempt — is a no-op.
func (tr *transport) arm(k pendKey, e *pendEntry) {
	attempt := e.attempt
	tr.net.eng.After(tr.timeout(e.m, attempt), func() {
		if cur, ok := tr.pending[k]; !ok || cur != e || cur.attempt != attempt {
			return
		}
		tr.resend(k, e)
	})
}

// resend retransmits the original message through the injector path (a
// retransmission is as faultable as a first attempt) and re-arms the
// timer at the next backoff step.
func (tr *transport) resend(k pendKey, e *pendEntry) {
	now := tr.net.eng.Now()
	e.attempt++
	if e.attempt > retryMaxAttempts {
		panic(fmt.Sprintf(
			"mesh: %s %d->%d seq %d undelivered after %d retransmissions (injector seed %d): fault plan starves the message beyond the retry budget",
			faults.KindName(e.m.Kind), e.m.Src, e.m.Dst, e.m.Seq, retryMaxAttempts, tr.net.inj.Seed()))
	}
	tr.retransmits++
	tr.net.causal.Retransmit(e.m.CT, e.m.Src, e.m.Dst, e.m.Kind, e.m.Addr, e.lastSend, now, e.attempt)
	e.lastSend = now
	tr.net.dispatch(e.m)
	tr.arm(k, e)
}

// ack settles the ledger entry for a delivered message. Idempotent:
// duplicate deliveries of an already-settled message find no entry.
func (tr *transport) ack(m Msg) {
	if m.Seq == 0 {
		return
	}
	k := pendKey{m.Src*tr.net.nprocs + m.Dst, m.Seq}
	e, ok := tr.pending[k]
	if !ok {
		return
	}
	delete(tr.pending, k)
	if e.attempt > 0 {
		tr.recovered++
		if d := uint64(e.attempt); d > tr.maxDepth {
			tr.maxDepth = d
		}
		tr.net.tel.observeRetx(uint64(e.attempt), tr.net.eng.Now()-e.firstSend)
	}
}

// routeDown reports whether the XY route from src to dst crosses a link
// that is inside an outage window at simulated time now.
func (n *Network) routeDown(src, dst int, now sim.Time) bool {
	if n.tr == nil || len(n.tr.plan.Outages) == 0 {
		return false
	}
	cur := src
	cx, cy := cur%n.w, cur/n.w
	dx, dy := dst%n.w, dst/n.w
	for cx != dx {
		step := 1
		if dx < cx {
			step = -1
		}
		next := cy*n.w + cx + step
		if n.tr.plan.LinkDown(cur, next, now) {
			return true
		}
		cur, cx = next, cx+step
	}
	for cy != dy {
		step := 1
		if dy < cy {
			step = -1
		}
		next := (cy+step)*n.w + cx
		if n.tr.plan.LinkDown(cur, next, now) {
			return true
		}
		cur, cy = next, cy+step
	}
	return false
}

// TransportActive reports whether the reliable-delivery transport is
// engaged (true iff a fault injector is attached).
func (n *Network) TransportActive() bool { return n.tr != nil }

// TransportStats returns the transport counters: retransmissions sent,
// messages recovered after at least one retransmission, losses to link
// outages and to receive brownouts, the deepest backoff attempt that
// still delivered, and the ledger entries currently awaiting delivery.
func (n *Network) TransportStats() (retransmits, recovered, outageDrops, brownoutDrops, maxDepth uint64, pending int) {
	if n.tr == nil {
		return 0, 0, 0, 0, 0, 0
	}
	return n.tr.retransmits, n.tr.recovered, n.tr.outageDrops, n.tr.brownDrops, n.tr.maxDepth, len(n.tr.pending)
}

// TransportSummary renders the transport's activity, or "" when inactive.
func (n *Network) TransportSummary() string {
	if n.tr == nil {
		return ""
	}
	return fmt.Sprintf("transport: %d retransmitted, %d recovered after loss, %d outage-dropped, %d brownout-dropped, max backoff depth %d, %d pending",
		n.tr.retransmits, n.tr.recovered, n.tr.outageDrops, n.tr.brownDrops, n.tr.maxDepth, len(n.tr.pending))
}

// RetxEntry describes one pending ledger entry that has been
// retransmitted at least once — the messages the fabric is currently
// failing to deliver.
type RetxEntry struct {
	Src, Dst, Kind int
	Seq            uint64
	Attempt        int
	FirstSend      sim.Time
	LastSend       sim.Time
	CT             uint64
}

// PendingRetransmits returns the in-flight entries with at least one
// retransmission, oldest first (deterministically ordered).
func (n *Network) PendingRetransmits() []RetxEntry {
	if n.tr == nil {
		return nil
	}
	var out []RetxEntry
	for _, e := range n.tr.pending {
		if e.attempt == 0 {
			continue
		}
		out = append(out, RetxEntry{
			Src: e.m.Src, Dst: e.m.Dst, Kind: e.m.Kind,
			Seq: e.m.Seq, Attempt: e.attempt,
			FirstSend: e.firstSend, LastSend: e.lastSend, CT: e.m.CT,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.FirstSend != b.FirstSend {
			return a.FirstSend < b.FirstSend
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Seq < b.Seq
	})
	return out
}

// TransportTop renders the k oldest pending retransmit entries for stall
// reports.
func (n *Network) TransportTop(k int) []string {
	entries := n.PendingRetransmits()
	if len(entries) > k {
		entries = entries[:k]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("retx in flight: %s %d->%d seq %d, attempt %d, first sent @%d, last @%d (txn %d)",
			faults.KindName(e.Kind), e.Src, e.Dst, e.Seq, e.Attempt, e.FirstSend, e.LastSend, e.CT)
	}
	return out
}

// Sequencer restores exactly-once in-order delivery at a receiving node.
// Loss plus retransmission breaks wire-level per-(src,dst) FIFO — a
// retransmitted message lands after messages its sender issued later —
// and duplication delivers some messages twice. Each protocol node runs
// arrivals through a Sequencer: unstamped messages (Seq 0: no injector,
// or node-local) pass straight through; stamped messages are delivered in
// per-source sequence order, with duplicates and late originals
// suppressed and early arrivals parked until the gap fills.
type Sequencer struct {
	next       []uint64 // per source, next expected sequence (1-based)
	held       []map[uint64]Msg
	suppressed uint64 // duplicates and late originals discarded
	parked     uint64 // out-of-order arrivals held for gap fill
}

// NewSequencer returns a sequencer for arrivals from nprocs sources.
func NewSequencer(nprocs int) *Sequencer {
	s := &Sequencer{next: make([]uint64, nprocs), held: make([]map[uint64]Msg, nprocs)}
	for i := range s.next {
		s.next[i] = 1
	}
	return s
}

// Admit processes one arrival, invoking deliver zero or more times: once
// for the message itself if it is next in sequence, plus once for each
// parked successor the delivery unblocks.
func (s *Sequencer) Admit(m Msg, deliver func(Msg)) {
	if m.Seq == 0 {
		deliver(m)
		return
	}
	src := m.Src
	switch {
	case m.Seq < s.next[src]:
		s.suppressed++
	case m.Seq > s.next[src]:
		if _, dup := s.held[src][m.Seq]; dup {
			s.suppressed++
			return
		}
		if s.held[src] == nil {
			s.held[src] = make(map[uint64]Msg)
		}
		s.held[src][m.Seq] = m
		s.parked++
	default:
		s.next[src]++
		deliver(m)
		for {
			hm, ok := s.held[src][s.next[src]]
			if !ok {
				return
			}
			delete(s.held[src], s.next[src])
			s.next[src]++
			deliver(hm)
		}
	}
}

// Suppressed returns how many duplicates and late originals were
// discarded.
func (s *Sequencer) Suppressed() uint64 { return s.suppressed }

// Parked returns how many out-of-order arrivals were held for gap fill
// (cumulative).
func (s *Sequencer) Parked() uint64 { return s.parked }

// Waiting returns how many arrivals are currently parked — nonzero at
// quiescence means a gap never filled.
func (s *Sequencer) Waiting() int {
	n := 0
	for _, m := range s.held {
		n += len(m)
	}
	return n
}
