package mesh

import (
	"strings"
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/faults"
	"lazyrc/internal/sim"
)

// TestNonSquareMeshDims covers processor counts that are twice a perfect
// square: the mesh must go near-square, not degenerate to a chain.
func TestNonSquareMeshDims(t *testing.T) {
	for _, tc := range []struct {
		procs, w, h int
	}{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {128, 16, 8},
	} {
		eng := sim.NewEngine()
		n := New(eng, config.Default(tc.procs))
		if w, h := n.Dims(); w != tc.w || h != tc.h {
			t.Errorf("procs=%d: dims = %d×%d, want %d×%d", tc.procs, w, h, tc.w, tc.h)
		}
	}
}

// TestHopsOnNonSquareMesh pins XY distances on the 4×2 mesh of 8 nodes:
// node i sits at (i%4, i/4).
func TestHopsOnNonSquareMesh(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, config.Default(8))
	for _, tc := range []struct {
		a, b int
		want uint64
	}{
		{0, 3, 3}, // same row, full width
		{0, 4, 1}, // same column, one row down
		{0, 7, 4}, // opposite corner: 3 + 1
		{3, 4, 4}, // other diagonal
		{5, 6, 1}, // adjacent in bottom row
		{2, 2, 0}, // self
	} {
		if got := n.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestTransferCyclesEdgeCases covers degenerate payloads: zero and
// negative sizes stream in zero cycles, and payloads below one bandwidth
// unit still round up to a full cycle.
func TestTransferCyclesEdgeCases(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, config.Default(8)) // NetBW = 2 bytes/cycle
	for _, tc := range []struct {
		size int
		want uint64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 1}, {127, 64}, {128, 64}, {129, 65},
	} {
		if got := n.TransferCycles(tc.size); got != tc.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

// TestSelfSendLoopback pins both self-send modes: without LocalLoopback a
// node-local message is delivered instantly and pays no port occupancy;
// with it, the message pays NIC serialization like remote traffic (zero
// hops, so only streaming time).
func TestSelfSendLoopback(t *testing.T) {
	t.Run("off", func(t *testing.T) {
		eng := sim.NewEngine()
		n := New(eng, config.Default(8))
		var at sim.Time
		n.Handle(3, func(Msg) { at = eng.Now() })
		eng.At(50, func() { n.Send(Msg{Src: 3, Dst: 3, Size: 128}) })
		eng.Run()
		if at != 50 {
			t.Fatalf("local delivery at %d, want immediate (50)", at)
		}
		if n.PortBusy(3) != 0 {
			t.Fatalf("local delivery occupied NIC ports for %d cycles, want 0", n.PortBusy(3))
		}
	})
	t.Run("on", func(t *testing.T) {
		eng := sim.NewEngine()
		n := New(eng, config.Default(8))
		n.LocalLoopback = true
		var at sim.Time
		n.Handle(3, func(Msg) { at = eng.Now() })
		eng.At(50, func() { n.Send(Msg{Src: 3, Dst: 3, Size: 128}) })
		eng.Run()
		if at != 50+64 { // 0 hops, 128 bytes at 2 B/cycle
			t.Fatalf("loopback delivery at %d, want %d", at, 50+64)
		}
		if n.PortBusy(3) == 0 {
			t.Fatal("loopback delivery did not occupy NIC ports")
		}
	})
}

// TestFinalizeReportsAllUnhandledNodes verifies machine setup's wiring
// check lists every node without a handler, not just the first.
func TestFinalizeReportsAllUnhandledNodes(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, config.Default(8))
	n.Handle(0, func(Msg) {})
	n.Handle(3, func(Msg) {})
	err := n.Finalize()
	if err == nil {
		t.Fatal("Finalize accepted a partially wired network")
	}
	for _, want := range []string{"6 node(s)", "[1 2 4 5 6 7]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Finalize error %q lacks %q", err, want)
		}
	}
	for i := range 8 {
		if n.handlers[i] == nil {
			n.Handle(i, func(Msg) {})
		}
	}
	if err := n.Finalize(); err != nil {
		t.Fatalf("Finalize on a fully wired network: %v", err)
	}
}

// TestInjectedDuplicateSharesTID verifies duplicates carry the original's
// transaction id and arrive later.
func TestInjectedDuplicateSharesTID(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, config.Default(8))
	type arrival struct {
		tid uint64
		at  sim.Time
	}
	var got []arrival
	for i := range 8 {
		n.Handle(i, func(m Msg) { got = append(got, arrival{m.TID, eng.Now()}) })
	}
	// dup=1 duplicates every message deterministically.
	plan, err := faults.ParsePlan("dup=1:16")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetInjector(faults.NewInjector(42, plan)); err != nil {
		t.Fatal(err)
	}
	eng.At(0, func() { n.Send(Msg{Src: 0, Dst: 1, Size: 0}) })
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("%d deliveries, want original + duplicate", len(got))
	}
	if got[0].tid == 0 || got[0].tid != got[1].tid {
		t.Fatalf("duplicate TID %d != original TID %d (or unstamped)", got[1].tid, got[0].tid)
	}
	if got[1].at <= got[0].at {
		t.Fatalf("duplicate at %d not after original at %d", got[1].at, got[0].at)
	}
	if _, _, duped, _ := n.FaultStats(); duped != 1 {
		t.Fatalf("FaultStats duped = %d, want 1", duped)
	}
}

// TestInjectionPreservesPairwiseFIFO floods one (src,dst) pair under an
// aggressive reorder plan and verifies deliveries still come in send
// order — the mesh's per-pair FIFO guarantee must survive injection.
func TestInjectionPreservesPairwiseFIFO(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, config.Default(8))
	var order []uint64
	for i := range 8 {
		n.Handle(i, func(m Msg) {
			if m.Dst == 1 {
				order = append(order, m.Addr)
			}
		})
	}
	plan, err := faults.ParsePlan("reorder=0.8:200,delay=0.5:1:100")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetInjector(faults.NewInjector(99, plan)); err != nil {
		t.Fatal(err)
	}
	const msgs = 200
	for i := range msgs {
		at := uint64(i) * 10
		seq := uint64(i)
		eng.At(at, func() { n.Send(Msg{Src: 0, Dst: 1, Size: 0, Addr: seq}) })
	}
	eng.Run()
	if len(order) != msgs {
		t.Fatalf("%d deliveries, want %d", len(order), msgs)
	}
	for i, seq := range order {
		if seq != uint64(i) {
			t.Fatalf("delivery %d carries sequence %d: pairwise FIFO violated", i, seq)
		}
	}
	if reordered, _, _, _ := n.FaultStats(); reordered == 0 {
		t.Fatal("reorder plan never engaged — test exercised nothing")
	}
}

// TestDropsAllowedUnderTransport verifies the drop safety interlock: the
// mesh's reliable transport makes every kind retryable, so SetInjector
// accepts drops anywhere — including as the default rule — while a bare
// plan validated with no retry still rejects them.
func TestDropsAllowedUnderTransport(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, config.Default(8))
	plan, err := faults.ParsePlan("drop=0.5;5:drop=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(nil); err == nil {
		t.Fatal("plan with drops validated without any end-to-end retry")
	}
	if err := n.SetInjector(faults.NewInjector(1, plan)); err != nil {
		t.Fatalf("SetInjector rejected a dropping plan despite the transport: %v", err)
	}
	if !n.TransportActive() {
		t.Fatal("transport not engaged after SetInjector")
	}
	if err := n.SetInjector(nil); err != nil {
		t.Fatal(err)
	}
	if n.TransportActive() {
		t.Fatal("transport still engaged after detaching the injector")
	}
}
