package mesh

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/faults"
	"lazyrc/internal/sim"
)

// lossyNetwork builds an 8-node network with the given plan attached and
// wires every node's handler through a per-node Sequencer, mirroring how
// protocol nodes consume arrivals. deliver sees exactly-once in-order
// messages.
func lossyNetwork(t *testing.T, eng *sim.Engine, seed uint64, planText string, deliver func(Msg)) *Network {
	t.Helper()
	n := New(eng, config.Default(8))
	plan, err := faults.ParsePlan(planText)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetInjector(faults.NewInjector(seed, plan)); err != nil {
		t.Fatal(err)
	}
	for i := range 8 {
		seq := NewSequencer(8)
		n.Handle(i, func(m Msg) { seq.Admit(m, deliver) })
	}
	return n
}

// TestRetransmitRecoversEveryDrop floods one channel at 60% loss and
// verifies exactly-once in-order delivery of everything, a settled
// ledger, and plausible recovery counters.
func TestRetransmitRecoversEveryDrop(t *testing.T) {
	eng := sim.NewEngine()
	var got []uint64
	n := lossyNetwork(t, eng, 7, "drop=0.6", func(m Msg) {
		if m.Dst == 1 {
			got = append(got, m.Addr)
		}
	})
	const msgs = 300
	for i := range msgs {
		at, tag := uint64(i)*8, uint64(i)
		eng.At(at, func() { n.Send(Msg{Src: 0, Dst: 1, Size: 16, Addr: tag}) })
	}
	eng.Run()
	if len(got) != msgs {
		t.Fatalf("%d deliveries, want %d", len(got), msgs)
	}
	for i, tag := range got {
		if tag != uint64(i) {
			t.Fatalf("delivery %d carries tag %d: order not restored", i, tag)
		}
	}
	_, _, _, dropped := n.FaultStats()
	if dropped == 0 {
		t.Fatal("drop plan never engaged — test exercised nothing")
	}
	retx, recovered, _, _, maxDepth, pending := n.TransportStats()
	if retx < dropped {
		t.Fatalf("%d retransmissions for %d drops: losses left unrepaired", retx, dropped)
	}
	if recovered == 0 || maxDepth == 0 {
		t.Fatalf("recovered=%d maxDepth=%d, want both positive under 60%% loss", recovered, maxDepth)
	}
	if pending != 0 {
		t.Fatalf("%d ledger entries still pending at quiescence", pending)
	}
}

// TestOutageWindowRecovered sends across a downed link during its outage
// window: every crossing is lost on the wire and must be recovered by
// retransmission after the window closes.
func TestOutageWindowRecovered(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []sim.Time
	// Nodes 0 and 1 are adjacent on the 4x2 mesh; the 0->1 route is the
	// single 0-1 link. No probabilistic rule: the outage is the only fault.
	n := lossyNetwork(t, eng, 3, "down=0-1:0:5000", func(m Msg) {
		if m.Dst == 1 {
			arrivals = append(arrivals, eng.Now())
		}
	})
	const msgs = 10
	for i := range msgs {
		at := uint64(i) * 100 // all inside the outage window
		eng.At(at, func() { n.Send(Msg{Src: 0, Dst: 1, Size: 16}) })
	}
	eng.Run()
	if len(arrivals) != msgs {
		t.Fatalf("%d deliveries, want %d", len(arrivals), msgs)
	}
	for _, at := range arrivals {
		if at < 5000 {
			t.Fatalf("delivery at %d, inside the outage window", at)
		}
	}
	_, _, outage, _, _, pending := n.TransportStats()
	if outage < msgs {
		t.Fatalf("outageDrops = %d, want >= %d (every first attempt crosses the downed link)", outage, msgs)
	}
	if pending != 0 {
		t.Fatalf("%d ledger entries still pending at quiescence", pending)
	}
}

// TestBrownoutRecovered sends into a browned-out receiver: arrivals
// during the window are lost at the NIC and recovered after it.
func TestBrownoutRecovered(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []sim.Time
	n := lossyNetwork(t, eng, 3, "brown=5:0:4000", func(m Msg) {
		if m.Dst == 5 {
			arrivals = append(arrivals, eng.Now())
		}
	})
	const msgs = 8
	for i := range msgs {
		at := uint64(i) * 50
		eng.At(at, func() { n.Send(Msg{Src: 0, Dst: 5, Size: 16}) })
	}
	eng.Run()
	if len(arrivals) != msgs {
		t.Fatalf("%d deliveries, want %d", len(arrivals), msgs)
	}
	for _, at := range arrivals {
		if at < 4000 {
			t.Fatalf("delivery at %d, inside the brownout window", at)
		}
	}
	_, _, _, brown, _, pending := n.TransportStats()
	if brown < msgs {
		t.Fatalf("brownoutDrops = %d, want >= %d", brown, msgs)
	}
	if pending != 0 {
		t.Fatalf("%d ledger entries still pending at quiescence", pending)
	}
}

// TestSequencerRestoresFIFO drives a Sequencer directly with the arrival
// patterns loss produces: gaps, late originals, and duplicates.
func TestSequencerRestoresFIFO(t *testing.T) {
	s := NewSequencer(4)
	var got []uint64
	deliver := func(m Msg) { got = append(got, m.Seq) }
	msg := func(src int, seq uint64) Msg { return Msg{Src: src, Seq: seq} }

	s.Admit(msg(0, 1), deliver) // in order
	s.Admit(msg(0, 3), deliver) // early: parked
	s.Admit(msg(0, 3), deliver) // duplicate of a parked message
	s.Admit(msg(0, 2), deliver) // fills the gap, drains 3
	s.Admit(msg(0, 2), deliver) // late duplicate
	s.Admit(Msg{Src: 0, Seq: 0}, deliver) // unstamped: passes through
	want := []uint64{1, 2, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries = %v, want %v", got, want)
		}
	}
	if s.Suppressed() != 2 {
		t.Fatalf("Suppressed = %d, want 2", s.Suppressed())
	}
	if s.Parked() != 1 {
		t.Fatalf("Parked = %d, want 1", s.Parked())
	}
	if s.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0", s.Waiting())
	}
	// Sources sequence independently.
	s.Admit(msg(2, 2), deliver)
	if s.Waiting() != 1 {
		t.Fatal("arrival from another source not parked independently")
	}
	s.Admit(msg(2, 1), deliver)
	if s.Waiting() != 0 || got[len(got)-1] != 2 {
		t.Fatalf("source-2 gap fill failed: waiting %d, tail %d", s.Waiting(), got[len(got)-1])
	}
}

// TestTransportCountersInFlight verifies PendingRetransmits/TransportTop
// expose an undelivered message while its loss is still being repaired.
func TestTransportCountersInFlight(t *testing.T) {
	eng := sim.NewEngine()
	n := lossyNetwork(t, eng, 1, "down=0-1:0:60000", func(Msg) {})
	eng.At(0, func() { n.Send(Msg{Src: 0, Dst: 1, Size: 16}) })
	// Stop mid-outage: the message has been retransmitted but not
	// delivered.
	eng.At(40000, func() { eng.Stop() })
	eng.Run()
	entries := n.PendingRetransmits()
	if len(entries) != 1 {
		t.Fatalf("%d pending retransmit entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Src != 0 || e.Dst != 1 || e.Attempt == 0 || e.LastSend <= e.FirstSend {
		t.Fatalf("entry = %+v", e)
	}
	if top := n.TransportTop(4); len(top) != 1 {
		t.Fatalf("TransportTop = %v", top)
	}
}
