// Package mesh models the interconnect of the simulated multiprocessor: a
// 2-D mesh with dimension-ordered (XY) routing, distance-dependent
// latency, and network contention modeled at the sending and receiving
// nodes of each message — but not at intermediate switches — exactly as in
// §3 of the paper.
//
// A message from a node at distance h carrying p payload bytes is
// delivered h*(switch+wire) + p/bandwidth cycles after it leaves the
// sender's network interface. Control messages (p = 0) cost only the hop
// latency, matching the paper's worked example: a 10-hop request costs
// (2+1)*10 = 30 cycles and the 128-byte data reply (2+1)*10 + 128/2 = 94.
package mesh

import (
	"fmt"

	"lazyrc/internal/causal"
	"lazyrc/internal/config"
	"lazyrc/internal/faults"
	"lazyrc/internal/perf"
	"lazyrc/internal/sim"
)

// Network is the mesh interconnect. Deliver handlers are registered per
// node; Send routes a message and schedules the destination handler.
type Network struct {
	eng    *sim.Engine
	w, h   int
	nprocs int
	hopLat uint64 // switch + wire, per hop
	bw     int    // bytes per cycle

	in  []*sim.Resource // per-node receive ports
	out []*sim.Resource // per-node send ports

	handlers  []func(Msg)
	finalized bool

	sent      uint64
	bytesSent uint64
	byKind    map[int]uint64

	// Fault injection (nil = reliable fabric, the default). When an
	// injector is attached every message is stamped with a transaction id
	// and a per-channel sequence number, the reliable-delivery transport
	// (tr, see transport.go) retransmits losses end-to-end, and lastEntry
	// serializes per-(src,dst) network entry so injected reordering never
	// violates the pairwise FIFO guarantee the protocols assume.
	inj       *faults.Injector
	tr        *transport
	nextTID   uint64
	lastEntry []sim.Time // nprocs*nprocs, indexed src*nprocs+dst

	injReordered, injDelayed, injDuped, injDropped uint64

	// Schedule exploration (nil = no explorer). A model checker attaches a
	// chooser and a menu of candidate pre-entry delays; every cross-node
	// message becomes a choice point picking one delay from the menu, with
	// entry times floored by lastEntry so exploration can never violate the
	// per-(src,dst) FIFO guarantee. Mutually exclusive with fault injection.
	exp     sim.Chooser
	expMenu []uint64

	// In-flight message ledger, maintained only under an explorer: an
	// order-independent digest over messages sent but not yet delivered,
	// folded into machine state hashes for visited-state dedup.
	flightSum, flightXor, flightN uint64

	// LocalLoopback controls whether a node sending to itself still
	// pays NIC and hop costs. Hardware handles node-local protocol
	// operations without touching the network; keep false.
	LocalLoopback bool

	// Trace, when non-nil, observes every message at send time —
	// debugging and the protocolwalk example.
	Trace func(Msg)

	// tel, when non-nil, feeds per-kind latency histograms (see
	// telemetry.go). Collection is passive: it never changes timing.
	tel *telemetrySink

	// causal, when non-nil, stamps each message with the causal
	// transaction id current at send time and records one net span per
	// wire flight. Passive: it reads timestamps the timing model already
	// computed.
	causal *causal.Tracer

	// prof, when non-nil, charges routing/transport wall time to the
	// mesh phase. Passive: never touches simulated state.
	prof *perf.Profiler
}

// Msg is one network message. Protocol packages define the meaning of
// Kind and the payload fields; the mesh only uses Src, Dst, and Size.
type Msg struct {
	Src, Dst int
	Kind     int
	Size     int // payload bytes (0 for control messages)

	// Addr is the coherence block or synchronization object the message
	// concerns.
	Addr uint64
	// Arg and Aux carry message-kind-specific scalars (directory state,
	// word mask, object id, ...).
	Arg uint64
	Aux uint64

	// Vals carries the data words of a payload-bearing message (a line's
	// worth for fills and write-backs, masked by Arg for write-throughs).
	// The timing model only charges for Size bytes; Vals exists so a value
	// tracker can follow which write's data each copy actually holds.
	Vals []uint64

	// TID is the network-assigned transaction id, stamped only when fault
	// injection is active (0 otherwise). An injected duplicate carries its
	// original's TID.
	TID uint64

	// Seq is the reliable-transport sequence number on the message's
	// (src,dst) channel, stamped (1-based) only when fault injection is
	// active; retransmissions and injected duplicates carry the
	// original's Seq, and receivers run stamped messages through a
	// Sequencer for exactly-once in-order delivery. Like TID it depends
	// on dynamic send order, so it is excluded from msgHash.
	Seq uint64

	// CT is the causal transaction id threaded through the message,
	// stamped at Send from the tracer's current context when causal
	// tracing is enabled (0 otherwise). Like TID it depends on dynamic
	// send order, so it is excluded from msgHash.
	CT uint64
}

// New builds the mesh for the given configuration.
func New(eng *sim.Engine, cfg config.Config) *Network {
	w, h := config.MeshDims(cfg.Procs)
	n := &Network{
		eng:      eng,
		w:        w,
		h:        h,
		nprocs:   cfg.Procs,
		hopLat:   cfg.SwitchLat + cfg.WireLat,
		bw:       cfg.NetBW,
		in:       make([]*sim.Resource, cfg.Procs),
		out:      make([]*sim.Resource, cfg.Procs),
		handlers: make([]func(Msg), cfg.Procs),
	}
	n.byKind = make(map[int]uint64)
	for i := range n.in {
		n.in[i] = sim.NewResource(fmt.Sprintf("nic-in%d", i))
		n.out[i] = sim.NewResource(fmt.Sprintf("nic-out%d", i))
	}
	return n
}

// Handle registers the delivery handler for node id. Exactly one handler
// per node; registering twice panics.
func (n *Network) Handle(id int, fn func(Msg)) {
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("mesh: node %d handler registered twice", id))
	}
	n.handlers[id] = fn
}

// Finalize validates the registration: every node must have a delivery
// handler. Machine setup calls it once wiring is complete, so a
// misconfigured network fails fast with the full list of unhandled nodes
// instead of panicking at the first Send that happens to hit one.
func (n *Network) Finalize() error {
	var missing []int
	for id, h := range n.handlers {
		if h == nil {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("mesh: %d node(s) have no delivery handler: %v", len(missing), missing)
	}
	n.finalized = true
	return nil
}

// SetInjector attaches a fault injector and engages the reliable-delivery
// transport (transport.go), which makes every message kind retryable.
// Pass nil to detach both. With an injector attached, every cross-node
// message is stamped with a transaction id and a channel sequence number,
// tracked until delivery, and retransmitted on timeout; with none, the
// send path is exactly the reliable fabric.
func (n *Network) SetInjector(inj *faults.Injector) error {
	if inj != nil {
		if n.exp != nil {
			return fmt.Errorf("mesh: fault injector and schedule explorer are mutually exclusive")
		}
		if err := inj.Validate(func(int) bool { return true }); err != nil {
			return err
		}
		if n.lastEntry == nil {
			n.lastEntry = make([]sim.Time, n.nprocs*n.nprocs)
		}
		n.tr = newTransport(n, inj)
	} else {
		n.tr = nil
	}
	n.inj = inj
	return nil
}

// SetExplorer attaches a schedule explorer: every cross-node message asks
// the chooser to pick a pre-entry delay from menu (sorted candidate
// delays; a menu of one is no choice point at all). Entry times are
// floored per (src, dst) by the same mechanism that serializes injected
// reordering, so no explored schedule can violate pairwise FIFO delivery.
// Pass a nil chooser to detach. Exploration and fault injection are
// mutually exclusive: the injector consumes seeded randomness, which
// would make the chooser's answer stream non-replayable.
func (n *Network) SetExplorer(ch sim.Chooser, menu []uint64) error {
	if ch == nil {
		n.exp, n.expMenu = nil, nil
		return nil
	}
	if n.inj != nil {
		return fmt.Errorf("mesh: fault injector and schedule explorer are mutually exclusive")
	}
	if len(menu) == 0 {
		menu = []uint64{0}
	}
	if n.lastEntry == nil {
		n.lastEntry = make([]sim.Time, n.nprocs*n.nprocs)
	}
	n.exp = ch
	n.expMenu = append([]uint64(nil), menu...)
	return nil
}

// SetCausal attaches (or, with nil, detaches) a causal span tracer.
// With one attached every Send stamps the message's CT from the
// tracer's current context and every wire flight records a net span.
func (n *Network) SetCausal(t *causal.Tracer) { n.causal = t }

// SetProfiler attaches (or, with nil, detaches) a wall-clock phase
// profiler: Send/dispatch/transmit wall time is charged to the mesh
// phase (delivery handlers re-attribute themselves).
func (n *Network) SetProfiler(p *perf.Profiler) { n.prof = p }

// Hops returns the XY-routing distance between two nodes.
func (n *Network) Hops(a, b int) uint64 {
	ax, ay := a%n.w, a/n.w
	bx, by := b%n.w, b/n.w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return uint64(dx + dy)
}

// Dims returns the mesh width and height.
func (n *Network) Dims() (w, h int) { return n.w, n.h }

// TransferCycles returns size/bandwidth rounded up — the serialization
// time of a payload on a link, bus, or memory port at this network's
// bandwidth.
func (n *Network) TransferCycles(size int) uint64 {
	if size <= 0 {
		return 0
	}
	return uint64((size + n.bw - 1) / n.bw)
}

// Send routes m from m.Src to m.Dst: it acquires the sender's output
// port, applies hop latency and payload streaming time, acquires the
// receiver's input port, and schedules the destination's handler at the
// delivery time. Node-local messages invoke the handler immediately
// (hardware keeps local protocol transitions off the network) unless
// LocalLoopback is set.
func (n *Network) Send(m Msg) {
	if n.handlers[m.Dst] == nil {
		panic(fmt.Sprintf("mesh: no handler on node %d (Network.Finalize not called or node never registered)", m.Dst))
	}
	prev := n.prof.Enter(perf.PhaseMesh)
	defer n.prof.Exit(prev)
	if n.causal != nil {
		m.CT = n.causal.Current()
	}
	if m.Src == m.Dst && !n.LocalLoopback {
		// Node-local protocol transitions never touch the network and are
		// subject to neither injection nor exploration.
		n.transmit(m, 0)
		return
	}
	if n.exp != nil {
		delay := n.expMenu[0]
		if len(n.expMenu) > 1 {
			pick := n.exp.Choose(len(n.expMenu))
			if pick < 0 || pick >= len(n.expMenu) {
				panic(fmt.Sprintf("mesh: explorer picked delay %d of %d", pick, len(n.expMenu)))
			}
			delay = n.expMenu[pick]
		}
		entry := n.eng.Now() + delay
		pair := m.Src*n.nprocs + m.Dst
		if t := n.lastEntry[pair]; t > entry {
			entry = t
		}
		// The floor is strict (lastEntry stores entry+1): if two held
		// messages on one channel shared an entry timestamp, their network
		// entries would be same-time engine events, and the engine's own
		// tie chooser could flip them — violating the pairwise FIFO the
		// protocols assume. Strict ordering keeps every interleaving the
		// explorer can express a legal one.
		n.lastEntry[pair] = entry + 1
		if entry == n.eng.Now() {
			n.transmit(m, 0)
			return
		}
		n.flightAdd(m)
		n.eng.At(entry, func() { n.flightRemove(m); n.transmit(m, 0) })
		return
	}
	if n.inj == nil {
		n.transmit(m, 0)
		return
	}
	// Stamp identity once — the transaction id and the channel sequence
	// number — then enter the ledger and dispatch through the injector.
	// Retransmissions re-enter via dispatch with the same stamps.
	n.nextTID++
	m.TID = n.nextTID
	pair := m.Src*n.nprocs + m.Dst
	n.tr.seq[pair]++
	m.Seq = n.tr.seq[pair]
	n.tr.track(m)
	n.dispatch(m)
}

// dispatch runs one send attempt (first transmission or retransmission)
// through the fault injector: it may be dropped outright — the timeout
// timer recovers it — held back, jittered, or duplicated.
func (n *Network) dispatch(m Msg) {
	prev := n.prof.Enter(perf.PhaseMesh)
	defer n.prof.Exit(prev)
	f := n.inj.Decide(m.Kind, m.Src, m.Dst, m.Size, n.eng.Now())
	if f.Drop {
		n.injDropped++
		return
	}
	// Injected reordering holds the message back before it enters the
	// network; lastEntry keeps entry times monotonic per (src, dst) pair
	// so two messages between the same nodes are never reordered — the
	// FIFO guarantee of dimension-ordered routing survives injection.
	// The floor is strict (lastEntry stores entry+1): a message held to
	// entry time T sits in a pending callback, and a successor sent at
	// exactly cycle T with no hold of its own would otherwise take the
	// synchronous fast path below and overtake it. (Loss still reorders
	// the wire — a retransmission lands late — which is why receivers
	// resequence stamped messages; see Sequencer.)
	entry := n.eng.Now() + f.PreDelay
	pair := m.Src*n.nprocs + m.Dst
	if t := n.lastEntry[pair]; t > entry {
		entry = t
	}
	n.lastEntry[pair] = entry + 1
	if f.PreDelay > 0 {
		n.injReordered++
	}
	if f.ExtraLat > 0 {
		n.injDelayed++
	}
	send := func() {
		n.transmit(m, f.ExtraLat)
		if f.Duplicate {
			n.injDuped++
			n.eng.After(f.DupDelay, func() { n.transmit(m, f.ExtraLat) })
		}
	}
	if entry == n.eng.Now() {
		send()
	} else {
		n.eng.At(entry, send)
	}
}

// transmit puts one message (or injected duplicate) on the wire: port
// occupancy, hop latency, payload streaming, plus extra injected in-flight
// latency. With the transport engaged, a message whose route crosses a
// downed link is lost before it occupies any port, a message arriving
// inside the destination's brownout window is lost at the door, and a
// delivered message settles its transport ledger entry (the implicit,
// zero-cost ack).
func (n *Network) transmit(m Msg, extra uint64) {
	prev := n.prof.Enter(perf.PhaseMesh)
	defer n.prof.Exit(prev)
	if m.Src != m.Dst && n.routeDown(m.Src, m.Dst, n.eng.Now()) {
		n.tr.outageDrops++
		return
	}
	n.sent++
	n.bytesSent += uint64(m.Size)
	n.byKind[m.Kind]++
	if n.Trace != nil {
		n.Trace(m)
	}
	if m.Src == m.Dst && !n.LocalLoopback {
		n.flightAdd(m)
		n.eng.At(n.eng.Now(), func() {
			p := n.prof.Enter(perf.PhaseMesh)
			n.flightRemove(m)
			n.handlers[m.Dst](m)
			n.prof.Exit(p)
		})
		return
	}
	ser := n.TransferCycles(m.Size)
	occ := ser
	if occ == 0 {
		occ = 1 // control messages still occupy the port for one cycle
	}
	sendStart, _ := n.out[m.Src].Acquire(n.eng.Now(), occ)
	rawArrival := sendStart + n.hopLat*n.Hops(m.Src, m.Dst) + ser + extra
	deliver := n.in[m.Dst].AcquireWindow(rawArrival, occ)
	n.tel.observe(m.Kind, deliver-n.eng.Now())
	n.causal.Net(m.CT, m.Src, m.Dst, m.Kind, m.Addr,
		n.eng.Now(), deliver, sendStart-n.eng.Now(), deliver-rawArrival)
	n.flightAdd(m)
	n.eng.At(deliver, func() {
		p := n.prof.Enter(perf.PhaseMesh)
		defer n.prof.Exit(p)
		n.flightRemove(m)
		if n.tr != nil {
			if n.tr.plan.NodeBrowned(m.Dst, n.eng.Now()) {
				n.tr.brownDrops++
				return
			}
			n.tr.ack(m)
		}
		n.handlers[m.Dst](m)
	})
}

// msgHash is an FNV-1a fingerprint of a message's protocol-visible
// content (not its TID, which depends on send order alone).
func msgHash(m Msg) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(m.Src))
	mix(uint64(m.Dst))
	mix(uint64(m.Kind))
	mix(uint64(m.Size))
	mix(m.Addr)
	mix(m.Arg)
	mix(m.Aux)
	for _, v := range m.Vals {
		mix(v)
	}
	return h
}

// flightAdd/flightRemove maintain the in-flight multiset digest. Only an
// explorer needs it; the ledger stays zero-cost otherwise.
func (n *Network) flightAdd(m Msg) {
	if n.exp == nil {
		return
	}
	h := msgHash(m)
	n.flightSum += h
	n.flightXor ^= h
	n.flightN++
}

func (n *Network) flightRemove(m Msg) {
	if n.exp == nil {
		return
	}
	h := msgHash(m)
	n.flightSum -= h
	n.flightXor ^= h
	n.flightN--
}

// InFlightDigest returns an order-independent digest of the messages
// currently sent but undelivered (plus their count), for folding into a
// whole-machine state hash. Zero-valued without an explorer attached.
func (n *Network) InFlightDigest() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range [3]uint64{n.flightN, n.flightSum, n.flightXor} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// Stats returns the total messages and payload bytes sent.
func (n *Network) Stats() (msgs, bytes uint64) { return n.sent, n.bytesSent }

// KindCount returns how many messages of the given protocol kind were
// sent — the per-transaction-type traffic breakdown behind the paper's
// message-reduction argument.
func (n *Network) KindCount(kind int) uint64 { return n.byKind[kind] }

// PortWaited returns the cumulative queueing delay observed at node id's
// NIC ports — a contention indicator used by reports.
func (n *Network) PortWaited(id int) uint64 {
	return n.in[id].Waited() + n.out[id].Waited()
}

// PortBusy returns the cumulative occupancy of node id's NIC ports.
func (n *Network) PortBusy(id int) uint64 {
	return n.in[id].Busy() + n.out[id].Busy()
}

// PortBacklog returns how many cycles past now node id's NIC ports are
// already committed — the queue depth a stall report wants to see.
func (n *Network) PortBacklog(id int, now sim.Time) (in, out uint64) {
	if t := n.in[id].FreeAt(); t > now {
		in = t - now
	}
	if t := n.out[id].FreeAt(); t > now {
		out = t - now
	}
	return in, out
}

// FaultStats returns the number of injected reorder holds, latency
// jitters, duplicates, and drops.
func (n *Network) FaultStats() (reordered, delayed, duped, dropped uint64) {
	return n.injReordered, n.injDelayed, n.injDuped, n.injDropped
}

// FaultSummary renders the injector's activity, or "" when no injector is
// attached.
func (n *Network) FaultSummary() string {
	if n.inj == nil {
		return ""
	}
	decided, faulted := n.inj.Stats()
	return fmt.Sprintf("faults: seed %d, %d/%d messages faulted (%d reordered, %d delayed, %d duplicated, %d dropped)",
		n.inj.Seed(), faulted, decided, n.injReordered, n.injDelayed, n.injDuped, n.injDropped)
}
