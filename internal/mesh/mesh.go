// Package mesh models the interconnect of the simulated multiprocessor: a
// 2-D mesh with dimension-ordered (XY) routing, distance-dependent
// latency, and network contention modeled at the sending and receiving
// nodes of each message — but not at intermediate switches — exactly as in
// §3 of the paper.
//
// A message from a node at distance h carrying p payload bytes is
// delivered h*(switch+wire) + p/bandwidth cycles after it leaves the
// sender's network interface. Control messages (p = 0) cost only the hop
// latency, matching the paper's worked example: a 10-hop request costs
// (2+1)*10 = 30 cycles and the 128-byte data reply (2+1)*10 + 128/2 = 94.
package mesh

import (
	"fmt"

	"lazyrc/internal/config"
	"lazyrc/internal/sim"
)

// Network is the mesh interconnect. Deliver handlers are registered per
// node; Send routes a message and schedules the destination handler.
type Network struct {
	eng    *sim.Engine
	w, h   int
	hopLat uint64 // switch + wire, per hop
	bw     int    // bytes per cycle

	in  []*sim.Resource // per-node receive ports
	out []*sim.Resource // per-node send ports

	handlers []func(Msg)

	sent      uint64
	bytesSent uint64
	byKind    map[int]uint64

	// LocalLoopback controls whether a node sending to itself still
	// pays NIC and hop costs. Hardware handles node-local protocol
	// operations without touching the network; keep false.
	LocalLoopback bool

	// Trace, when non-nil, observes every message at send time —
	// debugging and the protocolwalk example.
	Trace func(Msg)
}

// Msg is one network message. Protocol packages define the meaning of
// Kind and the payload fields; the mesh only uses Src, Dst, and Size.
type Msg struct {
	Src, Dst int
	Kind     int
	Size     int // payload bytes (0 for control messages)

	// Addr is the coherence block or synchronization object the message
	// concerns.
	Addr uint64
	// Arg and Aux carry message-kind-specific scalars (directory state,
	// word mask, object id, ...).
	Arg uint64
	Aux uint64
}

// New builds the mesh for the given configuration.
func New(eng *sim.Engine, cfg config.Config) *Network {
	w, h := config.MeshDims(cfg.Procs)
	n := &Network{
		eng:      eng,
		w:        w,
		h:        h,
		hopLat:   cfg.SwitchLat + cfg.WireLat,
		bw:       cfg.NetBW,
		in:       make([]*sim.Resource, cfg.Procs),
		out:      make([]*sim.Resource, cfg.Procs),
		handlers: make([]func(Msg), cfg.Procs),
	}
	n.byKind = make(map[int]uint64)
	for i := range n.in {
		n.in[i] = sim.NewResource(fmt.Sprintf("nic-in%d", i))
		n.out[i] = sim.NewResource(fmt.Sprintf("nic-out%d", i))
	}
	return n
}

// Handle registers the delivery handler for node id. Exactly one handler
// per node; registering twice panics.
func (n *Network) Handle(id int, fn func(Msg)) {
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("mesh: node %d handler registered twice", id))
	}
	n.handlers[id] = fn
}

// Hops returns the XY-routing distance between two nodes.
func (n *Network) Hops(a, b int) uint64 {
	ax, ay := a%n.w, a/n.w
	bx, by := b%n.w, b/n.w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return uint64(dx + dy)
}

// Dims returns the mesh width and height.
func (n *Network) Dims() (w, h int) { return n.w, n.h }

// TransferCycles returns size/bandwidth rounded up — the serialization
// time of a payload on a link, bus, or memory port at this network's
// bandwidth.
func (n *Network) TransferCycles(size int) uint64 {
	if size <= 0 {
		return 0
	}
	return uint64((size + n.bw - 1) / n.bw)
}

// Send routes m from m.Src to m.Dst: it acquires the sender's output
// port, applies hop latency and payload streaming time, acquires the
// receiver's input port, and schedules the destination's handler at the
// delivery time. Node-local messages invoke the handler immediately
// (hardware keeps local protocol transitions off the network) unless
// LocalLoopback is set.
func (n *Network) Send(m Msg) {
	if n.handlers[m.Dst] == nil {
		panic(fmt.Sprintf("mesh: no handler on node %d", m.Dst))
	}
	n.sent++
	n.bytesSent += uint64(m.Size)
	n.byKind[m.Kind]++
	if n.Trace != nil {
		n.Trace(m)
	}
	if m.Src == m.Dst && !n.LocalLoopback {
		n.eng.At(n.eng.Now(), func() { n.handlers[m.Dst](m) })
		return
	}
	ser := n.TransferCycles(m.Size)
	occ := ser
	if occ == 0 {
		occ = 1 // control messages still occupy the port for one cycle
	}
	sendStart, _ := n.out[m.Src].Acquire(n.eng.Now(), occ)
	rawArrival := sendStart + n.hopLat*n.Hops(m.Src, m.Dst) + ser
	deliver := n.in[m.Dst].AcquireWindow(rawArrival, occ)
	n.eng.At(deliver, func() { n.handlers[m.Dst](m) })
}

// Stats returns the total messages and payload bytes sent.
func (n *Network) Stats() (msgs, bytes uint64) { return n.sent, n.bytesSent }

// KindCount returns how many messages of the given protocol kind were
// sent — the per-transaction-type traffic breakdown behind the paper's
// message-reduction argument.
func (n *Network) KindCount(kind int) uint64 { return n.byKind[kind] }

// PortWaited returns the cumulative queueing delay observed at node id's
// NIC ports — a contention indicator used by reports.
func (n *Network) PortWaited(id int) uint64 {
	return n.in[id].Waited() + n.out[id].Waited()
}

// PortBusy returns the cumulative occupancy of node id's NIC ports.
func (n *Network) PortBusy(id int) uint64 {
	return n.in[id].Busy() + n.out[id].Busy()
}
