package mesh

import (
	"fmt"
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/faults"
	"lazyrc/internal/sim"
)

// The protocols are entitled to assume that the mesh never reorders two
// messages between the same (src, dst) pair — the FIFO guarantee of
// dimension-ordered routing. These property tests hammer that guarantee
// under everything that perturbs message timing: fault-injected jitter,
// duplication, and reorder holds, and model-checker exploration of
// delivery-delay choices combined with engine event-tie choices.

// delivery is one observed handler invocation.
type delivery struct {
	src, seq int
	tid      uint64
}

// fifoWorkload drives a burst-heavy traffic pattern over every ordered
// node pair — mixed control/data sizes, same-cycle bursts, and staggered
// sends — and returns the per-destination delivery logs after the run.
func fifoWorkload(eng *sim.Engine, n *Network, procs int) [][]delivery {
	got := make([][]delivery, procs)
	for id := 0; id < procs; id++ {
		id := id
		n.Handle(id, func(m Msg) {
			got[id] = append(got[id], delivery{src: m.Src, seq: int(m.Arg), tid: m.TID})
		})
	}
	sizes := []int{0, 0, 32, 128}
	for src := 0; src < procs; src++ {
		for dst := 0; dst < procs; dst++ {
			if src == dst {
				continue
			}
			src, dst := src, dst
			seq := 0
			for burst := 0; burst < 4; burst++ {
				at := sim.Time(burst * 17)
				eng.At(at, func() {
					for i := 0; i < 3; i++ {
						n.Send(Msg{
							Src: src, Dst: dst,
							Size: sizes[(seq+i)%len(sizes)],
							Arg:  uint64(seq + i),
						})
					}
					seq += 3
				})
			}
		}
	}
	return got
}

// checkPairFIFO asserts that, per (src, dst) pair, first deliveries (the
// injector may duplicate; receivers deduplicate on TID) arrive in send
// order with none missing.
func checkPairFIFO(t *testing.T, got [][]delivery, procs int, label string) {
	t.Helper()
	for dst := range got {
		next := make([]int, procs) // expected seq per source
		seen := map[uint64]bool{}
		for _, d := range got[dst] {
			if d.tid != 0 && seen[d.tid] {
				continue // injected duplicate
			}
			seen[d.tid] = true
			if d.seq != next[d.src] {
				t.Fatalf("%s: dst %d got seq %d from src %d, want %d — per-(src,dst) FIFO violated",
					label, dst, d.seq, d.src, next[d.src])
			}
			next[d.src]++
		}
		for src, n := range next {
			if src != dst && n != 12 {
				t.Errorf("%s: dst %d delivered %d/12 messages from src %d", label, dst, n, src)
			}
		}
	}
}

// TestInjectedFaultsPreserveFIFO: delay jitter, duplication, and reorder
// holds, across many seeds, never deliver two same-pair messages out of
// send order.
func TestInjectedFaultsPreserveFIFO(t *testing.T) {
	const procs = 4
	plan, err := faults.ParsePlan("delay=0.5:1:40,dup=0.3:24,reorder=0.5:32")
	if err != nil {
		t.Fatal(err)
	}
	var reordered, delayed, duped uint64
	for seed := uint64(1); seed <= 25; seed++ {
		eng := sim.NewEngine()
		n := New(eng, config.Default(procs))
		got := fifoWorkload(eng, n, procs)
		if err := n.SetInjector(faults.NewInjector(seed, plan)); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		checkPairFIFO(t, got, procs, fmt.Sprintf("seed %d", seed))
		r, d, u, _ := n.FaultStats()
		reordered += r
		delayed += d
		duped += u
	}
	// The property must not pass vacuously: the plan has to have fired.
	if reordered == 0 || delayed == 0 || duped == 0 {
		t.Fatalf("injector never exercised all fault classes: %d reordered, %d delayed, %d duplicated",
			reordered, delayed, duped)
	}
}

// lcgChooser answers choice points from a seeded linear congruential
// stream — a stand-in for the model checker's schedule enumeration that
// visits a different mix of delay picks and event-tie orders per seed.
type lcgChooser struct{ state uint64 }

func (c *lcgChooser) Choose(n int) int {
	c.state = c.state*6364136223846793005 + 1442695040888963407
	return int((c.state >> 33) % uint64(n))
}

// TestExplorerPreservesFIFO: arbitrary delivery-delay picks combined with
// arbitrary engine tie-break orders never violate per-(src,dst) FIFO.
// This pins the strict lastEntry floor in the explorer send path: two held
// messages on one channel must never share a network-entry timestamp, or
// the engine tie chooser could flip them.
func TestExplorerPreservesFIFO(t *testing.T) {
	const procs = 4
	for seed := uint64(1); seed <= 25; seed++ {
		eng := sim.NewEngine()
		n := New(eng, config.Default(procs))
		got := fifoWorkload(eng, n, procs)
		ch := &lcgChooser{state: seed}
		if err := n.SetExplorer(ch, []uint64{0, 1, 3, 9}); err != nil {
			t.Fatal(err)
		}
		eng.SetChooser(ch)
		eng.Run()
		checkPairFIFO(t, got, procs, fmt.Sprintf("chooser seed %d", seed))
	}
}

// TestExplorerInFlightDigestBalances: after every message has drained the
// in-flight multiset digest must return to the empty-set value, or state
// hashes of quiescent machines would depend on traffic history.
func TestExplorerInFlightDigestBalances(t *testing.T) {
	const procs = 4
	empty := func() uint64 {
		eng := sim.NewEngine()
		n := New(eng, config.Default(procs))
		ch := &lcgChooser{state: 7}
		if err := n.SetExplorer(ch, []uint64{0, 2}); err != nil {
			t.Fatal(err)
		}
		_ = eng
		return n.InFlightDigest()
	}()
	eng := sim.NewEngine()
	n := New(eng, config.Default(procs))
	fifoWorkload(eng, n, procs)
	ch := &lcgChooser{state: 7}
	if err := n.SetExplorer(ch, []uint64{0, 2}); err != nil {
		t.Fatal(err)
	}
	eng.SetChooser(ch)
	eng.Run()
	if got := n.InFlightDigest(); got != empty {
		t.Fatalf("drained network digest %#x, want empty-set digest %#x", got, empty)
	}
}
