package mesh

import (
	"fmt"

	"lazyrc/internal/telemetry"
)

// telemetrySink holds the mesh's instruments: one send→deliver latency
// histogram per message kind, created lazily so only kinds actually used
// appear in the export. A nil sink (telemetry disabled) costs the send
// path a single nil check.
type telemetrySink struct {
	reg      *telemetry.Registry
	kindName func(int) string
	lat      []*telemetry.Histogram // indexed by message kind

	// Reliable-transport instruments, created lazily on the first
	// recovered loss — a run that never loses a message exports neither.
	retxDepth *telemetry.Histogram // backoff depth at delivery
	retxLat   *telemetry.Histogram // first-send -> delivery latency
}

// EnableTelemetry attaches per-kind latency histograms to the network.
// kindName maps a protocol message kind to its mnemonic for the
// histogram name ("net.lat.<mnemonic>"); pass nil to fall back to
// numeric names. A nil registry leaves telemetry disabled.
func (n *Network) EnableTelemetry(reg *telemetry.Registry, kindName func(int) string) {
	if reg == nil {
		return
	}
	n.tel = &telemetrySink{reg: reg, kindName: kindName}
}

// observe records one delivered message's wire latency in cycles.
func (t *telemetrySink) observe(kind int, cycles uint64) {
	if t == nil {
		return
	}
	for kind >= len(t.lat) {
		t.lat = append(t.lat, nil)
	}
	if t.lat[kind] == nil {
		name := fmt.Sprintf("net.lat.kind%d", kind)
		if t.kindName != nil {
			name = "net.lat." + t.kindName(kind)
		}
		t.lat[kind] = t.reg.Histogram(name)
	}
	t.lat[kind].Observe(cycles)
}

// observeRetx records one recovered message's backoff depth and its
// first-send → final-delivery latency ("how long did the loss cost").
func (t *telemetrySink) observeRetx(depth, lat uint64) {
	if t == nil {
		return
	}
	if t.retxDepth == nil {
		t.retxDepth = t.reg.Histogram("net.retx.depth")
		t.retxLat = t.reg.Histogram("net.retx.lat")
	}
	t.retxDepth.Observe(depth)
	t.retxLat.Observe(lat)
}

// PortBusyInOut returns the cumulative occupancy of node id's receive and
// send NIC ports separately — the telemetry sampler splits directions so
// the link-utilization heatmap can show asymmetric traffic.
func (n *Network) PortBusyInOut(id int) (in, out uint64) {
	return n.in[id].Busy(), n.out[id].Busy()
}
