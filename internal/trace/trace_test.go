package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

func runTraced(t *testing.T, opts ...Option) (*Tracer, *bytes.Buffer) {
	t.Helper()
	m, err := machine.New(config.Default(4), "lrc")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := New(&buf, opts...)
	tr.Attach(m)
	a := m.AllocF64(64)
	b := m.NewBarrier(4)
	m.Run(func(p *machine.Proc) {
		p.WriteF64(a.At(p.ID()*16), 1.0)
		p.Barrier(b)
		p.ReadF64(a.At(((p.ID() + 1) % 4) * 16))
		p.WriteF64(a.At(p.ID()*16), 2.0)
		p.Barrier(b) // second acquire applies queued write notices
		p.ReadF64(a.At(((p.ID() + 1) % 4) * 16))
	})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return tr, &buf
}

func TestTraceRecordsValidJSONL(t *testing.T) {
	tr, buf := runTraced(t)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if uint64(len(lines)) != tr.Events() {
		t.Fatalf("lines = %d, events = %d", len(lines), tr.Events())
	}
	if len(lines) < 8 {
		t.Fatalf("too few events traced: %d", len(lines))
	}
	validKinds := map[string]bool{
		"msg": true, "acquire": true, "release": true,
		"wn-send": true, "wn-apply": true, "wn-post": true, "inv-acquire": true,
	}
	var sawRead, sawBarrier bool
	sawKind := map[string]bool{}
	for _, l := range lines {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("bad JSON line %q: %v", l, err)
		}
		if !validKinds[e.Kind] {
			t.Fatalf("unexpected kind %q", e.Kind)
		}
		sawKind[e.Kind] = true
		if e.Msg == "ReadReq" {
			sawRead = true
		}
		if e.Msg == "BarArrive" {
			sawBarrier = true
		}
	}
	if !sawRead || !sawBarrier {
		t.Fatal("expected both coherence and sync traffic in the trace")
	}
	// The barrier workload synchronizes and shares written lines under
	// LRC, so the sync-level event kinds must all appear.
	for _, k := range []string{"acquire", "release", "wn-send", "wn-apply", "inv-acquire"} {
		if !sawKind[k] {
			t.Fatalf("missing sync-level event kind %q in trace", k)
		}
	}
}

func TestTraceBlockFilter(t *testing.T) {
	_, buf := runTraced(t, WithBlockFilter(0))
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatal(err)
		}
		if e.Block != 0 {
			t.Fatalf("filter leaked block %d", e.Block)
		}
	}
}

// TestTraceBlockFilterKeepsSyncEvents is the regression test for the
// filter dropping acquire/release: sync events carry an Obj, not a
// Block, so a nonzero block filter used to discard every one of them —
// exactly the events that anchor a block's story to the happens-before
// order. The filter must keep all sync events and discard only
// block-scoped events for other blocks.
func TestTraceBlockFilterKeepsSyncEvents(t *testing.T) {
	_, buf := runTraced(t, WithBlockFilter(1))
	var sawAcquire, sawRelease bool
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case "acquire":
			sawAcquire = true
		case "release":
			sawRelease = true
		default:
			if e.Block != 1 {
				t.Fatalf("filter leaked %s event for block %d", e.Kind, e.Block)
			}
		}
	}
	if !sawAcquire || !sawRelease {
		t.Fatalf("block filter dropped sync events: acquire=%v release=%v",
			sawAcquire, sawRelease)
	}
}

func TestTraceLimitCountsDropped(t *testing.T) {
	tr, _ := runTraced(t, WithLimit(5))
	if !tr.Truncated() {
		t.Fatal("limited trace not reported as truncated")
	}
	if tr.Dropped() == 0 {
		t.Fatal("dropped counter stayed zero past the limit")
	}
	full, _ := runTraced(t)
	if full.Truncated() || full.Dropped() != 0 {
		t.Fatalf("unlimited trace reports truncation: dropped=%d", full.Dropped())
	}
	if got := tr.Events() + tr.Dropped(); got != full.Events() {
		t.Fatalf("recorded+dropped = %d, want the full trace's %d events",
			got, full.Events())
	}
}

func TestTraceLimit(t *testing.T) {
	tr, buf := runTraced(t, WithLimit(5))
	if tr.Events() != 5 {
		t.Fatalf("events = %d, want 5", tr.Events())
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n != 5 {
		t.Fatalf("lines = %d, want 5", n)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errBoom }

var errBoom = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "boom" }

func TestTraceWriteErrorSticks(t *testing.T) {
	tr := New(failWriter{})
	tr.record(Event{Kind: "msg"})
	if tr.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	tr.record(Event{Kind: "msg"}) // must not panic or reset the error
	if tr.Err() == nil {
		t.Fatal("error cleared")
	}
}
