// Package trace records simulated protocol activity as JSON-lines
// events, for debugging protocol behaviour and for teaching tools like
// examples/protocolwalk. Tracing attaches to a machine's network tap and
// is entirely passive: it never alters timing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"lazyrc/internal/machine"
	"lazyrc/internal/mesh"
	"lazyrc/internal/protocol"
)

// Event is one traced occurrence.
type Event struct {
	// Cycle is the simulated time of the event.
	Cycle uint64 `json:"cycle"`
	// Kind is the event type: "msg" for raw network messages, or a
	// protocol-level kind — "acquire", "release" (sync operations),
	// "wn-send" (home dispatches a write notice), "wn-apply" (a node
	// queues an arriving notice), "wn-post" (lazier protocol posts a
	// deferred notice), "inv-acquire" (a queued line invalidated at an
	// acquire).
	Kind string `json:"kind"`
	// Src and Dst are node ids (Dst is -1 for protocol-level events with
	// no peer).
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Msg is the message kind mnemonic ("ReadReq", "Notice", ...); empty
	// for protocol-level events.
	Msg string `json:"msg,omitempty"`
	// Block is the coherence block, if the event concerns one.
	Block uint64 `json:"block"`
	// Obj is the synchronization object id (acquire/release events).
	Obj uint64 `json:"obj,omitempty"`
	// Bytes is the payload size.
	Bytes int `json:"bytes,omitempty"`
}

// Tracer writes events to an io.Writer as JSON lines.
type Tracer struct {
	w       io.Writer
	filter  func(Event) bool
	n       uint64
	limit   uint64
	dropped uint64
	err     error
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithBlockFilter keeps only events touching the given coherence block.
// Synchronization events (acquire, release) identify a sync object, not a
// block — their Block field is always zero — so they pass the filter
// unconditionally: a per-block trace without the acquires and releases
// that order its transitions would be unreadable.
func WithBlockFilter(block uint64) Option {
	return func(t *Tracer) {
		t.filter = func(e Event) bool {
			if e.Kind == "acquire" || e.Kind == "release" {
				return true
			}
			return e.Block == block
		}
	}
}

// WithLimit stops recording after n events (0 = unlimited).
func WithLimit(n uint64) Option {
	return func(t *Tracer) { t.limit = n }
}

// New returns a tracer writing to w.
func New(w io.Writer, opts ...Option) *Tracer {
	t := &Tracer{w: w}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Attach hooks the tracer to a machine's network tap and protocol-event
// observer, so traces interleave raw messages with the sync-level
// operations (acquires, releases, the write-notice lifecycle) that give
// them meaning. It must be called before Machine.Run, and replaces any
// previous taps.
func (t *Tracer) Attach(m *machine.Machine) {
	m.Net.Trace = func(msg mesh.Msg) {
		t.record(Event{
			Cycle: m.Eng.Now(),
			Kind:  "msg",
			Src:   msg.Src,
			Dst:   msg.Dst,
			Msg:   protocol.MsgKind(msg.Kind).String(),
			Block: msg.Addr,
			Bytes: msg.Size,
		})
	}
	m.Env.Observe = func(e protocol.ProtEvent) {
		t.record(Event{
			Cycle: m.Eng.Now(),
			Kind:  e.Kind,
			Src:   e.Node,
			Dst:   e.Target,
			Block: e.Block,
			Obj:   e.Obj,
		})
	}
}

func (t *Tracer) record(e Event) {
	if t.err != nil {
		return
	}
	if t.filter != nil && !t.filter(e) {
		return
	}
	if t.limit > 0 && t.n >= t.limit {
		t.dropped++
		return
	}
	t.n++
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = fmt.Errorf("trace: %w", err)
	}
}

// Events returns the number of events recorded.
func (t *Tracer) Events() uint64 { return t.n }

// Dropped returns the number of events discarded after the limit was
// reached — nonzero means the trace is truncated, not complete.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Truncated reports whether the event limit cut the trace short.
func (t *Tracer) Truncated() bool { return t.dropped > 0 }

// Err returns the first write or encoding error, if any.
func (t *Tracer) Err() error { return t.err }
