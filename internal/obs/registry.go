package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics registry: named families of counters,
// gauges, and histograms (optionally labeled, optionally func-backed)
// snapshotted deterministically for exposition and the ops dashboard.
// It implements just enough of the Prometheus data model to be scraped
// by a real Prometheus — no external dependency, no global state.

// Family kinds, matching the exposition TYPE line.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Registry holds metric families. All registration methods panic on an
// invalid or duplicate name — metric names are program constants, so a
// bad one is a bug, not an input error.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bkts   []float64 // histogram upper bounds (exclusive of +Inf)

	fn func() float64 // func-backed families have exactly one sample

	mu       sync.Mutex
	children map[string]metric
	order    []string // child keys in first-use order; sorted at snapshot
}

type metric interface{ sample() Sample }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, kind string, labels []string, bkts []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bkts:   bkts, fn: fn,
		children: make(map[string]metric),
	}
	r.fams[name] = f
	return f
}

// child returns (creating on first use) the family's metric for one
// label-value tuple.
func (f *family) child(lvs []string) metric {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := labelKey(lvs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m metric
	switch f.kind {
	case KindCounter:
		m = &Counter{labels: zip(f.labels, lvs)}
	case KindGauge:
		m = &Gauge{labels: zip(f.labels, lvs)}
	case KindHistogram:
		m = newHistogram(f.bkts, zip(f.labels, lvs))
	}
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// labelKey joins label values unambiguously (values may contain commas).
func labelKey(lvs []string) string {
	out := make([]byte, 0, 32)
	for _, v := range lvs {
		out = append(out, byte(len(v)>>8), byte(len(v)))
		out = append(out, v...)
	}
	return string(out)
}

func zip(names, values []string) []Label {
	out := make([]Label, len(names))
	for i := range names {
		out[i] = Label{Name: names[i], Value: values[i]}
	}
	return out
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil, nil).child(nil).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is read at snapshot time —
// the bridge from existing Stats() accessors (pool, bus, store) into
// the exposition without duplicated bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, nil, nil, fn)
}

// CounterFunc registers a counter read at snapshot time. The callback
// must be monotonically non-decreasing (it mirrors an existing
// cumulative counter, e.g. the bus's published total).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, nil, nil, fn)
}

// Histogram registers an unlabeled wall-clock histogram with the given
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, normBuckets(buckets), nil).child(nil).(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, normBuckets(buckets), nil)}
}

func normBuckets(b []float64) []float64 {
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			panic("obs: duplicate histogram bucket bound")
		}
	}
	if len(out) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	return out
}

// DefDurationBuckets is the default latency bucket ladder, in seconds:
// sub-millisecond health probes through multi-second report renders.
var DefDurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// --- metric implementations -----------------------------------------

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct {
	labels []Label
	bits   atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) sample() Sample { return Sample{Labels: c.labels, Value: c.Value()} }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label-value tuple, creating it at
// zero on first use (so families appear in the exposition before the
// first event — a zero "executed" counter is a statement, not absence).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by v (negative deltas allowed).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sample() Sample { return Sample{Labels: g.labels, Value: g.Value()} }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).(*Gauge)
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Histogram observes a distribution into fixed buckets. Exposed with
// cumulative bucket counts, a sum, and a count, per the Prometheus
// histogram convention.
type Histogram struct {
	labels []Label
	upper  []float64

	mu     sync.Mutex
	counts []uint64 // per-bucket (non-cumulative), +Inf at the end
	sum    float64
	count  uint64
}

func newHistogram(upper []float64, labels []Label) *Histogram {
	return &Histogram{labels: labels, upper: upper, counts: make([]uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v (le semantics)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) sample() Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Sample{Labels: h.labels, Sum: h.sum, Count: h.count}
	s.Buckets = make([]Bucket, 0, len(h.upper)+1)
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i]
		s.Buckets = append(s.Buckets, Bucket{LE: ub, Count: cum})
	}
	cum += h.counts[len(h.upper)]
	s.Buckets = append(s.Buckets, Bucket{LE: math.Inf(1), Count: cum})
	return s
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

// --- snapshot ---------------------------------------------------------

// Label is one name=value pair on a sample.
type Label struct{ Name, Value string }

// Bucket is one cumulative histogram bucket: observations <= LE.
type Bucket struct {
	LE    float64
	Count uint64
}

// Sample is one exposition sample. Counters and gauges use Value;
// histograms use Buckets/Sum/Count.
type Sample struct {
	Labels  []Label
	Value   float64
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Family is one metric family's snapshot.
type Family struct {
	Name    string
	Help    string
	Kind    string
	Samples []Sample
}

// Snapshot captures every family, sorted by name, with samples sorted
// by label values — the deterministic order both the exposition writer
// and the ops dashboard render from. Func-backed families are evaluated
// here, on the scraper's clock.
func (r *Registry) Snapshot() []Family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		fam := Family{Name: f.name, Help: f.help, Kind: f.kind}
		if f.fn != nil {
			fam.Samples = []Sample{{Value: f.fn()}}
			out = append(out, fam)
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]metric, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		sort.Sort(byKey{keys, children})
		for _, m := range children {
			fam.Samples = append(fam.Samples, m.sample())
		}
		out = append(out, fam)
	}
	return out
}

// byKey sorts children by their label key, keeping the two slices
// aligned.
type byKey struct {
	keys []string
	ms   []metric
}

func (b byKey) Len() int           { return len(b.keys) }
func (b byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b byKey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.ms[i], b.ms[j] = b.ms[j], b.ms[i]
}

// Quantile estimates the q-quantile (0..1) of a cumulative bucket
// snapshot by linear interpolation within the containing bucket — the
// same estimate PromQL's histogram_quantile computes. Returns NaN with
// no observations.
func Quantile(buckets []Bucket, q float64) float64 {
	if len(buckets) == 0 || buckets[len(buckets)-1].Count == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.Count) >= rank {
			lo, loCount := 0.0, uint64(0)
			if i > 0 {
				lo, loCount = buckets[i-1].LE, buckets[i-1].Count
			}
			if math.IsInf(b.LE, 1) {
				return lo // open-ended bucket: report its lower bound
			}
			inBucket := float64(b.Count - loCount)
			if inBucket == 0 {
				return b.LE
			}
			return lo + (b.LE-lo)*((rank-float64(loCount))/inBucket)
		}
	}
	return buckets[len(buckets)-1].LE
}
