package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small, strict parser for the Prometheus text
// exposition format — the validation half of the contract: everything
// WriteExposition emits must round-trip through ParseExposition, and
// the e2e tests parse the live /metrics endpoint line by line with it.
// It checks structure (name and label syntax, quoting, escapes), family
// discipline (TYPE before samples, no interleaving), and histogram
// invariants (cumulative non-decreasing buckets, a +Inf bucket equal to
// _count).

// ParsedSample is one parsed sample line.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one family as read back from an exposition.
type ParsedFamily struct {
	Name    string
	Kind    string
	Samples []ParsedSample
}

// Label returns s's value for a label name ("" when absent).
func (s ParsedSample) Label(name string) string { return s.Labels[name] }

// ParseExposition reads a text exposition, returning its families keyed
// by name. Any structural violation is an error carrying the offending
// line number.
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		fam := fams[familyOf(s.Name, fams)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s precedes its TYPE line", ln, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Kind == KindHistogram {
			if err := checkHistogram(fam); err != nil {
				return nil, fmt.Errorf("family %s: %w", fam.Name, err)
			}
		}
	}
	return fams, nil
}

// familyOf maps a sample name to its family name, folding histogram
// suffixes onto the base family when one is declared.
func familyOf(name string, fams map[string]*ParsedFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := fams[base]; ok && f.Kind == KindHistogram {
				return base
			}
		}
	}
	return name
}

func parseComment(line string, fams map[string]*ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment: legal, ignored
	}
	name := fields[2]
	if !validName(name) {
		return fmt.Errorf("invalid metric name %q in %s line", name, fields[1])
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line for %s has no type", name)
		}
		kind := fields[3]
		switch kind {
		case KindCounter, KindGauge, KindHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", kind, name)
		}
		if f, dup := fams[name]; dup && len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s repeated after samples", name)
		}
		fams[name] = &ParsedFamily{Name: name, Kind: kind}
	}
	return nil
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line

	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]

	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp may follow the value; we accept and ignore it.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a {name="value",...} block starting at s[0]=='{',
// returning the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		name := s[i:j]
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, fmt.Errorf("label %s: value not quoted", name)
		}
		val, end, err := parseQuoted(s, j+1)
		if err != nil {
			return 0, fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("label %s repeated", name)
		}
		out[name] = val
		i = end
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseQuoted parses a double-quoted string starting at s[start]=='"',
// honoring \\, \", and \n escapes; returns the value and the index just
// past the closing quote.
func parseQuoted(s string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(s) {
		switch c := s[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}

// checkHistogram verifies the histogram invariants for every label
// tuple in the family: buckets cumulative and non-decreasing, a +Inf
// bucket present, and _count equal to the +Inf bucket.
func checkHistogram(fam *ParsedFamily) error {
	type series struct {
		buckets []Bucket
		count   float64
		hasCnt  bool
	}
	byTuple := map[string]*series{}
	get := func(s ParsedSample) *series {
		names := make([]string, 0, len(s.Labels))
		for n := range s.Labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		var key strings.Builder
		for _, n := range names {
			fmt.Fprintf(&key, "%s=%q;", n, s.Labels[n])
		}
		sr := byTuple[key.String()]
		if sr == nil {
			sr = &series{}
			byTuple[key.String()] = sr
		}
		return sr
	}
	for _, s := range fam.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parseValue(s.Label("le"))
			if err != nil {
				return fmt.Errorf("bucket with bad le %q", s.Label("le"))
			}
			sr := get(s)
			sr.buckets = append(sr.buckets, Bucket{LE: le, Count: uint64(s.Value)})
		case strings.HasSuffix(s.Name, "_count"):
			sr := get(s)
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for tuple, sr := range byTuple {
		if len(sr.buckets) == 0 {
			return fmt.Errorf("series %s has no buckets", tuple)
		}
		last := sr.buckets[len(sr.buckets)-1]
		if !math.IsInf(last.LE, 1) {
			return fmt.Errorf("series %s lacks a +Inf bucket", tuple)
		}
		for i := 1; i < len(sr.buckets); i++ {
			if sr.buckets[i].LE <= sr.buckets[i-1].LE {
				return fmt.Errorf("series %s buckets not ascending", tuple)
			}
			if sr.buckets[i].Count < sr.buckets[i-1].Count {
				return fmt.Errorf("series %s buckets not cumulative", tuple)
			}
		}
		if !sr.hasCnt {
			return fmt.Errorf("series %s lacks _count", tuple)
		}
		if float64(last.Count) != sr.count {
			return fmt.Errorf("series %s: +Inf bucket %d != count %g", tuple, last.Count, sr.count)
		}
	}
	return nil
}
