package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// This file instruments an HTTP surface: every request gets an ID
// (accepted from X-Request-Id or generated), per-route metrics
// (count by status class, wall-clock latency histogram, in-flight
// gauge, response bytes), and one structured log line. The route label
// is the mux pattern, not the raw path, so metric cardinality is
// bounded by the API surface rather than by client-chosen IDs.

// HTTPMetrics holds the per-route HTTP metric families.
type HTTPMetrics struct {
	Requests  *CounterVec   // route, code (status class: "2xx".."5xx")
	Duration  *HistogramVec // route
	InFlight  *GaugeVec     // route
	RespBytes *CounterVec   // route
}

// NewHTTPMetrics registers the HTTP families under the given namespace
// prefix (e.g. "lrcsimd").
func NewHTTPMetrics(r *Registry, ns string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(ns+"_http_requests_total",
			"HTTP requests served, by route pattern and status class.",
			"route", "code"),
		Duration: r.HistogramVec(ns+"_http_request_duration_seconds",
			"Wall-clock request latency by route pattern.",
			DefDurationBuckets, "route"),
		InFlight: r.GaugeVec(ns+"_http_in_flight_requests",
			"Requests currently being served, by route pattern.",
			"route"),
		RespBytes: r.CounterVec(ns+"_http_response_bytes_total",
			"Response body bytes written, by route pattern.",
			"route"),
	}
}

// Middleware wraps next with request-ID handling, metrics, and request
// logging. route maps a request to its bounded label (typically the
// mux pattern via ServeMux.Handler); log may be nil.
func (m *HTTPMetrics) Middleware(next http.Handler, route func(*http.Request) string, log *slog.Logger) http.Handler {
	if log == nil {
		log = NopLogger()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := SanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		rt := route(r)
		inflight := m.InFlight.With(rt)
		inflight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		defer func() {
			dur := time.Since(start)
			inflight.Dec()
			m.Requests.With(rt, statusClass(rec.status)).Inc()
			m.Duration.With(rt).Observe(dur.Seconds())
			m.RespBytes.With(rt).Add(float64(rec.bytes))
			log.Info("http",
				"method", r.Method,
				"route", rt,
				"path", r.URL.Path,
				"status", rec.status,
				"dur_ms", dur.Milliseconds(),
				"bytes", rec.bytes,
				"request_id", id,
			)
		}()
		next.ServeHTTP(rec, r)
	})
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusRecorder captures the status code and body size. It implements
// http.Flusher unconditionally — the SSE handlers type-assert for it —
// delegating when the underlying writer supports it.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
