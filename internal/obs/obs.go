// Package obs is the service stack's operational observability plane:
// a dependency-free Prometheus-text-format metrics registry, HTTP
// middleware that stamps every request with an ID and folds it into
// per-route metrics and structured logs, and build-info exposition.
//
// obs is deliberately separate from internal/telemetry. Telemetry lives
// on the simulated clock and feeds result digests — it must stay
// passive and deterministic. obs lives on the wall clock and describes
// the daemon serving the results (request rates, pool occupancy, store
// shape); nothing here ever touches a simulation, so the byte-identical
// guarantees of the result plane are structurally out of its reach.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

// RequestIDHeader is the header a request ID travels in, both directions:
// accepted from the client when present, echoed on every response.
const RequestIDHeader = "X-Request-Id"

type ridKey struct{}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the context's request ID, or "" when none is
// attached (a submission that did not arrive over HTTP).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// requests flowing and is obvious in logs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID reduces a client-supplied ID to a safe form: the
// characters [A-Za-z0-9._-] capped at 64, or "" when nothing survives
// (the caller then generates one). Keeps header-splitting and
// log-injection bytes out of responses and log lines.
func SanitizeRequestID(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && len(out) < 64; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		}
	}
	return string(out)
}

// NopLogger returns a logger that discards everything — the default for
// services constructed without one (tests, embedded use).
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
