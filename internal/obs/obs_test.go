package obs

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionRoundTrip is the format contract: everything the writer
// emits — counters, labeled gauges with escapes, histograms — parses
// back through the strict parser with the same values.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	g := r.GaugeVec("test_depth", "Depth by lane.", "lane")
	g.With("a").Set(3)
	g.With(`we"ird\lane` + "\n").Set(-2.5)
	r.GaugeFunc("test_fn", "Func-backed.", func() float64 { return 7 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if f := fams["test_events_total"]; f == nil || f.Kind != KindCounter || f.Samples[0].Value != 42 {
		t.Fatalf("counter round-trip: %+v", f)
	}
	depth := fams["test_depth"]
	if depth == nil || len(depth.Samples) != 2 {
		t.Fatalf("gauge vec round-trip: %+v", depth)
	}
	found := false
	for _, s := range depth.Samples {
		if s.Label("lane") == `we"ird\lane`+"\n" && s.Value == -2.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label value lost:\n%s", text)
	}
	if f := fams["test_fn"]; f == nil || f.Samples[0].Value != 7 {
		t.Fatalf("func gauge round-trip: %+v", f)
	}

	hist := fams["test_latency_seconds"]
	if hist == nil || hist.Kind != KindHistogram {
		t.Fatalf("histogram family missing:\n%s", text)
	}
	// The parser already enforced cumulative buckets and +Inf==count;
	// verify the actual counts landed in the right buckets.
	wantBuckets := map[string]float64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
	for _, s := range hist.Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			if want, ok := wantBuckets[s.Label("le")]; ok && s.Value != want {
				t.Fatalf("bucket le=%s = %g, want %g", s.Label("le"), s.Value, want)
			}
		}
		if strings.HasSuffix(s.Name, "_sum") && math.Abs(s.Value-5.605) > 1e-9 {
			t.Fatalf("sum %g, want 5.605", s.Value)
		}
	}
}

// TestExpositionDeterministic: two scrapes of an unchanged registry are
// byte-identical (families and samples sorted, no map-order leakage).
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("a_total", "A.", "k")
	for _, k := range []string{"z", "m", "a", "q"} {
		v.With(k).Inc()
	}
	r.Gauge("b", "B.").Set(1)
	var one, two bytes.Buffer
	r.WriteExposition(&one)
	r.WriteExposition(&two)
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("scrapes differ:\n%s\n---\n%s", one.String(), two.String())
	}
	// Label-sorted: "a" before "m" before "q" before "z".
	text := one.String()
	if strings.Index(text, `k="a"`) > strings.Index(text, `k="z"`) {
		t.Fatalf("samples not sorted:\n%s", text)
	}
}

// TestParserRejectsViolations: the parser is strict enough to be a
// format oracle.
func TestParserRejectsViolations(t *testing.T) {
	bad := []string{
		"no_type_line 1",                         // sample before TYPE
		"# TYPE x counter\nx{l=unquoted} 1",      // unquoted label
		"# TYPE x counter\nx 1e",                 // bad value
		"# TYPE x wat\n",                         // unknown kind
		"# TYPE 0bad counter\n0bad 1",            // bad name
		"# TYPE x counter\nx{l=\"a\",l=\"b\"} 1", // duplicate label
		// Histogram without +Inf.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1",
		// Non-cumulative buckets.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1",
		// +Inf disagrees with count.
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 1",
	}
	for _, text := range bad {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("parser accepted:\n%s", text)
		}
	}
}

func TestCounterRefusesDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter went down: %g", c.Value())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "")
	r.Counter("x_total", "")
}

func TestQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4}, nil)
	// 100 observations uniform in (0,4]: 25 per unit.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	s := h.sample()
	if q := Quantile(s.Buckets, 0.5); math.Abs(q-2) > 0.1 {
		t.Fatalf("p50 = %g, want ~2", q)
	}
	if q := Quantile(s.Buckets, 0.95); math.Abs(q-3.8) > 0.2 {
		t.Fatalf("p95 = %g, want ~3.8", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

// TestMiddleware: request IDs are accepted/generated/echoed, metrics
// land under the route label, and the request log line carries the ID.
func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t")
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))

	mux := http.NewServeMux()
	var seenCtxID string
	mux.HandleFunc("GET /hello/{name}", func(w http.ResponseWriter, r *http.Request) {
		seenCtxID = RequestID(r.Context())
		fmt.Fprint(w, "hi")
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	})
	route := func(r *http.Request) string {
		_, pat := mux.Handler(r)
		if pat == "" {
			return "unrouted"
		}
		return pat
	}
	srv := httptest.NewServer(m.Middleware(mux, route, logger))
	defer srv.Close()

	// Client-supplied ID is sanitized, attached to the context, echoed.
	req, _ := http.NewRequest("GET", srv.URL+"/hello/world", nil)
	req.Header.Set(RequestIDHeader, "my-id-123 evil?x")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "my-id-123evilx" {
		t.Fatalf("echoed id %q", got)
	}
	if seenCtxID != "my-id-123evilx" {
		t.Fatalf("context id %q", seenCtxID)
	}

	// Absent ID: one is generated.
	resp, err = http.Get(srv.URL + "/hello/again")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); len(got) != 16 {
		t.Fatalf("generated id %q", got)
	}

	// An error response lands in the 5xx class.
	resp, err = http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := m.Requests.With("GET /hello/{name}", "2xx").Value(); got != 2 {
		t.Fatalf("2xx count for route = %g, want 2", got)
	}
	if got := m.Requests.With("GET /boom", "5xx").Value(); got != 1 {
		t.Fatalf("5xx count = %g, want 1", got)
	}
	if got := m.Duration.With("GET /hello/{name}").Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if got := m.InFlight.With("GET /boom").Value(); got != 0 {
		t.Fatalf("in-flight after completion = %g", got)
	}
	if !strings.Contains(logBuf.String(), "request_id=my-id-123evilx") {
		t.Fatalf("log line lacks request id:\n%s", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "route=\"GET /hello/{name}\"") {
		t.Fatalf("log line lacks route:\n%s", logBuf.String())
	}

	// The whole surface exposes validly.
	var buf bytes.Buffer
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("middleware metrics do not parse: %v\n%s", err, buf.String())
	}
}

func TestBuildInfoRegisters(t *testing.T) {
	r := NewRegistry()
	b := RegisterBuildInfo(r, "t")
	if b.GoVersion == "" {
		t.Fatal("empty go version")
	}
	var buf bytes.Buffer
	r.WriteExposition(&buf)
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := fams["t_build_info"]
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Fatalf("build info sample: %+v", f)
	}
	if f.Samples[0].Label("go_version") != b.GoVersion {
		t.Fatalf("go_version label %q", f.Samples[0].Label("go_version"))
	}
	if s := b.String(); !strings.Contains(s, "revision") {
		t.Fatalf("version string %q", s)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context has an id")
	}
	ctx = WithRequestID(ctx, "abc")
	if RequestID(ctx) != "abc" {
		t.Fatal("id lost")
	}
	if a, b := NewRequestID(), NewRequestID(); a == b {
		t.Fatal("request ids collide")
	}
	if got := SanitizeRequestID(strings.Repeat("a", 100)); len(got) != 64 {
		t.Fatalf("sanitize cap: %d", len(got))
	}
}

// syncBuffer is a bytes.Buffer safe for the concurrent writes slog
// handlers may make.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
