package obs

import (
	"fmt"
	"runtime/debug"
)

// Build identity, read once from the binary's embedded build info: the
// VCS revision stamped by `go build`, whether the tree was dirty, and
// the Go toolchain version. Exposed two ways — a constant-1 info metric
// (the Prometheus idiom for joining build metadata onto any series) and
// a -version string.

// BuildInfo is the binary's build identity.
type BuildInfo struct {
	GoVersion string
	Revision  string // VCS revision, "unknown" outside a stamped build
	Modified  bool   // tree was dirty at build time
}

// ReadBuildInfo extracts the build identity from the running binary.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{GoVersion: "unknown", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// String renders the identity for a -version flag.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("revision %s, %s", rev, b.GoVersion)
}

// RegisterBuildInfo exposes the identity as a constant-1 gauge named
// <ns>_build_info with go_version/revision/modified labels.
func RegisterBuildInfo(r *Registry, ns string) BuildInfo {
	b := ReadBuildInfo()
	mod := "false"
	if b.Modified {
		mod = "true"
	}
	r.GaugeVec(ns+"_build_info",
		"Constant 1, labeled with the binary's build identity.",
		"go_version", "revision", "modified").
		With(b.GoVersion, b.Revision, mod).Set(1)
	return b
}
