package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// This file writes the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE comments followed by
// samples, histograms expanded into cumulative _bucket/_sum/_count
// series. Output is deterministic — families sorted by name, samples by
// label values — so tests can diff scrapes.

// WriteExposition writes the full registry in exposition format.
func (r *Registry) WriteExposition(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Snapshot() {
		if err := writeFamily(bw, fam); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteExposition(w)
	})
}

func writeFamily(w *bufio.Writer, fam Family) error {
	if fam.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
		return err
	}
	for _, s := range fam.Samples {
		if fam.Kind == KindHistogram {
			if err := writeHistogram(w, fam.Name, s); err != nil {
				return err
			}
			continue
		}
		if err := writeSample(w, fam.Name, s.Labels, s.Value); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w *bufio.Writer, name string, s Sample) error {
	for _, b := range s.Buckets {
		le := formatFloat(b.LE)
		if math.IsInf(b.LE, 1) {
			le = "+Inf"
		}
		lbs := append(append([]Label(nil), s.Labels...), Label{Name: "le", Value: le})
		if err := writeSample(w, name+"_bucket", lbs, float64(b.Count)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_sum", s.Labels, s.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", s.Labels, float64(s.Count))
}

func writeSample(w *bufio.Writer, name string, labels []Label, v float64) error {
	w.WriteString(name)
	if len(labels) > 0 {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l.Name)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(l.Value))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	return w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
