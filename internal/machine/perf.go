package machine

import (
	"lazyrc/internal/perf"
)

// EnablePerf attaches a wall-clock phase profiler to the machine. It
// must be called before Run (and after EnableSpans if causal span
// bookkeeping should be attributed to its own phase). Profiling is
// strictly passive: every hook reads the host's monotonic clock and
// touches no simulated state, so an instrumented run is bit-identical —
// cycles, digests, stats — to an uninstrumented one (pinned by
// TestPerfIsPassive).
//
// Wired here:
//
//   - the engine run loop, which charges each event to the dispatch
//     phase (background phase for observer events) — the catch-all that
//     also absorbs coroutine handoff and application compute;
//   - the mesh, narrowing routing/transport/delivery work to the mesh
//     phase;
//   - the protocol Env, narrowing message handling to the protocol
//     phase, cache-fill/commit paths to the memory/bus phase, and
//     home-side directory service occupancy to the directory phase;
//   - every node's directory table (entry lookups);
//   - the causal tracer's span bookkeeping, when one is attached.
//
// Machine.Run brackets the whole execution with Begin/End; the fixed
// profile is available from m.Perf.Snapshot() afterwards.
func (m *Machine) EnablePerf() *perf.Profiler {
	p := perf.New()
	m.Perf = p
	m.Eng.SetProfiler(p)
	m.Net.SetProfiler(p)
	m.Env.Prof = p
	for _, n := range m.Nodes {
		n.Dir.SetProfiler(p)
	}
	m.Causal.SetProfiler(p)
	return p
}
