// Package machine assembles the simulated multiprocessor: processor
// nodes (CPU context, cache, write buffers, protocol processor, local
// memory and bus), the mesh interconnect, a page-interleaved shared
// address space with a real backing store, and the run loop that drives
// per-processor workloads to completion.
//
// Timing and data are decoupled in the usual execution-driven-simulator
// way: every shared access is played through the coherence protocol for
// timing, while the datum itself lives in a single backing store, so
// workloads perform real computation (and their results can be verified
// against serial references).
package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"lazyrc/internal/causal"
	"lazyrc/internal/config"
	"lazyrc/internal/directory"
	"lazyrc/internal/faults"
	"lazyrc/internal/mesh"
	"lazyrc/internal/perf"
	"lazyrc/internal/protocol"
	"lazyrc/internal/sim"
	"lazyrc/internal/stats"
	"lazyrc/internal/telemetry"
)

// Addr is a simulated shared-memory address (byte granularity).
type Addr = uint64

// Machine is one simulated multiprocessor.
type Machine struct {
	Eng   *sim.Engine
	Cfg   config.Config
	Net   *mesh.Network
	Env   *protocol.Env
	Nodes []*protocol.Node
	Stats *stats.Machine
	Class *stats.Classifier
	// Tel is the telemetry registry when metrics are enabled (see
	// EnableMetrics in metrics.go), nil otherwise.
	Tel *telemetry.Registry
	// Causal is the span tracer when causal tracing is enabled (see
	// EnableSpans in spans.go), nil otherwise.
	Causal *causal.Tracer
	// Perf is the wall-clock phase profiler when perf accounting is
	// enabled (see EnablePerf in perf.go), nil otherwise.
	Perf *perf.Profiler

	backing []byte
	brk     Addr

	nextSyncID   uint64
	nextSyncHome int
	protoName    string
}

// New builds a machine running the named protocol ("sc", "erc", "lrc",
// "lrc-ext") with the given configuration.
func New(cfg config.Config, protoName string) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	net := mesh.New(eng, cfg)
	st := stats.NewMachine(cfg.Procs)
	cl := stats.NewClassifier(cfg.Procs, cfg.WordsPerLine())
	env := &protocol.Env{Eng: eng, Net: net, Cfg: cfg, Stats: st, Class: cl}
	m := &Machine{
		Eng: eng, Cfg: cfg, Net: net, Env: env,
		Stats: st, Class: cl, protoName: protoName,
	}
	m.Nodes = make([]*protocol.Node, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		p, err := protocol.New(protoName)
		if err != nil {
			return nil, err
		}
		m.Nodes[i] = protocol.NewNode(env, i, p)
	}
	env.Nodes = m.Nodes
	if err := net.Finalize(); err != nil {
		return nil, err
	}
	if cfg.FaultPlan != "" {
		plan, err := faults.ParsePlan(cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		if err := net.SetInjector(faults.NewInjector(seed, plan)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Protocol returns the protocol name this machine runs.
func (m *Machine) Protocol() string { return m.protoName }

// ---- Shared address space -------------------------------------------------

// Alloc carves out n bytes of shared memory aligned to the machine word,
// optionally padding to the next cache-line boundary first (pad avoids
// artificial false sharing between independent allocations).
func (m *Machine) Alloc(n int, padToLine bool) Addr {
	if padToLine {
		ls := Addr(m.Cfg.LineSize)
		m.brk = (m.brk + ls - 1) / ls * ls
	} else {
		const w = Addr(config.WordSize)
		m.brk = (m.brk + w - 1) / w * w
	}
	base := m.brk
	m.brk += Addr(n)
	if int(m.brk) > len(m.backing) {
		grown := make([]byte, int(m.brk)*2)
		copy(grown, m.backing)
		m.backing = grown
	}
	return base
}

// Footprint returns the bytes of shared memory allocated so far.
func (m *Machine) Footprint() uint64 { return m.brk }

// SnapshotData copies the current shared-memory contents — used by
// workloads that run an untimed serial reference over the same arrays
// before the simulated run.
func (m *Machine) SnapshotData() []byte {
	return append([]byte(nil), m.backing[:m.brk]...)
}

// RestoreData restores shared memory from a SnapshotData copy.
func (m *Machine) RestoreData(snap []byte) {
	copy(m.backing, snap)
	for i := len(snap); i < len(m.backing); i++ {
		m.backing[i] = 0
	}
}

// PeekF64 reads a float64 directly from shared memory (no simulation).
func (m *Machine) PeekF64(a Addr) float64 { return math.Float64frombits(m.loadU64(a)) }

// PokeF64 writes a float64 directly to shared memory (no simulation).
func (m *Machine) PokeF64(a Addr, v float64) { m.storeU64(a, math.Float64bits(v)) }

// PeekI64 reads an int64 directly from shared memory (no simulation).
func (m *Machine) PeekI64(a Addr) int64 { return int64(m.loadU64(a)) }

// PokeI64 writes an int64 directly to shared memory (no simulation).
func (m *Machine) PokeI64(a Addr, v int64) { m.storeU64(a, uint64(v)) }

// Direct returns an untimed accessor over this machine's shared memory,
// satisfying the same access interface as Proc — workloads use it to run
// serial reference computations with the exact same code.
func (m *Machine) Direct() *Direct { return &Direct{m: m} }

// Direct is the untimed shared-memory accessor returned by
// Machine.Direct.
type Direct struct{ m *Machine }

// ReadF64 reads a float64 without simulation.
func (d *Direct) ReadF64(a Addr) float64 { return d.m.PeekF64(a) }

// WriteF64 writes a float64 without simulation.
func (d *Direct) WriteF64(a Addr, v float64) { d.m.PokeF64(a, v) }

// ReadI64 reads an int64 without simulation.
func (d *Direct) ReadI64(a Addr) int64 { return d.m.PeekI64(a) }

// WriteI64 writes an int64 without simulation.
func (d *Direct) WriteI64(a Addr, v int64) { d.m.PokeI64(a, v) }

// Compute is a no-op for the untimed accessor.
func (d *Direct) Compute(uint64) {}

func (m *Machine) loadU64(a Addr) uint64 {
	return binary.LittleEndian.Uint64(m.backing[a : a+8])
}

func (m *Machine) storeU64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(m.backing[a:a+8], v)
}

// F64 is a handle to a shared array of float64.
type F64 struct {
	m    *Machine
	base Addr
	n    int
}

// AllocF64 allocates a line-aligned shared float64 array.
func (m *Machine) AllocF64(n int) F64 {
	return F64{m: m, base: m.Alloc(n*8, true), n: n}
}

// At returns the address of element i.
func (a F64) At(i int) Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("machine: F64 index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Addr(i)*8
}

// Len returns the element count.
func (a F64) Len() int { return a.n }

// Peek reads element i directly (no simulation) — for initialization and
// verification only.
func (a F64) Peek(i int) float64 { return math.Float64frombits(a.m.loadU64(a.At(i))) }

// Poke writes element i directly (no simulation) — for initialization
// before Run only.
func (a F64) Poke(i int, v float64) { a.m.storeU64(a.At(i), math.Float64bits(v)) }

// I64 is a handle to a shared array of int64.
type I64 struct {
	m    *Machine
	base Addr
	n    int
}

// AllocI64 allocates a line-aligned shared int64 array.
func (m *Machine) AllocI64(n int) I64 {
	return I64{m: m, base: m.Alloc(n*8, true), n: n}
}

// At returns the address of element i.
func (a I64) At(i int) Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("machine: I64 index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Addr(i)*8
}

// Len returns the element count.
func (a I64) Len() int { return a.n }

// Peek reads element i directly (no simulation).
func (a I64) Peek(i int) int64 { return int64(a.m.loadU64(a.At(i))) }

// Poke writes element i directly (no simulation).
func (a I64) Poke(i int, v int64) { a.m.storeU64(a.At(i), uint64(v)) }

// ---- Synchronization objects ----------------------------------------------

// Lock is a queue lock managed at a home node's protocol processor.
type Lock struct {
	home int
	id   uint64
}

// Barrier is a centralized barrier for a fixed party count.
type Barrier struct {
	home    int
	id      uint64
	parties int
}

// Flag is a one-shot event (set once, wait many) — the producer/consumer
// synchronization used by pivot-style algorithms.
type Flag struct {
	home int
	id   uint64
}

func (m *Machine) nextSync() (home int, id uint64) {
	home = m.nextSyncHome
	m.nextSyncHome = (m.nextSyncHome + 1) % m.Cfg.Procs
	id = m.nextSyncID
	m.nextSyncID++
	return
}

// NewLock allocates a lock homed round-robin across the machine.
func (m *Machine) NewLock() *Lock {
	h, id := m.nextSync()
	return &Lock{home: h, id: id}
}

// NewBarrier allocates a barrier for the given party count.
func (m *Machine) NewBarrier(parties int) *Barrier {
	h, id := m.nextSync()
	return &Barrier{home: h, id: id, parties: parties}
}

// NewFlag allocates a one-shot flag.
func (m *Machine) NewFlag() Flag {
	h, id := m.nextSync()
	return Flag{home: h, id: id}
}

// NewFlags allocates n one-shot flags.
func (m *Machine) NewFlags(n int) []Flag {
	fs := make([]Flag, n)
	for i := range fs {
		fs[i] = m.NewFlag()
	}
	return fs
}

// ---- Run loop ---------------------------------------------------------------

// Run executes worker on every processor until completion. Each worker
// ends with an implicit release (flushing its write path) before its
// finish time is recorded; Run returns after the machine fully quiesces.
func (m *Machine) Run(worker func(p *Proc)) {
	for i := range m.Nodes {
		node := m.Nodes[i]
		id := i
		ctx := m.Eng.Spawn(fmt.Sprintf("cpu%d", id), func(c *sim.Context) {
			p := &Proc{m: m, node: node, ctx: c}
			worker(p)
			p.syncNow()
			node.Proto.Release(node)
			node.PS.FinishTime = c.Now()
		})
		node.CPU = ctx
	}
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("%v\n%s", r, m.DumpState()))
		}
	}()
	m.Perf.Begin()
	m.Eng.Run()
	// Closing telemetry sample at the final simulated cycle (a no-op when
	// the run ended exactly on a tick, or when metrics are disabled).
	m.Tel.Sample(m.Eng.Now())
	m.Perf.End(m.Eng.Now(), m.Eng.Events())
}

// ContentionReport summarizes hardware-resource contention after a run:
// for each resource class, total occupied cycles, total queueing delay
// imposed on requesters, and the single most-contended node. Useful for
// diagnosing hot homes (e.g. a task-queue counter's memory module).
func (m *Machine) ContentionReport() string {
	type row struct {
		name         string
		busy, waited uint64
		worstNode    int
		worstWaited  uint64
	}
	rows := []row{{name: "protocol processor"}, {name: "memory module"}, {name: "local bus"}, {name: "network ports"}}
	for _, n := range m.Nodes {
		for i, r := range []*sim.Resource{n.PP, n.Mem, n.Bus} {
			rows[i].busy += r.Busy()
			rows[i].waited += r.Waited()
			if r.Waited() > rows[i].worstWaited {
				rows[i].worstWaited = r.Waited()
				rows[i].worstNode = n.ID
			}
		}
		w := m.Net.PortWaited(n.ID)
		rows[3].busy += m.Net.PortBusy(n.ID)
		rows[3].waited += w
		if w > rows[3].worstWaited {
			rows[3].worstWaited = w
			rows[3].worstNode = n.ID
		}
	}
	s := fmt.Sprintf("%-20s %14s %14s   %s\n", "resource", "busy cycles", "queue delay", "hottest node")
	for _, r := range rows {
		s += fmt.Sprintf("%-20s %14d %14d   node %d (%d cycles)\n",
			r.name, r.busy, r.waited, r.worstNode, r.worstWaited)
	}
	return s
}

// EnableWatchdog installs a liveness watchdog on the machine's engine:
// every interval cycles it checks per-context forward progress, and on a
// stall calls onStall with a report enriched with machine-level notes —
// per-node in-flight transactions, NIC queue depths, the oldest in-flight
// transport retransmissions, and the causal state of the stalled contexts
// (which open stall is blocked on which lost message). The handler may
// call m.Eng.Stop() to abort the run.
func (m *Machine) EnableWatchdog(interval uint64, onStall func(sim.StallReport)) {
	m.Eng.Watchdog(interval, func(r sim.StallReport) {
		r.Retransmits = m.Net.TransportTop(8)
		r.StallCauses = m.stallCauses()
		r.Notes = append(r.Notes, m.stallNotes()...)
		onStall(r)
	})
}

// stallCauses renders the open causal stall spans, cross-referencing each
// against the transport's pending retransmissions: an open stall whose
// transaction has a message stuck in retransmission is, with high
// likelihood, blocked on that loss.
func (m *Machine) stallCauses() []string {
	stalls := m.Causal.OpenStalls()
	if len(stalls) == 0 {
		return nil
	}
	retxByCT := make(map[uint64]mesh.RetxEntry)
	for _, e := range m.Net.PendingRetransmits() {
		if _, seen := retxByCT[e.CT]; !seen {
			retxByCT[e.CT] = e
		}
	}
	now := m.Eng.Now()
	out := make([]string, 0, len(stalls))
	for _, st := range stalls {
		line := fmt.Sprintf("stall cause: node %d parked %d cycles in %s stall (%s, txn %d)",
			st.Node, now-st.Begin, st.Class, st.Why, st.TID)
		if e, ok := retxByCT[st.TID]; ok && st.TID != 0 {
			line += fmt.Sprintf(" — blocked on lost %s %d->%d seq %d (attempt %d)",
				faults.KindName(e.Kind), e.Src, e.Dst, e.Seq, e.Attempt)
		}
		out = append(out, line)
	}
	return out
}

// stallNotes collects machine-level liveness diagnostics for a stall
// report.
func (m *Machine) stallNotes() []string {
	var notes []string
	now := m.Eng.Now()
	for _, n := range m.Nodes {
		if d := n.Debug(); d != "" {
			notes = append(notes, fmt.Sprintf("node %d:%s", n.ID, d))
		}
		if in, out := m.Net.PortBacklog(n.ID, now); in > 0 || out > 0 {
			notes = append(notes, fmt.Sprintf("node %d: NIC backlog in=%d out=%d cycles", n.ID, in, out))
		}
	}
	if s := m.Net.FaultSummary(); s != "" {
		notes = append(notes, s)
	}
	if s := m.Net.TransportSummary(); s != "" {
		notes = append(notes, s)
	}
	for _, n := range m.Nodes {
		if w := n.SeqWaiting(); w > 0 {
			notes = append(notes, fmt.Sprintf("node %d: %d arrival(s) parked in sequencer awaiting a gap fill", n.ID, w))
		}
	}
	return notes
}

// StateHash returns an FNV-1a fingerprint of the machine's canonical
// protocol state: every node's caches, buffers, transactions, and sync
// objects, every directory, and the digest of messages in flight.
// Simulated time is deliberately excluded — the model checker uses the
// hash to recognize logically identical states reached along different
// schedules, a (conservative-in-coverage) pruning heuristic.
func (m *Machine) StateHash() uint64 {
	b := make([]byte, 0, 4096)
	for _, n := range m.Nodes {
		b = n.AppendSnapshot(b)
		b = n.Dir.AppendSnapshot(b)
		b = n.Dir.AppendLeaseSnapshot(b)
	}
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	for v := m.Net.InFlightDigest(); v != 0; v >>= 8 {
		h ^= v & 0xff
		h *= 1099511628211
	}
	return h
}

// DumpState renders per-node protocol state for deadlock diagnostics.
func (m *Machine) DumpState() string {
	s := ""
	for _, n := range m.Nodes {
		if d := n.Debug(); d != "" {
			s += fmt.Sprintf("node %d: %s\n", n.ID, d)
		}
	}
	return s
}

// CheckQuiescent verifies end-of-run invariants: every directory entry
// validates, no transactions or buffered writes linger, and no
// acknowledgements are outstanding. It returns the first violation.
func (m *Machine) CheckQuiescent() error {
	for _, n := range m.Nodes {
		var err error
		n.Dir.Visit(func(block uint64, e *directory.Entry) {
			if err == nil {
				if verr := e.Validate(); verr != nil {
					err = fmt.Errorf("node %d block %d: %w", n.ID, block, verr)
				}
			}
		})
		if err != nil {
			return err
		}
		if !n.WB.Empty() {
			return fmt.Errorf("node %d: write buffer not empty at end of run", n.ID)
		}
		if !n.CB.Empty() {
			return fmt.Errorf("node %d: coalescing buffer not empty at end of run", n.ID)
		}
		if w := n.SeqWaiting(); w > 0 {
			return fmt.Errorf("node %d: %d arrival(s) still parked in the delivery sequencer (a lost message was never recovered)", n.ID, w)
		}
		n.Dir.VisitLeases(func(block uint64, l *directory.Lease) {
			if err == nil {
				if verr := n.Dir.ValidateLease(l); verr != nil {
					err = fmt.Errorf("node %d block %d: %w", n.ID, block, verr)
				}
			}
		})
		if err != nil {
			return err
		}
		if terr := n.TardisResidual(); terr != nil {
			return fmt.Errorf("node %d: %w", n.ID, terr)
		}
	}
	if _, _, _, _, _, pending := m.Net.TransportStats(); pending > 0 {
		return fmt.Errorf("transport: %d message(s) still awaiting delivery at end of run", pending)
	}
	return nil
}

// MemDigest returns the SHA-256 of the final shared-memory image — the
// fingerprint the end-state equivalence oracle compares: a faulted run is
// correct iff its digest (and per-proc completion) matches the fault-free
// run of the same seed. Timing may differ; this may not.
func (m *Machine) MemDigest() string {
	sum := sha256.Sum256(m.backing[:m.brk])
	return hex.EncodeToString(sum[:])
}

// Completed reports whether every processor recorded a finish time — the
// per-proc completion half of the end-state oracle.
func (m *Machine) Completed() bool {
	for i := range m.Stats.Procs {
		if m.Stats.Procs[i].FinishTime == 0 {
			return false
		}
	}
	return true
}

// DuplicatesIgnored sums the deliveries suppressed by every node's
// sequencer (duplicates and late retransmitted originals).
func (m *Machine) DuplicatesIgnored() uint64 {
	var n uint64
	for _, node := range m.Nodes {
		n += node.DuplicatesIgnored()
	}
	return n
}

// SeqParked sums the out-of-order arrivals every node's sequencer held
// for gap fill (cumulative).
func (m *Machine) SeqParked() uint64 {
	var n uint64
	for _, node := range m.Nodes {
		n += node.SeqParked()
	}
	return n
}

// FaultReport renders the full fault-injection picture of a run —
// injector decisions, transport recovery, and receiver-side suppression —
// or "" when no injector is attached.
func (m *Machine) FaultReport() string {
	if !m.Net.TransportActive() {
		return ""
	}
	lines := []string{
		m.Net.FaultSummary(),
		m.Net.TransportSummary(),
		fmt.Sprintf("delivery: %d duplicate(s) suppressed, %d arrival(s) resequenced",
			m.DuplicatesIgnored(), m.SeqParked()),
	}
	return strings.Join(lines, "\n")
}

// TrafficReport renders the per-message-kind traffic of the run — the
// lazy protocols' message-combining and notice batching show up directly
// here, which is the software-DSM motivation the paper starts from.
func (m *Machine) TrafficReport() string {
	s := fmt.Sprintf("%-14s %12s\n", "message kind", "count")
	for k := 0; k < protocol.NumMsgKinds(); k++ {
		if c := m.Net.KindCount(k); c > 0 {
			s += fmt.Sprintf("%-14s %12d\n", protocol.MsgKind(k).String(), c)
		}
	}
	return s
}
