package machine_test

import (
	"strings"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
	"lazyrc/internal/telemetry"
)

func runGauss(t *testing.T, proto string, metricsInterval uint64) *machine.Machine {
	t.Helper()
	cfg := config.Default(8)
	m, err := machine.New(cfg, proto)
	if err != nil {
		t.Fatal(err)
	}
	if metricsInterval > 0 {
		m.EnableMetrics(metricsInterval)
	}
	app := apps.NewGauss(apps.Tiny)
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMetricsArePassive is the tentpole's core guarantee: enabling
// telemetry must not change a single simulated cycle. The sampler is a
// background event that only reads state, so execution time, traffic, and
// the cycle breakdown must be bit-identical with metrics on and off.
func TestMetricsArePassive(t *testing.T) {
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		t.Run(proto, func(t *testing.T) {
			off := runGauss(t, proto, 0)
			on := runGauss(t, proto, 1000)
			if got, want := on.Stats.ExecutionTime(), off.Stats.ExecutionTime(); got != want {
				t.Fatalf("metrics changed execution time: %d vs %d", got, want)
			}
			mOn, bOn := on.Net.Stats()
			mOff, bOff := off.Net.Stats()
			if mOn != mOff || bOn != bOff {
				t.Fatalf("metrics changed traffic: %d/%d vs %d/%d", mOn, bOn, mOff, bOff)
			}
			c1, r1, w1, s1 := on.Stats.Aggregate()
			c2, r2, w2, s2 := off.Stats.Aggregate()
			if c1 != c2 || r1 != r2 || w1 != w2 || s1 != s2 {
				t.Fatalf("metrics changed cycle breakdown")
			}
		})
	}
}

// TestMetricsDigestDeterministic: the same run produces the same digest,
// and the series actually carry data.
func TestMetricsDigestDeterministic(t *testing.T) {
	m1 := runGauss(t, "lrc", 1000)
	m2 := runGauss(t, "lrc", 1000)
	d1, d2 := m1.Tel.Digest(), m2.Tel.Digest()
	if d1 == "" || d1 != d2 {
		t.Fatalf("digest not deterministic: %q vs %q", d1, d2)
	}
	if m1.Tel.Samples() < 2 {
		t.Fatalf("only %d samples for a %d-cycle run", m1.Tel.Samples(), m1.Stats.ExecutionTime())
	}
	// The headline sources must have fired.
	for _, name := range []string{"stall.cpu", "stall.read", "net.msgs", "wb.depth.000", "dir.shared"} {
		s := m1.Tel.SeriesByName(name)
		if s == nil || len(s.Points()) != m1.Tel.Samples() {
			t.Fatalf("series %q missing or misaligned", name)
		}
	}
	var total float64
	for _, v := range m1.Tel.SeriesByName("net.msgs").Points() {
		total += v
	}
	msgs, _ := m1.Net.Stats()
	if total != float64(msgs) {
		t.Fatalf("net.msgs deltas sum to %v, traffic total is %d", total, msgs)
	}
}

// TestMetricsHistogramsPopulated: per-kind latency histograms and buffer
// residency histograms carry observations after a sharing run.
func TestMetricsHistogramsPopulated(t *testing.T) {
	m := runGauss(t, "lrc", 1000)
	var latHists int
	var latObs uint64
	m.Tel.VisitHistograms(func(h *telemetry.Histogram) {
		if strings.HasPrefix(h.Name(), "net.lat.") {
			latHists++
			latObs += h.Count()
		}
	})
	if latHists < 3 {
		t.Fatalf("only %d per-kind latency histograms", latHists)
	}
	if latObs == 0 {
		t.Fatal("latency histograms empty")
	}
	// lrc uses the coalescing buffer; every drained entry must have been
	// observed for residency.
	cb := m.Tel.HistogramByName("cb.residency")
	if cb.Count() == 0 {
		t.Fatal("cb.residency empty after an lrc run")
	}
	if cb.Max() == 0 {
		t.Fatal("cb.residency never saw a nonzero residency")
	}
}
