package machine_test

import (
	"bytes"
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/causal"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

var allProtos = config.ProtocolNames()

func runGaussSpans(t *testing.T, proto string, spans bool) *machine.Machine {
	t.Helper()
	cfg := config.Default(8)
	m, err := machine.New(cfg, proto)
	if err != nil {
		t.Fatal(err)
	}
	if spans {
		m.EnableSpans(true, 0)
	}
	app := apps.NewGauss(apps.Tiny)
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSpansArePassive pins the tentpole guarantee: enabling causal
// tracing must not change a single simulated cycle, message, or stat.
// Every hook only reads cycle stamps the timing model already computed.
func TestSpansArePassive(t *testing.T) {
	for _, proto := range allProtos {
		t.Run(proto, func(t *testing.T) {
			off := runGaussSpans(t, proto, false)
			on := runGaussSpans(t, proto, true)
			if got, want := on.Stats.ExecutionTime(), off.Stats.ExecutionTime(); got != want {
				t.Fatalf("spans changed execution time: %d vs %d", got, want)
			}
			mOn, bOn := on.Net.Stats()
			mOff, bOff := off.Net.Stats()
			if mOn != mOff || bOn != bOff {
				t.Fatalf("spans changed traffic: %d/%d vs %d/%d", mOn, bOn, mOff, bOff)
			}
			c1, r1, w1, s1 := on.Stats.Aggregate()
			c2, r2, w2, s2 := off.Stats.Aggregate()
			if c1 != c2 || r1 != r2 || w1 != w2 || s1 != s2 {
				t.Fatalf("spans changed cycle breakdown")
			}
		})
	}
}

// TestSpanAttributionSumsToStalls: the critical-path analyzer must
// account for every stalled cycle. Stall episodes bracket exactly the
// charge sites of the stats breakdown, so the attribution total per
// class equals the stats aggregate per class, and no cycle is counted
// twice.
func TestSpanAttributionSumsToStalls(t *testing.T) {
	for _, proto := range allProtos {
		t.Run(proto, func(t *testing.T) {
			m := runGaussSpans(t, proto, true)
			attr := causal.Analyze(m.Causal)
			_, rd, wr, sy := m.Stats.Aggregate()
			if got, want := attr.ClassTotal(causal.StallRead), rd; got != want {
				t.Errorf("read-stall attribution %d, stats %d", got, want)
			}
			if got, want := attr.ClassTotal(causal.StallWrite), wr; got != want {
				t.Errorf("write-stall attribution %d, stats %d", got, want)
			}
			if got, want := attr.ClassTotal(causal.StallSync), sy; got != want {
				t.Errorf("sync-stall attribution %d, stats %d", got, want)
			}
			if got, want := attr.Total(), rd+wr+sy; got != want {
				t.Errorf("total attribution %d, stats stall total %d", got, want)
			}
			// Each episode's segments must exactly partition its window.
			for i := range attr.Episodes {
				ep := &attr.Episodes[i]
				at := ep.Span.Begin
				for _, seg := range ep.Segments {
					if seg.Begin != at {
						t.Fatalf("episode segments leave a gap at %d (expected %d)", seg.Begin, at)
					}
					at = seg.End
				}
				if at != ep.Span.End {
					t.Fatalf("episode segments end at %d, window ends at %d", at, ep.Span.End)
				}
			}
		})
	}
}

// TestSpanProperties: every span opened is closed by the time the
// machine quiesces, transaction ids are unique per root, and child spans
// begin within their run's bounds, across all protocols on the tiny
// config. The bound is the engine's quiesce time rather than
// ExecutionTime (the last CPU's retirement): a release-class sync
// message is fire-and-forget, so when the last-finishing CPU's final
// instruction is a flag-set or barrier arrival homed elsewhere, the
// home-side notice processing legitimately completes a few cycles after
// that CPU retires.
func TestSpanProperties(t *testing.T) {
	for _, proto := range allProtos {
		t.Run(proto, func(t *testing.T) {
			m := runGaussSpans(t, proto, true)
			tr := m.Causal
			if n := tr.OpenCount(); n != 0 {
				t.Fatalf("%d spans still open at end of run", n)
			}
			if tr.Dropped() != 0 {
				t.Fatalf("%d spans dropped on the tiny config", tr.Dropped())
			}
			end := m.Eng.Now()
			if exec := m.Stats.ExecutionTime(); end < exec {
				t.Fatalf("machine quiesced at %d, before the last CPU retired at %d", end, exec)
			}
			roots := make(map[uint64]*causal.Span)
			spanCount := 0
			for _, s := range tr.Spans() {
				if s.ID == 0 {
					continue // discarded zero-length stall
				}
				spanCount++
				if s.End < s.Begin {
					t.Fatalf("span %d (%v) ends before it begins: [%d,%d]", s.ID, s.Kind, s.Begin, s.End)
				}
				if s.End > end {
					t.Fatalf("span %d (%v) ends at %d, after the run's end %d", s.ID, s.Kind, s.End, end)
				}
				if s.Kind == causal.KindTxn || s.Kind == causal.KindSync {
					if s.TID == 0 {
						t.Fatalf("root span %d has no TID", s.ID)
					}
					if prev, dup := roots[s.TID]; dup {
						t.Fatalf("TID %d used by two roots (spans %d and %d)", s.TID, prev.ID, s.ID)
					}
					sCopy := s
					roots[s.TID] = &sCopy
				}
			}
			if spanCount == 0 || len(roots) == 0 {
				t.Fatalf("no spans recorded (%d spans, %d roots)", spanCount, len(roots))
			}
			// Child spans of a transaction begin no earlier than their
			// root: every piece of protocol work on a chain is caused by
			// the request that opened it. (Children may END after the
			// root closes — a fire-and-forget notice can outlive the
			// sync episode that triggered it.)
			for _, s := range tr.Spans() {
				if s.ID == 0 || s.Kind == causal.KindTxn || s.Kind == causal.KindSync {
					continue
				}
				if root, ok := roots[s.TID]; ok && s.Begin < root.Begin {
					t.Fatalf("span %d (%v) begins at %d, before its root txn %d began at %d",
						s.ID, s.Kind, s.Begin, s.TID, root.Begin)
				}
			}
		})
	}
}

// TestSpanDigestDeterministic: the span stream is a pure function of the
// run — repeated seeded runs produce identical digests, and the
// digest-only tracer (runner mode) folds to the same fingerprint as the
// retaining one.
func TestSpanDigestDeterministic(t *testing.T) {
	m1 := runGaussSpans(t, "lrc", true)
	m2 := runGaussSpans(t, "lrc", true)
	d1, d2 := m1.Causal.Digest(), m2.Causal.Digest()
	if d1 == "" || d1 != d2 {
		t.Fatalf("span digest not deterministic: %q vs %q", d1, d2)
	}

	cfg := config.Default(8)
	m3, err := machine.New(cfg, "lrc")
	if err != nil {
		t.Fatal(err)
	}
	m3.EnableSpans(false, 0) // digest-only mode
	app := apps.NewGauss(apps.Tiny)
	app.Setup(m3)
	m3.Run(app.Worker)
	if d3 := m3.Causal.Digest(); d3 != d1 {
		t.Fatalf("digest-only tracer diverges from retaining tracer: %q vs %q", d3, d1)
	}
	if m3.Causal.Spans() != nil {
		t.Fatal("digest-only tracer retained spans")
	}
}

// TestPerfettoExportValidates: the exported trace passes the minimal
// trace-event schema check and carries events for every node.
func TestPerfettoExportValidates(t *testing.T) {
	m := runGaussSpans(t, "lrc", true)
	var buf bytes.Buffer
	if err := causal.WritePerfetto(&buf, m.Causal, machine.MsgKindName); err != nil {
		t.Fatal(err)
	}
	n, err := causal.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if n < 100 {
		t.Fatalf("suspiciously small trace: %d events", n)
	}
}

// TestSpansDisabledNoAllocs: with tracing disabled every hook is a nil
// no-op — the disabled path must not allocate.
func TestSpansDisabledNoAllocs(t *testing.T) {
	var tr *causal.Tracer
	allocs := testing.AllocsPerRun(100, func() {
		tid := tr.BeginTxn(1, 42, 10)
		sid := tr.BeginStall(1, tid, causal.StallRead, "read fill", 10)
		tr.Net(tid, 0, 1, 2, 42, 10, 20, 0, 0)
		tr.Service(causal.KindDir, 1, 42, 10, 12, 20)
		tr.EndStall(sid, 20)
		tr.EndTxn(tid, 20)
		_ = tr.Capture()
		tr.Restore(0)
		_ = tr.Current()
		_ = tr.Digest()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}
