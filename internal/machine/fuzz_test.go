package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"lazyrc/internal/config"
)

// TestRandomizedWorkloadAllProtocols drives every protocol through
// seeded random mixes of shared reads, writes, locks, flags, and
// barriers — with a small cache so evictions interleave with coherence —
// and checks the three properties that must survive anything:
//
//  1. lock-protected counters lose no increments;
//  2. the machine quiesces (directories valid, buffers empty);
//  3. the whole run is deterministic (same seed ⇒ same cycle count).
func TestRandomizedWorkloadAllProtocols(t *testing.T) {
	const (
		procs  = 8
		ops    = 400
		blocks = 24
	)
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		for seed := int64(1); seed <= 3; seed++ {
			proto, seed := proto, seed
			t.Run(fmt.Sprintf("%s/seed%d", proto, seed), func(t *testing.T) {
				t.Parallel()
				run := func() (uint64, int64) {
					cfg := config.Default(procs)
					cfg.CacheSize = 4 << 10
					cfg.CheckInvariants = true
					m, err := New(cfg, proto)
					if err != nil {
						t.Fatal(err)
					}
					data := m.AllocF64(blocks * cfg.LineSize / 8)
					counters := m.AllocI64(4)
					locks := []*Lock{m.NewLock(), m.NewLock(), m.NewLock(), m.NewLock()}
					bar := m.NewBarrier(procs)
					flags := m.NewFlags(procs)

					m.Run(func(p *Proc) {
						rng := rand.New(rand.NewSource(seed*1000 + int64(p.ID())))
						for i := 0; i < ops; i++ {
							switch rng.Intn(10) {
							case 0, 1, 2, 3: // shared read
								p.ReadF64(data.At(rng.Intn(data.Len())))
							case 4, 5, 6: // shared write
								p.WriteF64(data.At(rng.Intn(data.Len())), float64(i))
							case 7: // lock-protected increment
								k := rng.Intn(len(locks))
								p.Acquire(locks[k])
								p.WriteI64(counters.At(k), p.ReadI64(counters.At(k))+1)
								p.Release(locks[k])
							case 8: // compute burst
								p.Compute(uint64(rng.Intn(300)))
							case 9: // fence (no-op under eager protocols)
								p.Fence()
							}
						}
						// Everyone announces completion, then meets at the
						// barrier so flag traffic is also exercised.
						p.SetFlag(flags[p.ID()])
						p.WaitFlag(flags[(p.ID()+1)%procs])
						p.Barrier(bar)
					})

					if err := m.CheckQuiescent(); err != nil {
						t.Fatal(err)
					}
					var total int64
					for k := 0; k < 4; k++ {
						total += counters.Peek(k)
					}
					return m.Stats.ExecutionTime(), total
				}

				t1, sum1 := run()
				t2, sum2 := run()
				if t1 != t2 {
					t.Fatalf("nondeterministic: %d vs %d cycles", t1, t2)
				}
				if sum1 != sum2 {
					t.Fatalf("nondeterministic counter sums: %d vs %d", sum1, sum2)
				}
				// Expected increments: ops draws with p(7) = 1/10 per op —
				// but exact counts are seed-determined; recompute them.
				var want int64
				for id := 0; id < procs; id++ {
					rng := rand.New(rand.NewSource(seed*1000 + int64(id)))
					for i := 0; i < ops; i++ {
						switch rng.Intn(10) {
						case 7:
							want++
							rng.Intn(4)
						case 0, 1, 2, 3, 4, 5, 6:
							rng.Intn(blocks * 16)
						case 8:
							rng.Intn(300)
						}
					}
				}
				if sum1 != want {
					t.Fatalf("lock-protected increments lost: %d, want %d", sum1, want)
				}
			})
		}
	}
}
