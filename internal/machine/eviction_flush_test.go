package machine

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/protocol"
	"lazyrc/internal/sim"
)

// TestLazyExtEvictionFlushOrdering pins the write-notice flush path of
// the lazier protocol at the event level: evicting a written block whose
// notice was deferred must post that notice at eviction time ("wn-post"),
// strictly before the writer's next release — the release may not be what
// forces it out — and the home must then dispatch it to the other sharer
// ("wn-send"). Companion to TestLazyExtEvictionPostsNotice, which checks
// the same scenario's directory end-state.
func TestLazyExtEvictionFlushOrdering(t *testing.T) {
	m := newTest(t, "lrc-ext", 2, func(c *config.Config) {
		c.CacheSize = 2 * c.LineSize // two frames: easy to evict
	})
	type obs struct {
		ev protocol.ProtEvent
		at sim.Time
	}
	var events []obs
	m.Env.Observe = func(ev protocol.ProtEvent) {
		events = append(events, obs{ev, m.Eng.Now()})
	}
	words := m.Cfg.WordsPerLine()
	a := m.AllocF64(4 * words) // blocks 0..3; 0 and 2 map to the same frame
	block := a.At(0) / uint64(m.Cfg.LineSize)
	f := m.NewFlag()
	l := m.NewLock()
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 1:
			p.ReadF64(a.At(0)) // other sharer: makes the write notice-worthy
			p.SetFlag(f)
		case 0:
			p.WaitFlag(f)
			p.ReadF64(a.At(0))         // fill RO
			p.WriteF64(a.At(0), 1.0)   // silent upgrade, deferred notice
			p.ReadF64(a.At(2 * words)) // conflicting block: evicts block 0
			p.Compute(5000)
			p.Acquire(l)
			p.Release(l)
		}
	})
	var postAt, sendAt, releaseAt sim.Time
	var posted, sent, released bool
	for _, o := range events {
		switch {
		case o.ev.Kind == "wn-post" && o.ev.Node == 0 && o.ev.Block == block:
			if posted {
				t.Fatalf("deferred notice for block %d posted twice", block)
			}
			posted, postAt = true, o.at
		case o.ev.Kind == "wn-send" && o.ev.Block == block && o.ev.Target == 1:
			sent, sendAt = true, o.at
		case o.ev.Kind == "release" && o.ev.Node == 0 && !released:
			released, releaseAt = true, o.at
		}
	}
	if !posted {
		t.Fatal("eviction of the written block never posted the deferred write notice")
	}
	if !sent {
		t.Fatal("home never dispatched the flushed notice to the other sharer")
	}
	if !released {
		t.Fatal("writer's release was never observed")
	}
	if postAt >= releaseAt {
		t.Fatalf("notice posted at t=%d, not before the release at t=%d — flush was release-driven, not eviction-driven",
			postAt, releaseAt)
	}
	if sendAt < postAt {
		t.Fatalf("home dispatched the notice at t=%d before it was posted at t=%d", sendAt, postAt)
	}
}
