package machine

import (
	"math"

	"lazyrc/internal/protocol"
	"lazyrc/internal/sim"
)

// Proc is the per-processor handle a workload runs against. Every shared
// access and synchronization operation is played through the machine's
// timing model; plain Go variables remain private (un-simulated) state,
// exactly as registers and private memory would be.
//
// For simulation speed, a processor runs ahead of the global event loop
// on a private clock while it executes compute cycles and cache hits,
// synchronizing only on misses, buffer pressure, synchronization
// operations, or when the run-ahead exceeds the configured quantum —
// the standard execution-driven simulation optimization.
type Proc struct {
	m    *Machine
	node *protocol.Node
	ctx  *sim.Context

	ahead uint64 // private cycles not yet reflected in engine time
}

// ID returns the processor number (0-based).
func (p *Proc) ID() int { return p.node.ID }

// NProcs returns the machine's processor count.
func (p *Proc) NProcs() int { return p.m.Cfg.Procs }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's current cycle (engine time plus run-ahead).
func (p *Proc) Now() uint64 { return p.ctx.Now() + p.ahead }

// Compute models c cycles of private computation.
func (p *Proc) Compute(c uint64) {
	p.node.PS.CPU += c
	p.ahead += c
	p.maybeSync()
}

// syncNow brings the global event loop up to the processor's private
// clock; after it returns, engine time equals processor time.
func (p *Proc) syncNow() {
	if p.ahead > 0 {
		d := p.ahead
		p.ahead = 0
		p.ctx.Sleep(d)
	}
}

func (p *Proc) maybeSync() {
	if p.ahead >= p.m.Cfg.Quantum {
		p.syncNow()
	}
}

func (p *Proc) blockWord(a Addr) (uint64, int) {
	ls := uint64(p.m.Cfg.LineSize)
	return a / ls, int(a % ls / 8)
}

// access plays one shared reference through the timing model.
func (p *Proc) access(a Addr, write bool) {
	n := p.node
	n.PS.CPU++ // one cycle to issue the reference
	p.ahead++
	p.m.Env.TouchPage(a, n.ID)
	block, word := p.blockWord(a)

	if !write {
		n.PS.Reads++
		if n.Cache.Lookup(block) != nil && n.Proto.ReadHit(n, block) {
			p.maybeSync()
			return // read hit: the protocol accepts the cached copy
		}
		p.syncNow()
		n.Proto.CPURead(n, block, word)
		return
	}

	n.PS.Writes++
	if n.FastWriteHit(block, word) {
		p.maybeSync()
		return
	}
	p.syncNow()
	n.Proto.CPUWrite(n, block, word)
}

// ReadF64 loads a shared float64.
func (p *Proc) ReadF64(a Addr) float64 {
	p.access(a, false)
	return math.Float64frombits(p.m.loadU64(a))
}

// WriteF64 stores a shared float64.
func (p *Proc) WriteF64(a Addr, v float64) {
	p.m.storeU64(a, math.Float64bits(v))
	p.access(a, true)
}

// ReadI64 loads a shared int64.
func (p *Proc) ReadI64(a Addr) int64 {
	p.access(a, false)
	return int64(p.m.loadU64(a))
}

// WriteI64 stores a shared int64.
func (p *Proc) WriteI64(a Addr, v int64) {
	p.m.storeU64(a, uint64(v))
	p.access(a, true)
}

// Acquire acquires l with the protocol's acquire semantics.
func (p *Proc) Acquire(l *Lock) {
	p.syncNow()
	p.node.LockAcquire(l.home, l.id)
}

// Release releases l with the protocol's release semantics.
func (p *Proc) Release(l *Lock) {
	p.syncNow()
	p.node.LockRelease(l.home, l.id)
}

// Barrier joins b; arrival has release semantics, departure acquire
// semantics.
func (p *Proc) Barrier(b *Barrier) {
	p.syncNow()
	p.node.BarrierWait(b.home, b.id, b.parties)
}

// Fence processes any pending write-notice invalidations immediately,
// without acquiring anything — the paper's §4.2 suggestion for keeping
// racy programs' solution quality under the lazy protocols. A no-op
// under the eager protocols.
func (p *Proc) Fence() {
	p.syncNow()
	p.node.Fence()
}

// SetFlag sets a one-shot flag (release semantics).
func (p *Proc) SetFlag(f Flag) {
	p.syncNow()
	p.node.FlagSet(f.home, f.id)
}

// WaitFlag blocks until f is set (acquire semantics).
func (p *Proc) WaitFlag(f Flag) {
	p.syncNow()
	p.node.FlagWait(f.home, f.id)
}
