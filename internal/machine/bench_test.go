package machine_test

import (
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// benchGauss simulates one full tiny gauss run under lrc, with telemetry
// off (interval 0) or sampling at the given interval. Comparing the two
// benchmarks supports the overhead contract: telemetry disabled must be
// free (the instrument calls are nil-receiver no-ops), and enabled it
// stays within a few percent.
//
//	go test ./internal/machine -bench 'SimTelemetry' -benchtime 5x
func benchGauss(b *testing.B, metricsInterval uint64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(config.Default(8), "lrc")
		if err != nil {
			b.Fatal(err)
		}
		if metricsInterval > 0 {
			m.EnableMetrics(metricsInterval)
		}
		app := apps.NewGauss(apps.Tiny)
		app.Setup(m)
		m.Run(app.Worker)
		if err := app.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTelemetryDisabled(b *testing.B) { benchGauss(b, 0) }
func BenchmarkSimTelemetryEnabled(b *testing.B)  { benchGauss(b, 4096) }
