package machine

import (
	"strings"
	"testing"

	"lazyrc/internal/config"
)

func TestSnapshotRestore(t *testing.T) {
	m := newTest(t, "lrc", 2, nil)
	a := m.AllocF64(8)
	for i := 0; i < 8; i++ {
		a.Poke(i, float64(i))
	}
	snap := m.SnapshotData()
	for i := 0; i < 8; i++ {
		a.Poke(i, -1)
	}
	m.RestoreData(snap)
	for i := 0; i < 8; i++ {
		if a.Peek(i) != float64(i) {
			t.Fatalf("element %d = %v after restore", i, a.Peek(i))
		}
	}
}

func TestDirectAccessorMatchesPeekPoke(t *testing.T) {
	m := newTest(t, "lrc", 2, nil)
	a := m.AllocF64(2)
	b := m.AllocI64(2)
	d := m.Direct()
	d.WriteF64(a.At(0), 2.5)
	d.WriteI64(b.At(1), -7)
	if a.Peek(0) != 2.5 || b.Peek(1) != -7 {
		t.Fatal("direct writes not visible via Peek")
	}
	if d.ReadF64(a.At(0)) != 2.5 || d.ReadI64(b.At(1)) != -7 {
		t.Fatal("direct reads wrong")
	}
	d.Compute(1000) // must be a free no-op
}

func TestFenceProcessesPendingInvalidations(t *testing.T) {
	// Two racy writers of one block each hold writable copies under LRC
	// and receive write notices for the other's words. Without an
	// acquire the notices sit unprocessed (stale reads keep hitting); a
	// fence — the §4.2 mechanism for racy programs — processes them.
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(2) // both elements on one line
	f := m.NewFlag()
	var hitsBefore, missesAfter bool
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.WriteF64(a.At(0), 1.0) // first writer: dirty owner
			p.SetFlag(f)
		case 1:
			p.WaitFlag(f)
			p.WriteF64(a.At(1), 2.0) // second writer: weak transition
			p.Compute(20000)         // notices and acks settle
			ps := &m.Stats.Procs[1]
			m0 := ps.TotalMisses()
			p.ReadF64(a.At(0)) // stale cache hit on own weak copy
			hitsBefore = ps.TotalMisses() == m0
			p.Fence() // process the pending invalidation
			p.ReadF64(a.At(0))
			missesAfter = ps.TotalMisses() > m0
		}
	})
	if !hitsBefore {
		t.Error("read before fence should hit the (possibly stale) copy")
	}
	if !missesAfter {
		t.Error("read after fence should re-fetch")
	}
}

func TestFenceIsNoOpUnderEagerProtocols(t *testing.T) {
	for _, proto := range []string{"sc", "erc"} {
		m := newTest(t, proto, 2, nil)
		a := m.AllocF64(1)
		m.Run(func(p *Proc) {
			if p.ID() != 0 {
				return
			}
			p.ReadF64(a.At(0))
			before := m.Stats.Procs[0].SyncStall
			p.Fence()
			if m.Stats.Procs[0].SyncStall != before {
				t.Errorf("%s: fence stalled", proto)
			}
		})
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	if _, err := New(config.Default(4), "mosi"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default(4)
	cfg.LineSize = 10
	if _, err := New(cfg, "lrc"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFootprintGrows(t *testing.T) {
	m := newTest(t, "lrc", 2, nil)
	before := m.Footprint()
	m.AllocF64(1024)
	if m.Footprint() <= before {
		t.Fatal("footprint did not grow")
	}
}

func TestProcNowAdvances(t *testing.T) {
	m := newTest(t, "lrc", 2, nil)
	m.Run(func(p *Proc) {
		t0 := p.Now()
		p.Compute(100)
		if p.Now() != t0+100 {
			t.Errorf("Now advanced by %d, want 100", p.Now()-t0)
		}
	})
}
func TestFirstTouchPlacement(t *testing.T) {
	m := newTest(t, "lrc", 4, func(c *config.Config) { c.FirstTouch = true })
	a := m.AllocF64(4 * m.Cfg.PageSize / 8) // four pages
	ps := uint64(m.Cfg.PageSize)
	ls := uint64(m.Cfg.LineSize)
	m.Run(func(p *Proc) {
		// Processor i touches page i first (staggered to make the
		// interleaving deterministic regardless of spawn order).
		p.Compute(uint64(p.ID()) + 1)
		p.ReadF64(a.At(p.ID() * int(ps/8)))
	})
	for pg := 0; pg < 4; pg++ {
		block := (a.At(pg * int(ps/8))) / ls
		if got := m.Env.HomeOf(block); got != pg {
			t.Errorf("page %d homed at %d, want first-toucher %d", pg, got, pg)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	m := newTest(t, "lrc-ext", 4, nil)
	if m.Protocol() != "lrc-ext" {
		t.Fatalf("Protocol() = %q", m.Protocol())
	}
	a := m.AllocF64(3)
	b := m.AllocI64(5)
	if a.Len() != 3 || b.Len() != 5 {
		t.Fatal("array Len wrong")
	}
	m.Run(func(p *Proc) {
		if p.NProcs() != 4 {
			t.Errorf("NProcs = %d", p.NProcs())
		}
		if p.Machine() != m {
			t.Error("Machine() mismatch")
		}
	})
	if s := m.DumpState(); s != "" {
		t.Fatalf("quiescent machine dumped state: %q", s)
	}
}

func TestContentionReport(t *testing.T) {
	m := newTest(t, "erc", 4, nil)
	a := m.AllocF64(4)
	m.Run(func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.WriteF64(a.At(i%4), float64(i)) // contended single block
		}
	})
	rep := m.ContentionReport()
	for _, want := range []string{"protocol processor", "memory module", "local bus", "network ports", "hottest node"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTrafficReport(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(4)
	b := m.NewBarrier(4)
	m.Run(func(p *Proc) {
		p.WriteF64(a.At(p.ID()), 1)
		p.Barrier(b)
		p.ReadF64(a.At((p.ID() + 1) % 4))
	})
	rep := m.TrafficReport()
	for _, want := range []string{"ReadReq", "WriteReq", "Notice", "BarArrive", "WriteThrough"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("traffic report missing %q:\n%s", want, rep)
		}
	}
}
