package machine

import (
	"fmt"
	"testing"

	"lazyrc/internal/mesh"
	"lazyrc/internal/protocol"
)

// TestRacyCountersERC reproduces mp3d's unsynchronized cell tallies: all
// processors read-modify-write the same block with no locks. The eager
// protocol must chase ownership around without losing a grant.
func TestRacyCountersERC(t *testing.T) {
	for _, proto := range []string{"sc", "erc"} {
		m := newTest(t, proto, 8, nil)
		a := m.AllocI64(8)
		trace := make([]string, 0, 4096)
		if testing.Verbose() {
			orig := m.Nodes // capture for homes
			_ = orig
			m.Net.Trace = func(msg mesh.Msg) {
				trace = append(trace, fmt.Sprintf("%6d %d->%d %v blk%d arg%d aux%d",
					m.Eng.Now(), msg.Src, msg.Dst, protocol.MsgKind(msg.Kind), msg.Addr, msg.Arg, msg.Aux))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					for _, l := range trace {
						t.Log(l)
					}
					t.Fatalf("%s: %v", proto, r)
				}
			}()
			m.Run(func(p *Proc) {
				for i := 0; i < 50; i++ {
					idx := (p.ID() + i) % 8
					v := p.ReadI64(a.At(idx))
					p.WriteI64(a.At(idx), v+1)
					w := p.ReadI64(a.At(0)) // hot word everyone fights over
					p.WriteI64(a.At(0), w+1)
					p.Compute(uint64(p.ID()))
				}
			})
		}()
		if err := m.CheckQuiescent(); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}
