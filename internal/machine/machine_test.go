package machine

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/stats"
)

// newTest builds a machine with invariant checking on.
func newTest(t *testing.T, proto string, procs int, mut func(*config.Config)) *Machine {
	t.Helper()
	cfg := config.Default(procs)
	cfg.CheckInvariants = true
	if mut != nil {
		mut(&cfg)
	}
	m, err := New(cfg, proto)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllocatorAlignmentAndGrowth(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(3)
	b := m.AllocF64(5)
	if a.At(0)%uint64(m.Cfg.LineSize) != 0 || b.At(0)%uint64(m.Cfg.LineSize) != 0 {
		t.Fatal("arrays not line-aligned")
	}
	if b.At(0) < a.At(2)+8 {
		t.Fatal("allocations overlap")
	}
	a.Poke(2, 3.5)
	if a.Peek(2) != 3.5 {
		t.Fatal("poke/peek roundtrip failed")
	}
	i := m.AllocI64(4)
	i.Poke(0, -42)
	if i.Peek(0) != -42 {
		t.Fatal("int64 roundtrip failed")
	}
}

func TestAllocatorBoundsPanic(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	a.At(2)
}

func TestHomeAssignmentInterleavesPages(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	ps := uint64(m.Cfg.PageSize)
	ls := uint64(m.Cfg.LineSize)
	for page := uint64(0); page < 8; page++ {
		block := page * ps / ls
		if got := m.Env.HomeOf(block); got != int(page%4) {
			t.Fatalf("page %d homed at %d, want %d", page, got, page%4)
		}
	}
}

// TestPaperCacheFill272 pins the §3 worked example: a read miss to a home
// 10 hops away costs 30 (request) + 84 (memory) + 94 (data return) + 64
// (local bus fill) = 272 cycles, for every protocol (directory processing
// hides behind the memory access).
func TestPaperCacheFill272(t *testing.T) {
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		m := newTest(t, proto, 64, nil)
		// An address homed at node 59 = (3,7): 10 hops from node 0.
		addr := uint64(59) * uint64(m.Cfg.PageSize)
		m.Alloc(60*m.Cfg.PageSize, true) // ensure backing covers it
		m.Run(func(p *Proc) {
			if p.ID() != 0 {
				return
			}
			p.ReadF64(addr)
		})
		if got := m.Stats.Procs[0].ReadStall; got != 272 {
			t.Errorf("%s: read miss stall = %d cycles, want 272", proto, got)
		}
		if m.Stats.Procs[0].Misses[stats.Cold] != 1 {
			t.Errorf("%s: cold miss not recorded", proto)
		}
	}
}

func TestReadHitCostsNoStall(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(1)
	m.Run(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		p.ReadF64(a.At(0))
		before := m.Stats.Procs[0].ReadStall
		for i := 0; i < 100; i++ {
			p.ReadF64(a.At(0))
		}
		if m.Stats.Procs[0].ReadStall != before {
			t.Error("read hits accrued stall")
		}
	})
	ps := &m.Stats.Procs[0]
	if ps.Reads != 101 {
		t.Fatalf("reads = %d, want 101", ps.Reads)
	}
	if ps.TotalMisses() != 1 {
		t.Fatalf("misses = %d, want 1", ps.TotalMisses())
	}
}

// TestWriteStallByProtocol: SC stalls on every write to a new block; the
// relaxed protocols buffer the write and keep computing.
func TestWriteStallByProtocol(t *testing.T) {
	for _, tc := range []struct {
		proto     string
		wantStall bool
	}{
		{"sc", true},
		{"erc", false},
		{"lrc", false},
		{"lrc-ext", false},
	} {
		m := newTest(t, tc.proto, 16, nil)
		a := m.AllocF64(1)
		m.Run(func(p *Proc) {
			if p.ID() != 0 {
				return
			}
			p.WriteF64(a.At(0), 1.0)
		})
		st := m.Stats.Procs[0].WriteStall
		if tc.wantStall && st == 0 {
			t.Errorf("%s: single write did not stall", tc.proto)
		}
		if !tc.wantStall && st != 0 {
			t.Errorf("%s: single write stalled %d cycles", tc.proto, st)
		}
	}
}

// TestLockMutualExclusion: concurrent lock-protected increments must all
// land, under every protocol — the protocols must not corrupt a properly
// synchronized computation.
func TestLockMutualExclusion(t *testing.T) {
	const perProc = 5
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		m := newTest(t, proto, 8, nil)
		ctr := m.AllocI64(1)
		l := m.NewLock()
		m.Run(func(p *Proc) {
			for i := 0; i < perProc; i++ {
				p.Acquire(l)
				v := p.ReadI64(ctr.At(0))
				p.Compute(10)
				p.WriteI64(ctr.At(0), v+1)
				p.Release(l)
			}
		})
		if got := ctr.Peek(0); got != 8*perProc {
			t.Errorf("%s: counter = %d, want %d", proto, got, 8*perProc)
		}
		if err := m.CheckQuiescent(); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

// TestFlagProducerConsumer: a consumer that waits on a flag must observe
// every word the producer wrote before setting it.
func TestFlagProducerConsumer(t *testing.T) {
	const nvals = 64
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		m := newTest(t, proto, 4, nil)
		a := m.AllocF64(nvals)
		f := m.NewFlag()
		bad := -1
		m.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				for i := 0; i < nvals; i++ {
					p.WriteF64(a.At(i), float64(i)+0.5)
				}
				p.SetFlag(f)
			case 1:
				p.WaitFlag(f)
				for i := 0; i < nvals; i++ {
					if p.ReadF64(a.At(i)) != float64(i)+0.5 {
						bad = i
					}
				}
			}
		})
		if bad >= 0 {
			t.Errorf("%s: consumer read wrong value at %d", proto, bad)
		}
	}
}

// TestBarrierPhases: alternating write/read phases across a barrier stay
// coherent under every protocol.
func TestBarrierPhases(t *testing.T) {
	const procs, phases = 4, 3
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		m := newTest(t, proto, procs, nil)
		a := m.AllocF64(procs)
		b := m.NewBarrier(procs)
		ok := true
		m.Run(func(p *Proc) {
			me := p.ID()
			for ph := 0; ph < phases; ph++ {
				p.WriteF64(a.At(me), float64(ph*100+me))
				p.Barrier(b)
				for q := 0; q < procs; q++ {
					if p.ReadF64(a.At(q)) != float64(ph*100+q) {
						ok = false
					}
				}
				p.Barrier(b)
			}
		})
		if !ok {
			t.Errorf("%s: stale value observed across barrier", proto)
		}
		if err := m.CheckQuiescent(); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

// TestDeterminism: identical workloads produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		m := newTest(t, "lrc", 8, nil)
		a := m.AllocF64(256)
		l := m.NewLock()
		b := m.NewBarrier(8)
		m.Run(func(p *Proc) {
			for i := 0; i < 64; i++ {
				idx := (i*7 + p.ID()*13) % 256
				p.WriteF64(a.At(idx), float64(idx))
				p.ReadF64(a.At((idx + 31) % 256))
			}
			p.Acquire(l)
			p.WriteF64(a.At(0), 1)
			p.Release(l)
			p.Barrier(b)
		})
		return m.Stats.ExecutionTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic execution: %d vs %d cycles", a, b)
	}
}
