package machine

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/directory"
	"lazyrc/internal/protocol"
	"lazyrc/internal/stats"
)

// TestFalseSharingPingPong is the headline behavioral difference: two
// processors writing disjoint words of one block. Under ERC the block
// ping-pongs (every burst re-misses); under LRC both hold writable
// copies concurrently and misses stay near zero after startup.
func TestFalseSharingPingPong(t *testing.T) {
	const rounds = 20
	missesFor := func(proto string) uint64 {
		m := newTest(t, proto, 4, nil)
		a := m.AllocF64(2) // same cache line
		b := m.NewBarrier(4)
		m.Run(func(p *Proc) {
			if p.ID() > 1 {
				return
			}
			for r := 0; r < rounds; r++ {
				p.WriteF64(a.At(p.ID()), float64(r))
				p.Compute(500)
			}
			_ = b
		})
		return m.Stats.Procs[0].TotalMisses() + m.Stats.Procs[1].TotalMisses()
	}
	erc := missesFor("erc")
	lrc := missesFor("lrc")
	if lrc*3 > erc {
		t.Errorf("false sharing: lrc misses = %d not ≪ erc misses = %d", lrc, erc)
	}
}

// TestWeakStateLifecycle scripts the directory through the §2 state
// diagram: two writers make a block weak; acquire-time invalidations
// revert it toward uncached.
func TestWeakStateLifecycle(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(2)
	l := m.NewLock()
	b := m.NewBarrier(4)
	block := a.At(0) / uint64(m.Cfg.LineSize)
	home := m.Env.HomeOf(block)

	var stateAfterWrites, stateAfterAcquires directory.State
	m.Run(func(p *Proc) {
		if p.ID() <= 1 {
			p.WriteF64(a.At(p.ID()), 1.0) // both write the same block
		}
		// Let the write requests and notices reach the home; Compute does
		// not carry acquire semantics, so pending invalidations stay put.
		p.Compute(20000)
		if p.ID() == 0 {
			e := m.Nodes[home].Dir.Peek(block)
			if e != nil {
				stateAfterWrites = e.State
			}
		}
		p.Barrier(b)
		// Acquire/release forces pending invalidations to process.
		p.Acquire(l)
		p.Release(l)
		p.Compute(20000) // let the invalidation notifications land
		p.Barrier(b)
		if p.ID() == 0 {
			e := m.Nodes[home].Dir.Peek(block)
			if e != nil {
				stateAfterAcquires = e.State
			}
		}
	})
	if stateAfterWrites != directory.Weak {
		t.Errorf("after two writers: state = %v, want WEAK", stateAfterWrites)
	}
	if stateAfterAcquires == directory.Weak {
		t.Errorf("after acquires: state still WEAK")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestNoticeCountsRecorded: a write to a block shared by readers sends a
// notice to each of them under LRC.
func TestNoticeCountsRecorded(t *testing.T) {
	m := newTest(t, "lrc", 8, nil)
	a := m.AllocF64(1)
	b := m.NewBarrier(8)
	m.Run(func(p *Proc) {
		p.ReadF64(a.At(0)) // everyone becomes a sharer
		p.Barrier(b)
		if p.ID() == 0 {
			p.WriteF64(a.At(0), 2.0) // weak transition: notices to 7 readers
		}
		p.Barrier(b)
	})
	var notices uint64
	for i := range m.Stats.Procs {
		notices += m.Stats.Procs[i].NoticesIn
	}
	if notices < 7 {
		t.Errorf("notices processed = %d, want >= 7", notices)
	}
}

// TestEvictionSweep walks a footprint larger than the cache; the
// directory must stay exact through replacement hints, and the miss
// classifier must attribute the re-walk to evictions.
func TestEvictionSweep(t *testing.T) {
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
		m := newTest(t, proto, 2, func(c *config.Config) {
			c.CacheSize = 4 * c.LineSize // four lines
		})
		words := 16 * m.Cfg.LineSize / 8 // sixteen blocks
		a := m.AllocF64(words)
		m.Run(func(p *Proc) {
			if p.ID() != 0 {
				return
			}
			wpl := m.Cfg.WordsPerLine()
			for pass := 0; pass < 2; pass++ {
				for blk := 0; blk < 16; blk++ {
					p.WriteF64(a.At(blk*wpl), float64(blk))
				}
			}
		})
		ps := &m.Stats.Procs[0]
		if ps.Misses[stats.Cold] != 16 {
			t.Errorf("%s: cold misses = %d, want 16", proto, ps.Misses[stats.Cold])
		}
		if ps.Misses[stats.Eviction] != 16 {
			t.Errorf("%s: eviction misses = %d, want 16", proto, ps.Misses[stats.Eviction])
		}
		if err := m.CheckQuiescent(); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

// TestLRCExtDefersNotices: under the lazier protocol, taking write
// permission on a read-only line sends nothing; the release pays instead.
func TestLRCExtDefersNotices(t *testing.T) {
	m := newTest(t, "lrc-ext", 4, nil)
	a := m.AllocF64(1)
	f := m.NewFlag()
	l := m.NewLock()
	var msgsAfterWrite, msgsAfterRelease uint64
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 1:
			p.ReadF64(a.At(0)) // other sharer exists, so a notice is due
			p.SetFlag(f)
		case 0:
			p.WaitFlag(f)
			p.ReadF64(a.At(0)) // fill read-only
			before, _ := m.Net.Stats()
			p.WriteF64(a.At(0), 9.9) // silent local upgrade
			p.Compute(1)
			after, _ := m.Net.Stats()
			msgsAfterWrite = after - before
			p.Acquire(l)
			p.Release(l) // release posts the deferred notice
			done, _ := m.Net.Stats()
			msgsAfterRelease = done - after
		}
	})
	if msgsAfterWrite != 0 {
		t.Errorf("silent upgrade sent %d messages, want 0", msgsAfterWrite)
	}
	if msgsAfterRelease == 0 {
		t.Error("release posted no messages; deferred notice lost")
	}
}

// TestLRCWriteAfterReadTakesPermissionImmediately: the LRC write to a
// read-only line upgrades locally without waiting — the paper's
// "eliminates write-buffer stalls due to write-after-read" claim.
func TestLRCWriteAfterReadTakesPermissionImmediately(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(1)
	m.Run(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		p.ReadF64(a.At(0))
		st0 := m.Stats.Procs[0].WriteStall
		p.WriteF64(a.At(0), 1.0)
		if m.Stats.Procs[0].WriteStall != st0 {
			t.Error("write-after-read stalled under LRC")
		}
	})
	ps := &m.Stats.Procs[0]
	if ps.Misses[stats.WriteMiss] != 1 {
		t.Errorf("write-permission miss count = %d, want 1", ps.Misses[stats.WriteMiss])
	}
}

// TestThreeHopEliminatedUnderLRC: reading a block dirty at a third node
// is 3-hop under the eager protocols (home forwards to the owner) but
// 2-hop under LRC (memory answers). The LRC read should be faster.
func TestThreeHopEliminatedUnderLRC(t *testing.T) {
	stallFor := func(proto string) uint64 {
		m := newTest(t, proto, 64, nil)
		a := m.AllocF64(1)
		f := m.NewFlag()
		m.Run(func(p *Proc) {
			switch p.ID() {
			case 7:
				p.WriteF64(a.At(0), 3.0) // becomes dirty owner
				p.SetFlag(f)             // release flushes write path
			case 42:
				p.WaitFlag(f)
				before := m.Stats.Procs[42].ReadStall
				p.ReadF64(a.At(0))
				after := m.Stats.Procs[42].ReadStall
				m.Stats.Procs[42].CPU = after - before // stash for harvest
			}
		})
		return m.Stats.Procs[42].CPU
	}
	erc := stallFor("erc")
	lrc := stallFor("lrc")
	if lrc >= erc {
		t.Errorf("read of dirty block: lrc stall %d >= erc stall %d (3-hop not eliminated)", lrc, erc)
	}
}

// TestEagerForwardNackPathExercised: under write contention the eager
// protocol's forwarded requests hit owners mid-fill and must NACK and
// retry (the DASH discipline); the run must still complete with every
// lock-protected increment intact.
func TestEagerForwardNackPathExercised(t *testing.T) {
	m := newTest(t, "erc", 8, nil)
	a := m.AllocI64(2) // one hot block
	l := m.NewLock()
	const per = 12
	m.Run(func(p *Proc) {
		for i := 0; i < per; i++ {
			// Unsynchronized RMWs create ownership ping-pong (and
			// forwards that race fills) ...
			p.WriteI64(a.At(1), p.ReadI64(a.At(1))+1)
			// ... while a lock-protected counter checks correctness.
			p.Acquire(l)
			p.WriteI64(a.At(0), p.ReadI64(a.At(0))+1)
			p.Release(l)
		}
	})
	if got := a.Peek(0); got != 8*per {
		t.Fatalf("locked counter = %d, want %d", got, 8*per)
	}
	fwd := m.Net.KindCount(int(protocol.MsgFwdWrite)) + m.Net.KindCount(int(protocol.MsgFwdRead))
	if fwd == 0 {
		t.Fatal("no ownership forwards occurred; contention scenario broken")
	}
	if m.Net.KindCount(int(protocol.MsgFwdNack)) == 0 {
		t.Fatal("no forward NACKs occurred; the retry path went unexercised")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
