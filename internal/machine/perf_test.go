package machine_test

import (
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// runGaussProfiled runs tiny gauss under proto with telemetry and span
// tracing on, optionally with the wall-clock phase profiler attached.
func runGaussProfiled(t *testing.T, proto string, profiled bool) *machine.Machine {
	t.Helper()
	m, err := machine.New(config.Default(8), proto)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableMetrics(1000)
	m.EnableSpans(true, 0)
	if profiled {
		m.EnablePerf()
	}
	app := apps.NewGauss(apps.Tiny)
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPerfIsPassive is the profiler's core guarantee, the same bar
// telemetry and span tracing meet: attaching the wall-clock phase
// profiler must not change a single simulated bit. Every hook reads the
// host clock and writes only profiler-private accumulators, so execution
// time, traffic, the cycle breakdown, the telemetry digest, and the
// causal span digest must be identical with profiling on and off — for
// every protocol, since each wires its own dispatch paths.
func TestPerfIsPassive(t *testing.T) {
	for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext", "tardis", "tardis2"} {
		t.Run(proto, func(t *testing.T) {
			off := runGaussProfiled(t, proto, false)
			on := runGaussProfiled(t, proto, true)
			if got, want := on.Stats.ExecutionTime(), off.Stats.ExecutionTime(); got != want {
				t.Fatalf("perf changed execution time: %d vs %d", got, want)
			}
			mOn, bOn := on.Net.Stats()
			mOff, bOff := off.Net.Stats()
			if mOn != mOff || bOn != bOff {
				t.Fatalf("perf changed traffic: %d/%d vs %d/%d", mOn, bOn, mOff, bOff)
			}
			c1, r1, w1, s1 := on.Stats.Aggregate()
			c2, r2, w2, s2 := off.Stats.Aggregate()
			if c1 != c2 || r1 != r2 || w1 != w2 || s1 != s2 {
				t.Fatalf("perf changed cycle breakdown")
			}
			if got, want := on.Tel.Digest(), off.Tel.Digest(); got != want {
				t.Fatalf("perf changed metrics digest: %s vs %s", got, want)
			}
			if got, want := on.Causal.Digest(), off.Causal.Digest(); got != want {
				t.Fatalf("perf changed span digest: %s vs %s", got, want)
			}
			if got, want := on.MemDigest(), off.MemDigest(); got != want {
				t.Fatalf("perf changed final memory: %s vs %s", got, want)
			}
		})
	}
}

// TestPerfProfileIsPopulated: the profiled run actually measured
// something — wall time accrued, the headline phases are present, and
// the throughput rates are consistent with the simulated cycle count.
func TestPerfProfileIsPopulated(t *testing.T) {
	m := runGaussProfiled(t, "lrc", true)
	snap := m.Perf.Snapshot()
	if snap.WallNS <= 0 {
		t.Fatalf("wall time not measured: %d ns", snap.WallNS)
	}
	if snap.Cycles != m.Eng.Now() {
		t.Fatalf("snapshot cycles %d, engine at %d", snap.Cycles, m.Eng.Now())
	}
	if snap.CyclesPerSec <= 0 || snap.EventsPerSec <= 0 {
		t.Fatalf("throughput not computed: %f cycles/s, %f events/s", snap.CyclesPerSec, snap.EventsPerSec)
	}
	var sum int64
	for _, ns := range snap.Phases {
		sum += ns
	}
	if sum != snap.WallNS {
		t.Fatalf("phase sum %d != wall %d", sum, snap.WallNS)
	}
	for _, phase := range []string{"dispatch", "mesh", "protocol", "membus", "telemetry", "causal"} {
		if snap.Phases[phase] <= 0 {
			t.Fatalf("phase %q never accrued time: %v", phase, snap.Phases)
		}
	}
}
