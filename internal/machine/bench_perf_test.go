package machine_test

import (
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// protocols is every registered coherence protocol, in registry order.
var protocols = []string{"sc", "erc", "lrc", "lrc-ext", "tardis", "tardis2"}

// BenchmarkProtocolDispatch runs one full tiny gauss simulation per
// iteration, once per protocol: the end-to-end cost of the per-access
// protocol dispatch path (cache lookup, miss handling, message
// round-trips) under each coherence implementation. Compare protocols
// against each other and against prior runs with -benchmem to see where
// host time and allocations go.
//
//	go test ./internal/machine -bench ProtocolDispatch -benchtime 3x -benchmem
func BenchmarkProtocolDispatch(b *testing.B) {
	for _, proto := range protocols {
		b.Run(proto, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(config.Default(8), proto)
				if err != nil {
					b.Fatal(err)
				}
				app := apps.NewGauss(apps.Tiny)
				app.Setup(m)
				m.Run(app.Worker)
				if err := app.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimPerf pairs a profiled and an unprofiled full run, the
// overhead contract for the wall-clock phase profiler: disabled must be
// free (nil-receiver no-ops on the hot path), enabled it stays within a
// few percent (two clock reads per phase switch).
//
//	go test ./internal/machine -bench SimPerf -benchtime 5x
func BenchmarkSimPerf(b *testing.B) {
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(config.Default(8), "lrc")
				if err != nil {
					b.Fatal(err)
				}
				if mode == "enabled" {
					m.EnablePerf()
				}
				app := apps.NewGauss(apps.Tiny)
				app.Setup(m)
				m.Run(app.Worker)
				if err := app.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
