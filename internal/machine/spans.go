package machine

import (
	"lazyrc/internal/causal"
	"lazyrc/internal/protocol"
)

// EnableSpans attaches a causal span tracer to the machine. It must be
// called before Run. Like telemetry, tracing is strictly passive: the
// tracer only reads cycle stamps the timing model already computed, so
// enabling it leaves every simulated cycle, message, and stat
// bit-identical to an untraced run (pinned by TestSpansArePassive).
//
// Wired here:
//
//   - the engine's task tracer, which threads the current transaction id
//     through every scheduled event chain (Capture at At/Background,
//     Restore around execution) — the TID propagation mechanism;
//   - the mesh, which stamps each message's CT at send time and records
//     one net span per wire flight (port waits split out);
//   - the protocol Env, whose nodes open a root span per coherence
//     transaction and sync episode, bracket every CPU stall charge with
//     a stall span, and record directory / memory / bus / fan-out /
//     notice / ack service occupancy.
//
// retain selects the full span store (export + critical-path analysis);
// digest-only mode keeps just the streaming fingerprint, bounding
// memory for runner sweeps. limit caps retained spans (<=0: default).
func (m *Machine) EnableSpans(retain bool, limit int) *causal.Tracer {
	var tr *causal.Tracer
	if retain {
		tr = causal.New(limit)
	} else {
		tr = causal.NewDigest()
	}
	m.Causal = tr
	m.Eng.SetTaskTracer(tr)
	m.Net.SetCausal(tr)
	m.Env.Causal = tr
	return tr
}

// MsgKindName labels a mesh message kind for trace export.
func MsgKindName(k int) string { return protocol.MsgKind(k).String() }
