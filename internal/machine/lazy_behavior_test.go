package machine

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/directory"
)

// TestLazyReadOfDirtyNoticesWriter scripts the one read-triggered notice
// of §2: a read of a dirty block moves it to Weak and notifies the
// current writer.
func TestLazyReadOfDirtyNoticesWriter(t *testing.T) {
	m := newTest(t, "lrc", 4, nil)
	a := m.AllocF64(1)
	f := m.NewFlag()
	block := a.At(0) / uint64(m.Cfg.LineSize)
	home := m.Env.HomeOf(block)
	var state directory.State
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 1:
			p.WriteF64(a.At(0), 1.0) // sole writer: Dirty{1}
			p.Compute(5000)
			p.SetFlag(f)
			p.Compute(5000) // wait out the reader and the notice
		case 2:
			p.WaitFlag(f)
			p.ReadF64(a.At(0)) // read of dirty block
			p.Compute(5000)
			e := m.Nodes[home].Dir.Peek(block)
			if e != nil {
				state = e.State
			}
		}
	})
	if state != directory.Weak {
		t.Fatalf("state after read-of-dirty = %v, want WEAK", state)
	}
	if got := m.Stats.Procs[1].NoticesIn; got != 1 {
		t.Fatalf("writer processed %d notices, want 1", got)
	}
	// The reader must NOT have queued an invalidation — its copy is
	// fresh (see the reader-semantics note in home_lazy.go).
	if got := m.Stats.Procs[2].InvalsAtAcquire; got != 0 {
		t.Fatalf("reader performed %d acquire invalidations, want 0", got)
	}
}

// TestLazyExtEvictionPostsNotice: under the lazier protocol a silently
// upgraded block whose frame is reclaimed must post its deferred notice
// at eviction time, so the directory learns about the writer.
func TestLazyExtEvictionPostsNotice(t *testing.T) {
	m := newTest(t, "lrc-ext", 2, func(c *config.Config) {
		c.CacheSize = 2 * c.LineSize // two frames: easy to evict
	})
	lines := uint64(2)
	words := m.Cfg.WordsPerLine()
	a := m.AllocF64(int(lines+2) * words) // blocks 0..3; 0 and 2 conflict
	block := a.At(0) / uint64(m.Cfg.LineSize)
	home := m.Env.HomeOf(block)
	f := m.NewFlag()
	var writers int
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 1:
			p.ReadF64(a.At(0)) // other sharer: makes the write notice-worthy
			p.SetFlag(f)
		case 0:
			p.WaitFlag(f)
			p.ReadF64(a.At(0))       // fill RO
			p.WriteF64(a.At(0), 1.0) // silent upgrade, deferred notice
			// Touch the conflicting block: evicts block 0, forcing the
			// deferred notice out.
			p.ReadF64(a.At(2 * words))
			p.Compute(5000)
			if e := m.Nodes[home].Dir.Peek(block); e != nil {
				writers = e.Writers.Len()
			}
		}
	})
	// The eviction removed node 0 as a sharer, and the posted notice
	// registered (then deregistered) it as writer; by the end the block
	// must not still think node 0 writes it, and node 1 must have been
	// notified.
	if writers != 0 {
		t.Fatalf("writers = %d after eviction, want 0", writers)
	}
	if got := m.Stats.Procs[1].NoticesIn; got != 1 {
		t.Fatalf("reader processed %d notices, want 1", got)
	}
}

// TestLRCWriteCombiningAtHome: two writers of one block whose requests
// overlap share a single acknowledgement collection (the paper: "it
// allows us to collect acknowledgments only once when write requests for
// the same block arrive from multiple processors").
func TestLRCWriteCombiningAtHome(t *testing.T) {
	m := newTest(t, "lrc", 8, nil)
	a := m.AllocF64(8)
	bar := m.NewBarrier(8)
	m.Run(func(p *Proc) {
		p.ReadF64(a.At(0)) // everyone shares the block
		p.Barrier(bar)
		if p.ID() < 4 {
			p.WriteF64(a.At(p.ID()), float64(p.ID())) // four concurrent writers
		}
		p.Barrier(bar)
	})
	// Every sharer must have been notified exactly once for the weak
	// episode, not once per writer.
	var notices uint64
	for i := range m.Stats.Procs {
		notices += m.Stats.Procs[i].NoticesIn
	}
	// 8 sharers; each non-writer gets 1 notice; each writer learns from
	// its own reply or a notice. At most one notice per processor.
	if notices > 8 {
		t.Fatalf("notices = %d; collection not combined (> one per sharer)", notices)
	}
	if notices < 4 {
		t.Fatalf("notices = %d; sharers were never notified", notices)
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseWaitsForNoticeAcks: an LRC release may not complete before
// the home has collected the acknowledgements for the releaser's write
// notices (§2's "globally performed" condition).
func TestReleaseWaitsForNoticeAcks(t *testing.T) {
	m := newTest(t, "lrc", 8, nil)
	a := m.AllocF64(1)
	bar := m.NewBarrier(8)
	l := m.NewLock()
	m.Run(func(p *Proc) {
		p.ReadF64(a.At(0)) // 8 sharers
		p.Barrier(bar)
		if p.ID() == 0 {
			p.WriteF64(a.At(0), 1.0) // notices to 7 sharers
			p.Acquire(l)
			p.Release(l) // must stall until the write is globally performed
		}
		p.Barrier(bar)
	})
	if m.Stats.Procs[0].SyncStall == 0 {
		t.Fatal("release completed without any synchronization wait")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
