package machine_test

import (
	"testing"

	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// TestScheduleUnchangedWithInjectionDisabled pins exact end-to-end numbers
// for gauss (tiny, 8 procs) under every protocol. These values were
// recorded before the chaos harness (fault injection, TID stamping,
// dedup, background events) was added: with no fault plan configured, the
// simulated schedule must remain bit-identical to that baseline — the
// harness must cost nothing and change nothing when disabled. Setting a
// Seed must not perturb the schedule either, since the simulation itself
// consumes no randomness.
func TestScheduleUnchangedWithInjectionDisabled(t *testing.T) {
	baseline := map[string]struct {
		time, msgs, bytes, cpu, rd, wr, sy uint64
	}{
		"sc":      {41323, 2011, 65536, 23460, 214119, 17606, 72452},
		"erc":     {41158, 1971, 64512, 23460, 221703, 0, 81154},
		"lrc":     {42320, 2220, 63256, 23460, 239853, 0, 72945},
		"lrc-ext": {31422, 1419, 46640, 23460, 161043, 0, 64519},
	}
	for proto, want := range baseline {
		t.Run(proto, func(t *testing.T) {
			cfg := config.Default(8)
			cfg.Seed = 12345 // must be inert without a fault plan
			m, err := machine.New(cfg, proto)
			if err != nil {
				t.Fatal(err)
			}
			app := apps.NewGauss(apps.Tiny)
			app.Setup(m)
			m.Run(app.Worker)
			if err := app.Verify(); err != nil {
				t.Fatal(err)
			}
			cpu, rd, wr, sy := m.Stats.Aggregate()
			msgs, bytes := m.Net.Stats()
			got := [7]uint64{m.Stats.ExecutionTime(), msgs, bytes, cpu, rd, wr, sy}
			exp := [7]uint64{want.time, want.msgs, want.bytes, want.cpu, want.rd, want.wr, want.sy}
			if got != exp {
				t.Fatalf("schedule drifted from pre-harness baseline:\n got time=%d msgs=%d bytes=%d cpu=%d rd=%d wr=%d sy=%d\nwant time=%d msgs=%d bytes=%d cpu=%d rd=%d wr=%d sy=%d",
					got[0], got[1], got[2], got[3], got[4], got[5], got[6],
					exp[0], exp[1], exp[2], exp[3], exp[4], exp[5], exp[6])
			}
		})
	}
}

// TestFaultedRunsReplayBySeed verifies the other side of determinism:
// with a fault plan attached, the same seed reproduces the identical
// faulted schedule, and a different seed produces a different one.
func TestFaultedRunsReplayBySeed(t *testing.T) {
	run := func(seed uint64) (uint64, uint64) {
		cfg := config.Default(8)
		cfg.Seed = seed
		cfg.FaultPlan = "delay=0.1:1:64,dup=0.05:32,reorder=0.03:48"
		m, err := machine.New(cfg, "lrc")
		if err != nil {
			t.Fatal(err)
		}
		app := apps.NewGauss(apps.Tiny)
		app.Setup(m)
		m.Run(app.Worker)
		if err := app.Verify(); err != nil {
			t.Fatal(err)
		}
		msgs, _ := m.Net.Stats()
		return m.Stats.ExecutionTime(), msgs
	}
	t1, m1 := run(7)
	t2, m2 := run(7)
	if t1 != t2 || m1 != m2 {
		t.Fatalf("seed 7 runs differ: time %d vs %d, msgs %d vs %d", t1, t2, m1, m2)
	}
	t3, m3 := run(8)
	if t1 == t3 && m1 == m3 {
		t.Fatal("seeds 7 and 8 produced identical faulted schedules — injection looks inert")
	}
}
