package machine

import (
	"fmt"

	"lazyrc/internal/perf"
	"lazyrc/internal/protocol"
	"lazyrc/internal/telemetry"
)

// EnableMetrics attaches a telemetry registry to the machine, sampling
// every interval simulated cycles. It must be called before Run. The
// sampling tick is a background engine event — it never keeps the
// simulation alive and never alters the timing of regular events, so
// enabling metrics leaves every simulated cycle untouched and the
// resulting series is a pure function of the run (byte-identical across
// reruns, worker counts, and machines at a fixed seed).
//
// Sources wired here:
//
//   - stall.{cpu,read,write,sync}: interval deltas of the four
//     machine-wide cycle categories (the paper's cost breakdown).
//   - net.{msgs,bytes}: interval deltas of network traffic.
//   - net.{in_busy,out_busy}.NNN: per-node NIC-port occupancy deltas —
//     the link-utilization heatmap.
//   - net.backlog.NNN: cycles of work already committed to each node's
//     NIC ports at the sample point (queue depth).
//   - wb.depth.NNN / cb.depth.NNN: write-buffer and coalescing-buffer
//     occupancy at the sample point.
//   - proto.pending_notices: queued acquire-time invalidations plus
//     unposted (delayed) write notices, machine-wide.
//   - proto.acquire_waiters: processors blocked in a synchronization
//     acquire at the sample point.
//   - dir.{uncached,shared,dirty,weak}: directory state mix over all
//     blocks with records.
//   - net.lat.KIND histograms: send→deliver latency per message kind.
//   - wb.residency / cb.residency histograms: cycles an entry waits in
//     the write or coalescing buffer before draining.
//   - net.{retx,dropped,dup_suppressed} (fault injection only): interval
//     deltas of transport retransmissions, total losses (injector drops
//     plus outage and brownout losses), and receiver-side suppression;
//     net.retx.{depth,lat} histograms record each recovered message's
//     backoff depth and first-send→delivery latency. Registered only
//     when the transport is active so the zero-fault export shape — and
//     its pinned baseline digest — is untouched.
func (m *Machine) EnableMetrics(interval uint64) *telemetry.Registry {
	if interval == 0 {
		interval = 5000
	}
	reg := telemetry.NewRegistry(interval)
	m.Tel = reg
	reg.SetMeta("protocol", m.protoName)
	reg.SetMeta("procs", fmt.Sprintf("%d", m.Cfg.Procs))
	reg.SetMeta("line_size", fmt.Sprintf("%d", m.Cfg.LineSize))
	reg.SetMeta("seed", fmt.Sprintf("%d", m.Cfg.Seed))

	m.Net.EnableTelemetry(reg, func(k int) string { return protocol.MsgKind(k).String() })

	clock := func() uint64 { return m.Eng.Now() }
	wbResid := reg.Histogram("wb.residency")
	cbResid := reg.Histogram("cb.residency")
	for _, n := range m.Nodes {
		n.WB.EnableTelemetry(clock, wbResid)
		n.CB.EnableTelemetry(clock, cbResid)
	}

	stCPU := reg.Series("stall.cpu", telemetry.Delta)
	stRead := reg.Series("stall.read", telemetry.Delta)
	stWrite := reg.Series("stall.write", telemetry.Delta)
	stSync := reg.Series("stall.sync", telemetry.Delta)
	netMsgs := reg.Series("net.msgs", telemetry.Delta)
	netBytes := reg.Series("net.bytes", telemetry.Delta)
	pendNotices := reg.Series("proto.pending_notices", telemetry.Level)
	acqWaiters := reg.Series("proto.acquire_waiters", telemetry.Level)
	dirUncached := reg.Series("dir.uncached", telemetry.Level)
	dirShared := reg.Series("dir.shared", telemetry.Level)
	dirDirty := reg.Series("dir.dirty", telemetry.Level)
	dirWeak := reg.Series("dir.weak", telemetry.Level)

	// Transport series exist only when the reliable-delivery transport is
	// engaged (a fault injector is attached): the registry digest folds
	// every registered instrument, so the zero-fault export — and its
	// pinned baseline digest — must not change shape.
	var trRetx, trDropped, trSuppressed *telemetry.Series
	if m.Net.TransportActive() {
		trRetx = reg.Series("net.retx", telemetry.Delta)
		trDropped = reg.Series("net.dropped", telemetry.Delta)
		trSuppressed = reg.Series("net.dup_suppressed", telemetry.Delta)
	}

	nodes := len(m.Nodes)
	inBusy := make([]*telemetry.Series, nodes)
	outBusy := make([]*telemetry.Series, nodes)
	backlog := make([]*telemetry.Series, nodes)
	wbDepth := make([]*telemetry.Series, nodes)
	cbDepth := make([]*telemetry.Series, nodes)
	for i := 0; i < nodes; i++ {
		inBusy[i] = reg.Series(fmt.Sprintf("net.in_busy.%03d", i), telemetry.Delta)
		outBusy[i] = reg.Series(fmt.Sprintf("net.out_busy.%03d", i), telemetry.Delta)
		backlog[i] = reg.Series(fmt.Sprintf("net.backlog.%03d", i), telemetry.Level)
		wbDepth[i] = reg.Series(fmt.Sprintf("wb.depth.%03d", i), telemetry.Level)
		cbDepth[i] = reg.Series(fmt.Sprintf("cb.depth.%03d", i), telemetry.Level)
	}

	reg.OnSample(func() {
		cpu, read, write, sync := m.Stats.Aggregate()
		stCPU.Set(float64(cpu))
		stRead.Set(float64(read))
		stWrite.Set(float64(write))
		stSync.Set(float64(sync))
		msgs, bytes := m.Net.Stats()
		netMsgs.Set(float64(msgs))
		netBytes.Set(float64(bytes))
		if trRetx != nil {
			retx, _, outage, brown, _, _ := m.Net.TransportStats()
			_, _, _, injDropped := m.Net.FaultStats()
			trRetx.Set(float64(retx))
			trDropped.Set(float64(injDropped + outage + brown))
			trSuppressed.Set(float64(m.DuplicatesIgnored()))
		}

		now := m.Eng.Now()
		var notices, waiters int
		var dir [4]int
		for i, n := range m.Nodes {
			in, out := m.Net.PortBusyInOut(n.ID)
			inBusy[i].Set(float64(in))
			outBusy[i].Set(float64(out))
			bin, bout := m.Net.PortBacklog(n.ID, now)
			backlog[i].Set(float64(bin + bout))
			wbDepth[i].Set(float64(n.WB.Len()))
			cbDepth[i].Set(float64(n.CB.Len()))
			notices += n.PendingInvals() + n.DelayedNotices()
			if n.SyncWaiting() {
				waiters++
			}
			c := n.Dir.StateCounts()
			for s := range dir {
				dir[s] += c[s]
			}
		}
		pendNotices.Set(float64(notices))
		acqWaiters.Set(float64(waiters))
		dirUncached.Set(float64(dir[0]))
		dirShared.Set(float64(dir[1]))
		dirDirty.Set(float64(dir[2]))
		dirWeak.Set(float64(dir[3]))
	})

	// Self-rescheduling background tick: background events never keep the
	// simulation alive, so the tick dies with the last regular event and
	// Run takes the closing sample. Sampling wall time is charged to the
	// telemetry perf phase (m.Perf reads the profiler set by a later
	// EnablePerf; nil stays a no-op).
	var tick func()
	tick = func() {
		prev := m.Perf.Enter(perf.PhaseTelemetry)
		reg.Sample(m.Eng.Now())
		m.Perf.Exit(prev)
		m.Eng.Background(m.Eng.Now()+interval, tick)
	}
	m.Eng.Background(interval, tick)
	return reg
}
