package apps

import (
	"fmt"
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
	"lazyrc/internal/mesh"
	"lazyrc/internal/protocol"
)

// TestMp3dERCTrace is a diagnostic harness: it runs mp3d under ERC with a
// message trace and, on deadlock, prints the tail of the trace for the
// blocks that still have outstanding transactions.
func TestMp3dERCTrace(t *testing.T) {
	app := NewMp3d(Tiny)
	cfg := config.Default(8)
	cfg.CheckInvariants = true
	m, err := machine.New(cfg, "erc")
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	m.Net.Trace = func(msg mesh.Msg) {
		trace = append(trace, fmt.Sprintf("%7d %d->%d %-12v blk%-5d arg%d aux%d",
			m.Eng.Now(), msg.Src, msg.Dst, protocol.MsgKind(msg.Kind), msg.Addr, msg.Arg, msg.Aux))
	}
	defer func() {
		if r := recover(); r != nil {
			// Print the last messages mentioning the stuck block.
			shown := 0
			for i := len(trace) - 1; i >= 0 && shown < 60; i-- {
				if containsBlk(trace[i], "blk64 ") {
					t.Log(trace[i])
					shown++
				}
			}
			t.Fatalf("deadlock: %v", r)
		}
	}()
	app.Setup(m)
	m.Run(app.Worker)
}

func containsBlk(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
