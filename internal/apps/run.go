package apps

import (
	"fmt"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// Run builds a machine with the given configuration and protocol,
// executes the application on it, and verifies the result. The machine
// is returned for statistics harvesting even when verification fails.
func Run(cfg config.Config, protoName string, app App) (*machine.Machine, error) {
	m, err := machine.New(cfg, protoName)
	if err != nil {
		return nil, fmt.Errorf("apps: %w", err)
	}
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		return m, err
	}
	return m, nil
}
