package apps

import (
	"fmt"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
	"lazyrc/internal/telemetry"
)

// Run builds a machine with the given configuration and protocol,
// executes the application on it, and verifies the result. The machine
// is returned for statistics harvesting even when verification fails.
func Run(cfg config.Config, protoName string, app App) (*machine.Machine, error) {
	m, err := machine.New(cfg, protoName)
	if err != nil {
		return nil, fmt.Errorf("apps: %w", err)
	}
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		return m, err
	}
	return m, nil
}

// RunInstrumented is Run with cycle-domain telemetry enabled at the
// given sampling interval. Telemetry is passive, so the simulated run is
// identical to Run's; the registry (also available as m.Tel) additionally
// carries the interval time series and latency histograms.
func RunInstrumented(cfg config.Config, protoName string, app App, interval uint64) (*machine.Machine, *telemetry.Registry, error) {
	m, err := machine.New(cfg, protoName)
	if err != nil {
		return nil, nil, fmt.Errorf("apps: %w", err)
	}
	reg := m.EnableMetrics(interval)
	reg.SetMeta("app", app.Name())
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		return m, reg, err
	}
	return m, reg, nil
}

// RunTraced is RunInstrumented with digest-only causal span tracing on
// top: the run additionally carries a span-stream fingerprint
// (m.Causal.Digest()) without retaining the span store, keeping memory
// bounded for runner sweeps. Both instruments are passive, so the
// simulated run is still identical to Run's.
func RunTraced(cfg config.Config, protoName string, app App, interval uint64) (*machine.Machine, *telemetry.Registry, error) {
	return RunTracedWith(cfg, protoName, app, interval, nil)
}

// RunTracedWith is RunTraced with a pre-run hook called after the machine
// is fully instrumented but before the workload starts — the attachment
// point for guards (invariant auditor, liveness watchdog) that need the
// built machine. A nil preRun is RunTraced exactly.
func RunTracedWith(cfg config.Config, protoName string, app App, interval uint64, preRun func(*machine.Machine)) (*machine.Machine, *telemetry.Registry, error) {
	m, err := machine.New(cfg, protoName)
	if err != nil {
		return nil, nil, fmt.Errorf("apps: %w", err)
	}
	reg := m.EnableMetrics(interval)
	reg.SetMeta("app", app.Name())
	m.EnableSpans(false, 0)
	if preRun != nil {
		preRun(m)
	}
	app.Setup(m)
	m.Run(app.Worker)
	if err := app.Verify(); err != nil {
		return m, reg, err
	}
	return m, reg, nil
}
