package apps

import (
	"fmt"
	"math"

	"lazyrc/internal/machine"
)

// Cholesky factors a sparse symmetric positive-definite matrix. The paper
// uses the Harwell-Boeing matrix bcsstk15; as a substitution (documented
// in DESIGN.md) this implementation factors a synthetic banded SPD matrix
// of comparable character: a left-looking column algorithm in which
// processors draw columns from a lock-protected task queue and wait on
// per-column completion flags for their left dependencies. The dominant
// protocol traffic is the migratory queue counter and true sharing on
// recently finished columns — Table 2 shows cholesky with essentially no
// false sharing, which is why the lazy protocol cannot help it.
type Cholesky struct {
	n, bw int

	band machine.F64 // column k, diagonal d: band[k*(bw+1)+d] = A[k+d][k]
	next machine.I64 // task-queue head
	q    *machine.Lock
	done []machine.Flag

	want []float64
}

// NewCholesky returns the workload at the given scale. The bandwidth is
// 15, so each column occupies exactly one 128-byte line: like the
// original's supernodal columns, columns do not share cache lines, and
// cholesky shows essentially no false sharing (1.6% in Table 2) — which
// is why the lazy protocol cannot help it.
func NewCholesky(scale Scale) *Cholesky {
	n := map[Scale]int{
		Tiny:   64,
		Small:  192,
		Medium: 448,
		Paper:  3948, // bcsstk15's order
	}[scale]
	return &Cholesky{n: n, bw: 15}
}

// Name returns "cholesky".
func (c *Cholesky) Name() string { return "cholesky" }

func (c *Cholesky) at(k, d int) machine.Addr { return c.band.At(k*(c.bw+1) + d) }

// Setup generates the banded SPD matrix and the serial reference factor.
func (c *Cholesky) Setup(m *machine.Machine) {
	n, bw := c.n, c.bw
	c.band = m.AllocF64(n * (bw + 1))
	c.next = m.AllocI64(1)
	c.q = m.NewLock()
	c.done = m.NewFlags(n)

	rng := lcg(99991)
	ref := make([]float64, n*(bw+1))
	for k := 0; k < n; k++ {
		for d := 1; d <= bw && k+d < n; d++ {
			v := (rng.f64() - 0.5) / float64(bw)
			ref[k*(bw+1)+d] = v
		}
		ref[k*(bw+1)] = 2.0 + rng.f64() // strong diagonal: SPD
	}
	for i := range ref {
		c.band.Poke(i, ref[i])
	}

	// Serial left-looking factorization for the reference.
	for k := 0; k < n; k++ {
		for j := max(0, k-bw); j < k; j++ {
			f := ref[j*(bw+1)+(k-j)]
			if f == 0 {
				continue
			}
			for i := k; i <= j+bw && i < n; i++ {
				ref[k*(bw+1)+(i-k)] -= ref[j*(bw+1)+(i-j)] * f
			}
		}
		d0 := math.Sqrt(ref[k*(bw+1)])
		ref[k*(bw+1)] = d0
		for d := 1; d <= bw && k+d < n; d++ {
			ref[k*(bw+1)+d] /= d0
		}
	}
	c.want = ref
}

// Worker draws columns from the task queue, waits for each column's left
// dependencies, and factors it.
func (c *Cholesky) Worker(p *machine.Proc) {
	n, bw := c.n, c.bw
	for {
		// Draw the next column (migratory counter under a lock).
		p.Acquire(c.q)
		k := int(p.ReadI64(c.next.At(0)))
		p.WriteI64(c.next.At(0), int64(k+1))
		p.Release(c.q)
		if k >= n {
			return
		}
		// Left updates: cmod(k, j) for every finished column j that
		// reaches k.
		for j := max(0, k-bw); j < k; j++ {
			p.WaitFlag(c.done[j])
			f := p.ReadF64(c.at(j, k-j))
			if f == 0 {
				continue
			}
			for i := k; i <= j+bw && i < n; i++ {
				v := p.ReadF64(c.at(k, i-k)) - p.ReadF64(c.at(j, i-j))*f
				p.Compute(2)
				p.WriteF64(c.at(k, i-k), v)
			}
		}
		// cdiv(k): scale the column by the square root of the diagonal.
		d0 := math.Sqrt(p.ReadF64(c.at(k, 0)))
		p.Compute(20)
		p.WriteF64(c.at(k, 0), d0)
		for d := 1; d <= bw && k+d < n; d++ {
			p.WriteF64(c.at(k, d), p.ReadF64(c.at(k, d))/d0)
			p.Compute(4)
		}
		p.SetFlag(c.done[k])
	}
}

// Verify compares the factor against the serial reference exactly (the
// cmod order per column is identical).
func (c *Cholesky) Verify() error {
	for i, want := range c.want {
		got := c.band.Peek(i)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			return fmt.Errorf("cholesky: band element %d = %g, want %g", i, got, want)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
