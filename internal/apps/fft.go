package apps

import (
	"fmt"
	"math"

	"lazyrc/internal/machine"
)

// FFT computes a one-dimensional FFT on n complex points (65536 in the
// paper) with the transpose-based four-step organization the SPLASH
// program uses: the signal is a √n × √n matrix of which each processor
// owns a contiguous band of rows; processors FFT their own rows, join a
// barrier, transpose by reading the other processors' rows and writing
// their own, apply twiddle factors, and FFT rows again. All writes go to
// processor-private, line-aligned rows, so fft has essentially no false
// sharing (Table 2) — its communication is the true sharing of the
// transpose reads. Because every processor's write requests for a block
// arrive together at the barrier, fft is the one application where the
// lazier protocol's deferred notices help (§4.3).
type FFT struct {
	n, side  int
	re, im   machine.F64 // matrix A, row-major
	tre, tim machine.F64 // matrix B, transpose target
	bar      *machine.Barrier

	wantRe, wantIm []float64
}

// NewFFT returns the workload at the given scale. Sizes are perfect
// squares with power-of-two sides.
func NewFFT(scale Scale) *FFT {
	n := map[Scale]int{Tiny: 256, Small: 1024, Medium: 4096, Paper: 65536}[scale]
	side := 1
	for side*side < n {
		side *= 2
	}
	return &FFT{n: n, side: side}
}

// Name returns "fft".
func (f *FFT) Name() string { return "fft" }

// Setup allocates the matrices, fills the signal, and runs the untimed
// serial reference.
func (f *FFT) Setup(m *machine.Machine) {
	f.re = m.AllocF64(f.n)
	f.im = m.AllocF64(f.n)
	f.tre = m.AllocF64(f.n)
	f.tim = m.AllocF64(f.n)
	f.bar = m.NewBarrier(m.Cfg.Procs)
	rng := lcg(777)
	for i := 0; i < f.n; i++ {
		f.re.Poke(i, rng.f64()-0.5)
		f.im.Poke(i, rng.f64()-0.5)
	}

	snap := m.SnapshotData()
	d := m.Direct()
	f.phases(d, 0, f.side) // serial reference: one worker owning all rows
	f.wantRe = make([]float64, f.n)
	f.wantIm = make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		f.wantRe[i] = f.tre.Peek(i)
		f.wantIm[i] = f.tim.Peek(i)
	}
	m.RestoreData(snap)
}

// rowFFT runs an in-place radix-2 FFT over one row of a matrix through
// the access interface.
func (f *FFT) rowFFT(io memIO, re, im machine.F64, row int) {
	s := f.side
	base := row * s
	bits := 0
	for 1<<bits < s {
		bits++
	}
	for i := 0; i < s; i++ {
		j := reverseBits(i, bits)
		if j > i {
			ri := io.ReadF64(re.At(base + i))
			rj := io.ReadF64(re.At(base + j))
			io.WriteF64(re.At(base+i), rj)
			io.WriteF64(re.At(base+j), ri)
			ii := io.ReadF64(im.At(base + i))
			ij := io.ReadF64(im.At(base + j))
			io.WriteF64(im.At(base+i), ij)
			io.WriteF64(im.At(base+j), ii)
		}
	}
	for h := 1; h < s; h *= 2 {
		ang := -math.Pi / float64(h)
		for g := 0; g < s; g += 2 * h {
			for o := 0; o < h; o++ {
				i := base + g + o
				j := i + h
				wr, wi := math.Cos(ang*float64(o)), math.Sin(ang*float64(o))
				io.Compute(20)
				xr := io.ReadF64(re.At(i))
				xi := io.ReadF64(im.At(i))
				yr := io.ReadF64(re.At(j))
				yi := io.ReadF64(im.At(j))
				tr := yr*wr - yi*wi
				ti := yr*wi + yi*wr
				io.Compute(6)
				io.WriteF64(re.At(i), xr+tr)
				io.WriteF64(im.At(i), xi+ti)
				io.WriteF64(re.At(j), xr-tr)
				io.WriteF64(im.At(j), xi-ti)
			}
		}
	}
}

// phases runs the four-step algorithm for the row band [lo, hi). The
// caller provides barriers between phases through barrier; the serial
// reference passes the full band and no barriers fire (one party).
func (f *FFT) phases(io memIO, lo, hi int) {
	s := f.side
	// Step 1: FFT own rows of A.
	for r := lo; r < hi; r++ {
		f.rowFFT(io, f.re, f.im, r)
	}
	f.sync(io)
	// Step 2: transpose A into B, reading columns (other processors'
	// rows) and writing own rows; then apply twiddles in place.
	for r := lo; r < hi; r++ {
		for c := 0; c < s; c++ {
			vr := io.ReadF64(f.re.At(c*s + r))
			vi := io.ReadF64(f.im.At(c*s + r))
			ang := -2 * math.Pi * float64(r) * float64(c) / float64(f.n)
			wr, wi := math.Cos(ang), math.Sin(ang)
			io.Compute(22)
			io.WriteF64(f.tre.At(r*s+c), vr*wr-vi*wi)
			io.WriteF64(f.tim.At(r*s+c), vr*wi+vi*wr)
		}
	}
	f.sync(io)
	// Step 3: FFT own rows of B.
	for r := lo; r < hi; r++ {
		f.rowFFT(io, f.tre, f.tim, r)
	}
	f.sync(io)
}

// sync joins the barrier when running simulated (Proc); the untimed
// reference runs alone and skips it.
func (f *FFT) sync(io memIO) {
	if p, ok := io.(*machine.Proc); ok {
		p.Barrier(f.bar)
	}
}

// Worker runs the processor's row band.
func (f *FFT) Worker(p *machine.Proc) {
	np, me := p.NProcs(), p.ID()
	lo, hi := me*f.side/np, (me+1)*f.side/np
	f.phases(p, lo, hi)
}

// Verify compares the result (in bit-reversed-within-rows, transposed
// order — the same order the reference produced) element-wise.
func (f *FFT) Verify() error {
	for i := 0; i < f.n; i++ {
		if math.Abs(f.tre.Peek(i)-f.wantRe[i]) > 1e-9 ||
			math.Abs(f.tim.Peek(i)-f.wantIm[i]) > 1e-9 {
			return fmt.Errorf("fft: element %d = (%g,%g), want (%g,%g)",
				i, f.tre.Peek(i), f.tim.Peek(i), f.wantRe[i], f.wantIm[i])
		}
	}
	return nil
}

func reverseBits(x, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | (x>>b)&1
	}
	return r
}
