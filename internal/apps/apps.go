// Package apps re-implements the paper's seven SPLASH-suite workloads as
// real computations over the simulated shared address space: every shared
// load, store, and synchronization operation is played through the
// machine's timing model, and every application verifies its numerical
// result against a serial reference — the coherence protocols must not
// corrupt a properly synchronized program.
//
// Input sizes are configurable through Scale. The paper itself notes
// that its inputs (and its 128 KB caches) are scaled down from production
// sizes to keep simulation tractable while preserving capacity and
// conflict misses; the Tiny/Small/Medium scales here follow the same
// philosophy one step further for a pure-Go simulator, and ScalePaper
// reproduces the published input sizes.
package apps

import (
	"fmt"
	"sort"

	"lazyrc/internal/machine"
)

// App is one workload instance: Setup allocates and initializes shared
// data directly (untimed, like a program's pre-parallel phase), Worker
// runs on every simulated processor, and Verify checks the final shared
// state against a serial reference.
type App interface {
	// Name returns the workload's name as used in the paper's tables.
	Name() string
	// Setup allocates shared data on m and initializes it.
	Setup(m *machine.Machine)
	// Worker executes the workload on processor p. It is called once
	// per processor, concurrently in simulated time.
	Worker(p *machine.Proc)
	// Verify checks the computation's result, returning a description
	// of the first discrepancy.
	Verify() error
}

// Scale selects an input size.
type Scale int

const (
	// Tiny runs in milliseconds — unit tests.
	Tiny Scale = iota
	// Small runs in tenths of seconds — benchmarks and quick sweeps.
	Small
	// Medium runs in seconds — the default for regenerating the paper's
	// tables and figures.
	Medium
	// Paper uses the published input sizes (448×448 matrices, 64K-point
	// FFT, 4K bodies, 40K particles); minutes of wall-clock per run.
	Paper
)

// String returns the scale mnemonic.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale converts a mnemonic to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("apps: unknown scale %q (want tiny, small, medium, paper)", s)
}

type factory func(Scale) App

var registry = map[string]factory{
	"gauss":      func(s Scale) App { return NewGauss(s) },
	"fft":        func(s Scale) App { return NewFFT(s) },
	"blu":        func(s Scale) App { return NewBLU(s) },
	"barnes-hut": func(s Scale) App { return NewBarnes(s) },
	"cholesky":   func(s Scale) App { return NewCholesky(s) },
	"locusroute": func(s Scale) App { return NewLocus(s) },
	"mp3d":       func(s Scale) App { return NewMp3d(s) },
}

// New instantiates the named workload at the given scale.
func New(name string, scale Scale) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (want one of %v)", name, Names())
	}
	return f(scale), nil
}

// TimingDependent reports whether the workload's final memory image
// depends on the interleaving of its processors. The three
// lock-structured workloads fold acquisition order into their results —
// barnes-hut's tree shape follows body insertion order, locusroute
// commits whichever route won the cost-array race, mp3d's reservoir
// collisions depend on cell-lock order — so two runs that differ only
// in message timing produce different, equally valid images (each still
// passes Verify). The barrier-structured solvers compute the same bits
// under any timing, which makes them exact end-state oracles for fault
// injection: a faulted run must reproduce the fault-free image.
func TimingDependent(name string) bool {
	switch name {
	case "barnes-hut", "locusroute", "mp3d":
		return true
	}
	return false
}

// Names lists the workloads in the paper's table order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lcg is a tiny deterministic pseudo-random generator used for input
// generation: the same inputs on every run, independent of Go runtime
// changes to math/rand.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

// f64 returns a float in [0, 1).
func (r *lcg) f64() float64 { return float64(r.next()%(1<<52)) / (1 << 52) }

// intn returns an int in [0, n).
func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }
