package apps

import (
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/stats"
)

// TestEveryAppVerifiesUnderEveryProtocol is the central correctness gate:
// all seven workloads, at Tiny scale, must produce verified results under
// every registered protocol, leave the directories consistent, and drain
// every buffer.
func TestEveryAppVerifiesUnderEveryProtocol(t *testing.T) {
	for _, name := range Names() {
		for _, proto := range config.ProtocolNames() {
			name, proto := name, proto
			t.Run(name+"/"+proto, func(t *testing.T) {
				t.Parallel()
				app, err := New(name, Tiny)
				if err != nil {
					t.Fatal(err)
				}
				cfg := config.Default(8)
				cfg.CheckInvariants = true
				m, err := Run(cfg, proto, app)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CheckQuiescent(); err != nil {
					t.Fatal(err)
				}
				if m.Stats.ExecutionTime() == 0 {
					t.Fatal("zero execution time")
				}
				var refs uint64
				for i := range m.Stats.Procs {
					refs += m.Stats.Procs[i].Refs()
				}
				if refs == 0 {
					t.Fatal("no shared references issued")
				}
			})
		}
	}
}

// TestAppsUnderEvictionPressure re-runs the gate with caches shrunk to
// two lines' worth of data per app footprint — the regime the paper's
// evaluation uses — so eviction/invalidation/fill races get exercised.
func TestAppsUnderEvictionPressure(t *testing.T) {
	for _, name := range Names() {
		for _, proto := range config.ProtocolNames() {
			name, proto := name, proto
			t.Run(name+"/"+proto, func(t *testing.T) {
				t.Parallel()
				app, err := New(name, Tiny)
				if err != nil {
					t.Fatal(err)
				}
				cfg := config.Default(8)
				cfg.CacheSize = 2 << 10 // sixteen 128-byte lines
				cfg.CheckInvariants = true
				m, err := Run(cfg, proto, app)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CheckQuiescent(); err != nil {
					t.Fatal(err)
				}
				var evictions uint64
				for i := range m.Stats.Procs {
					evictions += m.Stats.Procs[i].Misses[stats.Eviction]
				}
				if evictions == 0 {
					t.Error("no eviction misses under a 2KB cache; pressure test ineffective")
				}
			})
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("registry has %d apps, want 7: %v", len(names), names)
	}
	if _, err := New("nosuch", Tiny); err == nil {
		t.Fatal("unknown app did not error")
	}
	for _, n := range names {
		app, err := New(n, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if app.Name() == "" {
			t.Fatalf("%s: empty Name()", n)
		}
	}
}

func TestScaleParsing(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Medium, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale did not error")
	}
}

func TestLCGDeterminism(t *testing.T) {
	a, b := lcg(42), lcg(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg not deterministic")
		}
	}
	r := lcg(7)
	for i := 0; i < 1000; i++ {
		if f := r.f64(); f < 0 || f >= 1 {
			t.Fatalf("f64 out of range: %v", f)
		}
		if n := r.intn(10); n < 0 || n >= 10 {
			t.Fatalf("intn out of range: %v", n)
		}
	}
}

// TestAppsUnderFirstTouchPlacement: every workload must still verify
// when shared pages live at their first toucher instead of being
// interleaved (the §6 locality extension).
func TestAppsUnderFirstTouchPlacement(t *testing.T) {
	for _, name := range Names() {
		for _, proto := range []string{"erc", "lrc"} {
			name, proto := name, proto
			t.Run(name+"/"+proto, func(t *testing.T) {
				t.Parallel()
				app, err := New(name, Tiny)
				if err != nil {
					t.Fatal(err)
				}
				cfg := config.Default(8)
				cfg.FirstTouch = true
				cfg.CheckInvariants = true
				m, err := Run(cfg, proto, app)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CheckQuiescent(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestQuantumInsensitivity validates the execution-driven run-ahead
// optimization: shrinking the local-time quantum (more faithful event
// interleaving, slower simulation) must not change a synchronized
// workload's results and must leave execution time within a few percent.
func TestQuantumInsensitivity(t *testing.T) {
	times := map[uint64]uint64{}
	for _, q := range []uint64{25, 200, 2000} {
		app, err := New("gauss", Tiny)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default(8)
		cfg.Quantum = q
		m, err := Run(cfg, "lrc", app)
		if err != nil {
			t.Fatalf("quantum %d: %v", q, err)
		}
		times[q] = m.Stats.ExecutionTime()
	}
	base := float64(times[25])
	for q, tm := range times {
		if d := (float64(tm) - base) / base; d > 0.05 || d < -0.05 {
			t.Errorf("quantum %d: exec %d deviates %.1f%% from fine-grain %d",
				q, tm, 100*d, times[25])
		}
	}
}
