package apps

import (
	"fmt"

	"lazyrc/internal/machine"
)

// Locus is a locusroute-style VLSI standard-cell router (the paper routes
// the Primary2.grin circuit, 3029 wires; this implementation routes a
// seeded synthetic netlist of comparable locality — see DESIGN.md). Each
// wire is drawn from a lock-protected task queue, a sweep of L- and
// Z-shaped candidate routes is costed against the shared congestion
// grid, and the chosen route's cells are incremented — deliberately without synchronization,
// exactly like the original program (§4.2 notes locusroute does not obey
// the release-consistency model). The densely shared, word-granularity
// grid makes this the second-highest false-sharing workload of Table 2.
type Locus struct {
	rows, cols, wires int

	grid   machine.I64 // congestion: cells touched by routed wires
	ex     machine.I64 // wire endpoints: x1,y1,x2,y2 quadruples
	choice machine.I64 // chosen bend column per wire (+1; 0 = unrouted)
	next   machine.I64
	q      *machine.Lock

	totalLen int // sum of route lengths (for the tolerance check)
}

// NewLocus returns the workload at the given scale.
func NewLocus(scale Scale) *Locus {
	type sz struct{ r, c, w int }
	s := map[Scale]sz{
		Tiny:   {16, 32, 48},
		Small:  {32, 64, 300},
		Medium: {64, 128, 1000},
		Paper:  {64, 256, 3029},
	}[scale]
	return &Locus{rows: s.r, cols: s.c, wires: s.w}
}

// Name returns "locusroute".
func (l *Locus) Name() string { return "locusroute" }

func (l *Locus) cell(x, y int) machine.Addr { return l.grid.At(y*l.cols + x) }

// Setup generates the netlist: wires with bounded spans, clustered the
// way placed standard cells are.
func (l *Locus) Setup(m *machine.Machine) {
	l.grid = m.AllocI64(l.rows * l.cols)
	l.ex = m.AllocI64(4 * l.wires)
	l.choice = m.AllocI64(l.wires)
	l.next = m.AllocI64(1)
	l.q = m.NewLock()

	rng := lcg(20097)
	maxSpan := l.cols / 4
	for w := 0; w < l.wires; w++ {
		x1 := rng.intn(l.cols)
		y1 := rng.intn(l.rows)
		x2 := x1 + rng.intn(2*maxSpan+1) - maxSpan
		y2 := y1 + rng.intn(l.rows/2+1) - l.rows/4
		x2 = clamp(x2, 0, l.cols-1)
		y2 = clamp(y2, 0, l.rows-1)
		l.ex.Poke(4*w+0, int64(x1))
		l.ex.Poke(4*w+1, int64(y1))
		l.ex.Poke(4*w+2, int64(x2))
		l.ex.Poke(4*w+3, int64(y2))
		l.totalLen += abs(x2-x1) + abs(y2-y1) + 1
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// pathCells visits the cells of the Z-shaped candidate route that runs
// horizontally at y1 from x1 to the bend column xm, vertically at xm,
// then horizontally at y2 to x2. xm = x2 gives the horizontal-first L;
// xm = x1 the vertical-first L. Every cell is visited exactly once.
func pathCells(x1, y1, x2, y2, xm int, visit func(x, y int)) {
	step := func(a, b int) int {
		if a < b {
			return 1
		}
		return -1
	}
	for x := x1; x != xm; x += step(x1, xm) {
		visit(x, y1)
	}
	for y := y1; y != y2; y += step(y1, y2) {
		visit(xm, y)
	}
	for x := xm; x != x2; x += step(xm, x2) {
		visit(x, y2)
	}
	visit(x2, y2)
}

// bendCandidates returns the bend columns evaluated for a wire — the two
// L routes plus interior Z bends, like the original router's cost-
// function sweep over the channel.
func bendCandidates(x1, x2 int) []int {
	cands := []int{x2, x1}
	if abs(x2-x1) >= 4 {
		lo, hi := x1, x2
		if lo > hi {
			lo, hi = hi, lo
		}
		cands = append(cands, lo+(hi-lo)/3, lo+2*(hi-lo)/3)
	}
	return cands
}

// Worker routes wires drawn from the task queue.
func (l *Locus) Worker(p *machine.Proc) {
	for {
		p.Acquire(l.q)
		w := int(p.ReadI64(l.next.At(0)))
		p.WriteI64(l.next.At(0), int64(w+1))
		p.Release(l.q)
		if w >= l.wires {
			return
		}
		x1 := int(p.ReadI64(l.ex.At(4 * w)))
		y1 := int(p.ReadI64(l.ex.At(4*w + 1)))
		x2 := int(p.ReadI64(l.ex.At(4*w + 2)))
		y2 := int(p.ReadI64(l.ex.At(4*w + 3)))

		// Cost every candidate bend against the shared congestion grid
		// (unsynchronized reads), as the original router sweeps its cost
		// function across the channel.
		cands := bendCandidates(x1, x2)
		best, bestCost := cands[0], int64(1)<<62
		for _, xm := range cands {
			var cost int64
			pathCells(x1, y1, x2, y2, xm, func(x, y int) {
				cost += 1 + p.ReadI64(l.cell(x, y))
				p.Compute(2)
			})
			if cost < bestCost {
				best, bestCost = xm, cost
			}
		}
		p.WriteI64(l.choice.At(w), int64(best)+1)

		// Occupy the chosen route (unsynchronized read-modify-writes —
		// the program's own data races).
		pathCells(x1, y1, x2, y2, best, func(x, y int) {
			p.WriteI64(l.cell(x, y), p.ReadI64(l.cell(x, y))+1)
			p.Compute(1)
		})
	}
}

// Verify checks the structural outcome: every wire chose a route, the
// grid is non-negative, and total occupancy is within the loss tolerance
// that the program's intentional data races permit.
func (l *Locus) Verify() error {
	for w := 0; w < l.wires; w++ {
		if c := l.choice.Peek(w); c < 1 || c > int64(l.cols) {
			return fmt.Errorf("locusroute: wire %d unrouted (choice %d)", w, c)
		}
	}
	var sum int64
	for i := 0; i < l.rows*l.cols; i++ {
		v := l.grid.Peek(i)
		if v < 0 {
			return fmt.Errorf("locusroute: negative occupancy at cell %d", i)
		}
		sum += v
	}
	if sum == 0 || sum > int64(l.totalLen) {
		return fmt.Errorf("locusroute: total occupancy %d outside (0, %d]", sum, l.totalLen)
	}
	// Lost updates from the (intentional) races must stay modest.
	if sum < int64(l.totalLen)*7/10 {
		return fmt.Errorf("locusroute: occupancy %d lost more than 30%% of %d", sum, l.totalLen)
	}
	return nil
}
