package apps

import (
	"fmt"
	"math"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

// BLU is the blocked right-looking LU decomposition (no pivoting) of
// Dackland et al., run on a 448×448 matrix in the paper. Blocks are
// distributed 2-D block-cyclically; each step factors the diagonal
// block, solves the row and column panels against it, and applies the
// trailing-submatrix update, with barriers between phases. Block edges
// that are not multiples of the line size make the panels a classic
// false-sharing workload (24% of its misses in Table 2).
type BLU struct {
	n, b int
	a    machine.F64
	bar  *machine.Barrier

	orig []float64
}

// NewBLU returns the workload at the given scale. Block widths are
// chosen so block edges straddle cache lines (12 or 28 doubles = 96 or
// 224 bytes against 128-byte lines), which is what gives blu its
// characteristic false sharing: neighboring blocks owned by different
// processors write disjoint words of shared lines.
func NewBLU(scale Scale) *BLU {
	type sz struct{ n, b int }
	s := map[Scale]sz{
		Tiny:   {36, 12},
		Small:  {72, 12},
		Medium: {144, 12},
		Paper:  {448, 28},
	}[scale]
	return &BLU{n: s.n, b: s.b}
}

// Name returns "blu".
func (l *BLU) Name() string { return "blu" }

// Setup allocates and fills the matrix (diagonally dominant).
func (l *BLU) Setup(m *machine.Machine) {
	n := l.n
	l.a = m.AllocF64(n * n)
	l.bar = m.NewBarrier(m.Cfg.Procs)
	l.orig = make([]float64, n*n)
	rng := lcg(424242)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.f64() - 0.5
			if i == j {
				v += float64(n)
			}
			l.a.Poke(i*n+j, v)
			l.orig[i*n+j] = v
		}
	}
}

func (l *BLU) at(i, j int) machine.Addr { return l.a.At(i*l.n + j) }

// owner maps block (bi, bj) to a processor, 2-D block-cyclically over the
// most-square processor grid.
func (l *BLU) owner(bi, bj, np int) int {
	pw, ph := config.MeshDims(np)
	return (bi%ph)*pw + bj%pw
}

// Worker runs the blocked factorization.
func (l *BLU) Worker(p *machine.Proc) {
	n, b, np, me := l.n, l.b, p.NProcs(), p.ID()
	nb := n / b
	for k := 0; k < nb; k++ {
		d := k * b
		// Phase 1: factor the diagonal block (its owner, unblocked LU).
		if l.owner(k, k, np) == me {
			for kk := d; kk < d+b; kk++ {
				piv := p.ReadF64(l.at(kk, kk))
				for i := kk + 1; i < d+b; i++ {
					f := p.ReadF64(l.at(i, kk)) / piv
					p.Compute(4)
					p.WriteF64(l.at(i, kk), f)
					for j := kk + 1; j < d+b; j++ {
						v := p.ReadF64(l.at(i, j)) - f*p.ReadF64(l.at(kk, j))
						p.Compute(2)
						p.WriteF64(l.at(i, j), v)
					}
				}
			}
		}
		p.Barrier(l.bar)

		// Phase 2: panel solves against the diagonal block.
		for bi := k + 1; bi < nb; bi++ { // column panel: L(bi,k)
			if l.owner(bi, k, np) != me {
				continue
			}
			r := bi * b
			for jj := d; jj < d+b; jj++ { // forward substitution order
				piv := p.ReadF64(l.at(jj, jj))
				for i := r; i < r+b; i++ {
					f := p.ReadF64(l.at(i, jj)) / piv
					p.Compute(4)
					p.WriteF64(l.at(i, jj), f)
					for j := jj + 1; j < d+b; j++ {
						v := p.ReadF64(l.at(i, j)) - f*p.ReadF64(l.at(jj, j))
						p.Compute(2)
						p.WriteF64(l.at(i, j), v)
					}
				}
			}
		}
		for bj := k + 1; bj < nb; bj++ { // row panel: U(k,bj)
			if l.owner(k, bj, np) != me {
				continue
			}
			c := bj * b
			for kk := d; kk < d+b; kk++ {
				for i := kk + 1; i < d+b; i++ {
					f := p.ReadF64(l.at(i, kk)) // multiplier from diagonal block
					for j := c; j < c+b; j++ {
						v := p.ReadF64(l.at(i, j)) - f*p.ReadF64(l.at(kk, j))
						p.Compute(2)
						p.WriteF64(l.at(i, j), v)
					}
				}
			}
		}
		p.Barrier(l.bar)

		// Phase 3: trailing submatrix update A(bi,bj) -= L(bi,k)·U(k,bj).
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				if l.owner(bi, bj, np) != me {
					continue
				}
				r, c := bi*b, bj*b
				for i := r; i < r+b; i++ {
					for kk := d; kk < d+b; kk++ {
						f := p.ReadF64(l.at(i, kk))
						for j := c; j < c+b; j++ {
							v := p.ReadF64(l.at(i, j)) - f*p.ReadF64(l.at(kk, j))
							p.Compute(2)
							p.WriteF64(l.at(i, j), v)
						}
					}
				}
			}
		}
		p.Barrier(l.bar)
	}
}

// Verify repeats the factorization serially in the same order.
func (l *BLU) Verify() error {
	n, b := l.n, l.b
	nb := n / b
	ref := append([]float64(nil), l.orig...)
	at := func(i, j int) int { return i*n + j }
	for k := 0; k < nb; k++ {
		d := k * b
		for kk := d; kk < d+b; kk++ {
			for i := kk + 1; i < d+b; i++ {
				f := ref[at(i, kk)] / ref[at(kk, kk)]
				ref[at(i, kk)] = f
				for j := kk + 1; j < d+b; j++ {
					ref[at(i, j)] -= f * ref[at(kk, j)]
				}
			}
		}
		for bi := k + 1; bi < nb; bi++ {
			r := bi * b
			for jj := d; jj < d+b; jj++ {
				for i := r; i < r+b; i++ {
					f := ref[at(i, jj)] / ref[at(jj, jj)]
					ref[at(i, jj)] = f
					for j := jj + 1; j < d+b; j++ {
						ref[at(i, j)] -= f * ref[at(jj, j)]
					}
				}
			}
		}
		for bj := k + 1; bj < nb; bj++ {
			c := bj * b
			for kk := d; kk < d+b; kk++ {
				for i := kk + 1; i < d+b; i++ {
					f := ref[at(i, kk)]
					for j := c; j < c+b; j++ {
						ref[at(i, j)] -= f * ref[at(kk, j)]
					}
				}
			}
		}
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				r, c := bi*b, bj*b
				for i := r; i < r+b; i++ {
					for kk := d; kk < d+b; kk++ {
						f := ref[at(i, kk)]
						for j := c; j < c+b; j++ {
							ref[at(i, j)] -= f * ref[at(kk, j)]
						}
					}
				}
			}
		}
	}
	for i := 0; i < n*n; i++ {
		got := l.a.Peek(i)
		if math.Abs(got-ref[i]) > 1e-8*math.Max(1, math.Abs(ref[i])) {
			return fmt.Errorf("blu: element %d = %g, want %g", i, got, ref[i])
		}
	}
	return nil
}
