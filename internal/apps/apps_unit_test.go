package apps

import (
	"math"
	"testing"
	"testing/quick"

	"lazyrc/internal/config"
	"lazyrc/internal/machine"
)

func newMachine(t *testing.T, procs int) *machine.Machine {
	t.Helper()
	m, err := machine.New(config.Default(procs), "lrc")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGaussVerifyCatchesCorruption: the serial-reference check must
// actually detect a wrong element, or the whole correctness gate is
// toothless.
func TestGaussVerifyCatchesCorruption(t *testing.T) {
	g := NewGauss(Tiny)
	m := newMachine(t, 4)
	g.Setup(m)
	m.Run(g.Worker)
	if err := g.Verify(); err != nil {
		t.Fatalf("clean run failed verification: %v", err)
	}
	g.a.Poke(5, g.a.Peek(5)+1e-3)
	if err := g.Verify(); err == nil {
		t.Fatal("corrupted result passed verification")
	}
}

func TestCholeskyVerifyCatchesCorruption(t *testing.T) {
	c := NewCholesky(Tiny)
	m := newMachine(t, 4)
	c.Setup(m)
	m.Run(c.Worker)
	if err := c.Verify(); err != nil {
		t.Fatalf("clean run failed verification: %v", err)
	}
	c.band.Poke(3, c.band.Peek(3)*1.01)
	if err := c.Verify(); err == nil {
		t.Fatal("corrupted factor passed verification")
	}
}

// TestCholeskyFactorIsCorrect cross-checks the banded factorization (the
// serial reference) against a dense Cholesky on a small instance:
// L·Lᵀ must reconstruct the original band.
func TestCholeskyFactorIsCorrect(t *testing.T) {
	c := NewCholesky(Tiny)
	m := newMachine(t, 4)
	c.Setup(m)
	n, bw := c.n, c.bw

	// Rebuild the original symmetric matrix from the seeded band.
	rng := lcg(99991)
	orig := make([][]float64, n)
	for i := range orig {
		orig[i] = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		for d := 1; d <= bw && k+d < n; d++ {
			v := (rng.f64() - 0.5) / float64(bw)
			orig[k+d][k] = v
			orig[k][k+d] = v
		}
		orig[k][k] = 2.0 + rng.f64()
	}

	// The reference factor is in c.want (column-band layout).
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		for d := 0; d <= bw && k+d < n; d++ {
			L[k+d][k] = c.want[k*(bw+1)+d]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += L[i][k] * L[j][k]
			}
			if math.Abs(sum-orig[i][j]) > 1e-8 {
				t.Fatalf("L·Lᵀ[%d][%d] = %g, want %g", i, j, sum, orig[i][j])
			}
		}
	}
}

func TestFFTReverseBitsProperty(t *testing.T) {
	f := func(x uint16, bits uint8) bool {
		b := int(bits)%12 + 1
		v := int(x) % (1 << b)
		return reverseBits(reverseBits(v, b), b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFFTAgainstDFT checks the full transform (via the untimed serial
// reference) against a direct O(n²) DFT.
func TestFFTAgainstDFT(t *testing.T) {
	f := NewFFT(Tiny) // 256 points
	m := newMachine(t, 4)
	f.Setup(m)

	// The four-step pipeline (row FFT, twiddled transpose, row FFT)
	// computes the DFT of the input read column-major, with X[k1 + s·k2]
	// landing at out[k1·s + k2]. Build that column-major sequence.
	n, side := f.n, f.side
	rng := lcg(777)
	inR := make([]float64, n)
	inI := make([]float64, n)
	for i := 0; i < n; i++ {
		inR[i] = rng.f64() - 0.5
		inI[i] = rng.f64() - 0.5
	}
	xr := make([]float64, n)
	xi := make([]float64, n)
	for j := 0; j < n; j++ {
		src := (j%side)*side + j/side
		xr[j] = inR[src]
		xi[j] = inI[src]
	}
	for _, k := range []int{0, 1, 7, 100, n - 1} {
		var wr, wi float64
		for i := 0; i < n; i++ {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			wr += xr[i]*c - xi[i]*s
			wi += xr[i]*s + xi[i]*c
		}
		k1, k2 := k%side, k/side
		got := f.wantRe[k1*side+k2]
		goti := f.wantIm[k1*side+k2]
		if math.Abs(got-wr) > 1e-6 || math.Abs(goti-wi) > 1e-6 {
			t.Fatalf("X[%d] = (%g,%g), DFT says (%g,%g)", k, got, goti, wr, wi)
		}
	}
}

func TestBLUOwnerCoversGrid(t *testing.T) {
	l := NewBLU(Tiny)
	nb := l.n / l.b
	for _, np := range []int{1, 2, 4, 8, 16} {
		seen := map[int]bool{}
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				o := l.owner(bi, bj, np)
				if o < 0 || o >= np {
					t.Fatalf("owner(%d,%d,%d) = %d out of range", bi, bj, np, o)
				}
				seen[o] = true
			}
		}
		pw, ph := config.MeshDims(np)
		wantOwners := min(ph, nb) * min(pw, nb)
		if len(seen) != wantOwners {
			t.Fatalf("np=%d: %d owners used, want %d", np, len(seen), wantOwners)
		}
	}
}

func TestBLUBlockEdgesStraddleLines(t *testing.T) {
	// The workload's false sharing depends on block widths that are not
	// multiples of the 128-byte line — guard the sizing.
	for _, sc := range []Scale{Tiny, Small, Medium, Paper} {
		l := NewBLU(sc)
		if (l.b*8)%128 == 0 {
			t.Errorf("%v: block width %d doubles is line-aligned; no false sharing", sc, l.b)
		}
		if l.n%l.b != 0 {
			t.Errorf("%v: block %d does not divide n %d", sc, l.b, l.n)
		}
	}
}

func TestLocusPathCells(t *testing.T) {
	type pt struct{ x, y int }
	collect := func(x1, y1, x2, y2, xm int) []pt {
		var cells []pt
		pathCells(x1, y1, x2, y2, xm, func(x, y int) {
			cells = append(cells, pt{x, y})
		})
		return cells
	}
	for _, xm := range bendCandidates(1, 4) {
		cells := collect(1, 1, 4, 3, xm)
		want := abs(4-1) + abs(3-1) + 1
		if len(cells) != want {
			t.Fatalf("bend %d: %d cells, want %d", xm, len(cells), want)
		}
		last := cells[len(cells)-1]
		if last.x != 4 || last.y != 3 {
			t.Fatalf("bend %d: path ends at (%d,%d), want (4,3)", xm, last.x, last.y)
		}
	}
	// Degenerate wire: single cell.
	if cells := collect(2, 2, 2, 2, 2); len(cells) != 1 {
		t.Fatalf("point wire visited %d cells", len(cells))
	}
}

func TestLocusPathCellsProperty(t *testing.T) {
	// Property: for every candidate bend, the route has exactly the
	// Manhattan length, stays in bounds, and ends at the target.
	f := func(a, b, c, d uint8) bool {
		x1, y1 := int(a)%32, int(b)%16
		x2, y2 := int(c)%32, int(d)%16
		for _, xm := range bendCandidates(x1, x2) {
			n := 0
			ok := true
			pathCells(x1, y1, x2, y2, xm, func(x, y int) {
				n++
				if x < 0 || x >= 32 || y < 0 || y >= 16 {
					ok = false
				}
			})
			if !ok || n != abs(x2-x1)+abs(y2-y1)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMp3dCellOfBounds(t *testing.T) {
	w := NewMp3d(Tiny)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		c := w.cellOf(x, y)
		return c >= 0 && c < w.rows*w.cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBarnesTreeMassConservation: after the (untimed) tree build, the
// root's accumulated mass must equal the sum of all body masses.
func TestBarnesTreeMassConservation(t *testing.T) {
	b := NewBarnes(Tiny)
	m := newMachine(t, 4)
	b.Setup(m)
	d := m.Direct()
	b.buildTree(d)
	var want float64
	for i := 0; i < b.nb; i++ {
		want += b.mass.Peek(i)
	}
	got := b.wmass.Peek(0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("root mass = %g, want %g", got, want)
	}
	nodes := int(b.nnodes.Peek(0))
	if nodes < 1 || nodes > b.maxNodes {
		t.Fatalf("node count %d out of bounds", nodes)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMp3dVelocitySums(t *testing.T) {
	w := NewMp3d(Tiny)
	m := newMachine(t, 4)
	w.Setup(m)
	sx, sy := w.VelocitySums()
	if sx <= 0 {
		t.Fatalf("wind-axis momentum %v should be positive", sx)
	}
	if sy != sy { // NaN guard
		t.Fatal("vy sum is NaN")
	}
}

// Every app's Verify must be able to detect corruption of its result —
// otherwise the protocol correctness gate proves nothing.
func TestBLUVerifyCatchesCorruption(t *testing.T) {
	l := NewBLU(Tiny)
	m := newMachine(t, 4)
	l.Setup(m)
	m.Run(l.Worker)
	if err := l.Verify(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	l.a.Poke(7, l.a.Peek(7)+0.5)
	if l.Verify() == nil {
		t.Fatal("corrupted LU passed verification")
	}
}

func TestFFTVerifyCatchesCorruption(t *testing.T) {
	f := NewFFT(Tiny)
	m := newMachine(t, 4)
	f.Setup(m)
	m.Run(f.Worker)
	if err := f.Verify(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	f.tre.Poke(11, f.tre.Peek(11)+1e-6)
	if f.Verify() == nil {
		t.Fatal("corrupted spectrum passed verification")
	}
}

func TestBarnesVerifyCatchesCorruption(t *testing.T) {
	b := NewBarnes(Tiny)
	m := newMachine(t, 4)
	b.Setup(m)
	m.Run(b.Worker)
	if err := b.Verify(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	b.x.Poke(3, b.x.Peek(3)+1e-6)
	if b.Verify() == nil {
		t.Fatal("corrupted positions passed verification")
	}
}

func TestLocusVerifyCatchesUnroutedWire(t *testing.T) {
	l := NewLocus(Tiny)
	m := newMachine(t, 4)
	l.Setup(m)
	m.Run(l.Worker)
	if err := l.Verify(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	l.choice.Poke(5, 0) // mark a wire unrouted
	if l.Verify() == nil {
		t.Fatal("unrouted wire passed verification")
	}
}

func TestMp3dVerifyCatchesEscape(t *testing.T) {
	w := NewMp3d(Tiny)
	m := newMachine(t, 4)
	w.Setup(m)
	m.Run(w.Worker)
	if err := w.Verify(); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	w.x.Poke(0, -50)
	if w.Verify() == nil {
		t.Fatal("escaped particle passed verification")
	}
}

// TestSynchronizedAppsAgreeAcrossProtocols: the DRF workloads must
// compute bit-identical results regardless of the protocol timing.
func TestSynchronizedAppsAgreeAcrossProtocols(t *testing.T) {
	for _, name := range []string{"gauss", "fft", "blu", "cholesky", "barnes-hut"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var want []byte
			for _, proto := range []string{"sc", "erc", "lrc", "lrc-ext"} {
				app, err := New(name, Tiny)
				if err != nil {
					t.Fatal(err)
				}
				cfg := config.Default(8)
				m, err := Run(cfg, proto, app)
				if err != nil {
					t.Fatalf("%s: %v", proto, err)
				}
				got := m.SnapshotData()
				if want == nil {
					want = got
				} else if string(got) != string(want) {
					t.Fatalf("%s: shared memory differs from sc's", proto)
				}
			}
		})
	}
}
