package apps

import (
	"fmt"
	"math"

	"lazyrc/internal/machine"
)

// Gauss performs Gaussian elimination without pivoting on an N×N matrix
// (448×448 in the paper). Rows are distributed cyclically; the producer
// of each pivot row announces it through a one-shot flag, and consumers
// eliminate their rows against it. As the paper observes (§4.2), access
// to the freshly produced pivot row is tightly synchronized and, under an
// eager protocol, suffers 3-hop transactions and contention that the lazy
// protocol's memory-answered reads avoid.
type Gauss struct {
	n     int
	a     machine.F64    // row-major N×N
	ready []machine.Flag // ready[k]: row k is final

	orig []float64 // for verification
}

// NewGauss returns the workload at the given scale.
func NewGauss(scale Scale) *Gauss {
	n := map[Scale]int{Tiny: 24, Small: 64, Medium: 128, Paper: 448}[scale]
	return &Gauss{n: n}
}

// Name returns "gauss".
func (g *Gauss) Name() string { return "gauss" }

// Setup allocates the matrix and fills it with a diagonally dominant
// random matrix (elimination without pivoting stays stable).
func (g *Gauss) Setup(m *machine.Machine) {
	n := g.n
	g.a = m.AllocF64(n * n)
	g.ready = m.NewFlags(n)
	g.orig = make([]float64, n*n)
	rng := lcg(12345)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.f64() - 0.5
			if i == j {
				v += float64(n) // diagonal dominance
			}
			g.a.Poke(i*n+j, v)
			g.orig[i*n+j] = v
		}
	}
}

func (g *Gauss) at(i, j int) machine.Addr { return g.a.At(i*g.n + j) }

// Worker eliminates the rows owned by p (row-cyclic distribution).
func (g *Gauss) Worker(p *machine.Proc) {
	n, np, me := g.n, p.NProcs(), p.ID()
	for k := 0; k < n-1; k++ {
		// Wait for the pivot row to be final. Row 0 is final at start;
		// the producer of row k set ready[k] when it finished updating it
		// in step k-1.
		if k > 0 && (k%np) != me {
			p.WaitFlag(g.ready[k])
		}
		pivot := p.ReadF64(g.at(k, k))
		for i := k + 1; i < n; i++ {
			if i%np != me {
				continue
			}
			f := p.ReadF64(g.at(i, k)) / pivot
			p.Compute(4) // divide
			p.WriteF64(g.at(i, k), f)
			for j := k + 1; j < n; j++ {
				v := p.ReadF64(g.at(i, j)) - f*p.ReadF64(g.at(k, j))
				p.Compute(2) // multiply-add
				p.WriteF64(g.at(i, j), v)
			}
			if i == k+1 {
				// Row k+1 is now final: publish it.
				p.SetFlag(g.ready[k+1])
			}
		}
	}
}

// Verify recomputes the elimination serially and compares every element.
func (g *Gauss) Verify() error {
	n := g.n
	ref := append([]float64(nil), g.orig...)
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			f := ref[i*n+k] / ref[k*n+k]
			ref[i*n+k] = f
			for j := k + 1; j < n; j++ {
				ref[i*n+j] -= f * ref[k*n+j]
			}
		}
	}
	for i := 0; i < n*n; i++ {
		got := g.a.Peek(i)
		if math.Abs(got-ref[i]) > 1e-9*math.Max(1, math.Abs(ref[i])) {
			return fmt.Errorf("gauss: element %d = %g, want %g", i, got, ref[i])
		}
	}
	return nil
}
