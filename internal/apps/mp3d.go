package apps

import (
	"fmt"
	"math"

	"lazyrc/internal/machine"
)

// Mp3d is the wind-tunnel rarefied-airflow simulation (40000 particles,
// 10 steps in the paper): particles stream through a cell grid, their
// cell occupancy and momentum records are updated without
// synchronization (the paper's prime example of a program with data
// races whose quality of solution tolerates delayed invalidations), and
// dense cells damp the particles that cross them. The racy multi-writer
// cell records give mp3d Table 2's highest miss rate, dominated by true
// sharing and write misses.
type Mp3d struct {
	np, steps  int
	rows, cols int

	x, y, vx, vy machine.F64
	// cells is the space grid; each cell holds cellWords words — an
	// occupancy count and momentum accumulators — so a 128-byte line
	// spans four cells: some false sharing between neighboring cells,
	// but the dominant communication is true sharing on the cells
	// themselves, as in Table 2.
	cells machine.I64
	bar   *machine.Barrier

	// StaleReads emulates the lazy protocol's data propagation for the
	// §4.2 quality-of-solution experiment: cell reads see the value as
	// of the previous step.
	StaleReads bool
	prevCells  []int64
}

// NewMp3d returns the workload at the given scale.
func NewMp3d(scale Scale) *Mp3d {
	type sz struct{ np, steps, rows, cols int }
	s := map[Scale]sz{
		Tiny:   {256, 3, 12, 24},
		Small:  {1000, 4, 16, 48},
		Medium: {4000, 6, 32, 96},
		Paper:  {40000, 10, 64, 192},
	}[scale]
	return &Mp3d{np: s.np, steps: s.steps, rows: s.rows, cols: s.cols}
}

// Name returns "mp3d".
func (w *Mp3d) Name() string { return "mp3d" }

// Setup seeds the particles flowing along +x. Each processor's chunk of
// particles starts in its own horizontal band of the tunnel, giving the
// cell updates the spatial locality the original program's particles
// have; the sharing concentrates at band boundaries and in cells that
// particles drift across, rather than uniformly over the whole grid.
func (w *Mp3d) Setup(m *machine.Machine) {
	w.x = m.AllocF64(w.np)
	w.y = m.AllocF64(w.np)
	w.vx = m.AllocF64(w.np)
	w.vy = m.AllocF64(w.np)
	w.cells = m.AllocI64(w.rows * w.cols * cellWords)
	w.bar = m.NewBarrier(m.Cfg.Procs)
	w.prevCells = make([]int64, w.rows*w.cols)
	rng := lcg(8086)
	nprocs := m.Cfg.Procs
	for i := 0; i < w.np; i++ {
		owner := i * nprocs / w.np
		band := float64(w.rows) / float64(nprocs)
		// Most particles sit near their owner's band so cell blocks are
		// shared by a handful of processors; an eighth roam the whole
		// tunnel, providing the long-range mixing the original's flow
		// develops.
		var y float64
		if i%8 == 0 {
			y = rng.f64() * float64(w.rows)
		} else {
			y = (float64(owner) + 2.5*rng.f64() - 0.75) * band
			if y < 0 {
				y = -y
			}
			if y > float64(w.rows) {
				y = 2*float64(w.rows) - y
			}
		}
		w.x.Poke(i, rng.f64()*float64(w.cols))
		w.y.Poke(i, y)
		w.vx.Poke(i, 0.5+rng.f64()) // wind along +x
		w.vy.Poke(i, (rng.f64()-0.5)*0.4)
	}
}

// cellWords is the per-cell record size: occupancy count plus x/y
// momentum accumulators and one reserved word.
const cellWords = 4

func (w *Mp3d) cellOf(x, y float64) int {
	cx := clamp(int(x), 0, w.cols-1)
	cy := clamp(int(y), 0, w.rows-1)
	return cy*w.cols + cx
}

// cellAt returns the address of field f of cell c.
func (w *Mp3d) cellAt(c, f int) machine.Addr { return w.cells.At(c*cellWords + f) }

// Worker advances this processor's particles (contiguous chunks, as in
// the original program) through the shared cell grid. The sharing comes
// from the cell tallies — unsynchronized read-modify-writes, with false
// sharing between adjacent cells on one line — and from particles near
// chunk boundaries.
func (w *Mp3d) Worker(p *machine.Proc) {
	nprocs, me := p.NProcs(), p.ID()
	lo, hi := me*w.np/nprocs, (me+1)*w.np/nprocs
	const dt = 0.4
	for s := 0; s < w.steps; s++ {
		// Reset this processor's slice of the cell grid.
		ncells := w.rows * w.cols
		clo, chi := me*ncells/nprocs, (me+1)*ncells/nprocs
		for c := clo; c < chi; c++ {
			if w.StaleReads {
				w.prevCells[c] = w.cells.Peek(c * cellWords)
			}
			p.WriteI64(w.cellAt(c, 0), 0)
			p.WriteI64(w.cellAt(c, 1), 0)
			p.WriteI64(w.cellAt(c, 2), 0)
		}
		p.Barrier(w.bar)

		// Move particles; bounce off the tunnel walls; recycle at the
		// outflow; tally cell occupancy without synchronization.
		for i := lo; i < hi; i++ {
			x := p.ReadF64(w.x.At(i)) + p.ReadF64(w.vx.At(i))*dt
			y := p.ReadF64(w.y.At(i)) + p.ReadF64(w.vy.At(i))*dt
			if y < 0 {
				y = -y
				p.WriteF64(w.vy.At(i), -p.ReadF64(w.vy.At(i)))
			}
			if y > float64(w.rows) {
				y = 2*float64(w.rows) - y
				p.WriteF64(w.vy.At(i), -p.ReadF64(w.vy.At(i)))
			}
			if x >= float64(w.cols) {
				x -= float64(w.cols) // wrap to the inflow
			}
			p.WriteF64(w.x.At(i), x)
			p.WriteF64(w.y.At(i), y)
			p.Compute(900) // the original's per-particle move and boundary physics
			c := w.cellOf(x, y)
			// Racy read-modify-writes of the cell record, as in the
			// original: occupancy and momentum accumulate without locks.
			p.WriteI64(w.cellAt(c, 0), p.ReadI64(w.cellAt(c, 0))+1)
			p.WriteI64(w.cellAt(c, 1), p.ReadI64(w.cellAt(c, 1))+int64(p.ReadF64(w.vx.At(i))*1024))
			p.WriteI64(w.cellAt(c, 2), p.ReadI64(w.cellAt(c, 2))+int64(p.ReadF64(w.vy.At(i))*1024))
		}
		p.Barrier(w.bar)

		// Collisions: particles in dense cells get damped. Under the
		// stale-read emulation the density is the previous step's value,
		// mimicking lazily propagated data.
		dense := int64(2 * w.np / (w.rows * w.cols))
		for i := lo; i < hi; i++ {
			c := w.cellOf(p.ReadF64(w.x.At(i)), p.ReadF64(w.y.At(i)))
			var occ int64
			if w.StaleReads {
				occ = w.prevCells[c]
				p.Compute(1)
			} else {
				occ = p.ReadI64(w.cellAt(c, 0))
			}
			p.Compute(450) // collision-candidate selection arithmetic
			if occ > dense {
				p.WriteF64(w.vx.At(i), p.ReadF64(w.vx.At(i))*0.95)
				p.WriteF64(w.vy.At(i), p.ReadF64(w.vy.At(i))*0.9)
				p.Compute(150)
			}
		}
		p.Barrier(w.bar)
	}
}

// VelocitySums returns the cumulative velocity vector over all particles
// — the paper's §4.2 quality-of-solution metric.
func (w *Mp3d) VelocitySums() (sx, sy float64) {
	for i := 0; i < w.np; i++ {
		sx += w.vx.Peek(i)
		sy += w.vy.Peek(i)
	}
	return
}

// Verify performs structural checks: the races make exact trajectories
// protocol-dependent (by design — §4.2 measures exactly this), so the
// checks are physical sanity, not bit equality.
func (w *Mp3d) Verify() error {
	for i := 0; i < w.np; i++ {
		x, y := w.x.Peek(i), w.y.Peek(i)
		if math.IsNaN(x) || math.IsNaN(y) || x < -1e-9 || x > float64(w.cols)+1e-9 ||
			y < -1e-9 || y > float64(w.rows)+1e-9 {
			return fmt.Errorf("mp3d: particle %d escaped to (%g,%g)", i, x, y)
		}
		if vx := w.vx.Peek(i); vx <= 0 || vx > 2 {
			return fmt.Errorf("mp3d: particle %d has implausible vx %g", i, vx)
		}
	}
	var total int64
	for c := 0; c < w.rows*w.cols; c++ {
		v := w.cells.Peek(c * cellWords)
		if v < 0 {
			return fmt.Errorf("mp3d: negative occupancy in cell %d", c)
		}
		total += v
	}
	// The racy tally can lose updates but not wildly.
	if total < int64(w.np)*7/10 || total > int64(w.np) {
		return fmt.Errorf("mp3d: cell tally %d outside [%d, %d]", total, int64(w.np)*7/10, w.np)
	}
	return nil
}
