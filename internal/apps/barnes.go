package apps

import (
	"fmt"
	"math"

	"lazyrc/internal/machine"
)

// memIO is the access interface shared by simulated processors
// (machine.Proc) and the untimed serial-reference accessor
// (machine.Direct): workload logic is written once against it, so the
// reference computation is bit-identical by construction.
type memIO interface {
	ReadF64(machine.Addr) float64
	WriteF64(machine.Addr, float64)
	ReadI64(machine.Addr) int64
	WriteI64(machine.Addr, int64)
	Compute(uint64)
}

// Barnes is the Barnes-Hut N-body simulation (4K bodies, 4 steps in the
// paper), here in two dimensions: each step, processor 0 builds the
// quadtree over the shared body array; after a barrier every processor
// computes forces on its contiguous chunk of bodies by tree traversal,
// then integrates them; a lock-protected global kinetic-energy reduction
// provides the migratory data whose handling gives the lazy protocol its
// synchronization-time win (§4.2).
type Barnes struct {
	nb, steps int
	theta     float64

	x, y, vx, vy, mass, fx, fy machine.F64

	// Quadtree (built fresh each step): node t has weighted center-of-
	// mass accumulators (wmass, wx, wy), cell geometry (cx, cy, half),
	// and four child slots: 0 empty, +v internal node v-1, -v leaf body
	// v-1.
	wmass, wx, wy, cx, cy, half machine.F64
	child                       machine.I64
	nnodes                      machine.I64 // [0] = allocated node count
	maxNodes                    int

	energy machine.F64 // lock-protected global reduction
	elock  *machine.Lock
	bar    *machine.Barrier

	wantX, wantY []float64
	wantEnergy   float64
}

// NewBarnes returns the workload at the given scale.
func NewBarnes(scale Scale) *Barnes {
	type sz struct{ nb, steps int }
	s := map[Scale]sz{
		Tiny:   {48, 2},
		Small:  {128, 2},
		Medium: {512, 3},
		Paper:  {4096, 4},
	}[scale]
	return &Barnes{nb: s.nb, steps: s.steps, theta: 0.6}
}

// Name returns "barnes-hut".
func (b *Barnes) Name() string { return "barnes-hut" }

// Setup allocates bodies and tree storage and runs the untimed serial
// reference to record the expected trajectories.
func (b *Barnes) Setup(m *machine.Machine) {
	nb := b.nb
	b.maxNodes = 8*nb + 64
	alloc := func(n int) machine.F64 { return m.AllocF64(n) }
	b.x, b.y = alloc(nb), alloc(nb)
	b.vx, b.vy = alloc(nb), alloc(nb)
	b.mass = alloc(nb)
	b.fx, b.fy = alloc(nb), alloc(nb)
	b.wmass, b.wx, b.wy = alloc(b.maxNodes), alloc(b.maxNodes), alloc(b.maxNodes)
	b.cx, b.cy, b.half = alloc(b.maxNodes), alloc(b.maxNodes), alloc(b.maxNodes)
	b.child = m.AllocI64(4 * b.maxNodes)
	b.nnodes = m.AllocI64(1)
	b.energy = m.AllocF64(1)
	b.elock = m.NewLock()
	b.bar = m.NewBarrier(m.Cfg.Procs)

	rng := lcg(31337)
	for i := 0; i < nb; i++ {
		b.x.Poke(i, rng.f64()*100-50)
		b.y.Poke(i, rng.f64()*100-50)
		b.vx.Poke(i, rng.f64()-0.5)
		b.vy.Poke(i, rng.f64()-0.5)
		b.mass.Poke(i, 0.5+rng.f64())
	}

	// Serial reference over the same arrays, then restore initial state.
	snap := m.SnapshotData()
	d := m.Direct()
	for s := 0; s < b.steps; s++ {
		b.buildTree(d)
		for i := 0; i < nb; i++ {
			b.force(d, i)
		}
		for i := 0; i < nb; i++ {
			b.integrate(d, i)
		}
		b.wantEnergy = b.reduceEnergySerial(m)
	}
	b.wantX = make([]float64, nb)
	b.wantY = make([]float64, nb)
	for i := 0; i < nb; i++ {
		b.wantX[i] = m.PeekF64(b.x.At(i))
		b.wantY[i] = m.PeekF64(b.y.At(i))
	}
	m.RestoreData(snap)
}

func (b *Barnes) reduceEnergySerial(m *machine.Machine) float64 {
	e := 0.0
	for i := 0; i < b.nb; i++ {
		vx, vy := m.PeekF64(b.vx.At(i)), m.PeekF64(b.vy.At(i))
		e += 0.5 * m.PeekF64(b.mass.At(i)) * (vx*vx + vy*vy)
	}
	return e
}

// buildTree constructs the quadtree over all bodies (run by processor 0).
func (b *Barnes) buildTree(io memIO) {
	// Bounding square.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < b.nb; i++ {
		x := io.ReadF64(b.x.At(i))
		y := io.ReadF64(b.y.At(i))
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		io.Compute(4)
	}
	side := math.Max(maxX-minX, maxY-minY) + 1e-9

	// Root node 0.
	io.WriteI64(b.nnodes.At(0), 1)
	b.initNode(io, 0, (minX+maxX)/2, (minY+maxY)/2, side/2)

	for i := 0; i < b.nb; i++ {
		b.insert(io, i)
	}
}

func (b *Barnes) initNode(io memIO, t int, cx, cy, half float64) {
	io.WriteF64(b.cx.At(t), cx)
	io.WriteF64(b.cy.At(t), cy)
	io.WriteF64(b.half.At(t), half)
	io.WriteF64(b.wmass.At(t), 0)
	io.WriteF64(b.wx.At(t), 0)
	io.WriteF64(b.wy.At(t), 0)
	for q := 0; q < 4; q++ {
		io.WriteI64(b.child.At(t*4+q), 0)
	}
}

// quadrant returns the child index of (x,y) within node t and that
// child's cell center.
func (b *Barnes) quadrant(io memIO, t int, x, y float64) (q int, qx, qy, qh float64) {
	cx := io.ReadF64(b.cx.At(t))
	cy := io.ReadF64(b.cy.At(t))
	h := io.ReadF64(b.half.At(t)) / 2
	q = 0
	qx, qy, qh = cx-h, cy-h, h
	if x >= cx {
		q |= 1
		qx = cx + h
	}
	if y >= cy {
		q |= 2
		qy = cy + h
	}
	io.Compute(4)
	return
}

func (b *Barnes) insert(io memIO, body int) {
	x := io.ReadF64(b.x.At(body))
	y := io.ReadF64(b.y.At(body))
	mass := io.ReadF64(b.mass.At(body))
	t := 0
	for {
		// Accumulate the subtree's weighted center of mass on the way
		// down.
		io.WriteF64(b.wmass.At(t), io.ReadF64(b.wmass.At(t))+mass)
		io.WriteF64(b.wx.At(t), io.ReadF64(b.wx.At(t))+mass*x)
		io.WriteF64(b.wy.At(t), io.ReadF64(b.wy.At(t))+mass*y)
		io.Compute(6)

		q, qx, qy, qh := b.quadrant(io, t, x, y)
		slot := b.child.At(t*4 + q)
		c := io.ReadI64(slot)
		switch {
		case c == 0: // empty: place the body
			io.WriteI64(slot, -int64(body)-1)
			return
		case c > 0: // internal: descend
			t = int(c) - 1
		default: // leaf: split the cell and push the resident down
			other := int(-c) - 1
			nn := int(io.ReadI64(b.nnodes.At(0)))
			if nn >= b.maxNodes {
				panic("barnes-hut: quadtree node budget exceeded")
			}
			io.WriteI64(b.nnodes.At(0), int64(nn+1))
			b.initNode(io, nn, qx, qy, qh)
			// Seed the new cell with the displaced body.
			om := io.ReadF64(b.mass.At(other))
			ox := io.ReadF64(b.x.At(other))
			oy := io.ReadF64(b.y.At(other))
			io.WriteF64(b.wmass.At(nn), om)
			io.WriteF64(b.wx.At(nn), om*ox)
			io.WriteF64(b.wy.At(nn), om*oy)
			oq, _, _, _ := b.quadrant(io, nn, ox, oy)
			io.WriteI64(b.child.At(nn*4+oq), -int64(other)-1)
			io.WriteI64(slot, int64(nn)+1)
			t = nn
		}
	}
}

// force computes the gravitational force on body via tree traversal with
// the opening criterion size/distance < theta.
func (b *Barnes) force(io memIO, body int) {
	x := io.ReadF64(b.x.At(body))
	y := io.ReadF64(b.y.At(body))
	var fx, fy float64
	stack := []int64{1} // root, encoded +1
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c < 0 { // leaf body
			j := int(-c) - 1
			if j == body {
				continue
			}
			jm := io.ReadF64(b.mass.At(j))
			jx := io.ReadF64(b.x.At(j))
			jy := io.ReadF64(b.y.At(j))
			dx, dy := jx-x, jy-y
			d2 := dx*dx + dy*dy + 1e-6
			inv := jm / (d2 * math.Sqrt(d2))
			fx += dx * inv
			fy += dy * inv
			io.Compute(12)
			continue
		}
		t := int(c) - 1
		wm := io.ReadF64(b.wmass.At(t))
		if wm == 0 {
			continue
		}
		comx := io.ReadF64(b.wx.At(t)) / wm
		comy := io.ReadF64(b.wy.At(t)) / wm
		dx, dy := comx-x, comy-y
		d2 := dx*dx + dy*dy + 1e-6
		size := io.ReadF64(b.half.At(t)) * 2
		io.Compute(10)
		if size*size < b.theta*b.theta*d2 {
			inv := wm / (d2 * math.Sqrt(d2))
			fx += dx * inv
			fy += dy * inv
			io.Compute(8)
			continue
		}
		for q := 0; q < 4; q++ {
			cc := io.ReadI64(b.child.At(t*4 + q))
			if cc != 0 {
				stack = append(stack, cc)
			}
		}
	}
	io.WriteF64(b.fx.At(body), fx)
	io.WriteF64(b.fy.At(body), fy)
}

// integrate advances one body by a leapfrog step.
func (b *Barnes) integrate(io memIO, body int) {
	const dt = 0.05
	m := io.ReadF64(b.mass.At(body))
	vx := io.ReadF64(b.vx.At(body)) + io.ReadF64(b.fx.At(body))/m*dt
	vy := io.ReadF64(b.vy.At(body)) + io.ReadF64(b.fy.At(body))/m*dt
	io.WriteF64(b.vx.At(body), vx)
	io.WriteF64(b.vy.At(body), vy)
	io.WriteF64(b.x.At(body), io.ReadF64(b.x.At(body))+vx*dt)
	io.WriteF64(b.y.At(body), io.ReadF64(b.y.At(body))+vy*dt)
	io.Compute(12)
}

// Worker runs the per-processor share of each time step.
func (b *Barnes) Worker(p *machine.Proc) {
	np, me := p.NProcs(), p.ID()
	lo, hi := me*b.nb/np, (me+1)*b.nb/np
	for s := 0; s < b.steps; s++ {
		if me == 0 {
			p.WriteF64(b.energy.At(0), 0)
			b.buildTree(p)
		}
		p.Barrier(b.bar)
		for i := lo; i < hi; i++ {
			b.force(p, i)
		}
		p.Barrier(b.bar)
		local := 0.0
		for i := lo; i < hi; i++ {
			b.integrate(p, i)
			vx, vy := p.ReadF64(b.vx.At(i)), p.ReadF64(b.vy.At(i))
			local += 0.5 * p.ReadF64(b.mass.At(i)) * (vx*vx + vy*vy)
			p.Compute(6)
		}
		// Migratory global reduction under a lock.
		p.Acquire(b.elock)
		p.WriteF64(b.energy.At(0), p.ReadF64(b.energy.At(0))+local)
		p.Release(b.elock)
		p.Barrier(b.bar)
	}
}

// Verify compares final positions against the serial reference exactly
// (the traversal order per body is identical) and the energy reduction
// within floating-point reassociation tolerance.
func (b *Barnes) Verify() error {
	for i := 0; i < b.nb; i++ {
		gx, gy := b.x.Peek(i), b.y.Peek(i)
		if math.Abs(gx-b.wantX[i]) > 1e-9 || math.Abs(gy-b.wantY[i]) > 1e-9 {
			return fmt.Errorf("barnes-hut: body %d at (%g,%g), want (%g,%g)",
				i, gx, gy, b.wantX[i], b.wantY[i])
		}
	}
	e := b.energy.Peek(0)
	if math.Abs(e-b.wantEnergy) > 1e-6*math.Max(1, math.Abs(b.wantEnergy)) {
		return fmt.Errorf("barnes-hut: energy %g, want %g", e, b.wantEnergy)
	}
	return nil
}
