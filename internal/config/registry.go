package config

import (
	"fmt"
	"sort"
	"strings"
)

// The protocol registry is the single authoritative list of coherence
// protocols: every CLI flag menu, experiment target, litmus sweep, and
// machine constructor resolves protocol names through it. Protocols
// register themselves from internal/protocol's init, so any program
// that links the protocol package (every binary and test that can
// actually run one) sees the full menu; the constructor is typed `any`
// only because config cannot import protocol without a cycle — the
// caller in internal/protocol asserts it back to the Protocol
// interface.

// ProtocolInfo describes one registered coherence protocol.
type ProtocolInfo struct {
	// Name is the canonical CLI-facing protocol name ("sc", "lrc", ...).
	Name string
	// Doc is a one-line description for flag help and protocol tables.
	Doc string
	// Lazy reports whether the protocol delays coherence actions to
	// acquire time (selects the lazy directory cost and relaxes the
	// single-writer audit).
	Lazy bool
	// SCStrict reports whether the protocol promises sequentially
	// consistent outcomes even for racy programs. The model checker
	// judges racy litmus outcomes only for SCStrict protocols; relaxed
	// ones owe SC outcomes only to data-race-free programs.
	SCStrict bool
	// New constructs a fresh protocol instance. The concrete value
	// implements protocol.Protocol.
	New func() any
}

var protocolRegistry []ProtocolInfo

// RegisterProtocol adds a protocol to the registry. It is called from
// package init functions; duplicate or unnamed registrations are
// programming errors and panic.
func RegisterProtocol(info ProtocolInfo) {
	if info.Name == "" || info.New == nil {
		panic("config: RegisterProtocol requires a name and a constructor")
	}
	for _, p := range protocolRegistry {
		if p.Name == info.Name {
			panic(fmt.Sprintf("config: protocol %q registered twice", info.Name))
		}
	}
	protocolRegistry = append(protocolRegistry, info)
}

// ProtocolInfoFor returns the registration for name.
func ProtocolInfoFor(name string) (ProtocolInfo, bool) {
	for _, p := range protocolRegistry {
		if p.Name == name {
			return p, true
		}
	}
	return ProtocolInfo{}, false
}

// ProtocolNames returns every registered protocol name in registration
// order (the canonical presentation order: sc, erc, lrc, lrc-ext,
// tardis, tardis2).
func ProtocolNames() []string {
	names := make([]string, len(protocolRegistry))
	for i, p := range protocolRegistry {
		names[i] = p.Name
	}
	return names
}

// ProtocolSCStrict reports whether name promises SC outcomes for racy
// programs. Unknown names are conservatively judged strict, so a typo'd
// protocol fails loudly against the oracle rather than silently passing.
func ProtocolSCStrict(name string) bool {
	if p, ok := ProtocolInfoFor(name); ok {
		return p.SCStrict
	}
	return true
}

// ParseProtocols resolves a comma-separated protocol list against the
// registry, with "all" (or an empty string) expanding to every
// registered protocol. Duplicates are removed, registry order is
// preserved, and unknown names are errors.
func ParseProtocols(spec string) ([]string, error) {
	if spec == "" || spec == "all" {
		return ProtocolNames(), nil
	}
	want := map[string]bool{}
	var order []string
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if name == "all" {
			for _, n := range ProtocolNames() {
				if !want[n] {
					want[n] = true
					order = append(order, n)
				}
			}
			continue
		}
		if _, ok := ProtocolInfoFor(name); !ok {
			return nil, fmt.Errorf("config: unknown protocol %q (known: %v)", name, ProtocolNames())
		}
		if !want[name] {
			want[name] = true
			order = append(order, name)
		}
	}
	// Present in registry order regardless of how the user listed them,
	// so downstream tables and digests are order-independent.
	idx := map[string]int{}
	for i, n := range ProtocolNames() {
		idx[n] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return idx[order[i]] < idx[order[j]] })
	return order, nil
}
