// Package config holds the simulated machine's parameter table.
//
// The defaults reproduce Table 1 of Kontothanassis, Scott, and Bianchini,
// "Lazy Release Consistency for Hardware-Coherent Multiprocessors"
// (Supercomputing '95). All costs are in processor cycles; all sizes in
// bytes. The Future preset reproduces the hypothetical machine of §4.3
// (higher latency, higher bandwidth, longer cache lines).
package config

import (
	"errors"
	"fmt"
)

// Config describes one simulated machine. The zero value is not usable;
// start from Default or Future and override fields as needed.
type Config struct {
	// Procs is the number of processor nodes. It must be a positive
	// perfect square or twice a perfect square so the nodes can be laid
	// out on a near-square 2-D mesh (1, 2, 4, 8, 16, 32, 64, ...).
	Procs int

	// LineSize is the coherence block (cache line) size in bytes.
	LineSize int
	// CacheSize is the per-processor data cache capacity in bytes.
	// Caches are direct-mapped, as in the paper.
	CacheSize int
	// PageSize is the unit of home-node interleaving for shared data.
	PageSize int

	// MemSetup is the memory module startup cost in cycles.
	MemSetup uint64
	// MemBW is memory bandwidth in bytes per cycle.
	MemBW int
	// BusBW is the node-local bus bandwidth in bytes per cycle.
	BusBW int
	// NetBW is the (bidirectional) network link bandwidth in bytes/cycle.
	NetBW int
	// SwitchLat is the per-hop switch latency in cycles.
	SwitchLat uint64
	// WireLat is the per-hop wire latency in cycles.
	WireLat uint64

	// NoticeCost is the protocol-processor cost of handling one write
	// notice (cycles).
	NoticeCost uint64
	// DirCostLRC is the directory access cost of the lazy protocols.
	DirCostLRC uint64
	// DirCostERC is the directory access cost of the eager and
	// sequentially consistent protocols.
	DirCostERC uint64

	// WBEntries is the CPU-side write buffer depth used by the relaxed
	// protocols (reads bypass writes; writes to the same line coalesce).
	WBEntries int
	// CBEntries is the coalescing write-through buffer depth used by the
	// lazy protocols, placed between the cache and the memory system.
	CBEntries int

	// Quantum bounds processor local-time run-ahead (cycles) between
	// synchronizations with the global event loop. Smaller values raise
	// fidelity of contention interleaving at simulation-speed cost.
	Quantum uint64

	// LeaseLen is the logical-timestamp read-lease length granted by the
	// timestamp protocols (tardis, tardis2). A read of a line at program
	// timestamp pts extends the line's read lease to at least
	// pts+LeaseLen; the copy self-expires — with no invalidation message
	// — once the reader's own timestamp passes the lease end. Longer
	// leases mean fewer renewals but staler tolerated copies (never
	// affecting correctness, only renewal traffic). Ignored by the
	// invalidation protocols.
	LeaseLen uint64

	// TSDeltaBits bounds the per-line timestamp storage of the timestamp
	// protocols: each node stores lease timestamps as deltas from a
	// per-node base, and rebases (Tardis's timestamp compression) when a
	// delta would no longer fit in TSDeltaBits bits. Rebasing clamps
	// stale lease write-timestamps upward, which can only expire leases
	// early — safe by construction. Ignored by the invalidation
	// protocols.
	TSDeltaBits int

	// FirstTouch places each shared page at the first processor that
	// accesses it in simulated time, instead of round-robin interleaving
	// — the locality optimization the paper's §6 expects to shrink (but
	// not erase) the lazy protocol's advantage as coherence traffic
	// falls.
	FirstTouch bool

	// SoftwareCoherence models a software DSM-style system: coherence
	// work that a protocol processor would perform in the background —
	// sending a write notice and waiting out its acknowledgement
	// collection — stalls the main processor instead. The paper's §4.3
	// explanation for the lazy/lazier reversal ("write notices cannot be
	// processed in parallel with computation [in software], and the same
	// penalty has to be paid regardless of when they are processed")
	// predicts that under this knob the lazier protocol stops losing.
	SoftwareCoherence bool

	// NoAcquireOverlap disables the lazy protocols' overlap of
	// acquire-time invalidation with the synchronization latency itself:
	// all invalidation work happens after the grant arrives. This is an
	// ablation knob for the paper's claim that "much of the latency of
	// this operation can be hidden behind the latency of the lock
	// acquisition".
	NoAcquireOverlap bool

	// CheckInvariants enables continuous directory/protocol invariant
	// checking (panics on violation). Intended for tests.
	CheckInvariants bool

	// Seed is the base random seed of the run. The simulation itself is
	// deterministic and does not consume randomness; the seed feeds
	// seed-dependent subsystems (today: fault injection) and is recorded
	// in reports so any run can be replayed exactly.
	Seed uint64

	// FaultSeed, when nonzero, seeds the fault injector's random stream
	// independently of Seed — hold the workload seed fixed and sweep fault
	// schedules, or vice versa. Zero means derive from Seed.
	FaultSeed uint64

	// FaultPlan is the textual fault-injection plan applied to the
	// interconnect (see faults.ParsePlan for the format, e.g.
	// "delay=0.05:1:64,dup=0.03:32"). Empty disables injection, leaving
	// the fabric reliable and the schedule bit-identical to a build
	// without the faults package.
	FaultPlan string

	// Mutation injects a named, deliberate protocol bug — the model
	// checker's self-test that its conformance oracle actually catches
	// broken coherence. Empty (the only value for real runs) leaves every
	// protocol intact. Known mutations:
	//
	//	skip-acquire-inval: the lazy protocols skip processing queued
	//	write-notice invalidations at acquire, so stale cached copies
	//	survive into the critical section.
	//
	//	skip-lease-renewal: the timestamp protocols treat every cached
	//	lease as forever valid — reads never check expiry or renew, and
	//	tardis2 skips its acquire-time expiry sweep — so a consumer can
	//	read a stale copy after an acquire that should have outrun its
	//	lease.
	Mutation string
}

// Mutations lists the recognized Mutation values (excluding "").
func Mutations() []string { return []string{"skip-acquire-inval", "skip-lease-renewal"} }

// Default returns the Table 1 configuration of the paper for n processors.
func Default(n int) Config {
	return Config{
		Procs:       n,
		LineSize:    128,
		CacheSize:   128 << 10,
		PageSize:    4096,
		MemSetup:    20,
		MemBW:       2,
		BusBW:       2,
		NetBW:       2,
		SwitchLat:   2,
		WireLat:     1,
		NoticeCost:  4,
		DirCostLRC:  25,
		DirCostERC:  15,
		WBEntries:   4,
		CBEntries:   16,
		Quantum:     200,
		LeaseLen:    8,
		TSDeltaBits: 20,
	}
}

// Future returns the §4.3 "future hypothetical machine": 40-cycle memory
// startup, 4 bytes/cycle memory and network bandwidth, 256-byte lines.
func Future(n int) Config {
	c := Default(n)
	c.MemSetup = 40
	c.MemBW = 4
	c.NetBW = 4
	c.BusBW = 4
	c.LineSize = 256
	return c
}

// Presets lists the named machine presets Preset accepts.
func Presets() []string { return []string{"default", "future"} }

// Preset returns a named machine preset — the serialization-friendly
// form used by submitted job and sweep specs, where a client names the
// machine ("default", "future") instead of shipping a parameter table.
func Preset(name string, procs int) (Config, error) {
	switch name {
	case "", "default":
		return Default(procs), nil
	case "future":
		return Future(procs), nil
	}
	return Config{}, fmt.Errorf("config: unknown preset %q (known: %v)", name, Presets())
}

// WordSize is the machine word (and per-word dirty-bit granularity) in
// bytes. Shared data is allocated at this alignment.
const WordSize = 8

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Procs < 1:
		return errors.New("config: Procs must be >= 1")
	case c.LineSize < WordSize || c.LineSize%WordSize != 0:
		return fmt.Errorf("config: LineSize %d must be a positive multiple of %d", c.LineSize, WordSize)
	case c.CacheSize < c.LineSize || c.CacheSize%c.LineSize != 0:
		return fmt.Errorf("config: CacheSize %d must be a positive multiple of LineSize %d", c.CacheSize, c.LineSize)
	case c.PageSize < c.LineSize || c.PageSize%c.LineSize != 0:
		return fmt.Errorf("config: PageSize %d must be a positive multiple of LineSize %d", c.PageSize, c.LineSize)
	case c.MemBW < 1 || c.BusBW < 1 || c.NetBW < 1:
		return errors.New("config: bandwidths must be >= 1 byte/cycle")
	case c.WBEntries < 1:
		return errors.New("config: WBEntries must be >= 1")
	case c.CBEntries < 1:
		return errors.New("config: CBEntries must be >= 1")
	case c.Quantum < 1:
		return errors.New("config: Quantum must be >= 1")
	case c.LeaseLen < 1:
		return errors.New("config: LeaseLen must be >= 1")
	case c.TSDeltaBits < 8 || c.TSDeltaBits > 63:
		return fmt.Errorf("config: TSDeltaBits %d must be in [8, 63]", c.TSDeltaBits)
	}
	if w, h := MeshDims(c.Procs); w*h != c.Procs {
		return fmt.Errorf("config: Procs %d cannot be arranged on a 2-D mesh (use 1,2,4,8,16,32,64,...)", c.Procs)
	}
	if c.Mutation != "" {
		ok := false
		for _, m := range Mutations() {
			if c.Mutation == m {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("config: unknown Mutation %q (known: %v)", c.Mutation, Mutations())
		}
	}
	return nil
}

// WordsPerLine returns the number of machine words per coherence block.
func (c Config) WordsPerLine() int { return c.LineSize / WordSize }

// Lines returns the number of lines in each processor cache.
func (c Config) Lines() int { return c.CacheSize / c.LineSize }

// MeshDims returns the width and height of the most-square 2-D mesh with
// n nodes, favoring width >= height. For n that is not expressible as
// w*h with |w-h| minimal over powers of two, it falls back to 1×n.
func MeshDims(n int) (w, h int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return n / best, best
}
