package config

import (
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default(64)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"LineSize", c.LineSize, 128},
		{"CacheSize", c.CacheSize, 128 << 10},
		{"MemSetup", c.MemSetup, uint64(20)},
		{"MemBW", c.MemBW, 2},
		{"BusBW", c.BusBW, 2},
		{"NetBW", c.NetBW, 2},
		{"SwitchLat", c.SwitchLat, uint64(2)},
		{"WireLat", c.WireLat, uint64(1)},
		{"NoticeCost", c.NoticeCost, uint64(4)},
		{"DirCostLRC", c.DirCostLRC, uint64(25)},
		{"DirCostERC", c.DirCostERC, uint64(15)},
		{"WBEntries", c.WBEntries, 4},
		{"CBEntries", c.CBEntries, 16},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
}

func TestFuturePreset(t *testing.T) {
	c := Future(64)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MemSetup != 40 || c.MemBW != 4 || c.NetBW != 4 || c.LineSize != 256 {
		t.Fatalf("future preset = %+v", c)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Procs = 0 },
		func(c *Config) { c.LineSize = 12 },
		func(c *Config) { c.CacheSize = c.LineSize - 1 },
		func(c *Config) { c.PageSize = c.LineSize / 2 },
		func(c *Config) { c.MemBW = 0 },
		func(c *Config) { c.NetBW = 0 },
		func(c *Config) { c.WBEntries = 0 },
		func(c *Config) { c.CBEntries = 0 },
		func(c *Config) { c.Quantum = 0 },
	}
	for i, mut := range bad {
		c := Default(16)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config validated: %+v", i, c)
		}
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2},
		{16, 4, 4}, {32, 8, 4}, {64, 8, 8}, {6, 3, 2},
	}
	for _, tc := range cases {
		w, h := MeshDims(tc.n)
		if w != tc.w || h != tc.h {
			t.Errorf("MeshDims(%d) = %d×%d, want %d×%d", tc.n, w, h, tc.w, tc.h)
		}
	}
}

func TestMeshDimsProperty(t *testing.T) {
	f := func(n uint8) bool {
		nn := int(n)%256 + 1
		w, h := MeshDims(nn)
		return w*h == nn && w >= h && h >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := Default(64)
	if c.WordsPerLine() != 16 {
		t.Errorf("WordsPerLine = %d, want 16", c.WordsPerLine())
	}
	if c.Lines() != 1024 {
		t.Errorf("Lines = %d, want 1024", c.Lines())
	}
}

func TestPresetNames(t *testing.T) {
	for _, name := range Presets() {
		c, err := Preset(name, 16)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
	if c, err := Preset("", 16); err != nil || c != Default(16) {
		t.Fatalf("empty preset: %+v, %v", c, err)
	}
	if c, err := Preset("future", 16); err != nil || c != Future(16) {
		t.Fatalf("future preset: %+v, %v", c, err)
	}
	if _, err := Preset("nope", 16); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
