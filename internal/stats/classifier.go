package stats

// Classifier decides the category of each miss. It watches the global
// stream of committed writes at word granularity and each processor's
// copy lifetimes (fill → loss), and classifies a re-miss by asking
// whether the word now being touched was modified by another processor
// while the local copy was away — the touch-based criterion for
// separating true from false sharing.
type Classifier struct {
	nprocs int
	blocks map[uint64]*blockTrack

	ver uint64 // global committed-write version counter
}

type blockTrack struct {
	wordVer    []uint64 // last committed-write version per word
	wordWriter []int32  // last committed writer per word (-1 none)
	copies     []copyTrack
}

type copyTrack struct {
	everCached bool
	valid      bool
	fillVer    uint64
	loss       LossReason
}

// NewClassifier returns a classifier for nprocs processors and
// wordsPerLine-word coherence blocks.
func NewClassifier(nprocs, wordsPerLine int) *Classifier {
	return &Classifier{
		nprocs: nprocs,
		blocks: make(map[uint64]*blockTrack),
	}
}

func (c *Classifier) track(block uint64, words int) *blockTrack {
	b := c.blocks[block]
	if b == nil {
		b = &blockTrack{
			wordVer:    make([]uint64, words),
			wordWriter: make([]int32, words),
			copies:     make([]copyTrack, c.nprocs),
		}
		for i := range b.wordWriter {
			b.wordWriter[i] = -1
		}
		c.blocks[block] = b
	}
	if len(b.wordVer) < words { // line-size change between runs is a bug
		panic("stats: inconsistent words-per-line")
	}
	return b
}

// CommitWrite records a committed write by proc to word of block.
func (c *Classifier) CommitWrite(proc int, block uint64, word, wordsPerLine int) {
	b := c.track(block, wordsPerLine)
	c.ver++
	b.wordVer[word] = c.ver
	b.wordWriter[word] = int32(proc)
}

// Fill records that proc's copy of block became valid now.
func (c *Classifier) Fill(proc int, block uint64, wordsPerLine int) {
	b := c.track(block, wordsPerLine)
	cp := &b.copies[proc]
	cp.everCached = true
	cp.valid = true
	cp.fillVer = c.ver
	cp.loss = LossNone
}

// Lose records that proc's copy of block went away for the given reason.
// Losing an invalid copy is a no-op (e.g., a notice for a block that was
// already evicted).
func (c *Classifier) Lose(proc int, block uint64, reason LossReason, wordsPerLine int) {
	b := c.track(block, wordsPerLine)
	cp := &b.copies[proc]
	if !cp.valid {
		return
	}
	cp.valid = false
	cp.loss = reason
}

// Classify categorizes a data miss by proc on (block, word).
// upgradeOnly marks a write that found the block cached but not writable
// (a write-permission miss; no data transfer).
func (c *Classifier) Classify(proc int, block uint64, word, wordsPerLine int, upgradeOnly bool) MissKind {
	if upgradeOnly {
		return WriteMiss
	}
	b := c.track(block, wordsPerLine)
	cp := &b.copies[proc]
	if !cp.everCached {
		return Cold
	}
	switch cp.loss {
	case LossEviction:
		return Eviction
	case LossCoherence:
		// True sharing iff the touched word was committed by another
		// processor after our copy was last current.
		if b.wordVer[word] > cp.fillVer && b.wordWriter[word] != int32(proc) {
			return TrueShare
		}
		return FalseShare
	default:
		// A miss without a recorded loss can only happen if the copy was
		// dropped silently; attribute to eviction (conservative).
		return Eviction
	}
}

// Blocks returns how many distinct blocks the classifier has seen.
func (c *Classifier) Blocks() int { return len(c.blocks) }
