package stats

import (
	"testing"
	"testing/quick"
)

func TestMissKindStrings(t *testing.T) {
	want := map[MissKind]string{
		Cold: "Cold", TrueShare: "True", FalseShare: "False",
		Eviction: "Eviction", WriteMiss: "Write",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestProcDerivedCounters(t *testing.T) {
	var p Proc
	p.Reads, p.Writes = 90, 10
	p.Misses[Cold] = 3
	p.Misses[TrueShare] = 2
	p.Misses[WriteMiss] = 5
	if p.Refs() != 100 {
		t.Fatalf("refs = %d", p.Refs())
	}
	if p.DataMisses() != 5 {
		t.Fatalf("data misses = %d, want 5", p.DataMisses())
	}
	if p.TotalMisses() != 10 {
		t.Fatalf("total misses = %d, want 10", p.TotalMisses())
	}
	p.CPU, p.ReadStall, p.WriteStall, p.SyncStall = 1, 2, 3, 4
	if p.BusyAndStall() != 10 {
		t.Fatalf("busy+stall = %d, want 10", p.BusyAndStall())
	}
}

func TestMachineAggregateAndRates(t *testing.T) {
	m := NewMachine(2)
	m.Procs[0] = Proc{CPU: 10, ReadStall: 5, WriteStall: 1, SyncStall: 2,
		Reads: 80, Writes: 20, FinishTime: 100}
	m.Procs[1] = Proc{CPU: 20, ReadStall: 1, WriteStall: 1, SyncStall: 1,
		Reads: 50, Writes: 50, FinishTime: 150}
	m.Procs[0].Misses[Cold] = 10
	m.Procs[1].Misses[FalseShare] = 10
	cpu, rd, wr, sy := m.Aggregate()
	if cpu != 30 || rd != 6 || wr != 2 || sy != 3 {
		t.Fatalf("aggregate = %d %d %d %d", cpu, rd, wr, sy)
	}
	if got := m.MissRate(); got != 20.0/200.0 {
		t.Fatalf("miss rate = %v", got)
	}
	shares := m.MissShares()
	if shares[Cold] != 0.5 || shares[FalseShare] != 0.5 {
		t.Fatalf("shares = %v", shares)
	}
	if m.ExecutionTime() != 150 {
		t.Fatalf("exec time = %d", m.ExecutionTime())
	}
}

func TestProcUtilization(t *testing.T) {
	var p Proc
	if p.Utilization() != 0 {
		t.Fatal("empty proc utilization nonzero")
	}
	p.CPU, p.ReadStall, p.WriteStall, p.SyncStall = 30, 40, 10, 20
	if got := p.Utilization(); got != 0.3 {
		t.Fatalf("utilization = %v, want 0.3", got)
	}
	p = Proc{CPU: 7}
	if got := p.Utilization(); got != 1.0 {
		t.Fatalf("stall-free utilization = %v, want 1", got)
	}
}

func TestMachineImbalance(t *testing.T) {
	m := NewMachine(4)
	if m.Imbalance() != 0 {
		t.Fatal("empty machine imbalance nonzero")
	}
	for i := range m.Procs {
		m.Procs[i].FinishTime = 100
	}
	if got := m.Imbalance(); got != 1.0 {
		t.Fatalf("balanced imbalance = %v, want 1", got)
	}
	// Finish times 100,100,100,200: max 200 over mean 125 = 1.6.
	m.Procs[3].FinishTime = 200
	if got := m.Imbalance(); got != 1.6 {
		t.Fatalf("imbalance = %v, want 1.6", got)
	}
}

func TestMissSharesEmpty(t *testing.T) {
	m := NewMachine(4)
	if m.MissRate() != 0 {
		t.Fatal("empty miss rate nonzero")
	}
	for _, s := range m.MissShares() {
		if s != 0 {
			t.Fatal("empty shares nonzero")
		}
	}
}

const wpl = 16 // words per 128-byte line

func TestClassifierColdAndEviction(t *testing.T) {
	c := NewClassifier(4, wpl)
	// First touch: cold.
	if k := c.Classify(0, 100, 0, wpl, false); k != Cold {
		t.Fatalf("first touch = %v, want Cold", k)
	}
	c.Fill(0, 100, wpl)
	// Lost to replacement: eviction.
	c.Lose(0, 100, LossEviction, wpl)
	if k := c.Classify(0, 100, 0, wpl, false); k != Eviction {
		t.Fatalf("after eviction = %v, want Eviction", k)
	}
}

func TestClassifierTrueVsFalseSharing(t *testing.T) {
	c := NewClassifier(4, wpl)
	c.Fill(0, 100, wpl)
	c.Fill(1, 100, wpl)
	// Proc 1 writes word 5; proc 0 is invalidated.
	c.CommitWrite(1, 100, 5, wpl)
	c.Lose(0, 100, LossCoherence, wpl)
	// Proc 0 re-misses touching word 5 → true sharing.
	if k := c.Classify(0, 100, 5, wpl, false); k != TrueShare {
		t.Fatalf("touch modified word = %v, want TrueShare", k)
	}
	// Touching an untouched word → false sharing.
	if k := c.Classify(0, 100, 2, wpl, false); k != FalseShare {
		t.Fatalf("touch unmodified word = %v, want FalseShare", k)
	}
}

func TestClassifierOwnWritesDoNotLookLikeTrueSharing(t *testing.T) {
	c := NewClassifier(4, wpl)
	c.Fill(0, 100, wpl)
	c.CommitWrite(0, 100, 3, wpl) // own write
	c.Fill(1, 100, wpl)
	c.CommitWrite(1, 100, 9, wpl) // other's write to word 9
	c.Lose(0, 100, LossCoherence, wpl)
	// Re-miss touching our own word 3: the version is newer than fillVer
	// but the writer was us → false sharing.
	if k := c.Classify(0, 100, 3, wpl, false); k != FalseShare {
		t.Fatalf("touch own word = %v, want FalseShare", k)
	}
}

func TestClassifierUpgradeIsWriteMiss(t *testing.T) {
	c := NewClassifier(4, wpl)
	c.Fill(0, 100, wpl)
	if k := c.Classify(0, 100, 0, wpl, true); k != WriteMiss {
		t.Fatalf("upgrade = %v, want WriteMiss", k)
	}
}

func TestClassifierRefillResetsWindow(t *testing.T) {
	c := NewClassifier(4, wpl)
	c.Fill(0, 100, wpl)
	c.CommitWrite(1, 100, 5, wpl)
	c.Lose(0, 100, LossCoherence, wpl)
	c.Fill(0, 100, wpl) // refetched: sees word 5's new value
	c.Lose(0, 100, LossCoherence, wpl)
	// No writes since refill → false sharing even on word 5.
	if k := c.Classify(0, 100, 5, wpl, false); k != FalseShare {
		t.Fatalf("after refill = %v, want FalseShare", k)
	}
}

func TestClassifierLoseInvalidIsNoop(t *testing.T) {
	c := NewClassifier(4, wpl)
	c.Fill(0, 100, wpl)
	c.Lose(0, 100, LossEviction, wpl)
	c.Lose(0, 100, LossCoherence, wpl) // stale notice after eviction
	if k := c.Classify(0, 100, 0, wpl, false); k != Eviction {
		t.Fatalf("loss reason overwritten: %v, want Eviction", k)
	}
}

func TestClassifierCategoriesAreTotalProperty(t *testing.T) {
	// Property: any interleaving of fills, losses, and writes yields a
	// defined category for every subsequent miss.
	type op struct {
		Proc  uint8
		Block uint8
		Word  uint8
		Kind  uint8
	}
	f := func(ops []op) bool {
		c := NewClassifier(8, wpl)
		for _, o := range ops {
			p, b, w := int(o.Proc)%8, uint64(o.Block%16), int(o.Word)%wpl
			switch o.Kind % 4 {
			case 0:
				c.Fill(p, b, wpl)
			case 1:
				c.Lose(p, b, LossEviction, wpl)
			case 2:
				c.Lose(p, b, LossCoherence, wpl)
			case 3:
				c.CommitWrite(p, b, w, wpl)
			}
			k := c.Classify(p, b, w, wpl, false)
			if k >= NumMissKinds || k == WriteMiss {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierBlocks(t *testing.T) {
	c := NewClassifier(2, wpl)
	c.Fill(0, 1, wpl)
	c.Fill(0, 2, wpl)
	c.Fill(1, 1, wpl)
	if c.Blocks() != 2 {
		t.Fatalf("Blocks = %d, want 2", c.Blocks())
	}
}
