// Package stats collects per-processor cycle breakdowns and classifies
// cache misses into the taxonomy of Table 2 of the paper: cold,
// true-sharing, false-sharing, eviction, and write misses, following the
// touch-based variant of the classification algorithm of Bianchini and
// Kontothanassis ("Algorithms for Categorizing Multiprocessor
// Communication under Invalidate and Update-Based Coherence Protocols").
package stats

import "fmt"

// MissKind classifies one miss.
type MissKind uint8

const (
	// Cold: the processor has never cached the block before.
	Cold MissKind = iota
	// TrueShare: the copy was lost to coherence and the word accessed on
	// the re-miss was written by another processor in the interim.
	TrueShare
	// FalseShare: the copy was lost to coherence but the accessed word
	// was not modified by others — only other words of the block were.
	FalseShare
	// Eviction: the copy was lost to a capacity/conflict replacement.
	Eviction
	// WriteMiss: a write found the block present but not writable. No
	// data transfer results; the paper tallies these separately.
	WriteMiss
	// NumMissKinds is the number of categories.
	NumMissKinds
)

// String returns the category name as printed in Table 2.
func (k MissKind) String() string {
	switch k {
	case Cold:
		return "Cold"
	case TrueShare:
		return "True"
	case FalseShare:
		return "False"
	case Eviction:
		return "Eviction"
	case WriteMiss:
		return "Write"
	}
	return fmt.Sprintf("MissKind(%d)", uint8(k))
}

// LossReason records why a processor's copy of a block went away.
type LossReason uint8

const (
	// LossNone: the processor holds (or never held) the block.
	LossNone LossReason = iota
	// LossEviction: replaced by a conflicting block.
	LossEviction
	// LossCoherence: invalidated by the coherence protocol.
	LossCoherence
)

// Proc accumulates one processor's execution statistics.
type Proc struct {
	// Cycle breakdown (the four categories of Figures 5/7/9).
	CPU        uint64 // compute cycles + cache-hit access cycles
	ReadStall  uint64 // cycles stalled on read misses
	WriteStall uint64 // cycles stalled on the write path (full write buffer, SC write completion)
	SyncStall  uint64 // cycles in acquire/release/barrier waits

	// Reference counts.
	Reads, Writes uint64
	// Misses by category; Misses[WriteMiss] entries transfer no data.
	Misses [NumMissKinds]uint64
	// WriteBacks counts dirty-data transfers to memory (write-back
	// protocols); WriteThroughs counts coalescing-buffer drains (lazy
	// protocols).
	WriteBacks, WriteThroughs uint64
	// NoticesIn counts write notices processed by this node's protocol
	// processor; InvalsAtAcquire counts acquire-time invalidations.
	NoticesIn, InvalsAtAcquire uint64

	// FinishTime is the cycle at which this processor completed its
	// workload.
	FinishTime uint64
}

// Refs returns total references issued.
func (p *Proc) Refs() uint64 { return p.Reads + p.Writes }

// DataMisses returns misses that transfer data (everything but the
// write-permission misses).
func (p *Proc) DataMisses() uint64 {
	var n uint64
	for k := MissKind(0); k < NumMissKinds; k++ {
		if k != WriteMiss {
			n += p.Misses[k]
		}
	}
	return n
}

// TotalMisses returns all misses including write-permission misses.
func (p *Proc) TotalMisses() uint64 {
	var n uint64
	for _, m := range p.Misses {
		n += m
	}
	return n
}

// BusyAndStall returns the sum of the four breakdown categories.
func (p *Proc) BusyAndStall() uint64 {
	return p.CPU + p.ReadStall + p.WriteStall + p.SyncStall
}

// Utilization returns the CPU-busy share of this processor's accounted
// cycles — 1.0 means it never stalled, 0 means it did no work (or ran no
// workload at all).
func (p *Proc) Utilization() float64 {
	total := p.BusyAndStall()
	if total == 0 {
		return 0
	}
	return float64(p.CPU) / float64(total)
}

// Machine aggregates per-processor statistics for one run.
type Machine struct {
	Procs []Proc
}

// NewMachine returns statistics storage for n processors.
func NewMachine(n int) *Machine { return &Machine{Procs: make([]Proc, n)} }

// Aggregate sums the cycle breakdown over all processors.
func (m *Machine) Aggregate() (cpu, read, write, sync uint64) {
	for i := range m.Procs {
		p := &m.Procs[i]
		cpu += p.CPU
		read += p.ReadStall
		write += p.WriteStall
		sync += p.SyncStall
	}
	return
}

// MissRate returns total misses (including write-permission misses, as in
// Table 3's treatment) divided by total references.
func (m *Machine) MissRate() float64 {
	var misses, refs uint64
	for i := range m.Procs {
		misses += m.Procs[i].TotalMisses()
		refs += m.Procs[i].Refs()
	}
	if refs == 0 {
		return 0
	}
	return float64(misses) / float64(refs)
}

// MissShares returns each category's share of total misses (Table 2).
func (m *Machine) MissShares() [NumMissKinds]float64 {
	var counts [NumMissKinds]uint64
	var total uint64
	for i := range m.Procs {
		for k, v := range m.Procs[i].Misses {
			counts[k] += v
			total += v
		}
	}
	var out [NumMissKinds]float64
	if total == 0 {
		return out
	}
	for k, v := range counts {
		out[k] = float64(v) / float64(total)
	}
	return out
}

// ExecutionTime returns the slowest processor's finish time — the
// program's simulated running time.
func (m *Machine) ExecutionTime() uint64 {
	var max uint64
	for i := range m.Procs {
		if m.Procs[i].FinishTime > max {
			max = m.Procs[i].FinishTime
		}
	}
	return max
}

// Imbalance returns the ratio of the slowest processor's finish time to
// the mean finish time — 1.0 is a perfectly balanced run; 2.0 means the
// critical path ran twice as long as the average processor. Returns 0
// before any processor has finished.
func (m *Machine) Imbalance() float64 {
	var sum, max uint64
	for i := range m.Procs {
		f := m.Procs[i].FinishTime
		sum += f
		if f > max {
			max = f
		}
	}
	if sum == 0 || len(m.Procs) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(m.Procs))
	return float64(max) / mean
}
