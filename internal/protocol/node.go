package protocol

import (
	"fmt"

	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/config"
	"lazyrc/internal/directory"
	"lazyrc/internal/mesh"
	"lazyrc/internal/perf"
	"lazyrc/internal/sim"
	"lazyrc/internal/stats"
)

// Env is the machine-wide state shared by all protocol nodes.
type Env struct {
	Eng   *sim.Engine
	Net   *mesh.Network
	Cfg   config.Config
	Stats *stats.Machine
	Class *stats.Classifier
	Nodes []*Node

	// Debug, when non-nil, receives protocol-internal trace lines.
	Debug func(format string, args ...any)

	// Observe, when non-nil, receives protocol-level events (sync
	// operations, the write-notice lifecycle) — the tracer and the model
	// checker attach here. Purely passive; never alters timing.
	Observe func(ProtEvent)

	// Mem, when non-nil, shadows the data values each cache copy and home
	// line actually holds, making memory-model outcomes observable. Nil
	// for performance runs.
	Mem DataMemory

	// Causal, when non-nil, records every coherence transaction, stall
	// episode, and hardware service interval as causally-linked spans.
	// Strictly passive — it observes cycle stamps the timing model
	// already computed — and all hooks are nil-receiver no-ops.
	Causal *causal.Tracer

	// Prof, when non-nil, charges protocol-handler and memory/bus wall
	// time to the perf phases. Passive like Causal; nil hooks are no-ops.
	Prof *perf.Profiler

	// pageHome is the FirstTouch page-placement table (-1 = untouched).
	pageHome []int
}

// debugf emits a protocol-internal trace line when debugging is enabled.
func (n *Node) debugf(format string, args ...any) {
	if n.Env.Debug != nil {
		n.Env.Debug("%7d node%d "+format, append([]any{n.Env.Eng.Now(), n.ID}, args...)...)
	}
}

// HomeOf returns the home node of a coherence block. Shared pages are
// interleaved round-robin across the machine by default; under the
// FirstTouch policy a page that has been touched lives at its first
// toucher (untouched pages fall back to interleaving).
func (e *Env) HomeOf(block uint64) int {
	page := block * uint64(e.Cfg.LineSize) / uint64(e.Cfg.PageSize)
	if e.Cfg.FirstTouch && page < uint64(len(e.pageHome)) {
		if h := e.pageHome[page]; h >= 0 {
			return h
		}
	}
	return int(page % uint64(e.Cfg.Procs))
}

// TouchPage records the first simulated access to the page containing
// addr, assigning the page's home under the FirstTouch policy. Later
// touches are no-ops.
func (e *Env) TouchPage(addr uint64, node int) {
	if !e.Cfg.FirstTouch {
		return
	}
	page := addr / uint64(e.Cfg.PageSize)
	for uint64(len(e.pageHome)) <= page {
		e.pageHome = append(e.pageHome, -1)
	}
	if e.pageHome[page] < 0 {
		e.pageHome[page] = node
	}
}

// Txn is one outstanding coherence transaction at its requesting node —
// the equivalent of a RAC entry in the DASH protocol. At most one
// transaction per block is outstanding per node; later accesses to the
// same block merge onto it.
type Txn struct {
	Block uint64
	// Data opens when the block's data has been filled into the cache
	// (or, for data-less upgrades, when no data will come). CPU stalls
	// and write-buffer retirements wait here.
	Data sim.Gate
	// Done opens when the transaction is globally performed (ownership
	// granted, all notices acknowledged). Releases drain on this.
	Done sim.Gate
	// InvalidateOnFill is set when a notice or invalidation arrived for
	// a block whose fill is still in flight; the copy is dropped the
	// moment it lands.
	InvalidateOnFill bool
	// ExpectData marks a transaction that will receive a data reply.
	ExpectData bool
	// IsWrite marks an ownership-acquiring transaction. Invalidations
	// arriving while it waits concern the requester's old sharer status,
	// never the future grant (the home serializes collections against
	// grants), so they must not kill the fill when it finally lands.
	IsWrite bool
	// Filled records that the data reply actually arrived. A load parked
	// on this transaction is satisfied by the arriving data even when a
	// racing invalidation drops the copy in the same instant — the value
	// was bound when the line came in, as in real hardware. Without this
	// a contended read retries from scratch and write-heavy sharing
	// patterns amplify pathologically.
	Filled bool
	// DoneEarly records that the completion (WriteDone) overtook the
	// data reply in the network; the transaction finishes when the data
	// lands.
	DoneEarly bool
	// CT is the causal transaction id assigned at creation when tracing
	// is enabled (0 otherwise). Messages and stall episodes on this
	// transaction's chain reference it.
	CT uint64
}

// Node is one processor node: CPU-side cache structures, the protocol
// processor, the local memory module and bus, and the directory for the
// blocks homed here.
type Node struct {
	ID    int
	Env   *Env
	Proto Protocol

	Cache *cache.Cache
	WB    *cache.WriteBuffer
	CB    *cache.CoalescingBuffer

	PP  *sim.Resource // protocol processor occupancy
	Mem *sim.Resource // local memory module
	Bus *sim.Resource // local bus (cache fills)

	Dir *directory.Directory

	CPU *sim.Context
	PS  *stats.Proc

	outstanding  map[uint64]*Txn
	nOutstanding int
	wtPending    int // write-throughs / write-backs awaiting memory acks

	pendInv    []uint64 // blocks to invalidate at the next acquire (FIFO)
	pendInvSet map[uint64]bool

	delayed    []uint64 // lazier protocol: unposted write notices (FIFO)
	delayedSet map[uint64]bool

	releaseParked bool // CPU is parked in a release drain
	wbParked      bool // CPU is parked on a full write buffer

	seq *mesh.Sequencer // exactly-once in-order delivery under faults

	eagerHome *eagerState // lazily allocated eager-protocol home state
	tardis    *tardisNode // lazily allocated timestamp-protocol state

	sync syncNode
}

// NewNode builds a node; the machine package wires CPU contexts and
// workloads afterwards.
func NewNode(env *Env, id int, proto Protocol) *Node {
	cfg := env.Cfg
	n := &Node{
		ID:    id,
		Env:   env,
		Proto: proto,
		Cache: cache.New(cfg.Lines()),
		WB:    cache.NewWriteBuffer(cfg.WBEntries),
		CB:    cache.NewCoalescingBuffer(cfg.CBEntries),
		PP:    sim.NewResource(fmt.Sprintf("pp%d", id)),
		Mem:   sim.NewResource(fmt.Sprintf("mem%d", id)),
		Bus:   sim.NewResource(fmt.Sprintf("bus%d", id)),
		Dir:   directory.New(cfg.Procs, cfg.CheckInvariants),
		PS:    &env.Stats.Procs[id],

		outstanding: make(map[uint64]*Txn),
		pendInvSet:  make(map[uint64]bool),
		delayedSet:  make(map[uint64]bool),
		seq:         mesh.NewSequencer(cfg.Procs),
	}
	n.sync.init()
	env.Net.Handle(id, n.Deliver)
	return n
}

// Deliver routes an arriving message: synchronization traffic to the sync
// manager, coherence traffic to the protocol. Messages stamped with a
// transport sequence number (fault injection active) first pass through
// the node's sequencer, which suppresses duplicates and late
// retransmitted originals and holds early arrivals until the gap fills —
// a single point that makes every protocol and sync handler idempotent
// and order-safe under loss, duplication, and retransmission.
func (n *Node) Deliver(m mesh.Msg) {
	n.seq.Admit(m, n.deliver)
}

func (n *Node) deliver(m mesh.Msg) {
	prev := n.Env.Prof.Enter(perf.PhaseProtocol)
	defer n.Env.Prof.Exit(prev)
	if MsgKind(m.Kind).IsSync() {
		n.deliverSync(m)
		return
	}
	n.Proto.Deliver(n, m)
}

// send dispatches a message from this node.
func (n *Node) send(dst int, kind MsgKind, block uint64, size int, arg, aux uint64) {
	n.Env.Net.Send(mesh.Msg{
		Src: n.ID, Dst: dst, Kind: int(kind), Size: size,
		Addr: block, Arg: arg, Aux: aux,
	})
}

// sendData dispatches a payload-bearing message carrying a value snapshot
// for the data tracker (vals is nil when no tracker is attached).
func (n *Node) sendData(dst int, kind MsgKind, block uint64, size int, arg, aux uint64, vals []uint64) {
	n.Env.Net.Send(mesh.Msg{
		Src: n.ID, Dst: dst, Kind: int(kind), Size: size,
		Addr: block, Arg: arg, Aux: aux, Vals: vals,
	})
}

func (n *Node) now() sim.Time       { return n.Env.Eng.Now() }
func (n *Node) homeOf(b uint64) int { return n.Env.HomeOf(b) }
func (n *Node) lineBytes() int      { return n.Env.Cfg.LineSize }
func (n *Node) wordsPerLine() int   { return n.Env.Cfg.WordsPerLine() }
func (n *Node) noticeCost() uint64  { return n.Env.Cfg.NoticeCost }

// dirCost returns the home directory access cost for this node's
// protocol family (Table 1: 25 cycles lazy, 15 cycles eager/SC).
func (n *Node) dirCost() uint64 {
	if n.Proto.Lazy() {
		return n.Env.Cfg.DirCostLRC
	}
	return n.Env.Cfg.DirCostERC
}
func (n *Node) memCycles(b int) uint64 {
	return n.Env.Cfg.MemSetup + uint64((b+n.Env.Cfg.MemBW-1)/n.Env.Cfg.MemBW)
}
func (n *Node) busCycles(b int) uint64 {
	return uint64((b + n.Env.Cfg.BusBW - 1) / n.Env.Cfg.BusBW)
}

// ---- Outstanding transactions ----------------------------------------

// txn returns the outstanding transaction for block, or nil.
func (n *Node) txn(block uint64) *Txn { return n.outstanding[block] }

// newTxn allocates an outstanding-transaction record for block. A second
// transaction for the same block is a protocol bug.
func (n *Node) newTxn(block uint64) *Txn {
	if n.outstanding[block] != nil {
		panic(fmt.Sprintf("protocol: node %d duplicate txn for block %d", n.ID, block))
	}
	t := &Txn{Block: block}
	t.CT = n.Env.Causal.BeginTxn(n.ID, block, n.now())
	n.outstanding[block] = t
	n.nOutstanding++
	return t
}

// finishTxn completes a transaction: opens Done (if still closed),
// removes it, and re-evaluates any release drain.
func (n *Node) finishTxn(t *Txn) {
	if n.outstanding[t.Block] != t {
		panic(fmt.Sprintf("protocol: node %d finishing unknown txn for block %d", n.ID, t.Block))
	}
	delete(n.outstanding, t.Block)
	n.nOutstanding--
	n.Env.Causal.EndTxn(t.CT, n.now())
	if !t.Data.IsOpen() {
		t.Data.Open()
	}
	if !t.Done.IsOpen() {
		t.Done.Open()
	}
	n.checkDrain()
}

// ---- Causal-tracing brackets --------------------------------------------

// waitStall brackets a gate wait with a causal stall span. Every
// CPU-stall charge site goes through this (or parkStall), so the sum of
// recorded stall-episode lengths equals the stats stall aggregate by
// construction. tid is the transaction the CPU is stalled on when known.
func (n *Node) waitStall(g *sim.Gate, tid uint64, class causal.StallClass, why string) uint64 {
	c := n.Env.Causal
	if c == nil {
		return g.Wait(n.CPU, why)
	}
	sid := c.BeginStall(n.ID, tid, class, why, n.now())
	w := g.Wait(n.CPU, why)
	c.EndStall(sid, n.now())
	return w
}

// parkStall brackets a raw CPU park with a causal stall span.
func (n *Node) parkStall(tid uint64, class causal.StallClass, why string) uint64 {
	c := n.Env.Causal
	if c == nil {
		return n.CPU.Park(why)
	}
	sid := c.BeginStall(n.ID, tid, class, why, n.now())
	w := n.CPU.Park(why)
	c.EndStall(sid, n.now())
	return w
}

// ppAcquire charges the protocol processor and records a causal service
// span of the given kind covering both the queueing and the occupancy.
// It returns the completion time, like PP.Acquire's second result.
// Wall-clock-wise it is the protocol's single choke point for home-side
// directory service, so KindDir occupancy charges the directory phase.
func (n *Node) ppAcquire(kind causal.Kind, block uint64, cost uint64) uint64 {
	if kind == causal.KindDir {
		prev := n.Env.Prof.Enter(perf.PhaseDirectory)
		defer n.Env.Prof.Exit(prev)
	}
	req := n.now()
	start, end := n.PP.Acquire(req, cost)
	n.Env.Causal.Service(kind, n.ID, block, req, start, end)
	return end
}

// ---- Release draining --------------------------------------------------

// drained reports whether all writes by this node are globally performed:
// write buffer flushed, outstanding transactions serviced, and memory has
// acknowledged outstanding write-backs/write-throughs (§2's three release
// conditions).
func (n *Node) drained() bool {
	return n.WB.Empty() && n.nOutstanding == 0 && n.wtPending == 0
}

// checkDrain wakes a CPU parked in a release once the node drains.
func (n *Node) checkDrain() {
	if n.releaseParked && n.drained() {
		n.releaseParked = false
		n.CPU.Wake()
	}
}

// waitDrained parks the CPU (which must be the caller) until drained,
// charging the wait to SyncStall.
func (n *Node) waitDrained() {
	if n.drained() {
		return
	}
	n.releaseParked = true
	n.PS.SyncStall += n.parkStall(n.Env.Causal.Current(), causal.StallSync, "release drain")
}

// wbRetired wakes a CPU stalled on a full write buffer.
func (n *Node) wbRetired() {
	if n.wbParked {
		n.wbParked = false
		n.CPU.Wake()
	}
	n.checkDrain()
}

// stallWBFull parks the CPU until some write-buffer entry retires,
// charging WriteStall.
func (n *Node) stallWBFull() {
	n.wbParked = true
	n.PS.WriteStall += n.parkStall(0, causal.StallWrite, "write buffer slot")
}

// ---- Cache fills and evictions -----------------------------------------

// fillLine installs block (state st) when its data message has arrived:
// the line streams over the node bus, the victim (if any) is processed,
// and at bus completion fn runs (protocols open the transaction's Data
// gate there). vals is the data snapshot the message carried (nil without
// a value tracker). Must be called from an event handler at data arrival
// time.
func (n *Node) fillLine(block uint64, st cache.LineState, vals []uint64, fn func()) {
	prev := n.Env.Prof.Enter(perf.PhaseMemBus)
	defer n.Env.Prof.Exit(prev)
	victim, evicted := n.Cache.Fill(block, st)
	if evicted {
		n.evictVictim(victim)
	}
	if n.Env.Mem != nil && vals != nil {
		n.Env.Mem.Fill(n.ID, block, vals)
	}
	n.Env.Class.Fill(n.ID, block, n.wordsPerLine())
	req := n.now()
	start, end := n.Bus.Acquire(req, n.busCycles(n.lineBytes()))
	n.Env.Causal.Service(causal.KindBus, n.ID, block, req, start, end)
	n.Env.Eng.At(end, fn)
}

// evictVictim handles a conflict/capacity replacement: pending coalesced
// writes drain to memory, the home learns the copy is gone, and the
// classifier records an eviction loss. Write-back protocols send the
// dirty data home instead of a hint.
func (n *Node) evictVictim(v cache.Line) {
	block := v.Block
	n.Env.Class.Lose(n.ID, block, stats.LossEviction, n.wordsPerLine())
	if n.pendInvSet[block] {
		// The paper: no need to keep invalidate-set entries for lines
		// dropped from the cache.
		delete(n.pendInvSet, block)
		for i, b := range n.pendInv {
			if b == block {
				n.pendInv = append(n.pendInv[:i], n.pendInv[i+1:]...)
				break
			}
		}
	}
	if e, ok := n.CB.Remove(block); ok {
		n.sendWriteThrough(e)
	}
	if n.delayedSet[block] {
		// Lazier protocol: a written block is being replaced; its
		// deferred notice must be posted now, before the home forgets us.
		n.removeDelayed(block)
		n.postNotice(block)
	}
	n.Proto.Evict(n, v)
}

// evictInval is the invalidation protocols' eviction tail: write-back
// protocols send dirty data home, everyone else sends a copy-gone hint
// so the directory can drop the sharer.
func (n *Node) evictInval(v cache.Line) {
	block := v.Block
	if v.Dirty != 0 && n.usesWriteBack() {
		n.wtPending++
		n.sendData(n.homeOf(block), MsgWriteBack, block, n.lineBytes(), v.Dirty, 0, n.copyVals(block))
	} else {
		n.send(n.homeOf(block), MsgEvict, block, 0, 0, 0)
	}
}

func (n *Node) usesWriteBack() bool { return n.Proto.WriteBack() }

// ---- Write-through path (lazy protocols) --------------------------------

// commitWT performs a store on a resident read-write line under the
// write-through protocols: per-word dirty bookkeeping, the classifier's
// committed-write stream, and the coalescing buffer (possibly draining
// its oldest entry on capacity pressure).
func (n *Node) commitWT(block uint64, word int) {
	prev := n.Env.Prof.Enter(perf.PhaseMemBus)
	defer n.Env.Prof.Exit(prev)
	n.Cache.MarkDirty(block, word)
	n.Env.Class.CommitWrite(n.ID, block, word, n.wordsPerLine())
	if n.Env.Mem != nil {
		n.Env.Mem.Commit(n.ID, block, word)
	}
	if e, drain := n.CB.Put(block, word); drain {
		n.sendWriteThrough(e)
	}
}

// commitWB performs a store on a resident read-write line under the
// write-back protocols: per-word dirty bookkeeping plus the classifier's
// committed-write stream. The data travels home only on eviction or
// ownership transfer.
func (n *Node) commitWB(block uint64, word int) {
	prev := n.Env.Prof.Enter(perf.PhaseMemBus)
	defer n.Env.Prof.Exit(prev)
	n.Cache.MarkDirty(block, word)
	n.Env.Class.CommitWrite(n.ID, block, word, n.wordsPerLine())
	if n.Env.Mem != nil {
		n.Env.Mem.Commit(n.ID, block, word)
	}
}

// FastWriteHit attempts the write-hit fast path: a store that requires
// no messages and therefore no synchronization with the event loop (the
// processor may be running ahead on its private clock). It reports
// whether the store was performed; on false the caller must sync to
// engine time and take the full CPUWrite path. The behaviour is the
// protocol's (the timestamp protocols also advance their logical clock
// here).
func (n *Node) FastWriteHit(block uint64, word int) bool {
	return n.Proto.WriteHit(n, block, word)
}

// writeHitInval is the invalidation protocols' shared write-hit fast
// path: a store to a resident read-write line.
func (n *Node) writeHitInval(block uint64, word int) bool {
	line := n.Cache.Lookup(block)
	if line == nil || line.State != cache.ReadWrite {
		return false
	}
	if n.Proto.WriteBack() {
		n.commitWB(block, word)
		return true
	}
	if n.CB.Len() >= n.CB.Cap() && !n.CB.Has(block) {
		return false // a coalescing-buffer drain would send a message
	}
	n.commitWT(block, word)
	return true
}

// sendWriteThrough ships one coalescing-buffer entry to the block's home
// memory and tracks the pending acknowledgement. The value snapshot
// carries the whole line; the home merges only the words in the mask.
func (n *Node) sendWriteThrough(e cache.CBEntry) {
	n.wtPending++
	n.PS.WriteThroughs++
	n.sendData(n.homeOf(e.Block), MsgWriteThrough, e.Block, e.DirtyBytes(config.WordSize), e.Words, 0, n.copyVals(e.Block))
}

// flushCB drains every coalescing-buffer entry (the release-point flush).
func (n *Node) flushCB() {
	for _, e := range n.CB.DrainAll() {
		n.sendWriteThrough(e)
	}
}

// ---- Pending invalidations (lazy protocols) -----------------------------

// addPendInv queues block for invalidation at the next acquire.
func (n *Node) addPendInv(block uint64) {
	if n.pendInvSet[block] {
		return
	}
	n.pendInvSet[block] = true
	n.pendInv = append(n.pendInv, block)
}

// processPendInv invalidates every queued line: coalesced writes drain
// first, the home is notified so the directory can revert the block's
// state, and the classifier records a coherence loss. It returns the time
// at which the protocol processor finishes the batch. In-flight fills are
// flagged to invalidate on arrival.
func (n *Node) processPendInv() sim.Time {
	if n.Env.Cfg.Mutation == "skip-acquire-inval" {
		// Deliberate bug for checker self-tests: queued write notices are
		// never acted on, so stale copies survive into critical sections.
		return n.now()
	}
	work := 0
	for _, block := range n.pendInv {
		delete(n.pendInvSet, block)
		if t := n.txn(block); t != nil && !t.Data.IsOpen() {
			t.InvalidateOnFill = true
			continue
		}
		if _, ok := n.Cache.Invalidate(block); ok {
			if e, ok := n.CB.Remove(block); ok {
				n.sendWriteThrough(e)
			}
			n.removeDelayed(block)
			n.Env.Class.Lose(n.ID, block, stats.LossCoherence, n.wordsPerLine())
			n.PS.InvalsAtAcquire++
			n.observe("inv-acquire", block, 0, -1)
			n.send(n.homeOf(block), MsgInvNotify, block, 0, 0, 0)
			work++
		}
	}
	n.pendInv = n.pendInv[:0]
	if work == 0 {
		return n.now()
	}
	return n.ppAcquire(causal.KindNotice, 0, uint64(work)*n.noticeCost())
}

// ---- Delayed notices (lazier protocol) ----------------------------------

func (n *Node) addDelayed(block uint64) {
	if n.delayedSet[block] {
		return
	}
	n.delayedSet[block] = true
	n.delayed = append(n.delayed, block)
}

func (n *Node) removeDelayed(block uint64) {
	if !n.delayedSet[block] {
		return
	}
	delete(n.delayedSet, block)
	for i, b := range n.delayed {
		if b == block {
			n.delayed = append(n.delayed[:i], n.delayed[i+1:]...)
			return
		}
	}
}

// postNotice sends the deferred write notice for block to its home,
// opening a transaction that completes when the home has collected all
// notice acknowledgements.
func (n *Node) postNotice(block uint64) {
	if t := n.txn(block); t != nil {
		// A transaction is already outstanding for this block (e.g., the
		// data fetch that preceded the silent upgrade is still pending);
		// fold the notice into it by posting when it finishes.
		t.Done.Subscribe(func() { n.postNotice(block) })
		return
	}
	t := n.newTxn(block)
	t.Data.Open() // no data will come
	n.observe("wn-post", block, 0, -1)
	n.send(n.homeOf(block), MsgWriteReq, block, 0, 0, 0)
}

// ---- Classification ------------------------------------------------------

// Debug renders non-quiescent node state for deadlock diagnostics; it
// returns "" when the node has nothing outstanding.
func (n *Node) Debug() string {
	s := ""
	for b, t := range n.outstanding {
		s += fmt.Sprintf(" txn{block %d data:%v done:%v expect:%v}", b, t.Data.IsOpen(), t.Done.IsOpen(), t.ExpectData)
	}
	if !n.WB.Empty() {
		s += fmt.Sprintf(" wb:%d", n.WB.Len())
	}
	if n.wtPending > 0 {
		s += fmt.Sprintf(" wt:%d", n.wtPending)
	}
	if n.eagerHome != nil {
		for b, g := range n.eagerHome.grants {
			e := n.Dir.Peek(b)
			s += fmt.Sprintf(" grant{block %d writer %d want:%v acks:%d}", b, g.writer, g.wantData, e.PendingAcks)
		}
		for b, x := range n.eagerHome.xfers {
			s += fmt.Sprintf(" xfer{block %d req %d write:%v}", b, x.req, x.isWrite)
		}
		for b, msgs := range n.eagerHome.deferred {
			s += fmt.Sprintf(" deferred{block %d n:%d}", b, len(msgs))
		}
	}
	if td := n.tardis; td != nil {
		for b := range td.busy {
			s += fmt.Sprintf(" tbusy{block %d}", b)
		}
		for b, msgs := range td.deferred {
			s += fmt.Sprintf(" tdeferred{block %d n:%d}", b, len(msgs))
		}
		for b, rc := range td.recall {
			s += fmt.Sprintf(" trecall{block %d owner %d}", b, rc.owner)
		}
	}
	return s
}

// ---- Auditor accessors ---------------------------------------------------

// OutstandingCount returns the number of coherence transactions this node
// has in flight.
func (n *Node) OutstandingCount() int { return n.nOutstanding }

// HasTxn reports whether this node has an outstanding transaction for
// block.
func (n *Node) HasTxn(block uint64) bool { return n.outstanding[block] != nil }

// TxnBlocks returns the blocks of all outstanding transactions (order
// unspecified).
func (n *Node) TxnBlocks() []uint64 {
	bs := make([]uint64, 0, len(n.outstanding))
	for b := range n.outstanding {
		bs = append(bs, b)
	}
	return bs
}

// WTPendingCount returns the write-throughs/write-backs awaiting memory
// acknowledgement.
func (n *Node) WTPendingCount() int { return n.wtPending }

// PendingInvals returns how many blocks are queued for invalidation at
// this node's next acquire.
func (n *Node) PendingInvals() int { return len(n.pendInv) }

// DelayedNotices returns how many write notices the lazier protocol is
// holding unposted at this node (0 for protocols without delayed
// notices).
func (n *Node) DelayedNotices() int { return len(n.delayed) }

// SyncWaiting reports whether this node's CPU is currently blocked in a
// synchronization acquire (lock or barrier wait gate open).
func (n *Node) SyncWaiting() bool { return n.sync.gate != nil }

// DuplicatesIgnored returns how many duplicate or late-retransmitted
// deliveries this node's sequencer discarded.
func (n *Node) DuplicatesIgnored() uint64 { return n.seq.Suppressed() }

// SeqParked returns how many out-of-order arrivals this node's sequencer
// held for gap fill (cumulative).
func (n *Node) SeqParked() uint64 { return n.seq.Parked() }

// SeqWaiting returns how many arrivals are currently parked in this
// node's sequencer — nonzero at quiescence means a message was lost and
// never recovered.
func (n *Node) SeqWaiting() int { return n.seq.Waiting() }

// HomeBusy reports whether this node, as home, has transient protocol
// machinery open for block — an eager ownership transfer or grant in
// progress, deferred requests queued, or acknowledgements pending. While
// any of it is open, directory state and remote caches may legitimately
// disagree, so mid-run audits of the block must be skipped.
func (n *Node) HomeBusy(block uint64) bool {
	if n.eagerHome != nil {
		if _, ok := n.eagerHome.grants[block]; ok {
			return true
		}
		if _, ok := n.eagerHome.xfers[block]; ok {
			return true
		}
		if len(n.eagerHome.deferred[block]) > 0 {
			return true
		}
	}
	e := n.Dir.Peek(block)
	return e != nil && e.PendingAcks > 0
}

// countMiss classifies and tallies a miss by this processor on
// (block, word).
func (n *Node) countMiss(block uint64, word int, upgradeOnly bool) {
	k := n.Env.Class.Classify(n.ID, block, word, n.wordsPerLine(), upgradeOnly)
	n.PS.Misses[k]++
}
