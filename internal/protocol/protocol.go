package protocol

import (
	"fmt"

	"lazyrc/internal/cache"
	"lazyrc/internal/config"
	"lazyrc/internal/mesh"
)

// Protocol is the strategy implemented by each coherence protocol. The
// CPU-side methods (CPURead, CPUWrite, ReadHit, WriteHit, AcquireBegin,
// Release) run on the node's processor context and may park it;
// AcquireEnd and Deliver run on the engine (event-handler) side.
type Protocol interface {
	// Name identifies the protocol ("sc", "erc", "lrc", "lrc-ext",
	// "tardis", "tardis2").
	Name() string
	// Lazy reports whether this is one of the lazy protocols, which pay
	// the higher directory access cost of Table 1.
	Lazy() bool
	// WriteBack reports whether evicted dirty lines carry data home
	// (write-back protocols) rather than relying on write-through.
	WriteBack() bool

	// ReadHit runs on the load fast path when a valid line is cached; it
	// returns whether the cached copy may satisfy the load. The
	// invalidation protocols always hit (any valid copy satisfies a
	// load); the timestamp protocols return false when the line's lease
	// has expired, sending the load down CPURead to renew. Runs on the
	// processor's private clock, so it must not touch the engine or send
	// messages.
	ReadHit(n *Node, block uint64) bool
	// WriteHit attempts the store fast path and reports whether the
	// store was performed without any messages (so the processor may
	// keep running ahead on its private clock). On false the caller
	// syncs to engine time and takes the full CPUWrite path.
	WriteHit(n *Node, block uint64, word int) bool
	// CPURead performs a load that missed the fast path; it returns when
	// the datum is readable, charging stalls to the node's stats.
	CPURead(n *Node, block uint64, word int)
	// CPUWrite performs a store that missed the fast path; under the
	// relaxed protocols it usually queues the store and returns without
	// waiting for global performance.
	CPUWrite(n *Node, block uint64, word int)

	// Evict runs when a valid line is replaced, after the node's common
	// bookkeeping (classifier loss, pending-invalidation and coalescing-
	// buffer cleanup): the protocol ships dirty data home and/or tells
	// the home the copy is gone.
	Evict(n *Node, v cache.Line)

	// AcquireBegin runs when the processor starts an acquire: the lazy
	// protocols begin invalidating notified lines, overlapping with the
	// synchronization latency itself.
	AcquireBegin(n *Node)
	// AcquireEnd runs (on the engine side) when the synchronization
	// operation is granted; done is called when the consistency work
	// (invalidating lines noticed in the intervening time) finishes.
	AcquireEnd(n *Node, done func())
	// Release runs when the processor performs a release; it returns
	// once the node's writes are globally performed per the protocol's
	// rules, charging the wait to SyncStall.
	Release(n *Node)

	// Deliver handles a coherence message arriving at n.
	Deliver(n *Node, m mesh.Msg)
}

// releaseTimestamper is implemented by protocols that piggyback a
// logical timestamp on release-class synchronization messages (the
// timestamp protocols' physiological time: an acquirer's clock must
// pass the releaser's so lease expiry is ordered after the release).
type releaseTimestamper interface {
	ReleaseTS(n *Node) uint64
}

// acquireTimestamper receives the timestamp carried by a
// synchronization grant, before AcquireEnd runs.
type acquireTimestamper interface {
	AcquireTS(n *Node, ts uint64)
}

// invalPaths supplies the invalidation protocols' (sc, erc, lrc,
// lrc-ext) shared fast paths: any valid copy satisfies a load, stores
// hit resident read-write lines, and evicted dirty lines follow the
// write-back/write-through split.
type invalPaths struct{}

func (invalPaths) ReadHit(n *Node, block uint64) bool            { return true }
func (invalPaths) WriteHit(n *Node, block uint64, word int) bool { return n.writeHitInval(block, word) }
func (invalPaths) Evict(n *Node, v cache.Line)                   { n.evictInval(v) }

// init registers every protocol with the config registry — the single
// authoritative menu that CLIs, experiment targets, and the model
// checker resolve names against. Registration order is presentation
// order.
func init() {
	for _, p := range []config.ProtocolInfo{
		{Name: "sc", Doc: "sequentially consistent write-back invalidation", SCStrict: true,
			New: func() any { return &SC{} }},
		{Name: "erc", Doc: "eager release consistency (invalidate at release)",
			New: func() any { return &ERC{} }},
		{Name: "lrc", Doc: "lazy release consistency (invalidate at acquire)", Lazy: true,
			New: func() any { return &LRC{} }},
		{Name: "lrc-ext", Doc: "lazier release consistency (delayed write notices)", Lazy: true,
			New: func() any { return &LRCExt{} }},
		{Name: "tardis", Doc: "timestamp coherence with logical leases (SC, no invalidations)", SCStrict: true,
			New: func() any { return &Tardis{} }},
		{Name: "tardis2", Doc: "relaxed timestamp coherence (buffered stores, acquire-time lease sweep)",
			New: func() any { return &Tardis2{} }},
	} {
		config.RegisterProtocol(p)
	}
}

// New returns the protocol implementation registered under name.
func New(name string) (Protocol, error) {
	if name == "lrcext" { // historical alias
		name = "lrc-ext"
	}
	info, ok := config.ProtocolInfoFor(name)
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (want %v)", name, Names())
	}
	return info.New().(Protocol), nil
}

// Names lists the available protocols in evaluation order.
func Names() []string { return config.ProtocolNames() }
